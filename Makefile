GO ?= go

.PHONY: build test check vet race chaos fuzz bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the CI gate: build, vet, tests, race detector.
check:
	./ci.sh

# chaos sweeps randomized fault schedules (see internal/chaos).
chaos:
	$(GO) run ./cmd/chaosrunner -seeds 1000

# fuzz gives each transport codec fuzz target a short budget.
fuzz:
	$(GO) test ./internal/transport -run=XXX -fuzz=FuzzDecode$$ -fuzztime=30s
	$(GO) test ./internal/transport -run=XXX -fuzz=FuzzDecodeTuple -fuzztime=30s

bench:
	$(GO) test -bench=. -benchtime=1x -run=XXX .
