// chaosrunner drives the internal/chaos fault-injection harness from the
// command line: randomized, seed-reproducible fault schedules against a
// k-safe cluster, with the four §6 oracles checked after every run.
//
// Usage:
//
//	chaosrunner -seeds 1000      # sweep seeds 1..1000, report any violation
//	chaosrunner -seed 42         # run one seed verbosely
//	chaosrunner -seed 42 -shrink # on failure, print a minimal reproducer
//	chaosrunner -seeds 500 -trace-out /tmp/chaos
//	                             # write flight-recorder artifacts per failure
//	chaosrunner -tcp 20          # sweep 20 seeds of the wall-clock TCP
//	                             # harness (real sockets, conn kills,
//	                             # blackholes, handshake stalls)
//
// A failing seed is a complete bug report: the same seed regenerates the
// same schedule, the same simulated event order, and the same verdict.
// With -trace-out, every failing (or tuple-losing) run additionally
// leaves chaos-seed<N>.dump.txt (the flight-recorder tail) and
// chaos-seed<N>.trace.json (Chrome trace-event JSON, viewable in
// Perfetto) in the given directory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/chaos"
)

func main() {
	var (
		seeds    = flag.Int("seeds", 200, "sweep seeds 1..N")
		seed     = flag.Int64("seed", 0, "run a single seed verbosely (overrides -seeds)")
		shrink   = flag.Bool("shrink", true, "shrink failing schedules to a minimal reproducer")
		traceOut = flag.String("trace-out", "", "directory for flight-recorder artifacts on failing runs")
		tcp      = flag.Int("tcp", 0, "sweep N seeds of the wall-clock TCP harness instead of the simulated cluster")
		tuples   = flag.Int("tcp-tuples", 0, "tuples per TCP run (0 = harness default)")
		kills    = flag.Int("tcp-kills", 4, "connection kills per TCP run")
	)
	flag.Parse()

	if *tcp > 0 {
		os.Exit(runTCPSweep(*tcp, *seed, *tuples, *kills))
	}

	if *seed != 0 {
		os.Exit(runOne(*seed, *shrink, *traceOut))
	}

	pass, fail := 0, 0
	for s := int64(1); s <= int64(*seeds); s++ {
		r := chaos.Run(chaos.Generate(s))
		if !r.Failed() {
			pass++
			continue
		}
		fail++
		fmt.Printf("seed %d FAILED:\n", s)
		for _, v := range r.Violations {
			fmt.Printf("  %s\n", v)
		}
		writeArtifacts(*traceOut, s, r)
		if *shrink {
			min := chaos.Shrink(r.Schedule, func(c chaos.Schedule) bool {
				return chaos.Run(c).Failed()
			})
			fmt.Printf("  minimal reproducer (%d events):\n%s\n", len(min.Events), min.Repro())
		}
	}
	fmt.Printf("chaos: %d schedules, %d passed, %d failed\n", pass+fail, pass, fail)
	if fail > 0 {
		os.Exit(1)
	}
}

// runTCPSweep drives the wall-clock TCP harness: real sockets through a
// fault-injecting proxy, with no-loss / at-most-once / drained / bounded-
// close oracles checked after every run. With -seed it runs that one seed;
// otherwise it sweeps seeds 1..n.
func runTCPSweep(n int, seed int64, tuples, kills int) int {
	lo, hi := int64(1), int64(n)
	if seed != 0 {
		lo, hi = seed, seed
	}
	pass, fail := 0, 0
	for s := lo; s <= hi; s++ {
		r := chaos.RunTCP(chaos.TCPSchedule{
			Seed: s, Tuples: tuples, Kills: kills, Blackholes: 1, Stalls: 1,
		})
		fmt.Printf("tcp %s\n", r)
		if !r.Failed() {
			pass++
			continue
		}
		fail++
		for _, v := range r.Violations {
			fmt.Printf("  VIOLATION: %s\n", v)
		}
	}
	fmt.Printf("tcp chaos: %d schedules, %d passed, %d failed\n", pass+fail, pass, fail)
	if fail > 0 {
		return 1
	}
	return 0
}

func runOne(seed int64, shrink bool, traceOut string) int {
	s := chaos.Generate(seed)
	fmt.Printf("seed %d: workers=%d k=%d, %d events (max concurrent failures %d)\n",
		seed, s.Workers, s.K, len(s.Events), s.MaxConcurrentFailures())
	for _, e := range s.Events {
		fmt.Printf("  %+v\n", e)
	}
	r := chaos.Run(s)
	fmt.Printf("ingested=%d delivered=%d missing=%d dups=%d resent=%d suppressed=%d recoveries=%d trunc-leaked=%d\n",
		r.Ingested, r.Delivered, r.Missing, r.Dups, r.Resent, r.Suppressed, r.Recoveries, r.TruncLeaked)
	writeArtifacts(traceOut, seed, r)
	if !r.Failed() {
		fmt.Println("PASS: all oracles held")
		return 0
	}
	for _, v := range r.Violations {
		fmt.Printf("VIOLATION: %s\n", v)
	}
	if shrink {
		min := chaos.Shrink(s, func(c chaos.Schedule) bool { return chaos.Run(c).Failed() })
		fmt.Printf("minimal reproducer (%d events):\n%s\n", len(min.Events), min.Repro())
	}
	return 1
}

// writeArtifacts persists a run's post-mortem (flight-recorder dump and
// Chrome trace JSON) when the harness produced one and a directory was
// given. Artifacts are named by seed so a sweep leaves one pair per
// failing schedule.
func writeArtifacts(dir string, seed int64, r *chaos.Result) {
	if dir == "" || (r.FlightDump == "" && len(r.ChromeTrace) == 0) {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		return
	}
	dump := filepath.Join(dir, fmt.Sprintf("chaos-seed%d.dump.txt", seed))
	if err := os.WriteFile(dump, []byte(r.FlightDump), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		return
	}
	tr := filepath.Join(dir, fmt.Sprintf("chaos-seed%d.trace.json", seed))
	if err := os.WriteFile(tr, r.ChromeTrace, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "trace-out: %v\n", err)
		return
	}
	fmt.Printf("  artifacts: %s, %s\n", dump, tr)
}
