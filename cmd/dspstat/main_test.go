package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/transport"
)

// statNode stands up a real auroranode telemetry surface: an engine with a
// two-box network feeding a stats plane, served over HTTP exactly as
// cmd/auroranode serves it.
func statNode(t *testing.T, id string) (*httptest.Server, []string) {
	t.Helper()
	return statNodeWithLinks(t, id, nil)
}

// statNodeWithLinks is statNode with an optional transport behind /links.
func statNodeWithLinks(t *testing.T, id string, links telemetry.LinkSource) (*httptest.Server, []string) {
	t.Helper()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("stat").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		AddBox("m1", op.Spec{Kind: "map", Params: map[string]string{"exprs": "A=A+1; B=B"}}).
		Connect("f1", "m1").
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "m1", 0, nil).
		MustBuild()
	plane := stats.NewPlane(id, int64(10e6), 8, 2)
	eng, err := engine.New(net, engine.Config{Stats: plane.Store(), StatsEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 20; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(1)))
		eng.RunUntilIdle(0)
	}
	// Two samples a window apart so rates land in a complete window, then
	// publish so the load map has a digest with per-box loads.
	eng.SampleStats(now - 10e6)
	eng.SampleStats(now)
	plane.Store().Observe(stats.SeriesNodeUtil, stats.KindGauge, now-10e6, 0.5)
	plane.Store().Observe(stats.SeriesNodeQueued, stats.KindGauge, now-10e6,
		float64(eng.QueuedTuples()))
	plane.Publish(now)

	srv := httptest.NewServer(telemetry.Handler(id, eng, plane, links))
	t.Cleanup(srv.Close)
	return srv, []string{"f1", "m1"}
}

func TestDspstatCoversEveryBoxAndQueueSeries(t *testing.T) {
	srv, boxes := statNode(t, "n1")

	rep := scrapeNode(srv.Client(), srv.URL, "", 0)
	if rep.Err != nil {
		t.Fatalf("scrape: %v", rep.Err)
	}
	var out strings.Builder
	render(&out, []*nodeReport{rep}, nil)
	got := out.String()

	// The cluster table names the node and its digest's per-box loads.
	if !strings.Contains(got, `node "n1"`) {
		t.Errorf("output missing node header:\n%s", got)
	}
	for _, box := range boxes {
		if !strings.Contains(got, box+"=") {
			t.Errorf("load table missing box %s:\n%s", box, got)
		}
	}

	// The series table covers every registered box series and every queue
	// series the engine samples.
	for _, box := range boxes {
		for _, series := range []string{
			stats.SeriesBoxCost(box),
			stats.SeriesBoxSelectivity(box),
			stats.SeriesBoxQueue(box),
			stats.SeriesBoxWork(box),
		} {
			if !strings.Contains(got, series) {
				t.Errorf("series table missing %s:\n%s", series, got)
			}
		}
	}
	for _, series := range []string{stats.SeriesNodeUtil, stats.SeriesNodeQueued} {
		if !strings.Contains(got, series) {
			t.Errorf("series table missing %s:\n%s", series, got)
		}
	}
}

func TestDspstatSeriesFilterAndScrapeError(t *testing.T) {
	srv, _ := statNode(t, "n1")

	rep := scrapeNode(srv.Client(), srv.URL, "box.f1.", 4)
	if rep.Err != nil {
		t.Fatalf("scrape: %v", rep.Err)
	}
	if rep.Stats.K != 4 {
		t.Errorf("window override: K = %d, want 4", rep.Stats.K)
	}
	for _, s := range rep.Stats.Series {
		if !strings.HasPrefix(s.Name, "box.f1.") {
			t.Errorf("filter leaked %s", s.Name)
		}
	}
	if len(rep.Stats.Series) == 0 {
		t.Error("filtered scrape returned no series")
	}

	// A dead endpoint renders as a failure line, not a panic.
	dead := scrapeNode(srv.Client(), "http://127.0.0.1:1", "", 0)
	if dead.Err == nil {
		t.Fatal("scrape of dead endpoint should fail")
	}
	var out strings.Builder
	render(&out, []*nodeReport{dead}, nil)
	if !strings.Contains(out.String(), "scrape failed") {
		t.Errorf("render of failed scrape = %q", out.String())
	}
}

func TestDspstatRendersLinkTable(t *testing.T) {
	a, err := transport.ListenTCP("n1", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := transport.ListenTCP("n2", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer("n2", b.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := a.LinkState("n2"); ok && st == transport.LinkEstablished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never established")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv, _ := statNodeWithLinks(t, "n1", a)
	rep := scrapeNode(srv.Client(), srv.URL, "", 0)
	if rep.Err != nil {
		t.Fatalf("scrape: %v", rep.Err)
	}
	if !rep.HasLink {
		t.Fatal("/links not scraped")
	}
	var out strings.Builder
	render(&out, []*nodeReport{rep}, nil)
	got := out.String()
	for _, want := range []string{"-- links on n1 --", "PEER", "n2", "established"} {
		if !strings.Contains(got, want) {
			t.Errorf("link table missing %q:\n%s", want, got)
		}
	}

	// A node with a transport but no stats plane (auroranode without
	// -stats) must still render its link table, not fail the scrape.
	schema := stream.MustSchema("s", stream.Field{Name: "A", Kind: stream.KindInt})
	netw := query.NewBuilder("bare").
		AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "A < 10"}}).
		BindInput("in", schema, "f", 0).
		BindOutput("out", "f", 0, nil).
		MustBuild()
	bareEng, err := engine.New(netw, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	srvBare := httptest.NewServer(telemetry.Handler("n1", bareEng, nil, a))
	t.Cleanup(srvBare.Close)
	repBare := scrapeNode(srvBare.Client(), srvBare.URL, "", 0)
	if repBare.Err != nil {
		t.Fatalf("scrape of plane-less node failed: %v", repBare.Err)
	}
	if repBare.HasLoad || repBare.HasStat || !repBare.HasLink {
		t.Fatalf("plane-less node flags: load=%v stat=%v link=%v",
			repBare.HasLoad, repBare.HasStat, repBare.HasLink)
	}
	out.Reset()
	render(&out, []*nodeReport{repBare}, nil)
	if !strings.Contains(out.String(), "-- links on n1 --") {
		t.Errorf("plane-less node missing link table:\n%s", out.String())
	}

	// A node without a transport renders no link table and still scrapes.
	srvNo, _ := statNode(t, "n3")
	repNo := scrapeNode(srvNo.Client(), srvNo.URL, "", 0)
	if repNo.Err != nil {
		t.Fatalf("scrape without links: %v", repNo.Err)
	}
	if repNo.HasLink {
		t.Error("HasLink true for a node without /links")
	}
	out.Reset()
	render(&out, []*nodeReport{repNo}, nil)
	if strings.Contains(out.String(), "-- links") {
		t.Errorf("link table rendered without /links:\n%s", out.String())
	}
}

// journalNode stands up a telemetry surface whose engine journals control
// events and whose load map carries delivered-QoS output attribution.
func journalNode(t *testing.T, id string) (*httptest.Server, *events.Journal) {
	t.Helper()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("jn").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, nil).
		MustBuild()
	j := events.NewJournal(id, 64)
	plane := stats.NewPlane(id, int64(10e6), 8, 2)
	eng, err := engine.New(net, engine.Config{
		Stats: plane.Store(), StatsEvery: 1, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(1)))
		eng.RunUntilIdle(0)
	}
	eng.SampleStats(now - 10e6)
	eng.SampleStats(now)
	// Hand-laid output-QoS counters: only the span between the first two
	// observations is a complete window by Publish(now), so the harvested
	// mean delivered utility is 7.5/10 = 0.75.
	st := plane.Store()
	st.Observe(stats.SeriesOutputUtilSum("out"), stats.KindCounter, now-20e6, 0)
	st.Observe(stats.SeriesOutputDelivered("out"), stats.KindCounter, now-20e6, 0)
	st.Observe(stats.SeriesOutputUtilSum("out"), stats.KindCounter, now-10e6, 7.5)
	st.Observe(stats.SeriesOutputDelivered("out"), stats.KindCounter, now-10e6, 10)
	st.Observe(stats.SeriesOutputUtilSum("out"), stats.KindCounter, now-1, 10)
	st.Observe(stats.SeriesOutputDelivered("out"), stats.KindCounter, now-1, 20)
	plane.Publish(now)
	if err := eng.SplitBox("f1", 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(telemetry.Handler(id, eng, plane, nil))
	t.Cleanup(srv.Close)
	return srv, j
}

// TestDspstatEventTailAndUtilityColumn: the rendered view carries the
// delivered-utility column from the digest's output attribution, and the
// event tail shows the journaled split.
func TestDspstatEventTailAndUtilityColumn(t *testing.T) {
	srv, _ := journalNode(t, "n1")
	rep := scrapeNode(srv.Client(), srv.URL, "", 0)
	if rep.Err != nil {
		t.Fatalf("scrape: %v", rep.Err)
	}
	if !rep.HasEvent {
		t.Fatal("/events not scraped")
	}
	var out strings.Builder
	render(&out, []*nodeReport{rep}, nil)
	tail := mergeEventTail(nil, []*nodeReport{rep}, 12)
	renderEventTail(&out, tail, 12)
	got := out.String()
	if !strings.Contains(got, "DELIVERED") || !strings.Contains(got, "out=0.750u") {
		t.Errorf("missing delivered-utility column:\n%s", got)
	}
	if !strings.Contains(got, "cluster events") || !strings.Contains(got, "split") {
		t.Errorf("missing event tail with the journaled split:\n%s", got)
	}
	if !strings.Contains(got, "f1") {
		t.Errorf("event tail does not name the split box:\n%s", got)
	}
}

// TestDspstatWatchCursors: scrapeAll advances each node's /events cursor,
// so a second round returns only what was journaled in between — and a
// dead node in the list degrades to an error report without poisoning
// the live ones (partial-cluster tolerance).
func TestDspstatWatchCursors(t *testing.T) {
	srv, j := journalNode(t, "n1")
	bases := []string{srv.URL, "http://127.0.0.1:1"}
	cursors := map[string]uint64{}

	first := scrapeAll(srv.Client(), bases, "", 0, cursors)
	if len(first) != 2 {
		t.Fatalf("reports = %d", len(first))
	}
	if first[0].Err != nil || !first[0].HasEvent {
		t.Fatalf("live node: err=%v hasEvent=%v", first[0].Err, first[0].HasEvent)
	}
	if first[1].Err == nil {
		t.Fatal("dead node should report an error")
	}
	got1 := len(first[0].Events.Events)
	if got1 == 0 {
		t.Fatal("first round returned no events")
	}
	if cursors[srv.URL] == 0 {
		t.Fatal("cursor not advanced")
	}

	j.Append(events.Event{Kind: events.KindShedEngage, Subject: "shedder", V1: 0.25})
	j.Append(events.Event{Kind: events.KindShedDisengage, Subject: "shedder"})
	second := scrapeAll(srv.Client(), bases, "", 0, cursors)
	evs := second[0].Events.Events
	if len(evs) != 2 {
		t.Fatalf("second round = %d events, want only the 2 new ones: %+v", len(evs), evs)
	}
	if evs[0].Kind != events.KindShedEngage || evs[1].Kind != events.KindShedDisengage {
		t.Errorf("second round events = %+v", evs)
	}

	tail := mergeEventTail(nil, first, 2)
	tail = mergeEventTail(tail, second, 2)
	if len(tail) != 2 {
		t.Errorf("tail bound leaked: %d", len(tail))
	}
	var out strings.Builder
	render(&out, second, nil)
	if !strings.Contains(out.String(), "scrape failed") {
		t.Errorf("dead node not rendered as failure:\n%s", out.String())
	}
}

// latencyNode stands up a telemetry surface whose digest carries a
// delivered-latency sketch and forecast headroom, and whose journal holds
// a bottleneck attribution — the SLO-plane view dspstat renders.
func latencyNode(t *testing.T, id string) *httptest.Server {
	t.Helper()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("slo").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, nil).
		MustBuild()
	j := events.NewJournal(id, 64)
	plane := stats.NewPlane(id, int64(10e6), 8, 2)
	eng, err := engine.New(net, engine.Config{
		Stats: plane.Store(), StatsEvery: 1, Journal: j,
	})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(1)))
		eng.RunUntilIdle(0)
	}
	eng.SampleStats(now - 10e6)
	eng.SampleStats(now)
	// Hand-laid SLO series: a cumulative latency sketch (first ObserveSketch
	// is the baseline) and a headroom gauge, both harvested by Publish.
	st := plane.Store()
	sk := sketch.New(sketch.DefaultAlpha)
	st.ObserveSketch(stats.SeriesOutputLatency("out"), now-20e6, sk)
	for i := 0; i < 200; i++ {
		sk.Record(1e6)
	}
	sk.Record(5e6)
	st.ObserveSketch(stats.SeriesOutputLatency("out"), now-10e6, sk)
	st.Observe(stats.SeriesOutputHeadroom("out"), stats.KindGauge, now-10e6, 0.37)
	plane.Publish(now)
	corr := j.NewCorr()
	j.Append(events.Event{Kind: events.KindSLOWarn, Subject: "out", Corr: corr})
	j.Append(events.Event{Kind: events.KindBottleneck, Subject: "out", Detail: "f1", Corr: corr})
	srv := httptest.NewServer(telemetry.Handler(id, eng, plane, nil))
	t.Cleanup(srv.Close)
	return srv
}

// TestDspstatLatencyColumns: the node table gains P99 and HEADROOM
// columns decoded from the digest's sketch, and the box the journal's
// bottleneck attribution names is starred.
func TestDspstatLatencyColumns(t *testing.T) {
	srv := latencyNode(t, "n1")
	rep := scrapeNode(srv.Client(), srv.URL, "", 0)
	if rep.Err != nil {
		t.Fatalf("scrape: %v", rep.Err)
	}
	bn := map[string]string{}
	updateBottlenecks(bn, []*nodeReport{rep})
	if bn["out"] != "f1" {
		t.Fatalf("bottleneck map = %v, want out→f1", bn)
	}
	var out strings.Builder
	render(&out, []*nodeReport{rep}, bn)
	got := out.String()
	for _, want := range []string{"P99", "HEADROOM", "out=+0.37", "f1*=", "attributed tail-latency bottleneck"} {
		if !strings.Contains(got, want) {
			t.Errorf("latency view missing %q:\n%s", want, got)
		}
	}
	// p99 of 200×1ms + 1×5ms sits at ~1ms, rendered at ms scale.
	if !strings.Contains(got, "out=1.0") || !strings.Contains(got, "ms") {
		t.Errorf("p99 column not ~1ms:\n%s", got)
	}

	// A digest without sketch or headroom renders dashes, not garbage.
	plain, _ := statNode(t, "n2")
	repPlain := scrapeNode(plain.Client(), plain.URL, "", 0)
	out.Reset()
	render(&out, []*nodeReport{repPlain}, nil)
	if !strings.Contains(out.String(), "\t") && !strings.Contains(out.String(), "-") {
		t.Errorf("plain node missing dash columns:\n%s", out.String())
	}
}
