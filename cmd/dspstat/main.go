// dspstat scrapes the statistics plane of one or more running auroranode
// processes (their -http telemetry endpoints) and renders the cluster the
// way an operator wants to see it: a per-node load table from each node's
// gossiped load map, the per-box load split inside every digest, and the
// raw windowed series behind the numbers.
//
// Example:
//
//	auroranode -id n1 -listen :7001 -network net.json -stats 100ms -http :8001 &
//	dspstat -nodes http://127.0.0.1:8001
//
// Because the load map is gossiped, scraping ANY one node shows the whole
// cluster once the digests have converged; scraping several lets you spot
// a node whose view is stale (its Seq column lags).
//
// With -watch the view refreshes in place every -interval, and a rolling
// tail of the cluster's structured event journal (splits, sheds, link
// transitions, replays) is appended below the tables — the closest thing
// to a cockpit the cluster has.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"text/tabwriter"
	"time"

	"repro/internal/events"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// nodeReport is everything dspstat learned from one node's telemetry.
// Each endpoint is optional — a node without a stats plane still serves
// /links, and vice versa — so each section carries its own Has flag.
type nodeReport struct {
	Base     string // base URL the report came from
	LoadMap  telemetry.LoadMapResponse
	Stats    telemetry.StatsResponse
	Links    telemetry.LinksResponse
	Events   telemetry.EventsResponse
	HasLoad  bool  // /loadmap answered (node runs a stats plane)
	HasStat  bool  // /stats answered
	HasLink  bool  // /links answered (node runs a transport)
	HasEvent bool  // /events answered (node runs an event journal)
	Err      error // nothing answered; other fields are zero
}

// node is the scraped node's self-reported identity, from whichever
// endpoint answered.
func (rep *nodeReport) node() string {
	switch {
	case rep.HasLoad:
		return rep.LoadMap.Node
	case rep.HasLink:
		return rep.Links.Node
	case rep.HasEvent:
		return rep.Events.Node
	default:
		return rep.Stats.Node
	}
}

// scrapeNode pulls /loadmap, /stats, /links, and /events from one
// telemetry endpoint. series and window are passed through as the /stats
// query. Any subset of the endpoints may 404 (no stats plane, no
// transport, no journal); the report only fails when none of them answer.
func scrapeNode(client *http.Client, base, series string, window int) *nodeReport {
	return scrapeNodeSince(client, base, series, window, 0)
}

// scrapeNodeSince is scrapeNode with an /events cursor: only journal
// events newer than since come back, which is how -watch tails the
// cluster without re-reading history every refresh.
func scrapeNodeSince(client *http.Client, base, series string, window int, since uint64) *nodeReport {
	rep := &nodeReport{Base: base}
	errLoad := getJSON(client, base+"/loadmap", &rep.LoadMap)
	rep.HasLoad = errLoad == nil
	rep.HasLink = getJSON(client, base+"/links", &rep.Links) == nil
	rep.HasEvent = getJSON(client,
		fmt.Sprintf("%s/events?since=%d", base, since), &rep.Events) == nil
	q := ""
	if series != "" {
		q = "?series=" + series
	}
	if window > 0 {
		if q == "" {
			q = "?"
		} else {
			q += "&"
		}
		q += fmt.Sprintf("window=%d", window)
	}
	rep.HasStat = getJSON(client, base+"/stats"+q, &rep.Stats) == nil
	if !rep.HasLoad && !rep.HasLink && !rep.HasStat && !rep.HasEvent {
		rep.Err = errLoad
	}
	return rep
}

func getJSON(client *http.Client, url string, into interface{}) error {
	resp, err := client.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, into)
}

// render writes the operator view: one cluster table per scraped node
// (its load-map ranking with per-box loads, delivered-latency p99s, and
// QoS headroom from the digests' sketches) followed by that node's own
// windowed series. bn maps output → the box the SLO plane last attributed
// its tail latency to; those boxes render with a `*` in the BOXES column.
func render(w io.Writer, reports []*nodeReport, bn map[string]string) {
	hot := map[string]bool{}
	for _, box := range bn {
		hot[box] = true
	}
	for _, rep := range reports {
		if rep.Err != nil {
			fmt.Fprintf(w, "%s: scrape failed: %v\n", rep.Base, rep.Err)
			continue
		}
		fmt.Fprintf(w, "== %s (as seen by node %q) ==\n", rep.Base, rep.node())

		var tw *tabwriter.Writer
		if rep.HasLoad {
			byNode := map[string]stats.Digest{}
			for _, d := range rep.LoadMap.Digests {
				byNode[d.Node] = d
			}
			tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "NODE\tUTIL\tQUEUED\tSEQ\tDELIVERED\tP99\tHEADROOM\tBOXES")
			for _, node := range rep.LoadMap.Ranking {
				d := byNode[node]
				fmt.Fprintf(tw, "%s\t%.3f\t%.0f\t%d\t%s\t%s\t%s\t%s\n",
					d.Node, d.Util, d.Queued, d.Seq, outputColumn(d.Outputs),
					p99Column(d.Outputs), headroomColumn(d.Outputs),
					boxColumn(d.Boxes, hot))
			}
			tw.Flush()
			if len(bn) > 0 {
				fmt.Fprintln(w, "   * = attributed tail-latency bottleneck")
			}
		}

		if rep.HasLink && len(rep.Links.Links) > 0 {
			fmt.Fprintf(w, "-- links on %s --\n", rep.Links.Node)
			tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "PEER\tSTATE\tDIALS\tRECONN\tBUF\tREQUEUED\tDROPPED\tSENT")
			for _, l := range rep.Links.Links {
				state := l.State
				if !l.Supervised {
					state += " (unsupervised)"
				}
				fmt.Fprintf(tw, "%s\t%s\t%d\t%d\t%d\t%d\t%d\t%d\n",
					l.Peer, state, l.Dials, l.Reconnects, l.Buffered,
					l.Requeued, l.Dropped, l.MsgsSent)
			}
			tw.Flush()
		}

		if rep.HasStat && len(rep.Stats.Series) > 0 {
			fmt.Fprintf(w, "-- series on %s (window %dms, k=%d) --\n",
				rep.Stats.Node, rep.Stats.WindowNs/1e6, rep.Stats.K)
			series := append([]stats.SeriesExport(nil), rep.Stats.Series...)
			sort.Slice(series, func(i, j int) bool { return series[i].Name < series[j].Name })
			tw = tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
			fmt.Fprintln(tw, "SERIES\tKIND\tLATEST\tWINDOWED")
			for _, s := range series {
				fmt.Fprintf(tw, "%s\t%s\t%.4g\t%.4g\n", s.Name, s.Kind, s.Latest, s.Windowed)
			}
			tw.Flush()
		}
		fmt.Fprintln(w)
	}
}

// outputColumn formats a digest's delivered-QoS attribution: per output,
// the mean utility the QoS graphs awarded what was actually delivered,
// and the delivery rate behind it.
func outputColumn(outs []stats.OutputQoS) string {
	if len(outs) == 0 {
		return "-"
	}
	sorted := append([]stats.OutputQoS(nil), outs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Output < sorted[j].Output })
	parts := make([]string, len(sorted))
	for i, o := range sorted {
		parts[i] = fmt.Sprintf("%s=%.3fu", o.Output, o.Utility)
	}
	return strings.Join(parts, " ")
}

// p99Column formats each output's delivered-latency p99, decoded from the
// digest's gossiped quantile sketch. Outputs without a sketch render "-".
func p99Column(outs []stats.OutputQoS) string {
	var parts []string
	for _, o := range sortedOutputs(outs) {
		if len(o.Sketch) == 0 {
			continue
		}
		sk, _, err := sketch.DecodeSketch(o.Sketch)
		if err != nil || sk.Count() == 0 {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%s", o.Output, fmtNs(sk.Quantile(0.99))))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

// headroomColumn formats each output's forecast headroom — the fractional
// distance of the p99 trajectory to the QoS latency cliff. Outputs whose
// forecaster has not run render "-".
func headroomColumn(outs []stats.OutputQoS) string {
	var parts []string
	for _, o := range sortedOutputs(outs) {
		if o.Headroom <= stats.HeadroomUnknown {
			continue
		}
		parts = append(parts, fmt.Sprintf("%s=%+.2f", o.Output, o.Headroom))
	}
	if len(parts) == 0 {
		return "-"
	}
	return strings.Join(parts, " ")
}

func sortedOutputs(outs []stats.OutputQoS) []stats.OutputQoS {
	sorted := append([]stats.OutputQoS(nil), outs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Output < sorted[j].Output })
	return sorted
}

// fmtNs renders a nanosecond latency at operator scale.
func fmtNs(ns float64) string {
	switch {
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fus", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

// updateBottlenecks folds freshly scraped bottleneck attributions into
// the rolling output → box map; events arrive oldest-first, so the last
// write per output is the SLO plane's latest verdict.
func updateBottlenecks(bn map[string]string, reports []*nodeReport) {
	for _, rep := range reports {
		if !rep.HasEvent {
			continue
		}
		for _, ev := range rep.Events.Events {
			if ev.Kind == events.KindBottleneck {
				bn[ev.Subject] = ev.Detail
			}
		}
	}
}

// renderEventTail prints the merged, time-sorted tail of every scraped
// node's event journal — the cluster's recent control-plane history.
func renderEventTail(w io.Writer, tail []events.Event, max int) {
	if len(tail) == 0 || max <= 0 {
		return
	}
	if len(tail) > max {
		tail = tail[len(tail)-max:]
	}
	fmt.Fprintf(w, "-- cluster events (last %d) --\n", len(tail))
	fmt.Fprint(w, events.Format(tail))
}

// mergeEventTail folds freshly scraped events into the rolling tail,
// keeping it time-sorted and bounded.
func mergeEventTail(tail []events.Event, reports []*nodeReport, bound int) []events.Event {
	for _, rep := range reports {
		if rep.HasEvent {
			tail = append(tail, rep.Events.Events...)
		}
	}
	sort.SliceStable(tail, func(i, j int) bool { return tail[i].Time < tail[j].Time })
	if len(tail) > bound {
		tail = tail[len(tail)-bound:]
	}
	return tail
}

// boxColumn formats a digest's per-box loads, heaviest first. Boxes in
// hot — the SLO plane's attributed bottlenecks — are starred.
func boxColumn(boxes []stats.BoxLoad, hot map[string]bool) string {
	if len(boxes) == 0 {
		return "-"
	}
	sorted := append([]stats.BoxLoad(nil), boxes...)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Load != sorted[j].Load {
			return sorted[i].Load > sorted[j].Load
		}
		return sorted[i].Box < sorted[j].Box
	})
	parts := make([]string, len(sorted))
	for i, b := range sorted {
		mark := ""
		if hot[b.Box] {
			mark = "*"
		}
		parts[i] = fmt.Sprintf("%s%s=%.3f", b.Box, mark, b.Load)
	}
	return strings.Join(parts, " ")
}

// parseBases normalizes the -nodes flag into base URLs.
func parseBases(nodes string) []string {
	var bases []string
	for _, base := range strings.Split(nodes, ",") {
		base = strings.TrimRight(strings.TrimSpace(base), "/")
		if base == "" {
			continue
		}
		if !strings.Contains(base, "://") {
			base = "http://" + base
		}
		bases = append(bases, base)
	}
	return bases
}

// scrapeAll scrapes every base, advancing each node's /events cursor in
// place so the next round only fetches fresh events.
func scrapeAll(client *http.Client, bases []string, series string, window int, cursors map[string]uint64) []*nodeReport {
	reports := make([]*nodeReport, 0, len(bases))
	for _, base := range bases {
		rep := scrapeNodeSince(client, base, series, window, cursors[base])
		if rep.HasEvent {
			cursors[base] = rep.Events.Next
		}
		reports = append(reports, rep)
	}
	return reports
}

func main() {
	var (
		nodes    = flag.String("nodes", "", "comma-separated telemetry base URLs (required)")
		series   = flag.String("series", "", "series name prefix filter for /stats")
		window   = flag.Int("window", 0, "override how many complete windows the windowed value averages")
		watch    = flag.Bool("watch", false, "refresh the view in place until interrupted")
		interval = flag.Duration("interval", 2*time.Second, "refresh period for -watch")
		eventsN  = flag.Int("events", 12, "cluster event-tail lines to keep below the tables (0 hides the tail)")
	)
	flag.Parse()
	if *nodes == "" {
		fmt.Fprintln(os.Stderr, "dspstat: -nodes is required, e.g. -nodes http://127.0.0.1:8001")
		os.Exit(2)
	}
	bases := parseBases(*nodes)

	client := http.DefaultClient
	cursors := map[string]uint64{}
	bottlenecks := map[string]string{}
	var tail []events.Event

	if *watch {
		for {
			reports := scrapeAll(client, bases, *series, *window, cursors)
			tail = mergeEventTail(tail, reports, *eventsN)
			updateBottlenecks(bottlenecks, reports)
			// Clear the terminal and home the cursor: the view repaints in
			// place like top(1).
			fmt.Print("\033[2J\033[H")
			fmt.Printf("dspstat %s  (refresh %v, ^C to quit)\n\n",
				time.Now().Format("15:04:05"), *interval)
			render(os.Stdout, reports, bottlenecks)
			renderEventTail(os.Stdout, tail, *eventsN)
			time.Sleep(*interval)
		}
	}

	reports := scrapeAll(client, bases, *series, *window, cursors)
	tail = mergeEventTail(tail, reports, *eventsN)
	updateBottlenecks(bottlenecks, reports)
	failed := false
	for _, rep := range reports {
		if rep.Err != nil {
			failed = true
		}
	}
	render(os.Stdout, reports, bottlenecks)
	renderEventTail(os.Stdout, tail, *eventsN)
	if failed {
		os.Exit(1)
	}
}
