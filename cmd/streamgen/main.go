// streamgen emits synthetic workload tuples as CSV on stdout: the sensor,
// stock-quote, and network-flow generators the experiments use, with
// selectable arrival processes. Useful for feeding auroranode or external
// tools.
//
//	streamgen -workload sensors -count 1000 -rate 5000 -arrival bursty
package main

import (
	"bufio"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/stream"
	"repro/internal/wgen"
)

func main() {
	var (
		workload = flag.String("workload", "sensors", "sensors | quotes | flows")
		count    = flag.Int("count", 1000, "tuples to emit")
		rate     = flag.Float64("rate", 10000, "mean tuples per second")
		arrival  = flag.String("arrival", "poisson", "poisson | constant | bursty | pareto")
		seed     = flag.Int64("seed", 1, "deterministic seed")
		sensors  = flag.Int("sensors", 32, "sensor count (sensors workload)")
		skew     = flag.Float64("skew", 1.2, "zipf skew (sensors workload)")
		header   = flag.Bool("header", true, "emit a CSV header line")
	)
	flag.Parse()

	var arr wgen.Arrival
	switch *arrival {
	case "poisson":
		arr = wgen.NewPoissonArrival(*rate, *seed)
	case "constant":
		arr = wgen.NewConstantArrival(*rate)
	case "bursty":
		arr = wgen.NewOnOffArrival(*rate*4, *rate/4, 200, 200, *seed)
	case "pareto":
		arr = wgen.NewParetoArrival(*rate, 1.5, *seed)
	default:
		log.Fatalf("unknown arrival %q", *arrival)
	}

	var src wgen.Source
	switch *workload {
	case "sensors":
		src = wgen.NewSensorSource(*sensors, *skew, []string{"cambridge", "boston"}, arr, int64(*count), *seed)
	case "quotes":
		src = wgen.NewStockSource(16, arr, int64(*count), *seed)
	case "flows":
		src = wgen.NewNetFlowSource(256, arr, int64(*count), *seed)
	default:
		log.Fatalf("unknown workload %q", *workload)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	if *header {
		var names []string
		names = append(names, "ts_ns")
		for _, f := range src.Schema().Fields() {
			names = append(names, f.Name)
		}
		fmt.Fprintln(w, strings.Join(names, ","))
	}
	var now int64
	for {
		t, gap, ok := src.Next()
		if !ok {
			return
		}
		now += gap
		fmt.Fprintf(w, "%d", now)
		for _, v := range t.Vals {
			w.WriteByte(',')
			w.WriteString(csvCell(v))
		}
		w.WriteByte('\n')
	}
}

func csvCell(v stream.Value) string {
	if v.Kind() == stream.KindString {
		return v.AsString() // generator strings contain no separators
	}
	return v.Format()
}
