package main

import (
	"encoding/json"
	"net/http"
	"strconv"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// telemetry builds the node's HTTP introspection surface (stdlib only):
//
//	GET /healthz          liveness probe, "ok"
//	GET /metrics          JSON snapshot of every engine metric
//	GET /trace?n=100      the most recent flight-recorder events as JSON
//	GET /trace?format=chrome
//	                      same events as Chrome trace-event JSON, loadable
//	                      in Perfetto (ui.perfetto.dev) or chrome://tracing
//
// Every handler reads only concurrency-safe state (the metric registry is
// mutex-and-atomic, the flight recorder is a mutexed ring), so the HTTP
// goroutines never touch the single-threaded engine core.
func telemetry(id string, eng *engine.Engine) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	type metricsResponse struct {
		Node    string                   `json:"node"`
		Metrics metrics.RegistrySnapshot `json:"metrics"`
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(metricsResponse{Node: id, Metrics: eng.Metrics().Snapshot()})
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var evs []trace.Event
		if rec := eng.Tracer().Recorder(); rec != nil {
			evs = rec.Events()
		}
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			w.Write(trace.ChromeTrace(evs))
			return
		}
		if evs == nil {
			evs = []trace.Event{}
		}
		json.NewEncoder(w).Encode(evs)
	})

	return mux
}
