package main

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
)

var e2eSchema = stream.MustSchema("e2e",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

// buildPiece returns a one-box pass-all filter piece input -> box -> output.
func buildPiece(name, input, box, output string) *query.Network {
	return query.NewBuilder(name).
		AddBox(box, op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput(input, e2eSchema, box, 0).
		BindOutput(output, box, 0, nil).
		MustBuild()
}

// e2eSink collects finalized spans delivered at the tail output.
type e2eSink struct {
	mu    sync.Mutex
	spans []*trace.Span
	total int
}

func (s *e2eSink) add(t stream.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.total++
	if t.Span != nil {
		s.spans = append(s.spans, t.Span)
	}
}

func (s *e2eSink) snapshot() (int, []*trace.Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total, append([]*trace.Span(nil), s.spans...)
}

// TestTCPTraceDecomposition is the wall-clock half of the acceptance
// criterion: two engines in one process connected by the real TCP
// transport, tracing every tuple. Each delivered span must decompose
// exactly (queue+proc+net == end-to-end), carry a nonzero network
// component for the wire hop, and agree exactly with the tail engine's
// QoS monitor.
func TestTCPTraceDecomposition(t *testing.T) {
	const n = 50

	headTr := trace.NewTracer("head", 1, trace.NewRecorder(1024))
	headEng, err := engine.New(buildPiece("head", "in", "b0", "mid"), engine.Config{Tracer: headTr})
	if err != nil {
		t.Fatal(err)
	}
	headEng.SetRelayOutput("mid")

	tailTr := trace.NewTracer("tail", 1, trace.NewRecorder(1024))
	tailEng, err := engine.New(buildPiece("tail", "mid", "b1", "out"), engine.Config{Tracer: tailTr})
	if err != nil {
		t.Fatal(err)
	}

	sink := &e2eSink{}
	var tailMu sync.Mutex
	tailEng.OnOutput(func(_ string, tup stream.Tuple) { sink.add(tup) })

	tailTCP, err := transport.ListenTCP("tail", "127.0.0.1:0", func(from string, m transport.Msg) {
		if m.Kind != transport.KindData {
			return
		}
		arrive := time.Now().UnixNano()
		tailMu.Lock()
		defer tailMu.Unlock()
		tailEng.SetRelayInput(m.Stream)
		for _, tup := range m.Tuples {
			tup.Span.Mark(trace.KindNet, from+">tail", arrive)
			tailEng.Ingest(m.Stream, tup)
		}
		tailEng.RunUntilIdle(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tailTCP.Close()

	headTCP, err := transport.ListenTCP("head", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer headTCP.Close()
	if got, err := headTCP.Dial(tailTCP.Addr()); err != nil || got != "tail" {
		t.Fatalf("dial tail: got %q, %v", got, err)
	}

	headEng.OnOutput(func(name string, tup stream.Tuple) {
		if err := headTCP.Send("tail", transport.Msg{
			Stream: "mid", Kind: transport.KindData,
			BaseSeq: tup.Seq, Tuples: []stream.Tuple{tup},
		}); err != nil {
			t.Errorf("route mid: %v", err)
		}
	})

	for i := 0; i < n; i++ {
		headEng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(int64(i%7))))
		headEng.RunUntilIdle(0)
	}

	deadline := time.Now().Add(10 * time.Second)
	var total int
	var spans []*trace.Span
	for {
		total, spans = sink.snapshot()
		if total >= n || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if total != n || len(spans) != n {
		t.Fatalf("delivered %d tuples, %d traced; want %d/%d", total, len(spans), n, n)
	}

	var sum int64
	for i, sp := range spans {
		if !sp.Done() {
			t.Fatalf("span %d not finalized: %+v", i, sp)
		}
		q, p, nn := sp.Components()
		if q+p+nn != sp.Total() {
			t.Fatalf("span %d: %d+%d+%d != total %d", i, q, p, nn, sp.Total())
		}
		if nn <= 0 {
			t.Errorf("span %d crossed a real TCP hop but shows net=%d", i, nn)
		}
		sum += sp.Total()
	}

	// The monitor and the traces observed the very same timestamps.
	tailMu.Lock()
	lat := tailEng.Metrics().Histogram("output.out.latency_ns").Snapshot()
	tailMu.Unlock()
	if lat.Count != n {
		t.Fatalf("monitor observed %d deliveries, want %d", lat.Count, n)
	}
	if mean := float64(sum) / n; lat.Mean != mean {
		t.Errorf("monitor mean %f != trace mean %f", lat.Mean, mean)
	}

	// Both flight recorders saw the journey: the head recorded the wire
	// hop (its tracer never completes these spans), the tail recorded the
	// per-stage detail and delivery summaries.
	if tailTr.Recorder().Total() == 0 {
		t.Error("tail flight recorder is empty")
	}
	found := false
	for _, ev := range tailTr.Recorder().Events() {
		if ev.Kind == trace.KindNet && ev.Name == "head>tail" {
			found = true
			break
		}
	}
	if !found {
		t.Error("no head>tail network segment in the tail's flight recorder")
	}
}

// TestTelemetryEndpoints exercises the HTTP surface against a live traced
// engine: /healthz liveness, /metrics snapshot including the output
// latency histogram, and /trace in both raw and Chrome formats.
func TestTelemetryEndpoints(t *testing.T) {
	tr := trace.NewTracer("x", 1, trace.NewRecorder(256))
	eng, err := engine.New(buildPiece("solo", "in", "b0", "out"), engine.Config{Tracer: tr})
	if err != nil {
		t.Fatal(err)
	}
	const n = 10
	for i := 0; i < n; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(0)))
		eng.RunUntilIdle(0)
	}

	srv := httptest.NewServer(telemetry.Handler("x", eng, nil, nil))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var buf [1 << 20]byte
		m, _ := resp.Body.Read(buf[:])
		return resp.StatusCode, buf[:m]
	}

	if code, body := get("/healthz"); code != 200 || string(body) != "ok\n" {
		t.Fatalf("/healthz: %d %q", code, body)
	}

	code, body := get("/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	var mr struct {
		Node    string                   `json:"node"`
		Metrics metrics.RegistrySnapshot `json:"metrics"`
	}
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("/metrics JSON: %v\n%s", err, body)
	}
	if mr.Node != "x" {
		t.Errorf("node = %q, want x", mr.Node)
	}
	if got := mr.Metrics.Counters["engine.ingested"]; got != n {
		t.Errorf("engine.ingested = %d, want %d", got, n)
	}
	if h := mr.Metrics.Histograms["output.out.latency_ns"]; h.Count != n {
		t.Errorf("latency histogram count = %d, want %d", h.Count, n)
	}
	if h := mr.Metrics.Histograms["trace.queue_ns"]; h.Count != n {
		t.Errorf("trace.queue_ns count = %d, want %d", h.Count, n)
	}

	code, body = get("/trace?n=3")
	if code != 200 {
		t.Fatalf("/trace: %d", code)
	}
	var evs []trace.Event
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatalf("/trace JSON: %v\n%s", err, body)
	}
	if len(evs) == 0 || len(evs) > 3 {
		t.Errorf("/trace?n=3 returned %d events", len(evs))
	}

	code, body = get("/trace?format=chrome")
	if code != 200 {
		t.Fatalf("/trace chrome: %d", code)
	}
	var arr []map[string]any
	if err := json.Unmarshal(body, &arr); err != nil {
		t.Fatalf("chrome JSON: %v", err)
	}
	if len(arr) == 0 {
		t.Error("chrome trace is empty")
	}

	if code, _ := get("/trace?n=zilch"); code != 400 {
		t.Errorf("bad n: got %d, want 400", code)
	}
}

// TestTCPStatsDigestGossip is the real-wire half of the stats-plane
// acceptance criterion: digests published at the head node piggyback on
// data messages through the TCP transport codec and land, field for
// field, in the tail node's load map.
func TestTCPStatsDigestGossip(t *testing.T) {
	const windowNs = int64(10e6)

	headPlane := stats.NewPlane("head", windowNs, 8, 2)
	headEng, err := engine.New(buildPiece("head", "in", "b0", "mid"),
		engine.Config{Stats: headPlane.Store(), StatsEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	headEng.SetRelayOutput("mid")

	tailPlane := stats.NewPlane("tail", windowNs, 8, 2)
	tailEng, err := engine.New(buildPiece("tail", "mid", "b1", "out"),
		engine.Config{Stats: tailPlane.Store(), StatsEvery: 1})
	if err != nil {
		t.Fatal(err)
	}

	var tailMu sync.Mutex
	tailTCP, err := transport.ListenTCP("tail", "127.0.0.1:0", func(from string, m transport.Msg) {
		tailMu.Lock()
		defer tailMu.Unlock()
		if len(m.Digests) > 0 {
			tailPlane.Merge(m.Digests)
		}
		if m.Kind != transport.KindData {
			return
		}
		for _, tup := range m.Tuples {
			tailEng.Ingest(m.Stream, tup)
		}
		tailEng.RunUntilIdle(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer tailTCP.Close()

	headTCP, err := transport.ListenTCP("head", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer headTCP.Close()
	if got, err := headTCP.Dial(tailTCP.Addr()); err != nil || got != "tail" {
		t.Fatalf("dial tail: got %q, %v", got, err)
	}

	// Build a head digest with box-level load, then route tuples carrying
	// the head's gossip — exactly what main.go's OnOutput hook does.
	for i := 0; i < 20; i++ {
		headEng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(3)))
		headEng.RunUntilIdle(0)
	}
	now := 5 * windowNs
	headEng.SampleStats(now - windowNs)
	headEng.SampleStats(now)
	headPlane.Store().Observe(stats.SeriesNodeUtil, stats.KindGauge, now, 0.625)
	published := headPlane.Publish(now + windowNs)
	if len(published.Boxes) == 0 {
		t.Fatalf("head digest has no box loads: %+v", published)
	}

	headEng.OnOutput(func(_ string, tup stream.Tuple) {
		if err := headTCP.Send("tail", transport.Msg{
			Stream: "mid", Kind: transport.KindData, BaseSeq: tup.Seq,
			Tuples:  []stream.Tuple{tup},
			Digests: headPlane.Gossip(),
		}); err != nil {
			t.Errorf("route mid: %v", err)
		}
	})
	headEng.Ingest("in", stream.NewTuple(stream.Int(99), stream.Int(3)))
	headEng.RunUntilIdle(0)

	deadline := time.Now().Add(10 * time.Second)
	for {
		tailMu.Lock()
		d, ok := tailPlane.Map().Get("head")
		tailMu.Unlock()
		if ok {
			if d.Seq != published.Seq || d.At != published.At || d.Util != published.Util {
				t.Fatalf("digest mangled in flight: got %+v, sent %+v", d, published)
			}
			if len(d.Boxes) != len(published.Boxes) {
				t.Fatalf("box loads mangled: got %+v, sent %+v", d.Boxes, published.Boxes)
			}
			for i := range d.Boxes {
				if d.Boxes[i] != published.Boxes[i] {
					t.Fatalf("box %d mangled: got %+v, sent %+v", i, d.Boxes[i], published.Boxes[i])
				}
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("tail never received the head's digest")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The tail's map now ranks both nodes; the head published util 0.625
	// against the idle tail.
	tailMu.Lock()
	tailPlane.Publish(now)
	ranking := tailPlane.Map().Ranking()
	tailMu.Unlock()
	if len(ranking) != 2 || ranking[0] != "head" {
		t.Errorf("tail ranking = %v, want head first", ranking)
	}
}
