// auroranode runs one Aurora server as an OS process speaking the
// multiplexed TCP transport of §4.3, so a query network can be partitioned
// across real processes the same way Cluster partitions it across
// simulated ones.
//
// The node loads its piece of the query network from a JSON file, accepts
// tuples for its input streams from upstream peers (or generates them with
// -gen), and routes its outputs either to downstream peers or to stdout.
//
// Example — a two-process chain:
//
//	auroranode -id n2 -listen 127.0.0.1:7002 -network tail.json -print out &
//	auroranode -id n1 -listen 127.0.0.1:7001 -network head.json \
//	    -peer n2=127.0.0.1:7002 -route mid=n2/mid \
//	    -gen sensors=in -gen-count 10000
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	netpkg "net"
	"net/http"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/ha"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transport"
	"repro/internal/wgen"
)

// buildVersion identifies the binary in /metrics; override with
//
//	go build -ldflags "-X main.buildVersion=v1.2.3" ./cmd/auroranode
var buildVersion = "dev"

// netFile is the JSON description of one node's piece of a query network.
type netFile struct {
	Name  string `json:"name"`
	Boxes []struct {
		ID     string            `json:"id"`
		Kind   string            `json:"kind"`
		Params map[string]string `json:"params"`
	} `json:"boxes"`
	Arcs []struct {
		From string `json:"from"` // "box:port"
		To   string `json:"to"`
	} `json:"arcs"`
	Inputs []struct {
		Name   string `json:"name"`
		Schema []struct {
			Name string `json:"name"`
			Kind string `json:"kind"` // int, float, string, bool
		} `json:"schema"`
		Box  string `json:"box"`
		Port int    `json:"port"`
	} `json:"inputs"`
	Outputs []struct {
		Name string `json:"name"`
		Box  string `json:"box"`
		Port int    `json:"port"`
		// Optional latency QoS graph (§7.1): utility 1 up to good ms,
		// linear to 0 at zero ms. Both must be set; enables delivered-QoS
		// attribution and the -slo plane's cliff forecasting.
		QoSGoodMs float64 `json:"qos_good_ms"`
		QoSZeroMs float64 `json:"qos_zero_ms"`
	} `json:"outputs"`
}

func parseKind(s string) (stream.Kind, error) {
	switch s {
	case "int":
		return stream.KindInt, nil
	case "float":
		return stream.KindFloat, nil
	case "string":
		return stream.KindString, nil
	case "bool":
		return stream.KindBool, nil
	}
	return stream.KindInvalid, fmt.Errorf("unknown kind %q", s)
}

func parsePort(s string) (query.Port, error) {
	i := strings.LastIndexByte(s, ':')
	if i < 0 {
		return query.Port{Box: s}, nil
	}
	var port int
	if _, err := fmt.Sscanf(s[i+1:], "%d", &port); err != nil {
		return query.Port{}, fmt.Errorf("bad port in %q", s)
	}
	return query.Port{Box: s[:i], Port: port}, nil
}

func loadNetwork(path string) (*query.Network, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var nf netFile
	if err := json.Unmarshal(data, &nf); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	b := query.NewBuilder(nf.Name)
	for _, box := range nf.Boxes {
		b.AddBox(box.ID, op.Spec{Kind: box.Kind, Params: box.Params})
	}
	for _, a := range nf.Arcs {
		from, err := parsePort(a.From)
		if err != nil {
			return nil, err
		}
		to, err := parsePort(a.To)
		if err != nil {
			return nil, err
		}
		b.ConnectPorts(from, to, false)
	}
	for _, in := range nf.Inputs {
		fields := make([]stream.Field, len(in.Schema))
		for i, f := range in.Schema {
			k, err := parseKind(f.Kind)
			if err != nil {
				return nil, err
			}
			fields[i] = stream.Field{Name: f.Name, Kind: k}
		}
		schema, err := stream.NewSchema(in.Name, fields...)
		if err != nil {
			return nil, err
		}
		b.BindInput(in.Name, schema, in.Box, in.Port)
	}
	for _, o := range nf.Outputs {
		var spec *qos.Spec
		if o.QoSGoodMs > 0 && o.QoSZeroMs > o.QoSGoodMs {
			spec = &qos.Spec{Latency: qos.DefaultLatency(o.QoSGoodMs*1e6, o.QoSZeroMs*1e6)}
		}
		b.BindOutput(o.Name, o.Box, o.Port, spec)
	}
	return b.Build()
}

// multiFlag collects repeated -flag key=value pairs.
type multiFlag map[string]string

func (m multiFlag) String() string { return fmt.Sprint(map[string]string(m)) }
func (m multiFlag) Set(s string) error {
	i := strings.IndexByte(s, '=')
	if i <= 0 {
		return fmt.Errorf("want key=value, got %q", s)
	}
	m[s[:i]] = s[i+1:]
	return nil
}

func main() {
	var (
		id       = flag.String("id", "node", "node identity")
		listen   = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		netPath  = flag.String("network", "", "query network JSON file (required)")
		print    = flag.String("print", "", "output stream to print to stdout")
		genSpec  = flag.String("gen", "", "self-generate workload: sensors=<input> | quotes=<input> | flows=<input>")
		genN     = flag.Int("gen-count", 10000, "tuples to generate")
		genRate  = flag.Float64("gen-rate", 10000, "generated tuples per second")
		quiet    = flag.Bool("quiet", false, "suppress progress logging")
		httpAddr = flag.String("http", "", "telemetry HTTP listen address (/metrics, /trace, /healthz, /stats, /loadmap, /links); empty disables")
		traceN   = flag.Int("trace", 0, "trace every Nth locally ingested tuple (0 disables tracing)")
		traceBuf = flag.Int("trace-buf", 4096, "flight-recorder ring capacity")
		statsPer = flag.Duration("stats", 0, "statistics-plane sample period (0 disables the stats plane)")
		statsWin = flag.Int("stats-windows", 8, "windowed-store ring size per series")
		linkPing = flag.Duration("link-ping", time.Second, "peer-link keepalive period (0 disables pings and read-idle detection)")
		linkBuf  = flag.Int("link-buffer", 1024, "messages buffered per peer link across reconnects")
		haRoutes = flag.Bool("ha-routes", true, "frame routed outputs with the HA link protocol (sequence, retain, replay on reconnect, dedup downstream)")
		workers  = flag.Int("workers", 0, "engine worker pool size for wall-clock execution (0 or 1 = serial)")
		autoN    = flag.Int("autosplit", 0, "key-shard a hot box into N replicas at runtime when the stats plane flags it (0 disables; needs a splittable operator)")
		eventBuf = flag.Int("events-buf", 1024, "structured event journal ring capacity (0 disables the journal)")
		dataDir  = flag.String("data-dir", "", "durable state directory: output logs and connection-point spill land in segment files there, dedup + stats-plane state is checkpointed, and a restart recovers all of it (empty disables durability)")
		sloOn    = flag.Bool("slo", false, "enable the latency-SLO plane: per-output quantile sketches, tail attribution, and cliff forecasting (served at /latency and as Prometheus histograms)")
	)
	peers := multiFlag{}
	routes := multiFlag{}
	flag.Var(peers, "peer", "peer id=host:port (repeatable)")
	flag.Var(routes, "route", "output routing out=peer/stream (repeatable)")
	flag.Parse()

	if *netPath == "" {
		log.Fatal("-network is required")
	}
	net, err := loadNetwork(*netPath)
	if err != nil {
		log.Fatalf("load network: %v", err)
	}
	var tracer *trace.Tracer
	if *traceN > 0 {
		tracer = trace.NewTracer(*id, *traceN, trace.NewRecorder(*traceBuf))
	}
	// The event journal is the node's flight recorder for control-plane
	// decisions: every split/unsplit, shed transition, link state change,
	// and HA replay lands here and is served at /events.
	var journal *events.Journal
	if *eventBuf > 0 {
		journal = events.NewJournal(*id, *eventBuf)
	}
	// Durable state: the data directory survives the process. Output logs
	// and connection-point spill live there as segment files; the small
	// checkpoint carries each inbound link's dedup prefix and the stats
	// plane's digest sequence. A restart rebuilds all of it before any
	// traffic arrives.
	var mgr *storage.Manager
	var ckpt storage.NodeCheckpoint
	if *dataDir != "" {
		mgr, err = storage.Open(*dataDir)
		if err != nil {
			log.Fatalf("data dir: %v", err)
		}
		defer mgr.Close()
		var ok bool
		ckpt, ok, err = mgr.LoadCheckpoint()
		if err != nil {
			log.Printf("checkpoint load: %v (starting cold)", err)
		}
		if ok {
			if !*quiet {
				log.Printf("recovered checkpoint: %d inbound link watermarks, plane seq %d",
					len(ckpt.DedupRecv), ckpt.PlaneSeq)
			}
			if journal != nil {
				journal.Append(events.Event{
					Time: time.Now().UnixNano(), Kind: events.KindRecovery,
					Subject: *id, Detail: "checkpoint",
					V1: float64(len(ckpt.DedupRecv)), V2: float64(ckpt.PlaneSeq),
				})
			}
		}
	}

	ecfg := engine.Config{Tracer: tracer, Workers: *workers, Journal: journal}
	if mgr != nil {
		// Every marked arc's history spills to disk past the memory
		// budget instead of dropping, and a restarted node's ad hoc
		// attachments replay the prior incarnation's retained window.
		ecfg.CPSpill = func(p query.Port) stream.Spill {
			l, err := mgr.CPLog(fmt.Sprintf("%s:%d", p.Box, p.Port))
			if err != nil {
				log.Printf("cp spill %s:%d: %v (memory-only)", p.Box, p.Port, err)
				return nil
			}
			return storage.NewCPSpill(l, 0)
		}
	}
	var plane *stats.Plane
	if *statsPer > 0 {
		plane = stats.NewPlane(*id, statsPer.Nanoseconds(), *statsWin, 0)
		if ckpt.PlaneSeq > 0 {
			// Peers merge digests keep-max-seq; a reborn plane restarting
			// at zero would be ignored until it out-counted its past self.
			plane.ResumeSeq(ckpt.PlaneSeq)
		}
		ecfg.Stats = plane.Store()
		ecfg.StatsEvery = 64
	}
	if *autoN > 0 {
		// The controller rides the stats plane; without -stats the engine
		// creates a private windowed store just for hot-box detection.
		ecfg.AutoSplit = &engine.AutoSplitConfig{Replicas: *autoN}
	}
	if *sloOn {
		// Defaults throughout; like autosplit, the plane builds a private
		// windowed store when -stats is off.
		ecfg.SLO = &engine.SLOConfig{}
	}
	eng, err := engine.New(net, ecfg)
	if err != nil {
		log.Fatalf("engine: %v", err)
	}
	// Routed outputs leave this process for a downstream peer, so their
	// spans must stay open; only a terminal output finalizes a trace.
	for name := range routes {
		eng.SetRelayOutput(name)
	}

	// mu serializes run-loop invocations (Step trains or one worker pool at
	// a time; concurrent RunParallel calls are an engine panic). Ingest is
	// engine-safe without it, but the handlers below take it anyway so a
	// serial engine behaves exactly as before.
	var mu sync.Mutex
	var tcp *transport.TCP
	// outMu guards the delivery counters and stdout printing: with a worker
	// pool, OnOutput fires from pool goroutines. It must be distinct from
	// mu — OnOutput runs while the run loop holds mu.
	var outMu sync.Mutex
	delivered := map[string]uint64{}

	// HA-framed routes: each routed output gets a LinkSender that stamps,
	// retains, and replays across reconnects; each inbound HA-framed
	// stream gets a LinkReceiver that dedups and acks. Keyed by
	// "peer/stream" — exactly the -route destination syntax.
	var lmu sync.Mutex
	senders := map[string]*ha.LinkSender{}
	receivers := map[string]*ha.LinkReceiver{}

	// saveCheckpoint snapshots the cheap-to-save, expensive-to-lose state:
	// each inbound link's complete received prefix and the plane's digest
	// seq. Called before every outbound ack (so upstream truncation never
	// outruns what this node has persisted) and from the periodic ticker.
	// Unchanged state is skipped; journalIt marks the periodic saves that
	// land in the event journal without flooding it at ack cadence.
	var ckMu sync.Mutex
	var ckLastSig string
	saveCheckpoint := func(journalIt bool) {
		if mgr == nil {
			return
		}
		cp := storage.NodeCheckpoint{SavedAt: time.Now().UnixNano()}
		lmu.Lock()
		if len(receivers) > 0 {
			cp.DedupRecv = make(map[string]uint64, len(receivers))
			for k, r := range receivers {
				cp.DedupRecv[k] = r.ContiguousRecv()
			}
		}
		lmu.Unlock()
		if plane != nil {
			cp.PlaneSeq = plane.Seq()
		}
		sig := fmt.Sprintf("%d|%v", cp.PlaneSeq, cp.DedupRecv)
		ckMu.Lock()
		defer ckMu.Unlock()
		if sig == ckLastSig {
			return
		}
		if err := mgr.SaveCheckpoint(cp); err != nil {
			log.Printf("checkpoint save: %v", err)
			return
		}
		ckLastSig = sig
		if journalIt && journal != nil {
			journal.Append(events.Event{
				Time: cp.SavedAt, Kind: events.KindCheckpoint, Subject: *id,
				V1: float64(len(cp.DedupRecv)), V2: float64(cp.PlaneSeq),
			})
		}
	}
	getSender := func(peer, remoteStream string) *ha.LinkSender {
		lmu.Lock()
		defer lmu.Unlock()
		key := peer + "/" + remoteStream
		s := senders[key]
		if s == nil {
			send := func(batch []stream.Tuple) error {
				m := transport.Msg{
					Stream: remoteStream, Kind: transport.KindData,
					BaseSeq: batch[0].Seq, Tuples: batch,
					Ctrl: ha.LinkBatchCtrl(),
				}
				if plane != nil {
					m.Digests = plane.Gossip()
				}
				return tcp.Send(peer, m)
			}
			if mgr != nil {
				// Durable route: rebuild the output log from whatever
				// segments survived the last incarnation, then write every
				// Send through to disk before it counts as committed.
				if olog, lerr := mgr.OutputLog(key); lerr != nil {
					log.Printf("output log %s: %v (route running without durability)", key, lerr)
					s = ha.NewLinkSender(send)
				} else {
					sink := storage.NewOutputSink(olog)
					origins, tuples, rerr := sink.RecoveredEntries()
					if rerr != nil {
						log.Printf("output log %s: replay: %v (recovered prefix only)", key, rerr)
					}
					entries := make([]ha.LogEntry, len(tuples))
					for i := range tuples {
						entries[i] = ha.LogEntry{Origin: origins[i], Tuple: tuples[i]}
					}
					s = ha.RecoverLinkSender(entries, send)
					s.AttachDurable(sink)
					if len(entries) > 0 {
						if !*quiet {
							log.Printf("route %s: recovered %d unacknowledged entries from disk", key, len(entries))
						}
						if journal != nil {
							corr := journal.NewCorr()
							journal.Append(events.Event{
								Time: time.Now().UnixNano(), Kind: events.KindRecovery,
								Subject: key, Detail: "output log from disk", Corr: corr,
								V1: float64(len(entries)),
							})
							// The corr chains this recovery to the resync
							// that replays the rebuilt suffix.
							s.SetCorr(corr)
						}
					}
				}
			} else {
				s = ha.NewLinkSender(send)
			}
			s.Name = key
			s.Journal = journal
			senders[key] = s
		}
		return s
	}
	// getReceiver's deliver closure runs with mu held (OnBatch is only
	// invoked from the transport handler below).
	getReceiver := func(from, streamName string) *ha.LinkReceiver {
		lmu.Lock()
		defer lmu.Unlock()
		key := from + "/" + streamName
		r := receivers[key]
		if r == nil {
			r = ha.NewLinkReceiver(
				func(t stream.Tuple) {
					t.Span.Mark(trace.KindNet, from+">"+*id, time.Now().UnixNano())
					eng.Ingest(streamName, t)
				},
				func(recv uint64) {
					// Checkpoint before the ack leaves: the upstream may
					// truncate its log the moment it sees recv, so this
					// node's persisted watermark must already cover it.
					saveCheckpoint(false)
					_ = tcp.Send(from, transport.Msg{
						Stream: streamName, Kind: transport.KindBackChannel,
						Ctrl: ha.AppendLinkAck(nil, recv),
					})
				}, 32)
			if seq := ckpt.DedupRecv[key]; seq > 0 {
				// The previous incarnation had acknowledged this prefix;
				// a resync replaying it must be suppressed, not re-ingested.
				r.SeedDedup(seq)
			}
			receivers[key] = r
		}
		return r
	}

	eng.OnOutput(func(name string, t stream.Tuple) {
		outMu.Lock()
		delivered[name]++
		if name == *print {
			fmt.Println(t.String())
		}
		outMu.Unlock()
		if dest, ok := routes[name]; ok {
			i := strings.IndexByte(dest, '/')
			if i < 0 {
				return
			}
			peer, remoteStream := dest[:i], dest[i+1:]
			if *haRoutes {
				// The output log owns delivery now: stamped, retained until
				// the downstream acks, replayed on reconnect.
				getSender(peer, remoteStream).Send(t)
				return
			}
			m := transport.Msg{
				Stream: remoteStream, Kind: transport.KindData,
				BaseSeq: t.Seq, Tuples: []stream.Tuple{t},
			}
			if plane != nil {
				// The stats trailer rides along for free: every routed
				// batch gossips the sender's current load map.
				m.Digests = plane.Gossip()
			}
			if err := tcp.Send(peer, m); err != nil && !*quiet {
				log.Printf("route %s -> %s: %v", name, dest, err)
			}
		}
	})

	tcp, err = transport.ListenTCP(*id, *listen, func(from string, m transport.Msg) {
		if plane != nil && len(m.Digests) > 0 {
			plane.Merge(m.Digests)
		}
		if m.Kind == transport.KindBackChannel {
			// Complete-prefix ack from a downstream HA receiver: truncate
			// the matching output log.
			if recv, ok := ha.ParseLinkAck(m.Ctrl); ok {
				lmu.Lock()
				s := senders[from+"/"+m.Stream]
				lmu.Unlock()
				if s != nil {
					s.Ack(recv)
				}
			}
			return
		}
		if m.Kind != transport.KindData {
			return
		}
		arrive := time.Now().UnixNano()
		if *haRoutes && ha.IsLinkBatch(m.Ctrl) {
			// HA-framed batch: dedup by link sequence, then ingest. The
			// receiver acks its complete prefix so the upstream log drains.
			r := getReceiver(from, m.Stream)
			mu.Lock()
			defer mu.Unlock()
			eng.SetRelayInput(m.Stream)
			r.OnBatch(m.Tuples)
			eng.Run()
			return
		}
		mu.Lock()
		defer mu.Unlock()
		// Tuples arriving from a peer are mid-path: their traces began at
		// the sampling edge upstream, so this input must not re-sample,
		// and the time since the sender's last mark — serialization,
		// flight, demux — is charged to the network component.
		eng.SetRelayInput(m.Stream)
		for _, t := range m.Tuples {
			t.Span.Mark(trace.KindNet, from+">"+*id, arrive)
			eng.Ingest(m.Stream, t)
		}
		eng.Run()
	}, transport.LinkConfig{PingPeriod: *linkPing, BufferLimit: *linkBuf})
	if err != nil {
		log.Fatalf("listen: %v", err)
	}
	defer tcp.Close()
	tcp.SetJournal(journal)
	if !*quiet {
		log.Printf("node %s listening on %s, network %s", *id, tcp.Addr(), net)
	}

	// Link lifecycle: log and trace-mark every state transition, and on a
	// re-established link replay each affected route's unacknowledged
	// output (the no-loss half; the receiver's dedup is the no-dup half).
	tcp.SetOnLinkState(func(peer string, from, to transport.LinkState) {
		if !*quiet {
			log.Printf("link %s: %s -> %s", peer, from, to)
		}
		tracer.Annotate("link "+peer+" "+to.String(), time.Now().UnixNano())
	})
	tcp.SetOnEstablished(func(peer string, reconnected bool) {
		// A durable node resyncs on every establish, not just reconnects:
		// a restarted process's first connection is brand new to this
		// transport, but the suffix rebuilt from segment files still needs
		// replaying (an empty log replays nothing, so fresh routes are
		// unaffected).
		if !reconnected && mgr == nil {
			return
		}
		lmu.Lock()
		var rs []*ha.LinkSender
		for key, s := range senders {
			if strings.HasPrefix(key, peer+"/") {
				rs = append(rs, s)
			}
		}
		lmu.Unlock()
		for _, s := range rs {
			left := s.Resync()
			if !*quiet {
				log.Printf("link %s established: replayed %d total, %d still outstanding",
					peer, s.Replayed(), left)
			}
		}
	})

	if plane != nil {
		// Sampler: on each stats period, fold the engine's sources into
		// the windowed store, derive node-level gauges, and publish a
		// fresh digest for the gossip to carry.
		go func() {
			tick := time.NewTicker(*statsPer)
			defer tick.Stop()
			var lastBusy int64
			var lastAt = time.Now().UnixNano()
			for range tick.C {
				now := time.Now().UnixNano()
				mu.Lock()
				eng.SampleStats(now)
				queued := eng.QueuedTuples()
				busy := eng.BusyNs()
				mu.Unlock()
				st := plane.Store()
				if elapsed := now - lastAt; elapsed > 0 {
					util := float64(busy-lastBusy) / float64(elapsed)
					if util > 1 {
						util = 1
					}
					st.Observe(stats.SeriesNodeUtil, stats.KindGauge, now, util)
				}
				lastBusy, lastAt = busy, now
				st.Observe(stats.SeriesNodeQueued, stats.KindGauge, now, float64(queued))
				// Windowed pressure, not the latched all-time Pressure():
				// a transient burst shows for the windows it spans, then
				// the reading decays as the backlog drains.
				st.Observe(stats.SeriesNodePressure, stats.KindGauge, now,
					eng.Storage().PressureWindow())
				eng.Storage().ResetPressureWindow()
				plane.Publish(now)
			}
		}()
	}

	// stopped flips once the generator has drained and the node is about
	// to exit: /healthz reports 503 "stopped" so scrapers and probes see
	// the node leave the cluster before the process goes away.
	var stopped atomic.Bool
	if *httpAddr != "" {
		ln, err := netpkg.Listen("tcp", *httpAddr)
		if err != nil {
			log.Fatalf("telemetry listen: %v", err)
		}
		if !*quiet {
			log.Printf("telemetry on http://%s (/metrics /trace /events /healthz /stats /loadmap /links)", ln.Addr())
		}
		go http.Serve(ln, telemetry.NewHandler(telemetry.Config{
			Node:    *id,
			Engine:  eng,
			Plane:   plane,
			Links:   tcp,
			Journal: journal,
			Version: buildVersion,
			Health: func() (bool, string) {
				if stopped.Load() {
					return false, "stopped"
				}
				return true, ""
			},
		}))
	}

	// Recovery enumeration: rebuild a sender (and its retained suffix) for
	// every route with an on-disk output log, before any peer connects —
	// the establish hook above then replays each one through the normal
	// resync path as soon as its link comes up.
	if mgr != nil && *haRoutes {
		keys, err := mgr.OutputLogKeys()
		if err != nil {
			log.Printf("output log enumeration: %v", err)
		}
		for _, key := range keys {
			i := strings.IndexByte(key, '/')
			if i <= 0 {
				continue
			}
			getSender(key[:i], key[i+1:])
		}
	}

	// Supervised peers: the transport dials with backoff, reconnects when
	// the connection dies, and buffers routed output across the gaps — a
	// peer that is down at startup is no longer fatal.
	for peer, addr := range peers {
		if err := tcp.AddPeer(peer, addr); err != nil {
			log.Fatalf("peer %s=%s: %v", peer, addr, err)
		}
	}

	if *haRoutes {
		// Cadence acks alone leave a tail in the upstream log when the
		// stream pauses; a periodic AckNow drains it.
		go func() {
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for range tick.C {
				lmu.Lock()
				rs := make([]*ha.LinkReceiver, 0, len(receivers))
				for _, r := range receivers {
					rs = append(rs, r)
				}
				lmu.Unlock()
				for _, r := range rs {
					r.AckNow()
				}
			}
		}()
	}
	if mgr != nil {
		// Periodic checkpoint, journaled: covers the plane seq (which
		// advances without inbound traffic) and any watermark movement the
		// ack path already persisted quietly.
		go func() {
			tick := time.NewTicker(time.Second)
			defer tick.Stop()
			for range tick.C {
				saveCheckpoint(true)
			}
		}()
	}

	if *genSpec != "" {
		i := strings.IndexByte(*genSpec, '=')
		if i <= 0 {
			log.Fatalf("bad -gen %q", *genSpec)
		}
		kind, input := (*genSpec)[:i], (*genSpec)[i+1:]
		arrival := wgen.NewPoissonArrival(*genRate, 1)
		var src wgen.Source
		switch kind {
		case "sensors":
			src = wgen.NewSensorSource(32, 1.2, []string{"cambridge", "boston"}, arrival, int64(*genN), 1)
		case "quotes":
			src = wgen.NewStockSource(16, arrival, int64(*genN), 1)
		case "flows":
			src = wgen.NewNetFlowSource(256, arrival, int64(*genN), 1)
		default:
			log.Fatalf("unknown generator %q", kind)
		}
		// A worker pool costs goroutine startup per invocation, so with
		// workers the generator runs it on batches instead of per tuple.
		runEvery := 1
		if *workers > 1 {
			runEvery = 256
		}
		start := time.Now()
		count := 0
		for {
			t, gap, ok := src.Next()
			if !ok {
				break
			}
			time.Sleep(time.Duration(gap))
			mu.Lock()
			eng.Ingest(input, t)
			count++
			if count%runEvery == 0 {
				eng.Run()
			}
			mu.Unlock()
		}
		mu.Lock()
		eng.Run()
		eng.Drain()
		mu.Unlock()
		stopped.Store(true)
		if !*quiet {
			outMu.Lock()
			log.Printf("generated %d tuples in %v; deliveries: %v",
				count, time.Since(start).Round(time.Millisecond), delivered)
			outMu.Unlock()
		}
		// Give routed messages a moment to flush before exiting; HA-framed
		// routes additionally wait (bounded) for their output logs to be
		// acknowledged empty, so a reconnect near the end loses nothing.
		flushDeadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(flushDeadline) {
			lmu.Lock()
			outstanding := 0
			for _, s := range senders {
				outstanding += s.Outstanding()
			}
			lmu.Unlock()
			if outstanding == 0 {
				break
			}
			time.Sleep(100 * time.Millisecond)
		}
		saveCheckpoint(false)
		time.Sleep(200 * time.Millisecond)
		return
	}

	select {} // serve forever
}
