package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadArtifact(t *testing.T) {
	dir := t.TempDir()

	// Missing baseline is not an error, just absent.
	art, err := loadArtifact(dir, "E01")
	if err != nil || art != nil {
		t.Fatalf("missing artifact: got %v, %v; want nil, nil", art, err)
	}

	want := benchArtifact{ID: "E01", Name: "fig 2", Scale: 0.5, ElapsedNS: 123456789}
	data, _ := json.Marshal(want)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_E01.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	art, err = loadArtifact(dir, "E01")
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "E01" || art.Scale != 0.5 || art.ElapsedNS != 123456789 {
		t.Errorf("loaded %+v, want %+v", art, want)
	}

	// Corrupt JSON must fail loudly, not read as an empty baseline.
	os.WriteFile(filepath.Join(dir, "BENCH_E02.json"), []byte("{nope"), 0o644)
	if _, err := loadArtifact(dir, "E02"); err == nil {
		t.Error("corrupt artifact should error")
	}
}

func TestBenchDelta(t *testing.T) {
	d := benchDelta{ID: "E04", BaselineNS: 100e6, CurrentNS: 130e6}
	if got := d.Pct(); got != 30 {
		t.Errorf("Pct = %g, want 30", got)
	}
	if !d.Regressed(25) {
		t.Error("30% slower must trip a 25% gate")
	}
	if d.Regressed(50) {
		t.Error("30% slower must pass a 50% gate")
	}
	if d.Regressed(0) {
		t.Error("zero threshold disarms the gate")
	}
	if s := d.String(); !strings.Contains(s, "E04") || !strings.Contains(s, "+30.0%") {
		t.Errorf("String = %q", s)
	}

	faster := benchDelta{ID: "E05", BaselineNS: 100e6, CurrentNS: 80e6}
	if faster.Pct() != -20 || faster.Regressed(10) {
		t.Errorf("speedup misreported: Pct=%g", faster.Pct())
	}

	// A zero baseline (hand-edited or truncated artifact) never divides.
	zero := benchDelta{ID: "E06", BaselineNS: 0, CurrentNS: 50e6}
	if zero.Pct() != 0 || zero.Regressed(10) {
		t.Error("zero baseline should compare as neutral")
	}
}
