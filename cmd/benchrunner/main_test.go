package main

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestLoadArtifact(t *testing.T) {
	dir := t.TempDir()

	// Missing baseline is not an error, just absent.
	art, err := loadArtifact(dir, "E01")
	if err != nil || art != nil {
		t.Fatalf("missing artifact: got %v, %v; want nil, nil", art, err)
	}

	want := benchArtifact{ID: "E01", Name: "fig 2", Scale: 0.5, ElapsedNS: 123456789}
	data, _ := json.Marshal(want)
	if err := os.WriteFile(filepath.Join(dir, "BENCH_E01.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	art, err = loadArtifact(dir, "E01")
	if err != nil {
		t.Fatal(err)
	}
	if art.ID != "E01" || art.Scale != 0.5 || art.ElapsedNS != 123456789 {
		t.Errorf("loaded %+v, want %+v", art, want)
	}

	// Corrupt JSON must fail loudly, not read as an empty baseline.
	os.WriteFile(filepath.Join(dir, "BENCH_E02.json"), []byte("{nope"), 0o644)
	if _, err := loadArtifact(dir, "E02"); err == nil {
		t.Error("corrupt artifact should error")
	}
}

func TestBenchDelta(t *testing.T) {
	d := benchDelta{ID: "E04", BaselineNS: 100e6, CurrentNS: 130e6}
	if got := d.Pct(); got != 30 {
		t.Errorf("Pct = %g, want 30", got)
	}
	if !d.Regressed(25) {
		t.Error("30% slower must trip a 25% gate")
	}
	if d.Regressed(50) {
		t.Error("30% slower must pass a 50% gate")
	}
	if d.Regressed(0) {
		t.Error("zero threshold disarms the gate")
	}
	if s := d.String(); !strings.Contains(s, "E04") || !strings.Contains(s, "+30.0%") {
		t.Errorf("String = %q", s)
	}

	faster := benchDelta{ID: "E05", BaselineNS: 100e6, CurrentNS: 80e6}
	if faster.Pct() != -20 || faster.Regressed(10) {
		t.Errorf("speedup misreported: Pct=%g", faster.Pct())
	}

	// A zero baseline (hand-edited or truncated artifact) never divides.
	zero := benchDelta{ID: "E06", BaselineNS: 0, CurrentNS: 50e6}
	if zero.Pct() != 0 || zero.Regressed(10) {
		t.Error("zero baseline should compare as neutral")
	}
}

// A benchmark without a usable baseline must report "new" — never a
// NaN/Inf percent from dividing by a missing or zero baseline — and must
// never trip the regression gate.
func TestBenchDeltaNew(t *testing.T) {
	cases := []struct {
		name string
		d    benchDelta
	}{
		{"missing", benchDelta{ID: "E01", BaselineNS: 0, CurrentNS: 5e6}},
		{"zero-current-too", benchDelta{ID: "E01", BaselineNS: 0, CurrentNS: 0}},
		{"negative", benchDelta{ID: "E01", BaselineNS: -1, CurrentNS: 5e6}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if !c.d.IsNew() {
				t.Fatal("IsNew() = false, want true")
			}
			if got := c.d.Delta(); got != "new" {
				t.Fatalf("Delta() = %q, want \"new\"", got)
			}
			if math.IsNaN(c.d.Pct()) || math.IsInf(c.d.Pct(), 0) {
				t.Fatalf("Pct() = %v, want finite", c.d.Pct())
			}
			if c.d.Regressed(25) {
				t.Fatal("new benchmark tripped the regression gate")
			}
			if s := c.d.String(); !strings.Contains(s, "new") {
				t.Fatalf("String() = %q, want it to mention \"new\"", s)
			}
		})
	}
	d := benchDelta{ID: "E01", BaselineNS: 100e6, CurrentNS: 150e6}
	if d.IsNew() {
		t.Fatal("IsNew() = true with a real baseline")
	}
	if got := d.Delta(); got != "+50.0%" {
		t.Fatalf("Delta() = %q, want \"+50.0%%\"", got)
	}
	// The artifact's delta field must marshal as a plain string — the bug
	// was NaN/Inf leaking into BENCH_*.json.
	data, err := json.Marshal(benchArtifact{ID: "E01", Delta: "new"})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"delta":"new"`) {
		t.Fatalf("artifact JSON = %s, want a \"delta\":\"new\" field", data)
	}
}
