// benchrunner regenerates the experiment tables of EXPERIMENTS.md from
// the command line: every figure of the paper has an experiment (E01..E16,
// plus E18's parallel worker-scaling sweep and the ablations) whose table
// this tool prints. The checked-in bench/BENCH_E18.json is the
// worker-scaling baseline (workers 1, 2, 4 over conflict-free chains)
// and bench/BENCH_E18B.json the runtime-autosplit baseline (serial vs
// 4 workers vs 4 workers + hot-box autosplit on Zipf keys); refresh them
// with `benchrunner -exp E18 -json bench/` and `-exp E18B`.
//
// Usage:
//
//	benchrunner            # run everything at full scale
//	benchrunner -exp E04   # one experiment
//	benchrunner -scale 0.1 # smaller workloads, faster run
//	benchrunner -list      # list experiments
//	benchrunner -json out/ # additionally write BENCH_<id>.json per experiment
//
// With -json, each experiment leaves a machine-readable BENCH_<id>.json
// (the typed table plus any attached metric snapshots and the wall time),
// so the performance trajectory can be tracked across commits without
// parsing the printed tables.
//
// With -baseline, each run is compared against the BENCH_<id>.json from a
// previous run and the wall-time delta printed; -regress-pct arms a gate
// that exits non-zero when any experiment slowed down past the threshold:
//
//	benchrunner -json out/ -baseline out/ -regress-pct 25
//
// -json and -baseline may share a directory: the baseline is read before
// the new artifact overwrites it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

// benchArtifact is the BENCH_<id>.json schema. Delta is a string, not a
// float: a run without a usable baseline records "new", so the artifact
// can never carry NaN or Inf (which a zero-baseline division produced,
// and which encoding/json refuses to marshal as numbers anyway).
type benchArtifact struct {
	ID        string     `json:"id"`
	Name      string     `json:"name"`
	Scale     float64    `json:"scale"`
	ElapsedNS int64      `json:"elapsed_ns"`
	Delta     string     `json:"delta,omitempty"` // "+12.3%", "-4.0%", or "new"
	Table     *exp.Table `json:"table"`
}

// loadArtifact reads a prior run's BENCH_<id>.json from dir. A missing
// file is not an error — it just means there is no baseline for that id.
func loadArtifact(dir, id string) (*benchArtifact, error) {
	data, err := os.ReadFile(filepath.Join(dir, "BENCH_"+id+".json"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var art benchArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, fmt.Errorf("BENCH_%s.json: %w", id, err)
	}
	return &art, nil
}

// benchDelta is one experiment's wall-time movement against its baseline.
type benchDelta struct {
	ID         string
	BaselineNS int64
	CurrentNS  int64
}

// IsNew reports that no usable baseline exists: the artifact was missing,
// or it recorded a zero/negative elapsed time. Either way there is
// nothing to divide by — the percent is undefined, not zero.
func (d benchDelta) IsNew() bool { return d.BaselineNS <= 0 }

// Pct is the signed percentage change; positive means slower. Only
// meaningful when IsNew is false.
func (d benchDelta) Pct() float64 {
	if d.IsNew() {
		return 0
	}
	return 100 * float64(d.CurrentNS-d.BaselineNS) / float64(d.BaselineNS)
}

// Delta is the artifact form of the comparison: a finite signed percent,
// or "new" when there is no baseline to compare against.
func (d benchDelta) Delta() string {
	if d.IsNew() {
		return "new"
	}
	return fmt.Sprintf("%+.1f%%", d.Pct())
}

// Regressed reports whether the run slowed past the threshold. A zero or
// negative threshold disarms the gate; a new benchmark never regresses.
func (d benchDelta) Regressed(pct float64) bool {
	return pct > 0 && !d.IsNew() && d.Pct() > pct
}

func (d benchDelta) String() string {
	if d.IsNew() {
		return fmt.Sprintf("%s: no baseline -> %v (new)", d.ID,
			time.Duration(d.CurrentNS).Round(time.Millisecond))
	}
	return fmt.Sprintf("%s: %v -> %v (%+.1f%%)", d.ID,
		time.Duration(d.BaselineNS).Round(time.Millisecond),
		time.Duration(d.CurrentNS).Round(time.Millisecond), d.Pct())
}

func main() {
	var (
		which      = flag.String("exp", "", "run only this experiment id (e.g. E04)")
		scale      = flag.Float64("scale", 1.0, "workload scale factor")
		list       = flag.Bool("list", false, "list experiments and exit")
		jsonDir    = flag.String("json", "", "directory for BENCH_<id>.json artifacts (empty disables)")
		baseline   = flag.String("baseline", "", "directory with prior BENCH_<id>.json artifacts to compare against")
		regressPct = flag.Float64("regress-pct", 0, "exit non-zero if any experiment is this % slower than its baseline (0 disables)")
	)
	flag.Parse()

	experiments := exp.Registry()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
	}
	ran := 0
	var regressions []benchDelta
	for _, e := range experiments {
		if *which != "" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		// Read the baseline before -json overwrites the artifact below.
		var prior *benchArtifact
		if *baseline != "" {
			var err error
			if prior, err = loadArtifact(*baseline, e.ID); err != nil {
				fmt.Fprintf(os.Stderr, "-baseline: %v\n", err)
				os.Exit(1)
			}
		}
		start := time.Now()
		table := e.Run(*scale)
		elapsed := time.Since(start)
		fmt.Println(table)
		fmt.Printf("(%s completed in %v)\n", e.ID, elapsed.Round(time.Millisecond))
		delta := ""
		if *baseline != "" {
			switch {
			case prior == nil:
				// A missing baseline passes with a note — silently skipping
				// it made a gate run over an empty baseline dir look green
				// for the wrong reason.
				fmt.Printf("(%s: no baseline artifact — pass, recorded as new)\n", e.ID)
				delta = "new"
			case prior.Scale != *scale:
				fmt.Printf("(%s baseline at scale %g, current %g: not comparable — pass, recorded as new)\n",
					e.ID, prior.Scale, *scale)
				delta = "new"
			default:
				d := benchDelta{ID: e.ID, BaselineNS: prior.ElapsedNS, CurrentNS: elapsed.Nanoseconds()}
				fmt.Printf("(%s)\n", d)
				delta = d.Delta()
				if d.Regressed(*regressPct) {
					regressions = append(regressions, d)
				}
			}
		}
		fmt.Println()
		if *jsonDir != "" {
			art := benchArtifact{ID: e.ID, Name: e.Name, Scale: *scale,
				ElapsedNS: elapsed.Nanoseconds(), Delta: delta, Table: table}
			data, err := json.MarshalIndent(art, "", "  ")
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, "BENCH_"+e.ID+".json"), data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "-json %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; use -list\n", *which)
		os.Exit(1)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "%d experiment(s) regressed more than %g%%:\n",
			len(regressions), *regressPct)
		for _, d := range regressions {
			fmt.Fprintf(os.Stderr, "  %s\n", d)
		}
		os.Exit(1)
	}
}
