// benchrunner regenerates the experiment tables of EXPERIMENTS.md from
// the command line: every figure of the paper has an experiment (E01..E16)
// whose table this tool prints.
//
// Usage:
//
//	benchrunner            # run everything at full scale
//	benchrunner -exp E04   # one experiment
//	benchrunner -scale 0.1 # smaller workloads, faster run
//	benchrunner -list      # list experiments
//	benchrunner -json out/ # additionally write BENCH_<id>.json per experiment
//
// With -json, each experiment leaves a machine-readable BENCH_<id>.json
// (the typed table plus any attached metric snapshots and the wall time),
// so the performance trajectory can be tracked across commits without
// parsing the printed tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/exp"
)

// benchArtifact is the BENCH_<id>.json schema.
type benchArtifact struct {
	ID        string     `json:"id"`
	Name      string     `json:"name"`
	Scale     float64    `json:"scale"`
	ElapsedNS int64      `json:"elapsed_ns"`
	Table     *exp.Table `json:"table"`
}

func main() {
	var (
		which   = flag.String("exp", "", "run only this experiment id (e.g. E04)")
		scale   = flag.Float64("scale", 1.0, "workload scale factor")
		list    = flag.Bool("list", false, "list experiments and exit")
		jsonDir = flag.String("json", "", "directory for BENCH_<id>.json artifacts (empty disables)")
	)
	flag.Parse()

	experiments := exp.Registry()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}
	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "-json: %v\n", err)
			os.Exit(1)
		}
	}
	ran := 0
	for _, e := range experiments {
		if *which != "" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		start := time.Now()
		table := e.Run(*scale)
		elapsed := time.Since(start)
		fmt.Println(table)
		fmt.Printf("(%s completed in %v)\n\n", e.ID, elapsed.Round(time.Millisecond))
		if *jsonDir != "" {
			art := benchArtifact{ID: e.ID, Name: e.Name, Scale: *scale,
				ElapsedNS: elapsed.Nanoseconds(), Table: table}
			data, err := json.MarshalIndent(art, "", "  ")
			if err == nil {
				err = os.WriteFile(filepath.Join(*jsonDir, "BENCH_"+e.ID+".json"), data, 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "-json %s: %v\n", e.ID, err)
				os.Exit(1)
			}
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; use -list\n", *which)
		os.Exit(1)
	}
}
