// benchrunner regenerates the experiment tables of EXPERIMENTS.md from
// the command line: every figure of the paper has an experiment (E01..E16)
// whose table this tool prints.
//
// Usage:
//
//	benchrunner            # run everything at full scale
//	benchrunner -exp E04   # one experiment
//	benchrunner -scale 0.1 # smaller workloads, faster run
//	benchrunner -list      # list experiments
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/exp"
)

func main() {
	var (
		which = flag.String("exp", "", "run only this experiment id (e.g. E04)")
		scale = flag.Float64("scale", 1.0, "workload scale factor")
		list  = flag.Bool("list", false, "list experiments and exit")
	)
	flag.Parse()

	experiments := exp.Registry()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%s  %s\n", e.ID, e.Name)
		}
		return
	}
	ran := 0
	for _, e := range experiments {
		if *which != "" && !strings.EqualFold(*which, e.ID) {
			continue
		}
		start := time.Now()
		table := e.Run(*scale)
		fmt.Println(table)
		fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches %q; use -list\n", *which)
		os.Exit(1)
	}
}
