package stats

import (
	"repro/internal/sketch"
)

// Sketch-kind series: the engine samples its cumulative per-output
// latency sketch into the store, which differences successive snapshots
// (the counter discipline applied to whole distributions) so every
// aligned window holds a mergeable sketch of just the deliveries that
// landed in it. Consumers get three views: the cumulative sketch (what
// the digests gossip — population-exact against a whole-run oracle), the
// merged sketch over the last k complete windows (the smoothed p99 the
// dspstat columns show), and the per-window p99 trajectory (what the
// QoS-headroom forecaster regresses).

// ObserveSketch folds a cumulative sketch snapshot into a KindSketch
// series: the current window accumulates the observations recorded since
// the previous snapshot. The first snapshot is the baseline (it defines
// "since"), matching the counter kind's first-sample rule. cum is copied,
// never retained.
func (s *Store) ObserveSketch(name string, now int64, cum *sketch.Sketch) {
	if cum == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.get(name, KindSketch)
	if len(sr.sks) == 0 {
		sr.sks = make([]*sketch.Sketch, s.numWin)
	}
	idx := now / s.windowNs
	slot := idx % int64(len(sr.wins))
	w := &sr.wins[slot]
	if w.idx != idx {
		w.idx = idx
		w.sum = 0
		w.count = 0
		if sr.sks[slot] != nil {
			sr.sks[slot].Reset()
		}
	}
	if !sr.haveSk {
		// Baseline snapshot: the delta is undefined, contributes nothing.
		sr.lastSk = cum.Clone()
		sr.haveSk = true
		return
	}
	d := sketch.Delta(cum, sr.lastSk)
	sr.lastSk.CopyFrom(cum)
	if d.Count() == 0 {
		return
	}
	if sr.sks[slot] == nil {
		sr.sks[slot] = sketch.New(cum.Alpha())
	}
	_ = sr.sks[slot].Merge(d) // same α by construction
	w.sum += d.Sum()
	w.count += int64(d.Count())
}

// CumulativeSketch returns a copy of the series' latest cumulative
// sketch snapshot. ok is false for unknown or never-sampled series.
func (s *Store) CumulativeSketch(name string) (*sketch.Sketch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok || !sr.haveSk {
		return nil, false
	}
	return sr.lastSk.Clone(), true
}

// WindowedSketch merges the last k complete windows' sketches before now
// into one, the distribution counterpart of Windowed. ok is false when
// no complete window holds observations.
func (s *Store) WindowedSketch(name string, k int, now int64) (*sketch.Sketch, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok || len(sr.sks) == 0 {
		return nil, false
	}
	if k <= 0 || k > s.numWin {
		k = s.numWin
	}
	var merged *sketch.Sketch
	cur := now / s.windowNs
	for idx := cur - 1; idx >= cur-int64(k) && idx >= 0; idx-- {
		w := &sr.wins[idx%int64(len(sr.wins))]
		if w.idx != idx {
			continue
		}
		sk := sr.slotSketch(idx)
		if sk == nil || sk.Count() == 0 {
			continue
		}
		if merged == nil {
			merged = sketch.New(sk.Alpha())
		}
		_ = merged.Merge(sk)
	}
	if merged == nil || merged.Count() == 0 {
		return nil, false
	}
	return merged, true
}

// SketchTrajectory returns the per-window p99 of the last k complete
// windows before now, oldest first — the percentile trajectory the
// forecaster regresses. Windows with no observations are omitted.
func (s *Store) SketchTrajectory(name string, k int, now int64) []Point {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok || len(sr.sks) == 0 {
		return nil
	}
	if k <= 0 || k > s.numWin {
		k = s.numWin
	}
	cur := now / s.windowNs
	var pts []Point
	for idx := cur - int64(k); idx <= cur-1; idx++ {
		if idx < 0 {
			continue
		}
		w := &sr.wins[idx%int64(len(sr.wins))]
		if w.idx != idx || w.count == 0 {
			continue
		}
		sk := sr.slotSketch(idx)
		if sk == nil || sk.Count() == 0 {
			continue
		}
		pts = append(pts, Point{
			Start: idx * s.windowNs,
			Value: sk.Quantile(0.99),
			Count: w.count,
		})
	}
	return pts
}
