package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sketch"
)

// BoxLoad is one box's windowed load contribution inside a digest: the
// fraction of a CPU the box consumed, averaged over the digest's window
// span.
type BoxLoad struct {
	Box  string  `json:"box"`
	Load float64 `json:"load"`
}

// HeadroomUnknown is the Headroom sentinel for outputs whose node does
// not run the latency-SLO forecaster (a finite value, not NaN, so JSON
// digests stay encodable).
const HeadroomUnknown = -2

// OutputQoS is one output's windowed delivered-QoS contribution inside a
// digest: the mean utility its deliveries earned against the attached
// QoS graphs over the digest's window span, and the delivery rate the
// mean is over. The LoadMap thereby carries not just where the load is
// but what quality each node's outputs actually delivered. Sketch, when
// present, is the wire encoding (sketch.AppendSketch) of the output's
// cumulative delivered-latency sketch, letting any node compute
// cluster-wide percentiles for every output; Headroom is the origin's
// forecast distance to its QoS latency cliff, HeadroomUnknown when the
// origin runs no forecaster.
type OutputQoS struct {
	Output   string  `json:"output"`
	Utility  float64 `json:"utility"` // mean delivered utility in the window
	Rate     float64 `json:"rate"`    // deliveries per second in the window
	Headroom float64 `json:"headroom"`
	Sketch   []byte  `json:"sketch,omitempty"` // sketch wire bytes, nil when absent
}

// Digest is one node's compact windowed self-description, the unit the
// gossip floods. Seq is a per-origin version: receivers keep the highest
// Seq per node, so digests can arrive out of order, duplicated, or along
// multiple paths without harm (the merge is idempotent and commutative —
// what makes convergence independent of message order).
type Digest struct {
	Node    string      `json:"node"`
	Seq     uint64      `json:"seq"`
	At      int64       `json:"at"`     // sample time at the origin
	Util    float64     `json:"util"`   // windowed CPU busy fraction
	Queued  float64     `json:"queued"` // windowed queue depth (tuples)
	Boxes   []BoxLoad   `json:"boxes,omitempty"`
	Outputs []OutputQoS `json:"outputs,omitempty"`
}

// LoadMap is a node's view of the whole cluster: the latest digest it
// has seen from every node, its own included. Because updates are
// keep-the-max-Seq, every node that has seen the same set of digests
// holds an identical map — the gossip needs no coordinator and no
// ordering guarantees.
type LoadMap struct {
	mu      sync.Mutex
	self    string
	entries map[string]Digest
}

// NewLoadMap returns an empty map owned by the named node.
func NewLoadMap(self string) *LoadMap {
	return &LoadMap{self: self, entries: map[string]Digest{}}
}

// Self returns the owning node's id.
func (m *LoadMap) Self() string { return m.self }

// Update merges one digest, keeping it only if it is newer (higher Seq)
// than the entry already held for its node. It reports whether the map
// changed.
func (m *LoadMap) Update(d Digest) bool {
	if d.Node == "" {
		return false
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if cur, ok := m.entries[d.Node]; ok && cur.Seq >= d.Seq {
		return false
	}
	m.entries[d.Node] = d
	return true
}

// Merge folds a batch of digests in, returning how many changed the map.
func (m *LoadMap) Merge(ds []Digest) int {
	changed := 0
	for _, d := range ds {
		if m.Update(d) {
			changed++
		}
	}
	return changed
}

// Get returns the latest digest known for a node.
func (m *LoadMap) Get(node string) (Digest, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.entries[node]
	return d, ok
}

// Snapshot returns every known digest, sorted by node id.
func (m *LoadMap) Snapshot() []Digest {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]Digest, 0, len(m.entries))
	for _, d := range m.entries {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Ranking returns the known nodes ordered by descending windowed
// utilization, ties broken by node id — the per-node load ranking the
// convergence bound is stated over.
func (m *LoadMap) Ranking() []string {
	ds := m.Snapshot()
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].Util != ds[j].Util {
			return ds[i].Util > ds[j].Util
		}
		return ds[i].Node < ds[j].Node
	})
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Node
	}
	return out
}

// Len returns how many nodes the map knows about.
func (m *LoadMap) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.entries)
}

// String renders the map as a compact load table for diagnostics.
func (m *LoadMap) String() string {
	var b strings.Builder
	for _, d := range m.Snapshot() {
		fmt.Fprintf(&b, "%s util=%.3f queued=%.1f seq=%d boxes=%d\n",
			d.Node, d.Util, d.Queued, d.Seq, len(d.Boxes))
	}
	return b.String()
}

// Plane bundles one node's half of the statistics plane: its windowed
// store, its load map, and the digest sequence counter. Everything a
// node needs to sample, publish, gossip, and merge.
type Plane struct {
	node  string
	store *Store
	lm    *LoadMap

	mu  sync.Mutex
	seq uint64
	k   int // windows averaged into published digests
}

// NewPlane builds a plane for one node: windowNs-wide windows, a ring of
// `windows` per series, and digests averaging the last k complete
// windows (k <= 0 means windows/2, min 1).
func NewPlane(node string, windowNs int64, windows, k int) *Plane {
	if k <= 0 {
		k = windows / 2
	}
	if k < 1 {
		k = 1
	}
	return &Plane{node: node, store: NewStore(windowNs, windows), lm: NewLoadMap(node), k: k}
}

// Node returns the owning node id.
func (p *Plane) Node() string { return p.node }

// Store returns the plane's windowed store.
func (p *Plane) Store() *Store { return p.store }

// Map returns the plane's load map.
func (p *Plane) Map() *LoadMap { return p.lm }

// WindowedK returns how many complete windows digests average over.
func (p *Plane) WindowedK() int { return p.k }

// ResumeSeq raises the digest sequence counter to at least seq. A
// restarted node calls it with its checkpointed PlaneSeq: peers merge
// digests keep-max-seq, so a plane whose sequence regressed to zero
// would have every fresh digest silently discarded until it caught up.
func (p *Plane) ResumeSeq(seq uint64) {
	p.mu.Lock()
	if seq > p.seq {
		p.seq = seq
	}
	p.mu.Unlock()
}

// Seq returns the last published digest sequence (checkpointing).
func (p *Plane) Seq() uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.seq
}

// Publish assembles a fresh digest from the store's windowed values
// (node.util, node.queued, every box.*.work_ns series, and the
// per-output utility, latency-sketch, and headroom series), stamps it
// with the next sequence number, folds it into the local map, and
// returns it.
func (p *Plane) Publish(now int64) Digest {
	p.mu.Lock()
	p.seq++
	seq := p.seq
	p.mu.Unlock()
	d := Digest{Node: p.node, Seq: seq, At: now}
	d.Util, _ = p.store.Windowed(SeriesNodeUtil, p.k, now)
	d.Queued, _ = p.store.Windowed(SeriesNodeQueued, p.k, now)
	const pre, suf = "box.", ".work_ns"
	const opre, osuf = "out.", ".utility_sum"
	const lsuf = ".latency"
	outs := map[string]*OutputQoS{}
	getOut := func(out string) *OutputQoS {
		oq, ok := outs[out]
		if !ok {
			oq = &OutputQoS{Output: out, Headroom: HeadroomUnknown}
			outs[out] = oq
		}
		return oq
	}
	for _, name := range p.store.Names() {
		if strings.HasPrefix(name, pre) && strings.HasSuffix(name, suf) {
			box := name[len(pre) : len(name)-len(suf)]
			if rate, ok := p.store.Windowed(name, p.k, now); ok {
				// work_ns rate is ns of processing per second: /1e9 is the
				// fraction of one CPU the box consumes.
				d.Boxes = append(d.Boxes, BoxLoad{Box: box, Load: rate / 1e9})
			}
			continue
		}
		if strings.HasPrefix(name, opre) && strings.HasSuffix(name, osuf) {
			out := name[len(opre) : len(name)-len(osuf)]
			// Both series are counters, so their windowed values are
			// rates: utility per second over deliveries per second is the
			// window's mean utility per delivered tuple.
			uRate, ok := p.store.Windowed(name, p.k, now)
			if !ok {
				continue
			}
			dRate, ok := p.store.Windowed(SeriesOutputDelivered(out), p.k, now)
			if !ok || dRate <= 0 {
				continue
			}
			oq := getOut(out)
			oq.Utility, oq.Rate = uRate/dRate, dRate
			continue
		}
		if strings.HasPrefix(name, opre) && strings.HasSuffix(name, lsuf) {
			out := name[len(opre) : len(name)-len(lsuf)]
			// The latency series' cumulative sketch rides the digest in
			// wire form so remote nodes can merge whole distributions,
			// not just point values.
			if sk, ok := p.store.CumulativeSketch(name); ok && sk.Count() > 0 {
				getOut(out).Sketch = sketch.AppendSketch(nil, sk)
			}
		}
	}
	for out, oq := range outs {
		if h, ok := p.store.Latest(SeriesOutputHeadroom(out), now); ok {
			oq.Headroom = h
		}
	}
	if len(outs) > 0 {
		d.Outputs = make([]OutputQoS, 0, len(outs))
		for _, oq := range outs {
			d.Outputs = append(d.Outputs, *oq)
		}
		sort.Slice(d.Outputs, func(i, j int) bool {
			return d.Outputs[i].Output < d.Outputs[j].Output
		})
	}
	p.lm.Update(d)
	return d
}

// Gossip returns every digest this node would piggyback on an outgoing
// message: all entries of its map (its own view included). The slice is
// freshly allocated and safe to retain.
func (p *Plane) Gossip() []Digest { return p.lm.Snapshot() }

// Merge folds received digests into the map, returning how many were new.
func (p *Plane) Merge(ds []Digest) int { return p.lm.Merge(ds) }
