package stats

import (
	"math"
	"testing"

	"repro/internal/metrics"
)

const win = int64(1e9) // 1s windows in all tests

func TestGaugeWindowAverage(t *testing.T) {
	s := NewStore(win, 8)
	// Three samples in window 5.
	s.Observe("g", KindGauge, 5*win+100, 1.0)
	s.Observe("g", KindGauge, 5*win+200, 2.0)
	s.Observe("g", KindGauge, 5*win+300, 6.0)
	v, ok := s.Latest("g", 5*win+400)
	if !ok || v != 3.0 {
		t.Fatalf("Latest = %v, %v; want 3.0, true", v, ok)
	}
	// From window 6, Windowed over 1 complete window sees the same mean.
	v, ok = s.Windowed("g", 1, 6*win+1)
	if !ok || v != 3.0 {
		t.Fatalf("Windowed(1) = %v, %v; want 3.0, true", v, ok)
	}
}

func TestCounterRate(t *testing.T) {
	s := NewStore(win, 8)
	// Baseline at window 2, then +500 within window 2, +1500 in window 3.
	s.Observe("c", KindCounter, 2*win, 1000)
	s.Observe("c", KindCounter, 2*win+win/2, 1500)
	s.Observe("c", KindCounter, 3*win+win/2, 3000)
	v, ok := s.Latest("c", 2*win+win/2)
	_ = v
	if !ok {
		t.Fatal("Latest after baseline should be ok")
	}
	// Window 2 accumulated 500 increments over a 1s window → 500/s.
	v, _ = s.Windowed("c", 1, 3*win)
	if v != 500 {
		t.Fatalf("window-2 rate = %v; want 500", v)
	}
	// Window 3 accumulated 1500 → avg of windows 2..3 is 1000/s.
	v, _ = s.Windowed("c", 2, 4*win)
	if v != 1000 {
		t.Fatalf("avg rate over 2 windows = %v; want 1000", v)
	}
}

func TestCounterResetClampsToZero(t *testing.T) {
	s := NewStore(win, 8)
	s.Observe("c", KindCounter, 1*win, 1000)
	s.Observe("c", KindCounter, 1*win+1, 200) // restart: raw went backwards
	v, ok := s.Windowed("c", 1, 2*win)
	if !ok || v != 0 {
		t.Fatalf("rate after reset = %v, %v; want 0, true", v, ok)
	}
	// Counting resumes from the new baseline.
	s.Observe("c", KindCounter, 2*win+1, 500)
	v, _ = s.Windowed("c", 1, 3*win)
	if v != 300 {
		t.Fatalf("rate after recovery = %v; want 300", v)
	}
}

func TestCounterMissingWindowsDragAverageDown(t *testing.T) {
	s := NewStore(win, 8)
	s.Observe("c", KindCounter, 1*win, 0)
	s.Observe("c", KindCounter, 1*win+win/2, 4000) // 4000/s burst in window 1
	// Windows 2 and 3 see no samples at all. From window 4, the windowed
	// rate over 3 windows must treat them as zero, not skip them.
	v, ok := s.Windowed("c", 3, 4*win)
	if !ok {
		t.Fatal("Windowed should be ok")
	}
	if want := 4000.0 / 3.0; math.Abs(v-want) > 1e-9 {
		t.Fatalf("smoothed rate = %v; want %v", v, want)
	}
}

func TestGaugeEmptyWindowsSkipped(t *testing.T) {
	s := NewStore(win, 8)
	s.Observe("g", KindGauge, 1*win, 10)
	// Windows 2, 3 empty. A gauge has no value there — not zero.
	v, ok := s.Windowed("g", 3, 4*win)
	if !ok || v != 10 {
		t.Fatalf("Windowed = %v, %v; want 10, true", v, ok)
	}
}

func TestWindowRingEviction(t *testing.T) {
	s := NewStore(win, 4)
	s.Observe("g", KindGauge, 1*win, 1)
	// Window 5 reuses window 1's ring slot (5 % 4 == 1).
	s.Observe("g", KindGauge, 5*win, 9)
	if v, _ := s.Latest("g", 5*win+1); v != 9 {
		t.Fatalf("Latest = %v; want 9", v)
	}
	// The old window is gone: looking back 4 windows from 6 finds only 9.
	v, ok := s.Windowed("g", 4, 6*win)
	if !ok || v != 9 {
		t.Fatalf("Windowed = %v, %v; want 9, true", v, ok)
	}
}

func TestHistSummaryDeltas(t *testing.T) {
	s := NewStore(win, 8)
	// Cumulative snapshots: 10 obs mean 5 (sum 50), then 30 obs mean 7
	// (sum 210) — window 2 received 20 obs totalling 160 → mean 8.
	s.ObserveSummary("h", 1*win, metrics.Summary{Count: 10, Mean: 5})
	s.ObserveSummary("h", 2*win, metrics.Summary{Count: 30, Mean: 7})
	v, ok := s.Windowed("h", 1, 3*win)
	if !ok || math.Abs(v-8) > 1e-9 {
		t.Fatalf("hist window mean = %v, %v; want 8, true", v, ok)
	}
}

func TestLatestFallsBackToLastComplete(t *testing.T) {
	s := NewStore(win, 8)
	s.Observe("g", KindGauge, 3*win, 7)
	// Current window (5) is empty; Latest scans back.
	v, ok := s.Latest("g", 5*win+10)
	if !ok || v != 7 {
		t.Fatalf("Latest = %v, %v; want 7, true", v, ok)
	}
	if _, ok := s.Latest("missing", 5*win); ok {
		t.Fatal("Latest on unknown series should be !ok")
	}
}

func TestExportFiltersAndPoints(t *testing.T) {
	s := NewStore(win, 8)
	s.Observe(SeriesBoxQueue("f1"), KindGauge, 1*win, 4)
	s.Observe(SeriesBoxQueue("f1"), KindGauge, 2*win, 6)
	s.Observe(SeriesNodeUtil, KindGauge, 2*win, 0.5)
	exp := s.Export("box.", 4, 3*win)
	if len(exp) != 1 {
		t.Fatalf("Export(box.) returned %d series; want 1", len(exp))
	}
	e := exp[0]
	if e.Name != SeriesBoxQueue("f1") || e.Kind != "gauge" {
		t.Fatalf("unexpected series %+v", e)
	}
	if len(e.Points) != 2 || e.Points[0].Value != 4 || e.Points[1].Value != 6 {
		t.Fatalf("points = %+v; want [4 6]", e.Points)
	}
	if e.Windowed != 5 {
		t.Fatalf("windowed = %v; want 5", e.Windowed)
	}
	all := s.Export("", 4, 3*win)
	if len(all) != 2 {
		t.Fatalf("Export(\"\") returned %d series; want 2", len(all))
	}
}

func TestStoreDefaults(t *testing.T) {
	s := NewStore(0, 0)
	if s.WindowNs() != 1e9 || s.NumWindows() != 8 {
		t.Fatalf("defaults = %d ns × %d; want 1e9 × 8", s.WindowNs(), s.NumWindows())
	}
}

func TestSeriesNames(t *testing.T) {
	if got := SeriesBoxCost("f"); got != "box.f.cost_ns" {
		t.Fatalf("SeriesBoxCost = %q", got)
	}
	if got := SeriesBoxWork("f"); got != "box.f.work_ns" {
		t.Fatalf("SeriesBoxWork = %q", got)
	}
	if got := SeriesBoxDrops("f"); got != "box.f.drops" {
		t.Fatalf("SeriesBoxDrops = %q", got)
	}
	if got := SeriesLink("a", "b"); got != "link.a>b.bytes" {
		t.Fatalf("SeriesLink = %q", got)
	}
}
