// Package stats is the cluster-wide statistics plane: a fixed-memory
// windowed time-series store fed from the engine's monitored statistics
// (§7.1 — box cost, selectivity, queue lengths, drops) plus node and
// link sources, and a coordinator-free gossip of compact per-node
// digests from which every node assembles the same LoadMap. The load
// managers consume *windowed* load — continuously aggregated over
// aligned time windows — rather than point-in-time snapshots, which is
// what keeps one transient burst from flapping boxes across the cluster
// ("shifting boxes around too frequently could lead to instability",
// §5.2).
package stats

import (
	"sort"
	"sync"

	"repro/internal/metrics"
	"repro/internal/sketch"
)

// Kind selects how raw observations fold into a window.
type Kind uint8

const (
	// KindGauge averages the samples landing in a window (utilization,
	// queue depth, cost, selectivity). Window value: mean of samples.
	KindGauge Kind = iota
	// KindCounter differences a monotonically increasing raw value
	// (bytes sent, tuples dropped, work ns) and accumulates the deltas
	// per window. Window value: increments per second.
	KindCounter
	// KindHist merges cumulative histogram summaries: each window holds
	// the observations that arrived during it. Window value: their mean.
	KindHist
	// KindSketch differences cumulative quantile sketches: each window
	// holds a mergeable sketch of the observations that arrived during
	// it, and the series keeps the full cumulative sketch alongside.
	// Window value: the window sketch's p99.
	KindSketch
)

func (k Kind) String() string {
	switch k {
	case KindGauge:
		return "gauge"
	case KindCounter:
		return "counter"
	case KindHist:
		return "hist"
	case KindSketch:
		return "sketch"
	}
	return "unknown"
}

// Canonical series names. Every producer and consumer of the plane uses
// these, so dspstat, the digests, and the tests all agree on what a
// series is called.
const (
	SeriesNodeUtil   = "node.util"   // gauge: CPU busy fraction
	SeriesNodeQueued = "node.queued" // gauge: tuples waiting across engines
	SeriesNodeShed   = "node.shed"   // counter: tuples dropped by the shedder
	// SeriesNodePressure is the windowed storage pressure: the per-window
	// high-water mark of queue memory over the budget (gauge; >1 means the
	// node was paging during the window). Unlike the engine's latched
	// all-time Pressure, each window reads fresh.
	SeriesNodePressure = "node.pressure"
)

// SeriesBoxCost names a box's per-tuple processing cost series (gauge, ns).
func SeriesBoxCost(box string) string { return "box." + box + ".cost_ns" }

// SeriesBoxSelectivity names a box's selectivity series (gauge).
func SeriesBoxSelectivity(box string) string { return "box." + box + ".selectivity" }

// SeriesBoxQueue names a box's input-queue depth series (gauge, tuples).
func SeriesBoxQueue(box string) string { return "box." + box + ".queue" }

// SeriesBoxWork names a box's cumulative processing-time series
// (counter, ns; the windowed rate is the box's share of a CPU).
func SeriesBoxWork(box string) string { return "box." + box + ".work_ns" }

// SeriesBoxDrops names a box's shedder-drop series (counter, tuples).
func SeriesBoxDrops(box string) string { return "box." + box + ".drops" }

// SeriesLink names a directed link's cumulative byte series (counter).
func SeriesLink(from, to string) string { return "link." + from + ">" + to + ".bytes" }

// SeriesOutputUtilSum names an output's cumulative delivered-utility
// series (counter: the sum of per-tuple QoS utilities; the windowed rate
// is utility delivered per second).
func SeriesOutputUtilSum(out string) string { return "out." + out + ".utility_sum" }

// SeriesOutputDelivered names an output's cumulative delivery-count
// series (counter, tuples). The ratio of the utility-sum rate to this
// rate is the window's mean delivered utility — the rolling QoS gauge
// the digests carry.
func SeriesOutputDelivered(out string) string { return "out." + out + ".delivered" }

// SeriesOutputLatency names an output's delivered-latency quantile-sketch
// series (KindSketch, ns): per-window sketches for the percentile
// trajectory plus the cumulative sketch the digests gossip.
func SeriesOutputLatency(out string) string { return "out." + out + ".latency" }

// SeriesOutputHeadroom names an output's QoS latency-headroom series
// (gauge): (cliff − p99)/cliff against the output's qos.Graph latency
// cliff, clamped to [-1, 1]. Positive means margin, zero means the p99
// sits exactly on the cliff, negative means the SLO is breached — the
// predicate surface the placement planner subscribes to.
func SeriesOutputHeadroom(out string) string { return "qos.headroom." + out }

// window is one aligned time window of a series.
type window struct {
	idx   int64 // window index (start = idx*windowNs); negative = empty
	sum   float64
	count int64
}

// series is one named time series: a ring of aligned windows plus the
// carry state the Kind needs (last raw counter value, last histogram
// totals). All memory is allocated at creation — observing never grows.
type series struct {
	kind Kind
	wins []window

	lastRaw  float64 // KindCounter: previous raw value
	haveRaw  bool
	lastHCnt uint64  // KindHist: previous cumulative count
	lastHSum float64 // KindHist: previous cumulative sum

	sks    []*sketch.Sketch // KindSketch: per-ring-slot window sketches
	lastSk *sketch.Sketch   // KindSketch: latest cumulative snapshot
	haveSk bool
}

// Store is the fixed-memory windowed time-series store: a map of named
// series, each a ring of numWindows aligned windows of windowNs width.
// Windows are aligned to multiples of windowNs on the observing clock,
// so two stores fed from the same clock bucket their samples
// identically — digests built from them describe the same intervals.
// All methods are safe for concurrent use.
type Store struct {
	mu       sync.Mutex
	windowNs int64
	numWin   int
	series   map[string]*series
}

// NewStore returns a store with the given window width (ns) and ring
// size per series. Non-positive arguments fall back to 1s × 8 windows.
func NewStore(windowNs int64, windows int) *Store {
	if windowNs <= 0 {
		windowNs = 1e9
	}
	if windows <= 0 {
		windows = 8
	}
	return &Store{windowNs: windowNs, numWin: windows, series: map[string]*series{}}
}

// WindowNs returns the window width.
func (s *Store) WindowNs() int64 { return s.windowNs }

// NumWindows returns the ring size per series.
func (s *Store) NumWindows() int { return s.numWin }

func (s *Store) get(name string, k Kind) *series {
	sr, ok := s.series[name]
	if !ok {
		sr = &series{kind: k, wins: make([]window, s.numWin)}
		for i := range sr.wins {
			sr.wins[i].idx = -1
		}
		s.series[name] = sr
	}
	return sr
}

// win returns the ring slot for window index idx, resetting it if it
// still holds an older window.
func (sr *series) win(idx int64) *window {
	w := &sr.wins[idx%int64(len(sr.wins))]
	if w.idx != idx {
		w.idx = idx
		w.sum = 0
		w.count = 0
	}
	return w
}

// Observe folds one raw sample into the series' current window. For
// KindCounter the value must be the cumulative (monotonic) reading; the
// store differences successive readings itself, clamping resets to 0.
func (s *Store) Observe(name string, k Kind, now int64, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.get(name, k)
	w := sr.win(now / s.windowNs)
	switch sr.kind {
	case KindGauge:
		w.sum += v
		w.count++
	case KindCounter:
		if sr.haveRaw {
			d := v - sr.lastRaw
			if d < 0 {
				d = 0 // counter reset (process restart)
			}
			w.sum += d
			w.count++
		} else {
			w.count++ // baseline sample: delta unknown, contributes 0
		}
		sr.lastRaw = v
		sr.haveRaw = true
	case KindHist:
		// Handled by ObserveSummary; a plain value degrades to a gauge
		// of one observation.
		w.sum += v
		w.count++
	}
}

// ObserveSummary folds a cumulative histogram snapshot into a KindHist
// series: the window accumulates the observations that arrived since
// the previous snapshot.
func (s *Store) ObserveSummary(name string, now int64, sum metrics.Summary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr := s.get(name, KindHist)
	w := sr.win(now / s.windowNs)
	dCnt := int64(sum.Count) - int64(sr.lastHCnt)
	dSum := sum.Mean*float64(sum.Count) - sr.lastHSum
	if dCnt > 0 && dSum >= 0 {
		w.sum += dSum
		w.count += dCnt
	}
	sr.lastHCnt = sum.Count
	sr.lastHSum = sum.Mean * float64(sum.Count)
}

// value reduces one window to the series' headline number.
func (s *Store) value(sr *series, w *window) (float64, bool) {
	switch sr.kind {
	case KindGauge:
		if w.count == 0 {
			return 0, false
		}
		return w.sum / float64(w.count), true
	case KindCounter:
		// Rate per second over the window, whether or not samples landed
		// (an untouched window is a genuine zero rate).
		return w.sum / (float64(s.windowNs) / 1e9), true
	case KindHist:
		if w.count == 0 {
			return 0, false
		}
		return w.sum / float64(w.count), true
	case KindSketch:
		if w.count == 0 {
			return 0, false
		}
		if sk := sr.slotSketch(w.idx); sk != nil && sk.Count() > 0 {
			return sk.Quantile(0.99), true
		}
		return 0, false
	}
	return 0, false
}

// slotSketch returns the window sketch occupying idx's ring slot, nil if
// none was ever allocated there.
func (sr *series) slotSketch(idx int64) *sketch.Sketch {
	if len(sr.sks) == 0 || idx < 0 {
		return nil
	}
	return sr.sks[idx%int64(len(sr.sks))]
}

// Latest returns the current (possibly partial) window's value, falling
// back to the most recent complete window when the current one is empty.
func (s *Store) Latest(name string, now int64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok {
		return 0, false
	}
	cur := now / s.windowNs
	for idx := cur; idx > cur-int64(s.numWin) && idx >= 0; idx-- {
		w := &sr.wins[idx%int64(len(sr.wins))]
		if w.idx == idx {
			if v, ok := s.value(sr, w); ok {
				return v, true
			}
		}
	}
	return 0, false
}

// Windowed returns the smoothed value over the last k *complete* windows
// before now: the mean of their window values. For counters, windows
// with no traffic count as zero rate; for gauges and histograms, empty
// windows (no samples) are skipped. ok is false when no window
// contributes.
func (s *Store) Windowed(name string, k int, now int64) (float64, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sr, ok := s.series[name]
	if !ok {
		return 0, false
	}
	if k <= 0 || k > s.numWin {
		k = s.numWin
	}
	cur := now / s.windowNs
	var sum float64
	n := 0
	for idx := cur - 1; idx >= cur-int64(k) && idx >= 0; idx-- {
		w := &sr.wins[idx%int64(len(sr.wins))]
		if w.idx == idx {
			if v, vok := s.value(sr, w); vok {
				sum += v
				n++
				continue
			}
		}
		if sr.kind == KindCounter {
			// A missing window is a window in which the counter did not
			// move: zero rate, and it must drag the average down.
			n++
		}
	}
	if n == 0 {
		return 0, false
	}
	return sum / float64(n), true
}

// Names returns every registered series name, sorted.
func (s *Store) Names() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.series))
	for n := range s.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Point is one window of an exported series.
type Point struct {
	Start int64   `json:"start"` // window start time (ns)
	Value float64 `json:"value"`
	Count int64   `json:"count"`
}

// SeriesExport is the machine-readable view of one series, served by
// the auroranode /stats endpoint and consumed by dspstat.
type SeriesExport struct {
	Name     string  `json:"name"`
	Kind     string  `json:"kind"`
	Latest   float64 `json:"latest"`
	Windowed float64 `json:"windowed"`
	Points   []Point `json:"points,omitempty"`
}

// Export snapshots every series whose name has the given prefix (empty
// matches all), with the windowed value computed over k windows. Points
// are the retained windows, oldest first.
func (s *Store) Export(prefix string, k int, now int64) []SeriesExport {
	names := s.Names()
	out := make([]SeriesExport, 0, len(names))
	for _, name := range names {
		if prefix != "" && !hasPrefix(name, prefix) {
			continue
		}
		s.mu.Lock()
		sr := s.series[name]
		kind := sr.kind
		cur := now / s.windowNs
		var pts []Point
		for idx := cur - int64(s.numWin) + 1; idx <= cur; idx++ {
			if idx < 0 {
				continue
			}
			w := &sr.wins[idx%int64(len(sr.wins))]
			if w.idx != idx {
				continue
			}
			v, _ := s.value(sr, w)
			pts = append(pts, Point{Start: idx * s.windowNs, Value: v, Count: w.count})
		}
		s.mu.Unlock()
		latest, _ := s.Latest(name, now)
		windowed, _ := s.Windowed(name, k, now)
		out = append(out, SeriesExport{
			Name: name, Kind: kind.String(),
			Latest: latest, Windowed: windowed, Points: pts,
		})
	}
	return out
}

func hasPrefix(s, p string) bool { return len(s) >= len(p) && s[:len(p)] == p }
