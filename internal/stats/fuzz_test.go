package stats

import (
	"bytes"
	"math"
	"testing"
)

// FuzzDecodeDigest hammers the digest decoder with arbitrary bytes. The
// invariants mirror the transport codec fuzzers: never panic, never
// over-read, and anything that decodes must re-encode to bytes that
// decode back to the same digests (canonical round trip — floats travel
// as raw bits, so even NaN payloads survive).
func FuzzDecodeDigest(f *testing.F) {
	// Seed corpus: the interesting shapes, encoded for real.
	f.Add(AppendDigests(nil, nil))
	f.Add(AppendDigests(nil, []Digest{{Node: "a", Seq: 1, At: 100, Util: 0.5, Queued: 3}}))
	f.Add(AppendDigests(nil, sampleDigests()))
	f.Add(AppendDigests(nil, []Digest{{
		Node: "n", Util: math.Float64frombits(0x7ff8_0000_0000_0001),
		Boxes: []BoxLoad{{Box: "b", Load: math.Inf(-1)}},
	}}))
	f.Add(AppendDigests(nil, []Digest{{
		Node: "s", Outputs: []OutputQoS{{Output: "o", Headroom: math.NaN(),
			Sketch: []byte{0x01, 0x02, 0x03}}},
	}}))
	// Hostile shapes: oversized counts, truncated floats, bare garbage.
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0x7f})
	f.Add([]byte{0x01, 0x00, 0x01, 0x02, 0x03})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		ds, n, err := DecodeDigests(data)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d > input %d", n, len(data))
		}
		enc := AppendDigests(nil, ds)
		ds2, n2, err := DecodeDigests(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded digests failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(enc))
		}
		if len(ds) != len(ds2) {
			t.Fatalf("digest count changed: %d vs %d", len(ds), len(ds2))
		}
		// reflect.DeepEqual treats NaN != NaN, so compare via bits.
		for i := range ds {
			if !digestEqualBits(ds[i], ds2[i]) {
				t.Fatalf("digest %d changed:\n%+v\nvs\n%+v", i, ds[i], ds2[i])
			}
		}
	})
}

func digestEqualBits(a, b Digest) bool {
	if a.Node != b.Node || a.Seq != b.Seq || a.At != b.At ||
		math.Float64bits(a.Util) != math.Float64bits(b.Util) ||
		math.Float64bits(a.Queued) != math.Float64bits(b.Queued) ||
		len(a.Boxes) != len(b.Boxes) || len(a.Outputs) != len(b.Outputs) {
		return false
	}
	for i := range a.Boxes {
		if a.Boxes[i].Box != b.Boxes[i].Box ||
			math.Float64bits(a.Boxes[i].Load) != math.Float64bits(b.Boxes[i].Load) {
			return false
		}
	}
	for i := range a.Outputs {
		ao, bo := a.Outputs[i], b.Outputs[i]
		if ao.Output != bo.Output ||
			math.Float64bits(ao.Utility) != math.Float64bits(bo.Utility) ||
			math.Float64bits(ao.Rate) != math.Float64bits(bo.Rate) ||
			math.Float64bits(ao.Headroom) != math.Float64bits(bo.Headroom) ||
			!bytes.Equal(ao.Sketch, bo.Sketch) {
			return false
		}
	}
	return true
}
