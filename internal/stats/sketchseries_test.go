package stats

import (
	"math"
	"testing"

	"repro/internal/sketch"
)

// cumRecorder simulates the engine side: a cumulative sketch that only
// grows, snapshotted into the store each sample period.
type cumRecorder struct{ sk *sketch.Sketch }

func newCumRecorder() *cumRecorder {
	return &cumRecorder{sk: sketch.New(sketch.DefaultAlpha)}
}

func (c *cumRecorder) record(vs ...float64) {
	for _, v := range vs {
		c.sk.Record(v)
	}
}

func TestObserveSketchBaselineAndDelta(t *testing.T) {
	s := NewStore(1000, 8)
	rec := newCumRecorder()
	name := SeriesOutputLatency("out")

	// First snapshot is the baseline: its contents must not count toward
	// any window (they predate the store's view).
	rec.record(1e6, 2e6, 3e6)
	s.ObserveSketch(name, 100, rec.sk)
	if _, ok := s.WindowedSketch(name, 8, 5000); ok {
		t.Fatal("baseline snapshot leaked into a window")
	}
	cum, ok := s.CumulativeSketch(name)
	if !ok || cum.Count() != 3 {
		t.Fatalf("cumulative after baseline: ok=%v count=%d", ok, cum.Count())
	}

	// Second snapshot in window 1: only the two new observations land.
	rec.record(5e6, 7e6)
	s.ObserveSketch(name, 1100, rec.sk)
	w, ok := s.WindowedSketch(name, 8, 2000)
	if !ok {
		t.Fatal("no windowed sketch after delta")
	}
	if w.Count() != 2 {
		t.Fatalf("window count = %d, want 2 (the delta only)", w.Count())
	}
	// Delta sketches degrade min/max to bucket edges, so allow ~2γ slack.
	if p := w.Quantile(1); math.Abs(p-7e6) > 7e6*0.025 {
		t.Fatalf("window max quantile %v, want ~7e6", p)
	}

	// The caller's sketch must not be retained: mutating it without a new
	// ObserveSketch call cannot change the store.
	rec.record(9e9)
	if cum, _ := s.CumulativeSketch(name); cum.Count() != 5 {
		t.Fatalf("store retained caller's sketch: count %d", cum.Count())
	}
}

func TestSketchTrajectoryAscending(t *testing.T) {
	s := NewStore(1000, 16)
	rec := newCumRecorder()
	name := SeriesOutputLatency("out")
	s.ObserveSketch(name, 0, rec.sk) // baseline at window 0

	// Windows 1..4 each get a strictly larger latency population, so the
	// trajectory's p99 must be strictly increasing.
	for wdx := int64(1); wdx <= 4; wdx++ {
		for i := 0; i < 50; i++ {
			rec.record(float64(wdx) * 1e6)
		}
		s.ObserveSketch(name, wdx*1000+10, rec.sk)
	}
	pts := s.SketchTrajectory(name, 16, 5000)
	if len(pts) != 4 {
		t.Fatalf("trajectory has %d points, want 4: %+v", len(pts), pts)
	}
	for i, p := range pts {
		wantStart := (int64(i) + 1) * 1000
		if p.Start != wantStart {
			t.Fatalf("point %d start %d, want %d", i, p.Start, wantStart)
		}
		if p.Count != 50 {
			t.Fatalf("point %d count %d, want 50", i, p.Count)
		}
		if i > 0 && p.Value <= pts[i-1].Value {
			t.Fatalf("trajectory not increasing at %d: %v", i, pts)
		}
	}
}

func TestSketchWindowReuseResets(t *testing.T) {
	// A ring slot revisited after wraparound must start empty, not carry
	// the stale window's distribution.
	s := NewStore(1000, 2)
	rec := newCumRecorder()
	name := SeriesOutputLatency("out")
	s.ObserveSketch(name, 0, rec.sk)
	rec.record(1e6, 1e6, 1e6)
	s.ObserveSketch(name, 1000, rec.sk) // window 1
	rec.record(9e6)
	s.ObserveSketch(name, 3000, rec.sk) // window 3 reuses slot 1
	w, ok := s.WindowedSketch(name, 1, 4000)
	if !ok {
		t.Fatal("no windowed sketch")
	}
	if w.Count() != 1 {
		t.Fatalf("reused slot kept stale mass: count %d, want 1", w.Count())
	}
}

func TestPublishCarriesSketchAndHeadroom(t *testing.T) {
	p := NewPlane("n1", 1000, 8, 2)
	st := p.Store()
	rec := newCumRecorder()

	// Give the output a delivery record so the utility path fires too.
	st.Observe("out.out.utility_sum", KindCounter, 100, 0)
	st.Observe(SeriesOutputDelivered("out"), KindCounter, 100, 0)
	st.Observe("out.out.utility_sum", KindCounter, 1100, 80)
	st.Observe(SeriesOutputDelivered("out"), KindCounter, 1100, 100)

	st.ObserveSketch(SeriesOutputLatency("out"), 100, rec.sk)
	rec.record(2e6, 4e6, 8e6)
	st.ObserveSketch(SeriesOutputLatency("out"), 1100, rec.sk)
	st.Observe(SeriesOutputHeadroom("out"), KindGauge, 1100, 0.42)

	d := p.Publish(3000)
	if len(d.Outputs) != 1 {
		t.Fatalf("digest outputs = %+v, want one entry", d.Outputs)
	}
	oq := d.Outputs[0]
	if oq.Output != "out" {
		t.Fatalf("output name %q", oq.Output)
	}
	if oq.Headroom != 0.42 {
		t.Fatalf("headroom %v, want 0.42", oq.Headroom)
	}
	if len(oq.Sketch) == 0 {
		t.Fatal("digest carries no sketch bytes")
	}
	sk, n, err := sketch.DecodeSketch(oq.Sketch)
	if err != nil || n != len(oq.Sketch) {
		t.Fatalf("digest sketch decode: n=%d err=%v", n, err)
	}
	if sk.Count() != 3 {
		t.Fatalf("digest sketch count %d, want 3 (cumulative)", sk.Count())
	}

	// An output with no forecaster gauge publishes the unknown sentinel.
	st.ObserveSketch(SeriesOutputLatency("other"), 100, rec.sk)
	rec.record(1e6)
	st.ObserveSketch(SeriesOutputLatency("other"), 1100, rec.sk)
	d = p.Publish(3100)
	for _, oq := range d.Outputs {
		if oq.Output == "other" {
			if oq.Headroom != HeadroomUnknown {
				t.Fatalf("headroom for forecaster-less output = %v", oq.Headroom)
			}
			return
		}
	}
	t.Fatalf("sketch-only output missing from digest: %+v", d.Outputs)
}

func TestKindSketchLatestIsP99(t *testing.T) {
	s := NewStore(1000, 8)
	rec := newCumRecorder()
	name := SeriesOutputLatency("out")
	s.ObserveSketch(name, 100, rec.sk)
	for i := 0; i < 300; i++ {
		rec.record(1e6)
	}
	for i := 0; i < 10; i++ {
		rec.record(5e7) // >1% tail mass so p99 lands in it
	}
	s.ObserveSketch(name, 1100, rec.sk)
	v, ok := s.Latest(name, 1200)
	if !ok {
		t.Fatal("no latest value for sketch series")
	}
	if math.Abs(v-5e7) > 5e7*0.011 {
		t.Fatalf("sketch series latest = %v, want ~p99 5e7", v)
	}
}
