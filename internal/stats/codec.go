package stats

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Wire form of a digest batch (the transport piggyback trailer):
//
//	uvarint count
//	per digest:
//	  uvarint len(node) | node bytes
//	  uvarint seq
//	  varint  at
//	  8 bytes util  (float64 big-endian bits)
//	  8 bytes queued
//	  uvarint len(boxes)
//	  per box: uvarint len(name) | name bytes | 8 bytes load
//	  uvarint len(outputs)
//	  per output: uvarint len(name) | name bytes | 8 bytes utility |
//	              8 bytes rate | 8 bytes headroom |
//	              uvarint len(sketch) | sketch bytes (opaque; see
//	              internal/sketch's wire format)
//
// Floats travel as raw bits so an encode/decode round trip is
// bit-identical (NaN payloads included) — the same canonical-bytes
// contract the tuple codec's fuzzer enforces. An empty batch is the
// single byte 0x00 exactly as before the outputs list existed, so
// digest-free messages stay byte-identical on the wire.

// maxDigests bounds one batch; a cluster gossips one digest per node,
// so anything larger is corrupt, not big.
const maxDigests = 4096

// maxBoxes bounds the per-digest box list.
const maxBoxes = 65536

// maxOutputs bounds the per-digest delivered-QoS list.
const maxOutputs = 65536

// maxSketchBytes bounds one output's embedded sketch encoding; a full
// 1024-bucket sketch encodes in well under 8 KiB.
const maxSketchBytes = 1 << 16

// AppendDigests appends the wire form of a digest batch to dst.
func AppendDigests(dst []byte, ds []Digest) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ds)))
	for _, d := range ds {
		dst = binary.AppendUvarint(dst, uint64(len(d.Node)))
		dst = append(dst, d.Node...)
		dst = binary.AppendUvarint(dst, d.Seq)
		dst = binary.AppendVarint(dst, d.At)
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Util))
		dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(d.Queued))
		dst = binary.AppendUvarint(dst, uint64(len(d.Boxes)))
		for _, b := range d.Boxes {
			dst = binary.AppendUvarint(dst, uint64(len(b.Box)))
			dst = append(dst, b.Box...)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(b.Load))
		}
		dst = binary.AppendUvarint(dst, uint64(len(d.Outputs)))
		for _, o := range d.Outputs {
			dst = binary.AppendUvarint(dst, uint64(len(o.Output)))
			dst = append(dst, o.Output...)
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.Utility))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.Rate))
			dst = binary.BigEndian.AppendUint64(dst, math.Float64bits(o.Headroom))
			dst = binary.AppendUvarint(dst, uint64(len(o.Sketch)))
			dst = append(dst, o.Sketch...)
		}
	}
	return dst
}

// DecodeDigests parses a digest batch from src, returning the digests
// and the bytes consumed. Length and count fields are validated against
// the remaining buffer in uint64 (converting first could wrap negative
// and defeat the bounds check), so hostile input can neither panic nor
// force oversized allocations.
func DecodeDigests(src []byte) ([]Digest, int, error) {
	pos := 0
	count, used, err := readUvarint(src)
	if err != nil {
		return nil, 0, err
	}
	pos += used
	if count > maxDigests {
		return nil, 0, fmt.Errorf("stats: digest count %d exceeds limit", count)
	}
	// Each digest needs at least 20 bytes (empty name, two floats, three
	// varints), so a count beyond the remaining buffer is corrupt.
	if count > uint64(len(src)-pos) {
		return nil, 0, fmt.Errorf("stats: truncated digest batch")
	}
	ds := make([]Digest, 0, count)
	for i := uint64(0); i < count; i++ {
		var d Digest
		n, used, err := readUvarint(src[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		if n > uint64(len(src)-pos) {
			return nil, 0, fmt.Errorf("stats: truncated node name")
		}
		d.Node = string(src[pos : pos+int(n)])
		pos += int(n)
		if d.Seq, used, err = readUvarint(src[pos:]); err != nil {
			return nil, 0, err
		}
		pos += used
		if d.At, used, err = readVarint(src[pos:]); err != nil {
			return nil, 0, err
		}
		pos += used
		if d.Util, used, err = readFloat(src[pos:]); err != nil {
			return nil, 0, err
		}
		pos += used
		if d.Queued, used, err = readFloat(src[pos:]); err != nil {
			return nil, 0, err
		}
		pos += used
		boxes, used, err := readUvarint(src[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		if boxes > maxBoxes {
			return nil, 0, fmt.Errorf("stats: box count %d exceeds limit", boxes)
		}
		// Each box entry is at least 9 bytes (length byte + load bits).
		if boxes > uint64(len(src)-pos) {
			return nil, 0, fmt.Errorf("stats: truncated box list")
		}
		if boxes > 0 {
			d.Boxes = make([]BoxLoad, 0, boxes)
		}
		for b := uint64(0); b < boxes; b++ {
			var bl BoxLoad
			n, used, err := readUvarint(src[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += used
			if n > uint64(len(src)-pos) {
				return nil, 0, fmt.Errorf("stats: truncated box name")
			}
			bl.Box = string(src[pos : pos+int(n)])
			pos += int(n)
			if bl.Load, used, err = readFloat(src[pos:]); err != nil {
				return nil, 0, err
			}
			pos += used
			d.Boxes = append(d.Boxes, bl)
		}
		outs, used, err := readUvarint(src[pos:])
		if err != nil {
			return nil, 0, err
		}
		pos += used
		if outs > maxOutputs {
			return nil, 0, fmt.Errorf("stats: output count %d exceeds limit", outs)
		}
		// Each output entry is at least 26 bytes (two length bytes + three
		// floats).
		if outs > uint64(len(src)-pos) {
			return nil, 0, fmt.Errorf("stats: truncated output list")
		}
		if outs > 0 {
			d.Outputs = make([]OutputQoS, 0, outs)
		}
		for o := uint64(0); o < outs; o++ {
			var oq OutputQoS
			n, used, err := readUvarint(src[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += used
			if n > uint64(len(src)-pos) {
				return nil, 0, fmt.Errorf("stats: truncated output name")
			}
			oq.Output = string(src[pos : pos+int(n)])
			pos += int(n)
			if oq.Utility, used, err = readFloat(src[pos:]); err != nil {
				return nil, 0, err
			}
			pos += used
			if oq.Rate, used, err = readFloat(src[pos:]); err != nil {
				return nil, 0, err
			}
			pos += used
			if oq.Headroom, used, err = readFloat(src[pos:]); err != nil {
				return nil, 0, err
			}
			pos += used
			skLen, used, err := readUvarint(src[pos:])
			if err != nil {
				return nil, 0, err
			}
			pos += used
			if skLen > maxSketchBytes {
				return nil, 0, fmt.Errorf("stats: sketch length %d exceeds limit", skLen)
			}
			if skLen > uint64(len(src)-pos) {
				return nil, 0, fmt.Errorf("stats: truncated sketch")
			}
			if skLen > 0 {
				// The bytes stay opaque here: consumers run
				// sketch.DecodeSketch themselves and drop entries that
				// fail, so a bad sketch cannot poison the whole batch.
				oq.Sketch = append([]byte(nil), src[pos:pos+int(skLen)]...)
				pos += int(skLen)
			}
			d.Outputs = append(d.Outputs, oq)
		}
		ds = append(ds, d)
	}
	return ds, pos, nil
}

func readUvarint(src []byte) (uint64, int, error) {
	v, n := binary.Uvarint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("stats: bad uvarint")
	}
	return v, n, nil
}

func readVarint(src []byte) (int64, int, error) {
	v, n := binary.Varint(src)
	if n <= 0 {
		return 0, 0, fmt.Errorf("stats: bad varint")
	}
	return v, n, nil
}

func readFloat(src []byte) (float64, int, error) {
	if len(src) < 8 {
		return 0, 0, fmt.Errorf("stats: truncated float")
	}
	return math.Float64frombits(binary.BigEndian.Uint64(src)), 8, nil
}
