package stats

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sketch"
)

// sampleSketchBytes is a real sketch encoding so digest round-trip tests
// exercise the embedded opaque-bytes path with plausible content.
func sampleSketchBytes() []byte {
	sk := sketch.New(sketch.DefaultAlpha)
	for i := 1; i <= 100; i++ {
		sk.Record(float64(i) * 1e5)
	}
	return sketch.AppendSketch(nil, sk)
}

func sampleDigests() []Digest {
	return []Digest{
		{
			Node: "node-a", Seq: 42, At: 1234567890,
			Util: 0.875, Queued: 17,
			Boxes: []BoxLoad{{Box: "filter1", Load: 0.25}, {Box: "map2", Load: 0.0625}},
			Outputs: []OutputQoS{
				{Output: "out", Utility: 0.75, Rate: 120, Headroom: 0.4,
					Sketch: sampleSketchBytes()},
				{Output: "quiet", Utility: 1, Rate: 2, Headroom: HeadroomUnknown},
			},
		},
		{Node: "b", Seq: 1, At: -5, Util: 0, Queued: 0},
		{Node: "", Seq: 0, At: 0, Util: math.Inf(1), Queued: -0.5,
			Boxes: []BoxLoad{{Box: "", Load: math.MaxFloat64}}},
	}
}

func TestDigestRoundTrip(t *testing.T) {
	want := sampleDigests()
	buf := AppendDigests(nil, want)
	got, n, err := DecodeDigests(buf)
	if err != nil {
		t.Fatalf("DecodeDigests: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d of %d bytes", n, len(buf))
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDigestRoundTripEmpty(t *testing.T) {
	buf := AppendDigests(nil, nil)
	got, n, err := DecodeDigests(buf)
	if err != nil || n != len(buf) || len(got) != 0 {
		t.Fatalf("empty batch: got %v, n=%d, err=%v", got, n, err)
	}
}

func TestDecodeTrailingBytesReported(t *testing.T) {
	buf := AppendDigests(nil, sampleDigests())
	pad := append(append([]byte{}, buf...), 0xde, 0xad)
	_, n, err := DecodeDigests(pad)
	if err != nil {
		t.Fatalf("DecodeDigests: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("consumed %d; want %d (trailing bytes untouched)", n, len(buf))
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	buf := AppendDigests(nil, sampleDigests())
	// Every proper prefix must fail cleanly (no panic) — the full buffer
	// is the only prefix that decodes.
	for i := 0; i < len(buf); i++ {
		if _, _, err := DecodeDigests(buf[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
}

func TestDecodeRejectsOversizedCounts(t *testing.T) {
	cases := map[string][]byte{
		"digest count":   {0xff, 0xff, 0xff, 0xff, 0x7f}, // ~2^34 digests
		"huge node name": {0x01, 0xff, 0xff, 0xff, 0xff, 0x7f},
		"empty":          {},
	}
	for name, buf := range cases {
		if _, _, err := DecodeDigests(buf); err == nil {
			t.Errorf("%s: decoded without error", name)
		}
	}
	// Box count beyond the remaining buffer.
	buf := AppendDigests(nil, []Digest{{Node: "x"}})
	buf[len(buf)-1] = 0xff // corrupt the boxes count varint
	buf = append(buf, 0xff, 0xff, 0x7f)
	if _, _, err := DecodeDigests(buf); err == nil {
		t.Error("oversized box count decoded without error")
	}
}

func TestDecodeRejectsOversizedSketch(t *testing.T) {
	// A sketch-length claim beyond maxSketchBytes must be rejected even
	// when the buffer is short (limit check before allocation).
	buf := AppendDigests(nil, []Digest{{Node: "n",
		Outputs: []OutputQoS{{Output: "o"}}}})
	// The encoding ends with the zero sketch-length byte; replace it with
	// an oversized claim.
	buf = append(buf[:len(buf)-1], 0xff, 0xff, 0x7f) // ~2^20
	if _, _, err := DecodeDigests(buf); err == nil {
		t.Error("oversized sketch length decoded without error")
	}
}

func TestDigestSketchDecodes(t *testing.T) {
	// The embedded bytes must decode with the sketch codec after a digest
	// round trip — the consumer path dspstat and telemetry rely on.
	buf := AppendDigests(nil, sampleDigests())
	ds, _, err := DecodeDigests(buf)
	if err != nil {
		t.Fatal(err)
	}
	raw := ds[0].Outputs[0].Sketch
	sk, n, err := sketch.DecodeSketch(raw)
	if err != nil {
		t.Fatalf("embedded sketch failed to decode: %v", err)
	}
	if n != len(raw) {
		t.Fatalf("sketch decode consumed %d of %d bytes", n, len(raw))
	}
	if sk.Count() != 100 {
		t.Fatalf("embedded sketch count = %d, want 100", sk.Count())
	}
}

func TestDecodeNaNBitsSurvive(t *testing.T) {
	// A NaN with a payload must round-trip bit-identically.
	nan := math.Float64frombits(0x7ff8_dead_beef_0001)
	buf := AppendDigests(nil, []Digest{{Node: "n", Util: nan}})
	got, _, err := DecodeDigests(buf)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(got[0].Util) != math.Float64bits(nan) {
		t.Fatalf("NaN bits changed: %x vs %x",
			math.Float64bits(got[0].Util), math.Float64bits(nan))
	}
}
