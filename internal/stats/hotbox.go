package stats

// HotSpec is the hot-box detection predicate the engine's autosplit
// controller evaluates against the windowed store: a box is hot when its
// windowed work rate — the share of one core its processing consumed,
// from the box.<id>.work_ns counter series — and its windowed queue depth
// both clear their thresholds, and a split is cool (ready to fold back)
// when the replicas' summed work rate and queues fall below theirs.
// Windowed values smooth over complete aligned windows, so one transient
// burst does not flap the split ("shifting boxes around too frequently
// could lead to instability", §5.2); the controller adds dwell counters
// on top for hysteresis.
type HotSpec struct {
	// WorkFrac is the windowed work rate, as a fraction of one core
	// (1.0 = the box burned a full CPU over the window), at or above
	// which a box is hot. 0 means the default 0.45.
	WorkFrac float64
	// CoolFrac is the fraction of one core at or below which a split
	// box's replicas — summed — are considered cool. 0 means the
	// default 0.2.
	CoolFrac float64
	// MinQueue is the minimum windowed input-queue depth (tuples) a hot
	// box must also show: a box can burn a core while keeping up, and
	// splitting it then buys nothing. 0 means the default 1.
	MinQueue float64
	// Windows is how many complete windows the rates are smoothed over.
	// 0 means the default 2.
	Windows int
}

// WithDefaults fills zero fields with the default thresholds.
func (h HotSpec) WithDefaults() HotSpec {
	if h.WorkFrac <= 0 {
		h.WorkFrac = 0.45
	}
	if h.CoolFrac <= 0 {
		h.CoolFrac = 0.2
	}
	if h.MinQueue <= 0 {
		h.MinQueue = 1
	}
	if h.Windows <= 0 {
		h.Windows = 2
	}
	return h
}

// Hot reports whether the named box is hot at now: windowed work rate at
// least WorkFrac of a core and windowed queue depth at least MinQueue.
// A box with no complete window yet is never hot.
func (h HotSpec) Hot(s *Store, box string, now int64) bool {
	if s == nil {
		return false
	}
	h = h.WithDefaults()
	work, ok := s.Windowed(SeriesBoxWork(box), h.Windows, now)
	if !ok || work < h.WorkFrac*1e9 {
		return false
	}
	queue, ok := s.Windowed(SeriesBoxQueue(box), h.Windows, now)
	return ok && queue >= h.MinQueue
}

// Measure returns the windowed evidence Hot evaluates — the box's work
// rate as a fraction of one core and its windowed queue depth — for
// publication in the event journal: a HotBox event carries the measured
// values that fired the predicate, not just the fact that it fired.
// Series with no complete window read as zero.
func (h HotSpec) Measure(s *Store, box string, now int64) (workFrac, queue float64) {
	if s == nil {
		return 0, 0
	}
	h = h.WithDefaults()
	if w, ok := s.Windowed(SeriesBoxWork(box), h.Windows, now); ok {
		workFrac = w / 1e9
	}
	if q, ok := s.Windowed(SeriesBoxQueue(box), h.Windows, now); ok {
		queue = q
	}
	return workFrac, queue
}

// Cool reports whether a split is ready to fold back at now: the summed
// windowed work rate of the replica boxes is at most CoolFrac of a core
// and their summed windowed queues are below MinQueue. Replicas with no
// complete window contribute zero — an idle replica is evidence of cool,
// not of ignorance, because its work counter simply stopped moving.
func (h HotSpec) Cool(s *Store, boxes []string, now int64) bool {
	if s == nil {
		return false
	}
	h = h.WithDefaults()
	var work, queue float64
	for _, box := range boxes {
		if w, ok := s.Windowed(SeriesBoxWork(box), h.Windows, now); ok {
			work += w
		}
		if q, ok := s.Windowed(SeriesBoxQueue(box), h.Windows, now); ok {
			queue += q
		}
	}
	return work <= h.CoolFrac*1e9 && queue < h.MinQueue
}
