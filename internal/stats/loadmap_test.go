package stats

import (
	"reflect"
	"testing"
)

func TestLoadMapKeepsHighestSeq(t *testing.T) {
	m := NewLoadMap("a")
	if !m.Update(Digest{Node: "b", Seq: 2, Util: 0.5}) {
		t.Fatal("first digest should change the map")
	}
	if m.Update(Digest{Node: "b", Seq: 1, Util: 0.9}) {
		t.Fatal("stale digest must not change the map")
	}
	if m.Update(Digest{Node: "b", Seq: 2, Util: 0.9}) {
		t.Fatal("equal-seq digest must not change the map")
	}
	if !m.Update(Digest{Node: "b", Seq: 3, Util: 0.7}) {
		t.Fatal("newer digest should change the map")
	}
	d, ok := m.Get("b")
	if !ok || d.Util != 0.7 {
		t.Fatalf("Get(b) = %+v, %v; want util 0.7", d, ok)
	}
	if m.Update(Digest{Node: "", Seq: 9}) {
		t.Fatal("empty node id must be rejected")
	}
}

// TestMergeOrderIndependent is the convergence property the gossip rests
// on: folding the same digest set in any order, with duplicates, yields
// the same map.
func TestMergeOrderIndependent(t *testing.T) {
	ds := []Digest{
		{Node: "a", Seq: 1, Util: 0.1},
		{Node: "a", Seq: 3, Util: 0.3},
		{Node: "b", Seq: 2, Util: 0.8},
		{Node: "c", Seq: 5, Util: 0.5},
		{Node: "b", Seq: 1, Util: 0.2},
	}
	m1 := NewLoadMap("x")
	m1.Merge(ds)
	m2 := NewLoadMap("y")
	for i := len(ds) - 1; i >= 0; i-- {
		m2.Update(ds[i])
		m2.Update(ds[i]) // duplicates are harmless
	}
	if !reflect.DeepEqual(m1.Snapshot(), m2.Snapshot()) {
		t.Fatalf("order-dependent merge:\n%v\nvs\n%v", m1.Snapshot(), m2.Snapshot())
	}
	if m1.Len() != 3 {
		t.Fatalf("Len = %d; want 3", m1.Len())
	}
}

func TestRankingOrdersByUtilThenNode(t *testing.T) {
	m := NewLoadMap("a")
	m.Merge([]Digest{
		{Node: "a", Seq: 1, Util: 0.5},
		{Node: "b", Seq: 1, Util: 0.9},
		{Node: "c", Seq: 1, Util: 0.5},
		{Node: "d", Seq: 1, Util: 0.1},
	})
	want := []string{"b", "a", "c", "d"}
	if got := m.Ranking(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Ranking = %v; want %v", got, want)
	}
	if m.String() == "" {
		t.Fatal("String should render entries")
	}
}

func TestPlanePublishBuildsDigestFromWindows(t *testing.T) {
	p := NewPlane("n1", win, 8, 2)
	st := p.Store()
	// Two complete windows of util and of box work.
	st.Observe(SeriesNodeUtil, KindGauge, 1*win, 0.4)
	st.Observe(SeriesNodeUtil, KindGauge, 2*win, 0.6)
	st.Observe(SeriesNodeQueued, KindGauge, 2*win, 12)
	st.Observe(SeriesBoxWork("f1"), KindCounter, 1*win, 0)
	st.Observe(SeriesBoxWork("f1"), KindCounter, 2*win, 2e8) // 0.2 CPU in window 1
	st.Observe(SeriesBoxWork("f1"), KindCounter, 3*win-1, 4e8)
	d := p.Publish(3 * win)
	if d.Node != "n1" || d.Seq != 1 {
		t.Fatalf("digest header = %+v", d)
	}
	if d.Util != 0.5 {
		t.Fatalf("Util = %v; want 0.5", d.Util)
	}
	if d.Queued != 12 {
		t.Fatalf("Queued = %v; want 12", d.Queued)
	}
	if len(d.Boxes) != 1 || d.Boxes[0].Box != "f1" {
		t.Fatalf("Boxes = %+v; want one entry for f1", d.Boxes)
	}
	if got := d.Boxes[0].Load; got != 0.2 {
		t.Fatalf("f1 load = %v; want 0.2", got)
	}
	// Publish folded the digest into the local map.
	if got, ok := p.Map().Get("n1"); !ok || got.Seq != 1 {
		t.Fatalf("own map entry = %+v, %v", got, ok)
	}
	if d2 := p.Publish(3 * win); d2.Seq != 2 {
		t.Fatalf("second publish seq = %d; want 2", d2.Seq)
	}
}

func TestPlanePublishHarvestsOutputUtility(t *testing.T) {
	p := NewPlane("n1", win, 8, 2)
	st := p.Store()
	// Two complete windows: 10 deliveries earning 7.5 utility, then 10
	// more earning 2.5 — windowed mean utility (7.5+2.5)/20 = 0.5.
	st.Observe(SeriesOutputUtilSum("out"), KindCounter, 1*win, 0)
	st.Observe(SeriesOutputDelivered("out"), KindCounter, 1*win, 0)
	st.Observe(SeriesOutputUtilSum("out"), KindCounter, 2*win, 7.5)
	st.Observe(SeriesOutputDelivered("out"), KindCounter, 2*win, 10)
	st.Observe(SeriesOutputUtilSum("out"), KindCounter, 3*win-1, 10)
	st.Observe(SeriesOutputDelivered("out"), KindCounter, 3*win-1, 20)
	d := p.Publish(3 * win)
	if len(d.Outputs) != 1 || d.Outputs[0].Output != "out" {
		t.Fatalf("Outputs = %+v; want one entry for out", d.Outputs)
	}
	if got := d.Outputs[0].Utility; got != 0.5 {
		t.Errorf("utility = %v; want 0.5", got)
	}
	if d.Outputs[0].Rate <= 0 {
		t.Errorf("rate = %v; want > 0", d.Outputs[0].Rate)
	}
	// An output with deliveries but no utility series (no QoS spec) or
	// no complete window does not appear.
	st.Observe(SeriesOutputDelivered("bare"), KindCounter, 3*win-1, 5)
	if d := p.Publish(3 * win); len(d.Outputs) != 1 {
		t.Errorf("bare output leaked into digest: %+v", d.Outputs)
	}
}

func TestPlaneGossipMergeConverges(t *testing.T) {
	a := NewPlane("a", win, 8, 2)
	b := NewPlane("b", win, 8, 2)
	c := NewPlane("c", win, 8, 2)
	for i, p := range []*Plane{a, b, c} {
		u := float64(i+1) / 4 // 0.25, 0.5, 0.75
		p.Store().Observe(SeriesNodeUtil, KindGauge, 1*win, u)
		p.Publish(2 * win)
	}
	// One gossip round along a chain a→b→c, then back c→b→a: everyone
	// converges in 2 rounds on a 3-node line.
	b.Merge(a.Gossip())
	c.Merge(b.Gossip())
	b.Merge(c.Gossip())
	a.Merge(b.Gossip())
	want := []string{"c", "b", "a"}
	for _, p := range []*Plane{a, b, c} {
		if got := p.Map().Ranking(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %s ranking = %v; want %v", p.Node(), got, want)
		}
	}
}

func TestNewPlaneKDefaults(t *testing.T) {
	if p := NewPlane("n", win, 8, 0); p.WindowedK() != 4 {
		t.Fatalf("k default = %d; want windows/2 = 4", p.WindowedK())
	}
	if p := NewPlane("n", win, 1, 0); p.WindowedK() != 1 {
		t.Fatalf("k floor = %d; want 1", p.WindowedK())
	}
}
