// Package exp implements the experiment harness: one function per
// experiment in EXPERIMENTS.md (E01..E16), each regenerating the
// corresponding figure of the paper as a printed table. The functions are
// shared by the root bench suite (bench_test.go) and cmd/benchrunner.
package exp

import (
	"fmt"
	"strings"

	"repro/internal/metrics"
)

// Table is one experiment's result: a title, column headers, and rows.
// The struct marshals directly to JSON — benchrunner's BENCH_<id>.json
// artifacts are this typed value, never a re-parse of the printed table.
type Table struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`

	// Metrics carries typed registry snapshots keyed by configuration
	// label, for experiments that run a full engine and want its raw
	// counters and latency histograms in the machine-readable artifact.
	Metrics map[string]metrics.RegistrySnapshot `json:"metrics,omitempty"`
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprint(c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// AttachMetrics stores a registry snapshot under the given configuration
// label for the JSON artifact; the printed table is unaffected.
func (t *Table) AttachMetrics(label string, s metrics.RegistrySnapshot) {
	if t.Metrics == nil {
		t.Metrics = map[string]metrics.RegistrySnapshot{}
	}
	t.Metrics[label] = s
}

// Note appends a free-text annotation below the table.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an id with its runner; Registry lists them all.
type Experiment struct {
	ID   string
	Name string
	Run  func(scale float64) *Table
}

// Registry returns every experiment in order. scale < 1 shrinks the
// workloads (used by the bench suite to keep iterations fast); 1.0 is the
// EXPERIMENTS.md configuration.
func Registry() []Experiment {
	return []Experiment{
		{"E01", "operator semantics and throughput", E01Operators},
		{"E02", "scheduler disciplines", E02Scheduler},
		{"E03", "load shedding policies", E03Shedding},
		{"E04", "box sliding and link bandwidth", E04Sliding},
		{"E05", "filter split scaling", E05FilterSplit},
		{"E06", "tumble split transparency", E06TumbleSplit},
		{"E07", "decentralized load sharing", E07LoadSharing},
		{"E08", "k-safety under crashes", E08KSafety},
		{"E09", "recovery spectrum", E09Spectrum},
		{"E10", "QoS inference", E10QoSInference},
		{"E11", "transport multiplexing", E11Multiplexing},
		{"E12", "DHT catalog", E12DHT},
		{"E13", "split predicate policies", E13Predicates},
		{"E14", "medusa economy", E14Economy},
		{"E15", "remote definition", E15RemoteDefinition},
		{"E16", "chaos fault schedules", E16Chaos},
		{"E18", "parallel engine worker scaling", E18Parallel},
		{"E18B", "runtime hot-box autosplit on Zipf keys", E18bAutoSplit},
		{"E19", "observability plane overhead", E19Observability},
		{"E20", "latency-SLO plane: sketches, forecast, attribution", E20LatencySLO},
		{"E21", "batched kernels + pooling vs serial train path", E21HotPath},
		{"E22", "durable restart recovery from segment logs", E22Durability},
		{"A01", "ablation: detection timeout", A01Detection},
		{"A02", "ablation: flow-message period", A02FlowPeriod},
	}
}

// scaled returns max(1, round(n*scale)).
func scaled(n int, scale float64) int {
	v := int(float64(n) * scale)
	if v < 1 {
		return 1
	}
	return v
}
