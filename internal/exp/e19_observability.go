package exp

import (
	"time"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
)

// E19Observability measures what the observability plane costs on the
// data path: the same filter -> map workload run with it disabled and
// with the structured event journal plus delivered-QoS attribution
// enabled. Both runs perform identical split/unsplit churn so the only
// difference is the journaling of those decisions and the per-output
// utility accounting; the overhead column is the number the CI guard
// (CI_EVENTS_GUARD=1) fences at 3%. The events column shows the journal
// actually heard the control decisions, and the utility column is the
// rolling delivered-utility gauge the QoS graphs awarded the run.
func E19Observability(scale float64) *Table {
	t := &Table{ID: "E19", Title: "observability plane overhead (event journal + delivered-QoS attribution)",
		Header: []string{"config", "tuples", "wall ms", "Ktuples/s", "overhead %", "events", "utility"}}

	total := scaled(160_000, scale)

	run := func(on bool, n int) (time.Duration, uint64, float64) {
		churn := n / 4
		var spec *qos.Spec
		var j *events.Journal
		cfg := engine.Config{}
		if on {
			spec = &qos.Spec{Latency: qos.DefaultLatency(1e6, 1e9)}
			j = events.NewJournal("e19", 1024)
			cfg.Journal = j
		}
		net := query.NewBuilder("e19").
			AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 95"}}).
			AddBox("m", op.Spec{Kind: "map", Params: map[string]string{
				"exprs": "A=A; B=((B * 3) + (A % 7))"}}).
			Connect("f", "m").
			BindInput("in", abSchema, "f", 0).
			BindOutput("out", "m", 0, spec).
			MustBuild()
		e, err := engine.New(net, cfg)
		if err != nil {
			panic(err)
		}
		in := randTuples(n, 16, 7)
		splits := 0
		start := time.Now()
		for i := 0; i < n; i++ {
			// Stamp arrival so QoS latency is the real queueing delay, not
			// the synthetic generator timestamp.
			tp := in[i]
			tp.TS = time.Now().UnixNano()
			e.Ingest("in", tp)
			if (i+1)%512 == 0 {
				e.Run()
			}
			// Identical control churn in both configs; only the on-config
			// journals it.
			if churn > 0 && (i+1)%churn == 0 {
				if splits%2 == 0 {
					_ = e.SplitBox("f", 2)
				} else {
					_ = e.UnsplitBox("f")
				}
				splits++
			}
		}
		e.Run()
		e.Drain()
		el := time.Since(start)
		var evs uint64
		if j != nil {
			evs = j.Total()
		}
		return el, evs, e.Metrics().FloatGauge("output.out.utility").Value()
	}

	// Warm-up pass, then best-of-three alternating runs per
	// configuration: the overhead column compares best against best so
	// run-to-run scheduler noise doesn't masquerade as plane cost.
	run(false, total/8+1)
	offEl, _, _ := run(false, total)
	onEl, evs, util := run(true, total)
	for i := 0; i < 2; i++ {
		if el, _, _ := run(false, total); el < offEl {
			offEl = el
		}
		if el, _, _ := run(true, total); el < onEl {
			onEl = el
		}
	}
	offMs := float64(offEl.Nanoseconds()) / 1e6
	onMs := float64(onEl.Nanoseconds()) / 1e6
	t.Add("off", total, offMs, float64(total)/1e3/(offMs/1e3), 0.0, 0, 0.0)
	t.Add("on", total, onMs, float64(total)/1e3/(onMs/1e3), (onMs/offMs-1)*100, evs, util)
	t.Note("journal hears only control decisions (splits here), so per-tuple cost is attribution's few float ops")
	return t
}
