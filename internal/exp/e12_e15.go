package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/catalog"
	"repro/internal/loadmgr"
	"repro/internal/medusa"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/stream"
	"repro/internal/transport"
)

// E12DHT measures the inter-participant catalog (§4.1): lookup hops scale
// logarithmically with the federation size, virtual nodes flatten the key
// distribution, and replication keeps bindings resolvable across churn.
func E12DHT(scale float64) *Table {
	t := &Table{ID: "E12", Title: "DHT inter-participant catalog (§4.1)",
		Header: []string{"participants", "vnodes", "keys", "mean hops", "max/min keys", "resolvable after leave"}}
	keys := scaled(20_000, scale)
	for _, n := range []int{4, 16, 64, 256} {
		for _, vn := range []int{1, 32} {
			d := catalog.NewDHT(vn, 2)
			for i := 0; i < n; i++ {
				d.Join(fmt.Sprintf("p%04d", i))
			}
			for i := 0; i < keys; i++ {
				d.Put(fmt.Sprintf("stream/%d", i), "loc")
			}
			totalHops := 0
			lookups := 300
			for i := 0; i < lookups; i++ {
				_, h, err := d.LookupHops(fmt.Sprintf("stream/%d", i), fmt.Sprintf("p%04d", i%n))
				if err != nil {
					panic(err)
				}
				totalHops += h
			}
			maxK, minK := 0, 1<<30
			for _, p := range d.Members() {
				k := d.KeysAt(p)
				if k > maxK {
					maxK = k
				}
				if k < minK {
					minK = k
				}
			}
			// Churn: one participant leaves; resolve a sample.
			d.Leave("p0001")
			ok := 0
			for i := 0; i < 500; i++ {
				if _, found := d.Get(fmt.Sprintf("stream/%d", i)); found {
					ok++
				}
			}
			t.Add(n, vn, keys, float64(totalHops)/float64(lookups),
				float64(maxK)/float64(minK+1), fmt.Sprintf("%d/500", ok))
		}
	}
	t.Note("hops grow ~log(n) (Chord-style fingers); vnodes flatten per-participant key counts; replication 2 survives a leave")
	return t
}

// E13Predicates compares the §5.2 split-predicate policies under key-skew
// drift: a fixed content predicate decays as the hot keys move, hash-half
// is insensitive to drift but splits skew poorly, and a re-tuned
// rate-based predicate tracks the target share.
func E13Predicates(scale float64) *Table {
	t := &Table{ID: "E13", Title: "split predicate choice under drift (§5.2)",
		Header: []string{"policy", "epoch", "branch share", "abs error"}}
	n := scaled(30_000, scale)
	epochs := 4
	schema := stream.MustSchema("k", stream.Field{Name: "A", Kind: stream.KindInt})

	// Workload: Zipf keys whose identity shifts every epoch (hot set
	// drifts by an offset).
	genEpoch := func(epoch int) []stream.Tuple {
		rng := rand.New(rand.NewSource(int64(100 + epoch)))
		zipf := rand.NewZipf(rng, 1.3, 1, 255)
		out := make([]stream.Tuple, n/epochs)
		for i := range out {
			key := (int64(zipf.Uint64()) + int64(epoch*64)) % 256
			out[i] = stream.NewTuple(stream.Int(key))
		}
		return out
	}
	share := func(pred op.Expr, tuples []stream.Tuple) float64 {
		match := 0
		for _, tp := range tuples {
			if pred.Eval(tp).AsBool() {
				match++
			}
		}
		return float64(match) / float64(len(tuples))
	}

	// Content predicate fixed from epoch 0 statistics.
	tracker0 := loadmgr.NewKeyTracker(1, 0)
	epoch0 := genEpoch(0)
	for _, tp := range epoch0 {
		tracker0.Observe(tp.Field(0).Format())
	}
	contentPred, _, err := loadmgr.RateSplit(tracker0, "A", 0.5)
	if err != nil {
		panic(err)
	}
	op.MustBind(contentPred, schema)
	hashPred := op.MustBind(loadmgr.HashHalf("A"), schema)

	for epoch := 0; epoch < epochs; epoch++ {
		tuples := genEpoch(epoch)
		s := share(contentPred, tuples)
		t.Add("content (fixed)", epoch, s, abs(s-0.5))
		s = share(hashPred, tuples)
		t.Add("hash-half", epoch, s, abs(s-0.5))
		// Rate-based, re-tuned each epoch from a decayed tracker.
		tr := loadmgr.NewKeyTracker(1, 0)
		for _, tp := range tuples {
			tr.Observe(tp.Field(0).Format())
		}
		pred, _, err := loadmgr.RateSplit(tr, "A", 0.5)
		if err != nil {
			panic(err)
		}
		op.MustBind(pred, schema)
		s = share(pred, tuples)
		t.Add("rate (re-tuned)", epoch, s, abs(s-0.5))
	}
	t.Note("\"as the network characteristics change, a simple adjustment to p could be enough to rebalance the load\" (§5.2)")
	return t
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// E14Economy runs the §7.2 agoric market at several federation sizes:
// starting from a pathological all-on-one-participant allocation, the
// movement-contract oracles anneal to a stable state with no overloads
// and non-negative profits.
func E14Economy(scale float64) *Table {
	t := &Table{ID: "E14", Title: "medusa economy annealing (§7.2)",
		Header: []string{"participants", "stages", "initial max util", "rounds to stable", "final max util", "imbalance", "min profit", "switches"}}
	for _, nParts := range []int{2, 4, 8} {
		var parts []*medusa.Participant
		econ := map[string]medusa.Econ{}
		for i := 0; i < nParts; i++ {
			p := medusa.NewParticipant(fmt.Sprintf("P%02d", i))
			parts = append(parts, p)
			econ[p.Name] = medusa.Econ{Capacity: 100, CostPerWork: 0.001}
		}
		m, err := medusa.NewMarket(parts, econ)
		if err != nil {
			panic(err)
		}
		nStages := 8 * nParts
		stages := make([]medusa.Stage, nStages)
		for i := range stages {
			stages[i] = medusa.Stage{Name: fmt.Sprintf("s%d", i), Work: 1, ValueAdd: 0.01}
		}
		// All work starts at participant 0: rate chosen so total load is
		// ~70% of federation capacity but 7x one participant's.
		rate := 0.7 * float64(nParts) * 100 / float64(nStages)
		cuts := make([]int, nParts-1)
		for i := range cuts {
			cuts[i] = nStages
		}
		q, err := m.AddQuery("q", 0.01, stages, rate, cuts)
		if err != nil {
			panic(err)
		}
		rounds := 0
		initMax := 0.0
		var last medusa.RoundReport
		for rounds = 1; rounds <= 200; rounds++ {
			last = m.Round()
			if rounds == 1 {
				for _, u := range last.Utilization {
					if u > initMax {
						initMax = u
					}
				}
			}
			if last.Switches == 0 && rounds > 1 {
				break
			}
		}
		maxU, minProfit := 0.0, 1e18
		for _, u := range last.Utilization {
			if u > maxU {
				maxU = u
			}
		}
		for _, pr := range last.Profit {
			if pr < minProfit {
				minProfit = pr
			}
		}
		t.Add(nParts, nStages, initMax, rounds, maxU, last.Imbalance, minProfit, q.Switches())
	}
	t.Note("bilateral movement-contract switches anneal the economy to a stable state with non-negative profits (§7.2)")
	t.Note("short chains balance fully; long chains keep residual overload at the source — bilateral trades cannot push work past capacity-bound middles, consistent with the paper's caution that the general partitioning problem is intractable and the economy is a practical heuristic")
	return t
}

// E15RemoteDefinition measures §4.4's content customization: remotely
// defining the consumer's filter at the producer cuts boundary traffic by
// the filter's selectivity; and a suggested contract that removes the
// middleman of a star-shaped plan halves the delivery path.
func E15RemoteDefinition(scale float64) *Table {
	t := &Table{ID: "E15", Title: "remote definition and suggested contracts (§4.4, §7.2)",
		Header: []string{"case", "config", "boundary KB", "ratio"}}
	n := scaled(20_000, scale)

	// Selectivity sweep: filter locally (whole stream crosses) vs
	// remotely defined at the sender.
	for _, sel := range []float64{0.01, 0.1, 0.5} {
		local := e15Boundary(n, sel, false)
		remote := e15Boundary(n, sel, true)
		t.Add(fmt.Sprintf("filter sel=%.2f", sel), "local filter", local, 1.0)
		t.Add(fmt.Sprintf("filter sel=%.2f", sel), "remote definition", remote, remote/local)
	}
	t.Note("remote definition receives the customized content directly instead of the complete stream (§4.4)")

	// Star vs chain: P1 -> P -> P2 with P as pure middleman, then a
	// suggested contract lets P2 buy directly from P1.
	star := e15Path(n, true)
	chain := e15Path(n, false)
	t.Add("plan shape", "star (via middleman)", star, 1.0)
	t.Add("plan shape", "direct (suggested contract)", chain, chain/star)
	t.Note("suggested contracts remove the middleman: total federation traffic halves (§7.2)")
	return t
}

// e15Boundary returns KB crossing the participant boundary with the
// consumer's filter either local (after the link) or remotely defined
// (before the link).
func e15Boundary(n int, selectivity float64, remote bool) float64 {
	rng := rand.New(rand.NewSource(8))
	pred := op.MustParse(fmt.Sprintf("B < %d", int(selectivity*100)))
	op.MustBind(pred, abSchema)
	bytes := 0
	for i := 0; i < n; i++ {
		tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(rng.Int63n(100)))
		if remote && !pred.Eval(tp).AsBool() {
			continue // filtered at the producer; never crosses
		}
		bytes += transport.EncodedSize(transport.Msg{Stream: "quotes", Tuples: []stream.Tuple{tp}})
	}
	return float64(bytes) / 1024
}

// e15Path returns total KB transmitted across the federation for a star
// (two hops) versus a direct (one hop) plan over netsim.
func e15Path(n int, star bool) float64 {
	sim := netsim.New(1)
	for _, id := range []string{"p1", "mid", "p2"} {
		sim.AddNode(id, func(from string, payload any, size int) {
			// mid relays; endpoints consume.
		})
	}
	// The middleman relays every delivery.
	sim.SetHandler("mid", func(from string, payload any, size int) {
		sim.Send("mid", "p2", size, payload)
	})
	sim.Connect("p1", "mid", 0, 1_000_000, 0)
	sim.Connect("mid", "p2", 0, 1_000_000, 0)
	sim.Connect("p1", "p2", 0, 2_000_000, 0)
	for i := 0; i < n; i++ {
		tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(1))
		size := transport.EncodedSize(transport.Msg{Stream: "s", Tuples: []stream.Tuple{tp}})
		if star {
			sim.Send("p1", "mid", size, tp)
		} else {
			sim.Send("p1", "p2", size, tp)
		}
	}
	sim.Run(0)
	total := int64(0)
	for _, pair := range [][2]string{{"p1", "mid"}, {"mid", "p2"}, {"p1", "p2"}} {
		if l, ok := sim.LinkStats(pair[0], pair[1]); ok {
			total += l.BytesSent
		}
	}
	return float64(total) / 1024
}
