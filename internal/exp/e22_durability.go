package exp

import (
	"fmt"
	"os"

	"repro/internal/chaos"
)

// E22Durability runs the process-restart fault harness (internal/chaos
// RunRestart): a sender with a disk-backed output log streams to a live
// consumer while the harness kills the entire sender process state at
// seed-chosen points and restarts it from its data directory. Each row is
// one schedule class; pass means all durability oracles held — every
// tuple whose Send returned was delivered exactly once (rebuilt from
// segment files and replayed through the normal resync path, with the
// consumer's dedup absorbing the overlap), the log drained, and no
// sequence holes remained. The recovered column counts log entries
// rebuilt from disk across restarts; suppressed counts the replay
// duplicates the consumer filtered, which is the price of conservative
// whole-segment truncation.
func E22Durability(scale float64) *Table {
	t := &Table{ID: "E22", Title: "durable restart recovery: kill/restart from segment logs vs the exactness oracles",
		Header: []string{"class", "seeds", "pass", "fail", "tuples", "lost", "dups", "restarts", "recovered", "replayed", "suppressed"}}

	tuples := scaled(600, scale)
	type class struct {
		name            string
		restarts, kills int
	}
	classes := []class{
		{"fault-free", 0, 0},
		{"restarts", 3, 0},
		{"restarts+conn-kills", 3, 2},
	}
	seeds := scaled(4, scale)
	if seeds < 1 {
		seeds = 1
	}

	totalFail := 0
	for _, c := range classes {
		var pass, fail, lost, dups, restarts, recovered int
		var replayed int64
		var suppressed uint64
		for seed := 1; seed <= seeds; seed++ {
			dir, err := os.MkdirTemp("", "e22-")
			if err != nil {
				panic(err)
			}
			r := chaos.RunRestart(chaos.RestartSchedule{
				Seed: int64(seed), Tuples: tuples,
				Restarts: c.restarts, Kills: c.kills, Dir: dir,
			})
			os.RemoveAll(dir)
			if r.Failed() {
				fail++
				t.Note("FAIL %s seed %d: %v", c.name, seed, r.Violations)
			} else {
				pass++
			}
			lost += r.Missing
			dups += r.Dups
			restarts += r.Restarts
			recovered += r.Recovered
			replayed += r.Replayed
			suppressed += r.Suppressed
		}
		totalFail += fail
		t.Add(c.name, seeds, pass, fail, seeds*tuples, lost, dups, restarts, recovered, replayed, suppressed)
	}

	t.Note(fmt.Sprintf("%d seeds/class, %d tuples/run; Send's return is the commit point (fsynced segment frame)", seeds, tuples))
	if totalFail == 0 {
		t.Note("all schedules recovered with 0 lost and 0 duplicated tuples")
	}
	return t
}
