package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// E18Parallel measures the parallel wall-clock engine: the same
// embarrassingly parallel network (independent filter -> map -> tumble
// chains) drained serially and by worker pools of increasing size. The
// speedup column is the whole point — §2.3's train scheduler dispatches
// conflict-free boxes, so disjoint chains should scale with workers up to
// the core count — and the outputs column double-checks that every
// configuration delivered the identical tuple count (the equivalence the
// engine race tests verify tuple-by-tuple).
func E18Parallel(scale float64) *Table {
	t := &Table{ID: "E18", Title: "parallel engine worker scaling (wall clock, conflict-free chains)",
		Header: []string{"workers", "tuples", "wall ms", "Ktuples/s", "speedup", "outputs"}}

	const chains = 4
	per := scaled(40_000, scale)
	total := chains * per

	build := func() *query.Network {
		b := query.NewBuilder("e18")
		for i := 0; i < chains; i++ {
			f := fmt.Sprintf("f%d", i)
			m := fmt.Sprintf("m%d", i)
			tb := fmt.Sprintf("tb%d", i)
			b.AddBox(f, op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 95"}}).
				AddBox(m, op.Spec{Kind: "map", Params: map[string]string{
					"exprs": "A=A; B=((B * 3) + (A % 7))"}}).
				AddBox(tb, op.Spec{Kind: "tumble", Params: map[string]string{
					"agg": "sum", "on": "B", "groupby": "A"}}).
				Connect(f, m).
				Connect(m, tb).
				BindInput(fmt.Sprintf("in%d", i), abSchema, f, 0).
				BindOutput(fmt.Sprintf("out%d", i), tb, 0, nil)
		}
		return b.MustBuild()
	}

	run := func(workers int) (time.Duration, int) {
		e, err := engine.New(build(), engine.Config{Workers: workers})
		if err != nil {
			panic(err)
		}
		in := make([][]stream.Tuple, chains)
		inputs := make([]string, chains)
		for i := 0; i < chains; i++ {
			in[i] = randTuples(per, 16, int64(100+i))
			inputs[i] = fmt.Sprintf("in%d", i)
		}
		start := time.Now()
		for j := 0; j < per; j++ {
			for i := 0; i < chains; i++ {
				e.Ingest(inputs[i], in[i][j])
			}
		}
		e.Run()
		e.Drain()
		el := time.Since(start)
		// The delivered counter is the output count: no OnOutput callback
		// is installed, so nothing user-side races the pool.
		return el, int(e.Metrics().Counter("engine.delivered").Value())
	}

	var serialMs float64
	for _, w := range []int{1, 2, 4} {
		el, outs := run(w)
		ms := float64(el.Nanoseconds()) / 1e6
		if w == 1 {
			serialMs = ms
		}
		speedup := serialMs / ms
		t.Add(w, total, ms, float64(total)/1e3/(ms/1e3), speedup, outs)
	}
	t.Note("independent chains: per-(box,port) order is preserved per chain; speedup is capped by GOMAXPROCS (here %d)", runtime.GOMAXPROCS(0))
	return t
}
