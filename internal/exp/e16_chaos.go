package exp

import (
	"fmt"

	"repro/internal/chaos"
)

// E16Chaos sweeps seed-reproducible randomized fault schedules through
// the chaos harness (internal/chaos) and tabulates the four §6 oracles —
// no loss within the k budget, at-most-once, convergence, truncation
// safety — per schedule class, plus the deliberate k+1 negative control
// that must lose data (proving the oracles can fail).
func E16Chaos(scale float64) *Table {
	t := &Table{ID: "E16", Title: "chaos: randomized fault schedules vs the k-safety oracles (§6)",
		Header: []string{"class", "schedules", "pass", "fail", "tuples", "lost", "resent", "dups suppressed", "recoveries"}}

	type agg struct {
		n, pass, fail, ingested, lost, recov int
		resent, supp                         uint64
	}
	order := []string{"load/quiet", "network faults", "masked crashes", "failover"}
	classes := map[string]*agg{}
	for _, c := range order {
		classes[c] = &agg{}
	}

	seeds := scaled(1000, scale)
	for seed := 1; seed <= seeds; seed++ {
		s := chaos.Generate(int64(seed))
		r := chaos.Run(s)
		a := classes[classOf(s)]
		a.n++
		if r.Failed() {
			a.fail++
		} else {
			a.pass++
		}
		a.ingested += r.Ingested
		a.lost += r.Missing
		a.recov += r.Recoveries
		a.resent += r.Resent
		a.supp += r.Suppressed
	}
	for _, c := range order {
		a := classes[c]
		t.Add(c, a.n, a.pass, a.fail, a.ingested, a.lost, a.resent, a.supp, a.recov)
	}

	// Negative control: two concurrent failures against k=1, staged so
	// the doomed tuples' surviving copies are trapped behind a
	// partition. Loss here is expected and classified, not a violation.
	neg := chaos.Run(chaos.Schedule{
		Seed: 1, Workers: 3, K: 1,
		Events: []chaos.Event{
			{Kind: chaos.Partition, At: 20e6, Dur: 6e6, A: "n2", B: "n3"},
			{Kind: chaos.Crash, At: 25_500_000, Node: "n1"},
			{Kind: chaos.Crash, At: 25_500_000, Node: "n2"},
		},
	})
	t.Add("k+1 control", 1, 0, 0, neg.Ingested, neg.Missing, neg.Resent, neg.Suppressed, neg.Recoveries)
	t.Note(fmt.Sprintf("%d seeded schedules; every in-budget schedule must pass all four oracles", seeds))
	t.Note(fmt.Sprintf("k+1 control exceeded the budget (max concurrent %d > k=1) and lost %d tuples, as §6.2 predicts",
		neg.MaxConcurrent, neg.Missing))
	if neg.Missing == 0 {
		t.Note("WARNING: the k+1 control lost nothing — the harness may be unable to detect loss")
	}
	return t
}

// classOf buckets a schedule by its most severe fault kind.
func classOf(s chaos.Schedule) string {
	class := "load/quiet"
	for _, e := range s.Events {
		switch e.Kind {
		case chaos.Crash:
			if e.Dur == 0 || e.Dur > chaos.DetectTimeout {
				return "failover"
			}
			class = "masked crashes"
		case chaos.Partition, chaos.Lossy:
			if class == "load/quiet" {
				class = "network faults"
			}
		}
	}
	return class
}
