package exp

import (
	"fmt"
	"strings"
	"testing"
)

// TestAllExperimentsRun executes every experiment at small scale and
// checks the structural contract benchrunner and bench_test.go rely on.
func TestAllExperimentsRun(t *testing.T) {
	for _, e := range Registry() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			table := e.Run(0.05)
			if table.ID != e.ID {
				t.Errorf("table id %q != %q", table.ID, e.ID)
			}
			if len(table.Rows) == 0 {
				t.Fatal("no rows")
			}
			for i, row := range table.Rows {
				if len(row) != len(table.Header) {
					t.Errorf("row %d has %d cells, header has %d", i, len(row), len(table.Header))
				}
			}
			s := table.String()
			if !strings.Contains(s, e.ID) || !strings.Contains(s, table.Header[0]) {
				t.Errorf("render missing pieces:\n%s", s)
			}
		})
	}
}

// TestHeadlineShapes pins the qualitative claims of EXPERIMENTS.md at
// reduced scale, so a regression in any mechanism fails loudly here.
func TestHeadlineShapes(t *testing.T) {
	t.Run("E01 paper example matches", func(t *testing.T) {
		table := E01Operators(0.02)
		found := false
		for _, n := range table.Notes {
			if strings.Contains(n, "MATCHES the paper") {
				found = true
			}
		}
		if !found {
			t.Errorf("worked example mismatch: %v", table.Notes)
		}
	})
	t.Run("E06 all splits transparent", func(t *testing.T) {
		table := E06TumbleSplit(0.2)
		for _, row := range table.Rows {
			if row[2] != "true" {
				t.Errorf("aggregate %s split not transparent", row[0])
			}
		}
	})
	t.Run("E08 k1 zero loss", func(t *testing.T) {
		table := E08KSafety(0.2)
		// rows: k=0 loses, k>=1 rows lose nothing.
		if table.Rows[0][3] == "0" {
			t.Error("k=0 should lose tuples")
		}
		for _, row := range table.Rows[1:] {
			if row[3] != "0" {
				t.Errorf("k=%s crash %s lost %s tuples", row[0], row[1], row[3])
			}
		}
	})
	t.Run("E20 latency-SLO plane acceptance", func(t *testing.T) {
		table := E20LatencySLO(0.1)
		if len(table.Rows) != 3 {
			t.Fatalf("want 3 phase rows, got %d", len(table.Rows))
		}
		cum := table.Rows[2] // phase, delivered, oracle, sketch, err%, lead, bottleneck
		if cum[6] != "hot" {
			t.Errorf("attributed bottleneck %q, want the slowed box %q", cum[6], "hot")
		}
		var errPct float64
		if _, err := fmt.Sscan(cum[4], &errPct); err != nil {
			t.Fatalf("sketch err cell %q not numeric: %v", cum[4], err)
		}
		if errPct < 0 {
			errPct = -errPct
		}
		// DDSketch at alpha=0.01 guarantees 1% relative error per value;
		// 2% leaves room for nearest-rank granularity at the p99 rank.
		if errPct > 2 {
			t.Errorf("gossiped sketch p99 off by %.2f%%, want within 2%%", errPct)
		}
		var leadMs float64
		if _, err := fmt.Sscan(cum[5], &leadMs); err != nil {
			t.Fatalf("warn lead cell %q not numeric (no warn journaled?): %v", cum[5], err)
		}
		// The forecaster must warn at least one 5ms stats period before
		// the oracle's windowed p99 actually crossed the cliff.
		if leadMs < 5 {
			t.Errorf("warn lead %.2fms, want >= one 5ms stats period", leadMs)
		}
	})
	t.Run("E11 wfq within tolerance", func(t *testing.T) {
		table := E11Multiplexing(0.2)
		for _, row := range table.Rows {
			if row[2] != row[3] {
				// formatted to 3 significant digits; equality is the
				// expected outcome for fully backlogged streams
				t.Errorf("stream %s wfq share %s != target %s", row[0], row[3], row[2])
			}
		}
	})
}
