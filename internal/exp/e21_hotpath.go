package exp

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// E21HotPath measures the batched train path against the serial-kernel
// baseline on the E18 workload shape (filter -> map -> tumble chains),
// single worker, wall clock. The two rows run the identical network and
// input; the only difference is Config.SerialKernels, which forces the
// pre-batching per-tuple train body. The speedup column is the tentpole
// claim (one kernel dispatch per train plus pooled buffers vs one
// virtual call per tuple), and allocs/tuple is the whole-path allocation
// rate — ingest, train, emit, delivery — from runtime.MemStats deltas.
// The deterministic 0-allocs/op claim for the steady-state train body
// alone is pinned separately by the engine's hot-path guard tests.
func E21HotPath(scale float64) *Table {
	t := &Table{ID: "E21", Title: "batched kernels + pooling vs serial per-tuple train path (1 worker, wall clock)",
		Header: []string{"mode", "tuples", "wall ms", "Ktuples/s", "speedup", "allocs/tuple"}}

	const chains = 4
	per := scaled(100_000, scale)
	total := chains * per

	build := func() *query.Network {
		b := query.NewBuilder("e21")
		for i := 0; i < chains; i++ {
			f := fmt.Sprintf("f%d", i)
			m := fmt.Sprintf("m%d", i)
			tb := fmt.Sprintf("tb%d", i)
			b.AddBox(f, op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 95"}}).
				AddBox(m, op.Spec{Kind: "map", Params: map[string]string{
					"exprs": "A=A; B=((B * 3) + (A % 7))"}}).
				AddBox(tb, op.Spec{Kind: "tumble", Params: map[string]string{
					"agg": "sum", "on": "B", "groupby": "A"}}).
				Connect(f, m).
				Connect(m, tb).
				BindInput(fmt.Sprintf("in%d", i), abSchema, f, 0).
				BindOutput(fmt.Sprintf("out%d", i), tb, 0, nil)
		}
		return b.MustBuild()
	}

	in := make([][]stream.Tuple, chains)
	inputs := make([]string, chains)
	for i := 0; i < chains; i++ {
		in[i] = randTuples(per, 16, int64(100+i))
		inputs[i] = fmt.Sprintf("in%d", i)
	}

	run := func(serial bool) (time.Duration, float64, int) {
		e, err := engine.New(build(), engine.Config{SerialKernels: serial})
		if err != nil {
			panic(err)
		}
		// Ingest outside the measured region: the ingest path is identical
		// in both modes, so timing it would only dilute the train-path
		// comparison the experiment exists to make.
		for j := 0; j < per; j++ {
			for i := 0; i < chains; i++ {
				e.Ingest(inputs[i], in[i][j])
			}
		}
		runtime.GC()
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		e.Run()
		e.Drain()
		el := time.Since(start)
		runtime.ReadMemStats(&m1)
		allocs := float64(m1.Mallocs-m0.Mallocs) / float64(total)
		return el, allocs, int(e.Metrics().Counter("engine.delivered").Value())
	}

	var serialMs float64
	serialOuts, batchedOuts := 0, 0
	for _, mode := range []string{"serial-kernel", "batched"} {
		serial := mode == "serial-kernel"
		el, allocs, outs := run(serial)
		ms := float64(el.Nanoseconds()) / 1e6
		if serial {
			serialMs = ms
			serialOuts = outs
		} else {
			batchedOuts = outs
		}
		t.Add(mode, total, ms, float64(total)/1e3/(ms/1e3), serialMs/ms, allocs)
	}
	if serialOuts != batchedOuts {
		t.Note("OUTPUT MISMATCH: serial-kernel delivered %d, batched %d", serialOuts, batchedOuts)
	} else {
		t.Note("both modes delivered %d outputs; allocs/tuple is the whole path (ingest through delivery), not just the train body", serialOuts)
	}
	return t
}
