package exp

import (
	"repro/internal/engine"
	"repro/internal/query"
)

// engineNew builds a virtual-clock engine for local experiment runs.
func engineNew(net *query.Network) (*engine.Engine, error) {
	return engine.New(net, engine.Config{Clock: engine.NewVirtualClock(1)})
}
