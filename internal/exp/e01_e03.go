package exp

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stream"
)

var abSchema = stream.MustSchema("ab",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

// fig2Stream is the paper's Figure 2 sample stream.
func fig2Stream() []stream.Tuple {
	rows := [][2]int64{{1, 2}, {1, 3}, {2, 2}, {2, 1}, {2, 6}, {4, 5}, {4, 2}}
	out := make([]stream.Tuple, len(rows))
	for i, r := range rows {
		out[i] = stream.Tuple{Seq: uint64(i + 1), TS: int64(i + 1),
			Vals: []stream.Value{stream.Int(r[0]), stream.Int(r[1])}}
	}
	return out
}

func randTuples(n int, keys int64, seed int64) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = stream.Tuple{Seq: uint64(i + 1), TS: int64(i + 1), Vals: []stream.Value{
			stream.Int(rng.Int63n(keys)), stream.Int(rng.Int63n(100)),
		}}
	}
	return out
}

// E01Operators reproduces Figure 2's worked Tumble example and measures
// per-operator throughput over synthetic streams.
func E01Operators(scale float64) *Table {
	t := &Table{ID: "E01", Title: "operator semantics (Fig 1, Fig 2) and throughput",
		Header: []string{"operator", "tuples", "wall ns/tuple", "Mtuples/s"}}

	// The worked example: Tumble(avg(B), group A) over Fig 2.
	tb := op.MustBuild(op.Spec{Kind: "tumble", Params: map[string]string{
		"agg": "avg", "on": "B", "groupby": "A"}})
	if _, err := tb.Bind([]*stream.Schema{abSchema}); err != nil {
		panic(err)
	}
	var got []stream.Tuple
	emit := func(_ int, tp stream.Tuple) { got = append(got, tp) }
	for _, tp := range fig2Stream() {
		tb.Process(0, tp, emit)
	}
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Float(2.5)),
		stream.NewTuple(stream.Int(2), stream.Float(3.0)),
	}
	if stream.TuplesEqualValues(got, want) {
		t.Note("Fig 2 worked example: Tumble(avg B by A) emitted (1, 2.5) and (2, 3.0) — MATCHES the paper")
	} else {
		t.Note("Fig 2 worked example: MISMATCH: %s", stream.FormatTuples(got))
	}

	n := scaled(300_000, scale)
	in := randTuples(n, 64, 1)
	bench := func(name string, spec op.Spec, twoInputs bool) {
		inst := op.MustBuild(spec)
		schemas := []*stream.Schema{abSchema}
		if twoInputs {
			schemas = []*stream.Schema{abSchema, abSchema}
		}
		if _, err := inst.Bind(schemas); err != nil {
			panic(err)
		}
		sink := func(int, stream.Tuple) {}
		start := time.Now()
		for i, tp := range in {
			if twoInputs {
				inst.Process(i%2, tp, sink)
			} else {
				inst.Process(0, tp, sink)
			}
		}
		inst.Flush(sink)
		el := time.Since(start)
		perTuple := float64(el.Nanoseconds()) / float64(n)
		t.Add(name, n, perTuple, 1e3/perTuple)
	}
	bench("filter", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 50"}}, false)
	bench("map", op.Spec{Kind: "map", Params: map[string]string{"exprs": "A=A; B2=(B * 2)"}}, false)
	bench("union", op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}, true)
	bench("tumble(cnt)", op.Spec{Kind: "tumble", Params: map[string]string{
		"agg": "cnt", "on": "B", "groupby": "A"}}, false)
	bench("xsection", op.Spec{Kind: "xsection", Params: map[string]string{
		"agg": "sum", "on": "B", "groupby": "A", "size": "16", "advance": "16"}}, false)
	bench("slide", op.Spec{Kind: "slide", Params: map[string]string{
		"agg": "max", "on": "B", "groupby": "A", "order": "B", "range": "1000000"}}, false)
	bench("join", op.Spec{Kind: "join", Params: map[string]string{
		"leftkey": "A", "rightkey": "A", "window": "2"}}, true)
	bench("wsort(maxbuf)", op.Spec{Kind: "wsort", Params: map[string]string{
		"attrs": "A", "timeout": "1000000000", "maxbuf": "256"}}, false)
	return t
}

// E02Scheduler compares the §2.3 scheduling disciplines: train scheduling
// amortizes per-decision overhead; round-robin with tiny trains pays it on
// every tuple.
func E02Scheduler(scale float64) *Table {
	t := &Table{ID: "E02", Title: "scheduler disciplines (Fig 3, train scheduling)",
		Header: []string{"scheduler", "train", "wall ms", "Ktuples/s", "spill events"}}
	n := scaled(200_000, scale)
	in := randTuples(n, 64, 2)

	build := func() *query.Network {
		ids := make([]string, 8)
		specs := make([]op.Spec, 8)
		for i := range ids {
			ids[i] = fmt.Sprintf("f%d", i)
			specs[i] = op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}
		}
		return query.NewBuilder("chain8").
			Chain(ids, specs).
			BindInput("in", abSchema, "f0", 0).
			BindOutput("out", "f7", 0, nil).
			MustBuild()
	}
	run := func(name string, sched engine.Scheduler, train int) {
		e, err := engine.New(build(), engine.Config{Scheduler: sched})
		if err != nil {
			panic(err)
		}
		e.OnOutput(func(string, stream.Tuple) {})
		start := time.Now()
		for _, tp := range in {
			e.Ingest("in", tp)
		}
		e.RunUntilIdle(0)
		el := time.Since(start)
		t.Add(name, train, float64(el.Milliseconds()),
			float64(n)/el.Seconds()/1e3, e.Storage().SpillEvents())
		t.AttachMetrics(fmt.Sprintf("%s/train=%d", name, train), e.Metrics().Snapshot())
	}
	run("round-robin", engine.NewRoundRobinScheduler(1), 1)
	run("round-robin", engine.NewRoundRobinScheduler(16), 16)
	run("train", engine.NewTrainScheduler(128), 128)
	run("train", engine.NewTrainScheduler(1024), 1024)
	run("qos-priority", engine.NewQoSScheduler(128, 1e6), 128)
	t.Note("train scheduling pushes waiting tuples through a box in bulk (§2.3); larger trains amortize scheduling cost")
	return t
}

// E03Shedding sweeps offered load across shedding policies, reproducing
// the Load Shedder behaviour of Fig 3 / §7.1: past saturation, QoS-driven
// drops preserve more utility than random drops, and both beat letting
// latency blow up.
func E03Shedding(scale float64) *Table {
	t := &Table{ID: "E03", Title: "load shedding: utility vs offered load (Fig 3, §7.1)",
		Header: []string{"load", "policy", "delivered%", "p95 ms", "utility"}}
	n := scaled(30_000, scale)
	boxCost := int64(100_000)

	valueGraph := qos.MustGraph(qos.Point{X: 0, U: 0}, qos.Point{X: 3, U: 1})
	build := func() *query.Network {
		spec := &qos.Spec{
			Latency:    qos.DefaultLatency(20e6, 500e6),
			Loss:       qos.DefaultLoss(0.1),
			Value:      valueGraph,
			ValueField: "B",
		}
		s := stream.MustSchema("vf",
			stream.Field{Name: "A", Kind: stream.KindInt},
			stream.Field{Name: "B", Kind: stream.KindFloat})
		return query.NewBuilder("shed").
			AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "true"}}).
			BindInput("in", s, "f", 0).
			BindOutput("out", "f", 0, spec).
			MustBuild()
	}
	mkTuples := func() []stream.Tuple {
		rng := rand.New(rand.NewSource(3))
		out := make([]stream.Tuple, n)
		for i := range out {
			out[i] = stream.NewTuple(stream.Int(int64(i)), stream.Float(rng.ExpFloat64()))
		}
		return out
	}
	for _, load := range []float64{0.5, 1.0, 2.0, 4.0} {
		gap := int64(float64(boxCost) / load)
		run := func(policy string, shed *engine.ShedConfig) {
			e, err := engine.New(build(), engine.Config{
				Clock:          engine.NewVirtualClock(1),
				DefaultBoxCost: boxCost,
				Shed:           shed,
			})
			if err != nil {
				panic(err)
			}
			e.OnOutput(func(string, stream.Tuple) {})
			engine.Drive(e, "in", mkTuples(), gap)
			e.Drain()
			rep, _ := e.Output("out")
			t.Add(fmt.Sprintf("%.1fx", load), policy,
				100*rep.DeliveredFraction, rep.Latency.P95/1e6, rep.Utility)
		}
		run("none", nil)
		run("random", &engine.ShedConfig{
			Mode: engine.ShedRandom, QueueHigh: 500, QueueLow: 50, Seed: 1})
		run("qos", &engine.ShedConfig{
			Mode: engine.ShedQoS, QueueHigh: 500, QueueLow: 50, Seed: 1,
			ValueExpr: "B", ValueGraph: valueGraph, InputSchema: "in"})
	}
	t.Note("past saturation, QoS-driven shedding keeps the high-value tuples random shedding throws away")
	return t
}
