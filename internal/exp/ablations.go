package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// A01Detection sweeps the §6.3 heartbeat timeout: shorter timeouts detect
// real failures faster but misfire under network delay jitter (sustained
// congestion is one of the §6 availability threats); longer timeouts are
// safe but slow. The sweep runs each timeout twice — once against a real
// crash, once against a jittery but healthy network — reporting detection
// latency and false positives.
func A01Detection(scale float64) *Table {
	t := &Table{ID: "A01", Title: "ablation: heartbeat timeout vs detection latency and false positives (§6.3)",
		Header: []string{"timeout ms", "detect latency ms", "false positives (healthy run)"}}
	n := scaled(1500, scale)
	const gap = 20_000
	const hb = int64(1e6)

	run := func(timeout int64, crash bool, jitterLoss float64) (detectMs float64, falsePos int) {
		sim := netsim.New(7)
		net := query.NewBuilder("chain").
			Chain([]string{"f1", "f2"},
				[]op.Spec{
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
				}).
			BindInput("in", abSchema, "f1", 0).
			BindOutput("out", "f2", 0, nil).
			MustBuild()
		c, err := core.NewCluster(sim, net,
			map[string]string{"f1": "n1", "f2": "n2"}, nil,
			core.Config{
				K: 1, DefaultBoxCost: 2_000,
				FlowPeriod: 2e6, HeartbeatPeriod: hb, DetectTimeout: timeout,
			})
		if err != nil {
			panic(err)
		}
		// Loss on the link drops heartbeats, modeling congestion jitter.
		sim.Connect("n1", "n2", 0, 100_000, jitterLoss)
		c.Start()
		c.OnOutput(func(string, stream.Tuple, int64) {})
		for i := 0; i < n; i++ {
			tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(1))
			sim.Schedule(int64(i)*gap, func() { c.Ingest("in", tp) })
		}
		crashAt := int64(n/2) * gap
		if crash {
			sim.Schedule(crashAt, func() { sim.Crash("n2") })
		}
		sim.Run(1e9)
		for _, r := range c.Recoveries() {
			if crash {
				return float64(r.DetectedAt-crashAt) / 1e6, 0
			}
			falsePos++ // any recovery on a healthy run is a misfire
		}
		return 0, falsePos
	}
	for _, timeout := range []int64{2e6, 5e6, 20e6, 80e6} {
		detect, _ := run(timeout, true, 0)
		_, fp := run(timeout, false, 0.35)
		t.Add(float64(timeout)/1e6, detect, fp)
	}
	t.Note("with 35%% heartbeat loss, aggressive timeouts declare healthy neighbors dead; the timeout choice trades recovery speed for stability under congestion (§6.3)")
	return t
}

// A02FlowPeriod sweeps the §6.2 flow-message (checkpoint) period on a
// live chain: frequent checkpoints cost back-channel messages but keep
// the upstream output queues short and the failover replay small —
// the live counterpart of E09's analytic spectrum.
func A02FlowPeriod(scale float64) *Table {
	t := &Table{ID: "A02", Title: "ablation: flow-message period vs retained queue and replay (§6.2)",
		Header: []string{"flow period ms", "back-channel msgs", "peak retained tuples", "replayed on crash"}}
	n := scaled(3000, scale)
	const gap = 20_000

	for _, period := range []int64{1e6, 5e6, 20e6, 80e6} {
		sim := netsim.New(3)
		net := query.NewBuilder("chain").
			Chain([]string{"f1", "f2", "f3"},
				[]op.Spec{
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
				}).
			BindInput("in", abSchema, "f1", 0).
			BindOutput("out", "f3", 0, nil).
			MustBuild()
		c, err := core.NewCluster(sim, net,
			map[string]string{"f1": "n1", "f2": "n2", "f3": "n3"}, nil,
			core.Config{
				K: 1, DefaultBoxCost: 2_000,
				FlowPeriod: period, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
			})
		if err != nil {
			panic(err)
		}
		for _, pair := range [][2]string{{"n1", "n2"}, {"n2", "n3"}, {"n1", "n3"}} {
			sim.Connect(pair[0], pair[1], 0, 100_000, 0)
		}
		c.Start()
		c.OnOutput(func(string, stream.Tuple, int64) {})
		for i := 0; i < n; i++ {
			tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(1))
			sim.Schedule(int64(i)*gap, func() { c.Ingest("in", tp) })
		}
		peak := 0
		for i := int64(1); i <= 20; i++ {
			sim.Schedule(i*int64(n)/20*gap, func() {
				if l := c.LogTuples("n1") + c.LogTuples("n2"); l > peak {
					peak = l
				}
			})
		}
		crashAt := int64(3*n/4) * gap
		sim.Schedule(crashAt, func() { sim.Crash("n2") })
		sim.Run(1e9)
		replayed := 0
		for _, r := range c.Recoveries() {
			replayed += r.Replayed
		}
		// Back-channel message count: flow ticks per node per run time.
		runNs := int64(n) * gap
		backMsgs := 2 * (runNs / period) // two acking nodes
		t.Add(fmt.Sprintf("%.0f", float64(period)/1e6), backMsgs, peak, replayed)
	}
	t.Note("the paper's tradeoff live: cheap infrequent checkpoints retain long queues and replay more at failover; frequent checkpoints invert it (§6.2, §6.4)")
	return t
}
