package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ha"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/transport"
)

// E08KSafety is Fig 8 live: crash servers in a chain under k in {0,1,2}
// and measure loss, duplicates, detection latency, and replay volume.
// k=0 loses the in-flight work; k=1 survives any single crash; k=2
// survives a simultaneous double crash.
func E08KSafety(scale float64) *Table {
	t := &Table{ID: "E08", Title: "k-safe upstream backup (Fig 8, §6.2-6.3)",
		Header: []string{"k", "crash", "sent", "missing", "dups", "detect ms", "replayed"}}
	n := scaled(2000, scale)
	const gap = 20_000

	run := func(k int, crash []string) {
		sim := netsim.New(1)
		net := query.NewBuilder("chain").
			Chain([]string{"f1", "f2", "f3"},
				[]op.Spec{
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
					{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
				}).
			BindInput("in", abSchema, "f1", 0).
			BindOutput("out", "f3", 0, nil).
			MustBuild()
		c, err := core.NewCluster(sim, net,
			map[string]string{"f1": "n1", "f2": "n2", "f3": "n3"}, nil,
			core.Config{
				K: k, DefaultBoxCost: 5_000,
				FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
			})
		if err != nil {
			panic(err)
		}
		for _, pair := range [][2]string{{"n1", "n2"}, {"n2", "n3"}, {"n1", "n3"}} {
			sim.Connect(pair[0], pair[1], 0, 100_000, 0)
		}
		c.Start()
		seen := map[int64]int{}
		c.OnOutput(func(_ string, tp stream.Tuple, _ int64) { seen[tp.Field(0).AsInt()]++ })
		for i := 0; i < n; i++ {
			tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(int64(i%60)))
			sim.Schedule(int64(i)*gap, func() { c.Ingest("in", tp) })
		}
		crashAt := int64(n/2) * gap
		sim.Schedule(crashAt, func() {
			for _, node := range crash {
				sim.Crash(node)
			}
		})
		sim.Run(3e9)
		missing, dups := 0, 0
		for i := 0; i < n; i++ {
			switch cnt := seen[int64(i)]; {
			case cnt == 0:
				missing++
			case cnt > 1:
				dups += cnt - 1
			}
		}
		detect, replayed := 0.0, 0
		for _, r := range c.Recoveries() {
			d := float64(r.DetectedAt-crashAt) / 1e6
			if d > detect {
				detect = d
			}
			replayed += r.Replayed
		}
		t.Add(k, fmt.Sprint(crash), n, missing, dups, detect, replayed)
	}
	run(0, []string{"n2"})
	run(1, []string{"n2"})
	run(1, []string{"n3"})
	run(2, []string{"n2", "n3"})
	t.Note("k=0 loses everything in flight at the crash; k>=1 loses nothing (duplicates are the price, §6.2)")
	return t
}

// E09Spectrum sweeps the §6.4 recovery-granularity knob: runtime backup
// messages rise with K while recovery work falls, with per-box K meeting
// the process-pair baseline at both ends of the spectrum.
func E09Spectrum(scale float64) *Table {
	t := &Table{ID: "E09", Title: "recovery time vs run-time overhead (§6.4)",
		Header: []string{"config", "K", "runtime msgs", "redone box execs", "recovery ms"}}
	s := ha.Spectrum{
		Boxes:      16,
		N:          scaled(1_000_000, scale),
		FlowPeriod: 4096,
		BoxCost:    2_000,
	}
	for _, k := range []int{1, 2, 4, 8, 16} {
		p, err := s.At(k)
		if err != nil {
			panic(err)
		}
		label := "virtual machines"
		if k == 1 {
			label = "upstream backup"
		}
		t.Add(label, p.K, p.RuntimeMessages, p.RedoneBoxExecs, float64(p.RecoveryTime)/1e6)
	}
	pp, err := s.ProcessPair()
	if err != nil {
		panic(err)
	}
	t.Add("process-pair", "-", pp.RuntimeMessages, pp.RedoneBoxExecs, float64(pp.RecoveryTime)/1e6)
	t.Note("the paper's claimed spectrum: tune K between cheap-runtime/slow-recovery and process-pair (§6.4)")
	return t
}

// E10QoSInference validates Fig 9: the inferred internal-node QoS
// Qi(t)=Qo(t+TB) computed from monitored box costs predicts the output
// utility observed end to end.
func E10QoSInference(scale float64) *Table {
	t := &Table{ID: "E10", Title: "QoS inference at internal nodes (Fig 9, §7.1)",
		Header: []string{"arc", "TB ms (measured)", "inferred budget ms", "measured upstream latency ms", "within budget"}}

	// A 3-node chain with deliberately different box costs.
	costs := map[string]int64{"f1": 2_000_000, "f2": 5_000_000, "f3": 3_000_000}
	sim := netsim.New(1)
	net := query.NewBuilder("infer").
		Chain([]string{"f1", "f2", "f3"},
			[]op.Spec{
				{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
				{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
				{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}},
			}).
		BindInput("in", abSchema, "f1", 0).
		BindOutput("out", "f3", 0, nil).
		MustBuild()
	c, err := core.NewCluster(sim, net,
		map[string]string{"f1": "s1", "f2": "s2", "f3": "s3"}, nil,
		core.Config{BoxCosts: costs, DefaultBoxCost: 1000})
	if err != nil {
		panic(err)
	}
	for _, pair := range [][2]string{{"s1", "s2"}, {"s2", "s3"}} {
		sim.Connect(pair[0], pair[1], 0, 500_000, 0)
	}
	c.Start()

	// Observe per-stage latencies by timestamping at the output.
	var outLatencies []float64
	c.OnOutput(func(_ string, tp stream.Tuple, at int64) {
		outLatencies = append(outLatencies, float64(at-tp.TS))
	})
	n := scaled(2000, scale)
	for i := 0; i < n; i++ {
		tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(int64(i%50)))
		sim.Schedule(int64(i)*12_000_000, func() { c.Ingest("in", tp) })
	}
	sim.Run(0)

	// The output QoS: utility 1 up to 15ms, 0 at 60ms.
	spec := &qos.Spec{Latency: qos.DefaultLatency(15e6, 60e6)}
	// Per-box TB from the modeled costs (the engine's measured EWMA
	// equals the virtual cost here; transmission adds the link delays).
	boxes := []struct {
		arc string
		tb  float64
	}{
		{"into f3 (s3 input)", float64(costs["f3"]) + 500_000},
		{"into f2 (s2 input)", float64(costs["f2"]) + 500_000},
		{"into f1 (s1 input)", float64(costs["f1"])},
	}
	var mean float64
	for _, l := range outLatencies {
		mean += l
	}
	if len(outLatencies) > 0 {
		mean /= float64(len(outLatencies))
	}
	cum := 0.0
	for _, b := range boxes {
		cum += b.tb
		budget := spec.Latency.Shift(cum).CriticalX(0.5)
		upstreamLat := mean - cum // expected latency already spent when a tuple sits at this arc
		if upstreamLat < 0 {
			upstreamLat = 0
		}
		t.Add(b.arc, b.tb/1e6, budget/1e6, upstreamLat/1e6, upstreamLat <= budget)
	}
	t.Note("mean end-to-end latency %.2f ms; each inferred arc budget Qi(t)=Qo(t+TB) admits the measured upstream latency", mean/1e6)
	return t
}

// E11Multiplexing is §4.3: N logical streams share one connection under
// WFQ; achieved byte shares track the prescribed weights, while the FIFO
// baseline tracks arrival order instead.
func E11Multiplexing(scale float64) *Table {
	t := &Table{ID: "E11", Title: "multiplexed transport with weighted sharing (§4.3)",
		Header: []string{"stream", "weight", "target share", "wfq share", "fifo share"}}
	msgs := scaled(3000, scale)

	weights := map[string]float64{"gold": 4, "silver": 2, "bronze": 1}
	streams := []string{"gold", "silver", "bronze"}
	var totalW float64
	for _, w := range weights {
		totalW += w
	}
	mkMsg := func(s string) (transport.Msg, int) {
		m := transport.Msg{Stream: s, Kind: transport.KindData,
			Tuples: []stream.Tuple{stream.NewTuple(stream.Int(1), stream.Int(2))}}
		return m, transport.EncodedSize(m)
	}
	measure := func(sched transport.Scheduler) map[string]int {
		// All streams fully backlogged; drain the first third and count
		// per-stream bytes on the wire.
		for i := 0; i < msgs; i++ {
			for _, s := range streams {
				m, size := mkMsg(s)
				sched.Enqueue(s, size, m)
			}
		}
		got := map[string]int{}
		for i := 0; i < msgs; i++ {
			m, size, ok := sched.Next()
			if !ok {
				break
			}
			got[m.Stream] += size
		}
		return got
	}
	wfq := transport.NewWFQ()
	for s, w := range weights {
		wfq.SetWeight(s, w)
	}
	wfqBytes := measure(wfq)
	fifoBytes := measure(transport.NewFIFO())
	wfqTotal, fifoTotal := 0, 0
	for _, s := range streams {
		wfqTotal += wfqBytes[s]
		fifoTotal += fifoBytes[s]
	}
	for _, s := range streams {
		t.Add(s, weights[s], weights[s]/totalW,
			float64(wfqBytes[s])/float64(wfqTotal),
			float64(fifoBytes[s])/float64(fifoTotal))
	}
	t.Note("WFQ tracks the prescribed weights; FIFO gives every backlogged stream the same share regardless of QoS or contracts")
	return t
}
