package exp

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
)

// E18bAutoSplit measures runtime intra-operator parallelism (§5.1 box
// splitting promoted to an execution strategy): one chain whose windowed
// aggregate burns almost all the CPU, fed Zipf-skewed keys. Serially and
// with a 4-worker pool the single hot box caps throughput near 1x — a
// pool cannot parallelize one box. With the autosplit controller on, the
// stats plane flags the box hot, the engine key-shards it into replicas
// across the workers, and merges replica output through the combine
// chain; throughput then scales with the workers (sub-linear to the
// extent the Zipf head pins its shard). The checksum column is the
// equivalence witness: sum is combined by summing, so the total of all
// emitted window results is invariant under any split.
func E18bAutoSplit(scale float64) *Table {
	t := &Table{ID: "E18B",
		Title:  "runtime hot-box autosplit on Zipf keys (wall clock, 1 chain)",
		Header: []string{"config", "tuples", "wall ms", "Ktuples/s", "speedup", "splits", "windows", "checksum"}}

	per := scaled(120_000, scale)
	in := zipfBursts(per, 256, 1.15, 8, 42)

	build := func() *query.Network {
		return query.NewBuilder("e18b").
			AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000000"}}).
			AddBox("hot", op.Spec{Kind: "tumble", Params: map[string]string{
				"agg": "sum", "on": heavyExpr(40), "groupby": "A"}}).
			Connect("f", "hot").
			BindInput("in", abSchema, "f", 0).
			BindOutput("out", "hot", 0, nil).
			MustBuild()
	}

	run := func(workers int, auto bool) (el time.Duration, splits uint64, windows int, checksum int64) {
		cfg := engine.Config{Workers: workers}
		if auto {
			cfg.StatsEvery = 4
			cfg.AutoSplit = &engine.AutoSplitConfig{
				Replicas: 4, WindowNs: 2e6, CheckEvery: 1, HoldHot: 1, HoldCool: 50,
				Hot: stats.HotSpec{WorkFrac: 0.2, CoolFrac: 0.05, MinQueue: 4, Windows: 1},
			}
		}
		e, err := engine.New(build(), cfg)
		if err != nil {
			panic(err)
		}
		var mu sync.Mutex
		e.OnOutput(func(_ string, tp stream.Tuple) {
			mu.Lock()
			windows++
			checksum += tp.Field(1).AsInt()
			mu.Unlock()
		})
		for _, tp := range in {
			e.Ingest("in", tp)
		}
		start := time.Now()
		e.Run()
		e.Drain()
		el = time.Since(start)
		splits, _ = e.SplitCounts()
		return el, splits, windows, checksum
	}

	rows := []struct {
		name    string
		workers int
		auto    bool
	}{
		{"serial", 0, false},
		{"4 workers", 4, false},
		{"4 workers + autosplit", 4, true},
	}
	var serialMs float64
	for _, rc := range rows {
		el, splits, windows, checksum := run(rc.workers, rc.auto)
		ms := float64(el.Nanoseconds()) / 1e6
		if serialMs == 0 {
			serialMs = ms
		}
		t.Add(rc.name, per, ms, float64(per)/1e3/(ms/1e3), serialMs/ms, splits, windows, checksum)
	}
	t.Note("single hot aggregate: the pool alone cannot beat serial; autosplit key-shards it across the %d-cap pool (GOMAXPROCS %d)", 4, runtime.GOMAXPROCS(0))
	t.Note("checksum = sum of all emitted window results; sum combines by summing, so it is split-invariant")
	return t
}

// heavyExpr builds a deeply nested arithmetic expression over B, the
// per-tuple CPU burn that makes the aggregate box hot. The running mod
// keeps values bounded, so the sum checksum cannot overflow.
func heavyExpr(depth int) string {
	x := "B"
	for i := 0; i < depth; i++ {
		x = "(((" + x + " * 3) + 7) % 100003)"
	}
	return x
}

// zipfBursts draws burst keys from a Zipf distribution over [0, keys) and
// emits `burst` consecutive tuples per key — hot keys dominate, and runs
// exist for the run-based windows to close on key change.
func zipfBursts(n, keys int, s float64, burst int, seed int64) []stream.Tuple {
	rng := rand.New(rand.NewSource(seed))
	z := rand.NewZipf(rng, s, 1, uint64(keys-1))
	out := make([]stream.Tuple, 0, n)
	for len(out) < n {
		k := int64(z.Uint64())
		for j := 0; j < burst && len(out) < n; j++ {
			out = append(out, stream.Tuple{Seq: uint64(len(out) + 1), TS: int64(len(out) + 1),
				Vals: []stream.Value{stream.Int(k), stream.Int(rng.Int63n(1000))}})
		}
	}
	return out
}
