package exp

import (
	"fmt"
	"math/rand"

	"repro/internal/core"
	"repro/internal/loadmgr"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// e04FilterCase pins a pass-through consumer at the core node so the
// filter's placement decides what the edge->core link carries: the raw
// stream (filter at core) or the filtered stream (filter at edge).
func e04FilterCase(scale float64, selectivity float64, filterAtEdge bool) float64 {
	pred := fmt.Sprintf("B < %d", int(selectivity*100))
	net := query.NewBuilder("slide").
		AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{"predicate": pred}}).
		AddBox("sink", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "true"}}).
		Connect("f", "sink").
		BindInput("in", abSchema, "f", 0).
		BindOutput("out", "sink", 0, nil).
		MustBuild()
	fNode := "core"
	if filterAtEdge {
		fNode = "edge"
	}
	sim := netsim.New(1)
	c, err := core.NewCluster(sim, net,
		map[string]string{"f": fNode, "sink": "core"},
		map[string]string{"in": "edge"},
		core.Config{DefaultBoxCost: 1000, Nodes: []string{"edge", "core"}})
	if err != nil {
		panic(err)
	}
	if err := sim.Connect("edge", "core", 10e6, 100_000, 0); err != nil {
		panic(err)
	}
	c.Start()
	c.OnOutput(func(string, stream.Tuple, int64) {})
	n := scaled(20_000, scale)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < n; i++ {
		tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(rng.Int63n(100)))
		sim.Schedule(int64(i)*20_000, func() { c.Ingest("in", tp) })
	}
	sim.Run(0)
	l, _ := sim.LinkStats("edge", "core")
	return float64(l.BytesSent) / 1024
}

// E04Sliding measures Fig 4: sliding a selective filter upstream (to the
// stream's entry node) cuts traffic on the constrained link by the
// filter's selectivity; for a selectivity > 1 operator (a self-join) the
// win flips to keeping it downstream.
func E04Sliding(scale float64) *Table {
	t := &Table{ID: "E04", Title: "box sliding and link bandwidth (Fig 4, §5.1)",
		Header: []string{"selectivity", "placement", "link KB", "ratio vs downstream"}}
	for _, sel := range []float64{0.01, 0.1, 0.5, 1.0} {
		down := e04FilterCase(scale, sel, false)
		up := e04FilterCase(scale, sel, true)
		t.Add(fmt.Sprintf("%.2f", sel), "downstream (core)", down, 1.0)
		t.Add(fmt.Sprintf("%.2f", sel), "upstream (edge)", up, up/down)
	}
	t.Note("upstream sliding of a selectivity-s filter cuts link bytes to ~s of the raw stream (Fig 4)")

	ampDown, ampUp := e04JoinCase(scale, false), e04JoinCase(scale, true)
	t.Add(">1 (join)", "downstream (core)", ampDown, 1.0)
	t.Add(">1 (join)", "upstream (edge)", ampUp, ampUp/ampDown)
	t.Note("a selectivity>1 box (join) placed upstream multiplies link traffic: slide it downstream instead (§5.1)")
	return t
}

// e04JoinCase pins a pass-through consumer at the core so the join's
// placement decides whether the link carries the raw inputs (join at
// core) or the amplified join output (join at edge).
func e04JoinCase(scale float64, joinAtEdge bool) float64 {
	net := query.NewBuilder("amplify").
		AddBox("j", op.Spec{Kind: "join", Params: map[string]string{
			"leftkey": "A", "rightkey": "A", "window": "2000000000"}}).
		AddBox("sink", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "true"}}).
		Connect("j", "sink").
		BindInput("l", abSchema, "j", 0).
		BindInput("r", abSchema, "j", 1).
		BindOutput("out", "sink", 0, nil).
		MustBuild()
	sim := netsim.New(1)
	jNode := "core"
	if joinAtEdge {
		jNode = "edge"
	}
	c, err := core.NewCluster(sim, net,
		map[string]string{"j": jNode, "sink": "core"},
		map[string]string{"l": "edge", "r": "edge"},
		core.Config{DefaultBoxCost: 1000, Nodes: []string{"edge", "core"}})
	if err != nil {
		panic(err)
	}
	sim.Connect("edge", "core", 10e6, 100_000, 0)
	c.Start()
	c.OnOutput(func(string, stream.Tuple, int64) {})
	n := scaled(2000, scale)
	for i := 0; i < n; i++ {
		key := stream.Int(int64(i % 8))
		lt := stream.Tuple{Vals: []stream.Value{key, stream.Int(1)}}
		rt := stream.Tuple{Vals: []stream.Value{key, stream.Int(2)}}
		sim.Schedule(int64(i)*50_000, func() {
			c.Ingest("l", lt)
			c.Ingest("r", rt)
		})
	}
	sim.Run(0)
	l, _ := sim.LinkStats("edge", "core")
	return float64(l.BytesSent) / 1024
}

// splitThroughput distributes a CPU-heavy filter over one or two
// worker nodes and reports the virtual completion time of an offered
// burst.
func splitThroughput(scale float64, split bool, spec op.Spec, pred op.Expr) (finishMs float64, outputs int) {
	net := query.NewBuilder("work").
		AddBox("w", spec).
		BindInput("in", abSchema, "w", 0).
		BindOutput("out", "w", 0, nil).
		MustBuild()
	assign := map[string]string{"w": "m1"}
	if split {
		var info *loadmgr.SplitInfo
		var err error
		net, info, err = loadmgr.Split(net, "w", pred)
		if err != nil {
			panic(err)
		}
		// Fig 7 remapping: router and branch 1 on m1, branch 2 on m2,
		// merge back on m1.
		assign = map[string]string{info.Router: "m1", info.Branches[0]: "m1", info.Branches[1]: "m2"}
		for _, m := range info.Merge {
			assign[m] = "m1"
		}
	}
	sim := netsim.New(1)
	costs := map[string]int64{}
	for box := range assign {
		costs[box] = 1000 // routing and merge boxes are cheap
	}
	costs["w"] = 100_000
	costs["w.1"] = 100_000
	costs["w.2"] = 100_000
	c, err := core.NewCluster(sim, net, assign, nil, core.Config{
		DefaultBoxCost: 1000,
		BoxCosts:       costs,
		Nodes:          []string{"m1", "m2"},
	})
	if err != nil {
		panic(err)
	}
	sim.Connect("m1", "m2", 0, 100_000, 0)
	c.Start()
	var last int64
	c.OnOutput(func(_ string, _ stream.Tuple, at int64) { outputs++; last = at })
	n := scaled(3000, scale)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < n; i++ {
		tp := stream.NewTuple(stream.Int(rng.Int63n(1000)), stream.Int(rng.Int63n(100)))
		sim.Schedule(int64(i)*50_000, func() { c.Ingest("in", tp) }) // 2x one node's capacity
	}
	sim.Run(0)
	return float64(last) / 1e6, outputs
}

// E05FilterSplit is Fig 5: splitting a CPU-bound Filter across two
// machines roughly doubles sustainable throughput, and the merged output
// is the same tuple multiset.
func E05FilterSplit(scale float64) *Table {
	t := &Table{ID: "E05", Title: "filter split scaling (Fig 5, Fig 7)",
		Header: []string{"config", "machines", "finish ms", "outputs", "speedup"}}
	spec := op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 100"}}
	pred := loadmgr.HashHalf("A")
	single, out1 := splitThroughput(scale, false, spec, pred)
	dual, out2 := splitThroughput(scale, true, spec, pred)
	t.Add("unsplit", 1, single, out1, 1.0)
	t.Add("split+union", 2, dual, out2, single/dual)
	if out1 == out2 {
		t.Note("transparency holds: identical output count across configurations")
	} else {
		t.Note("WARNING: output counts differ (%d vs %d)", out1, out2)
	}
	return t
}

// E06TumbleSplit is Fig 6: the Tumble split with its Union+WSort+Tumble
// merge network returns exactly the unsplit results, including the
// paper's worked example, and scales like the filter split.
func E06TumbleSplit(scale float64) *Table {
	t := &Table{ID: "E06", Title: "tumble split with combine (Fig 6)",
		Header: []string{"aggregate", "combine", "streams equal", "windows"}}
	for _, agg := range []string{"cnt", "sum", "max", "min"} {
		spec := op.Spec{Kind: "tumble", Params: map[string]string{
			"agg": agg, "on": "B", "groupby": "A"}}
		base := query.NewBuilder("tb").
			AddBox("w", spec).
			BindInput("in", abSchema, "w", 0).
			BindOutput("out", "w", 0, nil).
			MustBuild()
		split, _, err := loadmgr.Split(base, "w", op.MustParse("B < 3"))
		if err != nil {
			panic(err)
		}
		n := scaled(5000, scale)
		in := make([]stream.Tuple, n)
		rng := rand.New(rand.NewSource(6))
		a := int64(0)
		for i := range in {
			if rng.Intn(4) == 0 {
				a++
			}
			in[i] = stream.Tuple{Seq: uint64(i + 1),
				Vals: []stream.Value{stream.Int(a), stream.Int(rng.Int63n(10))}}
		}
		want := runLocal(base, in)
		got := runLocal(split, in)
		equal := stream.TuplesEqualValues(got, want)
		t.Add(agg, op.MustAggregate(agg).Combine().Name(), equal, len(got))
	}
	t.Note("the §5.1 identity agg(S) = combine(agg(S1), agg(S2)) holds for every combinable aggregate; avg is rejected")
	return t
}

// runLocal drains tuples through a network on a single virtual engine.
func runLocal(net *query.Network, in []stream.Tuple) []stream.Tuple {
	e, err := engineNew(net)
	if err != nil {
		panic(err)
	}
	var out []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { out = append(out, tp) })
	for _, tp := range in {
		e.Ingest("in", tp.Clone())
	}
	e.Drain()
	return out
}

// E07LoadSharing runs the Fig 7 remapping live: a saturated node next to
// an idle neighbor, with and without the load-share daemons.
func E07LoadSharing(scale float64) *Table {
	t := &Table{ID: "E07", Title: "decentralized pairwise load sharing (Fig 7, §5)",
		Header: []string{"daemons", "moves", "boxes moved", "n1 busy ms", "n2 busy ms", "outputs"}}
	run := func(enabled bool) {
		sim := netsim.New(1)
		ids := make([]string, 6)
		specs := make([]op.Spec, 6)
		for i := range ids {
			ids[i] = fmt.Sprintf("f%d", i)
			specs[i] = op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}
		}
		net := query.NewBuilder("chain6").
			Chain(ids, specs).
			BindInput("in", abSchema, "f0", 0).
			BindOutput("out", "f5", 0, nil).
			MustBuild()
		assign := map[string]string{}
		for _, id := range ids {
			assign[id] = "n1"
		}
		cfg := core.Config{
			DefaultBoxCost: 40_000,
			Nodes:          []string{"n1", "n2"},
			SharePeriod:    20e6,
		}
		if enabled {
			pol := loadmgr.Policy{HighWater: 0.8, LowWater: 0.5, Headroom: 0.5, CooldownPeriods: 2}
			cfg.LoadSharing = &pol
		}
		c, err := core.NewCluster(sim, net, assign, nil, cfg)
		if err != nil {
			panic(err)
		}
		sim.Connect("n1", "n2", 0, 50_000, 0)
		c.Start()
		outputs := 0
		c.OnOutput(func(string, stream.Tuple, int64) { outputs++ })
		n := scaled(3000, scale)
		for i := 0; i < n; i++ {
			tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(int64(i%60)))
			sim.Schedule(int64(i)*100_000, func() { c.Ingest("in", tp) })
		}
		sim.Run(10e9)
		moved := 0
		for _, node := range c.Assignment() {
			if node == "n2" {
				moved++
			}
		}
		t.Add(enabled, c.Moves(), moved,
			float64(c.BusyNs("n1"))/1e6, float64(c.BusyNs("n2"))/1e6, outputs)
	}
	run(false)
	run(true)
	t.Note("with the daemons on, the overloaded node sheds boxes pairwise to its idle neighbor and both stay busy")
	return t
}
