package exp

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/sketch"
	"repro/internal/stream"
)

// E20LatencySLO exercises the cluster latency-SLO plane end to end: a
// three-node chain under Zipf load has one box's per-tuple cost raised
// mid-run just past the arrival rate, so delivered latency ramps toward
// the output's QoS latency cliff. The plane must (a) gossip per-output
// quantile sketches whose p99 agrees with an exact oracle built from
// every delivery, (b) forecast the cliff crossing and journal its
// slo-warn before the observed latency actually breaches, and (c)
// attribute the tail to the slowed box by name. The "warn lead ms"
// column is the early-warning margin; at tiny scales the ramp never
// reaches the cliff and the warn/bottleneck columns print "-".
func E20LatencySLO(scale float64) *Table {
	t := &Table{ID: "E20", Title: "latency-SLO plane: gossiped sketches, forecast warning, bottleneck attribution",
		Header: []string{"phase", "delivered", "p99 ms (oracle)", "p99 ms (sketch)", "p99 err %", "warn lead ms", "bottleneck"}}

	// Utility 1 up to 2ms, 0 at 20ms; the forecaster's default CliffFrac
	// 0.9 puts the warning cliff at 3.8ms.
	spec := &qos.Spec{Latency: qos.DefaultLatency(2e6, 2e7)}
	cliff := spec.Latency.CriticalX(0.9)
	const statsPeriod = 5e6

	net := query.NewBuilder("e20").
		AddBox("f", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 250"}}).
		AddBox("hot", op.Spec{Kind: "map", Params: map[string]string{"exprs": "A=A; B=B+1"}}).
		AddBox("m", op.Spec{Kind: "map", Params: map[string]string{"exprs": "A=A+1; B=B"}}).
		Connect("f", "hot").
		Connect("hot", "m").
		BindInput("in", abSchema, "f", 0).
		BindOutput("out", "m", 0, spec).
		MustBuild()

	sim := netsim.New(1)
	c, err := core.NewCluster(sim, net,
		map[string]string{"f": "n1", "hot": "n2", "m": "n3"},
		map[string]string{"in": "n1"},
		core.Config{
			DefaultBoxCost: 1000,
			BoxCosts:       map[string]int64{"hot": 40_000},
			TraceSample:    1, // every span feeds the tail attributor
			StatsPeriod:    statsPeriod,
			// A 4-window trajectory: the slowdown ramp spans ~8 windows,
			// so the default 8 would dilute the regression slope with
			// flat pre-slowdown history and warn late.
			SLO: &engine.SLOConfig{Windows: 4},
		})
	if err != nil {
		panic(err)
	}
	for _, link := range [][2]string{{"n1", "n2"}, {"n2", "n3"}} {
		if err := sim.Connect(link[0], link[1], 100e6, 50_000, 0); err != nil {
			panic(err)
		}
	}
	c.Start()

	// Exact oracle: every delivery's true latency and delivery time,
	// split at the slowdown.
	var pre, post []delivery
	var slowedAt int64 = -1
	c.OnOutput(func(_ string, tp stream.Tuple, at int64) {
		d := delivery{lat: float64(at - tp.TS), at: float64(at)}
		if slowedAt >= 0 && tp.TS >= slowedAt {
			post = append(post, d)
		} else {
			pre = append(pre, d)
		}
	})

	// Zipf-keyed tuples every 66µs: under the hot box's 40µs baseline
	// cost the chain keeps up; raising it to 72µs mid-run makes the
	// backlog — and delivered latency — ramp ~90µs per ms of sim time.
	const gap = 66_000
	total := scaled(12_000, scale)
	slowIdx := total / 3
	rng := rand.New(rand.NewSource(20))
	zipf := rand.NewZipf(rng, 1.3, 1, 255)
	for i := 0; i < total; i++ {
		tp := stream.NewTuple(stream.Int(int64(zipf.Uint64())), stream.Int(rng.Int63n(250)))
		sim.Schedule(int64(i)*gap, func() { c.Ingest("in", tp) })
	}
	sim.Schedule(int64(slowIdx)*gap, func() {
		slowedAt = sim.Now()
		if err := c.SetBoxCost("n2", "hot", 72_000); err != nil {
			panic(err)
		}
	})
	// The stats tick reschedules itself forever, so run to a horizon: the
	// ingest span plus enough slack to drain the backlog the slowdown
	// builds (~6µs per post-slowdown tuple) and gossip the last digests.
	horizon := int64(total)*gap + int64(total)*10_000 + 200e6
	sim.Run(horizon)

	// Gossiped view: the cumulative sketch for "out" from whichever
	// node's converged load map carries the biggest population.
	var gossiped *sketch.Sketch
	for _, node := range []string{"n1", "n2", "n3"} {
		lm := c.LoadMap(node)
		if lm == nil {
			continue
		}
		for _, d := range lm.Snapshot() {
			for _, oq := range d.Outputs {
				if oq.Output != "out" || len(oq.Sketch) == 0 {
					continue
				}
				sk, _, err := sketch.DecodeSketch(oq.Sketch)
				if err != nil {
					continue
				}
				if gossiped == nil || sk.Count() > gossiped.Count() {
					gossiped = sk
				}
			}
		}
	}

	// Journal verdicts: the first warn (the early forecast) but the LAST
	// bottleneck (the refreshed breach-time attribution, journaled once
	// the slowed box dominates the decayed tail accumulators).
	evs := c.Events()
	var warn, bott *events.Event
	for i := range evs {
		switch {
		case evs[i].Kind == events.KindSLOWarn && evs[i].Subject == "out" && warn == nil:
			warn = &evs[i]
		case evs[i].Kind == events.KindBottleneck && evs[i].Subject == "out":
			bott = &evs[i]
		}
	}

	lats := func(ds []delivery) []float64 {
		out := make([]float64, len(ds))
		for i, d := range ds {
			out[i] = d.lat
		}
		return out
	}
	all := append(lats(pre), lats(post)...)
	oracleAll := exactP99(all)
	skP99, errPct := "-", "-"
	if gossiped != nil && gossiped.Count() > 0 && oracleAll > 0 {
		p := gossiped.Quantile(0.99)
		skP99 = ms(p)
		errPct = fmt.Sprintf("%+.2f", (p-oracleAll)/oracleAll*100)
	}

	// Early-warning margin: the warn's lead over the oracle breach — the
	// close of the first stats-period-sized window of deliveries whose
	// exact p99 reached the cliff. That is the instant delivered QoS
	// verifiably dropped below the cliff utility (a lone tail tuple is
	// not a breach), so it is what an operator needed the warning to
	// precede.
	lead, bottBox := "-", "-"
	if bott != nil {
		bottBox = bott.Detail
	}
	if warn != nil {
		lead = "pre-breach"
		if at, ok := oracleBreach(post, cliff, statsPeriod); ok {
			lead = ms(at - float64(warn.Time))
		}
	}

	t.Add("pre-slowdown", len(pre), ms(exactP99(lats(pre))), "-", "-", "-", "-")
	t.Add("post-slowdown", len(post), ms(exactP99(lats(post))), "-", "-", "-", "-")
	t.Add("cumulative", len(all), ms(oracleAll), skP99, errPct, lead, bottBox)
	t.Note("cliff %.1fms = CriticalX(0.9) of latency QoS (2ms good, 20ms zero); warn lead is journal warn → close of first %.0fms delivery window with exact p99 over the cliff", cliff/1e6, statsPeriod/1e6)
	t.Note("sketch p99 is the gossiped digest's cumulative DDSketch; err vs an exact sort of every delivered latency")
	return t
}

// delivery is one oracle observation: true end-to-end latency and
// delivery time.
type delivery struct{ lat, at float64 }

// oracleBreach buckets the post-slowdown deliveries into stats-period
// windows by delivery time and returns the close of the first window
// whose exact p99 reached the cliff; ok is false when the run never
// breached.
func oracleBreach(post []delivery, cliff, period float64) (float64, bool) {
	byWin := map[int64][]float64{}
	for _, d := range post {
		w := int64(d.at / period)
		byWin[w] = append(byWin[w], d.lat)
	}
	wins := make([]int64, 0, len(byWin))
	for w := range byWin {
		wins = append(wins, w)
	}
	sort.Slice(wins, func(i, j int) bool { return wins[i] < wins[j] })
	for _, w := range wins {
		if exactP99(byWin[w]) >= cliff {
			return float64(w+1) * period, true
		}
	}
	return 0, false
}

// exactP99 is the oracle: the same nearest-rank convention the sketch
// uses, over the exact sorted latencies.
func exactP99(lats []float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	s := append([]float64(nil), lats...)
	sort.Float64s(s)
	return s[int(0.99*float64(len(s)-1))]
}

func ms(ns float64) string {
	if ns <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.2f", ns/1e6)
}
