package op

import (
	"fmt"

	"repro/internal/stream"
)

// KindFilter is the registry kind of the Filter operator.
const KindFilter = "filter"

// Filter(p) produces an output stream consisting of all tuples in its
// input stream that satisfy predicate p; optionally it also produces a
// second output stream of the tuples that did not (§2.2). The false-port
// form is what box splitting uses as its semantic router (§5.1).
//
// Spec parameters:
//
//	predicate  expression in the Parse syntax (required)
//	falseport  "true" to enable output port 1 for non-matching tuples
type Filter struct {
	base
	spec Spec
	pred Expr
	dual bool
	fast boolFn // compiled predicate; set by Bind, used by ProcessTrain
}

// NewFilter builds a Filter from a predicate expression. falsePort enables
// the second output stream.
func NewFilter(pred Expr, falsePort bool) *Filter {
	spec := Spec{Kind: KindFilter, Params: map[string]string{"predicate": pred.String()}}
	if falsePort {
		spec.Params["falseport"] = "true"
	}
	return &Filter{spec: spec, pred: pred, dual: falsePort}
}

func buildFilter(s Spec) (Operator, error) {
	src, err := param(s, "predicate")
	if err != nil {
		return nil, err
	}
	pred, err := Parse(src)
	if err != nil {
		return nil, err
	}
	dual, err := paramBool(s, "falseport")
	if err != nil {
		return nil, err
	}
	return &Filter{spec: s.Clone(), pred: pred, dual: dual}, nil
}

// Spec implements Operator.
func (f *Filter) Spec() Spec { return f.spec.Clone() }

// NumIn implements Operator.
func (f *Filter) NumIn() int { return 1 }

// NumOut implements Operator.
func (f *Filter) NumOut() int {
	if f.dual {
		return 2
	}
	return 1
}

// Bind implements Operator.
func (f *Filter) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("filter: want 1 input schema, got %d", len(in))
	}
	if err := f.pred.Bind(in[0]); err != nil {
		return nil, fmt.Errorf("filter: %w", err)
	}
	f.fast = compileBool(f.pred)
	if f.dual {
		return []*stream.Schema{in[0], in[0]}, nil
	}
	return []*stream.Schema{in[0]}, nil
}

// Process implements Operator.
func (f *Filter) Process(_ int, t stream.Tuple, emit Emit) {
	if f.pred.Eval(t).AsBool() {
		emit(0, t)
	} else if f.dual {
		emit(1, t)
	}
}

// ProcessTrain implements TrainProcessor: the whole train runs through
// the compiled predicate with one dispatch and zero allocations.
func (f *Filter) ProcessTrain(_ int, ts []stream.Tuple, emit Emit) {
	pred := f.fast
	if pred == nil { // unbound: preserve Process's tree-eval behavior
		for i := range ts {
			f.Process(0, ts[i], emit)
		}
		return
	}
	if f.dual {
		for i := range ts {
			if pred(ts[i]) {
				emit(0, ts[i])
			} else {
				emit(1, ts[i])
			}
		}
		return
	}
	for i := range ts {
		if pred(ts[i]) {
			emit(0, ts[i])
		}
	}
}

// Predicate returns the filter's predicate expression.
func (f *Filter) Predicate() Expr { return f.pred }

// KindMap is the registry kind of the Map operator.
const KindMap = "map"

// Map applies a list of named expressions to each input tuple, producing
// one output tuple whose fields are the expression results (§2.2 mentions
// Map as Aurora's mapping operator).
//
// Spec parameters:
//
//	exprs  semicolon-separated name=expression list, e.g.
//	       "sym=sym; px2=(price * 2)"
type Map struct {
	base
	spec  Spec
	names []string
	exprs []Expr
	fast  []valFn // compiled projections; set by Bind, used by ProcessTrain
}

// NewMap builds a Map from parallel name and expression lists.
func NewMap(names []string, exprs []Expr) (*Map, error) {
	if len(names) != len(exprs) || len(names) == 0 {
		return nil, fmt.Errorf("map: need equal, non-empty name and expr lists")
	}
	parts := make([]string, len(names))
	for i := range names {
		parts[i] = names[i] + "=" + exprs[i].String()
	}
	spec := Spec{Kind: KindMap, Params: map[string]string{"exprs": join(parts, "; ")}}
	return &Map{spec: spec, names: names, exprs: exprs}, nil
}

func join(parts []string, sep string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += sep
		}
		out += p
	}
	return out
}

func buildMap(s Spec) (Operator, error) {
	src, err := param(s, "exprs")
	if err != nil {
		return nil, err
	}
	var names []string
	var exprs []Expr
	for _, item := range splitTrim(src, ';') {
		eq := indexByte(item, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("map: bad exprs item %q (want name=expr)", item)
		}
		name := trim(item[:eq])
		e, err := Parse(item[eq+1:])
		if err != nil {
			return nil, fmt.Errorf("map: %w", err)
		}
		names = append(names, name)
		exprs = append(exprs, e)
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("map: empty exprs")
	}
	return &Map{spec: s.Clone(), names: names, exprs: exprs}, nil
}

// Spec implements Operator.
func (m *Map) Spec() Spec { return m.spec.Clone() }

// NumIn implements Operator.
func (m *Map) NumIn() int { return 1 }

// NumOut implements Operator.
func (m *Map) NumOut() int { return 1 }

// Bind implements Operator.
func (m *Map) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("map: want 1 input schema, got %d", len(in))
	}
	fields := make([]stream.Field, len(m.exprs))
	for i, e := range m.exprs {
		if err := e.Bind(in[0]); err != nil {
			return nil, fmt.Errorf("map: %w", err)
		}
		k := InferKind(e, in[0])
		if k == stream.KindInvalid {
			return nil, fmt.Errorf("map: cannot infer kind of %s", e)
		}
		fields[i] = stream.Field{Name: m.names[i], Kind: k}
	}
	out, err := stream.NewSchema(in[0].Name()+".map", fields...)
	if err != nil {
		return nil, fmt.Errorf("map: %w", err)
	}
	m.fast = make([]valFn, len(m.exprs))
	for i, e := range m.exprs {
		m.fast[i] = compileValue(e)
	}
	return []*stream.Schema{out}, nil
}

// Process implements Operator.
func (m *Map) Process(_ int, t stream.Tuple, emit Emit) {
	vals := make([]stream.Value, len(m.exprs))
	for i, e := range m.exprs {
		vals[i] = e.Eval(t)
	}
	emit(0, stream.Tuple{Seq: t.Seq, TS: t.TS, Vals: vals})
}

// ProcessTrain implements TrainProcessor: projections run compiled, and
// output Vals come from the stream freelist, marked pool-owned so the
// engine reclaims them when the projected tuple dies.
func (m *Map) ProcessTrain(_ int, ts []stream.Tuple, emit Emit) {
	if m.fast == nil { // unbound: preserve Process's behavior
		for i := range ts {
			m.Process(0, ts[i], emit)
		}
		return
	}
	for i := range ts {
		t := ts[i]
		vals := stream.GetVals(len(m.fast))
		for j, f := range m.fast {
			vals[j] = f(t)
		}
		out := stream.Tuple{Seq: t.Seq, TS: t.TS, Vals: vals}
		out.MarkPooled()
		emit(0, out)
	}
}

// ConsumesInput implements Consumer: Map's outputs never alias its input
// tuples, and it retains nothing across calls.
func (m *Map) ConsumesInput() {}

// KindUnion is the registry kind of the Union operator.
const KindUnion = "union"

// Union produces an output stream consisting of all tuples on its n input
// streams (§2.2). It is order-preserving per input but makes no ordering
// promise across inputs, which is why merging a split Tumble needs a WSort
// downstream of the Union (§5.1).
//
// Spec parameters:
//
//	inputs  number of input ports (default 2)
type Union struct {
	base
	spec Spec
	n    int
}

// NewUnion builds a Union over n input streams.
func NewUnion(n int) *Union {
	return &Union{
		spec: Spec{Kind: KindUnion, Params: map[string]string{"inputs": fmt.Sprint(n)}},
		n:    n,
	}
}

func buildUnion(s Spec) (Operator, error) {
	n, err := paramIntDefault(s, "inputs", 2)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("union: inputs must be >= 1, got %d", n)
	}
	return &Union{spec: s.Clone(), n: int(n)}, nil
}

// Spec implements Operator.
func (u *Union) Spec() Spec { return u.spec.Clone() }

// NumIn implements Operator.
func (u *Union) NumIn() int { return u.n }

// NumOut implements Operator.
func (u *Union) NumOut() int { return 1 }

// Bind implements Operator.
func (u *Union) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != u.n {
		return nil, fmt.Errorf("union: want %d input schemas, got %d", u.n, len(in))
	}
	for i := 1; i < len(in); i++ {
		if !in[0].Compatible(in[i]) {
			return nil, fmt.Errorf("union: input %d schema %s incompatible with %s", i, in[i], in[0])
		}
	}
	return []*stream.Schema{in[0]}, nil
}

// Process implements Operator.
func (u *Union) Process(_ int, t stream.Tuple, emit Emit) { emit(0, t) }

// ProcessTrain implements TrainProcessor: a straight pass-through of the
// train with one dispatch.
func (u *Union) ProcessTrain(_ int, ts []stream.Tuple, emit Emit) {
	for i := range ts {
		emit(0, ts[i])
	}
}

func init() {
	RegisterKind(KindFilter, buildFilter)
	RegisterKind(KindMap, buildMap)
	RegisterKind(KindUnion, buildUnion)
}

// Small string helpers kept local to avoid importing strings in the hot
// path files repeatedly.

func splitTrim(s string, sep byte) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == sep {
			if item := trim(s[start:i]); item != "" {
				out = append(out, item)
			}
			start = i + 1
		}
	}
	return out
}

func trim(s string) string {
	for len(s) > 0 && (s[0] == ' ' || s[0] == '\t') {
		s = s[1:]
	}
	for len(s) > 0 && (s[len(s)-1] == ' ' || s[len(s)-1] == '\t') {
		s = s[:len(s)-1]
	}
	return s
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}
