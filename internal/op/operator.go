package op

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/stream"
)

// Emit delivers an output tuple on one of an operator's output ports. Port
// 0 is the primary output; Filter's optional false-port is port 1.
type Emit func(port int, t stream.Tuple)

// Operator is one Aurora box (§2.2). An operator instance is stateful and
// belongs to exactly one deployed box; it is driven single-threaded by the
// node's scheduler.
//
// Operators are constructed from a Spec so that their parameters are
// serializable: box sliding, box splitting, and Medusa's remote definition
// (§4.4) all ship Specs across machine or participant boundaries rather
// than migrating processes.
type Operator interface {
	// Spec returns the serializable description that rebuilds this
	// operator (fresh, without state).
	Spec() Spec
	// NumIn returns the number of input ports.
	NumIn() int
	// NumOut returns the number of output ports.
	NumOut() int
	// Bind resolves parameters against the input schemas (one per input
	// port) and returns the output schemas (one per output port). Bind
	// must be called before Process.
	Bind(in []*stream.Schema) ([]*stream.Schema, error)
	// Process consumes one tuple on the given input port, emitting zero or
	// more output tuples.
	Process(port int, t stream.Tuple, emit Emit)
	// Advance informs the operator that (virtual or wall) time has reached
	// now, letting time-driven operators such as WSort meet their timeout
	// obligations.
	Advance(now int64, emit Emit)
	// Flush emits any pending windowed state. The engine calls it when a
	// stream ends or when the network drains for a load-sharing
	// transformation (§5.1 stabilization).
	Flush(emit Emit)
}

// TimeDriven marks operators whose Advance does real, time-triggered work
// (WSort's timeout emission). The engine advances only these after box
// executions instead of sweeping every box — operators embedding base get
// a no-op Advance and need no sweep at all.
type TimeDriven interface {
	TimeDriven()
}

// TrainProcessor is the batch kernel an operator may expose in addition
// to Process. ProcessTrain must be observationally equivalent to calling
// Process(port, ts[i], emit) for i = 0..len(ts)-1 — same outputs, same
// order, same state transitions — while paying interface dispatch once
// per train instead of once per tuple (the amortization Aurora's train
// scheduling is after, §4.1).
//
// Ownership contract: the ts slice is borrowed — the kernel may read it
// during the call and may re-emit or retain individual tuples (exactly as
// Process may retain its argument), but must not retain the slice itself,
// which the engine reuses for the next train.
type TrainProcessor interface {
	ProcessTrain(port int, ts []stream.Tuple, emit Emit)
}

// Consumer marks operators that fully consume their inputs: after
// Process/ProcessTrain returns, no emitted tuple aliases an input tuple's
// Vals and the operator holds no reference to them (Values copied out by
// value are fine; the slice must not be kept). The engine uses this to
// recycle pool-owned input buffers the moment a train has been processed.
type Consumer interface {
	ConsumesInput()
}

// ProcessAll drives one train through an operator: the batch kernel when
// the operator implements TrainProcessor, the per-tuple adapter loop
// otherwise. Engines that cache the type assertion per box get the same
// behavior without the per-train assertion.
func ProcessAll(o Operator, port int, ts []stream.Tuple, emit Emit) {
	if tp, ok := o.(TrainProcessor); ok {
		tp.ProcessTrain(port, ts, emit)
		return
	}
	for i := range ts {
		o.Process(port, ts[i], emit)
	}
}

// Spec is the wire description of an operator: a registry kind plus string
// parameters. Expressions travel in their concrete syntax.
type Spec struct {
	Kind   string            `json:"kind"`
	Params map[string]string `json:"params,omitempty"`
}

// String renders the spec compactly, e.g. filter{predicate: (B < 3)}.
func (s Spec) String() string {
	if len(s.Params) == 0 {
		return s.Kind
	}
	keys := make([]string, 0, len(s.Params))
	for k := range s.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(s.Kind)
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %s", k, s.Params[k])
	}
	b.WriteByte('}')
	return b.String()
}

// Clone returns a deep copy of the spec.
func (s Spec) Clone() Spec {
	c := Spec{Kind: s.Kind}
	if s.Params != nil {
		c.Params = make(map[string]string, len(s.Params))
		for k, v := range s.Params {
			c.Params[k] = v
		}
	}
	return c
}

// Builder constructs a fresh operator instance from a spec.
type Builder func(Spec) (Operator, error)

var builders = map[string]Builder{}

// RegisterKind installs a builder for an operator kind. The built-in kinds
// register themselves; applications may add custom operators, which then
// participate in remote definition like any other.
func RegisterKind(kind string, b Builder) {
	if _, dup := builders[kind]; dup {
		panic(fmt.Sprintf("op: duplicate operator kind %q", kind))
	}
	builders[kind] = b
}

// Build instantiates an operator from its spec.
func Build(spec Spec) (Operator, error) {
	b, ok := builders[spec.Kind]
	if !ok {
		return nil, fmt.Errorf("unknown operator kind %q", spec.Kind)
	}
	return b(spec)
}

// MustBuild is Build that panics on error; for compiled-in plans and tests.
func MustBuild(spec Spec) Operator {
	o, err := Build(spec)
	if err != nil {
		panic(err)
	}
	return o
}

// Kinds returns the sorted registry of known operator kinds — the
// "pre-defined set offered by another participant" that remote definition
// composes (§4.4).
func Kinds() []string {
	out := make([]string, 0, len(builders))
	for k := range builders {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// param reads a required string parameter.
func param(s Spec, key string) (string, error) {
	v, ok := s.Params[key]
	if !ok || v == "" {
		return "", fmt.Errorf("%s: missing parameter %q", s.Kind, key)
	}
	return v, nil
}

// paramInt reads a required integer parameter.
func paramInt(s Spec, key string) (int64, error) {
	v, err := param(s, key)
	if err != nil {
		return 0, err
	}
	i, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("%s: parameter %q: %w", s.Kind, key, err)
	}
	return i, nil
}

// paramIntDefault reads an optional integer parameter.
func paramIntDefault(s Spec, key string, def int64) (int64, error) {
	if _, ok := s.Params[key]; !ok {
		return def, nil
	}
	return paramInt(s, key)
}

// paramBool reads an optional boolean parameter defaulting to false.
func paramBool(s Spec, key string) (bool, error) {
	v, ok := s.Params[key]
	if !ok || v == "" {
		return false, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("%s: parameter %q: %w", s.Kind, key, err)
	}
	return b, nil
}

// paramCols splits a comma-separated column list parameter.
func paramCols(s Spec, key string) ([]string, error) {
	v, err := param(s, key)
	if err != nil {
		return nil, err
	}
	parts := strings.Split(v, ",")
	cols := make([]string, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			return nil, fmt.Errorf("%s: parameter %q has empty column", s.Kind, key)
		}
		cols = append(cols, p)
	}
	return cols, nil
}

// base provides default no-op Advance/Flush for operators without
// time-driven or windowed state.
type base struct{}

func (base) Advance(int64, Emit) {}
func (base) Flush(Emit)          {}
