package op

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stream"
)

// Quick-check battery for the split contract (§5.1): for every splittable
// operator, sharding a seeded random tuple train across k fresh replica
// instances by the profile's key and folding the interleaved replica
// output back through the profile's merge chain must be equivalent to
// running the unsplit operator — exactly (multiset or sequence) where the
// operator's semantics allow it, and under the per-key combine fold
// agg(S) = combine(agg(S1), ..., agg(Sk)) for run-based windows over
// recurring keys, whose window boundaries key sharding legitimately
// reshapes.

var splitQuickSchema = stream.MustSchema("sq",
	stream.Field{Name: "K", Kind: stream.KindInt},
	stream.Field{Name: "V", Kind: stream.KindInt},
)

func sqTuple(k, v int64) stream.Tuple {
	return stream.NewTuple(stream.Int(k), stream.Int(v))
}

// splitShard mirrors the engine's hash-partitioning route step: FNV-64a
// over the formatted key columns, round-robin when the profile is keyless.
func splitShard(t stream.Tuple, keyIdx []int, rr *int, n int) int {
	if len(keyIdx) == 0 {
		s := *rr % n
		*rr++
		return s
	}
	h := fnv.New64a()
	for _, i := range keyIdx {
		h.Write([]byte(t.Field(i).Format()))
		h.Write([]byte{0x1f})
	}
	return int(h.Sum64() % uint64(n))
}

func collectEmit(out *[]stream.Tuple) Emit {
	return func(_ int, t stream.Tuple) { *out = append(*out, t) }
}

// runUnsplit pushes the train through one fresh instance and flushes it.
func runUnsplit(t *testing.T, spec Spec, in []stream.Tuple) []stream.Tuple {
	t.Helper()
	inst, err := Build(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := inst.Bind([]*stream.Schema{splitQuickSchema}); err != nil {
		t.Fatal(err)
	}
	var out []stream.Tuple
	emit := collectEmit(&out)
	for _, tp := range in {
		inst.Process(0, tp, emit)
	}
	inst.Flush(emit)
	return out
}

// runSplit shards the train across k replica instances per the profile's
// key, flushes each replica, and folds the concatenated replica output
// through the profile's merge chain stage by stage — the same
// queue-then-drain order the engine's runtime partition produces.
func runSplit(t *testing.T, spec Spec, in []stream.Tuple, k int) []stream.Tuple {
	t.Helper()
	prof, err := SplitProfileFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	var keyIdx []int
	if len(prof.Key) > 0 {
		keyIdx, err = splitQuickSchema.Indices(prof.Key...)
		if err != nil {
			t.Fatal(err)
		}
	}
	reps := make([]Operator, k)
	outSchema := splitQuickSchema
	for i := range reps {
		inst, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := inst.Bind([]*stream.Schema{splitQuickSchema})
		if err != nil {
			t.Fatal(err)
		}
		outSchema = outs[0]
		reps[i] = inst
	}
	shardOut := make([][]stream.Tuple, k)
	emits := make([]Emit, k)
	for i := range emits {
		emits[i] = collectEmit(&shardOut[i])
	}
	rr := 0
	for _, tp := range in {
		s := splitShard(tp, keyIdx, &rr, k)
		reps[s].Process(0, tp, emits[s])
	}
	var cur []stream.Tuple
	for i, inst := range reps {
		inst.Flush(emits[i])
		cur = append(cur, shardOut[i]...)
	}
	for _, ms := range prof.Merge {
		inst, err := Build(ms)
		if err != nil {
			t.Fatal(err)
		}
		outs, err := inst.Bind([]*stream.Schema{outSchema})
		if err != nil {
			t.Fatal(err)
		}
		outSchema = outs[0]
		var next []stream.Tuple
		emit := collectEmit(&next)
		for _, tp := range cur {
			inst.Process(0, tp, emit)
		}
		inst.Flush(emit)
		cur = next
	}
	return cur
}

// genRecurring draws keys from a small domain so runs recur and straddle
// would-be window boundaries — the adversarial case for key sharding.
func genRecurring(rng *rand.Rand, n int) []stream.Tuple {
	out := make([]stream.Tuple, n)
	for i := range out {
		out[i] = sqTuple(rng.Int63n(8), rng.Int63n(100))
	}
	return out
}

// genMonotoneRuns emits strictly increasing keys in runs of 1..5 tuples,
// so no key ever recurs and every window run is contiguous — the regime
// where run-based windows survive sharding exactly.
func genMonotoneRuns(rng *rand.Rand, n int) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	key := int64(0)
	for len(out) < n {
		run := 1 + rng.Intn(5)
		for j := 0; j < run && len(out) < n; j++ {
			out = append(out, sqTuple(key, rng.Int63n(100)))
		}
		key++
	}
	return out
}

func tupleKeys(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, tp := range ts {
		s := ""
		for _, v := range tp.Vals {
			s += v.Format() + "|"
		}
		out[i] = s
	}
	return out
}

func sortedMultiset(ts []stream.Tuple) []string {
	keys := tupleKeys(ts)
	sort.Strings(keys)
	return keys
}

func equalMultiset(a, b []stream.Tuple) bool {
	x, y := sortedMultiset(a), sortedMultiset(b)
	if len(x) != len(y) {
		return false
	}
	for i := range x {
		if x[i] != y[i] {
			return false
		}
	}
	return true
}

// foldByKey folds each key's emitted results (in emission order) with the
// aggregate's combine semantics: the per-key value the paper's identity
// agg(S) = combine(agg(S1), ..., agg(Sn)) promises is invariant.
func foldByKey(t *testing.T, agg string, ts []stream.Tuple) map[int64]int64 {
	t.Helper()
	out := map[int64]int64{}
	seen := map[int64]bool{}
	for _, tp := range ts {
		k, v := tp.Field(0).AsInt(), tp.Field(1).AsInt()
		if !seen[k] {
			seen[k] = true
			out[k] = v
			continue
		}
		switch agg {
		case "cnt", "sum":
			out[k] += v
		case "max":
			if v > out[k] {
				out[k] = v
			}
		case "min":
			if v < out[k] {
				out[k] = v
			}
		case "first":
			// keep the first
		case "last":
			out[k] = v
		default:
			t.Fatalf("no fold for aggregate %q", agg)
		}
	}
	return out
}

func equalFold(a, b map[int64]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		if b[k] != v {
			return false
		}
	}
	return true
}

func TestQuickSplitStatelessMultisetEquivalence(t *testing.T) {
	specs := map[string]Spec{
		"filter": {Kind: KindFilter, Params: map[string]string{"predicate": "V < 50"}},
		"map":    {Kind: KindMap, Params: map[string]string{"exprs": "K=K; W=(V * 2)"}},
	}
	for name, spec := range specs {
		for trial := 0; trial < 25; trial++ {
			rng := rand.New(rand.NewSource(int64(1000 + trial)))
			in := genRecurring(rng, 40+rng.Intn(160))
			k := 2 + rng.Intn(4)
			ref := runUnsplit(t, spec, in)
			got := runSplit(t, spec, in, k)
			if !equalMultiset(ref, got) {
				t.Fatalf("%s trial %d k=%d: multiset diverged\nref: %s\ngot: %s",
					name, trial, k, stream.FormatTuples(ref), stream.FormatTuples(got))
			}
		}
	}
}

func TestQuickSplitWSortExactEquivalence(t *testing.T) {
	spec := Spec{Kind: KindWSort, Params: map[string]string{"attrs": "K", "timeout": "1000000000"}}
	for trial := 0; trial < 25; trial++ {
		rng := rand.New(rand.NewSource(int64(2000 + trial)))
		in := genRecurring(rng, 40+rng.Intn(160))
		k := 2 + rng.Intn(4)
		ref := runUnsplit(t, spec, in)
		got := runSplit(t, spec, in, k)
		if !stream.TuplesEqualValues(ref, got) {
			t.Fatalf("trial %d k=%d: wsort split diverged\nref: %s\ngot: %s",
				trial, k, stream.FormatTuples(ref), stream.FormatTuples(got))
		}
	}
}

func TestQuickSplitTumbleCombineFold(t *testing.T) {
	for _, agg := range []string{"cnt", "sum", "max", "min", "first", "last"} {
		spec := Spec{Kind: KindTumble, Params: map[string]string{
			"agg": agg, "on": "V", "groupby": "K"}}
		for trial := 0; trial < 25; trial++ {
			rng := rand.New(rand.NewSource(int64(3000 + trial)))
			k := 2 + rng.Intn(4)

			// Recurring keys: window boundaries move under sharding, but
			// the per-key combine fold is invariant.
			in := genRecurring(rng, 40+rng.Intn(160))
			ref := foldByKey(t, agg, runUnsplit(t, spec, in))
			got := foldByKey(t, agg, runSplit(t, spec, in, k))
			if !equalFold(ref, got) {
				t.Fatalf("%s trial %d k=%d: per-key fold diverged\nref: %v\ngot: %v",
					agg, trial, k, ref, got)
			}

			// Monotone non-recurring keys: every run stays contiguous on
			// its shard, so the split output is exactly the unsplit one.
			mono := genMonotoneRuns(rng, 40+rng.Intn(160))
			refT := runUnsplit(t, spec, mono)
			gotT := runSplit(t, spec, mono, k)
			if !equalMultiset(refT, gotT) {
				t.Fatalf("%s trial %d k=%d: monotone-key split not exact\nref: %s\ngot: %s",
					agg, trial, k, stream.FormatTuples(refT), stream.FormatTuples(gotT))
			}
		}
	}
}

func TestSplitProfileRefusals(t *testing.T) {
	cases := map[string]Spec{
		"avg tumble":  {Kind: KindTumble, Params: map[string]string{"agg": "avg", "on": "V", "groupby": "K"}},
		"dual filter": {Kind: KindFilter, Params: map[string]string{"predicate": "V < 50", "falseport": "true"}},
		"union":       {Kind: KindUnion, Params: map[string]string{"inputs": "2"}},
	}
	for name, spec := range cases {
		if _, err := SplitProfileFor(spec); err == nil {
			t.Errorf("%s: SplitProfileFor should refuse", name)
		}
	}
}

func TestSplitProfileTumbleMergeShape(t *testing.T) {
	spec := Spec{Kind: KindTumble, Params: map[string]string{
		"agg": "cnt", "on": "V", "groupby": "K"}}
	prof, err := SplitProfileFor(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Key) != 1 || prof.Key[0] != "K" {
		t.Errorf("key = %v, want [K]", prof.Key)
	}
	if len(prof.Merge) != 2 {
		t.Fatalf("merge chain = %d stages, want 2 (WSort + combining Tumble)", len(prof.Merge))
	}
	if prof.Merge[0].Kind != KindWSort || prof.Merge[1].Kind != KindTumble {
		t.Errorf("merge kinds = %s,%s want wsort,tumble", prof.Merge[0].Kind, prof.Merge[1].Kind)
	}
	if got := prof.Merge[1].Params["agg"]; got != "sum" {
		t.Errorf("combine agg = %q, want sum (cnt combines by summing)", got)
	}
	if got := prof.Merge[1].Params["on"]; got != ResultField {
		t.Errorf("combine on = %q, want %q", got, ResultField)
	}
	if fmt.Sprint(SplitMergeTimeout) != prof.Merge[0].Params["timeout"] {
		t.Errorf("merge wsort timeout = %s, want drain-scale %d", prof.Merge[0].Params["timeout"], SplitMergeTimeout)
	}
}
