package op

import (
	"fmt"

	"repro/internal/stream"
)

// KindTumble is the registry kind of the Tumble operator.
const KindTumble = "tumble"

// ResultField is the name of the aggregate output column every windowed
// aggregate operator appends after its group-by columns.
const ResultField = "result"

// Tumble applies an aggregate function to disjoint windows over the input
// stream; the group-by attributes map tuples to the windows they belong to
// (§2.2). Windows are maximal runs of consecutive tuples sharing the same
// group-by values: a window closes — and its aggregate is emitted — when a
// tuple arrives whose group-by values differ from the open run's. This is
// exactly the semantics of the paper's worked example (Fig 2): with
// agg=avg(B) and group-by A, the seven sample tuples yield (A=1, 2.5) upon
// tuple #3 and (A=2, 3.0) upon tuple #6, with the A=4 window still open.
//
// Per the paper's footnote, the emission/timeout parameters are fixed to
// "emit whenever a window is full, never on timeout".
//
// Spec parameters:
//
//	agg      aggregate registry name (required): cnt, sum, avg, max, ...
//	on       expression whose value feeds the aggregate (required; cnt
//	         may use any column)
//	groupby  comma-separated group-by attribute names (required)
type Tumble struct {
	base
	spec    Spec
	agg     Aggregate
	on      Expr
	groupBy []string

	groupIdx []int
	out      *stream.Schema

	open    bool
	curKey  string
	acc     Accumulator
	curVals []stream.Value // group-by values of the open window
	firstIn stream.Tuple   // earliest tuple contributing to the open window
}

// NewTumble builds a Tumble with the given aggregate, input expression,
// and group-by attributes.
func NewTumble(agg Aggregate, on Expr, groupBy []string) *Tumble {
	spec := Spec{Kind: KindTumble, Params: map[string]string{
		"agg":     agg.Name(),
		"on":      on.String(),
		"groupby": join(groupBy, ","),
	}}
	return &Tumble{spec: spec, agg: agg, on: on, groupBy: groupBy}
}

func buildTumble(s Spec) (Operator, error) {
	aggName, err := param(s, "agg")
	if err != nil {
		return nil, err
	}
	agg, err := LookupAggregate(aggName)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	onSrc, err := param(s, "on")
	if err != nil {
		return nil, err
	}
	on, err := Parse(onSrc)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	groupBy, err := paramCols(s, "groupby")
	if err != nil {
		return nil, err
	}
	return &Tumble{spec: s.Clone(), agg: agg, on: on, groupBy: groupBy}, nil
}

// Spec implements Operator.
func (tb *Tumble) Spec() Spec { return tb.spec.Clone() }

// NumIn implements Operator.
func (tb *Tumble) NumIn() int { return 1 }

// NumOut implements Operator.
func (tb *Tumble) NumOut() int { return 1 }

// Bind implements Operator.
func (tb *Tumble) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("tumble: want 1 input schema, got %d", len(in))
	}
	idx, err := in[0].Indices(tb.groupBy...)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	tb.groupIdx = idx
	if err := tb.on.Bind(in[0]); err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	fields := make([]stream.Field, 0, len(idx)+1)
	for _, i := range idx {
		fields = append(fields, in[0].Field(i))
	}
	fields = append(fields, stream.Field{
		Name: ResultField,
		Kind: tb.agg.ResultKind(InferKind(tb.on, in[0])),
	})
	out, err := stream.NewSchema(in[0].Name()+".tumble", fields...)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	tb.out = out
	return []*stream.Schema{out}, nil
}

// Process implements Operator.
func (tb *Tumble) Process(_ int, t stream.Tuple, emit Emit) {
	key := t.KeyOf(tb.groupIdx)
	if tb.open && key != tb.curKey {
		tb.emitWindow(emit)
	}
	if !tb.open {
		tb.open = true
		tb.curKey = key
		tb.acc = tb.agg.New()
		tb.curVals = make([]stream.Value, len(tb.groupIdx))
		for i, idx := range tb.groupIdx {
			tb.curVals[i] = t.Field(idx)
		}
		tb.firstIn = t
	}
	tb.acc.Add(tb.on.Eval(t))
}

// Flush implements Operator: emits the open window, matching the drain
// protocol of §5.1 (the network is stabilized and all in-flight state must
// reach the output before a transformation).
func (tb *Tumble) Flush(emit Emit) {
	if tb.open {
		tb.emitWindow(emit)
	}
}

func (tb *Tumble) emitWindow(emit Emit) {
	vals := make([]stream.Value, 0, len(tb.curVals)+1)
	vals = append(vals, tb.curVals...)
	vals = append(vals, tb.acc.Result())
	emit(0, stream.Tuple{Seq: tb.firstIn.Seq, TS: tb.firstIn.TS, Vals: vals})
	tb.open = false
	tb.acc = nil
}

// Aggregate returns the tumble's aggregate function; the splitter uses it
// to check combinability and derive the merge network (§5.1).
func (tb *Tumble) Aggregate() Aggregate { return tb.agg }

// GroupBy returns the group-by attribute names.
func (tb *Tumble) GroupBy() []string { return append([]string(nil), tb.groupBy...) }

func init() { RegisterKind(KindTumble, buildTumble) }
