package op

import (
	"fmt"

	"repro/internal/stream"
)

// KindTumble is the registry kind of the Tumble operator.
const KindTumble = "tumble"

// ResultField is the name of the aggregate output column every windowed
// aggregate operator appends after its group-by columns.
const ResultField = "result"

// Tumble applies an aggregate function to disjoint windows over the input
// stream; the group-by attributes map tuples to the windows they belong to
// (§2.2). Windows are maximal runs of consecutive tuples sharing the same
// group-by values: a window closes — and its aggregate is emitted — when a
// tuple arrives whose group-by values differ from the open run's. This is
// exactly the semantics of the paper's worked example (Fig 2): with
// agg=avg(B) and group-by A, the seven sample tuples yield (A=1, 2.5) upon
// tuple #3 and (A=2, 3.0) upon tuple #6, with the A=4 window still open.
//
// Per the paper's footnote, the emission/timeout parameters are fixed to
// "emit whenever a window is full, never on timeout".
//
// Spec parameters:
//
//	agg      aggregate registry name (required): cnt, sum, avg, max, ...
//	on       expression whose value feeds the aggregate (required; cnt
//	         may use any column)
//	groupby  comma-separated group-by attribute names (required)
type Tumble struct {
	base
	spec    Spec
	agg     Aggregate
	on      Expr
	groupBy []string

	groupIdx []int
	out      *stream.Schema
	onFast   valFn // compiled on-expression; set by Bind, used by ProcessTrain

	open     bool
	acc      Accumulator
	curVals  []stream.Value // group-by values of the open window (reused backing)
	firstSeq uint64         // Seq/TS of the earliest tuple in the open window —
	firstTS  int64          // scalars, so Tumble retains no input tuple
}

// NewTumble builds a Tumble with the given aggregate, input expression,
// and group-by attributes.
func NewTumble(agg Aggregate, on Expr, groupBy []string) *Tumble {
	spec := Spec{Kind: KindTumble, Params: map[string]string{
		"agg":     agg.Name(),
		"on":      on.String(),
		"groupby": join(groupBy, ","),
	}}
	return &Tumble{spec: spec, agg: agg, on: on, groupBy: groupBy}
}

func buildTumble(s Spec) (Operator, error) {
	aggName, err := param(s, "agg")
	if err != nil {
		return nil, err
	}
	agg, err := LookupAggregate(aggName)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	onSrc, err := param(s, "on")
	if err != nil {
		return nil, err
	}
	on, err := Parse(onSrc)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	groupBy, err := paramCols(s, "groupby")
	if err != nil {
		return nil, err
	}
	return &Tumble{spec: s.Clone(), agg: agg, on: on, groupBy: groupBy}, nil
}

// Spec implements Operator.
func (tb *Tumble) Spec() Spec { return tb.spec.Clone() }

// NumIn implements Operator.
func (tb *Tumble) NumIn() int { return 1 }

// NumOut implements Operator.
func (tb *Tumble) NumOut() int { return 1 }

// Bind implements Operator.
func (tb *Tumble) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("tumble: want 1 input schema, got %d", len(in))
	}
	idx, err := in[0].Indices(tb.groupBy...)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	tb.groupIdx = idx
	if err := tb.on.Bind(in[0]); err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	tb.onFast = compileValue(tb.on)
	fields := make([]stream.Field, 0, len(idx)+1)
	for _, i := range idx {
		fields = append(fields, in[0].Field(i))
	}
	fields = append(fields, stream.Field{
		Name: ResultField,
		Kind: tb.agg.ResultKind(InferKind(tb.on, in[0])),
	})
	out, err := stream.NewSchema(in[0].Name()+".tumble", fields...)
	if err != nil {
		return nil, fmt.Errorf("tumble: %w", err)
	}
	tb.out = out
	return []*stream.Schema{out}, nil
}

// sameGroup reports whether t belongs to the open window: its group-by
// values equal the window's, field by field. Direct Value equality
// replaces the formatted-string key of earlier versions — same window
// boundaries over typed columns, without a per-tuple strconv allocation.
func (tb *Tumble) sameGroup(t stream.Tuple) bool {
	for i, idx := range tb.groupIdx {
		if !t.Field(idx).Equal(tb.curVals[i]) {
			return false
		}
	}
	return true
}

// openWindow starts a window at t, copying the group-by values into the
// reused curVals backing (Values are copied by value, so recycling t's
// Vals later cannot corrupt the window state).
func (tb *Tumble) openWindow(t stream.Tuple) {
	tb.open = true
	tb.acc = tb.agg.New()
	tb.curVals = tb.curVals[:0]
	for _, idx := range tb.groupIdx {
		tb.curVals = append(tb.curVals, t.Field(idx))
	}
	tb.firstSeq, tb.firstTS = t.Seq, t.TS
}

// Process implements Operator.
func (tb *Tumble) Process(_ int, t stream.Tuple, emit Emit) {
	if tb.open && !tb.sameGroup(t) {
		tb.emitWindow(emit)
	}
	if !tb.open {
		tb.openWindow(t)
	}
	tb.acc.Add(tb.on.Eval(t))
}

// ProcessTrain implements TrainProcessor: one dispatch per train with the
// compiled on-expression; window state transitions are identical to the
// per-tuple path (both share sameGroup/openWindow/emitWindow).
func (tb *Tumble) ProcessTrain(_ int, ts []stream.Tuple, emit Emit) {
	if tb.onFast == nil { // unbound: preserve Process's behavior
		for i := range ts {
			tb.Process(0, ts[i], emit)
		}
		return
	}
	for i := range ts {
		t := ts[i]
		if tb.open && !tb.sameGroup(t) {
			tb.emitWindow(emit)
		}
		if !tb.open {
			tb.openWindow(t)
		}
		tb.acc.Add(tb.onFast(t))
	}
}

// ConsumesInput implements Consumer: window state copies Seq/TS and
// group-by Values out of the input, never the tuple or its Vals slice.
func (tb *Tumble) ConsumesInput() {}

// Flush implements Operator: emits the open window, matching the drain
// protocol of §5.1 (the network is stabilized and all in-flight state must
// reach the output before a transformation).
func (tb *Tumble) Flush(emit Emit) {
	if tb.open {
		tb.emitWindow(emit)
	}
}

func (tb *Tumble) emitWindow(emit Emit) {
	n := len(tb.curVals)
	vals := stream.GetVals(n + 1)
	copy(vals, tb.curVals)
	vals[n] = tb.acc.Result()
	out := stream.Tuple{Seq: tb.firstSeq, TS: tb.firstTS, Vals: vals}
	out.MarkPooled()
	emit(0, out)
	tb.open = false
	tb.acc = nil
}

// Aggregate returns the tumble's aggregate function; the splitter uses it
// to check combinability and derive the merge network (§5.1).
func (tb *Tumble) Aggregate() Aggregate { return tb.agg }

// GroupBy returns the group-by attribute names.
func (tb *Tumble) GroupBy() []string { return append([]string(nil), tb.groupBy...) }

func init() { RegisterKind(KindTumble, buildTumble) }
