package op

import (
	"fmt"
	"sort"

	"repro/internal/stream"
)

// KindWSort is the registry kind of the WSort operator.
const KindWSort = "wsort"

// WSort is the time-bounded windowed sort of §2.2: it buffers incoming
// tuples and emits them in ascending order of its sort attributes, with at
// least one tuple emitted per timeout period. WSort is potentially lossy:
// a tuple that arrives after some tuple that follows it in sort order has
// already been emitted must be discarded.
//
// Spec parameters:
//
//	attrs    comma-separated sort attribute names (required)
//	timeout  emission period in time units (required, > 0); "large
//	         enough" timeouts make WSort a pure drain-time sorter, which
//	         is how the Tumble split-merge network uses it (§5.1)
//	maxbuf   optional buffer bound in tuples; exceeding it forces the
//	         minimum-key tuples out early (0 = unbounded)
type WSort struct {
	spec    Spec
	attrs   []string
	timeout int64
	maxBuf  int

	indices  []int
	buf      []wsortEntry
	arrivals uint64
	last     []stream.Value // key of the most recently emitted tuple
	hasLast  bool
	deadline int64
	started  bool
	lost     uint64
}

type wsortEntry struct {
	key     []stream.Value
	arrival uint64
	t       stream.Tuple
}

// NewWSort builds a WSort over the named sort attributes with the given
// timeout (in the same time units the engine advances).
func NewWSort(attrs []string, timeout int64) *WSort {
	spec := Spec{Kind: KindWSort, Params: map[string]string{
		"attrs":   join(attrs, ","),
		"timeout": fmt.Sprint(timeout),
	}}
	return &WSort{spec: spec, attrs: attrs, timeout: timeout}
}

func buildWSort(s Spec) (Operator, error) {
	attrs, err := paramCols(s, "attrs")
	if err != nil {
		return nil, err
	}
	timeout, err := paramInt(s, "timeout")
	if err != nil {
		return nil, err
	}
	if timeout <= 0 {
		return nil, fmt.Errorf("wsort: timeout must be positive, got %d", timeout)
	}
	maxBuf, err := paramIntDefault(s, "maxbuf", 0)
	if err != nil {
		return nil, err
	}
	return &WSort{spec: s.Clone(), attrs: attrs, timeout: timeout, maxBuf: int(maxBuf)}, nil
}

// Spec implements Operator.
func (w *WSort) Spec() Spec { return w.spec.Clone() }

// NumIn implements Operator.
func (w *WSort) NumIn() int { return 1 }

// NumOut implements Operator.
func (w *WSort) NumOut() int { return 1 }

// Bind implements Operator.
func (w *WSort) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("wsort: want 1 input schema, got %d", len(in))
	}
	idx, err := in[0].Indices(w.attrs...)
	if err != nil {
		return nil, fmt.Errorf("wsort: %w", err)
	}
	w.indices = idx
	return []*stream.Schema{in[0]}, nil
}

func (w *WSort) keyOf(t stream.Tuple) []stream.Value {
	key := make([]stream.Value, len(w.indices))
	for i, idx := range w.indices {
		key[i] = t.Field(idx)
	}
	return key
}

func keyLess(a, b []stream.Value) bool {
	for i := range a {
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return false
}

// Process implements Operator.
func (w *WSort) Process(_ int, t stream.Tuple, emit Emit) {
	key := w.keyOf(t)
	if w.hasLast && keyLess(key, w.last) {
		// A later tuple in sort order has already been emitted: the
		// arrival is out of window and must be discarded (lossy).
		w.lost++
		return
	}
	w.arrivals++
	w.buf = append(w.buf, wsortEntry{key: key, arrival: w.arrivals, t: t})
	if w.maxBuf > 0 && len(w.buf) > w.maxBuf {
		w.emitMin(emit)
	}
}

// ProcessTrain implements TrainProcessor: the common unbounded case
// (maxbuf 0 — how the §5.1 merge networks run) grows the buffer once for
// the whole train and inserts without per-tuple overflow checks; bounded
// sorts keep the per-arrival overflow semantics of Process.
func (w *WSort) ProcessTrain(_ int, ts []stream.Tuple, emit Emit) {
	if w.maxBuf > 0 {
		for i := range ts {
			w.Process(0, ts[i], emit)
		}
		return
	}
	if need := len(w.buf) + len(ts); cap(w.buf) < need {
		grown := make([]wsortEntry, len(w.buf), need+need/2)
		copy(grown, w.buf)
		w.buf = grown
	}
	for i := range ts {
		key := w.keyOf(ts[i])
		if w.hasLast && keyLess(key, w.last) {
			w.lost++
			continue
		}
		w.arrivals++
		w.buf = append(w.buf, wsortEntry{key: key, arrival: w.arrivals, t: ts[i]})
	}
}

// TimeDriven marks WSort as needing Advance calls: its timeout obligation
// must be met even when no tuples arrive.
func (w *WSort) TimeDriven() {}

// Advance implements Operator: each timeout period with a non-empty buffer
// emits the minimum-key tuples.
func (w *WSort) Advance(now int64, emit Emit) {
	if !w.started {
		w.started = true
		w.deadline = now + w.timeout
		return
	}
	for now >= w.deadline {
		w.deadline += w.timeout
		if len(w.buf) > 0 {
			w.emitMin(emit)
		}
	}
}

// emitMin emits every buffered tuple sharing the minimum sort key, in
// arrival order (stable).
func (w *WSort) emitMin(emit Emit) {
	min := 0
	for i := 1; i < len(w.buf); i++ {
		if keyLess(w.buf[i].key, w.buf[min].key) {
			min = i
		}
	}
	minKey := w.buf[min].key
	var keep []wsortEntry
	var out []wsortEntry
	for _, e := range w.buf {
		if !keyLess(e.key, minKey) && !keyLess(minKey, e.key) {
			out = append(out, e)
		} else {
			keep = append(keep, e)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].arrival < out[j].arrival })
	for _, e := range out {
		emit(0, e.t)
	}
	w.buf = keep
	w.last = minKey
	w.hasLast = true
}

// Flush implements Operator: it drains the whole buffer in sorted order
// (stable on arrival within equal keys). With a "large enough timeout"
// this is WSort's only emission, which is exactly the §5.1 merge usage.
func (w *WSort) Flush(emit Emit) {
	sort.SliceStable(w.buf, func(i, j int) bool {
		if keyLess(w.buf[i].key, w.buf[j].key) {
			return true
		}
		if keyLess(w.buf[j].key, w.buf[i].key) {
			return false
		}
		return w.buf[i].arrival < w.buf[j].arrival
	})
	for _, e := range w.buf {
		emit(0, e.t)
	}
	if n := len(w.buf); n > 0 {
		w.last = w.buf[n-1].key
		w.hasLast = true
	}
	w.buf = w.buf[:0]
}

// Lost reports how many out-of-order arrivals the sort has discarded.
func (w *WSort) Lost() uint64 { return w.lost }

func init() { RegisterKind(KindWSort, buildWSort) }
