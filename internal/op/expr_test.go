package op

import (
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

var exprSchema = stream.MustSchema("t",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
	stream.Field{Name: "price", Kind: stream.KindFloat},
	stream.Field{Name: "sym", Kind: stream.KindString},
	stream.Field{Name: "ok", Kind: stream.KindBool},
)

func exprTuple(a, b int64, price float64, sym string, ok bool) stream.Tuple {
	return stream.NewTuple(stream.Int(a), stream.Int(b), stream.Float(price),
		stream.String(sym), stream.Bool(ok))
}

func evalOn(t *testing.T, src string, tp stream.Tuple) stream.Value {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	if err := e.Bind(exprSchema); err != nil {
		t.Fatalf("Bind(%q): %v", src, err)
	}
	return e.Eval(tp)
}

func TestExprEval(t *testing.T) {
	tp := exprTuple(2, 5, 10.5, "IBM", true)
	cases := []struct {
		src  string
		want stream.Value
	}{
		{"A", stream.Int(2)},
		{"17", stream.Int(17)},
		{"2.5", stream.Float(2.5)},
		{`"IBM"`, stream.String("IBM")},
		{"true", stream.Bool(true)},
		{"null", stream.Null()},
		{"A + B", stream.Int(7)},
		{"A - B", stream.Int(-3)},
		{"A * B", stream.Int(10)},
		{"B / A", stream.Float(2.5)},
		{"B % A", stream.Int(1)},
		{"A + price", stream.Float(12.5)},
		{"A < B", stream.Bool(true)},
		{"A >= B", stream.Bool(false)},
		{"A == 2", stream.Bool(true)},
		{"A != 2", stream.Bool(false)},
		{`sym == "IBM"`, stream.Bool(true)},
		{"A < B && ok", stream.Bool(true)},
		{"A > B || ok", stream.Bool(true)},
		{"!(A < B)", stream.Bool(false)},
		{"!ok", stream.Bool(false)},
		{"A + B * 2", stream.Int(12)},   // precedence
		{"(A + B) * 2", stream.Int(14)}, // grouping
		{"-A", stream.Int(-2)},
		{"A / 0", stream.Null()},
		{"A % 0", stream.Null()},
	}
	for _, c := range cases {
		if got := evalOn(t, c.src, tp); !got.Equal(c.want) {
			t.Errorf("%q = %s, want %s", c.src, got.Format(), c.want.Format())
		}
	}
}

func TestExprStringRoundTrip(t *testing.T) {
	srcs := []string{
		"((A + B) < 7)",
		`((sym == "IBM") && !ok)`,
		"((A % 4) == 1)",
		"hash(A, B)",
		"((hash(sym) % 10) == 3)",
		"(0 - A)",
		"(price / 2)",
	}
	for _, src := range srcs {
		e := MustParse(src)
		again, err := Parse(e.String())
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", e.String(), err)
		}
		if again.String() != e.String() {
			t.Errorf("round trip %q -> %q -> %q", src, e.String(), again.String())
		}
	}
}

func TestExprParseErrors(t *testing.T) {
	bad := []string{
		"", "A +", "(A", "A ==", "hash()", "hash(1)", "A @ B", `"unterminated`,
		"A B", "&& A",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestExprBindErrors(t *testing.T) {
	exprs := []Expr{
		NewCol("ghost"),
		NewCmp(LT, NewCol("ghost"), NewConst(stream.Int(1))),
		NewCmp(LT, NewConst(stream.Int(1)), NewCol("ghost")),
		NewAnd(NewCol("ghost"), True()),
		NewArith(Add, NewCol("ghost"), NewConst(stream.Int(1))),
		NewHashCall("ghost"),
	}
	for _, e := range exprs {
		if err := e.Bind(exprSchema); err == nil {
			t.Errorf("Bind(%s) should fail on unknown column", e)
		}
	}
}

func TestHashModPartition(t *testing.T) {
	// hash(A) % n buckets must partition the key space: every tuple
	// matches exactly one bucket, and buckets are roughly balanced.
	const n = 4
	preds := make([]Expr, n)
	for b := range preds {
		preds[b] = MustBind(NewHashMod([]string{"A"}, n, int64(b)), exprSchema)
	}
	counts := make([]int, n)
	for a := int64(0); a < 4000; a++ {
		tp := exprTuple(a, 0, 0, "s", false)
		matched := 0
		for b, p := range preds {
			if p.Eval(tp).AsBool() {
				matched++
				counts[b]++
			}
		}
		if matched != 1 {
			t.Fatalf("tuple A=%d matched %d buckets, want exactly 1", a, matched)
		}
	}
	for b, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("bucket %d has %d of 4000 keys; want roughly balanced", b, c)
		}
	}
}

func TestHashDeterminism(t *testing.T) {
	h := MustBind(NewHashCall("sym"), exprSchema)
	f := func(s string) bool {
		tp := exprTuple(0, 0, 0, s, false)
		a := h.Eval(tp)
		b := h.Eval(tp)
		return a.Equal(b) && a.AsInt() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInferKind(t *testing.T) {
	cases := []struct {
		src  string
		want stream.Kind
	}{
		{"A", stream.KindInt},
		{"price", stream.KindFloat},
		{"sym", stream.KindString},
		{"A + B", stream.KindInt},
		{"A + price", stream.KindFloat},
		{"A / B", stream.KindFloat},
		{"A < B", stream.KindBool},
		{"ok && ok", stream.KindBool},
		{"hash(A)", stream.KindInt},
		{"hash(A) % 4", stream.KindInt},
	}
	for _, c := range cases {
		if got := InferKind(MustParse(c.src), exprSchema); got != c.want {
			t.Errorf("InferKind(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseNumbers(t *testing.T) {
	if v := MustParse("1e3"); !v.(*Const).Val.Equal(stream.Float(1000)) {
		t.Errorf("1e3 = %v", v)
	}
	if v := MustParse("2.5e-1"); !v.(*Const).Val.Equal(stream.Float(0.25)) {
		t.Errorf("2.5e-1 = %v", v)
	}
}
