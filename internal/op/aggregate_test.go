package op

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func runAgg(a Aggregate, vals ...stream.Value) stream.Value {
	acc := a.New()
	for _, v := range vals {
		acc.Add(v)
	}
	return acc.Result()
}

func TestAggregateBasics(t *testing.T) {
	ints := []stream.Value{stream.Int(3), stream.Int(1), stream.Int(2)}
	cases := []struct {
		agg  Aggregate
		want stream.Value
	}{
		{Cnt, stream.Int(3)},
		{Sum, stream.Int(6)},
		{Max, stream.Int(3)},
		{Min, stream.Int(1)},
		{Avg, stream.Float(2)},
		{First, stream.Int(3)},
		{Last, stream.Int(2)},
	}
	for _, c := range cases {
		if got := runAgg(c.agg, ints...); !got.Equal(c.want) {
			t.Errorf("%s(3,1,2) = %s, want %s", c.agg.Name(), got.Format(), c.want.Format())
		}
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := runAgg(Cnt); !got.Equal(stream.Int(0)) {
		t.Errorf("cnt() = %v", got)
	}
	if got := runAgg(Sum); !got.Equal(stream.Int(0)) {
		t.Errorf("sum() = %v", got)
	}
	for _, a := range []Aggregate{Max, Min, Avg, First, Last, StdDev} {
		if got := runAgg(a); !got.IsNull() {
			t.Errorf("%s() = %v, want null", a.Name(), got)
		}
	}
}

func TestSumMixedKinds(t *testing.T) {
	got := runAgg(Sum, stream.Int(1), stream.Float(2.5), stream.Int(3))
	if !got.Equal(stream.Float(6.5)) {
		t.Errorf("sum(1, 2.5, 3) = %s", got.Format())
	}
	// Float first, then int.
	got = runAgg(Sum, stream.Float(0.5), stream.Int(2))
	if !got.Equal(stream.Float(2.5)) {
		t.Errorf("sum(0.5, 2) = %s", got.Format())
	}
}

func TestStdDev(t *testing.T) {
	got := runAgg(StdDev, stream.Float(2), stream.Float(4), stream.Float(4),
		stream.Float(4), stream.Float(5), stream.Float(5), stream.Float(7), stream.Float(9))
	if math.Abs(got.AsFloat()-2.0) > 1e-9 {
		t.Errorf("stddev = %g, want 2", got.AsFloat())
	}
}

func TestCombinableFlags(t *testing.T) {
	combinable := []Aggregate{Cnt, Sum, Max, Min, First, Last}
	for _, a := range combinable {
		if !a.Combinable() {
			t.Errorf("%s should be combinable", a.Name())
		}
	}
	for _, a := range []Aggregate{Avg, StdDev} {
		if a.Combinable() {
			t.Errorf("%s must not be combinable (scalar partials)", a.Name())
		}
	}
}

func TestCombinePanicsForAvg(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Avg.Combine should panic")
		}
	}()
	Avg.Combine()
}

// TestCombineIdentity is the §5.1 requirement verbatim: for any tuple set
// and any partition point k,
// agg(x1..xn) == combine(agg(x1..xk), agg(x(k+1)..xn)).
func TestCombineIdentity(t *testing.T) {
	aggs := []Aggregate{Cnt, Sum, Max, Min, First, Last}
	f := func(raw []int16, kRaw uint8) bool {
		if len(raw) < 2 {
			return true
		}
		vals := make([]stream.Value, len(raw))
		for i, r := range raw {
			vals[i] = stream.Int(int64(r))
		}
		k := 1 + int(kRaw)%(len(vals)-1)
		for _, a := range aggs {
			whole := runAgg(a, vals...)
			left := runAgg(a, vals[:k]...)
			right := runAgg(a, vals[k:]...)
			merged := runAgg(a.Combine(), left, right)
			if !whole.Equal(merged) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestCombineExamples pins the paper's two examples: if agg is cnt, combine
// is sum; if agg is max, combine is max.
func TestCombineExamples(t *testing.T) {
	if Cnt.Combine().Name() != "sum" {
		t.Errorf("combine(cnt) = %s, want sum", Cnt.Combine().Name())
	}
	if Max.Combine().Name() != "max" {
		t.Errorf("combine(max) = %s, want max", Max.Combine().Name())
	}
}

func TestLookupAggregate(t *testing.T) {
	a, err := LookupAggregate("cnt")
	if err != nil || a.Name() != "cnt" {
		t.Fatalf("LookupAggregate(cnt) = %v, %v", a, err)
	}
	if _, err := LookupAggregate("bogus"); err == nil {
		t.Error("LookupAggregate(bogus) should fail")
	}
	names := AggregateNames()
	if len(names) < 7 {
		t.Errorf("AggregateNames = %v, want at least the built-ins", names)
	}
}

func TestMustAggregatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustAggregate should panic on unknown name")
		}
	}()
	MustAggregate("nope")
}

func TestExtremesOverStrings(t *testing.T) {
	vals := []stream.Value{stream.String("b"), stream.String("a"), stream.String("c")}
	if got := runAgg(Max, vals...); got.AsString() != "c" {
		t.Errorf("max strings = %v", got)
	}
	if got := runAgg(Min, vals...); got.AsString() != "a" {
		t.Errorf("min strings = %v", got)
	}
}
