package op

import (
	"fmt"
	"math"

	"repro/internal/stream"
)

// Accumulator holds the running state of one aggregate over one window.
type Accumulator interface {
	// Add folds one input value into the state.
	Add(v stream.Value)
	// Result returns the aggregate of everything added so far.
	Result() stream.Value
}

// Aggregate is a factory for accumulators plus the split-transparency
// metadata of §5.1: when a Tumble box is split, the merge network needs a
// combine aggregate such that for any tuple set and any partition point
//
//	agg(x1..xn) = combine(agg(x1..xk), agg(x(k+1)..xn)).
//
// For example cnt combines with sum, and max combines with max. Aggregates
// without a combination function (avg over a single scalar partial) report
// Combinable() == false and their boxes refuse to split.
type Aggregate interface {
	// Name is the registry name of the aggregate (e.g. "cnt").
	Name() string
	// New returns an empty accumulator.
	New() Accumulator
	// Combinable reports whether a combine aggregate exists.
	Combinable() bool
	// Combine returns the aggregate that merges partial results; it panics
	// if !Combinable().
	Combine() Aggregate
	// ResultKind reports the kind of the aggregate result given the kind
	// of its input values; Tumble uses it to derive output schemas.
	ResultKind(in stream.Kind) stream.Kind
}

// LookupAggregate resolves an aggregate by registry name; remote definition
// ships aggregate names, not code.
func LookupAggregate(name string) (Aggregate, error) {
	if a, ok := aggregates[name]; ok {
		return a, nil
	}
	return nil, fmt.Errorf("unknown aggregate %q", name)
}

// MustAggregate is LookupAggregate that panics; for compiled-in plans.
func MustAggregate(name string) Aggregate {
	a, err := LookupAggregate(name)
	if err != nil {
		panic(err)
	}
	return a
}

var aggregates = map[string]Aggregate{}

func register(a Aggregate) Aggregate {
	aggregates[a.Name()] = a
	return a
}

// The built-in aggregates. Each is a stateless singleton.
var (
	// Cnt counts values; combine is Sum (the paper's own example).
	Cnt = register(cntAgg{})
	// Sum sums numeric values; combine is Sum.
	Sum = register(sumAgg{})
	// Max keeps the maximum; combine is Max (the paper's other example).
	Max = register(maxAgg{})
	// Min keeps the minimum; combine is Min.
	Min = register(minAgg{})
	// Avg averages numeric values. A scalar average carries no weight, so
	// avg has no combination function and Tumble(avg) cannot be split.
	Avg = register(avgAgg{})
	// First keeps the first value seen; combine is First.
	First = register(firstAgg{})
	// Last keeps the last value seen; combine is Last.
	Last = register(lastAgg{})
)

type cntAgg struct{}

func (cntAgg) Name() string                       { return "cnt" }
func (cntAgg) New() Accumulator                   { return &cntAcc{} }
func (cntAgg) Combinable() bool                   { return true }
func (cntAgg) Combine() Aggregate                 { return Sum }
func (cntAgg) ResultKind(stream.Kind) stream.Kind { return stream.KindInt }

type cntAcc struct{ n int64 }

func (a *cntAcc) Add(stream.Value)     { a.n++ }
func (a *cntAcc) Result() stream.Value { return stream.Int(a.n) }

type sumAgg struct{}

func (sumAgg) Name() string                          { return "sum" }
func (sumAgg) New() Accumulator                      { return &sumAcc{} }
func (sumAgg) Combinable() bool                      { return true }
func (sumAgg) Combine() Aggregate                    { return Sum }
func (sumAgg) ResultKind(in stream.Kind) stream.Kind { return in }

type sumAcc struct {
	i       int64
	f       float64
	isFloat bool
}

func (a *sumAcc) Add(v stream.Value) {
	if v.Kind() == stream.KindFloat {
		if !a.isFloat {
			a.isFloat = true
			a.f = float64(a.i)
		}
		a.f += v.AsFloat()
		return
	}
	if a.isFloat {
		a.f += v.AsFloat()
		return
	}
	a.i += v.AsInt()
}

func (a *sumAcc) Result() stream.Value {
	if a.isFloat {
		return stream.Float(a.f)
	}
	return stream.Int(a.i)
}

type maxAgg struct{}

func (maxAgg) Name() string                          { return "max" }
func (maxAgg) New() Accumulator                      { return &extremeAcc{want: 1} }
func (maxAgg) Combinable() bool                      { return true }
func (maxAgg) Combine() Aggregate                    { return Max }
func (maxAgg) ResultKind(in stream.Kind) stream.Kind { return in }

type minAgg struct{}

func (minAgg) Name() string                          { return "min" }
func (minAgg) New() Accumulator                      { return &extremeAcc{want: -1} }
func (minAgg) Combinable() bool                      { return true }
func (minAgg) Combine() Aggregate                    { return Min }
func (minAgg) ResultKind(in stream.Kind) stream.Kind { return in }

type extremeAcc struct {
	best stream.Value
	want int // +1 keeps the larger, -1 keeps the smaller
	seen bool
}

func (a *extremeAcc) Add(v stream.Value) {
	if !a.seen || v.Compare(a.best) == a.want {
		a.best = v
		a.seen = true
	}
}

func (a *extremeAcc) Result() stream.Value {
	if !a.seen {
		return stream.Null()
	}
	return a.best
}

type avgAgg struct{}

func (avgAgg) Name() string     { return "avg" }
func (avgAgg) New() Accumulator { return &avgAcc{} }
func (avgAgg) Combinable() bool { return false }
func (avgAgg) Combine() Aggregate {
	panic("avg has no combination function; Tumble(avg) cannot be split (§5.1)")
}
func (avgAgg) ResultKind(stream.Kind) stream.Kind { return stream.KindFloat }

type avgAcc struct {
	sum float64
	n   int64
}

func (a *avgAcc) Add(v stream.Value) {
	a.sum += v.AsFloat()
	a.n++
}

func (a *avgAcc) Result() stream.Value {
	if a.n == 0 {
		return stream.Null()
	}
	return stream.Float(a.sum / float64(a.n))
}

type firstAgg struct{}

func (firstAgg) Name() string                          { return "first" }
func (firstAgg) New() Accumulator                      { return &edgeAcc{keepFirst: true} }
func (firstAgg) Combinable() bool                      { return true }
func (firstAgg) Combine() Aggregate                    { return First }
func (firstAgg) ResultKind(in stream.Kind) stream.Kind { return in }

type lastAgg struct{}

func (lastAgg) Name() string                          { return "last" }
func (lastAgg) New() Accumulator                      { return &edgeAcc{} }
func (lastAgg) Combinable() bool                      { return true }
func (lastAgg) Combine() Aggregate                    { return Last }
func (lastAgg) ResultKind(in stream.Kind) stream.Kind { return in }

type edgeAcc struct {
	v         stream.Value
	seen      bool
	keepFirst bool
}

func (a *edgeAcc) Add(v stream.Value) {
	if a.keepFirst && a.seen {
		return
	}
	a.v = v
	a.seen = true
}

func (a *edgeAcc) Result() stream.Value {
	if !a.seen {
		return stream.Null()
	}
	return a.v
}

// AggregateNames returns the registry names of all built-in aggregates,
// for catalog listings and the streamgen CLI.
func AggregateNames() []string {
	names := make([]string, 0, len(aggregates))
	for n := range aggregates {
		names = append(names, n)
	}
	return names
}

// StdDev of a window, provided as an example of an extension aggregate the
// paper's model admits (it is combinable in principle via (n, sum, sumsq)
// partials, but the scalar result is not, so Combinable is false here).
var StdDev = register(stddevAgg{})

type stddevAgg struct{}

func (stddevAgg) Name() string     { return "stddev" }
func (stddevAgg) New() Accumulator { return &stddevAcc{} }
func (stddevAgg) Combinable() bool { return false }
func (stddevAgg) Combine() Aggregate {
	panic("stddev scalar results have no combination function")
}
func (stddevAgg) ResultKind(stream.Kind) stream.Kind { return stream.KindFloat }

type stddevAcc struct {
	n          int64
	sum, sumSq float64
}

func (a *stddevAcc) Add(v stream.Value) {
	f := v.AsFloat()
	a.n++
	a.sum += f
	a.sumSq += f * f
}

func (a *stddevAcc) Result() stream.Value {
	if a.n == 0 {
		return stream.Null()
	}
	mean := a.sum / float64(a.n)
	variance := a.sumSq/float64(a.n) - mean*mean
	if variance < 0 {
		variance = 0 // numeric noise
	}
	return stream.Float(math.Sqrt(variance))
}
