package op

import "repro/internal/stream"

// Expression compilation for the batch kernels. A bound Expr tree pays
// two interface dispatches per node per tuple (Eval on each child); over
// a train of 128 tuples through a three-clause predicate that is ~1000
// indirect calls. compileValue/compileBool lower the tree once, at Bind
// time, into a chain of direct closure calls with the operator and any
// constants captured. The closures replicate Eval semantics exactly —
// including float-ordered comparison of mixed numerics, Div promotion to
// float, and division-by-zero yielding Null — and nodes outside the core
// algebra (HashCall, user-defined Exprs) fall back to their own Eval, so
// compilation never changes results, only dispatch cost.
//
// Compiled closures capture bound column indices, so operators recompile
// on every Bind; only the batch kernels use them (Process keeps the tree
// walk, which is the serial-kernel baseline the CI hot-path guard
// measures against).

type valFn func(stream.Tuple) stream.Value

type boolFn func(stream.Tuple) bool

// compileValue lowers a bound expression into a closure chain producing
// its Value.
func compileValue(e Expr) valFn {
	switch x := e.(type) {
	case *Col:
		idx := x.index
		return func(t stream.Tuple) stream.Value { return t.Field(idx) }
	case *Const:
		v := x.Val
		return func(stream.Tuple) stream.Value { return v }
	case *Cmp:
		f := compileCmp(x)
		return func(t stream.Tuple) stream.Value { return stream.Bool(f(t)) }
	case *Logic:
		f := compileBool(x)
		return func(t stream.Tuple) stream.Value { return stream.Bool(f(t)) }
	case *Arith:
		l, r := compileValue(x.L), compileValue(x.R)
		op := x.Op
		return func(t stream.Tuple) stream.Value { return arithEval(op, l(t), r(t)) }
	default:
		return e.Eval
	}
}

// compileBool lowers a bound predicate into a closure chain producing its
// truth value without materializing intermediate Bool values.
func compileBool(e Expr) boolFn {
	switch x := e.(type) {
	case *Const:
		b := x.Val.AsBool()
		return func(stream.Tuple) bool { return b }
	case *Cmp:
		return compileCmp(x)
	case *Logic:
		switch x.Op {
		case And:
			l, r := compileBool(x.L), compileBool(x.R)
			return func(t stream.Tuple) bool { return l(t) && r(t) }
		case Or:
			l, r := compileBool(x.L), compileBool(x.R)
			return func(t stream.Tuple) bool { return l(t) || r(t) }
		default:
			l := compileBool(x.L)
			return func(t stream.Tuple) bool { return !l(t) }
		}
	default:
		f := compileValue(e)
		return func(t stream.Tuple) bool { return f(t).AsBool() }
	}
}

// compileCmp specializes the comparison operator outside the closure so
// the hot path runs a single Compare plus one branch.
func compileCmp(c *Cmp) boolFn {
	l, r := compileValue(c.L), compileValue(c.R)
	switch c.Op {
	case EQ:
		return func(t stream.Tuple) bool { return l(t).Compare(r(t)) == 0 }
	case NE:
		return func(t stream.Tuple) bool { return l(t).Compare(r(t)) != 0 }
	case LT:
		return func(t stream.Tuple) bool { return l(t).Compare(r(t)) < 0 }
	case LE:
		return func(t stream.Tuple) bool { return l(t).Compare(r(t)) <= 0 }
	case GT:
		return func(t stream.Tuple) bool { return l(t).Compare(r(t)) > 0 }
	default:
		return func(t stream.Tuple) bool { return l(t).Compare(r(t)) >= 0 }
	}
}
