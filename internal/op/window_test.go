package op

import (
	"testing"

	"repro/internal/stream"
)

func seqTuples(group int64, bs ...int64) []stream.Tuple {
	out := make([]stream.Tuple, len(bs))
	for i, b := range bs {
		out[i] = stream.NewTuple(stream.Int(group), stream.Int(b))
	}
	return out
}

func TestXSectionTumblingWindows(t *testing.T) {
	// size == advance: non-overlapping count windows.
	x := NewXSection(Sum, NewCol("B"), []string{"A"}, 2, 2)
	out := feed(t, x, fig2Schema, seqTuples(1, 1, 2, 3, 4, 5))
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(3)), // 1+2
		stream.NewTuple(stream.Int(1), stream.Int(7)), // 3+4
	}
	// The trailing incomplete window (just 5) is discarded.
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestXSectionOverlappingWindows(t *testing.T) {
	x := NewXSection(Sum, NewCol("B"), []string{"A"}, 3, 1)
	out := feed(t, x, fig2Schema, seqTuples(1, 1, 2, 3, 4))
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(6)), // 1+2+3
		stream.NewTuple(stream.Int(1), stream.Int(9)), // 2+3+4
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestXSectionPerGroupWindows(t *testing.T) {
	x := NewXSection(Cnt, NewCol("B"), []string{"A"}, 2, 2)
	in := append(seqTuples(1, 1), append(seqTuples(2, 9), seqTuples(1, 2)...)...)
	out := feed(t, x, fig2Schema, in)
	// Group 1 completes one window of 2; group 2 never completes.
	want := []stream.Tuple{stream.NewTuple(stream.Int(1), stream.Int(2))}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestXSectionValidation(t *testing.T) {
	for _, params := range []map[string]string{
		{"agg": "sum", "on": "B", "groupby": "A", "size": "0"},
		{"agg": "sum", "on": "B", "groupby": "A", "size": "2", "advance": "0"},
		{"agg": "nope", "on": "B", "groupby": "A", "size": "2"},
	} {
		if _, err := Build(Spec{Kind: "xsection", Params: params}); err == nil {
			t.Errorf("Build(xsection %v) should fail", params)
		}
	}
}

func TestSlideTrailingWindow(t *testing.T) {
	// range=10 over order attribute B: each emission aggregates the
	// trailing window (B-10, B].
	sl := NewSlide(Sum, NewCol("B"), []string{"A"}, "B", 10)
	out := feed(t, sl, fig2Schema, seqTuples(1, 1, 5, 11, 20))
	// Windows (order - 10, order]: {1}, {1,5}, {5,11} (1 pruned),
	// {11,20} (5 pruned since 5 <= 20-10).
	wantSums := []int64{1, 6, 16, 31}
	if len(out) != len(wantSums) {
		t.Fatalf("got %d outputs:\n%s", len(out), stream.FormatTuples(out))
	}
	for i, tp := range out {
		if got := tp.Field(2).AsInt(); got != wantSums[i] {
			t.Errorf("window %d sum = %d, want %d", i, got, wantSums[i])
		}
	}
}

func TestSlidePerGroup(t *testing.T) {
	sl := NewSlide(Cnt, NewCol("B"), []string{"A"}, "B", 100)
	in := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(1)),
		stream.NewTuple(stream.Int(2), stream.Int(2)),
		stream.NewTuple(stream.Int(1), stream.Int(3)),
	}
	out := feed(t, sl, fig2Schema, in)
	wantCounts := []int64{1, 1, 2}
	for i, tp := range out {
		if got := tp.Field(2).AsInt(); got != wantCounts[i] {
			t.Errorf("emission %d count = %d, want %d", i, got, wantCounts[i])
		}
	}
}

func TestSlideOutputSchema(t *testing.T) {
	sl := NewSlide(Max, NewCol("B"), []string{"A"}, "B", 10)
	schemas, err := sl.Bind([]*stream.Schema{fig2Schema})
	if err != nil {
		t.Fatal(err)
	}
	out := schemas[0]
	if out.Arity() != 3 || out.Field(0).Name != "A" || out.Field(1).Name != "B" || out.Field(2).Name != ResultField {
		t.Fatalf("schema = %s", out)
	}
}

func TestSlideValidation(t *testing.T) {
	if _, err := Build(Spec{Kind: "slide", Params: map[string]string{
		"agg": "sum", "on": "B", "groupby": "A", "order": "B", "range": "-1",
	}}); err == nil {
		t.Error("negative range should fail")
	}
	sl := NewSlide(Sum, NewCol("B"), []string{"A"}, "ghost", 5)
	if _, err := sl.Bind([]*stream.Schema{fig2Schema}); err == nil {
		t.Error("unknown order attribute should fail at bind")
	}
}
