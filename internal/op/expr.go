// Package op implements the Aurora operator set (paper §2.2): Filter,
// Map, Union, WSort, Tumble, XSection, Slide, Join, and Resample, together
// with the aggregate functions and combine functions that box splitting
// (§5.1) requires, and a small serializable expression language used for
// filter predicates and map projections.
//
// Expressions are data rather than Go closures so that they can cross the
// wire: Medusa's remote definition (§4.4) instantiates operators from a
// pre-defined set offered by another participant, which requires operator
// parameters to be serializable.
package op

import (
	"fmt"
	"hash/fnv"
	"strings"

	"repro/internal/stream"
)

// Expr is a side-effect-free expression over one tuple. Expressions must be
// bound to a schema (Bind) before evaluation so column references resolve
// to positions once, not per tuple.
type Expr interface {
	// Bind resolves column names against the schema; it must be called
	// before Eval and may be called again to rebind to a new schema.
	Bind(s *stream.Schema) error
	// Eval computes the expression over the tuple.
	Eval(t stream.Tuple) stream.Value
	// String renders the expression in the concrete syntax accepted by
	// Parse, so that Parse(e.String()) reproduces the expression.
	String() string
}

// Col references a column by name.
type Col struct {
	Name  string
	index int
}

// NewCol returns a column reference expression.
func NewCol(name string) *Col { return &Col{Name: name} }

// Bind implements Expr.
func (c *Col) Bind(s *stream.Schema) error {
	i := s.Index(c.Name)
	if i < 0 {
		return fmt.Errorf("column %q not in schema %s", c.Name, s)
	}
	c.index = i
	return nil
}

// Eval implements Expr.
func (c *Col) Eval(t stream.Tuple) stream.Value { return t.Field(c.index) }

// String implements Expr.
func (c *Col) String() string { return c.Name }

// Const is a literal value.
type Const struct{ Val stream.Value }

// NewConst returns a literal expression.
func NewConst(v stream.Value) *Const { return &Const{Val: v} }

// Bind implements Expr.
func (c *Const) Bind(*stream.Schema) error { return nil }

// Eval implements Expr.
func (c *Const) Eval(stream.Tuple) stream.Value { return c.Val }

// String implements Expr.
func (c *Const) String() string { return c.Val.Format() }

// CmpOp enumerates comparison operators.
type CmpOp uint8

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

func (o CmpOp) String() string {
	switch o {
	case EQ:
		return "=="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	default:
		return ">="
	}
}

// Cmp compares two sub-expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// NewCmp returns a comparison expression.
func NewCmp(op CmpOp, l, r Expr) *Cmp { return &Cmp{Op: op, L: l, R: r} }

// Bind implements Expr.
func (c *Cmp) Bind(s *stream.Schema) error {
	if err := c.L.Bind(s); err != nil {
		return err
	}
	return c.R.Bind(s)
}

// Eval implements Expr.
func (c *Cmp) Eval(t stream.Tuple) stream.Value {
	r := c.L.Eval(t).Compare(c.R.Eval(t))
	var b bool
	switch c.Op {
	case EQ:
		b = r == 0
	case NE:
		b = r != 0
	case LT:
		b = r < 0
	case LE:
		b = r <= 0
	case GT:
		b = r > 0
	case GE:
		b = r >= 0
	}
	return stream.Bool(b)
}

// String implements Expr.
func (c *Cmp) String() string {
	return fmt.Sprintf("(%s %s %s)", c.L, c.Op, c.R)
}

// LogicOp enumerates boolean connectives.
type LogicOp uint8

// Boolean connectives.
const (
	And LogicOp = iota
	Or
	Not
)

// Logic combines boolean sub-expressions. Not uses only L.
type Logic struct {
	Op   LogicOp
	L, R Expr
}

// NewAnd returns l && r.
func NewAnd(l, r Expr) *Logic { return &Logic{Op: And, L: l, R: r} }

// NewOr returns l || r.
func NewOr(l, r Expr) *Logic { return &Logic{Op: Or, L: l, R: r} }

// NewNot returns !l.
func NewNot(l Expr) *Logic { return &Logic{Op: Not, L: l} }

// Bind implements Expr.
func (l *Logic) Bind(s *stream.Schema) error {
	if err := l.L.Bind(s); err != nil {
		return err
	}
	if l.R != nil {
		return l.R.Bind(s)
	}
	return nil
}

// Eval implements Expr.
func (l *Logic) Eval(t stream.Tuple) stream.Value {
	switch l.Op {
	case And:
		return stream.Bool(l.L.Eval(t).AsBool() && l.R.Eval(t).AsBool())
	case Or:
		return stream.Bool(l.L.Eval(t).AsBool() || l.R.Eval(t).AsBool())
	default:
		return stream.Bool(!l.L.Eval(t).AsBool())
	}
}

// String implements Expr.
func (l *Logic) String() string {
	switch l.Op {
	case And:
		return fmt.Sprintf("(%s && %s)", l.L, l.R)
	case Or:
		return fmt.Sprintf("(%s || %s)", l.L, l.R)
	default:
		return fmt.Sprintf("!%s", l.L)
	}
}

// ArithOp enumerates arithmetic operators.
type ArithOp uint8

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
	Mod
)

func (o ArithOp) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return "%"
	}
}

// Arith computes arithmetic over numeric sub-expressions. Integer operands
// stay integral except under Div, which always promotes to float.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// NewArith returns an arithmetic expression.
func NewArith(op ArithOp, l, r Expr) *Arith { return &Arith{Op: op, L: l, R: r} }

// Bind implements Expr.
func (a *Arith) Bind(s *stream.Schema) error {
	if err := a.L.Bind(s); err != nil {
		return err
	}
	return a.R.Bind(s)
}

// Eval implements Expr.
func (a *Arith) Eval(t stream.Tuple) stream.Value {
	return arithEval(a.Op, a.L.Eval(t), a.R.Eval(t))
}

// arithEval is the arithmetic kernel shared by the tree walk and the
// compiled closures, so both paths carry identical promotion and
// division-by-zero semantics.
func arithEval(op ArithOp, l, r stream.Value) stream.Value {
	if l.Kind() == stream.KindInt && r.Kind() == stream.KindInt {
		li, ri := l.AsInt(), r.AsInt()
		switch op {
		case Add:
			return stream.Int(li + ri)
		case Sub:
			return stream.Int(li - ri)
		case Mul:
			return stream.Int(li * ri)
		case Div:
			// Division always yields float so the runtime kind matches
			// static schema inference regardless of divisibility.
			if ri == 0 {
				return stream.Null()
			}
			return stream.Float(float64(li) / float64(ri))
		case Mod:
			if ri == 0 {
				return stream.Null()
			}
			return stream.Int(li % ri)
		}
	}
	lf, rf := l.AsFloat(), r.AsFloat()
	switch op {
	case Add:
		return stream.Float(lf + rf)
	case Sub:
		return stream.Float(lf - rf)
	case Mul:
		return stream.Float(lf * rf)
	case Div:
		if rf == 0 {
			return stream.Null()
		}
		return stream.Float(lf / rf)
	default:
		return stream.Null() // Mod over floats is undefined here
	}
}

// String implements Expr.
func (a *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", a.L, a.Op, a.R)
}

// HashCall hashes the named columns into a non-negative int64. Combined
// with Mod and Cmp it forms the workhorse of "half of the available
// streams" split predicates (§5.2): hash(cols) % N == bucket routes a
// deterministic 1/N of the key space.
type HashCall struct {
	Cols    []string
	indices []int
}

// NewHashCall returns a hash expression over the named columns.
func NewHashCall(cols ...string) *HashCall { return &HashCall{Cols: cols} }

// Bind implements Expr.
func (h *HashCall) Bind(s *stream.Schema) error {
	idx, err := s.Indices(h.Cols...)
	if err != nil {
		return err
	}
	h.indices = idx
	return nil
}

// Eval implements Expr.
func (h *HashCall) Eval(t stream.Tuple) stream.Value {
	hash := fnv.New64a()
	for _, i := range h.indices {
		hash.Write([]byte(t.Field(i).Format()))
		hash.Write([]byte{0x1f})
	}
	return stream.Int(int64(hash.Sum64() &^ (1 << 63)))
}

// String implements Expr.
func (h *HashCall) String() string {
	return fmt.Sprintf("hash(%s)", strings.Join(h.Cols, ", "))
}

// NewHashMod returns the predicate hash(cols) % n == bucket, the
// statistics-free split predicate of §5.2.
func NewHashMod(cols []string, n, bucket int64) Expr {
	return NewCmp(EQ,
		NewArith(Mod, NewHashCall(cols...), NewConst(stream.Int(n))),
		NewConst(stream.Int(bucket)))
}

// True is the always-true predicate.
func True() Expr { return &Const{Val: stream.Bool(true)} }

// InferKind statically determines the kind an expression produces over the
// given input schema. Map uses it to derive output schemas; comparisons and
// logic are bool, Div is always float, other arithmetic is int only when
// both operands are int.
func InferKind(e Expr, s *stream.Schema) stream.Kind {
	switch x := e.(type) {
	case *Col:
		if i := s.Index(x.Name); i >= 0 {
			return s.Field(i).Kind
		}
		return stream.KindInvalid
	case *Const:
		return x.Val.Kind()
	case *Cmp, *Logic:
		return stream.KindBool
	case *Arith:
		if x.Op == Div {
			return stream.KindFloat
		}
		if InferKind(x.L, s) == stream.KindInt && InferKind(x.R, s) == stream.KindInt {
			return stream.KindInt
		}
		return stream.KindFloat
	case *HashCall:
		return stream.KindInt
	default:
		return stream.KindInvalid
	}
}

// MustBind binds e to s and panics on failure; for static plans and tests.
func MustBind(e Expr, s *stream.Schema) Expr {
	if err := e.Bind(s); err != nil {
		panic(err)
	}
	return e
}
