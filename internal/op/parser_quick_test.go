package op

import (
	"math/rand"
	"testing"

	"repro/internal/stream"
)

// genExpr builds a random expression tree over exprSchema: the generator
// for the String/Parse round-trip property.
func genExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch rng.Intn(5) {
		case 0:
			return NewCol("A")
		case 1:
			return NewCol("B")
		case 2:
			return NewConst(stream.Int(rng.Int63n(100) - 50))
		case 3:
			return NewConst(stream.Float(float64(rng.Intn(100)) / 4))
		default:
			return NewCol("price")
		}
	}
	switch rng.Intn(6) {
	case 0:
		return NewCmp(CmpOp(rng.Intn(6)), genExpr(rng, depth-1), genExpr(rng, depth-1))
	case 1:
		return NewArith(ArithOp(rng.Intn(5)), genExpr(rng, depth-1), genExpr(rng, depth-1))
	case 2:
		return NewAnd(genBool(rng, depth-1), genBool(rng, depth-1))
	case 3:
		return NewOr(genBool(rng, depth-1), genBool(rng, depth-1))
	case 4:
		return NewNot(genBool(rng, depth-1))
	default:
		return NewHashCall("A", "sym")
	}
}

// genBool builds a random boolean-valued expression.
func genBool(rng *rand.Rand, depth int) Expr {
	if depth <= 0 {
		return NewCmp(LT, NewCol("A"), NewConst(stream.Int(rng.Int63n(10))))
	}
	switch rng.Intn(3) {
	case 0:
		return NewCmp(CmpOp(rng.Intn(6)), genExpr(rng, depth-1), genExpr(rng, depth-1))
	case 1:
		return NewAnd(genBool(rng, depth-1), genBool(rng, depth-1))
	default:
		return NewNot(genBool(rng, depth-1))
	}
}

// TestRandomExprRoundTrip: for random trees e, Parse(e.String()) evaluates
// identically to e on random tuples — the invariant remote definition
// (§4.4) rests on.
func TestRandomExprRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 500; trial++ {
		e := genExpr(rng, 1+rng.Intn(4))
		src := e.String()
		parsed, err := Parse(src)
		if err != nil {
			t.Fatalf("trial %d: Parse(%q): %v", trial, src, err)
		}
		if parsed.String() != src {
			t.Fatalf("trial %d: render not stable: %q -> %q", trial, src, parsed.String())
		}
		if err := e.Bind(exprSchema); err != nil {
			t.Fatal(err)
		}
		if err := parsed.Bind(exprSchema); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			tp := exprTuple(rng.Int63n(20)-10, rng.Int63n(20)-10,
				float64(rng.Intn(100))/8, "s", rng.Intn(2) == 0)
			a, b := e.Eval(tp), parsed.Eval(tp)
			if !a.Equal(b) {
				t.Fatalf("trial %d: %q evaluates %s vs %s on %v",
					trial, src, a.Format(), b.Format(), tp)
			}
		}
	}
}
