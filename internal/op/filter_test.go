package op

import (
	"testing"

	"repro/internal/stream"
)

// fig2Schema and fig2Stream reproduce the sample tuple stream of paper
// Figure 2, reused throughout the operator and split tests.
var fig2Schema = stream.MustSchema("fig2",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

func fig2Stream() []stream.Tuple {
	rows := [][2]int64{
		{1, 2}, {1, 3}, {2, 2}, {2, 1}, {2, 6}, {4, 5}, {4, 2},
	}
	out := make([]stream.Tuple, len(rows))
	for i, r := range rows {
		out[i] = stream.Tuple{
			Seq:  uint64(i + 1),
			TS:   int64(i + 1),
			Vals: []stream.Value{stream.Int(r[0]), stream.Int(r[1])},
		}
	}
	return out
}

func TestFilterTruePort(t *testing.T) {
	f := NewFilter(MustParse("B < 3"), false)
	out := feed(t, f, fig2Schema, fig2Stream())
	// Tuples 1, 3, 4, 7 have B < 3.
	if len(out) != 4 {
		t.Fatalf("got %d tuples, want 4:\n%s", len(out), stream.FormatTuples(out))
	}
	for _, tp := range out {
		if tp.Field(1).AsInt() >= 3 {
			t.Errorf("tuple %v should have been filtered", tp)
		}
	}
}

func TestFilterFalsePort(t *testing.T) {
	f := NewFilter(MustParse("B < 3"), true)
	if _, err := f.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	for _, tp := range fig2Stream() {
		f.Process(0, tp, c.emit)
	}
	if len(c.out(0)) != 4 || len(c.out(1)) != 3 {
		t.Fatalf("true port %d (want 4), false port %d (want 3)", len(c.out(0)), len(c.out(1)))
	}
	if f.NumOut() != 2 {
		t.Error("dual filter must report 2 output ports")
	}
	for _, tp := range c.out(1) {
		if tp.Field(1).AsInt() < 3 {
			t.Errorf("false-port tuple %v satisfies the predicate", tp)
		}
	}
}

func TestFilterWithoutFalsePortDropsNonMatching(t *testing.T) {
	f := NewFilter(MustParse("B < 3"), false)
	if f.NumOut() != 1 {
		t.Error("single-port filter must report 1 output port")
	}
	if _, err := f.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	f.Process(0, fig2Stream()[4], c.emit) // B=6, non-matching
	if len(c.out(0))+len(c.out(1)) != 0 {
		t.Error("non-matching tuple must be dropped silently")
	}
}

func TestFilterBindErrors(t *testing.T) {
	f := NewFilter(MustParse("ghost < 3"), false)
	if _, err := f.Bind([]*stream.Schema{fig2Schema}); err == nil {
		t.Error("Bind should fail on unknown column")
	}
	if _, err := f.Bind(nil); err == nil {
		t.Error("Bind should fail on wrong input count")
	}
}

func TestMapProjection(t *testing.T) {
	m, err := NewMap(
		[]string{"A", "twiceB", "isSmall"},
		[]Expr{MustParse("A"), MustParse("B * 2"), MustParse("B < 3")},
	)
	if err != nil {
		t.Fatal(err)
	}
	schemas, err := m.Bind([]*stream.Schema{fig2Schema})
	if err != nil {
		t.Fatal(err)
	}
	out := schemas[0]
	if out.Arity() != 3 || out.Field(1).Kind != stream.KindInt || out.Field(2).Kind != stream.KindBool {
		t.Fatalf("output schema = %s", out)
	}
	c := newCollector()
	m.Process(0, fig2Stream()[0], c.emit) // (A=1, B=2)
	got := c.out(0)[0]
	want := stream.NewTuple(stream.Int(1), stream.Int(4), stream.Bool(true))
	if !got.EqualValues(want) {
		t.Errorf("map output = %v, want %v", got, want)
	}
	if got.Seq != 1 {
		t.Error("map must preserve Seq for HA dependency tracking")
	}
}

func TestMapParseForm(t *testing.T) {
	o := MustBuild(Spec{Kind: "map", Params: map[string]string{
		"exprs": "a=A; sum=(A + B)",
	}})
	out := feed(t, o, fig2Schema, fig2Stream()[:1])
	want := stream.NewTuple(stream.Int(1), stream.Int(3))
	if len(out) != 1 || !out[0].EqualValues(want) {
		t.Errorf("map output = %v", out)
	}
}

func TestMapErrors(t *testing.T) {
	if _, err := NewMap([]string{"a"}, nil); err == nil {
		t.Error("mismatched lists should fail")
	}
	if _, err := Build(Spec{Kind: "map", Params: map[string]string{"exprs": "noequals"}}); err == nil {
		t.Error("missing = should fail")
	}
	if _, err := Build(Spec{Kind: "map", Params: map[string]string{"exprs": "a=((("}}); err == nil {
		t.Error("bad expr should fail")
	}
	if _, err := Build(Spec{Kind: "map", Params: map[string]string{"exprs": " ; "}}); err == nil {
		t.Error("empty exprs should fail")
	}
}

func TestUnionPassThrough(t *testing.T) {
	u := NewUnion(2)
	if _, err := u.Bind([]*stream.Schema{fig2Schema, fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	in := fig2Stream()
	u.Process(0, in[0], c.emit)
	u.Process(1, in[1], c.emit)
	u.Process(0, in[2], c.emit)
	if len(c.out(0)) != 3 {
		t.Fatalf("union emitted %d tuples", len(c.out(0)))
	}
	for i, tp := range c.out(0) {
		if !tp.EqualValues(in[i]) {
			t.Errorf("union reordered or altered tuple %d", i)
		}
	}
}

func TestUnionSchemaChecks(t *testing.T) {
	u := NewUnion(2)
	other := stream.MustSchema("other", stream.Field{Name: "x", Kind: stream.KindString})
	if _, err := u.Bind([]*stream.Schema{fig2Schema, other}); err == nil {
		t.Error("incompatible input schemas should fail")
	}
	if _, err := u.Bind([]*stream.Schema{fig2Schema}); err == nil {
		t.Error("wrong input count should fail")
	}
	if _, err := Build(Spec{Kind: "union", Params: map[string]string{"inputs": "0"}}); err == nil {
		t.Error("union with 0 inputs should fail")
	}
}

func TestUnionDefaultInputs(t *testing.T) {
	o := MustBuild(Spec{Kind: "union"})
	if o.NumIn() != 2 {
		t.Errorf("default union inputs = %d, want 2", o.NumIn())
	}
}
