package op

// Stateful is the optional interface of operators whose internal state
// depends on previously consumed tuples. The high-availability protocol
// (§6.2, footnote) needs it when a flow message passes a box: "if the box
// has state (e.g. an aggregate box), the recorded tuple is the one that
// presently contributes to the state of the box and that has the lowest
// sequence number; if the box is stateless, the recorded tuple is the one
// processed most recently."
//
// EarliestSeq returns the lowest sequence number among tuples presently
// contributing to the operator's state; ok is false when the operator
// holds no state (nothing constrains upstream truncation).
type Stateful interface {
	EarliestSeq() (seq uint64, ok bool)
}

// EarliestSeq implements Stateful for Tumble: the first tuple of the open
// window.
func (tb *Tumble) EarliestSeq() (uint64, bool) {
	if !tb.open {
		return 0, false
	}
	return tb.firstSeq, true
}

// EarliestSeq implements Stateful for WSort: the minimum sequence number
// buffered awaiting emission.
func (w *WSort) EarliestSeq() (uint64, bool) {
	if len(w.buf) == 0 {
		return 0, false
	}
	min := w.buf[0].t.Seq
	for _, e := range w.buf[1:] {
		if e.t.Seq < min {
			min = e.t.Seq
		}
	}
	return min, true
}

// EarliestSeq implements Stateful for XSection: the first tuple of the
// oldest open window across all groups.
func (x *XSection) EarliestSeq() (uint64, bool) {
	var min uint64
	found := false
	for _, g := range x.groups {
		for _, w := range g.wins {
			if !found || w.first.Seq < min {
				min = w.first.Seq
				found = true
			}
		}
	}
	return min, found
}

// EarliestSeq implements Stateful for Join: the minimum sequence number
// buffered on either side.
func (j *Join) EarliestSeq() (uint64, bool) {
	var min uint64
	found := false
	for _, ts := range j.leftBuf {
		for _, t := range ts {
			if !found || t.Seq < min {
				min, found = t.Seq, true
			}
		}
	}
	for _, ts := range j.rightBuf {
		for _, t := range ts {
			if !found || t.Seq < min {
				min, found = t.Seq, true
			}
		}
	}
	return min, found
}

// EarliestSeq implements Stateful for Slide: the minimum sequence number
// still inside any group's trailing window.
func (sl *Slide) EarliestSeq() (uint64, bool) {
	var min uint64
	found := false
	for _, entries := range sl.groups {
		for _, e := range entries {
			if !found || e.seq < min {
				min, found = e.seq, true
			}
		}
	}
	return min, found
}

// EarliestSeq implements Stateful for Resample: the minimum sequence
// number among pending primaries.
func (r *Resample) EarliestSeq() (uint64, bool) {
	var min uint64
	found := false
	for _, p := range r.pending {
		if !found || p.Seq < min {
			min, found = p.Seq, true
		}
	}
	return min, found
}
