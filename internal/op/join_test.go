package op

import (
	"testing"

	"repro/internal/stream"
)

var (
	quoteSchema = stream.MustSchema("quotes",
		stream.Field{Name: "sym", Kind: stream.KindString},
		stream.Field{Name: "px", Kind: stream.KindFloat},
	)
	newsSchema = stream.MustSchema("news",
		stream.Field{Name: "sym", Kind: stream.KindString},
		stream.Field{Name: "headline", Kind: stream.KindString},
	)
)

func quote(ts int64, sym string, px float64) stream.Tuple {
	return stream.Tuple{TS: ts, Vals: []stream.Value{stream.String(sym), stream.Float(px)}}
}

func news(ts int64, sym, h string) stream.Tuple {
	return stream.Tuple{TS: ts, Vals: []stream.Value{stream.String(sym), stream.String(h)}}
}

func boundJoin(t *testing.T, window int64) (*Join, *collector) {
	t.Helper()
	j := NewJoin([]string{"sym"}, []string{"sym"}, window)
	if _, err := j.Bind([]*stream.Schema{quoteSchema, newsSchema}); err != nil {
		t.Fatal(err)
	}
	return j, newCollector()
}

func TestJoinMatchesWithinWindow(t *testing.T) {
	j, c := boundJoin(t, 10)
	j.Process(0, quote(100, "IBM", 50), c.emit)
	j.Process(1, news(105, "IBM", "up"), c.emit)
	out := c.out(0)
	if len(out) != 1 {
		t.Fatalf("got %d join results", len(out))
	}
	want := stream.NewTuple(stream.String("IBM"), stream.Float(50),
		stream.String("IBM"), stream.String("up"))
	if !out[0].EqualValues(want) {
		t.Errorf("join output = %v", out[0])
	}
	if out[0].TS != 105 {
		t.Errorf("join TS = %d, want max(100,105)", out[0].TS)
	}
}

func TestJoinRespectsWindow(t *testing.T) {
	j, c := boundJoin(t, 10)
	j.Process(0, quote(100, "IBM", 50), c.emit)
	j.Process(1, news(200, "IBM", "late"), c.emit)
	if len(c.out(0)) != 0 {
		t.Error("out-of-window pair must not join")
	}
}

func TestJoinKeyMismatch(t *testing.T) {
	j, c := boundJoin(t, 10)
	j.Process(0, quote(100, "IBM", 50), c.emit)
	j.Process(1, news(100, "AAPL", "x"), c.emit)
	if len(c.out(0)) != 0 {
		t.Error("different keys must not join")
	}
}

func TestJoinSymmetric(t *testing.T) {
	// Match regardless of which side arrives first.
	j, c := boundJoin(t, 10)
	j.Process(1, news(100, "IBM", "first"), c.emit)
	j.Process(0, quote(102, "IBM", 50), c.emit)
	if len(c.out(0)) != 1 {
		t.Fatal("right-then-left arrival should still join")
	}
}

func TestJoinMultipleMatches(t *testing.T) {
	j, c := boundJoin(t, 10)
	j.Process(0, quote(100, "IBM", 50), c.emit)
	j.Process(0, quote(101, "IBM", 51), c.emit)
	j.Process(1, news(102, "IBM", "x"), c.emit)
	if len(c.out(0)) != 2 {
		t.Fatalf("got %d results, want 2 (one per buffered left)", len(c.out(0)))
	}
}

func TestJoinSelectivityGreaterThanOne(t *testing.T) {
	// §5.1: a join can produce more tuples than it consumes. 3 lefts + 3
	// rights with one hot key -> 9 outputs from 6 inputs.
	j, c := boundJoin(t, 1000)
	for i := int64(0); i < 3; i++ {
		j.Process(0, quote(100+i, "HOT", float64(i)), c.emit)
	}
	for i := int64(0); i < 3; i++ {
		j.Process(1, news(100+i, "HOT", "h"), c.emit)
	}
	if len(c.out(0)) != 9 {
		t.Errorf("got %d outputs, want 9", len(c.out(0)))
	}
}

func TestJoinPrunesOldState(t *testing.T) {
	j, c := boundJoin(t, 10)
	for i := int64(0); i < 100; i++ {
		j.Process(0, quote(i*100, "IBM", 1), c.emit)
		j.Process(1, news(i*100, "AAPL", "x"), c.emit)
	}
	// After interleaved advancing streams, both buffers should hold only
	// recent tuples, not all 100.
	total := 0
	for _, ts := range j.leftBuf {
		total += len(ts)
	}
	for _, ts := range j.rightBuf {
		total += len(ts)
	}
	if total > 4 {
		t.Errorf("join buffers retain %d tuples; pruning failed", total)
	}
}

func TestJoinOutputSchemaCollisions(t *testing.T) {
	j := NewJoin([]string{"sym"}, []string{"sym"}, 5)
	schemas, err := j.Bind([]*stream.Schema{quoteSchema, newsSchema})
	if err != nil {
		t.Fatal(err)
	}
	out := schemas[0]
	if out.Index("sym") < 0 || out.Index("sym_r") < 0 {
		t.Fatalf("collision rename missing: %s", out)
	}
}

func TestJoinValidation(t *testing.T) {
	if _, err := Build(Spec{Kind: "join", Params: map[string]string{
		"leftkey": "a,b", "rightkey": "a", "window": "5",
	}}); err == nil {
		t.Error("key arity mismatch should fail")
	}
	if _, err := Build(Spec{Kind: "join", Params: map[string]string{
		"leftkey": "a", "rightkey": "a", "window": "-1",
	}}); err == nil {
		t.Error("negative window should fail")
	}
}

func TestResampleInterpolation(t *testing.T) {
	r := NewResample("px")
	if _, err := r.Bind([]*stream.Schema{newsSchema, quoteSchema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	r.Process(0, news(150, "IBM", "mid"), c.emit) // primary at t=150
	if len(c.out(0)) != 0 {
		t.Fatal("primary must wait for reference coverage")
	}
	r.Process(1, quote(100, "IBM", 10), c.emit)
	if len(c.out(0)) != 0 {
		t.Fatal("reference has not passed the primary timestamp yet")
	}
	r.Process(1, quote(200, "IBM", 20), c.emit)
	out := c.out(0)
	if len(out) != 1 {
		t.Fatalf("got %d outputs", len(out))
	}
	if got := out[0].Field(2).AsFloat(); got != 15 {
		t.Errorf("interpolated value = %g, want 15 (midpoint)", got)
	}
}

func TestResampleExactAndClamped(t *testing.T) {
	r := NewResample("px")
	if _, err := r.Bind([]*stream.Schema{newsSchema, quoteSchema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	r.Process(1, quote(100, "IBM", 10), c.emit)
	r.Process(1, quote(200, "IBM", 20), c.emit)
	r.Process(0, news(100, "IBM", "exact"), c.emit)
	if got := c.out(0)[0].Field(2).AsFloat(); got != 10 {
		t.Errorf("exact-timestamp value = %g, want 10", got)
	}
	r.Process(0, news(50, "IBM", "before"), c.emit)
	if got := c.out(0)[1].Field(2).AsFloat(); got != 10 {
		t.Errorf("before-range value = %g, want clamp to 10", got)
	}
}

func TestResampleFlushExtrapolates(t *testing.T) {
	r := NewResample("px")
	if _, err := r.Bind([]*stream.Schema{newsSchema, quoteSchema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	r.Process(1, quote(100, "IBM", 10), c.emit)
	r.Process(0, news(500, "IBM", "future"), c.emit)
	if len(c.out(0)) != 0 {
		t.Fatal("uncovered primary should wait")
	}
	r.Flush(c.emit)
	out := c.out(0)
	if len(out) != 1 || out[0].Field(2).AsFloat() != 10 {
		t.Fatalf("flush should extrapolate the last reference: %v", out)
	}
}

func TestResampleNoReferenceDropsOnFlush(t *testing.T) {
	r := NewResample("px")
	if _, err := r.Bind([]*stream.Schema{newsSchema, quoteSchema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	r.Process(0, news(100, "IBM", "orphan"), c.emit)
	r.Flush(c.emit)
	if len(c.out(0)) != 0 {
		t.Error("with no reference stream there is nothing to resample against")
	}
}

func TestResampleSchemaRename(t *testing.T) {
	// Primary already has a field named like the reference field.
	r := NewResample("px")
	schemas, err := r.Bind([]*stream.Schema{quoteSchema, quoteSchema})
	if err != nil {
		t.Fatal(err)
	}
	if schemas[0].Index("px_rs") < 0 {
		t.Fatalf("expected px_rs rename in %s", schemas[0])
	}
}
