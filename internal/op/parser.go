package op

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"

	"repro/internal/stream"
)

// Parse converts the concrete expression syntax back into an Expr tree. It
// is the inverse of Expr.String and enables remote definition (§4.4): a
// participant ships the textual form of an operator's parameters and the
// receiving participant instantiates the operator from its own pre-defined
// set.
//
// Grammar (usual precedence, lowest first):
//
//	expr   := or
//	or     := and ("||" and)*
//	and    := cmp ("&&" cmp)*
//	cmp    := sum (("=="|"!="|"<="|">="|"<"|">") sum)?
//	sum    := term (("+"|"-") term)*
//	term   := unary (("*"|"/"|"%") unary)*
//	unary  := "!" unary | "-" unary | factor
//	factor := NUMBER | STRING | "true" | "false" | "null"
//	        | "hash" "(" ident ("," ident)* ")"
//	        | ident | "(" expr ")"
func Parse(src string) (Expr, error) {
	p := &parser{toks: lex(src)}
	e, err := p.parseExpr()
	if err != nil {
		return nil, fmt.Errorf("parse %q: %w", src, err)
	}
	if !p.atEOF() {
		return nil, fmt.Errorf("parse %q: trailing input at %q", src, p.peek().text)
	}
	return e, nil
}

// MustParse is Parse that panics on error; for compiled-in plans and tests.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokOp // punctuation / operator
	tokErr
)

type token struct {
	kind tokKind
	text string
}

func lex(src string) []token {
	var toks []token
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case unicode.IsLetter(rune(c)) || c == '_':
			j := i
			for j < len(src) && (unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j])) || src[j] == '_' || src[j] == '.') {
				j++
			}
			toks = append(toks, token{tokIdent, src[i:j]})
			i = j
		case unicode.IsDigit(rune(c)):
			j := i
			for j < len(src) && (unicode.IsDigit(rune(src[j])) || src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
				((src[j] == '+' || src[j] == '-') && j > i && (src[j-1] == 'e' || src[j-1] == 'E'))) {
				j++
			}
			toks = append(toks, token{tokNumber, src[i:j]})
			i = j
		case c == '"':
			q, err := strconv.QuotedPrefix(src[i:])
			if err != nil {
				toks = append(toks, token{tokErr, src[i:]})
				return toks
			}
			unq, err := strconv.Unquote(q)
			if err != nil {
				toks = append(toks, token{tokErr, q})
				return toks
			}
			toks = append(toks, token{tokString, unq})
			i += len(q)
		default:
			two := ""
			if i+1 < len(src) {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "<=", ">=", "&&", "||":
				toks = append(toks, token{tokOp, two})
				i += 2
				continue
			}
			switch c {
			case '<', '>', '!', '(', ')', '+', '-', '*', '/', '%', ',':
				toks = append(toks, token{tokOp, string(c)})
				i++
			default:
				toks = append(toks, token{tokErr, string(c)})
				return toks
			}
		}
	}
	toks = append(toks, token{tokEOF, ""})
	return toks
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) next() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }

func (p *parser) acceptOp(ops ...string) (string, bool) {
	t := p.peek()
	if t.kind != tokOp {
		return "", false
	}
	for _, o := range ops {
		if t.text == o {
			p.next()
			return o, true
		}
	}
	return "", false
}

func (p *parser) expectOp(o string) error {
	if _, ok := p.acceptOp(o); !ok {
		return fmt.Errorf("expected %q, found %q", o, p.peek().text)
	}
	return nil
}

func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("||"); !ok {
			return l, nil
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = NewOr(l, r)
	}
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for {
		if _, ok := p.acceptOp("&&"); !ok {
			return l, nil
		}
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = NewAnd(l, r)
	}
}

var cmpOps = map[string]CmpOp{
	"==": EQ, "!=": NE, "<": LT, "<=": LE, ">": GT, ">=": GE,
}

func (p *parser) parseCmp() (Expr, error) {
	l, err := p.parseSum()
	if err != nil {
		return nil, err
	}
	if o, ok := p.acceptOp("==", "!=", "<=", ">=", "<", ">"); ok {
		r, err := p.parseSum()
		if err != nil {
			return nil, err
		}
		return NewCmp(cmpOps[o], l, r), nil
	}
	return l, nil
}

func (p *parser) parseSum() (Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		o, ok := p.acceptOp("+", "-")
		if !ok {
			return l, nil
		}
		r, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		if o == "+" {
			l = NewArith(Add, l, r)
		} else {
			l = NewArith(Sub, l, r)
		}
	}
}

func (p *parser) parseTerm() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		o, ok := p.acceptOp("*", "/", "%")
		if !ok {
			return l, nil
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		switch o {
		case "*":
			l = NewArith(Mul, l, r)
		case "/":
			l = NewArith(Div, l, r)
		default:
			l = NewArith(Mod, l, r)
		}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if _, ok := p.acceptOp("!"); ok {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return NewNot(e), nil
	}
	if _, ok := p.acceptOp("-"); ok {
		e, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		// Fold negation of numeric literals so -42 stays a constant and
		// Expr.String round-trips stably.
		if c, ok := e.(*Const); ok {
			switch c.Val.Kind() {
			case stream.KindInt:
				return NewConst(stream.Int(-c.Val.AsInt())), nil
			case stream.KindFloat:
				return NewConst(stream.Float(-c.Val.AsFloat())), nil
			}
		}
		return NewArith(Sub, NewConst(stream.Int(0)), e), nil
	}
	return p.parseFactor()
}

func (p *parser) parseFactor() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("bad number %q: %w", t.text, err)
			}
			return NewConst(stream.Float(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q: %w", t.text, err)
		}
		return NewConst(stream.Int(i)), nil
	case tokString:
		p.next()
		return NewConst(stream.String(t.text)), nil
	case tokIdent:
		p.next()
		switch t.text {
		case "true":
			return NewConst(stream.Bool(true)), nil
		case "false":
			return NewConst(stream.Bool(false)), nil
		case "null":
			return NewConst(stream.Null()), nil
		case "hash":
			return p.parseHashCall()
		default:
			return NewCol(t.text), nil
		}
	case tokOp:
		if t.text == "(" {
			p.next()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokErr:
		return nil, fmt.Errorf("bad input at %q", t.text)
	}
	return nil, fmt.Errorf("unexpected token %q", t.text)
}

func (p *parser) parseHashCall() (Expr, error) {
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		t := p.next()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("hash: expected column name, found %q", t.text)
		}
		cols = append(cols, t.text)
		if _, ok := p.acceptOp(","); ok {
			continue
		}
		break
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return NewHashCall(cols...), nil
}
