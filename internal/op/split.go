package op

import "fmt"

// SplitMergeTimeout is the WSort timeout used inside a split aggregate's
// merge network. The paper's worked example assumes "a large enough
// timeout argument" so the merge sort only releases tuples when the
// network drains; 2^50 ns (~13 days of wall clock) is far beyond any
// deployment's split lifetime.
const SplitMergeTimeout = int64(1) << 50

// SplitProfile is an operator's contract for key-partitioned parallelism
// (§5.1): how its input may be sharded across N replica instances and how
// the replicas' interleaved output is folded back into a stream
// equivalent to the unsplit operator's.
type SplitProfile struct {
	// Key lists the input columns that must stay together on one
	// replica: all tuples sharing the key columns' values are routed to
	// the same shard, so per-key state (a window run, a sort bucket)
	// never straddles replicas. Empty means the operator is stateless
	// per tuple and any sharding — including round-robin — is valid.
	Key []string
	// Merge is the chain of single-input operators, in flow order,
	// applied to the interleaved replica output. Empty means plain
	// interleaving suffices (the Union of Fig 5 is implicit in queue
	// delivery). A Tumble split carries the Fig 6 merge network: a WSort
	// on the group-by attributes with a drain-scale timeout, then a
	// Tumble applying the combination function such that
	// agg(S) = combine(agg(S1), ..., agg(Sn)).
	Merge []Spec
}

// Splitter is the optional interface of operators that support the split
// transformation. An operator that does not implement it cannot be
// split; one that does may still refuse for a specific configuration
// (a dual-output Filter, a Tumble over a non-combinable aggregate).
type Splitter interface {
	SplitProfile() (SplitProfile, error)
}

// SplitProfileFor builds the spec's operator and asks it for its split
// profile. It is the single source of truth for splittability: the
// loadmgr network rewrite and the engine's runtime partitioning both
// consult it.
func SplitProfileFor(spec Spec) (SplitProfile, error) {
	inst, err := Build(spec)
	if err != nil {
		return SplitProfile{}, err
	}
	sp, ok := inst.(Splitter)
	if !ok {
		return SplitProfile{}, fmt.Errorf("operator kind %q is not splittable", spec.Kind)
	}
	return sp.SplitProfile()
}

// SplitProfile implements Splitter: a single-output Filter is stateless,
// so any sharding works and no merge is needed (Fig 5). The dual-output
// form cannot be split — its false port is a second result stream the
// merge machinery has no way to reunite.
func (f *Filter) SplitProfile() (SplitProfile, error) {
	if f.dual {
		return SplitProfile{}, fmt.Errorf("filter: dual-output filter cannot be split")
	}
	return SplitProfile{}, nil
}

// SplitProfile implements Splitter: Map is stateless per tuple.
func (m *Map) SplitProfile() (SplitProfile, error) { return SplitProfile{}, nil }

// SplitProfile implements Splitter: Tumble shards on its group-by
// attributes so every window run stays on one replica, and merges with
// the Fig 6 network — WSort on the group-by columns (drain-release
// timeout) followed by a Tumble of the combination function over the
// partial results. Aggregates without a combination function (avg,
// stddev) refuse to split.
func (tb *Tumble) SplitProfile() (SplitProfile, error) {
	if !tb.agg.Combinable() {
		return SplitProfile{}, fmt.Errorf("tumble: aggregate %q has no combination function; Tumble cannot be split (§5.1)", tb.agg.Name())
	}
	groupBy := join(tb.groupBy, ",")
	return SplitProfile{
		Key: tb.GroupBy(),
		Merge: []Spec{
			{Kind: KindWSort, Params: map[string]string{
				"attrs":   groupBy,
				"timeout": fmt.Sprint(SplitMergeTimeout),
			}},
			{Kind: KindTumble, Params: map[string]string{
				"agg":     tb.agg.Combine().Name(),
				"on":      ResultField,
				"groupby": groupBy,
			}},
		},
	}, nil
}

// SplitProfile implements Splitter: WSort shards on its sort attributes
// (equal-key tuples stay on one replica, preserving their stable arrival
// order) and re-sorts the interleaved replica output with a second WSort
// of the same spec.
func (w *WSort) SplitProfile() (SplitProfile, error) {
	return SplitProfile{
		Key:   append([]string(nil), w.attrs...),
		Merge: []Spec{w.Spec()},
	}, nil
}
