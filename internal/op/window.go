package op

import (
	"fmt"

	"repro/internal/stream"
)

// KindXSection is the registry kind of the XSection operator.
const KindXSection = "xsection"

// XSection is Aurora's cross-section windowed aggregate (mentioned in
// §2.2; semantics per the Aurora system description [2,4]): it applies an
// aggregate to fixed-size, possibly overlapping count windows over each
// group. A new window opens every advance tuples; each window closes — and
// emits — after exactly size tuples. advance == size degenerates to
// non-overlapping count windows. Incomplete windows are discarded at
// flush, matching the paper's "emit only when a window is full" setting.
//
// Spec parameters:
//
//	agg      aggregate registry name (required)
//	on       input expression (required)
//	groupby  comma-separated group-by attributes (required)
//	size     window size in tuples (required, > 0)
//	advance  window advance in tuples (default = size)
type XSection struct {
	base
	spec    Spec
	agg     Aggregate
	on      Expr
	groupBy []string
	size    int
	advance int

	groupIdx []int
	groups   map[string]*xsGroup
}

type xsGroup struct {
	vals   []stream.Value // group-by values
	opened int64          // tuples seen in this group
	wins   []xsWindow
}

type xsWindow struct {
	acc   Accumulator
	count int
	first stream.Tuple
}

// NewXSection builds an XSection operator.
func NewXSection(agg Aggregate, on Expr, groupBy []string, size, advance int) *XSection {
	spec := Spec{Kind: KindXSection, Params: map[string]string{
		"agg":     agg.Name(),
		"on":      on.String(),
		"groupby": join(groupBy, ","),
		"size":    fmt.Sprint(size),
		"advance": fmt.Sprint(advance),
	}}
	return &XSection{spec: spec, agg: agg, on: on, groupBy: groupBy, size: size, advance: advance}
}

func buildXSection(s Spec) (Operator, error) {
	aggName, err := param(s, "agg")
	if err != nil {
		return nil, err
	}
	agg, err := LookupAggregate(aggName)
	if err != nil {
		return nil, fmt.Errorf("xsection: %w", err)
	}
	onSrc, err := param(s, "on")
	if err != nil {
		return nil, err
	}
	on, err := Parse(onSrc)
	if err != nil {
		return nil, fmt.Errorf("xsection: %w", err)
	}
	groupBy, err := paramCols(s, "groupby")
	if err != nil {
		return nil, err
	}
	size, err := paramInt(s, "size")
	if err != nil {
		return nil, err
	}
	if size <= 0 {
		return nil, fmt.Errorf("xsection: size must be positive")
	}
	advance, err := paramIntDefault(s, "advance", size)
	if err != nil {
		return nil, err
	}
	if advance <= 0 {
		return nil, fmt.Errorf("xsection: advance must be positive")
	}
	return &XSection{spec: s.Clone(), agg: agg, on: on, groupBy: groupBy,
		size: int(size), advance: int(advance)}, nil
}

// Spec implements Operator.
func (x *XSection) Spec() Spec { return x.spec.Clone() }

// NumIn implements Operator.
func (x *XSection) NumIn() int { return 1 }

// NumOut implements Operator.
func (x *XSection) NumOut() int { return 1 }

// Bind implements Operator.
func (x *XSection) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("xsection: want 1 input schema, got %d", len(in))
	}
	idx, err := in[0].Indices(x.groupBy...)
	if err != nil {
		return nil, fmt.Errorf("xsection: %w", err)
	}
	x.groupIdx = idx
	if err := x.on.Bind(in[0]); err != nil {
		return nil, fmt.Errorf("xsection: %w", err)
	}
	x.groups = make(map[string]*xsGroup)
	fields := make([]stream.Field, 0, len(idx)+1)
	for _, i := range idx {
		fields = append(fields, in[0].Field(i))
	}
	fields = append(fields, stream.Field{
		Name: ResultField,
		Kind: x.agg.ResultKind(InferKind(x.on, in[0])),
	})
	out, err := stream.NewSchema(in[0].Name()+".xsection", fields...)
	if err != nil {
		return nil, fmt.Errorf("xsection: %w", err)
	}
	return []*stream.Schema{out}, nil
}

// Process implements Operator.
func (x *XSection) Process(_ int, t stream.Tuple, emit Emit) {
	key := t.KeyOf(x.groupIdx)
	g := x.groups[key]
	if g == nil {
		vals := make([]stream.Value, len(x.groupIdx))
		for i, idx := range x.groupIdx {
			vals[i] = t.Field(idx)
		}
		g = &xsGroup{vals: vals}
		x.groups[key] = g
	}
	if g.opened%int64(x.advance) == 0 {
		g.wins = append(g.wins, xsWindow{acc: x.agg.New(), first: t})
	}
	g.opened++
	v := x.on.Eval(t)
	keep := g.wins[:0]
	for _, w := range g.wins {
		w.acc.Add(v)
		w.count++
		if w.count >= x.size {
			out := make([]stream.Value, 0, len(g.vals)+1)
			out = append(out, g.vals...)
			out = append(out, w.acc.Result())
			emit(0, stream.Tuple{Seq: w.first.Seq, TS: w.first.TS, Vals: out})
		} else {
			keep = append(keep, w)
		}
	}
	g.wins = keep
}

// KindSlide is the registry kind of the Slide operator.
const KindSlide = "slide"

// Slide is Aurora's value-based sliding-window aggregate (mentioned in
// §2.2): for each input tuple it emits the aggregate over every tuple of
// the same group whose order attribute lies within the trailing window
// (order - range, order]. The order attribute is assumed non-decreasing
// within each group, which is what lets old tuples be pruned.
//
// Spec parameters:
//
//	agg      aggregate registry name (required)
//	on       input expression (required)
//	groupby  comma-separated group-by attributes (required)
//	order    order attribute name (required, numeric, non-decreasing)
//	range    trailing window width in order units (required, > 0)
type Slide struct {
	base
	spec     Spec
	agg      Aggregate
	on       Expr
	groupBy  []string
	orderCol string
	width    float64

	groupIdx []int
	orderIdx int
	groups   map[string][]slideEntry
}

type slideEntry struct {
	order float64
	val   stream.Value
	seq   uint64
}

// NewSlide builds a Slide operator.
func NewSlide(agg Aggregate, on Expr, groupBy []string, orderCol string, width float64) *Slide {
	spec := Spec{Kind: KindSlide, Params: map[string]string{
		"agg":     agg.Name(),
		"on":      on.String(),
		"groupby": join(groupBy, ","),
		"order":   orderCol,
		"range":   fmt.Sprint(width),
	}}
	return &Slide{spec: spec, agg: agg, on: on, groupBy: groupBy, orderCol: orderCol, width: width}
}

func buildSlide(s Spec) (Operator, error) {
	aggName, err := param(s, "agg")
	if err != nil {
		return nil, err
	}
	agg, err := LookupAggregate(aggName)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	onSrc, err := param(s, "on")
	if err != nil {
		return nil, err
	}
	on, err := Parse(onSrc)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	groupBy, err := paramCols(s, "groupby")
	if err != nil {
		return nil, err
	}
	orderCol, err := param(s, "order")
	if err != nil {
		return nil, err
	}
	widthStr, err := param(s, "range")
	if err != nil {
		return nil, err
	}
	var width float64
	if _, err := fmt.Sscanf(widthStr, "%g", &width); err != nil || width <= 0 {
		return nil, fmt.Errorf("slide: bad range %q", widthStr)
	}
	return &Slide{spec: s.Clone(), agg: agg, on: on, groupBy: groupBy,
		orderCol: orderCol, width: width}, nil
}

// Spec implements Operator.
func (sl *Slide) Spec() Spec { return sl.spec.Clone() }

// NumIn implements Operator.
func (sl *Slide) NumIn() int { return 1 }

// NumOut implements Operator.
func (sl *Slide) NumOut() int { return 1 }

// Bind implements Operator.
func (sl *Slide) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 1 {
		return nil, fmt.Errorf("slide: want 1 input schema, got %d", len(in))
	}
	idx, err := in[0].Indices(sl.groupBy...)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	sl.groupIdx = idx
	oi := in[0].Index(sl.orderCol)
	if oi < 0 {
		return nil, fmt.Errorf("slide: no order attribute %q in %s", sl.orderCol, in[0])
	}
	sl.orderIdx = oi
	if err := sl.on.Bind(in[0]); err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	sl.groups = make(map[string][]slideEntry)
	fields := make([]stream.Field, 0, len(idx)+2)
	for _, i := range idx {
		fields = append(fields, in[0].Field(i))
	}
	fields = append(fields, in[0].Field(oi))
	fields = append(fields, stream.Field{
		Name: ResultField,
		Kind: sl.agg.ResultKind(InferKind(sl.on, in[0])),
	})
	out, err := stream.NewSchema(in[0].Name()+".slide", fields...)
	if err != nil {
		return nil, fmt.Errorf("slide: %w", err)
	}
	return []*stream.Schema{out}, nil
}

// Process implements Operator.
func (sl *Slide) Process(_ int, t stream.Tuple, emit Emit) {
	key := t.KeyOf(sl.groupIdx)
	order := t.Field(sl.orderIdx).AsFloat()
	entries := sl.groups[key]
	entries = append(entries, slideEntry{order: order, val: sl.on.Eval(t), seq: t.Seq})
	// Prune entries that fell out of the trailing window.
	lo := 0
	for lo < len(entries) && entries[lo].order <= order-sl.width {
		lo++
	}
	entries = entries[lo:]
	sl.groups[key] = entries

	acc := sl.agg.New()
	for _, e := range entries {
		acc.Add(e.val)
	}
	vals := make([]stream.Value, 0, len(sl.groupIdx)+2)
	for _, idx := range sl.groupIdx {
		vals = append(vals, t.Field(idx))
	}
	vals = append(vals, t.Field(sl.orderIdx), acc.Result())
	emit(0, stream.Tuple{Seq: t.Seq, TS: t.TS, Vals: vals})
}

func init() {
	RegisterKind(KindXSection, buildXSection)
	RegisterKind(KindSlide, buildSlide)
}
