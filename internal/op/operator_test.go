package op

import (
	"strings"
	"testing"

	"repro/internal/stream"
)

// collector gathers emitted tuples per port.
type collector struct {
	ports map[int][]stream.Tuple
}

func newCollector() *collector { return &collector{ports: map[int][]stream.Tuple{}} }

func (c *collector) emit(port int, t stream.Tuple) {
	c.ports[port] = append(c.ports[port], t)
}

func (c *collector) out(port int) []stream.Tuple { return c.ports[port] }

// feed pushes tuples into port 0 of a bound operator and returns port 0
// output after a flush.
func feed(t *testing.T, o Operator, in *stream.Schema, tuples []stream.Tuple) []stream.Tuple {
	t.Helper()
	schemas := make([]*stream.Schema, o.NumIn())
	for i := range schemas {
		schemas[i] = in
	}
	if _, err := o.Bind(schemas); err != nil {
		t.Fatalf("Bind: %v", err)
	}
	c := newCollector()
	for _, tp := range tuples {
		o.Process(0, tp, c.emit)
	}
	o.Flush(c.emit)
	return c.out(0)
}

func TestSpecString(t *testing.T) {
	s := Spec{Kind: "filter", Params: map[string]string{"predicate": "(B < 3)"}}
	if got := s.String(); got != "filter{predicate: (B < 3)}" {
		t.Errorf("String = %q", got)
	}
	bare := Spec{Kind: "union"}
	if bare.String() != "union" {
		t.Errorf("bare String = %q", bare.String())
	}
}

func TestSpecClone(t *testing.T) {
	s := Spec{Kind: "filter", Params: map[string]string{"predicate": "true"}}
	c := s.Clone()
	c.Params["predicate"] = "false"
	if s.Params["predicate"] != "true" {
		t.Error("Clone must not alias params")
	}
}

func TestBuildUnknownKind(t *testing.T) {
	if _, err := Build(Spec{Kind: "teleport"}); err == nil {
		t.Error("Build of unknown kind should fail")
	}
}

func TestKindsRegistry(t *testing.T) {
	kinds := Kinds()
	want := []string{"filter", "join", "map", "resample", "slide", "tumble", "union", "wsort", "xsection"}
	got := strings.Join(kinds, ",")
	for _, w := range want {
		if !strings.Contains(got, w) {
			t.Errorf("registry missing kind %q (have %v)", w, kinds)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate RegisterKind should panic")
		}
	}()
	RegisterKind("filter", buildFilter)
}

// TestSpecRoundTripAllKinds builds each operator from a constructor,
// serializes via Spec, rebuilds via Build, and checks the rebuilt Spec is
// identical. This is the invariant remote definition (§4.4) relies on.
func TestSpecRoundTripAllKinds(t *testing.T) {
	m, err := NewMap([]string{"x"}, []Expr{MustParse("A + 1")})
	if err != nil {
		t.Fatal(err)
	}
	ops := []Operator{
		NewFilter(MustParse("B < 3"), true),
		m,
		NewUnion(3),
		NewWSort([]string{"A"}, 1000),
		NewTumble(Cnt, NewCol("B"), []string{"A"}),
		NewXSection(Sum, NewCol("B"), []string{"A"}, 4, 2),
		NewSlide(Max, NewCol("B"), []string{"A"}, "B", 10),
		NewJoin([]string{"A"}, []string{"A"}, 100),
		NewResample("price"),
	}
	for _, o := range ops {
		spec := o.Spec()
		rebuilt, err := Build(spec)
		if err != nil {
			t.Fatalf("Build(%s): %v", spec, err)
		}
		if rebuilt.Spec().String() != spec.String() {
			t.Errorf("spec round trip: %s -> %s", spec, rebuilt.Spec())
		}
		if rebuilt.NumIn() != o.NumIn() || rebuilt.NumOut() != o.NumOut() {
			t.Errorf("%s: port counts changed across rebuild", spec.Kind)
		}
	}
}

func TestParamHelpers(t *testing.T) {
	s := Spec{Kind: "k", Params: map[string]string{
		"i": "42", "b": "true", "cols": "a, b ,c", "badint": "x", "badbool": "y",
	}}
	if v, err := paramInt(s, "i"); err != nil || v != 42 {
		t.Errorf("paramInt = %d, %v", v, err)
	}
	if _, err := paramInt(s, "badint"); err == nil {
		t.Error("paramInt should fail on non-integer")
	}
	if _, err := paramInt(s, "missing"); err == nil {
		t.Error("paramInt should fail on missing key")
	}
	if v, err := paramIntDefault(s, "missing", 7); err != nil || v != 7 {
		t.Errorf("paramIntDefault = %d, %v", v, err)
	}
	if v, err := paramBool(s, "b"); err != nil || !v {
		t.Errorf("paramBool = %v, %v", v, err)
	}
	if v, err := paramBool(s, "missing"); err != nil || v {
		t.Errorf("paramBool default = %v, %v", v, err)
	}
	if _, err := paramBool(s, "badbool"); err == nil {
		t.Error("paramBool should fail on junk")
	}
	cols, err := paramCols(s, "cols")
	if err != nil || len(cols) != 3 || cols[1] != "b" {
		t.Errorf("paramCols = %v, %v", cols, err)
	}
}
