package op

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/stream"
)

func TestWSortFlushSortsEverything(t *testing.T) {
	w := NewWSort([]string{"A"}, 1_000_000) // "large enough timeout"
	in := []stream.Tuple{
		stream.NewTuple(stream.Int(3), stream.Int(0)),
		stream.NewTuple(stream.Int(1), stream.Int(1)),
		stream.NewTuple(stream.Int(2), stream.Int(2)),
		stream.NewTuple(stream.Int(1), stream.Int(3)),
	}
	out := feed(t, w, fig2Schema, in)
	if len(out) != 4 {
		t.Fatalf("got %d tuples", len(out))
	}
	wantA := []int64{1, 1, 2, 3}
	for i, tp := range out {
		if tp.Field(0).AsInt() != wantA[i] {
			t.Fatalf("position %d: A=%d, want %d\n%s", i, tp.Field(0).AsInt(), wantA[i], stream.FormatTuples(out))
		}
	}
	// Stability: the two A=1 tuples keep arrival order (B=1 then B=3).
	if out[0].Field(1).AsInt() != 1 || out[1].Field(1).AsInt() != 3 {
		t.Error("WSort flush must be stable within equal keys")
	}
}

func TestWSortTimeoutEmitsMinimum(t *testing.T) {
	w := NewWSort([]string{"A"}, 10)
	if _, err := w.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	w.Advance(0, c.emit) // arms the deadline at t=10
	w.Process(0, stream.NewTuple(stream.Int(5), stream.Int(0)), c.emit)
	w.Process(0, stream.NewTuple(stream.Int(2), stream.Int(1)), c.emit)
	if len(c.out(0)) != 0 {
		t.Fatal("nothing should be emitted before the timeout")
	}
	w.Advance(10, c.emit)
	out := c.out(0)
	if len(out) != 1 || out[0].Field(0).AsInt() != 2 {
		t.Fatalf("timeout should emit the minimum-key tuple; got %v", out)
	}
	// The next period emits the next minimum.
	w.Advance(20, c.emit)
	out = c.out(0)
	if len(out) != 2 || out[1].Field(0).AsInt() != 5 {
		t.Fatalf("second timeout output wrong: %v", out)
	}
	// Empty buffer: advancing past further deadlines emits nothing.
	w.Advance(100, c.emit)
	if len(c.out(0)) != 2 {
		t.Error("empty-buffer timeouts must not emit")
	}
}

func TestWSortLossyDiscard(t *testing.T) {
	// A tuple arriving after a later tuple (in sort order) has been
	// emitted must be discarded (§2.2 footnote).
	w := NewWSort([]string{"A"}, 10)
	if _, err := w.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	w.Advance(0, c.emit)
	w.Process(0, stream.NewTuple(stream.Int(5), stream.Int(0)), c.emit)
	w.Advance(10, c.emit) // emits A=5
	w.Process(0, stream.NewTuple(stream.Int(3), stream.Int(1)), c.emit)
	w.Flush(c.emit)
	out := c.out(0)
	if len(out) != 1 {
		t.Fatalf("late tuple should be dropped; out=%v", out)
	}
	if w.Lost() != 1 {
		t.Errorf("Lost = %d, want 1", w.Lost())
	}
	// Equal keys are not "later" and must not be dropped.
	w.Process(0, stream.NewTuple(stream.Int(5), stream.Int(2)), c.emit)
	w.Flush(c.emit)
	if len(c.out(0)) != 2 {
		t.Error("equal-key arrival after emission must be kept")
	}
}

func TestWSortMaxBufForcesEmission(t *testing.T) {
	o := MustBuild(Spec{Kind: "wsort", Params: map[string]string{
		"attrs": "A", "timeout": "1000000", "maxbuf": "2",
	}})
	if _, err := o.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	o.Process(0, stream.NewTuple(stream.Int(3), stream.Int(0)), c.emit)
	o.Process(0, stream.NewTuple(stream.Int(1), stream.Int(1)), c.emit)
	o.Process(0, stream.NewTuple(stream.Int(2), stream.Int(2)), c.emit)
	if len(c.out(0)) != 1 || c.out(0)[0].Field(0).AsInt() != 1 {
		t.Fatalf("overflow should force the minimum out: %v", c.out(0))
	}
}

func TestWSortMultiAttribute(t *testing.T) {
	w := NewWSort([]string{"A", "B"}, 1_000_000)
	in := []stream.Tuple{
		stream.NewTuple(stream.Int(2), stream.Int(1)),
		stream.NewTuple(stream.Int(1), stream.Int(9)),
		stream.NewTuple(stream.Int(1), stream.Int(4)),
	}
	out := feed(t, w, fig2Schema, in)
	want := [][2]int64{{1, 4}, {1, 9}, {2, 1}}
	for i, tp := range out {
		if tp.Field(0).AsInt() != want[i][0] || tp.Field(1).AsInt() != want[i][1] {
			t.Fatalf("order wrong:\n%s", stream.FormatTuples(out))
		}
	}
}

func TestWSortRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(200)
		in := make([]stream.Tuple, n)
		keys := make([]int64, n)
		for i := range in {
			k := int64(rng.Intn(50))
			keys[i] = k
			in[i] = stream.NewTuple(stream.Int(k), stream.Int(int64(i)))
		}
		w := NewWSort([]string{"A"}, 1_000_000)
		out := feed(t, w, fig2Schema, in)
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		if len(out) != n {
			t.Fatalf("trial %d: lost tuples without emission", trial)
		}
		for i, tp := range out {
			if tp.Field(0).AsInt() != keys[i] {
				t.Fatalf("trial %d: flush order diverges from sort at %d", trial, i)
			}
		}
	}
}

func TestWSortBuildValidation(t *testing.T) {
	if _, err := Build(Spec{Kind: "wsort", Params: map[string]string{"attrs": "A", "timeout": "0"}}); err == nil {
		t.Error("timeout <= 0 should fail")
	}
	if _, err := Build(Spec{Kind: "wsort", Params: map[string]string{"timeout": "5"}}); err == nil {
		t.Error("missing attrs should fail")
	}
	w := NewWSort([]string{"ghost"}, 5)
	if _, err := w.Bind([]*stream.Schema{fig2Schema}); err == nil {
		t.Error("unknown attr should fail at bind")
	}
}
