package op

import (
	"testing"

	"repro/internal/stream"
)

// The batch-kernel contract: for every operator that implements
// TrainProcessor, ProcessTrain(port, ts, emit) over a train must emit
// exactly what a per-tuple Process loop over the same train emits — same
// ports, same order, same values. These tests drive both entry points on
// twin instances and diff the emission logs; the zero-alloc tests pin
// the "kernels allocate nothing in steady state" half of the tentpole.

type kemit struct {
	port int
	t    stream.Tuple
}

// collectKernel returns an Emit that logs emissions, disowning each tuple
// so the log may retain pool-owned Vals safely.
func collectKernel(log *[]kemit) Emit {
	return func(p int, t stream.Tuple) {
		t.Disown()
		*log = append(*log, kemit{port: p, t: t})
	}
}

func kernelSchema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("t",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt})
}

// buildBound builds and binds twin instances of one spec.
func buildBound(t *testing.T, spec Spec, nin int) (Operator, Operator) {
	t.Helper()
	mk := func() Operator {
		o, err := Build(spec)
		if err != nil {
			t.Fatal(err)
		}
		ins := make([]*stream.Schema, nin)
		for i := range ins {
			ins[i] = kernelSchema(t)
		}
		if _, err := o.Bind(ins); err != nil {
			t.Fatal(err)
		}
		return o
	}
	return mk(), mk()
}

func kernelTrain(n int, seed uint64) []stream.Tuple {
	out := make([]stream.Tuple, n)
	s := seed
	for i := range out {
		s = s*6364136223846793005 + 1442695040888963407
		a := int64((s >> 33) % 8)
		s = s*6364136223846793005 + 1442695040888963407
		b := int64((s >> 33) % 100)
		out[i] = stream.Tuple{Seq: uint64(i + 1), TS: int64(i + 1),
			Vals: []stream.Value{stream.Int(a), stream.Int(b)}}
	}
	return out
}

func diffEmissions(t *testing.T, name string, serial, batch []kemit) {
	t.Helper()
	if len(serial) != len(batch) {
		t.Fatalf("%s: Process emitted %d, ProcessTrain emitted %d", name, len(serial), len(batch))
	}
	for i := range serial {
		if serial[i].port != batch[i].port {
			t.Fatalf("%s: emission %d port %d vs %d", name, i, serial[i].port, batch[i].port)
		}
		if serial[i].t.Seq != batch[i].t.Seq || serial[i].t.TS != batch[i].t.TS ||
			!serial[i].t.EqualValues(batch[i].t) {
			t.Fatalf("%s: emission %d diverged: %v vs %v", name, i, serial[i].t, batch[i].t)
		}
	}
}

func TestKernelEquivalence(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
		nin  int
	}{
		{"filter", Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 60"}}, 1},
		{"filter-dual", Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 60", "falseport": "true"}}, 1},
		{"map", Spec{Kind: "map", Params: map[string]string{"exprs": "A=A; B=((B * 3) + (A % 7))"}}, 1},
		{"union", Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}, 2},
		{"tumble", Spec{Kind: "tumble", Params: map[string]string{"agg": "sum", "on": "B", "groupby": "A"}}, 1},
		{"wsort", Spec{Kind: "wsort", Params: map[string]string{"attrs": "A", "timeout": "1000", "maxbuf": "16"}}, 1},
		{"wsort-timeout-only", Spec{Kind: "wsort", Params: map[string]string{"attrs": "A", "timeout": "1000"}}, 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			serialOp, batchOp := buildBound(t, c.spec, c.nin)
			if _, ok := batchOp.(TrainProcessor); !ok {
				t.Fatalf("%s does not implement TrainProcessor", c.name)
			}
			var serialLog, batchLog []kemit
			se, be := collectKernel(&serialLog), collectKernel(&batchLog)
			// Several trains back to back so stateful operators (tumble
			// windows, wsort buffers) carry state across train boundaries.
			for round := 0; round < 4; round++ {
				train := kernelTrain(256, uint64(1+round))
				for i := range train {
					serialOp.Process(0, train[i], se)
				}
				batchOp.(TrainProcessor).ProcessTrain(0, train, be)
				// Time-driven operators flush on Advance; give both the
				// same clock schedule.
				now := int64((round + 1) * 2000)
				serialOp.Advance(now, se)
				batchOp.Advance(now, be)
			}
			diffEmissions(t, c.name, serialLog, batchLog)
			if len(serialLog) == 0 {
				t.Fatalf("%s: equivalence vacuous, no emissions", c.name)
			}
		})
	}
}

// TestFilterKernelZeroAlloc pins the compiled filter train: no
// allocations per train, regardless of selectivity.
func TestFilterKernelZeroAlloc(t *testing.T) {
	f, _ := buildBound(t, Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 60"}}, 1)
	kernel := f.(TrainProcessor)
	train := kernelTrain(256, 7)
	sink := Emit(func(int, stream.Tuple) {})
	if avg := testing.AllocsPerRun(200, func() { kernel.ProcessTrain(0, train, sink) }); avg != 0 {
		t.Fatalf("filter kernel allocates %.2f per 256-tuple train, want 0", avg)
	}
}

// TestMapKernelZeroAlloc pins the pooled map train: output Vals come from
// the freelist and, once the consumer recycles them (as the engine does
// at every tuple death point), the steady state allocates nothing.
func TestMapKernelZeroAlloc(t *testing.T) {
	m, _ := buildBound(t, Spec{Kind: "map", Params: map[string]string{
		"exprs": "A=A; B=((B * 3) + (A % 7))"}}, 1)
	kernel := m.(TrainProcessor)
	train := kernelTrain(256, 11)
	sink := Emit(func(_ int, out stream.Tuple) { out.Recycle() })
	// Warm the freelist's size class.
	kernel.ProcessTrain(0, train, sink)
	if avg := testing.AllocsPerRun(200, func() { kernel.ProcessTrain(0, train, sink) }); avg != 0 {
		t.Fatalf("map kernel allocates %.2f per 256-tuple train, want 0", avg)
	}
}

// TestUnionKernelZeroAlloc: pass-through must be free.
func TestUnionKernelZeroAlloc(t *testing.T) {
	u, _ := buildBound(t, Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}, 2)
	kernel := u.(TrainProcessor)
	train := kernelTrain(256, 13)
	sink := Emit(func(int, stream.Tuple) {})
	if avg := testing.AllocsPerRun(200, func() { kernel.ProcessTrain(0, train, sink) }); avg != 0 {
		t.Fatalf("union kernel allocates %.2f per 256-tuple train, want 0", avg)
	}
}

// TestKernelAdapterFallback: ProcessAll must route through the batch
// kernel when present and fall back to a per-tuple loop otherwise,
// without changing emissions.
func TestKernelAdapterFallback(t *testing.T) {
	f1, f2 := buildBound(t, Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 60"}}, 1)
	train := kernelTrain(128, 17)
	var direct, adapted []kemit
	for i := range train {
		f1.Process(0, train[i], collectKernel(&direct))
	}
	ProcessAll(f2, 0, train, collectKernel(&adapted))
	diffEmissions(t, "adapter", direct, adapted)
}
