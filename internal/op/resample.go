package op

import (
	"fmt"
	"sort"

	"repro/internal/stream"
)

// KindResample is the registry kind of the Resample operator.
const KindResample = "resample"

// Resample is Aurora's extrapolation operator (mentioned in §2.2): it
// aligns a reference stream (input 1) to the timestamps of a primary
// stream (input 0). For each primary tuple it emits the primary fields
// plus the reference value linearly interpolated at the primary tuple's
// timestamp. Primary tuples wait until the reference stream has passed
// their timestamp; at flush, pending primaries are extrapolated from the
// last reference value.
//
// Spec parameters:
//
//	on  name of the numeric reference field to interpolate (required)
type Resample struct {
	spec Spec
	on   string

	onIdx   int
	pending []stream.Tuple // primary tuples awaiting reference coverage
	refs    []refPoint     // reference samples, ascending TS
}

type refPoint struct {
	ts int64
	v  float64
}

// NewResample builds a Resample interpolating the named reference field.
func NewResample(on string) *Resample {
	return &Resample{
		spec: Spec{Kind: KindResample, Params: map[string]string{"on": on}},
		on:   on,
	}
}

func buildResample(s Spec) (Operator, error) {
	on, err := param(s, "on")
	if err != nil {
		return nil, err
	}
	return &Resample{spec: s.Clone(), on: on}, nil
}

// Spec implements Operator.
func (r *Resample) Spec() Spec { return r.spec.Clone() }

// NumIn implements Operator.
func (r *Resample) NumIn() int { return 2 }

// NumOut implements Operator.
func (r *Resample) NumOut() int { return 1 }

// Bind implements Operator.
func (r *Resample) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("resample: want 2 input schemas, got %d", len(in))
	}
	i := in[1].Index(r.on)
	if i < 0 {
		return nil, fmt.Errorf("resample: no field %q in reference schema %s", r.on, in[1])
	}
	r.onIdx = i
	fields := in[0].Fields()
	name := r.on
	for _, f := range fields {
		if f.Name == name {
			name += "_rs"
		}
	}
	fields = append(fields, stream.Field{Name: name, Kind: stream.KindFloat})
	out, err := stream.NewSchema(in[0].Name()+".resample", fields...)
	if err != nil {
		return nil, fmt.Errorf("resample: %w", err)
	}
	return []*stream.Schema{out}, nil
}

// Process implements Operator.
func (r *Resample) Process(port int, t stream.Tuple, emit Emit) {
	if port == 0 {
		r.pending = append(r.pending, t)
	} else {
		r.refs = append(r.refs, refPoint{ts: t.TS, v: t.Field(r.onIdx).AsFloat()})
	}
	r.drain(emit, false)
}

// Advance implements Operator (no time-driven behaviour; coverage is
// driven by reference arrivals).
func (r *Resample) Advance(int64, Emit) {}

// Flush implements Operator: pending primaries are emitted with the last
// reference value extrapolated forward; with no reference at all they are
// dropped (there is nothing to resample against).
func (r *Resample) Flush(emit Emit) {
	r.drain(emit, true)
	r.pending = r.pending[:0]
}

func (r *Resample) drain(emit Emit, force bool) {
	if len(r.refs) == 0 {
		return
	}
	highRef := r.refs[len(r.refs)-1].ts
	keep := r.pending[:0]
	var lowWater int64 = 1<<63 - 1
	for _, p := range r.pending {
		if p.TS <= highRef || force {
			emit(0, r.interpolated(p))
		} else {
			if p.TS < lowWater {
				lowWater = p.TS
			}
			keep = append(keep, p)
		}
	}
	r.pending = keep
	// Prune reference points no pending primary can need: everything
	// strictly older than the latest ref at or below the low-water mark.
	// With nothing pending, keep the last interval (two points) so a
	// primary lagging slightly behind the reference stream can still
	// interpolate rather than clamp.
	if len(r.pending) == 0 {
		if len(r.refs) > 2 {
			r.refs = r.refs[len(r.refs)-2:]
		}
		return
	}
	cut := sort.Search(len(r.refs), func(i int) bool { return r.refs[i].ts > lowWater })
	if cut > 0 {
		cut--
	}
	r.refs = r.refs[cut:]
}

func (r *Resample) interpolated(p stream.Tuple) stream.Tuple {
	v := interpolate(r.refs, p.TS)
	vals := make([]stream.Value, 0, len(p.Vals)+1)
	vals = append(vals, p.Vals...)
	vals = append(vals, stream.Float(v))
	return stream.Tuple{Seq: p.Seq, TS: p.TS, Vals: vals}
}

// interpolate returns the reference value at ts, linearly interpolated
// between the surrounding samples and clamped to the first/last sample
// outside the covered range. refs must be non-empty and ascending by ts.
func interpolate(refs []refPoint, ts int64) float64 {
	i := sort.Search(len(refs), func(i int) bool { return refs[i].ts >= ts })
	switch {
	case i == 0:
		return refs[0].v
	case i == len(refs):
		return refs[len(refs)-1].v
	case refs[i].ts == ts:
		return refs[i].v
	default:
		a, b := refs[i-1], refs[i]
		frac := float64(ts-a.ts) / float64(b.ts-a.ts)
		return a.v + frac*(b.v-a.v)
	}
}

func init() { RegisterKind(KindResample, buildResample) }
