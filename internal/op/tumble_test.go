package op

import (
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

// TestTumblePaperExampleAvg reproduces §2.2 verbatim: a Tumble with
// aggregate avg(B) and group-by A over the Figure 2 stream emits
// (A=1, 2.5) upon tuple #3 and (A=2, 3.0) upon tuple #6, with a third
// window (A=4) still in progress after all seven tuples.
func TestTumblePaperExampleAvg(t *testing.T) {
	tb := NewTumble(Avg, NewCol("B"), []string{"A"})
	if _, err := tb.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	in := fig2Stream()
	for i, tp := range in {
		tb.Process(0, tp, c.emit)
		switch i {
		case 1: // after tuple #2 nothing is out yet
			if len(c.out(0)) != 0 {
				t.Fatalf("premature emission after tuple 2: %v", c.out(0))
			}
		case 2: // tuple #3 closes the A=1 window
			if len(c.out(0)) != 1 {
				t.Fatalf("A=1 window should close at tuple 3; out=%v", c.out(0))
			}
		case 5: // tuple #6 closes the A=2 window
			if len(c.out(0)) != 2 {
				t.Fatalf("A=2 window should close at tuple 6; out=%v", c.out(0))
			}
		}
	}
	out := c.out(0)
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Float(2.5)),
		stream.NewTuple(stream.Int(2), stream.Float(3.0)),
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%swant:\n%s", stream.FormatTuples(out), stream.FormatTuples(want))
	}
	// The A=4 window is open; Flush drains it (avg of 5, 2 = 3.5).
	tb.Flush(c.emit)
	out = c.out(0)
	if len(out) != 3 || !out[2].EqualValues(stream.NewTuple(stream.Int(4), stream.Float(3.5))) {
		t.Fatalf("flush output wrong:\n%s", stream.FormatTuples(out))
	}
}

// TestTumblePaperExampleCnt pins the §5.1 split example's unsplit side:
// Tumble(cnt, group-by A) over the Figure 2 stream emits (A=1, 2) and
// (A=2, 3).
func TestTumblePaperExampleCnt(t *testing.T) {
	tb := NewTumble(Cnt, NewCol("B"), []string{"A"})
	out := feed(t, tb, fig2Schema, fig2Stream())
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(2)),
		stream.NewTuple(stream.Int(2), stream.Int(3)),
		stream.NewTuple(stream.Int(4), stream.Int(2)), // flushed
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%swant:\n%s", stream.FormatTuples(out), stream.FormatTuples(want))
	}
}

func TestTumbleInterleavedGroupsReopenWindows(t *testing.T) {
	// Consecutive-run semantics: A=1 tuples separated by an A=2 tuple
	// form two distinct windows.
	in := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(10)),
		stream.NewTuple(stream.Int(2), stream.Int(20)),
		stream.NewTuple(stream.Int(1), stream.Int(30)),
	}
	tb := NewTumble(Cnt, NewCol("B"), []string{"A"})
	out := feed(t, tb, fig2Schema, in)
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(1)),
		stream.NewTuple(stream.Int(2), stream.Int(1)),
		stream.NewTuple(stream.Int(1), stream.Int(1)),
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestTumbleMultiGroupBy(t *testing.T) {
	s := stream.MustSchema("s3",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
		stream.Field{Name: "C", Kind: stream.KindInt},
	)
	in := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(1), stream.Int(5)),
		stream.NewTuple(stream.Int(1), stream.Int(1), stream.Int(7)),
		stream.NewTuple(stream.Int(1), stream.Int(2), stream.Int(9)),
	}
	tb := NewTumble(Sum, NewCol("C"), []string{"A", "B"})
	out := feed(t, tb, s, in)
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(1), stream.Int(12)),
		stream.NewTuple(stream.Int(1), stream.Int(2), stream.Int(9)),
	}
	if !stream.TuplesEqualValues(out, want) {
		t.Fatalf("got:\n%s", stream.FormatTuples(out))
	}
}

func TestTumbleOutputSchema(t *testing.T) {
	tb := NewTumble(Cnt, NewCol("B"), []string{"A"})
	schemas, err := tb.Bind([]*stream.Schema{fig2Schema})
	if err != nil {
		t.Fatal(err)
	}
	out := schemas[0]
	if out.Arity() != 2 || out.Field(0).Name != "A" || out.Field(1).Name != ResultField {
		t.Fatalf("schema = %s", out)
	}
	if out.Field(1).Kind != stream.KindInt {
		t.Errorf("cnt result kind = %v, want int", out.Field(1).Kind)
	}
	// avg produces float results.
	tb2 := NewTumble(Avg, NewCol("B"), []string{"A"})
	schemas, err = tb2.Bind([]*stream.Schema{fig2Schema})
	if err != nil {
		t.Fatal(err)
	}
	if schemas[0].Field(1).Kind != stream.KindFloat {
		t.Error("avg result kind should be float")
	}
}

func TestTumbleDependencySeq(t *testing.T) {
	// The emitted tuple carries the Seq of the earliest contributing
	// tuple, which is what the HA flow-message protocol records for
	// stateful boxes (§6.2 footnote).
	tb := NewTumble(Cnt, NewCol("B"), []string{"A"})
	if _, err := tb.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	for _, tp := range fig2Stream() {
		tb.Process(0, tp, c.emit)
	}
	if c.out(0)[0].Seq != 1 {
		t.Errorf("first window Seq = %d, want 1 (earliest contributor)", c.out(0)[0].Seq)
	}
	if c.out(0)[1].Seq != 3 {
		t.Errorf("second window Seq = %d, want 3", c.out(0)[1].Seq)
	}
}

func TestTumbleBindErrors(t *testing.T) {
	if _, err := NewTumble(Cnt, NewCol("B"), []string{"ghost"}).Bind([]*stream.Schema{fig2Schema}); err == nil {
		t.Error("unknown group-by should fail")
	}
	if _, err := NewTumble(Cnt, NewCol("ghost"), []string{"A"}).Bind([]*stream.Schema{fig2Schema}); err == nil {
		t.Error("unknown on-column should fail")
	}
}

func TestTumbleBuildErrors(t *testing.T) {
	cases := []map[string]string{
		{"on": "B", "groupby": "A"},                 // missing agg
		{"agg": "bogus", "on": "B", "groupby": "A"}, // unknown agg
		{"agg": "cnt", "groupby": "A"},              // missing on
		{"agg": "cnt", "on": "((", "groupby": "A"},  // bad expr
		{"agg": "cnt", "on": "B"},                   // missing groupby
	}
	for _, params := range cases {
		if _, err := Build(Spec{Kind: "tumble", Params: params}); err == nil {
			t.Errorf("Build(tumble %v) should fail", params)
		}
	}
}

// TestTumbleFlushIdempotent ensures a drained Tumble emits nothing more,
// which the drain/stabilize protocol relies on.
func TestTumbleFlushIdempotent(t *testing.T) {
	tb := NewTumble(Cnt, NewCol("B"), []string{"A"})
	if _, err := tb.Bind([]*stream.Schema{fig2Schema}); err != nil {
		t.Fatal(err)
	}
	c := newCollector()
	tb.Process(0, fig2Stream()[0], c.emit)
	tb.Flush(c.emit)
	tb.Flush(c.emit)
	if len(c.out(0)) != 1 {
		t.Errorf("double flush emitted %d tuples, want 1", len(c.out(0)))
	}
}

// TestTumbleCntEqualsLengthProperty: over a random single-group stream,
// Tumble(cnt) emits exactly one window whose count is the stream length.
func TestTumbleCntEqualsLengthProperty(t *testing.T) {
	f := func(bs []int8) bool {
		if len(bs) == 0 {
			return true
		}
		in := make([]stream.Tuple, len(bs))
		for i, b := range bs {
			in[i] = stream.NewTuple(stream.Int(1), stream.Int(int64(b)))
		}
		tb := NewTumble(Cnt, NewCol("B"), []string{"A"})
		if _, err := tb.Bind([]*stream.Schema{fig2Schema}); err != nil {
			return false
		}
		c := newCollector()
		for _, tp := range in {
			tb.Process(0, tp, c.emit)
		}
		tb.Flush(c.emit)
		out := c.out(0)
		return len(out) == 1 && out[0].Field(1).AsInt() == int64(len(bs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
