package op

import (
	"fmt"

	"repro/internal/stream"
)

// KindJoin is the registry kind of the Join operator.
const KindJoin = "join"

// Join is Aurora's windowed stream join (mentioned in §2.2): a symmetric
// hash join that matches tuples from its two inputs on key equality when
// their timestamps lie within a window of each other. Because streams are
// unbounded, each side buffers only tuples newer than the other side's
// high-water mark minus the window.
//
// Join is the canonical selectivity-greater-than-one operator: §5.1 notes
// that sliding such a box downstream is useful when its selectivity
// exceeds one and link bandwidth is limited.
//
// Spec parameters:
//
//	leftkey   comma-separated key attributes of input 0 (required)
//	rightkey  comma-separated key attributes of input 1 (required)
//	window    timestamp window in time units (required, >= 0)
type Join struct {
	base
	spec     Spec
	leftKey  []string
	rightKey []string
	window   int64

	leftIdx, rightIdx   []int
	leftBuf, rightBuf   map[string][]stream.Tuple
	leftHigh, rightHigh int64
	out                 *stream.Schema
	leftArity           int
}

// NewJoin builds a Join on the given key attributes within the timestamp
// window.
func NewJoin(leftKey, rightKey []string, window int64) *Join {
	spec := Spec{Kind: KindJoin, Params: map[string]string{
		"leftkey":  join(leftKey, ","),
		"rightkey": join(rightKey, ","),
		"window":   fmt.Sprint(window),
	}}
	return &Join{spec: spec, leftKey: leftKey, rightKey: rightKey, window: window}
}

func buildJoin(s Spec) (Operator, error) {
	lk, err := paramCols(s, "leftkey")
	if err != nil {
		return nil, err
	}
	rk, err := paramCols(s, "rightkey")
	if err != nil {
		return nil, err
	}
	if len(lk) != len(rk) {
		return nil, fmt.Errorf("join: key arity mismatch %d vs %d", len(lk), len(rk))
	}
	w, err := paramInt(s, "window")
	if err != nil {
		return nil, err
	}
	if w < 0 {
		return nil, fmt.Errorf("join: window must be >= 0")
	}
	return &Join{spec: s.Clone(), leftKey: lk, rightKey: rk, window: w}, nil
}

// Spec implements Operator.
func (j *Join) Spec() Spec { return j.spec.Clone() }

// NumIn implements Operator.
func (j *Join) NumIn() int { return 2 }

// NumOut implements Operator.
func (j *Join) NumOut() int { return 1 }

// Bind implements Operator.
func (j *Join) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	if len(in) != 2 {
		return nil, fmt.Errorf("join: want 2 input schemas, got %d", len(in))
	}
	li, err := in[0].Indices(j.leftKey...)
	if err != nil {
		return nil, fmt.Errorf("join: left: %w", err)
	}
	ri, err := in[1].Indices(j.rightKey...)
	if err != nil {
		return nil, fmt.Errorf("join: right: %w", err)
	}
	j.leftIdx, j.rightIdx = li, ri
	j.leftBuf = make(map[string][]stream.Tuple)
	j.rightBuf = make(map[string][]stream.Tuple)
	j.leftArity = in[0].Arity()

	// Output schema concatenates both sides; right-side name collisions
	// get an "_r" suffix so the combined schema stays well formed.
	taken := make(map[string]bool, in[0].Arity())
	fields := make([]stream.Field, 0, in[0].Arity()+in[1].Arity())
	for _, f := range in[0].Fields() {
		taken[f.Name] = true
		fields = append(fields, f)
	}
	for _, f := range in[1].Fields() {
		name := f.Name
		for taken[name] {
			name += "_r"
		}
		taken[name] = true
		fields = append(fields, stream.Field{Name: name, Kind: f.Kind})
	}
	out, err := stream.NewSchema(in[0].Name()+".join", fields...)
	if err != nil {
		return nil, fmt.Errorf("join: %w", err)
	}
	j.out = out
	return []*stream.Schema{out}, nil
}

// Process implements Operator.
func (j *Join) Process(port int, t stream.Tuple, emit Emit) {
	if port == 0 {
		j.processSide(t, j.leftIdx, j.leftBuf, j.rightBuf, &j.leftHigh, j.rightHigh, true, emit)
	} else {
		j.processSide(t, j.rightIdx, j.rightBuf, j.leftBuf, &j.rightHigh, j.leftHigh, false, emit)
	}
}

func (j *Join) processSide(t stream.Tuple, keyIdx []int, mine, other map[string][]stream.Tuple,
	myHigh *int64, otherHigh int64, isLeft bool, emit Emit) {
	if t.TS > *myHigh {
		*myHigh = t.TS
	}
	key := t.KeyOf(keyIdx)
	for _, o := range other[key] {
		if abs64(t.TS-o.TS) <= j.window {
			if isLeft {
				emit(0, j.combine(t, o))
			} else {
				emit(0, j.combine(o, t))
			}
		}
	}
	mine[key] = append(mine[key], t)
	// Prune buffers below the other side's high-water mark minus window:
	// nothing arriving later on the other side can match them.
	j.prune(mine, otherHigh-j.window)
}

func (j *Join) prune(buf map[string][]stream.Tuple, cutoff int64) {
	for k, ts := range buf {
		keep := ts[:0]
		for _, t := range ts {
			if t.TS >= cutoff {
				keep = append(keep, t)
			}
		}
		if len(keep) == 0 {
			delete(buf, k)
		} else {
			buf[k] = keep
		}
	}
}

func (j *Join) combine(l, r stream.Tuple) stream.Tuple {
	vals := make([]stream.Value, 0, len(l.Vals)+len(r.Vals))
	vals = append(vals, l.Vals...)
	vals = append(vals, r.Vals...)
	ts := l.TS
	if r.TS > ts {
		ts = r.TS
	}
	return stream.Tuple{Seq: l.Seq, TS: ts, Vals: vals}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func init() { RegisterKind(KindJoin, buildJoin) }
