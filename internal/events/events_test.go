package events

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestAppendStampsSeqAndNode(t *testing.T) {
	j := NewJournal("n1", 64)
	if seq := j.Append(Event{Time: 10, Kind: KindSplit, Subject: "f"}); seq != 1 {
		t.Fatalf("first seq = %d, want 1", seq)
	}
	if seq := j.Append(Event{Time: 20, Kind: KindUnsplit, Subject: "f", Node: "other"}); seq != 2 {
		t.Fatalf("second seq = %d, want 2", seq)
	}
	evs, next := j.Since(0, 0)
	if len(evs) != 2 || next != 2 {
		t.Fatalf("Since(0) = %d events, next %d", len(evs), next)
	}
	if evs[0].Node != "n1" {
		t.Errorf("empty node not defaulted: %q", evs[0].Node)
	}
	if evs[1].Node != "other" {
		t.Errorf("explicit node overwritten: %q", evs[1].Node)
	}
	if evs[0].Seq != 1 || evs[1].Seq != 2 {
		t.Errorf("seqs = %d, %d", evs[0].Seq, evs[1].Seq)
	}
	if j.Len() != 2 || j.Total() != 2 {
		t.Errorf("Len=%d Total=%d", j.Len(), j.Total())
	}
}

func TestRingOverwriteKeepsNewest(t *testing.T) {
	j := NewJournal("n", 64)
	for i := 0; i < 200; i++ {
		j.Append(Event{Time: int64(i), Kind: KindFault})
	}
	if j.Len() != 64 || j.Total() != 200 {
		t.Fatalf("Len=%d Total=%d; want 64, 200", j.Len(), j.Total())
	}
	evs, next := j.Since(0, 0)
	if len(evs) != 64 || next != 200 {
		t.Fatalf("Since(0) = %d events, next %d", len(evs), next)
	}
	if evs[0].Seq != 137 || evs[63].Seq != 200 {
		t.Errorf("retained range %d..%d; want 137..200", evs[0].Seq, evs[63].Seq)
	}
}

func TestSincePagesWithCursor(t *testing.T) {
	j := NewJournal("n", 128)
	for i := 0; i < 10; i++ {
		j.Append(Event{Time: int64(i), Kind: KindLinkState})
	}
	var got []Event
	cursor := uint64(0)
	for {
		page, next := j.Since(cursor, 3)
		if len(page) == 0 {
			if next != cursor {
				t.Fatalf("empty page moved cursor %d -> %d", cursor, next)
			}
			break
		}
		got = append(got, page...)
		cursor = next
	}
	if len(got) != 10 {
		t.Fatalf("paged %d events, want 10", len(got))
	}
	for i, ev := range got {
		if ev.Seq != uint64(i+1) {
			t.Fatalf("page order broken at %d: seq %d", i, ev.Seq)
		}
	}

	// A cursor older than the ring resumes at the oldest retained event
	// (seq 173 with 300 appended into a 128 ring), still oldest-first.
	for i := 10; i < 300; i++ {
		j.Append(Event{Time: int64(i), Kind: KindLinkState})
	}
	page, next := j.Since(1, 5)
	if len(page) != 5 || next != 177 || page[0].Seq != 173 {
		t.Fatalf("capped page = %d events, first seq %d, next %d", len(page), page[0].Seq, next)
	}
	if tail := j.Tail(2); len(tail) != 2 || tail[1].Seq != 300 {
		t.Fatalf("Tail(2) = %+v", tail)
	}
}

func TestNilJournalIsDisabled(t *testing.T) {
	var j *Journal
	if seq := j.Append(Event{Kind: KindSplit}); seq != 0 {
		t.Errorf("nil Append seq = %d", seq)
	}
	if j.NewCorr() != 0 || j.Len() != 0 || j.Total() != 0 || j.Node() != "" {
		t.Error("nil journal accessors not zero")
	}
	if evs, next := j.Since(5, 0); evs != nil || next != 5 {
		t.Errorf("nil Since = %v, %d", evs, next)
	}
}

func TestCorrIdsAreNodeSaltedAndMonotonic(t *testing.T) {
	a, b := NewJournal("a", 64), NewJournal("b", 64)
	c1, c2 := a.NewCorr(), a.NewCorr()
	if c1 == 0 || c2 == 0 || c1 == c2 {
		t.Fatalf("corr ids %x, %x", c1, c2)
	}
	if c1>>40 != c2>>40 {
		t.Errorf("same node, different salts: %x vs %x", c1, c2)
	}
	if c1>>40 == b.NewCorr()>>40 {
		t.Error("different nodes share a salt")
	}
	if c2&(1<<40-1) != c1&(1<<40-1)+1 {
		t.Errorf("counter not monotonic: %x then %x", c1, c2)
	}
}

func TestConcurrentAppendAndRead(t *testing.T) {
	j := NewJournal("n", 128)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				j.Append(Event{Time: int64(i), Kind: KindOffload})
				j.Since(0, 16)
				j.Len()
			}
		}()
	}
	wg.Wait()
	if j.Total() != 2000 {
		t.Fatalf("Total = %d, want 2000", j.Total())
	}
	evs, _ := j.Since(0, 0)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq != evs[i-1].Seq+1 {
			t.Fatalf("seq gap: %d then %d", evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestAppendZeroAlloc is the steady-state allocation guard from the
// acceptance criteria: appending to a warm journal must not allocate.
func TestAppendZeroAlloc(t *testing.T) {
	j := NewJournal("n", 256)
	ev := Event{Time: 1, Kind: KindLinkState, Subject: "peer", Detail: "established", V1: 2}
	if avg := testing.AllocsPerRun(1000, func() { j.Append(ev) }); avg != 0 {
		t.Fatalf("Append allocates %.1f per op, want 0", avg)
	}
}

func TestMergeSortsAcrossJournals(t *testing.T) {
	a, b := NewJournal("a", 64), NewJournal("b", 64)
	a.Append(Event{Time: 30, Kind: KindSplit})
	b.Append(Event{Time: 10, Kind: KindFault})
	a.Append(Event{Time: 20, Kind: KindUnsplit})
	merged := Merge(a, nil, b)
	if len(merged) != 3 {
		t.Fatalf("merged %d events", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatalf("merge not time-sorted: %+v", merged)
		}
	}
}

func TestFormatAndKindJSON(t *testing.T) {
	ev := Event{Seq: 7, Time: 12000, Node: "n2", Kind: KindSplit,
		Subject: "f", Corr: 0xa1b, V1: 2}
	line := Format([]Event{ev})
	for _, want := range []string{"t=12000", "n2", "#7", "split", "f", "corr=a1b", "v=(2, 0, 0)"} {
		if !strings.Contains(line, want) {
			t.Errorf("Format missing %q: %s", want, line)
		}
	}

	buf, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"kind":"split"`) {
		t.Errorf("kind not a string: %s", buf)
	}
	var back Event
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if back != ev {
		t.Errorf("JSON round trip: %+v != %+v", back, ev)
	}
	var bad Kind
	if err := bad.UnmarshalJSON([]byte(`"nope"`)); err == nil {
		t.Error("unknown kind decoded without error")
	}
}

// BenchmarkEventJournal is the satellite bench: events/op and allocs/op
// of the hot append path (allocs must report 0).
func BenchmarkEventJournal(b *testing.B) {
	j := NewJournal("bench", 1024)
	ev := Event{Time: 1, Kind: KindLinkState, Subject: "peer", Detail: "established"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev.Time = int64(i)
		j.Append(ev)
	}
}
