// Package events is the control-plane event journal: a fixed-memory ring
// of typed, sequence-numbered events into which every decision-making
// actor publishes what it did and why — engine split/unsplit (with the
// hot-box predicate values that triggered them), load-manager offloads,
// shedder engage/disengage, transport link transitions, HA replay
// summaries, chaos fault injections.
//
// The journal follows the flight-recorder discipline of internal/trace:
// one short mutex critical section per append, no allocation after
// construction, deliberately outside any simulated failure domain (a
// crashed SimNode keeps its journal, like a black box surviving the
// airframe). Sequence numbers are per-journal and monotonic, so HTTP
// clients can page with a cursor; correlation ids are node-salted like
// trace span ids, so a cause (hot predicate firing) chains to its
// effects (split installed) across the journal and the trace recorder.
package events

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind classifies a control-plane event.
type Kind uint8

const (
	// KindSplit: the engine installed a key-partitioned split.
	KindSplit Kind = iota + 1
	// KindUnsplit: the engine folded a split back.
	KindUnsplit
	// KindHotBox: the autosplit hot predicate fired (cause of a split).
	KindHotBox
	// KindCoolBox: the autosplit cool predicate fired (cause of an unsplit).
	KindCoolBox
	// KindOffload: load management moved boxes to a neighbor.
	KindOffload
	// KindShedEngage: the shedder started dropping (drop rate left zero).
	KindShedEngage
	// KindShedDisengage: the shedder stopped dropping (drop rate hit zero).
	KindShedDisengage
	// KindLinkState: a supervised transport link changed state.
	KindLinkState
	// KindHAReplay: an HA log replayed tuples after failover or reconnect.
	KindHAReplay
	// KindFault: the chaos harness injected a fault.
	KindFault
	// KindSLOWarn: the latency-SLO forecaster predicts an output's p99
	// will cross its QoS latency cliff within the forecast horizon.
	KindSLOWarn
	// KindBottleneck: tail-latency attribution named the critical-path
	// box for an output whose SLO is at risk.
	KindBottleneck
	// KindCPEvict: connection-point history was permanently evicted while
	// an HA resync was replaying — the replay may now have a hole.
	KindCPEvict
	// KindCheckpoint: the node saved its durable checkpoint.
	KindCheckpoint
	// KindRecovery: a restarted node rebuilt state from its data dir.
	KindRecovery
)

var kindNames = [...]string{
	KindSplit:         "split",
	KindUnsplit:       "unsplit",
	KindHotBox:        "hotbox",
	KindCoolBox:       "coolbox",
	KindOffload:       "offload",
	KindShedEngage:    "shed-engage",
	KindShedDisengage: "shed-disengage",
	KindLinkState:     "link",
	KindHAReplay:      "ha-replay",
	KindFault:         "fault",
	KindSLOWarn:       "slo-warn",
	KindBottleneck:    "bottleneck",
	KindCPEvict:       "cp-evict",
	KindCheckpoint:    "checkpoint",
	KindRecovery:      "recovery",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON renders the kind as its string name so /events payloads
// and dspstat stay readable without a decoder table.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// UnmarshalJSON accepts the string names MarshalJSON produces.
func (k *Kind) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	for i, n := range kindNames {
		if n != "" && n == s {
			*k = Kind(i)
			return nil
		}
	}
	return fmt.Errorf("events: unknown kind %q", s)
}

// Event is one journal entry. Subject names what the event is about (a
// box, a peer, a node); Detail is a short free-form qualifier (a link
// state, an offloaded box list); V1..V3 carry the numeric evidence — the
// predicate values, drop counts, or replay sizes that justified the
// decision, with per-kind meaning documented at each emission site.
type Event struct {
	Seq     uint64  `json:"seq"`
	Time    int64   `json:"time"` // ns, on the emitting node's clock
	Node    string  `json:"node"`
	Kind    Kind    `json:"kind"`
	Subject string  `json:"subject,omitempty"`
	Detail  string  `json:"detail,omitempty"`
	Corr    uint64  `json:"corr,omitempty"` // correlation id chaining cause to effect
	V1      float64 `json:"v1,omitempty"`
	V2      float64 `json:"v2,omitempty"`
	V3      float64 `json:"v3,omitempty"`
}

// Journal is the fixed-size event ring for one node. All methods are
// safe for concurrent use and safe on a nil receiver (a nil journal is
// a disabled journal: appends vanish, reads return nothing), so callers
// never branch on whether observability is configured.
type Journal struct {
	node string
	salt uint64 // fnv64a(node) << 40, the trace-span id scheme
	corr atomic.Uint64

	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever appended
}

// NewJournal returns a journal retaining the most recent n events
// (minimum 64) for the named node.
func NewJournal(node string, n int) *Journal {
	if n < 64 {
		n = 64
	}
	return &Journal{node: node, salt: fnv64a(node) << 40, buf: make([]Event, n)}
}

// Node returns the journal's node id.
func (j *Journal) Node() string {
	if j == nil {
		return ""
	}
	return j.node
}

// NewCorr mints a correlation id: the node salt in the high bits, a
// monotonic counter in the low 40, the exact scheme trace span ids use —
// so one id can stamp a journal chain and its trace marks alike.
// A nil journal mints 0, the "uncorrelated" id.
func (j *Journal) NewCorr() uint64 {
	if j == nil {
		return 0
	}
	return j.salt | (j.corr.Add(1) & (1<<40 - 1))
}

// Append records one event, stamping its sequence number (and the
// journal's node, when the event carries none), and returns the stamped
// seq. The event struct is copied into the ring: appending allocates
// nothing in steady state. A nil journal drops the event and returns 0.
func (j *Journal) Append(ev Event) uint64 {
	if j == nil {
		return 0
	}
	if ev.Node == "" {
		ev.Node = j.node
	}
	j.mu.Lock()
	j.next++
	ev.Seq = j.next
	j.buf[(j.next-1)%uint64(len(j.buf))] = ev
	seq := j.next
	j.mu.Unlock()
	return seq
}

// Len returns how many events are currently retained.
func (j *Journal) Len() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.next < uint64(len(j.buf)) {
		return int(j.next)
	}
	return len(j.buf)
}

// Total returns how many events were ever appended, including those the
// ring has since overwritten. It equals the highest stamped Seq.
func (j *Journal) Total() uint64 {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.next
}

// Since returns up to max retained events with Seq > cursor, oldest
// first, plus the cursor to pass next time (the Seq of the last event
// returned, or the input cursor when nothing qualified). max <= 0 means
// no limit. Events older than the ring are gone: a stale cursor simply
// resumes at the oldest retained event.
func (j *Journal) Since(cursor uint64, max int) ([]Event, uint64) {
	if j == nil {
		return nil, cursor
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	n := uint64(len(j.buf))
	first := uint64(1)
	if j.next > n {
		first = j.next - n + 1
	}
	if cursor+1 > first {
		first = cursor + 1
	}
	if first > j.next {
		return nil, cursor
	}
	last := j.next
	if max > 0 && last-first+1 > uint64(max) {
		last = first + uint64(max) - 1
	}
	out := make([]Event, 0, last-first+1)
	for seq := first; seq <= last; seq++ {
		out = append(out, j.buf[(seq-1)%n])
	}
	return out, last
}

// Tail returns the most recent n retained events, oldest first.
func (j *Journal) Tail(n int) []Event {
	if j == nil || n <= 0 {
		return nil
	}
	j.mu.Lock()
	cursor := uint64(0)
	if j.next > uint64(n) {
		cursor = j.next - uint64(n)
	}
	j.mu.Unlock()
	evs, _ := j.Since(cursor, n)
	return evs
}

// Merge combines the retained events of several journals into one slice
// sorted by event time — the cluster-wide view a post-mortem wants. Nil
// journals are skipped.
func Merge(js ...*Journal) []Event {
	var out []Event
	for _, j := range js {
		if j != nil {
			evs, _ := j.Since(0, 0)
			out = append(out, evs...)
		}
	}
	sort.SliceStable(out, func(i, k int) bool { return out[i].Time < out[k].Time })
	return out
}

// Format renders events one per line for dumps and logs:
//
//	[t=12000 n2 #7] split f corr=a1b:3 v=(2, 0, 0)
func Format(evs []Event) string {
	var b strings.Builder
	for _, ev := range evs {
		fmt.Fprintf(&b, "[t=%d %s #%d] %s", ev.Time, ev.Node, ev.Seq, ev.Kind)
		if ev.Subject != "" {
			b.WriteByte(' ')
			b.WriteString(ev.Subject)
		}
		if ev.Detail != "" {
			b.WriteByte(' ')
			b.WriteString(ev.Detail)
		}
		if ev.Corr != 0 {
			fmt.Fprintf(&b, " corr=%x", ev.Corr)
		}
		if ev.V1 != 0 || ev.V2 != 0 || ev.V3 != 0 {
			fmt.Fprintf(&b, " v=(%g, %g, %g)", ev.V1, ev.V2, ev.V3)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// fnv64a is the FNV-1a hash, the same salt derivation trace uses for
// span ids, duplicated here so events stays a leaf package.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
