package loadmgr

import (
	"testing"

	"repro/internal/stats"
)

func reliefMap() *stats.LoadMap {
	lm := stats.NewLoadMap("n1")
	lm.Update(stats.Digest{Node: "n1", Seq: 3, Util: 0.95, Boxes: []stats.BoxLoad{
		{Box: "f1", Load: 0.5},
		{Box: "f2", Load: 0.3},
		{Box: "f3", Load: 0.15},
		{Box: "gone", Load: 0}, // decayed series for a box that moved away
	}})
	lm.Update(stats.Digest{Node: "n2", Seq: 3, Util: 0.1})
	lm.Update(stats.Digest{Node: "n3", Seq: 3, Util: 0.3})
	return lm
}

func TestOffloadFromMap(t *testing.T) {
	pol := Policy{HighWater: 0.8, LowWater: 0.5, Headroom: 0.5, CooldownPeriods: 2}
	allLinks := func(string) (float64, bool) { return 1e18, true }

	d := OffloadFromMap("n1", reliefMap(), nil, allLinks, pol)
	if d == nil {
		t.Fatal("overloaded node with idle peers should offload")
	}
	if d.To != "n2" {
		t.Errorf("offload to %s, want the least-loaded n2", d.To)
	}
	// Greedy smallest-first: f3 (0.15) covers the 0.15 excess alone.
	if len(d.Boxes) != 1 || d.Boxes[0] != "f3" {
		t.Errorf("moved %v, want [f3]", d.Boxes)
	}

	// The box filter drops boxes the node no longer hosts.
	d = OffloadFromMap("n1", reliefMap(),
		func(box string) bool { return box == "f2" }, allLinks, pol)
	if d == nil || len(d.Boxes) != 1 || d.Boxes[0] != "f2" {
		t.Errorf("filtered offload = %+v, want just f2", d)
	}

	// Link availability gates the peer set: with n2 unreachable the plan
	// must fall back to n3.
	d = OffloadFromMap("n1", reliefMap(), nil,
		func(peer string) (float64, bool) { return 1e18, peer != "n2" }, pol)
	if d == nil || d.To != "n3" {
		t.Errorf("offload = %+v, want fallback to n3", d)
	}

	// No digest for self yet: no decision, never a panic.
	if d := OffloadFromMap("n9", reliefMap(), nil, allLinks, pol); d != nil {
		t.Errorf("unknown self should plan nothing, got %+v", d)
	}

	// A calm windowed view plans nothing even with idle peers.
	calm := stats.NewLoadMap("n1")
	calm.Update(stats.Digest{Node: "n1", Seq: 1, Util: 0.4,
		Boxes: []stats.BoxLoad{{Box: "f1", Load: 0.4}}})
	calm.Update(stats.Digest{Node: "n2", Seq: 1, Util: 0.1})
	if d := OffloadFromMap("n1", calm, nil, allLinks, pol); d != nil {
		t.Errorf("calm node should stay put, got %+v", d)
	}
}
