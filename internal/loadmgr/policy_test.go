package loadmgr

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/op"
	"repro/internal/stream"
)

func TestPlanOffloadBasics(t *testing.T) {
	pol := DefaultPolicy()
	boxes := []BoxLoad{
		{Box: "big", Work: 0.4, MoveBandwidth: 100},
		{Box: "small", Work: 0.1, MoveBandwidth: 10},
		{Box: "mid", Work: 0.2, MoveBandwidth: 50},
	}
	peers := []PeerLoad{
		{Node: "idle", Utilization: 0.2, FreeBandwidth: 1e6},
		{Node: "busy", Utilization: 0.7, FreeBandwidth: 1e6},
	}
	d := PlanOffload(0.95, boxes, peers, pol)
	if d == nil {
		t.Fatal("overloaded node next to an idle peer must plan a move")
	}
	if d.To != "idle" {
		t.Errorf("picked %q, want the least-loaded peer", d.To)
	}
	// Moves just enough: smallest box (0.1) covers the 0.10 excess.
	if len(d.Boxes) != 1 || d.Boxes[0] != "small" {
		t.Errorf("moved %v, want just [small]", d.Boxes)
	}
}

func TestPlanOffloadHysteresis(t *testing.T) {
	pol := DefaultPolicy()
	boxes := []BoxLoad{{Box: "b", Work: 0.2}}
	// Under the high watermark: no move even with idle peers.
	if d := PlanOffload(0.8, boxes, []PeerLoad{{Node: "p", Utilization: 0}}, pol); d != nil {
		t.Error("below high water there must be no move")
	}
	// Peer inside the hysteresis band: no move.
	if d := PlanOffload(0.95, boxes, []PeerLoad{{Node: "p", Utilization: 0.65}}, pol); d != nil {
		t.Error("peer above low water must not receive load")
	}
}

func TestPlanOffloadBandwidthConstraint(t *testing.T) {
	pol := DefaultPolicy()
	boxes := []BoxLoad{
		{Box: "cheapCPUheavyBW", Work: 0.05, MoveBandwidth: 1e9},
		{Box: "ok", Work: 0.06, MoveBandwidth: 10},
	}
	peers := []PeerLoad{{Node: "p", Utilization: 0.1, FreeBandwidth: 100}}
	d := PlanOffload(0.95, boxes, peers, pol)
	if d == nil {
		t.Fatal("a movable box exists")
	}
	for _, b := range d.Boxes {
		if b == "cheapCPUheavyBW" {
			t.Error("bandwidth-infeasible box must not move (§5.2)")
		}
	}
}

func TestPlanOffloadNoPeersNoBoxes(t *testing.T) {
	pol := DefaultPolicy()
	if d := PlanOffload(0.99, nil, []PeerLoad{{Node: "p"}}, pol); d != nil {
		t.Error("no boxes -> no plan")
	}
	if d := PlanOffload(0.99, []BoxLoad{{Box: "b", Work: 0.1}}, nil, pol); d != nil {
		t.Error("no peers -> no plan")
	}
	bad := Policy{HighWater: 0.5, LowWater: 0.6, Headroom: 0.1}
	if d := PlanOffload(0.99, []BoxLoad{{Box: "b", Work: 0.1}},
		[]PeerLoad{{Node: "p", Utilization: 0}}, bad); d != nil {
		t.Error("invalid policy -> no plan")
	}
	if err := bad.Validate(); err == nil {
		t.Error("inverted watermarks should be invalid")
	}
	if err := (Policy{HighWater: 0.9, LowWater: 0.5}).Validate(); err == nil {
		t.Error("zero headroom should be invalid")
	}
}

func TestPlanOffloadRespectsHeadroom(t *testing.T) {
	pol := Policy{HighWater: 0.5, LowWater: 0.4, Headroom: 0.05}
	boxes := []BoxLoad{
		{Box: "a", Work: 0.04}, {Box: "b", Work: 0.04}, {Box: "c", Work: 0.04},
	}
	peers := []PeerLoad{{Node: "p", Utilization: 0.1, FreeBandwidth: 1e9}}
	d := PlanOffload(1.0, boxes, peers, pol)
	if d == nil {
		t.Fatal("plan expected")
	}
	if d.WorkMoved > 0.05+0.04 { // headroom plus at most one box overshoot
		t.Errorf("moved %.3f, exceeding headroom", d.WorkMoved)
	}
}

func TestChooseSlide(t *testing.T) {
	cases := []struct {
		sel, tol float64
		want     SlideDirection
	}{
		{0.1, 0.2, SlideUpstream},   // selective filter: go upstream
		{3.0, 0.2, SlideDownstream}, // join-like amplifier: go downstream
		{1.0, 0.2, NoSlide},         // neutral
		{0.9, 0.2, NoSlide},         // inside tolerance band
		{0.9, -1, SlideUpstream},    // negative tolerance repaired to 0
	}
	for _, c := range cases {
		if got := ChooseSlide(c.sel, c.tol); got != c.want {
			t.Errorf("ChooseSlide(%g, %g) = %v, want %v", c.sel, c.tol, got, c.want)
		}
	}
}

func TestContentAndHashPredicates(t *testing.T) {
	s := stream.MustSchema("s",
		stream.Field{Name: "region", Kind: stream.KindString},
		stream.Field{Name: "A", Kind: stream.KindInt},
	)
	p := ContentPredicate("region", stream.String("cambridge"))
	op.MustBind(p, s)
	if !p.Eval(stream.NewTuple(stream.String("cambridge"), stream.Int(1))).AsBool() {
		t.Error("content predicate should match cambridge")
	}
	if p.Eval(stream.NewTuple(stream.String("boston"), stream.Int(1))).AsBool() {
		t.Error("content predicate should not match boston")
	}
	h := HashHalf("A")
	op.MustBind(h, s)
	matched := 0
	for i := int64(0); i < 1000; i++ {
		if h.Eval(stream.NewTuple(stream.String("x"), stream.Int(i))).AsBool() {
			matched++
		}
	}
	if matched < 350 || matched > 650 {
		t.Errorf("hash half matched %d of 1000", matched)
	}
}

func TestKeyTrackerTopAndShare(t *testing.T) {
	k := NewKeyTracker(1, 0)
	for i := 0; i < 100; i++ {
		k.Observe("hot")
	}
	for i := 0; i < 10; i++ {
		k.Observe("warm")
	}
	k.Observe("cold")
	top := k.TopKeys(2)
	if len(top) != 2 || top[0] != "hot" || top[1] != "warm" {
		t.Errorf("TopKeys = %v", top)
	}
	if got := k.Share([]string{"hot"}); got < 0.85 || got > 0.95 {
		t.Errorf("hot share = %g", got)
	}
	if k.Share(nil) != 0 {
		t.Error("empty key set share should be 0")
	}
	if NewKeyTracker(1, 0).Share([]string{"x"}) != 0 {
		t.Error("empty tracker share should be 0")
	}
}

func TestKeyTrackerDecayForgetsOldHotKeys(t *testing.T) {
	k := NewKeyTracker(0.25, 100)
	for i := 0; i < 300; i++ {
		k.Observe("old")
	}
	for i := 0; i < 300; i++ {
		k.Observe("new")
	}
	top := k.TopKeys(1)
	if len(top) != 1 || top[0] != "new" {
		t.Errorf("decay should promote the recent key; top = %v", top)
	}
}

func TestRateSplitBalancesSkew(t *testing.T) {
	s := stream.MustSchema("s", stream.Field{Name: "A", Kind: stream.KindInt})
	k := NewKeyTracker(1, 0)
	rng := rand.New(rand.NewSource(7))
	zipf := rand.NewZipf(rng, 1.4, 1, 63)
	var tuples []stream.Tuple
	for i := 0; i < 20000; i++ {
		key := int64(zipf.Uint64())
		k.Observe(fmt.Sprint(key))
		tuples = append(tuples, stream.NewTuple(stream.Int(key)))
	}
	pred, share, err := RateSplit(k, "A", 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if share < 0.4 {
		t.Errorf("predicted share = %g", share)
	}
	op.MustBind(pred, s)
	matched := 0
	for _, tp := range tuples {
		if pred.Eval(tp).AsBool() {
			matched++
		}
	}
	frac := float64(matched) / float64(len(tuples))
	// Zipf 1.4's head key alone can exceed 50%; the greedy packer stops
	// as soon as the target is crossed, so the match fraction should be
	// near the predicted share.
	if frac < share-0.05 || frac > share+0.05 {
		t.Errorf("matched %.3f, predicted %.3f", frac, share)
	}
	// The predicate serializes and re-parses (remote definition).
	if _, err := op.Parse(pred.String()); err != nil {
		t.Errorf("rate-split predicate does not round trip: %v", err)
	}
	if !strings.Contains(pred.String(), "==") {
		t.Errorf("predicate shape: %s", pred)
	}
}

func TestRateSplitValidation(t *testing.T) {
	k := NewKeyTracker(1, 0)
	if _, _, err := RateSplit(k, "A", 0.5); err == nil {
		t.Error("empty tracker should fail")
	}
	k.Observe("3")
	if _, _, err := RateSplit(k, "A", 0); err == nil {
		t.Error("target 0 should fail")
	}
	if _, _, err := RateSplit(k, "A", 1); err == nil {
		t.Error("target 1 should fail")
	}
	k2 := NewKeyTracker(1, 0)
	k2.Observe("not-an-int")
	if _, _, err := RateSplit(k2, "A", 0.5); err == nil {
		t.Error("non-integer keys should fail")
	}
}
