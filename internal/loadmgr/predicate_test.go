package loadmgr

import (
	"fmt"
	"testing"

	"repro/internal/op"
	"repro/internal/stream"
)

var aSchema = stream.MustSchema("s", stream.Field{Name: "A", Kind: stream.KindInt})

// TestRateSplitTable drives RateSplit through its domain edge cases: an
// empty observation domain must error, a single-key domain must produce a
// predicate matching exactly that key, and skewed domains must pack the
// hot keys first.
func TestRateSplitTable(t *testing.T) {
	cases := []struct {
		name      string
		obs       map[string]int // key -> observation count
		target    float64
		wantErr   bool
		match     []int64 // keys the predicate must accept
		noMatch   []int64 // keys the predicate must reject
		wantShare float64 // lower bound on the predicted share
	}{
		{
			name: "empty domain", obs: nil, target: 0.5, wantErr: true,
		},
		{
			name: "target zero invalid", obs: map[string]int{"1": 5},
			target: 0, wantErr: true,
		},
		{
			name: "target one invalid", obs: map[string]int{"1": 5},
			target: 1, wantErr: true,
		},
		{
			name: "single key", obs: map[string]int{"7": 10}, target: 0.5,
			match: []int64{7}, noMatch: []int64{6, 8, 0}, wantShare: 1,
		},
		{
			name: "skewed pair takes only the hot key",
			obs:  map[string]int{"1": 90, "2": 10}, target: 0.5,
			match: []int64{1}, noMatch: []int64{2}, wantShare: 0.9,
		},
		{
			name: "uniform trio needs two keys",
			obs:  map[string]int{"1": 10, "2": 10, "3": 10}, target: 0.5,
			// Ties break by key string: "1" then "2" are packed.
			match: []int64{1, 2}, noMatch: []int64{3}, wantShare: 0.6,
		},
		{
			name: "non-integer key rejected",
			obs:  map[string]int{"cambridge": 5}, target: 0.5, wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			k := NewKeyTracker(1, 0)
			for key, n := range tc.obs {
				for i := 0; i < n; i++ {
					k.Observe(key)
				}
			}
			pred, share, err := RateSplit(k, "A", tc.target)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got predicate %v share %g", pred, share)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if share < tc.wantShare-1e-9 {
				t.Errorf("share = %g, want >= %g", share, tc.wantShare)
			}
			op.MustBind(pred, aSchema)
			for _, key := range tc.match {
				if !pred.Eval(stream.NewTuple(stream.Int(key))).AsBool() {
					t.Errorf("key %d should match %s", key, pred)
				}
			}
			for _, key := range tc.noMatch {
				if pred.Eval(stream.NewTuple(stream.Int(key))).AsBool() {
					t.Errorf("key %d should not match %s", key, pred)
				}
			}
		})
	}
}

// TestHashBucketsPartition checks the bucketed hash predicates' range
// algebra: for any modulus the buckets must tile the key domain — no key
// matches two buckets (overlap) and none falls through (gap).
func TestHashBucketsPartition(t *testing.T) {
	for _, n := range []int64{2, 3, 5} {
		t.Run(fmt.Sprintf("mod%d", n), func(t *testing.T) {
			preds := make([]op.Expr, n)
			for b := int64(0); b < n; b++ {
				preds[b] = op.NewHashMod([]string{"A"}, n, b)
				op.MustBind(preds[b], aSchema)
			}
			for key := int64(0); key < 500; key++ {
				tp := stream.NewTuple(stream.Int(key))
				hits := 0
				for _, p := range preds {
					if p.Eval(tp).AsBool() {
						hits++
					}
				}
				if hits != 1 {
					t.Fatalf("key %d matched %d of %d buckets", key, hits, n)
				}
			}
		})
	}
}

// TestRateSplitWideningTargetsNest checks that predicates for overlapping
// targets nest: everything the 0.3-share predicate accepts, the 0.8-share
// predicate built from the same statistics must accept too (the greedy
// packer extends the hot-key prefix, it never swaps it out).
func TestRateSplitWideningTargetsNest(t *testing.T) {
	k := NewKeyTracker(1, 0)
	for key := 0; key < 10; key++ {
		for i := 0; i <= 100-10*key; i++ {
			k.Observe(fmt.Sprint(key))
		}
	}
	narrow, _, err := RateSplit(k, "A", 0.3)
	if err != nil {
		t.Fatal(err)
	}
	wide, _, err := RateSplit(k, "A", 0.8)
	if err != nil {
		t.Fatal(err)
	}
	op.MustBind(narrow, aSchema)
	op.MustBind(wide, aSchema)
	for key := int64(0); key < 10; key++ {
		tp := stream.NewTuple(stream.Int(key))
		if narrow.Eval(tp).AsBool() && !wide.Eval(tp).AsBool() {
			t.Errorf("key %d in the narrow split but not the wide one", key)
		}
	}
}
