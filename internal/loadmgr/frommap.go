package loadmgr

import "repro/internal/stats"

// OffloadFromMap computes the load-share daemon's decision from the
// gossiped windowed LoadMap instead of instantaneous local readings: the
// node's own digest supplies its smoothed utilization and per-box load
// shares, and every other digest in the map is a candidate peer. This is
// the stats-plane consumer the paper's §5.2 stability argument wants —
// a one-window burst barely moves the windowed average, so it cannot
// trigger the box flapping that point-in-time values cause.
//
// boxFilter restricts the movable boxes (nil allows all): the map may
// still carry decaying series for boxes that already moved away, and
// only boxes the node currently hosts can be offered. linkBW reports the
// available bytes/sec toward a peer; ok=false excludes peers with no
// usable link.
func OffloadFromMap(self string, lm *stats.LoadMap, boxFilter func(box string) bool, linkBW func(peer string) (float64, bool), pol Policy) *Decision {
	d, ok := lm.Get(self)
	if !ok {
		return nil
	}
	var boxes []BoxLoad
	for _, b := range d.Boxes {
		if b.Load <= 0 {
			continue
		}
		if boxFilter != nil && !boxFilter(b.Box) {
			continue
		}
		boxes = append(boxes, BoxLoad{Box: b.Box, Work: b.Load})
	}
	var peers []PeerLoad
	for _, pd := range lm.Snapshot() {
		if pd.Node == self {
			continue
		}
		bw, ok := linkBW(pd.Node)
		if !ok {
			continue
		}
		peers = append(peers, PeerLoad{
			Node: pd.Node, Utilization: pd.Util, FreeBandwidth: bw,
		})
	}
	return PlanOffload(d.Util, boxes, peers, pol)
}
