package loadmgr

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

var abSchema = stream.MustSchema("ab",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

// fig2Stream is the sample tuple stream of paper Figure 2.
func fig2Stream() []stream.Tuple {
	rows := [][2]int64{{1, 2}, {1, 3}, {2, 2}, {2, 1}, {2, 6}, {4, 5}, {4, 2}}
	out := make([]stream.Tuple, len(rows))
	for i, r := range rows {
		out[i] = stream.Tuple{Seq: uint64(i + 1), TS: int64(i + 1),
			Vals: []stream.Value{stream.Int(r[0]), stream.Int(r[1])}}
	}
	return out
}

func singleBoxNet(t *testing.T, id string, spec op.Spec) *query.Network {
	t.Helper()
	n, err := query.NewBuilder("single").
		AddBox(id, spec).
		BindInput("in", abSchema, id, 0).
		BindOutput("out", id, 0, nil).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// runNet drains tuples through a network and returns the "out" tuples.
func runNet(t *testing.T, n *query.Network, in []stream.Tuple) []stream.Tuple {
	t.Helper()
	e, err := engine.New(n, engine.Config{Clock: engine.NewVirtualClock(1)})
	if err != nil {
		t.Fatal(err)
	}
	var out []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { out = append(out, tp) })
	for _, tp := range in {
		e.Ingest("in", tp.Clone())
	}
	e.Drain()
	return out
}

func sortedTuples(ts []stream.Tuple) []string {
	out := make([]string, len(ts))
	for i, t := range ts {
		out[i] = stream.NewTuple(t.Vals...).String()
	}
	sort.Strings(out)
	return out
}

func equalAsMultiset(a, b []stream.Tuple) bool {
	sa, sb := sortedTuples(a), sortedTuples(b)
	if len(sa) != len(sb) {
		return false
	}
	for i := range sa {
		if sa[i] != sb[i] {
			return false
		}
	}
	return true
}

func tumbleSpec(agg string) op.Spec {
	return op.Spec{Kind: "tumble", Params: map[string]string{
		"agg": agg, "on": "B", "groupby": "A"}}
}

// TestSplitTumblePaperExample reproduces the §5.1 worked example end to
// end: Tumble(cnt, group-by A) over the Figure 2 stream, split with
// predicate B < 3, produces the same result as the unsplit box —
// (A=1, 2) and (A=2, 3) — with the A=4 window appearing on drain.
func TestSplitTumblePaperExample(t *testing.T) {
	base := singleBoxNet(t, "tb", tumbleSpec("cnt"))
	split, info, err := Split(base, "tb", op.MustParse("B < 3"))
	if err != nil {
		t.Fatal(err)
	}
	if info.Router != "tb.split" || len(info.Merge) != 3 {
		t.Fatalf("info = %+v", info)
	}
	got := runNet(t, split, fig2Stream())
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(2)),
		stream.NewTuple(stream.Int(2), stream.Int(3)),
		stream.NewTuple(stream.Int(4), stream.Int(2)),
	}
	if !stream.TuplesEqualValues(got, want) {
		t.Fatalf("split output:\n%swant:\n%s", stream.FormatTuples(got), stream.FormatTuples(want))
	}
	// And it equals the unsplit network's output exactly.
	unsplit := runNet(t, base, fig2Stream())
	if !stream.TuplesEqualValues(got, unsplit) {
		t.Fatalf("split differs from unsplit:\n%svs\n%s",
			stream.FormatTuples(got), stream.FormatTuples(unsplit))
	}
}

// TestSplitPaperMachineOutputs pins the intermediate per-machine results
// the paper walks through: machine 1 (tuples 1,2,3,4,7) emits (1,2) and
// (2,2); machine 2 (tuples 5,6) emits (2,1); the merge yields (1,2),(2,3).
func TestSplitPaperMachineOutputs(t *testing.T) {
	in := fig2Stream()
	m1In := []stream.Tuple{in[0], in[1], in[2], in[3], in[6]}
	m2In := []stream.Tuple{in[4], in[5]}
	base := singleBoxNet(t, "tb", tumbleSpec("cnt"))

	m1 := runNet(t, base, m1In)
	want1 := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(2)),
		stream.NewTuple(stream.Int(2), stream.Int(2)),
		stream.NewTuple(stream.Int(4), stream.Int(1)), // drained open window
	}
	if !stream.TuplesEqualValues(m1, want1) {
		t.Fatalf("machine 1:\n%s", stream.FormatTuples(m1))
	}
	m2 := runNet(t, singleBoxNet(t, "tb", tumbleSpec("cnt")), m2In)
	want2 := []stream.Tuple{
		stream.NewTuple(stream.Int(2), stream.Int(1)),
		stream.NewTuple(stream.Int(4), stream.Int(1)),
	}
	if !stream.TuplesEqualValues(m2, want2) {
		t.Fatalf("machine 2:\n%s", stream.FormatTuples(m2))
	}
	// Merge network alone: union + wsort + tumble(sum).
	merge := query.NewBuilder("merge").
		AddBox("u", op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}).
		AddBox("ws", op.Spec{Kind: "wsort", Params: map[string]string{
			"attrs": "A", "timeout": fmt.Sprint(MergeWSortTimeout)}}).
		AddBox("sum", op.Spec{Kind: "tumble", Params: map[string]string{
			"agg": "sum", "on": "result", "groupby": "A"}}).
		Connect("u", "ws").Connect("ws", "sum").
		BindInput("in", m1Schema(t), "u", 0).
		BindInput("in2", m1Schema(t), "u", 1).
		BindOutput("out", "sum", 0, nil).
		MustBuild()
	e, err := engine.New(merge, engine.Config{Clock: engine.NewVirtualClock(1)})
	if err != nil {
		t.Fatal(err)
	}
	var got []stream.Tuple
	e.OnOutput(func(_ string, tp stream.Tuple) { got = append(got, tp) })
	for _, tp := range m1 {
		e.Ingest("in", tp)
	}
	for _, tp := range m2 {
		e.Ingest("in2", tp)
	}
	e.Drain()
	want := []stream.Tuple{
		stream.NewTuple(stream.Int(1), stream.Int(2)),
		stream.NewTuple(stream.Int(2), stream.Int(3)),
		stream.NewTuple(stream.Int(4), stream.Int(2)),
	}
	if !stream.TuplesEqualValues(got, want) {
		t.Fatalf("merge output:\n%s", stream.FormatTuples(got))
	}
}

func m1Schema(t *testing.T) *stream.Schema {
	t.Helper()
	return stream.MustSchema("partial",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "result", Kind: stream.KindInt},
	)
}

// TestSplitFilterTransparent is Fig 5: a split Filter plus Union returns
// the same tuples as the unsplit Filter (as a multiset; the two branches
// may interleave).
func TestSplitFilterTransparent(t *testing.T) {
	spec := op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 4"}}
	base := singleBoxNet(t, "f", spec)
	split, info, err := Split(base, "f", HashHalf("A"))
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Merge) != 1 {
		t.Fatalf("filter merge should be a single Union: %+v", info)
	}
	rng := rand.New(rand.NewSource(3))
	var in []stream.Tuple
	for i := 0; i < 500; i++ {
		in = append(in, stream.NewTuple(
			stream.Int(int64(rng.Intn(20))), stream.Int(int64(rng.Intn(10)))))
	}
	a := runNet(t, base, in)
	b := runNet(t, split, in)
	if !equalAsMultiset(a, b) {
		t.Fatalf("filter split not transparent: %d vs %d tuples", len(a), len(b))
	}
}

// TestSplitTumbleTransparentProperty: for every combinable aggregate and
// random streams with non-decreasing group attribute (each group is a
// single run, the regime in which the §5.1 merge is defined), split
// output equals unsplit output.
func TestSplitTumbleTransparentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, agg := range []string{"cnt", "sum", "max", "min"} {
		for trial := 0; trial < 10; trial++ {
			var in []stream.Tuple
			a := int64(0)
			for i := 0; i < 100; i++ {
				if rng.Intn(4) == 0 {
					a += 1 + int64(rng.Intn(3))
				}
				in = append(in, stream.Tuple{
					Seq:  uint64(i + 1),
					Vals: []stream.Value{stream.Int(a), stream.Int(int64(rng.Intn(50)))},
				})
			}
			base := singleBoxNet(t, "tb", tumbleSpec(agg))
			pred := op.MustParse(fmt.Sprintf("B < %d", 5+rng.Intn(40)))
			split, _, err := Split(base, "tb", pred)
			if err != nil {
				t.Fatal(err)
			}
			want := runNet(t, base, in)
			got := runNet(t, split, in)
			if !stream.TuplesEqualValues(got, want) {
				t.Fatalf("agg %s trial %d:\nsplit:\n%sunsplit:\n%s",
					agg, trial, stream.FormatTuples(got), stream.FormatTuples(want))
			}
		}
	}
}

func TestSplitRejectsUnsplittable(t *testing.T) {
	// avg has no combination function (§5.1).
	base := singleBoxNet(t, "tb", tumbleSpec("avg"))
	if _, _, err := Split(base, "tb", op.MustParse("B < 3")); err == nil {
		t.Error("Tumble(avg) split should be rejected")
	}
	// Unknown box.
	if _, _, err := Split(base, "ghost", op.MustParse("true")); err == nil {
		t.Error("unknown box should be rejected")
	}
	// Join has two inputs.
	joinNet := query.NewBuilder("j").
		AddBox("j", op.Spec{Kind: "join", Params: map[string]string{
			"leftkey": "A", "rightkey": "A", "window": "10"}}).
		BindInput("l", abSchema, "j", 0).
		BindInput("r", abSchema, "j", 1).
		BindOutput("out", "j", 0, nil).
		MustBuild()
	if _, _, err := Split(joinNet, "j", op.MustParse("true")); err == nil {
		t.Error("join split should be rejected")
	}
	// Dual-output filter.
	if err := Splittable(op.Spec{Kind: "filter", Params: map[string]string{
		"predicate": "true", "falseport": "true"}}); err == nil {
		t.Error("dual filter should be rejected")
	}
	if err := Splittable(op.Spec{Kind: "tumble", Params: map[string]string{"agg": "bogus"}}); err == nil {
		t.Error("unknown aggregate should be rejected")
	}
}

func TestSplitPreservesSurroundings(t *testing.T) {
	// A chain f1 -> tb -> f2 with the middle box split: the neighbors
	// and bindings must survive.
	n := query.NewBuilder("chain").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 100"}}).
		AddBox("tb", tumbleSpec("cnt")).
		AddBox("f2", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "result > 0"}}).
		Connect("f1", "tb").Connect("tb", "f2").
		BindInput("in", abSchema, "f1", 0).
		BindOutput("out", "f2", 0, nil).
		MustBuild()
	split, info, err := Split(n, "tb", op.MustParse("B < 3"))
	if err != nil {
		t.Fatal(err)
	}
	if split.Box("tb") != nil {
		t.Error("original box should be gone")
	}
	for _, id := range []string{"f1", "f2", info.Router, info.Branches[0], info.Branches[1]} {
		if split.Box(id) == nil {
			t.Errorf("missing box %q", id)
		}
	}
	got := runNet(t, split, fig2Stream())
	want := runNet(t, n, fig2Stream())
	if !stream.TuplesEqualValues(got, want) {
		t.Fatalf("chain split not transparent:\n%svs\n%s",
			stream.FormatTuples(got), stream.FormatTuples(want))
	}
}

func TestSplitWSort(t *testing.T) {
	spec := op.Spec{Kind: "wsort", Params: map[string]string{
		"attrs": "A", "timeout": fmt.Sprint(MergeWSortTimeout)}}
	base := singleBoxNet(t, "ws", spec)
	split, _, err := Split(base, "ws", HashHalf("A"))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	var in []stream.Tuple
	for i := 0; i < 200; i++ {
		in = append(in, stream.NewTuple(stream.Int(int64(rng.Intn(50))), stream.Int(int64(i))))
	}
	got := runNet(t, split, in)
	want := runNet(t, base, in)
	if len(got) != len(want) {
		t.Fatalf("wsort split lost tuples: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Field(0).AsInt() != want[i].Field(0).AsInt() {
			t.Fatalf("sort order diverges at %d", i)
		}
	}
}
