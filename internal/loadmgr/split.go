// Package loadmgr implements the load management of §5: the box splitting
// transformation with operator-specific merge networks (Figs 5 and 6), the
// split-predicate policies of §5.2 (content-based, statistics-based, and
// hash-half), and the pairwise offload policy that the decentralized
// load-share daemons run. The physical movement of boxes between nodes
// (box sliding, Fig 4) is a deployment change orchestrated by
// internal/core using the decisions computed here.
package loadmgr

import (
	"fmt"

	"repro/internal/op"
	"repro/internal/query"
)

// SplitInfo describes the boxes a split introduced, so the caller can map
// the two parallel branches to different machines (Fig 7).
type SplitInfo struct {
	// Router is the Filter box acting as semantic router for the split.
	Router string
	// Branches are the two copies of the split box.
	Branches [2]string
	// Merge lists the boxes of the merge network in flow order (a Union
	// for stateless boxes; Union, WSort, Tumble for a Tumble split).
	Merge []string
}

// Splittable reports whether a box of the given spec can be split
// transparently (§5.1): single-input single-output boxes whose results can
// be merged. Tumble requires its aggregate to have a combination function;
// avg, for instance, cannot be split. The per-operator contract lives in
// op.SplitProfileFor, shared with the engine's runtime partitioning.
func Splittable(spec op.Spec) error {
	if _, err := op.SplitProfileFor(spec); err != nil {
		return fmt.Errorf("loadmgr: %w", err)
	}
	return nil
}

// MergeWSortTimeout is the timeout given to the WSort inside a Tumble
// split's merge network. The paper's worked example assumes "a large
// enough timeout argument"; continuous deployments should size it to the
// expected inter-branch skew.
const MergeWSortTimeout = op.SplitMergeTimeout

// Split replaces the named box with its split form: a Filter router with
// predicate pred partitioning input tuples between two copies of the box,
// whose outputs are merged back into a single stream so the split is
// transparent — the split network returns the same result as the unsplit
// one (§5.1). The box being split must have a single input and a single
// output.
//
// The merge network depends on the operator: a plain Union suffices for
// stateless boxes (Fig 5); a Tumble needs Union, then WSort on the
// group-by attributes, then a Tumble applying the combination function
// (Fig 6); a WSort re-sorts with a second WSort.
func Split(net *query.Network, boxID string, pred op.Expr) (*query.Network, *SplitInfo, error) {
	box := net.Box(boxID)
	if box == nil {
		return nil, nil, fmt.Errorf("loadmgr: no box %q", boxID)
	}
	if err := Splittable(box.Spec); err != nil {
		return nil, nil, err
	}
	inst, err := op.Build(box.Spec)
	if err != nil {
		return nil, nil, err
	}
	if inst.NumIn() != 1 || inst.NumOut() != 1 {
		return nil, nil, fmt.Errorf("loadmgr: only single-input single-output boxes can be split")
	}

	info := &SplitInfo{
		Router:   boxID + ".split",
		Branches: [2]string{boxID + ".1", boxID + ".2"},
	}

	b := net.Rewrite()
	// Capture the split box's surroundings before removal.
	upArcs := net.Upstream(boxID)
	downArcs := net.Downstream(boxID)
	var inputFeeds []struct {
		name string
		port int
	}
	for _, in := range net.InputsOf(boxID) {
		for _, d := range in.Dests {
			if d.Box == boxID {
				inputFeeds = append(inputFeeds, struct {
					name string
					port int
				}{in.Name, d.Port})
			}
		}
	}
	outBindings := net.OutputsOf(boxID)

	b.RemoveBox(boxID)

	// The semantic router: tuples satisfying pred go to branch 1, the
	// rest to branch 2 via the false port.
	routerSpec := op.Spec{Kind: op.KindFilter, Params: map[string]string{
		"predicate": pred.String(),
		"falseport": "true",
	}}
	b.AddBox(info.Router, routerSpec)
	b.AddBox(info.Branches[0], box.Spec.Clone())
	b.AddBox(info.Branches[1], box.Spec.Clone())
	b.ConnectPorts(query.Port{Box: info.Router, Port: 0}, query.Port{Box: info.Branches[0]}, false)
	b.ConnectPorts(query.Port{Box: info.Router, Port: 1}, query.Port{Box: info.Branches[1]}, false)

	// The merge network.
	unionID := boxID + ".merge.union"
	b.AddBox(unionID, op.Spec{Kind: op.KindUnion, Params: map[string]string{"inputs": "2"}})
	b.ConnectPorts(query.Port{Box: info.Branches[0]}, query.Port{Box: unionID, Port: 0}, false)
	b.ConnectPorts(query.Port{Box: info.Branches[1]}, query.Port{Box: unionID, Port: 1}, false)
	info.Merge = []string{unionID}
	mergeTail := unionID

	switch box.Spec.Kind {
	case op.KindTumble:
		groupBy := box.Spec.Params["groupby"]
		agg := op.MustAggregate(box.Spec.Params["agg"])
		wsortID := boxID + ".merge.wsort"
		b.AddBox(wsortID, op.Spec{Kind: op.KindWSort, Params: map[string]string{
			"attrs":   groupBy,
			"timeout": fmt.Sprint(MergeWSortTimeout),
		}})
		b.Connect(mergeTail, wsortID)
		combineID := boxID + ".merge.tumble"
		b.AddBox(combineID, op.Spec{Kind: op.KindTumble, Params: map[string]string{
			"agg":     agg.Combine().Name(),
			"on":      op.ResultField,
			"groupby": groupBy,
		}})
		b.Connect(wsortID, combineID)
		info.Merge = append(info.Merge, wsortID, combineID)
		mergeTail = combineID
	case op.KindWSort:
		wsortID := boxID + ".merge.wsort"
		spec := box.Spec.Clone()
		b.AddBox(wsortID, spec)
		b.Connect(mergeTail, wsortID)
		info.Merge = append(info.Merge, wsortID)
		mergeTail = wsortID
	}

	// Rewire the surroundings: feeds into the old box now feed the
	// router; the old box's consumers now consume the merge tail.
	for _, a := range upArcs {
		b.ConnectPorts(a.From, query.Port{Box: info.Router}, a.ConnectionPoint)
	}
	for _, f := range inputFeeds {
		in := net.Inputs()[f.name]
		b.BindInput(f.name, in.Schema, info.Router, 0)
	}
	for _, a := range downArcs {
		b.ConnectPorts(query.Port{Box: mergeTail}, a.To, a.ConnectionPoint)
	}
	for _, o := range outBindings {
		b.BindOutput(o.Name, mergeTail, 0, o.QoS)
	}

	out, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("loadmgr: split of %q produced invalid network: %w", boxID, err)
	}
	return out, info, nil
}
