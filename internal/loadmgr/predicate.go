package loadmgr

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/op"
	"repro/internal/stream"
)

// The split-predicate policies of §5.2. The filter predicate p defines the
// redistributed load, and "the choice of p is crucial to the effectiveness
// of this strategy": it may depend on stream content ("all streams
// generated in Cambridge"), on statistics ("the top 10 streams by arrival
// rate"), or on a simple static rule ("half of the available streams"),
// and it may be re-tuned as network characteristics change.

// ContentPredicate builds a content-based predicate: field == value routes
// to the first branch.
func ContentPredicate(field string, value stream.Value) op.Expr {
	return op.NewCmp(op.EQ, op.NewCol(field), op.NewConst(value))
}

// HashHalf builds the statistics-free "half of the available streams"
// predicate: hash(field) % 2 == 0.
func HashHalf(field string) op.Expr {
	return op.NewHashMod([]string{field}, 2, 0)
}

// KeyTracker maintains approximate per-key arrival statistics with
// exponential decay, the "metadata or statistics about the streams" that
// rate-based predicates consult. It is the monitoring half of re-tuning p
// over time.
type KeyTracker struct {
	mu     sync.Mutex
	counts map[string]float64
	decay  float64
	seen   uint64
	every  uint64
}

// NewKeyTracker returns a tracker that multiplies all counts by decay
// (in (0,1]) every decayEvery observations; decay 1 disables aging.
func NewKeyTracker(decay float64, decayEvery int) *KeyTracker {
	if decay <= 0 || decay > 1 {
		decay = 0.5
	}
	if decayEvery < 1 {
		decayEvery = 1024
	}
	return &KeyTracker{
		counts: map[string]float64{},
		decay:  decay,
		every:  uint64(decayEvery),
	}
}

// Observe records one arrival of key.
func (k *KeyTracker) Observe(key string) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.counts[key]++
	k.seen++
	if k.decay < 1 && k.seen%k.every == 0 {
		for key, c := range k.counts {
			c *= k.decay
			if c < 0.5 {
				delete(k.counts, key)
			} else {
				k.counts[key] = c
			}
		}
	}
}

// TopKeys returns up to n keys by descending observed rate.
func (k *KeyTracker) TopKeys(n int) []string {
	k.mu.Lock()
	defer k.mu.Unlock()
	type kc struct {
		key string
		c   float64
	}
	all := make([]kc, 0, len(k.counts))
	for key, c := range k.counts {
		all = append(all, kc{key, c})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].key < all[j].key // deterministic ties
	})
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = all[i].key
	}
	return out
}

// Share returns the fraction of observed arrivals carried by the given
// keys.
func (k *KeyTracker) Share(keys []string) float64 {
	k.mu.Lock()
	defer k.mu.Unlock()
	var total, part float64
	for _, c := range k.counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	for _, key := range keys {
		part += k.counts[key]
	}
	return part / total
}

// RateSplit builds a statistics-based predicate over an integer key field:
// it greedily packs the hottest keys until their observed share reaches
// target (e.g. 0.5 to halve the load), producing
// (field == k1 || field == k2 || ...). Re-invoking it after the tracker
// has seen new traffic re-tunes p — "as the network characteristics
// change, a simple adjustment to p could be enough to rebalance the load"
// (§5.2). The returned share is the predicate's expected traffic fraction.
func RateSplit(tracker *KeyTracker, field string, target float64) (op.Expr, float64, error) {
	if target <= 0 || target >= 1 {
		return nil, 0, fmt.Errorf("loadmgr: target share must be in (0,1)")
	}
	tracker.mu.Lock()
	type kc struct {
		key string
		c   float64
	}
	all := make([]kc, 0, len(tracker.counts))
	var total float64
	for key, c := range tracker.counts {
		all = append(all, kc{key, c})
		total += c
	}
	tracker.mu.Unlock()
	if total == 0 {
		return nil, 0, fmt.Errorf("loadmgr: no observations to split on")
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].c != all[j].c {
			return all[i].c > all[j].c
		}
		return all[i].key < all[j].key
	})
	var expr op.Expr
	share := 0.0
	for _, e := range all {
		if share >= target {
			break
		}
		v, err := stream.ParseValue(stream.KindInt, e.key)
		if err != nil {
			return nil, 0, fmt.Errorf("loadmgr: key %q is not an integer: %w", e.key, err)
		}
		eq := op.NewCmp(op.EQ, op.NewCol(field), op.NewConst(v))
		if expr == nil {
			expr = eq
		} else {
			expr = op.NewOr(expr, eq)
		}
		share += e.c / total
	}
	if expr == nil {
		return nil, 0, fmt.Errorf("loadmgr: nothing selected")
	}
	return expr, share, nil
}
