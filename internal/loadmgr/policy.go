package loadmgr

import (
	"fmt"
	"sort"
)

// BoxLoad is the measured load contribution of one box on a node: the
// fraction of the node's processing it consumes and the bandwidth its
// input and output arcs would add to the network if it moved.
type BoxLoad struct {
	Box string
	// Work is the box's share of node processing (cost * rate), in
	// arbitrary but consistent units.
	Work float64
	// MoveBandwidth is the bytes/sec the box's cut arcs would carry
	// across the machine boundary if the box moved (§5.2: "the decision
	// of which pieces to move must consider bandwidth availability").
	MoveBandwidth float64
}

// PeerLoad is a neighbor's advertised state.
type PeerLoad struct {
	Node string
	// Utilization is the peer's processing utilization (1.0 = saturated).
	Utilization float64
	// FreeBandwidth is the available bytes/sec on the link to the peer.
	FreeBandwidth float64
}

// Policy tunes the pairwise offload decision.
type Policy struct {
	// HighWater: a node above this utilization seeks to offload.
	HighWater float64
	// LowWater: a peer below this utilization accepts load. The gap
	// between the two watermarks is the hysteresis band that prevents
	// the instability §5.2 warns about ("shifting boxes around too
	// frequently could lead to instability").
	LowWater float64
	// Headroom caps how much utilization the move may add to the peer.
	Headroom float64
	// CooldownPeriods is how many decision periods a node must wait
	// after moving boxes before moving again.
	CooldownPeriods int
}

// DefaultPolicy returns the watermarks used by the experiments.
func DefaultPolicy() Policy {
	return Policy{HighWater: 0.85, LowWater: 0.6, Headroom: 0.25, CooldownPeriods: 3}
}

// Validate checks watermark sanity.
func (p Policy) Validate() error {
	if p.HighWater <= p.LowWater {
		return fmt.Errorf("loadmgr: HighWater must exceed LowWater")
	}
	if p.Headroom <= 0 {
		return fmt.Errorf("loadmgr: Headroom must be positive")
	}
	return nil
}

// Decision is a planned pairwise offload: move the listed boxes to the
// peer.
type Decision struct {
	To    string
	Boxes []string
	// WorkMoved is the utilization expected to shift.
	WorkMoved float64
}

// PlanOffload computes the §5.1 load-share daemon's decision for one node:
// given local utilization, the per-box load breakdown, and the advertised
// state of the neighbors, pick a peer and a set of boxes that moves "just
// enough" processing — enough to bring the node under the high watermark,
// but no more than the peer's headroom and link bandwidth allow. It
// returns nil when no move is warranted or possible.
//
// The decision is deliberately local and pairwise (§3.1): no global view,
// no coordinator.
func PlanOffload(localUtil float64, boxes []BoxLoad, peers []PeerLoad, pol Policy) *Decision {
	if err := pol.Validate(); err != nil {
		return nil
	}
	if localUtil <= pol.HighWater || len(boxes) == 0 {
		return nil
	}
	// Prefer the least-loaded willing peer.
	var best *PeerLoad
	for i := range peers {
		p := &peers[i]
		if p.Utilization >= pol.LowWater {
			continue
		}
		if best == nil || p.Utilization < best.Utilization {
			best = p
		}
	}
	if best == nil {
		return nil
	}
	// Work to shed: get back under the high watermark, bounded by the
	// peer's headroom.
	want := localUtil - pol.HighWater
	limit := pol.Headroom
	if gap := pol.HighWater - best.Utilization; gap < limit {
		limit = gap
	}
	if want > limit {
		want = limit
	}
	if want <= 0 {
		return nil
	}
	// Greedy: smallest boxes first, so we move just enough and keep the
	// change durable rather than sloshing a giant box back and forth.
	sorted := append([]BoxLoad(nil), boxes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Work < sorted[j].Work })
	var chosen []string
	moved := 0.0
	bw := 0.0
	for _, b := range sorted {
		if moved >= want {
			break
		}
		if bw+b.MoveBandwidth > best.FreeBandwidth {
			continue // §5.2: the peer may have cycles but not bandwidth
		}
		chosen = append(chosen, b.Box)
		moved += b.Work
		bw += b.MoveBandwidth
	}
	if len(chosen) == 0 || moved <= 0 {
		return nil
	}
	return &Decision{To: best.Node, Boxes: chosen, WorkMoved: moved}
}

// SlideDirection classifies a box-sliding opportunity (Fig 4).
type SlideDirection int

const (
	// NoSlide means the placement is already bandwidth-efficient.
	NoSlide SlideDirection = iota
	// SlideUpstream moves the box toward the data source: profitable
	// when selectivity < 1 (the box reduces data) and the link is the
	// bottleneck.
	SlideUpstream
	// SlideDownstream moves the box away from the source: profitable
	// when selectivity > 1 (the box amplifies data, e.g. a join).
	SlideDownstream
)

// ChooseSlide implements the §5.1 sliding heuristic: shifting a box
// upstream is useful if the box has low selectivity and the connection
// bandwidth is limited; shifting downstream is useful if selectivity
// exceeds one. tolerance is the band around selectivity 1.0 within which
// moving is not worth the disruption.
func ChooseSlide(selectivity, tolerance float64) SlideDirection {
	if tolerance < 0 {
		tolerance = 0
	}
	switch {
	case selectivity < 1-tolerance:
		return SlideUpstream
	case selectivity > 1+tolerance:
		return SlideDownstream
	default:
		return NoSlide
	}
}
