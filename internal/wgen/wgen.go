// Package wgen generates the synthetic workloads that stand in for the
// paper's external environments (§1): sensor networks, location tracking,
// stock feeds, and network monitoring. All generators are deterministic
// under a seed so experiments are reproducible, and they expose arrival
// processes (Poisson, bursty on/off, Pareto heavy-tail) whose rate
// variability is what the load-management experiments of §5 exercise.
package wgen

import (
	"math"
	"math/rand"

	"repro/internal/stream"
)

// Source produces a stream of tuples with explicit inter-arrival gaps.
// Sources are pull-based so the driving harness (engine feed loop or
// netsim event queue) controls time.
type Source interface {
	// Schema describes the tuples this source generates.
	Schema() *stream.Schema
	// Next returns the next tuple and the gap (in nanoseconds) between
	// the previous tuple and this one. ok is false when the source is
	// exhausted (bounded sources only).
	Next() (t stream.Tuple, gap int64, ok bool)
}

// Arrival models an inter-arrival process in nanoseconds.
type Arrival interface {
	// Gap returns the next inter-arrival gap in nanoseconds.
	Gap() int64
}

// PoissonArrival produces exponentially distributed gaps with the given
// mean rate (tuples per second).
type PoissonArrival struct {
	rng  *rand.Rand
	mean float64 // mean gap in ns
}

// NewPoissonArrival returns a Poisson arrival process at rate tuples/sec.
func NewPoissonArrival(rate float64, seed int64) *PoissonArrival {
	if rate <= 0 {
		rate = 1
	}
	return &PoissonArrival{rng: rand.New(rand.NewSource(seed)), mean: 1e9 / rate}
}

// Gap implements Arrival.
func (p *PoissonArrival) Gap() int64 {
	return int64(p.rng.ExpFloat64() * p.mean)
}

// OnOffArrival alternates between a burst phase (high rate) and an idle
// phase (low rate), with geometrically distributed phase lengths. It
// models the "time-varying load spikes" of §1 and §3.
type OnOffArrival struct {
	rng              *rand.Rand
	onGap, offGap    float64 // mean gaps in ns
	onLen, offLen    float64 // mean phase lengths in tuples
	inBurst          bool
	remainingInPhase int
}

// NewOnOffArrival builds a bursty process: onRate during bursts of mean
// onLen tuples, offRate between bursts of mean offLen tuples.
func NewOnOffArrival(onRate, offRate float64, onLen, offLen int, seed int64) *OnOffArrival {
	if onRate <= 0 {
		onRate = 1
	}
	if offRate <= 0 {
		offRate = 1
	}
	a := &OnOffArrival{
		rng:    rand.New(rand.NewSource(seed)),
		onGap:  1e9 / onRate,
		offGap: 1e9 / offRate,
		onLen:  float64(max(onLen, 1)),
		offLen: float64(max(offLen, 1)),
	}
	a.switchPhase()
	return a
}

func (a *OnOffArrival) switchPhase() {
	a.inBurst = !a.inBurst
	mean := a.offLen
	if a.inBurst {
		mean = a.onLen
	}
	a.remainingInPhase = 1 + int(a.rng.ExpFloat64()*mean)
}

// Gap implements Arrival.
func (a *OnOffArrival) Gap() int64 {
	if a.remainingInPhase <= 0 {
		a.switchPhase()
	}
	a.remainingInPhase--
	mean := a.offGap
	if a.inBurst {
		mean = a.onGap
	}
	return int64(a.rng.ExpFloat64() * mean)
}

// ParetoArrival produces heavy-tailed gaps (Pareto with shape alpha > 1),
// scaled so the mean rate is rate tuples/sec. Heavy tails produce the
// sustained congestion episodes §6 lists as an availability threat.
type ParetoArrival struct {
	rng   *rand.Rand
	alpha float64
	xm    float64 // scale, ns
}

// NewParetoArrival returns a Pareto arrival process with the given mean
// rate (tuples/sec) and tail index alpha (must be > 1 for a finite mean).
func NewParetoArrival(rate, alpha float64, seed int64) *ParetoArrival {
	if alpha <= 1.05 {
		alpha = 1.5
	}
	if rate <= 0 {
		rate = 1
	}
	meanGap := 1e9 / rate
	xm := meanGap * (alpha - 1) / alpha
	return &ParetoArrival{rng: rand.New(rand.NewSource(seed)), alpha: alpha, xm: xm}
}

// Gap implements Arrival.
func (p *ParetoArrival) Gap() int64 {
	u := p.rng.Float64()
	if u == 0 {
		u = 1e-12
	}
	return int64(p.xm / math.Pow(u, 1/p.alpha))
}

// ConstantArrival emits perfectly periodic gaps; useful as a baseline and
// for deterministic tests.
type ConstantArrival struct{ gap int64 }

// NewConstantArrival returns a fixed-gap process at rate tuples/sec.
func NewConstantArrival(rate float64) *ConstantArrival {
	if rate <= 0 {
		rate = 1
	}
	return &ConstantArrival{gap: int64(1e9 / rate)}
}

// Gap implements Arrival.
func (c *ConstantArrival) Gap() int64 { return c.gap }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
