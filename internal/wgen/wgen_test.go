package wgen

import (
	"math"
	"testing"
)

func meanGap(a Arrival, n int) float64 {
	var sum int64
	for i := 0; i < n; i++ {
		sum += a.Gap()
	}
	return float64(sum) / float64(n)
}

func TestPoissonArrivalMeanRate(t *testing.T) {
	a := NewPoissonArrival(1000, 1) // 1000/s -> mean gap 1e6 ns
	got := meanGap(a, 20000)
	if math.Abs(got-1e6)/1e6 > 0.05 {
		t.Errorf("mean gap = %g, want ~1e6", got)
	}
}

func TestPoissonDeterministicUnderSeed(t *testing.T) {
	a := NewPoissonArrival(100, 42)
	b := NewPoissonArrival(100, 42)
	for i := 0; i < 100; i++ {
		if a.Gap() != b.Gap() {
			t.Fatal("same seed must produce the same gaps")
		}
	}
}

func TestOnOffArrivalBursts(t *testing.T) {
	a := NewOnOffArrival(100000, 100, 500, 500, 3)
	gaps := make([]float64, 200000)
	for i := range gaps {
		gaps[i] = float64(a.Gap())
	}
	// The mixture should contain both fast (~1e4 ns) and slow (~1e7 ns)
	// gaps in quantity.
	fast, slow := 0, 0
	for _, g := range gaps {
		if g < 1e5 {
			fast++
		}
		if g > 1e6 {
			slow++
		}
	}
	if fast < len(gaps)/10 || slow < len(gaps)/10 {
		t.Errorf("on/off mixture degenerate: fast=%d slow=%d of %d", fast, slow, len(gaps))
	}
}

func TestParetoArrivalHeavyTail(t *testing.T) {
	a := NewParetoArrival(1000, 1.5, 5)
	n := 200000
	var sum float64
	maxGap := 0.0
	for i := 0; i < n; i++ {
		g := float64(a.Gap())
		sum += g
		if g > maxGap {
			maxGap = g
		}
	}
	mean := sum / float64(n)
	// Heavy tail: max should dwarf the mean by orders of magnitude.
	if maxGap < 20*mean {
		t.Errorf("tail too light: max %g vs mean %g", maxGap, mean)
	}
	// Degenerate alpha repaired.
	b := NewParetoArrival(1000, 0.5, 5)
	if b.Gap() <= 0 {
		t.Error("repaired alpha should still produce positive gaps")
	}
}

func TestConstantArrival(t *testing.T) {
	a := NewConstantArrival(1e6)
	if a.Gap() != 1000 || a.Gap() != 1000 {
		t.Error("constant arrival should emit fixed gaps")
	}
	if NewConstantArrival(-1).Gap() <= 0 {
		t.Error("bad rate repaired")
	}
}

func TestSensorSourceShape(t *testing.T) {
	s := NewSensorSource(50, 1.3, []string{"cambridge", "boston"}, NewConstantArrival(1000), 0, 9)
	tuples := Collect(s, 5000)
	if len(tuples) != 5000 {
		t.Fatalf("collected %d", len(tuples))
	}
	counts := map[int64]int{}
	regions := map[string]bool{}
	for i, tp := range tuples {
		if tp.Seq == 0 {
			t.Fatal("tuples must carry sequence numbers")
		}
		if i > 0 && tp.TS <= tuples[i-1].TS {
			t.Fatal("TS must be strictly increasing under constant arrivals")
		}
		id := tp.Field(0).AsInt()
		if id < 0 || id >= 50 {
			t.Fatalf("sensor id %d out of range", id)
		}
		counts[id]++
		regions[tp.Field(2).AsString()] = true
	}
	if !regions["cambridge"] || !regions["boston"] {
		t.Error("both regions should appear")
	}
	// Zipf skew: the most popular sensor should see far more than the mean.
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	if maxC < 3*(5000/50) {
		t.Errorf("skew too mild: max sensor count %d", maxC)
	}
}

func TestSensorSourceLimit(t *testing.T) {
	s := NewSensorSource(5, 0, nil, NewConstantArrival(10), 7, 1)
	tuples := Collect(s, 100)
	if len(tuples) != 7 {
		t.Errorf("limit ignored: got %d tuples", len(tuples))
	}
}

func TestStockSourcePositivePrices(t *testing.T) {
	s := NewStockSource(8, NewConstantArrival(1000), 0, 11)
	for _, tp := range Collect(s, 2000) {
		if tp.Field(1).AsFloat() <= 0 {
			t.Fatal("prices must stay positive")
		}
		if tp.Field(2).AsInt()%100 != 0 {
			t.Fatal("sizes are round lots")
		}
	}
}

func TestNetFlowSourceShape(t *testing.T) {
	s := NewNetFlowSource(64, NewConstantArrival(1000), 0, 13)
	var total int64
	for _, tp := range Collect(s, 2000) {
		b := tp.Field(2).AsInt()
		if b < 40 || b > 1<<20 {
			t.Fatalf("flow size %d out of bounds", b)
		}
		total += b
	}
	if total <= 0 {
		t.Error("flows should carry bytes")
	}
}

func TestCollectStopsOnExhaustion(t *testing.T) {
	s := NewStockSource(2, NewConstantArrival(10), 3, 1)
	if got := len(Collect(s, 10)); got != 3 {
		t.Errorf("Collect = %d tuples, want 3", got)
	}
}
