package wgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/stream"
)

// SensorSchema is the schema of SensorSource tuples: a sensor id, a
// reading, and a region label (used by content-based split predicates:
// "all streams generated in Cambridge", §5.2).
var SensorSchema = stream.MustSchema("sensors",
	stream.Field{Name: "sensor", Kind: stream.KindInt},
	stream.Field{Name: "reading", Kind: stream.KindFloat},
	stream.Field{Name: "region", Kind: stream.KindString},
)

// SensorSource models a sensor network: n sensors whose ids are drawn
// from a Zipf distribution (hot sensors dominate, exercising key skew in
// split-predicate experiments) and whose readings follow independent
// random walks. Sensors are assigned round-robin to the given regions.
type SensorSource struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	arrival Arrival
	walks   []float64
	regions []string
	limit   int64
	emitted int64
	seq     uint64
}

// NewSensorSource builds a sensor source with n sensors, Zipf skew s
// (1.01 = mild, 2 = severe; values <= 1 fall back to uniform), the given
// arrival process, and an optional tuple limit (0 = unbounded).
func NewSensorSource(n int, s float64, regions []string, arrival Arrival, limit int64, seed int64) *SensorSource {
	if n < 1 {
		n = 1
	}
	if len(regions) == 0 {
		regions = []string{"default"}
	}
	rng := rand.New(rand.NewSource(seed))
	var zipf *rand.Zipf
	if s > 1 {
		zipf = rand.NewZipf(rng, s, 1, uint64(n-1))
	}
	return &SensorSource{
		rng:     rng,
		zipf:    zipf,
		arrival: arrival,
		walks:   make([]float64, n),
		regions: regions,
		limit:   limit,
	}
}

// Schema implements Source.
func (s *SensorSource) Schema() *stream.Schema { return SensorSchema }

// Next implements Source.
func (s *SensorSource) Next() (stream.Tuple, int64, bool) {
	if s.limit > 0 && s.emitted >= s.limit {
		return stream.Tuple{}, 0, false
	}
	s.emitted++
	s.seq++
	var id int
	if s.zipf != nil {
		id = int(s.zipf.Uint64())
	} else {
		id = s.rng.Intn(len(s.walks))
	}
	s.walks[id] += s.rng.NormFloat64()
	t := stream.Tuple{
		Seq: s.seq,
		Vals: []stream.Value{
			stream.Int(int64(id)),
			stream.Float(s.walks[id]),
			stream.String(s.regions[id%len(s.regions)]),
		},
	}
	return t, s.arrival.Gap(), true
}

// QuoteSchema is the schema of StockSource tuples — the stock-quote
// stream of the remote-definition example in §4.4.
var QuoteSchema = stream.MustSchema("quotes",
	stream.Field{Name: "sym", Kind: stream.KindString},
	stream.Field{Name: "price", Kind: stream.KindFloat},
	stream.Field{Name: "size", Kind: stream.KindInt},
)

// StockSource emits random-walk stock quotes over a fixed symbol universe.
type StockSource struct {
	rng     *rand.Rand
	arrival Arrival
	symbols []string
	prices  []float64
	limit   int64
	emitted int64
	seq     uint64
}

// NewStockSource builds a quote stream over nSymbols tickers starting at
// price 100, with the given arrival process and optional limit.
func NewStockSource(nSymbols int, arrival Arrival, limit int64, seed int64) *StockSource {
	if nSymbols < 1 {
		nSymbols = 1
	}
	symbols := make([]string, nSymbols)
	prices := make([]float64, nSymbols)
	for i := range symbols {
		symbols[i] = fmt.Sprintf("S%03d", i)
		prices[i] = 100
	}
	return &StockSource{
		rng:     rand.New(rand.NewSource(seed)),
		arrival: arrival,
		symbols: symbols,
		prices:  prices,
		limit:   limit,
	}
}

// Schema implements Source.
func (s *StockSource) Schema() *stream.Schema { return QuoteSchema }

// Next implements Source.
func (s *StockSource) Next() (stream.Tuple, int64, bool) {
	if s.limit > 0 && s.emitted >= s.limit {
		return stream.Tuple{}, 0, false
	}
	s.emitted++
	s.seq++
	i := s.rng.Intn(len(s.symbols))
	s.prices[i] = math.Max(1, s.prices[i]*(1+0.002*s.rng.NormFloat64()))
	t := stream.Tuple{
		Seq: s.seq,
		Vals: []stream.Value{
			stream.String(s.symbols[i]),
			stream.Float(s.prices[i]),
			stream.Int(int64(100 * (1 + s.rng.Intn(9)))),
		},
	}
	return t, s.arrival.Gap(), true
}

// FlowSchema is the schema of NetFlowSource tuples — a network-monitoring
// workload (src/dst endpoints and a byte count).
var FlowSchema = stream.MustSchema("flows",
	stream.Field{Name: "src", Kind: stream.KindInt},
	stream.Field{Name: "dst", Kind: stream.KindInt},
	stream.Field{Name: "bytes", Kind: stream.KindInt},
)

// NetFlowSource emits synthetic flow records with Zipf-distributed
// endpoints and Pareto-ish flow sizes — the standard shape of packet
// traces, giving the network-monitoring example a realistic key skew.
type NetFlowSource struct {
	rng     *rand.Rand
	zipf    *rand.Zipf
	arrival Arrival
	hosts   int
	limit   int64
	emitted int64
	seq     uint64
}

// NewNetFlowSource builds a flow source over the given host count.
func NewNetFlowSource(hosts int, arrival Arrival, limit int64, seed int64) *NetFlowSource {
	if hosts < 2 {
		hosts = 2
	}
	rng := rand.New(rand.NewSource(seed))
	return &NetFlowSource{
		rng:     rng,
		zipf:    rand.NewZipf(rng, 1.2, 1, uint64(hosts-1)),
		arrival: arrival,
		hosts:   hosts,
		limit:   limit,
	}
}

// Schema implements Source.
func (s *NetFlowSource) Schema() *stream.Schema { return FlowSchema }

// Next implements Source.
func (s *NetFlowSource) Next() (stream.Tuple, int64, bool) {
	if s.limit > 0 && s.emitted >= s.limit {
		return stream.Tuple{}, 0, false
	}
	s.emitted++
	s.seq++
	size := int64(40 * math.Pow(1/(1e-9+s.rng.Float64()), 0.7))
	if size > 1<<20 {
		size = 1 << 20
	}
	t := stream.Tuple{
		Seq: s.seq,
		Vals: []stream.Value{
			stream.Int(int64(s.zipf.Uint64())),
			stream.Int(int64(s.rng.Intn(s.hosts))),
			stream.Int(size),
		},
	}
	return t, s.arrival.Gap(), true
}

// Collect drains up to n tuples from a source, stamping each tuple's TS
// with its cumulative virtual arrival time. It is the batch harness used
// by tests and benchmarks.
func Collect(s Source, n int) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	var now int64
	for len(out) < n {
		t, gap, ok := s.Next()
		if !ok {
			break
		}
		now += gap
		t.TS = now
		out = append(out, t)
	}
	return out
}
