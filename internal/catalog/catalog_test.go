package catalog

import (
	"fmt"
	"testing"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

var sch = stream.MustSchema("readings",
	stream.Field{Name: "A", Kind: stream.KindInt},
)

func TestParseName(t *testing.T) {
	n, err := ParseName("mit/sensors.1")
	if err != nil || n.Participant != "mit" || n.Entity != "sensors.1" {
		t.Fatalf("ParseName = %+v, %v", n, err)
	}
	if n.String() != "mit/sensors.1" {
		t.Errorf("String = %q", n.String())
	}
	for _, bad := range []string{"", "noslash", "/x", "x/"} {
		if _, err := ParseName(bad); err == nil {
			t.Errorf("ParseName(%q) should fail", bad)
		}
	}
}

func TestIntraSchemas(t *testing.T) {
	c := NewIntra("mit")
	if c.Participant() != "mit" {
		t.Error("participant wrong")
	}
	if err := c.RegisterSchema(sch); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterSchema(sch); err == nil {
		t.Error("duplicate schema should fail")
	}
	if err := c.RegisterSchema(nil); err == nil {
		t.Error("nil schema should fail")
	}
	got, ok := c.Schema("readings")
	if !ok || got != sch {
		t.Error("lookup failed")
	}
	if _, ok := c.Schema("ghost"); ok {
		t.Error("ghost schema present")
	}
}

func TestIntraStreams(t *testing.T) {
	c := NewIntra("mit")
	if err := c.RegisterStream("s1", sch, "node1"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterStream("s1", sch, "node1"); err == nil {
		t.Error("duplicate stream should fail")
	}
	if err := c.RegisterStream("s2", nil, "node1"); err == nil {
		t.Error("nil schema should fail")
	}
	info, ok := c.Stream("s1")
	if !ok || info.Name.String() != "mit/s1" || info.Locations[0] != "node1" {
		t.Fatalf("Stream = %+v", info)
	}
	// Mutating the returned copy must not affect the catalog.
	info.Locations[0] = "hacked"
	info2, _ := c.Stream("s1")
	if info2.Locations[0] != "node1" {
		t.Error("Stream must return a defensive copy")
	}
	if err := c.MoveStream("s1", []string{"node2", "node3"}); err != nil {
		t.Fatal(err)
	}
	info3, _ := c.Stream("s1")
	if len(info3.Locations) != 2 || info3.Locations[0] != "node2" {
		t.Errorf("after move: %+v", info3.Locations)
	}
	if err := c.MoveStream("ghost", []string{"x"}); err == nil {
		t.Error("moving unknown stream should fail")
	}
	if err := c.MoveStream("s1", nil); err == nil {
		t.Error("empty locations should fail")
	}
}

func TestIntraOperatorsQueriesContracts(t *testing.T) {
	c := NewIntra("mit")
	spec := op.Spec{Kind: "filter", Params: map[string]string{"predicate": "A < 1"}}
	if err := c.RegisterOperator("myfilter", spec); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterOperator("myfilter", spec); err == nil {
		t.Error("duplicate operator should fail")
	}
	got, ok := c.Operator("myfilter")
	if !ok || got.Kind != "filter" {
		t.Fatal("operator lookup failed")
	}
	got.Params["predicate"] = "hacked"
	again, _ := c.Operator("myfilter")
	if again.Params["predicate"] != "A < 1" {
		t.Error("Operator must return a clone")
	}

	n := query.NewBuilder("q1").
		AddBox("f", spec).
		BindInput("in", sch, "f", 0).
		MustBuild()
	if err := c.RegisterQuery(n); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(n); err == nil {
		t.Error("duplicate query should fail")
	}
	if err := c.RegisterQuery(nil); err == nil {
		t.Error("nil query should fail")
	}
	if q, ok := c.Query("q1"); !ok || q.Name() != "q1" {
		t.Error("query lookup failed")
	}
	c.SetPieces("q1", []QueryPiece{{Query: "q1", Boxes: []string{"f"}, Node: "node1"}})
	pieces := c.Pieces("q1")
	if len(pieces) != 1 || pieces[0].Node != "node1" {
		t.Errorf("pieces = %+v", pieces)
	}

	if err := c.RegisterContract("c1", "content contract"); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterContract("c1", "again"); err == nil {
		t.Error("duplicate contract should fail")
	}
	if ids := c.Contracts(); len(ids) != 1 || ids[0] != "c1" {
		t.Errorf("contracts = %v", ids)
	}
}

func dhtWith(t *testing.T, n int, vnodes, replicas int) *DHT {
	t.Helper()
	d := NewDHT(vnodes, replicas)
	for i := 0; i < n; i++ {
		if err := d.Join(fmt.Sprintf("p%03d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return d
}

func TestDHTPutGet(t *testing.T) {
	d := dhtWith(t, 8, 16, 1)
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%d", i)
		if err := d.Put(k, fmt.Sprintf("v%d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("key%d", i)
		v, ok := d.Get(k)
		if !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, v, ok)
		}
	}
	if _, ok := d.Get("missing"); ok {
		t.Error("missing key should be absent")
	}
	d.Delete("key0")
	if _, ok := d.Get("key0"); ok {
		t.Error("deleted key should be absent")
	}
}

func TestDHTEmpty(t *testing.T) {
	d := NewDHT(0, 0) // defaults repaired
	if err := d.Put("k", "v"); err == nil {
		t.Error("Put on empty DHT should fail")
	}
	if _, _, err := d.LookupHops("k", "ghost"); err == nil {
		t.Error("lookup from non-member should fail")
	}
}

func TestDHTMembership(t *testing.T) {
	d := dhtWith(t, 3, 8, 1)
	if got := d.Members(); len(got) != 3 || got[0] != "p000" {
		t.Errorf("members = %v", got)
	}
	if err := d.Join("p000"); err == nil {
		t.Error("double join should fail")
	}
	if err := d.Leave("stranger"); err == nil {
		t.Error("leave by non-member should fail")
	}
}

func TestDHTKeysSurviveChurn(t *testing.T) {
	d := dhtWith(t, 6, 16, 2)
	const keys = 300
	for i := 0; i < keys; i++ {
		d.Put(fmt.Sprintf("key%d", i), "v")
	}
	// One participant leaves: with replication 2, every binding must
	// still be resolvable.
	if err := d.Leave("p002"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, ok := d.Get(fmt.Sprintf("key%d", i)); !ok {
			t.Fatalf("key%d lost after leave", i)
		}
	}
	// A new participant joins: still resolvable, and the newcomer takes
	// its share.
	if err := d.Join("p099"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < keys; i++ {
		if _, ok := d.Get(fmt.Sprintf("key%d", i)); !ok {
			t.Fatalf("key%d lost after join", i)
		}
	}
	if d.KeysAt("p099") == 0 {
		t.Error("joiner should own some keys")
	}
}

func TestDHTLoadSpreadImprovesWithVnodes(t *testing.T) {
	imbalance := func(vnodes int) float64 {
		d := dhtWith(t, 16, vnodes, 1)
		for i := 0; i < 4000; i++ {
			d.Put(fmt.Sprintf("key%d", i), "v")
		}
		maxK, minK := 0, 1<<30
		for _, p := range d.Members() {
			k := d.KeysAt(p)
			if k > maxK {
				maxK = k
			}
			if k < minK {
				minK = k
			}
		}
		return float64(maxK) / float64(minK+1)
	}
	few := imbalance(1)
	many := imbalance(64)
	if many >= few {
		t.Errorf("virtual nodes should reduce imbalance: 1 vnode %.2f vs 64 vnodes %.2f", few, many)
	}
}

func TestDHTReplication(t *testing.T) {
	d := dhtWith(t, 5, 8, 3)
	d.Put("k", "v")
	resp := d.Responsible("k")
	if len(resp) != 3 {
		t.Fatalf("replicas = %v", resp)
	}
	seen := map[string]bool{}
	for _, p := range resp {
		if seen[p] {
			t.Fatal("replicas must be distinct participants")
		}
		seen[p] = true
		if d.KeysAt(p) == 0 {
			t.Errorf("replica %s holds nothing", p)
		}
	}
}

func TestDHTLookupHopsScaling(t *testing.T) {
	meanHops := func(n int) float64 {
		d := dhtWith(t, n, 4, 1)
		total := 0
		const lookups = 200
		for i := 0; i < lookups; i++ {
			from := fmt.Sprintf("p%03d", i%n)
			_, h, err := d.LookupHops(fmt.Sprintf("key%d", i), from)
			if err != nil {
				t.Fatal(err)
			}
			total += h
		}
		return float64(total) / lookups
	}
	small := meanHops(4)
	large := meanHops(128)
	if large <= small {
		t.Errorf("hops should grow with federation size: n=4 %.2f vs n=128 %.2f", small, large)
	}
	// O(log n): 128 participants should need far fewer than n/2 hops.
	if large > 14 {
		t.Errorf("mean hops at n=128 = %.1f; expected O(log n) ~ 7", large)
	}
}

func TestDHTLookupFindsOwner(t *testing.T) {
	d := dhtWith(t, 32, 4, 1)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("key%d", i)
		owner, _, err := d.LookupHops(key, "p000")
		if err != nil {
			t.Fatal(err)
		}
		if want := d.Responsible(key); len(want) == 0 || !containsOrPrimary(want, owner, d, key) {
			t.Fatalf("lookup owner %q not responsible for %q (responsible: %v)", owner, key, want)
		}
	}
}

// containsOrPrimary accepts the routing owner if it matches the primary
// ring's successor; the vnode ring may differ (routing uses primary
// positions, placement uses vnodes — see LookupHops docs).
func containsOrPrimary(resp []string, owner string, d *DHT, key string) bool {
	for _, p := range resp {
		if p == owner {
			return true
		}
	}
	// Verify the owner is at least deterministically stable.
	o2, _, err := d.LookupHops(key, resp[0])
	return err == nil && o2 == owner
}
