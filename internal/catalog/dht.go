package catalog

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// DHT is the inter-participant catalog of §4.1: a distributed hash table
// with entity names as unique keys, implemented with consistent hashing
// (virtual nodes for load spread, configurable replication for failure
// tolerance) in the style of [6, 14]. Each participant that provides
// query capabilities holds a part of the shared catalog.
//
// The implementation keeps full membership knowledge (a one-hop DHT) for
// data placement, and additionally simulates Chord-style finger-table
// routing so experiments can measure lookup hop counts as the federation
// grows (LookupHops).
type DHT struct {
	vnodes   int
	replicas int

	mu      sync.RWMutex
	ring    []ringEntry // vnode ring, sorted by hash
	primary []ringEntry // one entry per participant, sorted by hash
	members map[string]bool
	data    map[string]map[string]string // participant -> key -> value
}

type ringEntry struct {
	hash        uint64
	participant string
}

// NewDHT returns an empty DHT with the given virtual nodes per participant
// (default 16) and replication factor (default 1).
func NewDHT(vnodes, replicas int) *DHT {
	if vnodes < 1 {
		vnodes = 16
	}
	if replicas < 1 {
		replicas = 1
	}
	return &DHT{
		vnodes:   vnodes,
		replicas: replicas,
		members:  map[string]bool{},
		data:     map[string]map[string]string{},
	}
}

// hash64 hashes a string onto the ring. FNV alone avalanches poorly on
// short sequential names (consecutive keys land adjacent on the ring), so
// the result is passed through a murmur3-style finalizer.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Join adds a participant to the federation and migrates the keys it now
// owns from their previous holders.
func (d *DHT) Join(participant string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.members[participant] {
		return fmt.Errorf("dht: %q already joined", participant)
	}
	d.members[participant] = true
	d.data[participant] = map[string]string{}
	for i := 0; i < d.vnodes; i++ {
		d.ring = append(d.ring, ringEntry{
			hash:        hash64(fmt.Sprintf("%s#%d", participant, i)),
			participant: participant,
		})
	}
	sort.Slice(d.ring, func(i, j int) bool { return d.ring[i].hash < d.ring[j].hash })
	d.primary = append(d.primary, ringEntry{hash: hash64(participant), participant: participant})
	sort.Slice(d.primary, func(i, j int) bool { return d.primary[i].hash < d.primary[j].hash })
	d.rebalanceLocked()
	return nil
}

// Leave removes a participant, redistributing its keys to the nodes now
// responsible.
func (d *DHT) Leave(participant string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if !d.members[participant] {
		return fmt.Errorf("dht: %q not a member", participant)
	}
	delete(d.members, participant)
	keep := d.ring[:0]
	for _, e := range d.ring {
		if e.participant != participant {
			keep = append(keep, e)
		}
	}
	d.ring = keep
	keepP := d.primary[:0]
	for _, e := range d.primary {
		if e.participant != participant {
			keepP = append(keepP, e)
		}
	}
	d.primary = keepP
	orphaned := d.data[participant]
	delete(d.data, participant)
	if len(d.members) == 0 {
		return nil
	}
	for k, v := range orphaned {
		for _, p := range d.responsibleLocked(k) {
			d.data[p][k] = v
		}
	}
	d.rebalanceLocked()
	return nil
}

// rebalanceLocked re-places every key on the current ring. Production
// DHTs move only affected ranges; re-placing everything is equivalent and
// keeps the reproduction simple while preserving the measurable effects
// (keys per node, availability across churn).
func (d *DHT) rebalanceLocked() {
	all := map[string]string{}
	for _, kv := range d.data {
		for k, v := range kv {
			all[k] = v
		}
	}
	for p := range d.data {
		d.data[p] = map[string]string{}
	}
	for k, v := range all {
		for _, p := range d.responsibleLocked(k) {
			d.data[p][k] = v
		}
	}
}

// Put stores a key-value binding on every responsible replica.
func (d *DHT) Put(key, value string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.members) == 0 {
		return fmt.Errorf("dht: no members")
	}
	for _, p := range d.responsibleLocked(key) {
		d.data[p][key] = value
	}
	return nil
}

// Get returns the binding for key from the first responsible replica that
// holds it.
func (d *DHT) Get(key string) (string, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for _, p := range d.responsibleLocked(key) {
		if v, ok := d.data[p][key]; ok {
			return v, true
		}
	}
	return "", false
}

// Delete removes a binding from every replica.
func (d *DHT) Delete(key string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, p := range d.responsibleLocked(key) {
		delete(d.data[p], key)
	}
}

// Responsible returns the distinct participants responsible for key, in
// replica order.
func (d *DHT) Responsible(key string) []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return d.responsibleLocked(key)
}

func (d *DHT) responsibleLocked(key string) []string {
	if len(d.ring) == 0 {
		return nil
	}
	h := hash64(key)
	i := sort.Search(len(d.ring), func(i int) bool { return d.ring[i].hash >= h })
	seen := map[string]bool{}
	var out []string
	for j := 0; j < len(d.ring) && len(out) < d.replicas; j++ {
		e := d.ring[(i+j)%len(d.ring)]
		if !seen[e.participant] {
			seen[e.participant] = true
			out = append(out, e.participant)
		}
	}
	return out
}

// KeysAt returns how many keys participant p currently holds.
func (d *DHT) KeysAt(p string) int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.data[p])
}

// Members returns the sorted member list.
func (d *DHT) Members() []string {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make([]string, 0, len(d.members))
	for p := range d.members {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// LookupHops simulates a Chord-style lookup for key starting at the given
// participant, returning the owner and the number of routing hops taken.
// Each participant knows fingers at power-of-two distances around the
// ring of primary positions; a hop forwards the query to the finger
// closest to the key without passing it. This reproduces the O(log n)
// lookup scaling the §4.1 references promise.
func (d *DHT) LookupHops(key, from string) (owner string, hops int, err error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if !d.members[from] {
		return "", 0, fmt.Errorf("dht: %q not a member", from)
	}
	if len(d.primary) == 0 {
		return "", 0, fmt.Errorf("dht: empty ring")
	}
	target := hash64(key)
	ownerEntry := d.successorLocked(target)
	cur := d.successorLocked(hash64(from)) // from's own ring position
	for hops = 0; hops <= len(d.primary)+64; hops++ {
		if cur.participant == ownerEntry.participant {
			return cur.participant, hops, nil
		}
		cur = d.bestFingerLocked(cur.hash, target)
	}
	return "", hops, fmt.Errorf("dht: lookup did not converge")
}

// successorLocked returns the first primary entry clockwise at or after h.
func (d *DHT) successorLocked(h uint64) ringEntry {
	i := sort.Search(len(d.primary), func(i int) bool { return d.primary[i].hash >= h })
	return d.primary[i%len(d.primary)]
}

// arcDist returns the clockwise distance from a to b on the ring.
func arcDist(a, b uint64) uint64 { return b - a } // wraps mod 2^64 by design

// bestFingerLocked returns cur's finger that lands closest to target
// without passing it; if every finger overshoots, the immediate successor
// is returned (which then owns the target).
func (d *DHT) bestFingerLocked(cur, target uint64) ringEntry {
	want := arcDist(cur, target)
	succ := d.successorLocked(cur + 1)
	best := succ
	bestDist := arcDist(cur, succ.hash)
	if bestDist > want {
		// Even the immediate successor passes the target: it is the owner.
		return succ
	}
	for i := 1; i < 64; i++ {
		f := d.successorLocked(cur + (1 << uint(i)))
		dist := arcDist(cur, f.hash)
		if dist == 0 {
			continue // wrapped back to cur
		}
		if dist <= want && dist > bestDist {
			best, bestDist = f, dist
		}
	}
	return best
}
