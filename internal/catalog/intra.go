// Package catalog implements the two catalog types of §4.1: the
// intra-participant catalog holding definitions of operators, schemas,
// streams, queries, and contracts (with possibly stale physical locations
// of stream events), and the inter-participant catalog — a distributed
// hash table keyed by globally unique entity names — through which
// participants discover where pieces of queries run across administrative
// boundaries.
//
// Names follow the paper's scheme: a single global namespace of
// participants, with every entity named (participant, entity-name).
package catalog

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

// Name is a globally unique entity name: participant plus local name.
type Name struct {
	Participant string
	Entity      string
}

// ParseName splits "participant/entity" into a Name.
func ParseName(s string) (Name, error) {
	i := strings.IndexByte(s, '/')
	if i <= 0 || i == len(s)-1 {
		return Name{}, fmt.Errorf("catalog: bad name %q (want participant/entity)", s)
	}
	return Name{Participant: s[:i], Entity: s[i+1:]}, nil
}

// String renders the name as participant/entity.
func (n Name) String() string { return n.Participant + "/" + n.Entity }

// StreamInfo records a registered stream: its schema and the (possibly
// stale) physical locations where its events are currently available.
// Streams may be partitioned across several nodes for load balancing.
type StreamInfo struct {
	Name      Name
	Schema    *stream.Schema
	Locations []string // node ids
}

// QueryPiece records where one piece of a deployed query network runs.
type QueryPiece struct {
	Query string   // query (network) name
	Boxes []string // box ids in this piece
	Node  string   // node currently executing the piece
}

// Intra is the intra-participant catalog. All nodes owned by a participant
// have access to the complete catalog; this implementation is a
// thread-safe in-memory store that the participant's nodes share (the
// paper permits either a centralized or distributed realization).
type Intra struct {
	participant string

	mu        sync.RWMutex
	schemas   map[string]*stream.Schema
	streams   map[string]*StreamInfo
	operators map[string]op.Spec
	queries   map[string]*query.Network
	pieces    map[string][]QueryPiece // query name -> pieces
	contracts map[string]string       // contract id -> description
}

// NewIntra returns an empty catalog for the given participant.
func NewIntra(participant string) *Intra {
	return &Intra{
		participant: participant,
		schemas:     map[string]*stream.Schema{},
		streams:     map[string]*StreamInfo{},
		operators:   map[string]op.Spec{},
		queries:     map[string]*query.Network{},
		pieces:      map[string][]QueryPiece{},
		contracts:   map[string]string{},
	}
}

// Participant returns the owning participant's name.
func (c *Intra) Participant() string { return c.participant }

// RegisterSchema records a schema definition under its name.
func (c *Intra) RegisterSchema(s *stream.Schema) error {
	if s == nil {
		return fmt.Errorf("catalog: nil schema")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.schemas[s.Name()]; dup {
		return fmt.Errorf("catalog: schema %q already registered", s.Name())
	}
	c.schemas[s.Name()] = s
	return nil
}

// Schema looks a schema up by name.
func (c *Intra) Schema(name string) (*stream.Schema, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.schemas[name]
	return s, ok
}

// RegisterStream records a new stream with its schema and initial default
// location — the registration step a data source performs before
// producing events (§4.2).
func (c *Intra) RegisterStream(entity string, schema *stream.Schema, location string) error {
	if schema == nil {
		return fmt.Errorf("catalog: nil schema for stream %q", entity)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.streams[entity]; dup {
		return fmt.Errorf("catalog: stream %q already registered", entity)
	}
	c.streams[entity] = &StreamInfo{
		Name:      Name{Participant: c.participant, Entity: entity},
		Schema:    schema,
		Locations: []string{location},
	}
	return nil
}

// Stream looks a stream up by entity name.
func (c *Intra) Stream(entity string) (*StreamInfo, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.streams[entity]
	if !ok {
		return nil, false
	}
	cp := *s
	cp.Locations = append([]string(nil), s.Locations...)
	return &cp, true
}

// MoveStream updates a stream's physical locations after load sharing has
// moved or partitioned the data; location information is always propagated
// to the intra-participant catalog (§4.2).
func (c *Intra) MoveStream(entity string, locations []string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.streams[entity]
	if !ok {
		return fmt.Errorf("catalog: unknown stream %q", entity)
	}
	if len(locations) == 0 {
		return fmt.Errorf("catalog: stream %q needs at least one location", entity)
	}
	s.Locations = append([]string(nil), locations...)
	return nil
}

// RegisterOperator records an operator definition that other participants
// may instantiate via remote definition (§4.4).
func (c *Intra) RegisterOperator(entity string, spec op.Spec) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.operators[entity]; dup {
		return fmt.Errorf("catalog: operator %q already registered", entity)
	}
	c.operators[entity] = spec.Clone()
	return nil
}

// Operator looks an operator definition up.
func (c *Intra) Operator(entity string) (op.Spec, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	s, ok := c.operators[entity]
	if !ok {
		return op.Spec{}, false
	}
	return s.Clone(), true
}

// RegisterQuery records a deployed query network.
func (c *Intra) RegisterQuery(n *query.Network) error {
	if n == nil {
		return fmt.Errorf("catalog: nil network")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.queries[n.Name()]; dup {
		return fmt.Errorf("catalog: query %q already registered", n.Name())
	}
	c.queries[n.Name()] = n
	return nil
}

// Query looks a query network up.
func (c *Intra) Query(name string) (*query.Network, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	n, ok := c.queries[name]
	return n, ok
}

// SetPieces records the content and location of each running piece of a
// query (§4.1).
func (c *Intra) SetPieces(queryName string, pieces []QueryPiece) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pieces[queryName] = append([]QueryPiece(nil), pieces...)
}

// Pieces returns the running pieces of a query.
func (c *Intra) Pieces(queryName string) []QueryPiece {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]QueryPiece(nil), c.pieces[queryName]...)
}

// RegisterContract records a contract covering a message stream between
// two participants (§3.2).
func (c *Intra) RegisterContract(id, description string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.contracts[id]; dup {
		return fmt.Errorf("catalog: contract %q already registered", id)
	}
	c.contracts[id] = description
	return nil
}

// Contracts lists contract ids in sorted order.
func (c *Intra) Contracts() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.contracts))
	for id := range c.contracts {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
