package telemetry

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/transport"
)

func statsFixture(t *testing.T) (*engine.Engine, *stats.Plane) {
	t.Helper()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("tele").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, nil).
		MustBuild()
	plane := stats.NewPlane("x", int64(10e6), 8, 2)
	eng, err := engine.New(net, engine.Config{Stats: plane.Store(), StatsEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(1)))
		eng.RunUntilIdle(0)
	}
	eng.SampleStats(now - 10e6)
	eng.SampleStats(now)
	// One window back so the sample sits in a complete window by Publish(now).
	plane.Store().Observe(stats.SeriesNodeUtil, stats.KindGauge, now-10e6, 0.5)
	plane.Publish(now)
	return eng, plane
}

func TestStatsAndLoadMapEndpoints(t *testing.T) {
	eng, plane := statsFixture(t)
	srv := httptest.NewServer(Handler("x", eng, plane, nil))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/stats")
	if code != 200 {
		t.Fatalf("/stats: %d %s", code, body)
	}
	var sr StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("/stats JSON: %v\n%s", err, body)
	}
	if sr.Node != "x" || sr.WindowNs != 10e6 || sr.K != 2 {
		t.Errorf("stats header = %+v", sr)
	}
	names := map[string]bool{}
	for _, s := range sr.Series {
		names[s.Name] = true
	}
	for _, want := range []string{
		stats.SeriesBoxCost("f1"), stats.SeriesBoxQueue("f1"),
		stats.SeriesBoxWork("f1"), stats.SeriesNodeUtil,
	} {
		if !names[want] {
			t.Errorf("/stats missing series %s; have %v", want, names)
		}
	}

	// Prefix filter and window override.
	code, body = get("/stats?series=box.&window=4")
	if code != 200 {
		t.Fatalf("/stats filtered: %d", code)
	}
	sr = StatsResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.K != 4 {
		t.Errorf("window override: K = %d, want 4", sr.K)
	}
	for _, s := range sr.Series {
		if !strings.HasPrefix(s.Name, "box.") {
			t.Errorf("prefix filter leaked series %s", s.Name)
		}
	}
	if len(sr.Series) == 0 {
		t.Error("prefix filter returned nothing")
	}

	if code, _ := get("/stats?window=zero"); code != 400 {
		t.Errorf("bad window: got %d, want 400", code)
	}

	code, body = get("/loadmap")
	if code != 200 {
		t.Fatalf("/loadmap: %d", code)
	}
	var lr LoadMapResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatalf("/loadmap JSON: %v\n%s", err, body)
	}
	if lr.Node != "x" || len(lr.Digests) != 1 || lr.Digests[0].Node != "x" {
		t.Errorf("/loadmap = %+v", lr)
	}
	if len(lr.Ranking) != 1 || lr.Ranking[0] != "x" {
		t.Errorf("ranking = %v", lr.Ranking)
	}
	if lr.Digests[0].Util <= 0 {
		t.Errorf("digest util = %g, want the published 0.5 window average", lr.Digests[0].Util)
	}
}

func TestStatsEndpointsDisabled(t *testing.T) {
	eng, _ := statsFixture(t)
	srv := httptest.NewServer(Handler("x", eng, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/stats", "/loadmap", "/links"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s with no plane/transport: %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestLinksEndpoint(t *testing.T) {
	eng, _ := statsFixture(t)
	a, err := transport.ListenTCP("x", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenTCP("y", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("y", b.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := a.LinkState("y"); ok && st == transport.LinkEstablished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never established")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv := httptest.NewServer(Handler("x", eng, nil, a))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/links")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/links: %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var lr LinksResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatalf("/links JSON: %v\n%s", err, body)
	}
	if lr.Node != "x" || len(lr.Links) != 1 {
		t.Fatalf("/links = %+v", lr)
	}
	l := lr.Links[0]
	if l.Peer != "y" || l.State != "established" || !l.Supervised || l.Dials < 1 {
		t.Errorf("link info = %+v", l)
	}
}
