package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/transport"
)

func statsFixture(t *testing.T) (*engine.Engine, *stats.Plane) {
	t.Helper()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("tele").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, nil).
		MustBuild()
	plane := stats.NewPlane("x", int64(10e6), 8, 2)
	eng, err := engine.New(net, engine.Config{Stats: plane.Store(), StatsEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now().UnixNano()
	for i := 0; i < 10; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(1)))
		eng.RunUntilIdle(0)
	}
	eng.SampleStats(now - 10e6)
	eng.SampleStats(now)
	// One window back so the sample sits in a complete window by Publish(now).
	plane.Store().Observe(stats.SeriesNodeUtil, stats.KindGauge, now-10e6, 0.5)
	plane.Publish(now)
	return eng, plane
}

func TestStatsAndLoadMapEndpoints(t *testing.T) {
	eng, plane := statsFixture(t)
	srv := httptest.NewServer(Handler("x", eng, plane, nil))
	defer srv.Close()

	get := func(path string) (int, []byte) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, body
	}

	code, body := get("/stats")
	if code != 200 {
		t.Fatalf("/stats: %d %s", code, body)
	}
	var sr StatsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("/stats JSON: %v\n%s", err, body)
	}
	if sr.Node != "x" || sr.WindowNs != 10e6 || sr.K != 2 {
		t.Errorf("stats header = %+v", sr)
	}
	names := map[string]bool{}
	for _, s := range sr.Series {
		names[s.Name] = true
	}
	for _, want := range []string{
		stats.SeriesBoxCost("f1"), stats.SeriesBoxQueue("f1"),
		stats.SeriesBoxWork("f1"), stats.SeriesNodeUtil,
	} {
		if !names[want] {
			t.Errorf("/stats missing series %s; have %v", want, names)
		}
	}

	// Prefix filter and window override.
	code, body = get("/stats?series=box.&window=4")
	if code != 200 {
		t.Fatalf("/stats filtered: %d", code)
	}
	sr = StatsResponse{}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.K != 4 {
		t.Errorf("window override: K = %d, want 4", sr.K)
	}
	for _, s := range sr.Series {
		if !strings.HasPrefix(s.Name, "box.") {
			t.Errorf("prefix filter leaked series %s", s.Name)
		}
	}
	if len(sr.Series) == 0 {
		t.Error("prefix filter returned nothing")
	}

	if code, _ := get("/stats?window=zero"); code != 400 {
		t.Errorf("bad window: got %d, want 400", code)
	}

	code, body = get("/loadmap")
	if code != 200 {
		t.Fatalf("/loadmap: %d", code)
	}
	var lr LoadMapResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatalf("/loadmap JSON: %v\n%s", err, body)
	}
	if lr.Node != "x" || len(lr.Digests) != 1 || lr.Digests[0].Node != "x" {
		t.Errorf("/loadmap = %+v", lr)
	}
	if len(lr.Ranking) != 1 || lr.Ranking[0] != "x" {
		t.Errorf("ranking = %v", lr.Ranking)
	}
	if lr.Digests[0].Util <= 0 {
		t.Errorf("digest util = %g, want the published 0.5 window average", lr.Digests[0].Util)
	}
}

func TestStatsEndpointsDisabled(t *testing.T) {
	eng, _ := statsFixture(t)
	srv := httptest.NewServer(Handler("x", eng, nil, nil))
	defer srv.Close()
	for _, path := range []string{"/stats", "/loadmap", "/links"} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 404 {
			t.Errorf("%s with no plane/transport: %d, want 404", path, resp.StatusCode)
		}
	}
}

func httpGet(t *testing.T, srv *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, body
}

// holdOp parks Process on a channel so a test can hold the engine inside
// Drain and observe the draining state from the outside.
type holdOp struct{ gate chan struct{} }

func (h *holdOp) Spec() op.Spec  { return op.Spec{Kind: "telehold"} }
func (h *holdOp) NumIn() int     { return 1 }
func (h *holdOp) NumOut() int    { return 1 }
func (h *holdOp) Bind(in []*stream.Schema) ([]*stream.Schema, error) {
	return []*stream.Schema{in[0]}, nil
}
func (h *holdOp) Process(_ int, t stream.Tuple, emit op.Emit) {
	<-h.gate
	emit(0, t)
}
func (h *holdOp) Advance(int64, op.Emit) {}
func (h *holdOp) Flush(op.Emit)          {}

var holdGate chan struct{}

func init() {
	op.RegisterKind("telehold", func(op.Spec) (op.Operator, error) {
		return &holdOp{gate: holdGate}, nil
	})
}

func TestHealthzReflectsRunState(t *testing.T) {
	eng, _ := statsFixture(t)
	srv := httptest.NewServer(Handler("x", eng, nil, nil))
	defer srv.Close()
	code, body := httpGet(t, srv, "/healthz")
	if code != 200 || string(body) != "ok\n" {
		t.Fatalf("healthy /healthz = %d %q", code, body)
	}

	// A vetoing health probe answers 503 with the reason — the stopped
	// (post-drain) auroranode uses exactly this hook.
	stopped := httptest.NewServer(NewHandler(Config{
		Node: "x", Engine: eng,
		Health: func() (bool, string) { return false, "stopped" },
	}))
	defer stopped.Close()
	code, body = httpGet(t, stopped, "/healthz")
	if code != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) != "stopped" {
		t.Fatalf("stopped /healthz = %d %q, want 503 stopped", code, body)
	}

	// A probe with no reason still gets a non-empty body.
	vague := httptest.NewServer(NewHandler(Config{
		Node: "x", Engine: eng,
		Health: func() (bool, string) { return false, "" },
	}))
	defer vague.Close()
	code, body = httpGet(t, vague, "/healthz")
	if code != http.StatusServiceUnavailable || strings.TrimSpace(string(body)) == "" {
		t.Fatalf("reasonless veto /healthz = %d %q", code, body)
	}
}

// TestHealthzDuringDrain holds the engine inside Drain (a tuple parked in
// a blocking operator) and checks /healthz flips to 503 "draining" for
// the duration, then back to ok.
func TestHealthzDuringDrain(t *testing.T) {
	holdGate = make(chan struct{})
	schema := stream.MustSchema("s", stream.Field{Name: "A", Kind: stream.KindInt})
	net := query.NewBuilder("hold").
		AddBox("h1", op.Spec{Kind: "telehold"}).
		BindInput("in", schema, "h1", 0).
		BindOutput("out", "h1", 0, nil).
		MustBuild()
	eng, err := engine.New(net, engine.Config{})
	if err != nil {
		t.Fatal(err)
	}
	eng.Ingest("in", stream.NewTuple(stream.Int(1)))

	srv := httptest.NewServer(Handler("x", eng, nil, nil))
	defer srv.Close()
	if code, _ := httpGet(t, srv, "/healthz"); code != 200 {
		t.Fatalf("pre-drain /healthz = %d", code)
	}

	done := make(chan struct{})
	go func() { eng.Drain(); close(done) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		code, body := httpGet(t, srv, "/healthz")
		if code == http.StatusServiceUnavailable {
			if got := strings.TrimSpace(string(body)); got != "draining" {
				t.Fatalf("draining /healthz body = %q", got)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("/healthz never reported draining")
		}
		time.Sleep(time.Millisecond)
	}
	close(holdGate)
	<-done
	if code, _ := httpGet(t, srv, "/healthz"); code != 200 {
		t.Errorf("post-drain /healthz = %d, want 200", code)
	}
}

func TestMetricsEndpointFormats(t *testing.T) {
	eng, _ := statsFixture(t)
	srv := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng, Version: "v1.2.3"}))
	defer srv.Close()

	code, body := httpGet(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics: %d", code)
	}
	var mr MetricsResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("/metrics JSON: %v\n%s", err, body)
	}
	if mr.Node != "x" || mr.Version != "v1.2.3" {
		t.Errorf("metrics header = %+v", mr)
	}
	if mr.Now <= 0 || mr.UptimeNs < 0 {
		t.Errorf("timestamps: now=%d uptime=%d", mr.Now, mr.UptimeNs)
	}
	if len(mr.Metrics.Counters) == 0 {
		t.Error("/metrics snapshot carries no counters")
	}

	resp, err := srv.Client().Get(srv.URL + "/metrics?format=prom")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, _ := io.ReadAll(resp.Body)
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("prom content type = %q", ct)
	}
	text := string(prom)
	if !strings.Contains(text, "# TYPE ") {
		t.Errorf("prom exposition has no TYPE lines:\n%s", text)
	}
	if !strings.Contains(text, `node="x"`) {
		t.Errorf("prom exposition missing node label:\n%s", text)
	}
}

func TestEventsEndpoint(t *testing.T) {
	eng, _ := statsFixture(t)
	j := events.NewJournal("x", 64)
	for i := 0; i < 5; i++ {
		j.Append(events.Event{Kind: events.KindSplit, Subject: fmt.Sprintf("b%d", i)})
	}
	srv := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng, Journal: j}))
	defer srv.Close()

	code, body := httpGet(t, srv, "/events")
	if code != 200 {
		t.Fatalf("/events: %d %s", code, body)
	}
	var er EventsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("/events JSON: %v\n%s", err, body)
	}
	if er.Node != "x" || er.Total != 5 || len(er.Events) != 5 {
		t.Fatalf("/events = %+v", er)
	}
	if er.Next != er.Events[4].Seq {
		t.Errorf("next cursor = %d, want last seq %d", er.Next, er.Events[4].Seq)
	}

	// Cursor paging: two pages of two, oldest first.
	_, body = httpGet(t, srv, "/events?max=2")
	var p1 EventsResponse
	json.Unmarshal(body, &p1)
	if len(p1.Events) != 2 || p1.Events[0].Subject != "b0" || p1.Events[1].Subject != "b1" {
		t.Fatalf("page 1 = %+v", p1.Events)
	}
	_, body = httpGet(t, srv, fmt.Sprintf("/events?since=%d&max=2", p1.Next))
	var p2 EventsResponse
	json.Unmarshal(body, &p2)
	if len(p2.Events) != 2 || p2.Events[0].Subject != "b2" || p2.Events[1].Subject != "b3" {
		t.Fatalf("page 2 = %+v", p2.Events)
	}

	// A caught-up cursor gets an empty page and the same cursor back.
	_, body = httpGet(t, srv, fmt.Sprintf("/events?since=%d", er.Next))
	var p3 EventsResponse
	json.Unmarshal(body, &p3)
	if len(p3.Events) != 0 || p3.Next != er.Next {
		t.Errorf("caught-up page = %+v", p3)
	}

	if code, _ := httpGet(t, srv, "/events?since=abc"); code != 400 {
		t.Errorf("bad since: %d, want 400", code)
	}
	if code, _ := httpGet(t, srv, "/events?max=0"); code != 400 {
		t.Errorf("bad max: %d, want 400", code)
	}

	// No journal anywhere: 404.
	bare := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng}))
	defer bare.Close()
	if code, _ := httpGet(t, bare, "/events"); code != 404 {
		t.Errorf("journal-less /events: %d, want 404", code)
	}
}

// TestEventsEngineJournalFallback: the positional Handler serves the
// engine's own journal when none is passed explicitly.
func TestEventsEngineJournalFallback(t *testing.T) {
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("fb").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, nil).
		MustBuild()
	eng, err := engine.New(net, engine.Config{Journal: events.NewJournal("x", 64)})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.SplitBox("f1", 2); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(Handler("x", eng, nil, nil))
	defer srv.Close()
	_, body := httpGet(t, srv, "/events")
	var er EventsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("/events JSON: %v\n%s", err, body)
	}
	if len(er.Events) != 1 || er.Events[0].Kind != events.KindSplit || er.Events[0].Subject != "f1" {
		t.Fatalf("engine journal not served: %+v", er.Events)
	}
}

// TestConcurrentScrapeUnderChurn hammers every endpoint from several
// goroutines while the engine ingests, splits, unsplits, samples, and
// publishes — the scrape plane must never race the engine core (run
// under -race) and must not leak goroutines once the server closes.
func TestConcurrentScrapeUnderChurn(t *testing.T) {
	base := runtime.NumGoroutine()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	net := query.NewBuilder("churn").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, nil).
		MustBuild()
	plane := stats.NewPlane("x", int64(10e6), 8, 2)
	eng, err := engine.New(net, engine.Config{
		Stats: plane.Store(), StatsEvery: 1,
		Journal: events.NewJournal("x", 256),
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(NewHandler(Config{
		Node: "x", Engine: eng, Plane: plane, Version: "test",
	}))

	paths := []string{
		"/healthz", "/metrics", "/metrics?format=prom", "/trace",
		"/events", "/events?max=4", "/stats", "/loadmap",
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			client := srv.Client()
			for i := w; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := client.Get(srv.URL + paths[i%len(paths)])
				if err != nil {
					t.Errorf("scrape %s: %v", paths[i%len(paths)], err)
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}

	now := time.Now().UnixNano()
	for i := 0; i < 400; i++ {
		eng.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(1)))
		eng.RunUntilIdle(0)
		if i%20 == 0 {
			now += 10e6
			eng.SampleStats(now)
			plane.Publish(now)
		}
		switch i % 40 {
		case 10:
			eng.SplitBox("f1", 2)
		case 30:
			eng.UnsplitBox("f1")
		}
	}
	close(stop)
	wg.Wait()
	srv.Close()

	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Errorf("goroutines: %d at start, %d after close", base, runtime.NumGoroutine())
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestLinksEndpoint(t *testing.T) {
	eng, _ := statsFixture(t)
	a, err := transport.ListenTCP("x", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := transport.ListenTCP("y", "127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	if err := a.AddPeer("y", b.Addr()); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := a.LinkState("y"); ok && st == transport.LinkEstablished {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("link never established")
		}
		time.Sleep(2 * time.Millisecond)
	}

	srv := httptest.NewServer(Handler("x", eng, nil, a))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/links")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/links: %d", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	var lr LinksResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatalf("/links JSON: %v\n%s", err, body)
	}
	if lr.Node != "x" || len(lr.Links) != 1 {
		t.Fatalf("/links = %+v", lr)
	}
	l := lr.Links[0]
	if l.Peer != "y" || l.State != "established" || !l.Supervised || l.Dials < 1 {
		t.Errorf("link info = %+v", l)
	}
}
