// Package telemetry is the node-local HTTP introspection surface shared
// by cmd/auroranode (which serves it) and cmd/dspstat (which scrapes it):
// liveness, metric snapshots, flight-recorder traces, and — when the
// statistics plane is on — windowed series and the gossiped load map.
package telemetry

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/metrics"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
)

// LinkSource exposes a transport's per-peer link states for /links.
// *transport.TCP implements it.
type LinkSource interface {
	LinkInfos() []transport.LinkInfo
}

// LinksResponse is the /links payload: every peer link's supervised
// state machine position, buffering, and reconnect counters.
type LinksResponse struct {
	Node  string               `json:"node"`
	Links []transport.LinkInfo `json:"links"`
}

// MetricsResponse is the /metrics payload.
type MetricsResponse struct {
	Node    string                   `json:"node"`
	Metrics metrics.RegistrySnapshot `json:"metrics"`
}

// StatsResponse is the /stats payload: the node's windowed series.
type StatsResponse struct {
	Node     string               `json:"node"`
	WindowNs int64                `json:"window_ns"`
	K        int                  `json:"k"`
	Series   []stats.SeriesExport `json:"series"`
}

// LoadMapResponse is the /loadmap payload: the node's converged view of
// the cluster, plus the ranking derived from it.
type LoadMapResponse struct {
	Node    string         `json:"node"`
	Ranking []string       `json:"ranking"`
	Digests []stats.Digest `json:"digests"`
}

// Handler builds the introspection mux (stdlib only):
//
//	GET /healthz          liveness probe, "ok"
//	GET /metrics          JSON snapshot of every engine metric
//	GET /trace?n=100      the most recent flight-recorder events as JSON
//	GET /trace?format=chrome
//	                      same events as Chrome trace-event JSON, loadable
//	                      in Perfetto (ui.perfetto.dev) or chrome://tracing
//	GET /stats?series=box.&window=4
//	                      windowed series (optionally filtered by name
//	                      prefix; window overrides how many complete
//	                      windows the windowed value averages)
//	GET /loadmap          the gossiped cluster load map and its ranking
//	GET /links            per-peer transport link states and counters
//
// Every handler reads only concurrency-safe state (the metric registry is
// mutex-and-atomic, the flight recorder is a mutexed ring, the stats
// store and load map are mutexed, link infos are snapshots), so the HTTP
// goroutines never touch the single-threaded engine core. plane may be
// nil: /stats and /loadmap then answer 404; likewise links and /links.
func Handler(id string, eng *engine.Engine, plane *stats.Plane, links LinkSource) http.Handler {
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(MetricsResponse{Node: id, Metrics: eng.Metrics().Snapshot()})
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var evs []trace.Event
		if rec := eng.Tracer().Recorder(); rec != nil {
			evs = rec.Events()
		}
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			w.Write(trace.ChromeTrace(evs))
			return
		}
		if evs == nil {
			evs = []trace.Event{}
		}
		json.NewEncoder(w).Encode(evs)
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if plane == nil {
			http.Error(w, "stats plane disabled", http.StatusNotFound)
			return
		}
		k := plane.WindowedK()
		if s := r.URL.Query().Get("window"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "bad window", http.StatusBadRequest)
				return
			}
			k = n
		}
		st := plane.Store()
		series := st.Export(r.URL.Query().Get("series"), k, time.Now().UnixNano())
		if series == nil {
			series = []stats.SeriesExport{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatsResponse{
			Node: id, WindowNs: st.WindowNs(), K: k, Series: series,
		})
	})

	mux.HandleFunc("/loadmap", func(w http.ResponseWriter, _ *http.Request) {
		if plane == nil {
			http.Error(w, "stats plane disabled", http.StatusNotFound)
			return
		}
		lm := plane.Map()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(LoadMapResponse{
			Node: id, Ranking: lm.Ranking(), Digests: lm.Snapshot(),
		})
	})

	mux.HandleFunc("/links", func(w http.ResponseWriter, _ *http.Request) {
		if links == nil {
			http.Error(w, "no transport", http.StatusNotFound)
			return
		}
		infos := links.LinkInfos()
		if infos == nil {
			infos = []transport.LinkInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(LinksResponse{Node: id, Links: infos})
	})

	return mux
}
