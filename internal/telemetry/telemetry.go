// Package telemetry is the node-local HTTP introspection surface shared
// by cmd/auroranode (which serves it) and cmd/dspstat (which scrapes it):
// liveness, metric snapshots, flight-recorder traces, the structured
// event journal, and — when the statistics plane is on — windowed series
// and the gossiped load map.
package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/metrics"
	"repro/internal/sketch"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/transport"
)

// LinkSource exposes a transport's per-peer link states for /links.
// *transport.TCP implements it.
type LinkSource interface {
	LinkInfos() []transport.LinkInfo
}

// LinksResponse is the /links payload: every peer link's supervised
// state machine position, buffering, and reconnect counters.
type LinksResponse struct {
	Node  string               `json:"node"`
	Links []transport.LinkInfo `json:"links"`
}

// MetricsResponse is the /metrics payload.
type MetricsResponse struct {
	Node string `json:"node"`
	// Now is the scrape's wall-clock time in unix nanoseconds and
	// UptimeNs how long this telemetry surface has been serving — rate
	// computations across scrapes need both.
	Now      int64                    `json:"now"`
	UptimeNs int64                    `json:"uptime_ns"`
	Version  string                   `json:"version,omitempty"`
	Metrics  metrics.RegistrySnapshot `json:"metrics"`
}

// StatsResponse is the /stats payload: the node's windowed series.
type StatsResponse struct {
	Node     string               `json:"node"`
	WindowNs int64                `json:"window_ns"`
	K        int                  `json:"k"`
	Series   []stats.SeriesExport `json:"series"`
}

// LoadMapResponse is the /loadmap payload: the node's converged view of
// the cluster, plus the ranking derived from it.
type LoadMapResponse struct {
	Node    string         `json:"node"`
	Ranking []string       `json:"ranking"`
	Digests []stats.Digest `json:"digests"`
}

// OutputLatency summarizes one output's delivered-latency quantile
// sketch for /latency. Headroom is the forecaster's latest fractional
// distance to the QoS latency cliff, stats.HeadroomUnknown when the
// forecaster has not produced one.
type OutputLatency struct {
	Output   string  `json:"output"`
	Count    uint64  `json:"count"`
	P50      float64 `json:"p50"`
	P95      float64 `json:"p95"`
	P99      float64 `json:"p99"`
	Max      float64 `json:"max"`
	Headroom float64 `json:"headroom"`
}

// LatencyResponse is the /latency payload. Local holds this node's own
// cumulative per-output sketches; Cluster holds per-output sketches
// merged across every digest in the gossiped load map (present only
// when the stats plane is on), so any node can answer for the whole
// cluster within a gossip round.
type LatencyResponse struct {
	Node    string          `json:"node"`
	Alpha   float64         `json:"alpha"`
	Local   []OutputLatency `json:"local"`
	Cluster []OutputLatency `json:"cluster,omitempty"`
}

// EventsResponse is the /events payload: one page of the node's
// structured event journal. Next is the cursor for the following page
// (pass it back as ?since=); Total counts everything ever journaled, so
// a scraper can detect how much the ring has already forgotten.
type EventsResponse struct {
	Node   string         `json:"node"`
	Next   uint64         `json:"next"`
	Total  uint64         `json:"total"`
	Events []events.Event `json:"events"`
}

// Config assembles a telemetry handler. Only Node and Engine are
// required; every nil optional surface answers 404 on its endpoints.
type Config struct {
	Node   string
	Engine *engine.Engine
	// Plane serves /stats and /loadmap.
	Plane *stats.Plane
	// Links serves /links.
	Links LinkSource
	// Journal serves /events. Nil falls back to the engine's journal.
	Journal *events.Journal
	// Version is reported in /metrics (build identification).
	Version string
	// Health, when non-nil, can veto liveness: /healthz answers 503 with
	// the returned reason. The engine's own drain state is checked first.
	Health func() (ok bool, reason string)
}

// Handler builds the introspection mux with positional arguments — the
// pre-observability-plane signature, kept for existing callers.
func Handler(id string, eng *engine.Engine, plane *stats.Plane, links LinkSource) http.Handler {
	return NewHandler(Config{Node: id, Engine: eng, Plane: plane, Links: links})
}

// NewHandler builds the introspection mux (stdlib only):
//
//	GET /healthz          liveness probe: "ok", or 503 + reason when the
//	                      engine is draining/stopped or the Health probe
//	                      vetoes
//	GET /metrics          JSON snapshot of every engine metric, with
//	                      uptime, wall-clock timestamp, and version
//	GET /metrics?format=prom
//	                      the same snapshot in Prometheus/OpenMetrics
//	                      text exposition, node label attached; when the
//	                      latency-SLO plane is on, per-output sketch
//	                      histograms and headroom gauges are appended
//	GET /latency          per-output delivered-latency quantile summaries
//	                      (p50/p95/p99/max + QoS headroom), node-local
//	                      and merged across the gossiped load map
//	GET /trace?n=100      the most recent flight-recorder events as JSON
//	GET /trace?format=chrome
//	                      same events as Chrome trace-event JSON, loadable
//	                      in Perfetto (ui.perfetto.dev) or chrome://tracing
//	GET /events?since=0&max=256
//	                      the structured event journal, seq-cursor paged
//	                      oldest-first (pass the returned next as since)
//	GET /stats?series=box.&window=4
//	                      windowed series (optionally filtered by name
//	                      prefix; window overrides how many complete
//	                      windows the windowed value averages)
//	GET /loadmap          the gossiped cluster load map and its ranking
//	GET /links            per-peer transport link states and counters
//	GET /debug/pprof/     the standard Go profiling surface
//
// Every handler reads only concurrency-safe state (the metric registry is
// mutex-and-atomic, the flight recorder and event journal are mutexed
// rings, the stats store and load map are mutexed, link infos are
// snapshots), so the HTTP goroutines never touch the single-threaded
// engine core.
func NewHandler(cfg Config) http.Handler {
	id, eng := cfg.Node, cfg.Engine
	journal := cfg.Journal
	if journal == nil {
		journal = eng.Journal()
	}
	start := time.Now()
	mux := http.NewServeMux()

	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		reason := ""
		if eng.Draining() {
			reason = "draining"
		} else if cfg.Health != nil {
			if ok, why := cfg.Health(); !ok {
				reason = why
				if reason == "" {
					reason = "unhealthy"
				}
			}
		}
		if reason != "" {
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(reason + "\n"))
			return
		}
		w.Write([]byte("ok\n"))
	})

	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		snap := eng.Metrics().Snapshot()
		if r.URL.Query().Get("format") == "prom" {
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			metrics.WritePrometheus(w, snap, map[string]string{"node": id})
			writeSketchProm(w, id, eng, time.Now().UnixNano())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(MetricsResponse{
			Node:     id,
			Now:      time.Now().UnixNano(),
			UptimeNs: time.Since(start).Nanoseconds(),
			Version:  cfg.Version,
			Metrics:  snap,
		})
	})

	mux.HandleFunc("/latency", func(w http.ResponseWriter, _ *http.Request) {
		local := eng.LatencySketches()
		if len(local) == 0 && cfg.Plane == nil {
			http.Error(w, "latency-SLO plane disabled", http.StatusNotFound)
			return
		}
		now := time.Now().UnixNano()
		resp := LatencyResponse{Node: id, Alpha: sketch.DefaultAlpha}
		for out, sk := range local {
			if sk.Count() > 0 {
				resp.Alpha = sk.Alpha()
			}
			resp.Local = append(resp.Local, summarize(out, sk, headroomOf(eng, out, now)))
		}
		sortByOutput(resp.Local)
		if resp.Local == nil {
			resp.Local = []OutputLatency{}
		}
		if cfg.Plane != nil {
			merged := map[string]*sketch.Sketch{}
			worst := map[string]float64{}
			for _, d := range cfg.Plane.Map().Snapshot() {
				for _, oq := range d.Outputs {
					if h, seen := worst[oq.Output]; oq.Headroom > stats.HeadroomUnknown &&
						(!seen || oq.Headroom < h) {
						worst[oq.Output] = oq.Headroom
					}
					if len(oq.Sketch) == 0 {
						continue
					}
					sk, _, err := sketch.DecodeSketch(oq.Sketch)
					if err != nil {
						continue
					}
					if cur, ok := merged[oq.Output]; ok {
						cur.Merge(sk)
					} else {
						merged[oq.Output] = sk
					}
				}
			}
			for out, sk := range merged {
				h := float64(stats.HeadroomUnknown)
				if v, ok := worst[out]; ok {
					h = v
				}
				resp.Cluster = append(resp.Cluster, summarize(out, sk, h))
			}
			sortByOutput(resp.Cluster)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(resp)
	})

	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		var evs []trace.Event
		if rec := eng.Tracer().Recorder(); rec != nil {
			evs = rec.Events()
		}
		if s := r.URL.Query().Get("n"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 0 {
				http.Error(w, "bad n", http.StatusBadRequest)
				return
			}
			if n < len(evs) {
				evs = evs[len(evs)-n:]
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			w.Write(trace.ChromeTrace(evs))
			return
		}
		if evs == nil {
			evs = []trace.Event{}
		}
		json.NewEncoder(w).Encode(evs)
	})

	mux.HandleFunc("/events", func(w http.ResponseWriter, r *http.Request) {
		if journal == nil {
			http.Error(w, "event journal disabled", http.StatusNotFound)
			return
		}
		var since uint64
		if s := r.URL.Query().Get("since"); s != "" {
			n, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad since", http.StatusBadRequest)
				return
			}
			since = n
		}
		max := 256
		if s := r.URL.Query().Get("max"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "bad max", http.StatusBadRequest)
				return
			}
			max = n
		}
		evs, next := journal.Since(since, max)
		if evs == nil {
			evs = []events.Event{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(EventsResponse{
			Node: id, Next: next, Total: journal.Total(), Events: evs,
		})
	})

	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if cfg.Plane == nil {
			http.Error(w, "stats plane disabled", http.StatusNotFound)
			return
		}
		k := cfg.Plane.WindowedK()
		if s := r.URL.Query().Get("window"); s != "" {
			n, err := strconv.Atoi(s)
			if err != nil || n < 1 {
				http.Error(w, "bad window", http.StatusBadRequest)
				return
			}
			k = n
		}
		st := cfg.Plane.Store()
		series := st.Export(r.URL.Query().Get("series"), k, time.Now().UnixNano())
		if series == nil {
			series = []stats.SeriesExport{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(StatsResponse{
			Node: id, WindowNs: st.WindowNs(), K: k, Series: series,
		})
	})

	mux.HandleFunc("/loadmap", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Plane == nil {
			http.Error(w, "stats plane disabled", http.StatusNotFound)
			return
		}
		lm := cfg.Plane.Map()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(LoadMapResponse{
			Node: id, Ranking: lm.Ranking(), Digests: lm.Snapshot(),
		})
	})

	mux.HandleFunc("/links", func(w http.ResponseWriter, _ *http.Request) {
		if cfg.Links == nil {
			http.Error(w, "no transport", http.StatusNotFound)
			return
		}
		infos := cfg.Links.LinkInfos()
		if infos == nil {
			infos = []transport.LinkInfo{}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(LinksResponse{Node: id, Links: infos})
	})

	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	return mux
}

// summarize reduces a sketch to its /latency row.
func summarize(out string, sk *sketch.Sketch, headroom float64) OutputLatency {
	return OutputLatency{
		Output:   out,
		Count:    sk.Count(),
		P50:      sk.Quantile(0.50),
		P95:      sk.Quantile(0.95),
		P99:      sk.Quantile(0.99),
		Max:      sk.Max(),
		Headroom: headroom,
	}
}

func sortByOutput(rows []OutputLatency) {
	sort.Slice(rows, func(i, j int) bool { return rows[i].Output < rows[j].Output })
}

// headroomOf looks up the forecaster's latest headroom gauge for an
// output, stats.HeadroomUnknown when the forecaster has not run.
func headroomOf(eng *engine.Engine, out string, now int64) float64 {
	if st := eng.StatsStore(); st != nil {
		if h, ok := st.Latest(stats.SeriesOutputHeadroom(out), now); ok {
			return h
		}
	}
	return stats.HeadroomUnknown
}

// writeSketchProm appends the latency-SLO plane's per-output sketches to
// a Prometheus exposition as real histogram families (cumulative le
// buckets straight from the sketch's log-bucket boundaries) plus a
// headroom gauge per output. No-op when the plane is off.
func writeSketchProm(w io.Writer, node string, eng *engine.Engine, now int64) {
	sks := eng.LatencySketches()
	if len(sks) == 0 {
		return
	}
	outs := make([]string, 0, len(sks))
	for out := range sks {
		outs = append(outs, out)
	}
	sort.Strings(outs)
	fmt.Fprintf(w, "# TYPE dsp_output_latency_ns histogram\n")
	for _, out := range outs {
		sk := sks[out]
		sk.Buckets(func(upper float64, cum uint64) {
			fmt.Fprintf(w, "dsp_output_latency_ns_bucket{node=%q,output=%q,le=%q} %d\n",
				node, out, strconv.FormatFloat(upper, 'g', -1, 64), cum)
		})
		fmt.Fprintf(w, "dsp_output_latency_ns_bucket{node=%q,output=%q,le=\"+Inf\"} %d\n",
			node, out, sk.Count())
		fmt.Fprintf(w, "dsp_output_latency_ns_sum{node=%q,output=%q} %v\n", node, out, sk.Sum())
		fmt.Fprintf(w, "dsp_output_latency_ns_count{node=%q,output=%q} %d\n", node, out, sk.Count())
	}
	wrote := false
	for _, out := range outs {
		if h := headroomOf(eng, out, now); h > stats.HeadroomUnknown {
			if !wrote {
				fmt.Fprintf(w, "# TYPE dsp_qos_headroom gauge\n")
				wrote = true
			}
			fmt.Fprintf(w, "dsp_qos_headroom{node=%q,output=%q} %v\n", node, out, h)
		}
	}
}
