package telemetry

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/op"
	"repro/internal/qos"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
)

// latencyFixture builds an SLO-enabled engine on a virtual clock, runs
// six 1 ms stats windows of ~1 ms-latency deliveries (enough for the
// forecaster to produce a headroom gauge), and publishes a digest so the
// gossiped load map carries the cumulative sketch.
func latencyFixture(t *testing.T) (*engine.Engine, *stats.Plane, int) {
	t.Helper()
	schema := stream.MustSchema("s",
		stream.Field{Name: "A", Kind: stream.KindInt},
		stream.Field{Name: "B", Kind: stream.KindInt},
	)
	spec := &qos.Spec{Latency: qos.DefaultLatency(2e6, 2e7)}
	net := query.NewBuilder("lat").
		AddBox("f1", op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}).
		BindInput("in", schema, "f1", 0).
		BindOutput("out", "f1", 0, spec).
		MustBuild()
	plane := stats.NewPlane("x", int64(1e6), 16, 2)
	vc := engine.NewVirtualClock(1)
	eng, err := engine.New(net, engine.Config{
		Clock: vc, Stats: plane.Store(), StatsEvery: 1,
		SLO: &engine.SLOConfig{},
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for w := 0; w < 6; w++ {
		for i := 0; i < 20; i++ {
			tp := stream.NewTuple(stream.Int(int64(i)), stream.Int(1))
			tp.TS = vc.Now() - 1e6 // delivered latency ~1 ms
			eng.Ingest("in", tp)
			eng.RunUntilIdle(0)
			total++
			vc.Advance(15_000)
		}
		eng.SampleStats(vc.Now())
		vc.Advance(1e6 - vc.Now()%1e6)
	}
	eng.SampleStats(vc.Now())
	plane.Publish(vc.Now())
	// The handler resolves node-local headroom against the wall clock;
	// the forecaster above ran on virtual time, so park a gauge sample at
	// wall-now for the local and prom views to find.
	plane.Store().Observe(stats.SeriesOutputHeadroom("out"), stats.KindGauge,
		time.Now().UnixNano(), 0.42)
	return eng, plane, total
}

func TestLatencyEndpoint(t *testing.T) {
	eng, plane, total := latencyFixture(t)
	srv := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng, Plane: plane}))
	defer srv.Close()

	code, body := httpGet(t, srv, "/latency")
	if code != 200 {
		t.Fatalf("/latency: %d %s", code, body)
	}
	var lr LatencyResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatalf("/latency JSON: %v\n%s", err, body)
	}
	if lr.Node != "x" || lr.Alpha <= 0 || lr.Alpha > 0.5 {
		t.Errorf("latency header = %+v", lr)
	}
	if len(lr.Local) != 1 || lr.Local[0].Output != "out" {
		t.Fatalf("local rows = %+v", lr.Local)
	}
	loc := lr.Local[0]
	if loc.Count != uint64(total) {
		t.Errorf("local count = %d, want %d", loc.Count, total)
	}
	if loc.P50 < 0.97e6 || loc.P50 > 1.03e6 {
		t.Errorf("local p50 = %g, want ~1e6", loc.P50)
	}
	if loc.P99 < loc.P50 || loc.Max < loc.P99 {
		t.Errorf("quantiles not monotone: %+v", loc)
	}
	if loc.Headroom != 0.42 {
		t.Errorf("local headroom = %g, want the parked 0.42 gauge", loc.Headroom)
	}

	// Cluster section: the digest's sketch bytes round-trip through the
	// load map and merge back to the same population.
	if len(lr.Cluster) != 1 || lr.Cluster[0].Output != "out" {
		t.Fatalf("cluster rows = %+v", lr.Cluster)
	}
	cl := lr.Cluster[0]
	if cl.Count != uint64(total) {
		t.Errorf("cluster count = %d, want %d", cl.Count, total)
	}
	if cl.P99 < 0.95e6 || cl.P99 > 1.05e6 {
		t.Errorf("cluster p99 = %g, want ~1e6", cl.P99)
	}
	// The forecaster's gossiped headroom: latency sits well under the
	// 3.8 ms cliff, so headroom is strongly positive but below 1.
	if cl.Headroom <= 0.5 || cl.Headroom >= 1 {
		t.Errorf("cluster headroom = %g, want in (0.5, 1)", cl.Headroom)
	}
}

func TestLatencyEndpointDisabled(t *testing.T) {
	// No SLO plane and no stats plane: 404.
	eng, _ := statsFixture(t)
	srv := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng}))
	defer srv.Close()
	if code, _ := httpGet(t, srv, "/latency"); code != 404 {
		t.Errorf("/latency with no SLO plane: %d, want 404", code)
	}

	// No SLO plane but a stats plane: 200 with empty local — another
	// node's digests may still carry sketches.
	eng2, plane := statsFixture(t)
	srv2 := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng2, Plane: plane}))
	defer srv2.Close()
	code, body := httpGet(t, srv2, "/latency")
	if code != 200 {
		t.Fatalf("/latency with plane only: %d", code)
	}
	var lr LatencyResponse
	if err := json.Unmarshal(body, &lr); err != nil {
		t.Fatal(err)
	}
	if len(lr.Local) != 0 {
		t.Errorf("SLO-off local rows = %+v", lr.Local)
	}
}

func TestPromSketchExposition(t *testing.T) {
	eng, plane, total := latencyFixture(t)
	srv := httptest.NewServer(NewHandler(Config{Node: "x", Engine: eng, Plane: plane}))
	defer srv.Close()

	code, body := httpGet(t, srv, "/metrics?format=prom")
	if code != 200 {
		t.Fatalf("/metrics?format=prom: %d", code)
	}
	text := string(body)
	if !strings.Contains(text, "# TYPE dsp_output_latency_ns histogram") {
		t.Errorf("missing sketch histogram TYPE line:\n%s", text)
	}
	infLine := `dsp_output_latency_ns_bucket{node="x",output="out",le="+Inf"} ` +
		strconv.Itoa(total)
	if !strings.Contains(text, infLine) {
		t.Errorf("missing +Inf bucket %q:\n%s", infLine, text)
	}
	if !strings.Contains(text, `dsp_output_latency_ns_count{node="x",output="out"} `+strconv.Itoa(total)) {
		t.Errorf("missing histogram count line:\n%s", text)
	}
	if !strings.Contains(text, `dsp_qos_headroom{node="x",output="out"} 0.42`) {
		t.Errorf("missing headroom gauge:\n%s", text)
	}

	// Cumulative le buckets are monotone non-decreasing and end at count.
	var last uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "dsp_output_latency_ns_bucket") ||
			strings.Contains(line, "+Inf") {
			continue
		}
		var cum uint64
		if _, err := fmt.Sscan(line[strings.LastIndexByte(line, ' ')+1:], &cum); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if cum < last {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		last = cum
	}
	if last != uint64(total) {
		t.Errorf("last finite bucket cum = %d, want %d", last, total)
	}

	// SLO off: no sketch families appended, exposition otherwise intact.
	off, _ := statsFixture(t)
	srvOff := httptest.NewServer(NewHandler(Config{Node: "x", Engine: off}))
	defer srvOff.Close()
	_, body = httpGet(t, srvOff, "/metrics?format=prom")
	if strings.Contains(string(body), "dsp_output_latency_ns") {
		t.Errorf("SLO-off exposition carries sketch families:\n%s", body)
	}
}
