package stream

// Queue is an unbounded FIFO of tuples implemented as a growable ring
// buffer. One queue sits on every arc of a running Aurora network; the
// scheduler drains queues in trains (§2.3) and the storage manager tracks
// their memory footprint, spilling the excess to the persistent store when
// main memory runs out.
//
// Queue is not safe for concurrent use; the engine serializes access
// through the scheduler, which is the paper's single-threaded box-execution
// model. Cross-goroutine hand-off uses engine mailboxes, not Queue.
type Queue struct {
	buf   []Tuple
	head  int
	count int
	bytes int
}

// NewQueue returns an empty queue with the given initial capacity hint.
func NewQueue(capHint int) *Queue {
	if capHint < 4 {
		capHint = 4
	}
	return &Queue{buf: make([]Tuple, capHint)}
}

// Len returns the number of queued tuples.
func (q *Queue) Len() int { return q.count }

// Bytes returns the approximate memory footprint of all queued tuples.
func (q *Queue) Bytes() int { return q.bytes }

// Push appends a tuple at the tail.
func (q *Queue) Push(t Tuple) {
	if q.count == len(q.buf) {
		q.grow()
	}
	q.buf[(q.head+q.count)%len(q.buf)] = t
	q.count++
	q.bytes += t.MemSize()
}

// PushAll appends every tuple of ts in order.
func (q *Queue) PushAll(ts []Tuple) {
	for _, t := range ts {
		q.Push(t)
	}
}

// Pop removes and returns the head tuple; ok is false when empty.
func (q *Queue) Pop() (t Tuple, ok bool) {
	if q.count == 0 {
		return Tuple{}, false
	}
	t = q.buf[q.head]
	q.buf[q.head] = Tuple{} // release for GC
	q.head = (q.head + 1) % len(q.buf)
	q.count--
	q.bytes -= t.MemSize()
	return t, true
}

// Peek returns the head tuple without removing it.
func (q *Queue) Peek() (t Tuple, ok bool) {
	if q.count == 0 {
		return Tuple{}, false
	}
	return q.buf[q.head], true
}

// PopTrain removes up to max tuples from the head and appends them to dst,
// returning the extended slice. It implements the train-scheduling drain:
// the scheduler decides how many waiting tuples to push through a box at
// once (§2.3).
func (q *Queue) PopTrain(dst []Tuple, max int) []Tuple {
	if max > q.count {
		max = q.count
	}
	for i := 0; i < max; i++ {
		t, _ := q.Pop()
		dst = append(dst, t)
	}
	return dst
}

// Drain removes and returns every queued tuple in order.
func (q *Queue) Drain() []Tuple {
	out := make([]Tuple, 0, q.count)
	return q.PopTrain(out, q.count)
}

// Snapshot returns a copy of the queue contents in FIFO order without
// consuming them; used by HA output-log replication.
func (q *Queue) Snapshot() []Tuple {
	out := make([]Tuple, 0, q.count)
	for i := 0; i < q.count; i++ {
		out = append(out, q.buf[(q.head+i)%len(q.buf)])
	}
	return out
}

// TruncateBefore discards every tuple with Seq < seq from the head of the
// queue, returning how many were discarded. The HA protocol (§6.2) calls
// this when a back-channel checkpoint message reports that downstream
// effects of those tuples are safely recorded elsewhere. Tuples are assumed
// to be in non-decreasing Seq order, as produced by an output queue.
func (q *Queue) TruncateBefore(seq uint64) int {
	n := 0
	for q.count > 0 && q.buf[q.head].Seq < seq {
		q.Pop()
		n++
	}
	return n
}

func (q *Queue) grow() {
	nb := make([]Tuple, len(q.buf)*2)
	for i := 0; i < q.count; i++ {
		nb[i] = q.buf[(q.head+i)%len(q.buf)]
	}
	q.buf = nb
	q.head = 0
}
