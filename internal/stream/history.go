package stream

// History is the bounded historical buffer kept at a connection point
// (paper §2.2): a predetermined arc in the flow graph where recent stream
// history is retained so that ad hoc queries can be attached later and
// network transformations can stabilize. It keeps the most recent tuples up
// to a byte budget, evicting from the oldest end.
type History struct {
	q        *Queue
	maxBytes int
	dropped  uint64
}

// NewHistory returns a history buffer bounded by maxBytes (<=0 means a
// small default of 1 MiB).
func NewHistory(maxBytes int) *History {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	return &History{q: NewQueue(64), maxBytes: maxBytes}
}

// Add records a tuple, evicting the oldest history as needed to stay within
// the byte budget.
func (h *History) Add(t Tuple) {
	h.q.Push(t)
	for h.q.Bytes() > h.maxBytes && h.q.Len() > 1 {
		h.q.Pop()
		h.dropped++
	}
}

// Len returns the number of retained tuples.
func (h *History) Len() int { return h.q.Len() }

// Bytes returns the retained footprint.
func (h *History) Bytes() int { return h.q.Bytes() }

// Evicted returns how many tuples have aged out of the buffer.
func (h *History) Evicted() uint64 { return h.dropped }

// Replay returns the retained history in arrival order; ad hoc queries
// attached to a connection point are seeded with this replay before
// receiving live tuples.
func (h *History) Replay() []Tuple { return h.q.Snapshot() }
