package stream

// Spill is a History's disk overflow: tuples evicted from the in-memory
// window are appended to it instead of being dropped (§2.3 — the Storage
// Manager pages long connection-point queues to the persistent store).
// Append returns how many tuples the spill itself had to drop to honor
// its own disk budget; those are gone for good and count as evicted.
// internal/storage provides the segment-file implementation; the
// interface lives here so stream stays a leaf package.
type Spill interface {
	// Append takes ownership of an evicted tuple, returning the number of
	// tuples permanently dropped from the spill's old end to stay within
	// its disk budget.
	Append(t Tuple) (dropped int)
	// Replay returns the spilled tuples still retained, oldest first.
	Replay() []Tuple
	// Bytes returns the spill's on-disk footprint.
	Bytes() int64
}

// History is the bounded historical buffer kept at a connection point
// (paper §2.2): a predetermined arc in the flow graph where recent stream
// history is retained so that ad hoc queries can be attached later and
// network transformations can stabilize. It keeps the most recent tuples
// in memory up to a byte budget; past the budget the oldest tuples either
// spill to the attached Spill (disk) or, with no spill, are evicted.
type History struct {
	q        *Queue
	maxBytes int
	dropped  uint64
	spill    Spill
}

// NewHistory returns a history buffer bounded by maxBytes (<=0 means a
// small default of 1 MiB).
func NewHistory(maxBytes int) *History {
	if maxBytes <= 0 {
		maxBytes = 1 << 20
	}
	return &History{q: NewQueue(64), maxBytes: maxBytes}
}

// SetSpill attaches a disk spill. Attach before the first Add (recovery
// attaches it at construction); tuples already evicted are gone.
func (h *History) SetSpill(s Spill) { h.spill = s }

// Add records a tuple, evicting the oldest history as needed to stay
// within the in-memory byte budget — into the spill when one is attached,
// otherwise dropping it. It returns the net change to the in-memory
// footprint in bytes (the storage-accounting charge: what was added minus
// what eviction freed) and how many tuples were permanently dropped in
// the process (0 whenever the spill absorbed the overflow).
func (h *History) Add(t Tuple) (delta int, dropped int) {
	h.q.Push(t)
	delta = t.MemSize()
	for h.q.Bytes() > h.maxBytes && h.q.Len() > 1 {
		old, _ := h.q.Pop()
		delta -= old.MemSize()
		if h.spill != nil {
			dropped += h.spill.Append(old)
		} else {
			dropped++
		}
	}
	h.dropped += uint64(dropped)
	return delta, dropped
}

// Len returns the number of tuples retained in memory.
func (h *History) Len() int { return h.q.Len() }

// Bytes returns the in-memory footprint.
func (h *History) Bytes() int { return h.q.Bytes() }

// SpillBytes returns the attached spill's on-disk footprint (0 without a
// spill).
func (h *History) SpillBytes() int64 {
	if h.spill == nil {
		return 0
	}
	return h.spill.Bytes()
}

// Evicted returns how many tuples are permanently gone — aged out of the
// buffer with no spill attached, or dropped off the spill's old end to
// honor its disk budget. Tuples sitting in the spill are retained, not
// evicted.
func (h *History) Evicted() uint64 { return h.dropped }

// Replay returns the retained history in arrival order — the spilled
// prefix first (oldest), then the in-memory window; ad hoc queries
// attached to a connection point are seeded with this replay before
// receiving live tuples.
func (h *History) Replay() []Tuple {
	mem := h.q.Snapshot()
	if h.spill == nil {
		return mem
	}
	disk := h.spill.Replay()
	return append(disk, mem...)
}
