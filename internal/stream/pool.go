package stream

import "sync"

// Vals pooling for the batched train path. Operators that materialize new
// tuples on the hot path (Map projections, Tumble window emissions) draw
// their backing arrays from here and the engine returns them when the
// tuple provably dies (delivered to an application output with no other
// reference, or consumed by an operator that neither retains nor re-emits
// its input). Slices are grouped into power-of-two size classes; a request
// is served from the smallest class that fits, so MemSize accounting must
// charge capacity, not length (see Tuple.MemSize).
//
// The freelist is a mutex-guarded stack per class rather than a sync.Pool:
// sync.Pool.Put boxes its argument, so putting a bare []Value would
// allocate a 24-byte interface payload on every recycle — exactly the
// allocation the pool exists to remove. The engine's train buffers and
// per-worker emit buffers are pointer-shaped and do use sync.Pool.
const (
	valsClassMin  = 4  // smallest class capacity
	valsClasses   = 5  // 4, 8, 16, 32, 64
	valsClassMax  = valsClassMin << (valsClasses - 1)
	valsClassKeep = 1024 // retained slices per class; overflow goes to GC
)

type valsClass struct {
	mu   sync.Mutex
	free [][]Value
}

var valsPool [valsClasses]valsClass

// valsClassFor returns the index of the smallest class whose capacity is
// at least n, or -1 when n exceeds the largest class.
func valsClassFor(n int) int {
	c := valsClassMin
	for i := 0; i < valsClasses; i++ {
		if n <= c {
			return i
		}
		c <<= 1
	}
	return -1
}

// GetVals returns a value slice of length n, drawn from the pool when a
// size class fits. The contents are zero values.
func GetVals(n int) []Value {
	if n == 0 {
		return nil
	}
	ci := valsClassFor(n)
	if ci < 0 {
		return make([]Value, n)
	}
	p := &valsPool[ci]
	p.mu.Lock()
	if k := len(p.free); k > 0 {
		v := p.free[k-1]
		p.free[k-1] = nil
		p.free = p.free[:k-1]
		p.mu.Unlock()
		return v[:n]
	}
	p.mu.Unlock()
	return make([]Value, n, valsClassMin<<ci)
}

// PutVals returns a slice obtained from GetVals to its size class. The
// slice is cleared first so pooled entries never pin strings from dead
// tuples. Slices whose capacity matches no class (or whose class stack is
// full) are dropped to the garbage collector.
func PutVals(v []Value) {
	c := cap(v)
	if c < valsClassMin || c > valsClassMax || c&(c-1) != 0 {
		return
	}
	v = v[:c]
	for i := range v {
		v[i] = Value{}
	}
	ci := valsClassFor(c)
	p := &valsPool[ci]
	p.mu.Lock()
	if len(p.free) < valsClassKeep {
		p.free = append(p.free, v)
	}
	p.mu.Unlock()
}
