package stream

import (
	"testing"
	"testing/quick"
)

func intTuple(seq uint64, v int64) Tuple {
	return Tuple{Seq: seq, Vals: []Value{Int(v)}}
}

func TestQueueFIFO(t *testing.T) {
	q := NewQueue(2)
	for i := 0; i < 100; i++ {
		q.Push(intTuple(uint64(i), int64(i)))
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
	for i := 0; i < 100; i++ {
		tp, ok := q.Pop()
		if !ok || tp.Seq != uint64(i) {
			t.Fatalf("Pop %d: got %v, ok=%v", i, tp, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty queue should report !ok")
	}
}

func TestQueuePeek(t *testing.T) {
	q := NewQueue(0)
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty should be !ok")
	}
	q.Push(intTuple(9, 9))
	tp, ok := q.Peek()
	if !ok || tp.Seq != 9 || q.Len() != 1 {
		t.Error("Peek should not consume")
	}
}

func TestQueueBytesAccounting(t *testing.T) {
	q := NewQueue(4)
	t1 := intTuple(1, 1)
	t2 := Tuple{Seq: 2, Vals: []Value{String("a longer string payload")}}
	q.Push(t1)
	q.Push(t2)
	want := t1.MemSize() + t2.MemSize()
	if q.Bytes() != want {
		t.Errorf("Bytes = %d, want %d", q.Bytes(), want)
	}
	q.Pop()
	q.Pop()
	if q.Bytes() != 0 {
		t.Errorf("Bytes after drain = %d, want 0", q.Bytes())
	}
}

func TestQueuePopTrain(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 10; i++ {
		q.Push(intTuple(uint64(i), int64(i)))
	}
	train := q.PopTrain(nil, 4)
	if len(train) != 4 || train[0].Seq != 0 || train[3].Seq != 3 {
		t.Fatalf("train = %v", train)
	}
	rest := q.PopTrain(nil, 100)
	if len(rest) != 6 || rest[0].Seq != 4 {
		t.Fatalf("rest = %v", rest)
	}
}

func TestQueueSnapshotAndDrain(t *testing.T) {
	q := NewQueue(2)
	for i := 0; i < 7; i++ {
		q.Push(intTuple(uint64(i), int64(i)))
	}
	snap := q.Snapshot()
	if len(snap) != 7 || q.Len() != 7 {
		t.Fatal("Snapshot must not consume")
	}
	for i, tp := range snap {
		if tp.Seq != uint64(i) {
			t.Fatalf("snapshot order broken at %d: %v", i, tp)
		}
	}
	got := q.Drain()
	if len(got) != 7 || q.Len() != 0 {
		t.Fatal("Drain must consume everything")
	}
}

func TestQueueTruncateBefore(t *testing.T) {
	q := NewQueue(4)
	for i := 0; i < 10; i++ {
		q.Push(intTuple(uint64(i), int64(i)))
	}
	if n := q.TruncateBefore(5); n != 5 {
		t.Fatalf("TruncateBefore removed %d, want 5", n)
	}
	head, _ := q.Peek()
	if head.Seq != 5 || q.Len() != 5 {
		t.Fatalf("head = %v len = %d", head, q.Len())
	}
	if n := q.TruncateBefore(3); n != 0 {
		t.Errorf("TruncateBefore(3) removed %d, want 0", n)
	}
}

func TestQueueWrapAroundGrow(t *testing.T) {
	// Force head to advance before growth so the ring wrap is exercised.
	q := NewQueue(4)
	for i := 0; i < 4; i++ {
		q.Push(intTuple(uint64(i), int64(i)))
	}
	q.Pop()
	q.Pop()
	for i := 4; i < 12; i++ {
		q.Push(intTuple(uint64(i), int64(i)))
	}
	for want := uint64(2); want < 12; want++ {
		tp, ok := q.Pop()
		if !ok || tp.Seq != want {
			t.Fatalf("after wrap: got %v, want seq %d", tp, want)
		}
	}
}

func TestQueueOrderProperty(t *testing.T) {
	f := func(seqs []uint64) bool {
		q := NewQueue(1)
		for i, s := range seqs {
			q.Push(Tuple{Seq: s, Vals: []Value{Int(int64(i))}})
		}
		out := q.Drain()
		if len(out) != len(seqs) {
			return false
		}
		for i := range out {
			if out[i].Seq != seqs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryEviction(t *testing.T) {
	h := NewHistory(300)
	big := Tuple{Vals: []Value{String("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx")}} // ~72 bytes
	for i := 0; i < 20; i++ {
		tp := big.Clone()
		tp.Seq = uint64(i)
		h.Add(tp)
	}
	if h.Bytes() > 300+big.MemSize() {
		t.Errorf("history exceeded budget: %d bytes", h.Bytes())
	}
	if h.Evicted() == 0 {
		t.Error("expected evictions")
	}
	replay := h.Replay()
	if len(replay) == 0 || replay[len(replay)-1].Seq != 19 {
		t.Error("replay should retain the most recent tuples")
	}
	for i := 1; i < len(replay); i++ {
		if replay[i].Seq != replay[i-1].Seq+1 {
			t.Error("replay order broken")
		}
	}
}

func TestHistoryDefaultBudget(t *testing.T) {
	h := NewHistory(0)
	h.Add(intTuple(1, 1))
	if h.Len() != 1 {
		t.Error("default-budget history should retain tuples")
	}
}
