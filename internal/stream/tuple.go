package stream

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Tuple is one stream event. Unlike relational tuples, stream tuples are
// generated in real time and are never available in their entirety at any
// given point (paper §2.1).
//
// Seq is a monotonically increasing sequence number assigned by the origin
// server; the high-availability protocol of §6.2 depends on it for output
// queue truncation. TS is the event timestamp in the clock of the
// environment that produced it (virtual nanoseconds under netsim, unix
// nanoseconds otherwise).
type Tuple struct {
	Seq  uint64
	TS   int64
	Vals []Value

	// Span is the optional causal trace context: nil for untraced tuples,
	// shared by pointer through queues, boxes, and in-process links so the
	// latency decomposition accumulates along the whole path. It is
	// diagnostic metadata — excluded from value equality and from MemSize
	// buffer accounting.
	Span *trace.Span

	// pooled marks Vals as drawn from the package freelist (GetVals). Only
	// the engine may act on it: a pooled tuple's backing array is returned
	// via Recycle at the points where the tuple provably dies. Any code
	// path that creates a second reference to Vals (fan-out, history
	// retention, ad hoc taps, cross-engine ingest) must call Disown first.
	pooled bool
}

// NewTuple builds a tuple with the given values and zero Seq/TS.
func NewTuple(vals ...Value) Tuple { return Tuple{Vals: vals} }

// Clone returns a deep copy whose value slice does not alias the original.
func (t Tuple) Clone() Tuple {
	c := t
	c.Vals = append([]Value(nil), t.Vals...)
	c.pooled = false
	return c
}

// MarkPooled flags Vals as pool-owned; the caller asserts the slice came
// from GetVals and that no other reference to it exists.
func (t *Tuple) MarkPooled() { t.pooled = true }

// Pooled reports whether Vals is flagged as pool-owned.
func (t Tuple) Pooled() bool { return t.pooled }

// Disown clears the pooled flag without recycling, surrendering the
// backing array to the garbage collector. Required before any operation
// that aliases Vals outside the engine's ownership tracking.
func (t *Tuple) Disown() { t.pooled = false }

// Recycle returns a pooled Vals backing array to the freelist and clears
// the tuple. It reports whether anything was reclaimed. Callers must
// guarantee no other reference to Vals survives.
func (t *Tuple) Recycle() bool {
	if !t.pooled {
		return false
	}
	t.pooled = false
	if t.Vals == nil {
		return false
	}
	PutVals(t.Vals)
	t.Vals = nil
	return true
}

// Field returns the i'th value; out-of-range indices return null, so that
// operators survive schema drift during dynamic reconfiguration.
func (t Tuple) Field(i int) Value {
	if i < 0 || i >= len(t.Vals) {
		return Value{}
	}
	return t.Vals[i]
}

// EqualValues reports whether two tuples carry identical values (Seq and TS
// are ignored: split transparency in §5.1 is defined over values).
func (t Tuple) EqualValues(o Tuple) bool {
	if len(t.Vals) != len(o.Vals) {
		return false
	}
	for i := range t.Vals {
		if !t.Vals[i].Equal(o.Vals[i]) {
			return false
		}
	}
	return true
}

// MemSize approximates the tuple's memory footprint in bytes for buffer
// accounting in the storage manager. It charges the full capacity of the
// Vals backing array, not just its length: pooled slices are rounded up
// to a size class, and the spare slots are real memory the connection
// point is holding, so length-based accounting would silently
// under-report buffered bytes (and the spill high-water mark) whenever
// the pool hands back an oversized class.
func (t Tuple) MemSize() int {
	n := 24 // Seq + TS + slice header
	for _, v := range t.Vals {
		n += v.MemSize()
	}
	n += (cap(t.Vals) - len(t.Vals)) * valueHeader
	return n
}

// String renders the tuple as (v1, v2, ...)@seq.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Format())
	}
	fmt.Fprintf(&b, ")@%d", t.Seq)
	return b.String()
}

// KeyOf concatenates the formatted values at the given indices into a
// grouping key. It is used by Tumble/XSection/Slide group-by evaluation and
// by content-based split predicates.
func (t Tuple) KeyOf(indices []int) string {
	if len(indices) == 1 {
		return t.Field(indices[0]).Format()
	}
	var b strings.Builder
	for i, idx := range indices {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(t.Field(idx).Format())
	}
	return b.String()
}

// TuplesEqualValues reports element-wise EqualValues over two slices.
func TuplesEqualValues(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].EqualValues(b[i]) {
			return false
		}
	}
	return true
}

// FormatTuples renders a tuple slice one per line, for test diagnostics.
func FormatTuples(ts []Tuple) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
