package stream

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Tuple is one stream event. Unlike relational tuples, stream tuples are
// generated in real time and are never available in their entirety at any
// given point (paper §2.1).
//
// Seq is a monotonically increasing sequence number assigned by the origin
// server; the high-availability protocol of §6.2 depends on it for output
// queue truncation. TS is the event timestamp in the clock of the
// environment that produced it (virtual nanoseconds under netsim, unix
// nanoseconds otherwise).
type Tuple struct {
	Seq  uint64
	TS   int64
	Vals []Value

	// Span is the optional causal trace context: nil for untraced tuples,
	// shared by pointer through queues, boxes, and in-process links so the
	// latency decomposition accumulates along the whole path. It is
	// diagnostic metadata — excluded from value equality and from MemSize
	// buffer accounting.
	Span *trace.Span
}

// NewTuple builds a tuple with the given values and zero Seq/TS.
func NewTuple(vals ...Value) Tuple { return Tuple{Vals: vals} }

// Clone returns a deep copy whose value slice does not alias the original.
func (t Tuple) Clone() Tuple {
	c := t
	c.Vals = append([]Value(nil), t.Vals...)
	return c
}

// Field returns the i'th value; out-of-range indices return null, so that
// operators survive schema drift during dynamic reconfiguration.
func (t Tuple) Field(i int) Value {
	if i < 0 || i >= len(t.Vals) {
		return Value{}
	}
	return t.Vals[i]
}

// EqualValues reports whether two tuples carry identical values (Seq and TS
// are ignored: split transparency in §5.1 is defined over values).
func (t Tuple) EqualValues(o Tuple) bool {
	if len(t.Vals) != len(o.Vals) {
		return false
	}
	for i := range t.Vals {
		if !t.Vals[i].Equal(o.Vals[i]) {
			return false
		}
	}
	return true
}

// MemSize approximates the tuple's memory footprint in bytes for buffer
// accounting in the storage manager.
func (t Tuple) MemSize() int {
	n := 24 // Seq + TS + slice header
	for _, v := range t.Vals {
		n += v.MemSize()
	}
	return n
}

// String renders the tuple as (v1, v2, ...)@seq.
func (t Tuple) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, v := range t.Vals {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(v.Format())
	}
	fmt.Fprintf(&b, ")@%d", t.Seq)
	return b.String()
}

// KeyOf concatenates the formatted values at the given indices into a
// grouping key. It is used by Tumble/XSection/Slide group-by evaluation and
// by content-based split predicates.
func (t Tuple) KeyOf(indices []int) string {
	if len(indices) == 1 {
		return t.Field(indices[0]).Format()
	}
	var b strings.Builder
	for i, idx := range indices {
		if i > 0 {
			b.WriteByte('\x1f')
		}
		b.WriteString(t.Field(idx).Format())
	}
	return b.String()
}

// TuplesEqualValues reports element-wise EqualValues over two slices.
func TuplesEqualValues(a, b []Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].EqualValues(b[i]) {
			return false
		}
	}
	return true
}

// FormatTuples renders a tuple slice one per line, for test diagnostics.
func FormatTuples(ts []Tuple) string {
	var b strings.Builder
	for _, t := range ts {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	return b.String()
}
