// Package stream defines the data model of the Aurora stream processor:
// typed values, schemas, tuples, and the queues that carry tuples between
// operators. A data stream is a potentially unbounded sequence of tuples
// generated in real time by a data source (paper §2.1).
package stream

import (
	"fmt"
	"strconv"
)

// Kind enumerates the primitive types a stream field may carry.
type Kind uint8

const (
	// KindInvalid is the zero Kind; values of this kind are nulls.
	KindInvalid Kind = iota
	// KindInt is a 64-bit signed integer.
	KindInt
	// KindFloat is a 64-bit IEEE float.
	KindFloat
	// KindString is an immutable byte string.
	KindString
	// KindBool is a boolean.
	KindBool
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindBool:
		return "bool"
	default:
		return "invalid"
	}
}

// Value is a compact tagged union holding one field of a tuple. The zero
// Value is a null. Values are immutable once placed in a tuple.
type Value struct {
	kind Kind
	i    int64 // int, bool (0/1)
	f    float64
	s    string
}

// Int returns a Value of KindInt.
func Int(v int64) Value { return Value{kind: KindInt, i: v} }

// Float returns a Value of KindFloat.
func Float(v float64) Value { return Value{kind: KindFloat, f: v} }

// String returns a Value of KindString.
func String(v string) Value { return Value{kind: KindString, s: v} }

// Bool returns a Value of KindBool.
func Bool(v bool) Value {
	var i int64
	if v {
		i = 1
	}
	return Value{kind: KindBool, i: i}
}

// Null returns the null Value.
func Null() Value { return Value{} }

// Kind reports the kind of the value.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.kind == KindInvalid }

// AsInt returns the integer payload. It is valid only for KindInt and
// KindBool values; other kinds return 0.
func (v Value) AsInt() int64 {
	if v.kind == KindInt || v.kind == KindBool {
		return v.i
	}
	return 0
}

// AsFloat returns the value coerced to float64. Ints coerce losslessly for
// magnitudes below 2^53; strings and nulls return 0.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt, KindBool:
		return float64(v.i)
	default:
		return 0
	}
}

// AsString returns the string payload, or "" for non-string kinds.
func (v Value) AsString() string {
	if v.kind == KindString {
		return v.s
	}
	return ""
}

// AsBool returns the boolean payload; non-bool kinds report false except
// non-zero ints, which report true.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	default:
		return false
	}
}

// Equal reports deep equality of two values, including kind.
func (v Value) Equal(o Value) bool { return v == o }

// Less reports whether v orders before o. Values of different kinds order
// by kind; nulls order first. Cross-numeric comparison (int vs float) uses
// float semantics so that sort attributes may mix the two.
func (v Value) Less(o Value) bool {
	if isNumeric(v.kind) && isNumeric(o.kind) {
		return v.AsFloat() < o.AsFloat()
	}
	if v.kind != o.kind {
		return v.kind < o.kind
	}
	switch v.kind {
	case KindString:
		return v.s < o.s
	case KindBool:
		return v.i < o.i
	default:
		return false
	}
}

func isNumeric(k Kind) bool { return k == KindInt || k == KindFloat }

// Compare returns -1, 0, or +1 according to the Less ordering.
func (v Value) Compare(o Value) int {
	switch {
	case v.Less(o):
		return -1
	case o.Less(v):
		return 1
	default:
		return 0
	}
}

// GoString formats the value for debugging.
func (v Value) GoString() string { return v.Format() }

// Format renders the value as a short literal, e.g. 42, 2.5, "x", true.
func (v Value) Format() string {
	switch v.kind {
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindBool:
		return strconv.FormatBool(v.i != 0)
	default:
		return "null"
	}
}

// valueHeader is the fixed per-Value footprint (kind + padding + union
// slots, not counting string data); Tuple.MemSize charges it for unused
// capacity slots too.
const valueHeader = 16

// MemSize returns the approximate in-memory footprint of the value in
// bytes, used by the storage manager's buffer accounting.
func (v Value) MemSize() int {
	return valueHeader + len(v.s)
}

// ParseValue converts a literal of the given kind from its string form.
// It is used by the streamgen CLI and the CSV codecs.
func ParseValue(k Kind, s string) (Value, error) {
	switch k {
	case KindInt:
		i, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse int %q: %w", s, err)
		}
		return Int(i), nil
	case KindFloat:
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Value{}, fmt.Errorf("parse float %q: %w", s, err)
		}
		return Float(f), nil
	case KindString:
		return String(s), nil
	case KindBool:
		b, err := strconv.ParseBool(s)
		if err != nil {
			return Value{}, fmt.Errorf("parse bool %q: %w", s, err)
		}
		return Bool(b), nil
	default:
		return Value{}, fmt.Errorf("cannot parse value of kind %v", k)
	}
}
