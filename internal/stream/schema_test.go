package stream

import "testing"

func testSchema(t *testing.T) *Schema {
	t.Helper()
	s, err := NewSchema("readings",
		Field{Name: "A", Kind: KindInt},
		Field{Name: "B", Kind: KindInt},
		Field{Name: "v", Kind: KindFloat},
	)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSchemaBasics(t *testing.T) {
	s := testSchema(t)
	if s.Name() != "readings" || s.Arity() != 3 {
		t.Fatalf("unexpected schema identity: %v", s)
	}
	if s.Index("B") != 1 || s.Index("missing") != -1 {
		t.Error("Index lookup wrong")
	}
	if s.MustIndex("v") != 2 {
		t.Error("MustIndex wrong")
	}
	idx, err := s.Indices("v", "A")
	if err != nil || idx[0] != 2 || idx[1] != 0 {
		t.Errorf("Indices = %v, %v", idx, err)
	}
	if _, err := s.Indices("A", "nope"); err == nil {
		t.Error("Indices should fail on unknown field")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := NewSchema("empty"); err == nil {
		t.Error("empty schema should be rejected")
	}
	if _, err := NewSchema("dup", Field{"x", KindInt}, Field{"x", KindInt}); err == nil {
		t.Error("duplicate field should be rejected")
	}
	if _, err := NewSchema("anon", Field{"", KindInt}); err == nil {
		t.Error("empty field name should be rejected")
	}
	if _, err := NewSchema("bad", Field{"x", KindInvalid}); err == nil {
		t.Error("invalid kind should be rejected")
	}
}

func TestSchemaCompatible(t *testing.T) {
	s := testSchema(t)
	same := MustSchema("other", Field{"x", KindInt}, Field{"y", KindInt}, Field{"z", KindFloat})
	if !s.Compatible(same) {
		t.Error("structurally identical schemas should be compatible despite names")
	}
	narrow := MustSchema("narrow", Field{"x", KindInt})
	if s.Compatible(narrow) {
		t.Error("different arity should be incompatible")
	}
	mistyped := MustSchema("mistyped", Field{"x", KindInt}, Field{"y", KindString}, Field{"z", KindFloat})
	if s.Compatible(mistyped) {
		t.Error("different kinds should be incompatible")
	}
}

func TestSchemaRename(t *testing.T) {
	s := testSchema(t)
	r := s.Rename("domainB.readings")
	if r.Name() != "domainB.readings" || !s.Compatible(r) || r.Index("B") != 1 {
		t.Error("Rename should preserve structure under the new name")
	}
}

func TestSchemaString(t *testing.T) {
	s := MustSchema("s", Field{"a", KindInt}, Field{"b", KindString})
	if got := s.String(); got != "s(a int, b string)" {
		t.Errorf("String = %q", got)
	}
}

func TestMustIndexPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustIndex should panic on missing field")
		}
	}()
	testSchema(t).MustIndex("ghost")
}
