package stream

import (
	"fmt"
	"strings"
)

// Field is one named, typed column of a schema.
type Field struct {
	Name string
	Kind Kind
}

// Schema describes the shape of the tuples on a stream. Schemas are
// registered in a participant's catalog before a data source may produce
// events with that shape (paper §4.2). A Schema is immutable after
// construction.
type Schema struct {
	name   string
	fields []Field
	index  map[string]int
}

// NewSchema builds a schema from an ordered field list. Field names must be
// unique and non-empty.
func NewSchema(name string, fields ...Field) (*Schema, error) {
	if len(fields) == 0 {
		return nil, fmt.Errorf("schema %q: must have at least one field", name)
	}
	idx := make(map[string]int, len(fields))
	for i, f := range fields {
		if f.Name == "" {
			return nil, fmt.Errorf("schema %q: field %d has empty name", name, i)
		}
		if f.Kind == KindInvalid {
			return nil, fmt.Errorf("schema %q: field %q has invalid kind", name, f.Name)
		}
		if _, dup := idx[f.Name]; dup {
			return nil, fmt.Errorf("schema %q: duplicate field %q", name, f.Name)
		}
		idx[f.Name] = i
	}
	return &Schema{name: name, fields: append([]Field(nil), fields...), index: idx}, nil
}

// MustSchema is NewSchema that panics on error; intended for tests,
// examples, and compiled-in schemas.
func MustSchema(name string, fields ...Field) *Schema {
	s, err := NewSchema(name, fields...)
	if err != nil {
		panic(err)
	}
	return s
}

// Name returns the schema's registered name.
func (s *Schema) Name() string { return s.name }

// Arity returns the number of fields.
func (s *Schema) Arity() int { return len(s.fields) }

// Fields returns a copy of the ordered field list.
func (s *Schema) Fields() []Field { return append([]Field(nil), s.fields...) }

// Field returns the i'th field.
func (s *Schema) Field(i int) Field { return s.fields[i] }

// Index returns the position of the named field, or -1 if absent.
func (s *Schema) Index(name string) int {
	if i, ok := s.index[name]; ok {
		return i
	}
	return -1
}

// MustIndex is Index that panics when the field is absent; for static plans.
func (s *Schema) MustIndex(name string) int {
	i := s.Index(name)
	if i < 0 {
		panic(fmt.Sprintf("schema %q: no field %q", s.name, name))
	}
	return i
}

// Indices resolves several field names at once.
func (s *Schema) Indices(names ...string) ([]int, error) {
	out := make([]int, len(names))
	for i, n := range names {
		j := s.Index(n)
		if j < 0 {
			return nil, fmt.Errorf("schema %q: no field %q", s.name, n)
		}
		out[i] = j
	}
	return out, nil
}

// Compatible reports whether tuples of schema o can flow on an arc typed
// with schema s: same arity and same field kinds position by position.
// Field names may differ (renaming across participant boundaries, §4.1).
func (s *Schema) Compatible(o *Schema) bool {
	if s == nil || o == nil {
		return s == o
	}
	if len(s.fields) != len(o.fields) {
		return false
	}
	for i := range s.fields {
		if s.fields[i].Kind != o.fields[i].Kind {
			return false
		}
	}
	return true
}

// Rename returns a copy of the schema under a new name, used when a stream
// crosses a participant boundary and is named separately in each domain.
func (s *Schema) Rename(name string) *Schema {
	return &Schema{name: name, fields: s.fields, index: s.index}
}

// String renders the schema as name(field kind, ...).
func (s *Schema) String() string {
	var b strings.Builder
	b.WriteString(s.name)
	b.WriteByte('(')
	for i, f := range s.fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		b.WriteString(f.Kind.String())
	}
	b.WriteByte(')')
	return b.String()
}
