package stream

import (
	"strings"
	"testing"
)

func TestTupleCloneIndependence(t *testing.T) {
	a := NewTuple(Int(1), String("x"))
	b := a.Clone()
	b.Vals[0] = Int(99)
	if a.Vals[0].AsInt() != 1 {
		t.Error("Clone must not alias the value slice")
	}
}

func TestTupleFieldOutOfRange(t *testing.T) {
	tp := NewTuple(Int(1))
	if !tp.Field(5).IsNull() || !tp.Field(-1).IsNull() {
		t.Error("out-of-range Field should be null")
	}
	if tp.Field(0).AsInt() != 1 {
		t.Error("in-range Field wrong")
	}
}

func TestTupleEqualValues(t *testing.T) {
	a := Tuple{Seq: 1, TS: 100, Vals: []Value{Int(1), Float(2.5)}}
	b := Tuple{Seq: 9, TS: 999, Vals: []Value{Int(1), Float(2.5)}}
	if !a.EqualValues(b) {
		t.Error("EqualValues must ignore Seq/TS")
	}
	c := NewTuple(Int(1))
	if a.EqualValues(c) {
		t.Error("different arity must not be equal")
	}
	d := NewTuple(Int(1), Float(2.6))
	if a.EqualValues(d) {
		t.Error("different values must not be equal")
	}
}

func TestTupleKeyOf(t *testing.T) {
	tp := NewTuple(Int(1), String("x"), Int(2))
	if got := tp.KeyOf([]int{0}); got != "1" {
		t.Errorf("single key = %q", got)
	}
	k12 := tp.KeyOf([]int{1, 2})
	k21 := tp.KeyOf([]int{2, 1})
	if k12 == k21 {
		t.Error("key must be order sensitive")
	}
	if !strings.Contains(k12, "\x1f") {
		t.Error("composite key must be separator-joined")
	}
}

func TestTuplesEqualValuesSlice(t *testing.T) {
	a := []Tuple{NewTuple(Int(1)), NewTuple(Int(2))}
	b := []Tuple{NewTuple(Int(1)), NewTuple(Int(2))}
	if !TuplesEqualValues(a, b) {
		t.Error("equal slices misreported")
	}
	if TuplesEqualValues(a, b[:1]) {
		t.Error("length mismatch misreported")
	}
	b[1] = NewTuple(Int(3))
	if TuplesEqualValues(a, b) {
		t.Error("value mismatch misreported")
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{Seq: 7, Vals: []Value{Int(1), String("a")}}
	if got := tp.String(); got != `(1, "a")@7` {
		t.Errorf("String = %q", got)
	}
}

func TestFormatTuples(t *testing.T) {
	out := FormatTuples([]Tuple{NewTuple(Int(1)), NewTuple(Int(2))})
	if !strings.Contains(out, "(1)@0") || !strings.Contains(out, "(2)@0") {
		t.Errorf("FormatTuples = %q", out)
	}
}
