package stream

import (
	"strings"
	"testing"
)

func TestTupleCloneIndependence(t *testing.T) {
	a := NewTuple(Int(1), String("x"))
	b := a.Clone()
	b.Vals[0] = Int(99)
	if a.Vals[0].AsInt() != 1 {
		t.Error("Clone must not alias the value slice")
	}
}

func TestTupleFieldOutOfRange(t *testing.T) {
	tp := NewTuple(Int(1))
	if !tp.Field(5).IsNull() || !tp.Field(-1).IsNull() {
		t.Error("out-of-range Field should be null")
	}
	if tp.Field(0).AsInt() != 1 {
		t.Error("in-range Field wrong")
	}
}

func TestTupleEqualValues(t *testing.T) {
	a := Tuple{Seq: 1, TS: 100, Vals: []Value{Int(1), Float(2.5)}}
	b := Tuple{Seq: 9, TS: 999, Vals: []Value{Int(1), Float(2.5)}}
	if !a.EqualValues(b) {
		t.Error("EqualValues must ignore Seq/TS")
	}
	c := NewTuple(Int(1))
	if a.EqualValues(c) {
		t.Error("different arity must not be equal")
	}
	d := NewTuple(Int(1), Float(2.6))
	if a.EqualValues(d) {
		t.Error("different values must not be equal")
	}
}

func TestTupleKeyOf(t *testing.T) {
	tp := NewTuple(Int(1), String("x"), Int(2))
	if got := tp.KeyOf([]int{0}); got != "1" {
		t.Errorf("single key = %q", got)
	}
	k12 := tp.KeyOf([]int{1, 2})
	k21 := tp.KeyOf([]int{2, 1})
	if k12 == k21 {
		t.Error("key must be order sensitive")
	}
	if !strings.Contains(k12, "\x1f") {
		t.Error("composite key must be separator-joined")
	}
}

func TestTuplesEqualValuesSlice(t *testing.T) {
	a := []Tuple{NewTuple(Int(1)), NewTuple(Int(2))}
	b := []Tuple{NewTuple(Int(1)), NewTuple(Int(2))}
	if !TuplesEqualValues(a, b) {
		t.Error("equal slices misreported")
	}
	if TuplesEqualValues(a, b[:1]) {
		t.Error("length mismatch misreported")
	}
	b[1] = NewTuple(Int(3))
	if TuplesEqualValues(a, b) {
		t.Error("value mismatch misreported")
	}
}

func TestTupleString(t *testing.T) {
	tp := Tuple{Seq: 7, Vals: []Value{Int(1), String("a")}}
	if got := tp.String(); got != `(1, "a")@7` {
		t.Errorf("String = %q", got)
	}
}

func TestFormatTuples(t *testing.T) {
	out := FormatTuples([]Tuple{NewTuple(Int(1)), NewTuple(Int(2))})
	if !strings.Contains(out, "(1)@0") || !strings.Contains(out, "(2)@0") {
		t.Errorf("FormatTuples = %q", out)
	}
}

// TestMemSizeChargesCapacity pins the buffer-accounting fix: MemSize must
// charge the full capacity of the Vals backing array, not just its
// length. Pooled slices are rounded up to a size class, and the spare
// slots are real memory a queue or connection point is holding — the old
// length-based accounting under-reported buffered bytes (and the storage
// manager's spill high-water mark) whenever the pool handed back an
// oversized class.
func TestMemSizeChargesCapacity(t *testing.T) {
	const header = 24 // Seq + TS + slice header
	cases := []struct {
		name string
		t    Tuple
		want int
	}{
		{"nil-vals", Tuple{}, header},
		{"exact-fit", Tuple{Vals: []Value{Int(1), Int(2)}}, header + 2*16},
		{"spare-capacity", Tuple{Vals: append(make([]Value, 0, 8), Int(1), Int(2))},
			header + 2*16 + 6*16},
		{"string-payload", Tuple{Vals: []Value{String("hello")}}, header + 16 + 5},
		{"string-with-spare", Tuple{Vals: append(make([]Value, 0, 4), String("hi"))},
			header + 16 + 2 + 3*16},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := c.t.MemSize(); got != c.want {
				t.Fatalf("MemSize = %d, want %d (len %d cap %d)",
					got, c.want, len(c.t.Vals), cap(c.t.Vals))
			}
		})
	}
	// Two tuples with identical values but different spare capacity must
	// not account identically — that asymmetry IS the fix.
	tight := Tuple{Vals: []Value{Int(7)}}
	roomy := Tuple{Vals: append(make([]Value, 0, 16), Int(7))}
	if tight.MemSize() >= roomy.MemSize() {
		t.Fatalf("capacity ignored: tight %d, roomy %d", tight.MemSize(), roomy.MemSize())
	}
}

// TestPooledValsRoundTrip pins the ownership bit through GetVals/Recycle:
// a pooled tuple recycles exactly once, a disowned one never does.
func TestPooledValsRoundTrip(t *testing.T) {
	tp := Tuple{Vals: GetVals(2)}
	tp.Vals[0], tp.Vals[1] = Int(1), Int(2)
	tp.MarkPooled()
	if !tp.Pooled() {
		t.Fatal("MarkPooled did not stick")
	}
	if !tp.Recycle() {
		t.Fatal("pooled tuple did not recycle")
	}
	if tp.Pooled() || tp.Vals != nil || tp.Recycle() {
		t.Fatalf("recycle not idempotent: pooled=%v vals=%v", tp.Pooled(), tp.Vals)
	}
	dt := Tuple{Vals: GetVals(2)}
	dt.MarkPooled()
	dt.Disown()
	if dt.Recycle() {
		t.Fatal("disowned tuple recycled")
	}
	// Clone must always produce an unpooled deep copy.
	ct := Tuple{Vals: GetVals(1)}
	ct.Vals[0] = Int(9)
	ct.MarkPooled()
	cl := ct.Clone()
	if cl.Pooled() {
		t.Fatal("clone inherited the pooled bit")
	}
	cl.Vals[0] = Int(8)
	if ct.Vals[0].AsInt() != 9 {
		t.Fatal("clone aliases the original Vals")
	}
}
