package stream

import (
	"testing"
	"testing/quick"
)

func TestValueKinds(t *testing.T) {
	cases := []struct {
		v    Value
		kind Kind
	}{
		{Int(7), KindInt},
		{Float(2.5), KindFloat},
		{String("x"), KindString},
		{Bool(true), KindBool},
		{Null(), KindInvalid},
	}
	for _, c := range cases {
		if c.v.Kind() != c.kind {
			t.Errorf("%v: kind = %v, want %v", c.v.Format(), c.v.Kind(), c.kind)
		}
	}
}

func TestValueAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int.AsInt = %d", got)
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float.AsFloat = %g", got)
	}
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int.AsFloat = %g", got)
	}
	if got := String("abc").AsString(); got != "abc" {
		t.Errorf("String.AsString = %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round-trip failed")
	}
	if !Int(5).AsBool() || Int(0).AsBool() {
		t.Error("Int truthiness failed")
	}
	if !Null().IsNull() || Int(0).IsNull() {
		t.Error("IsNull misclassified")
	}
	// Accessors on mismatched kinds are defined zeros.
	if String("x").AsInt() != 0 || Int(1).AsString() != "" || String("x").AsFloat() != 0 {
		t.Error("cross-kind accessors should return zero values")
	}
}

func TestValueOrdering(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{Int(1), Int(2), -1},
		{Int(2), Int(2), 0},
		{Int(3), Int(2), 1},
		{Float(1.5), Int(2), -1},
		{Int(2), Float(1.5), 1},
		{String("a"), String("b"), -1},
		{Bool(false), Bool(true), -1},
		{Null(), Int(0), -1}, // nulls order first
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%s, %s) = %d, want %d", c.a.Format(), c.b.Format(), got, c.want)
		}
	}
}

func TestValueCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		va, vb := Int(a), Int(b)
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueFormat(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Int(-3), "-3"},
		{Float(2.5), "2.5"},
		{String("hi"), `"hi"`},
		{Bool(true), "true"},
		{Null(), "null"},
	}
	for _, c := range cases {
		if got := c.v.Format(); got != c.want {
			t.Errorf("Format = %q, want %q", got, c.want)
		}
	}
}

func TestParseValueRoundTrip(t *testing.T) {
	cases := []struct {
		k Kind
		s string
		v Value
	}{
		{KindInt, "17", Int(17)},
		{KindFloat, "2.5", Float(2.5)},
		{KindString, "hello", String("hello")},
		{KindBool, "true", Bool(true)},
	}
	for _, c := range cases {
		got, err := ParseValue(c.k, c.s)
		if err != nil {
			t.Fatalf("ParseValue(%v, %q): %v", c.k, c.s, err)
		}
		if !got.Equal(c.v) {
			t.Errorf("ParseValue(%v, %q) = %v, want %v", c.k, c.s, got, c.v)
		}
	}
	if _, err := ParseValue(KindInt, "zzz"); err == nil {
		t.Error("ParseValue should fail on malformed int")
	}
	if _, err := ParseValue(KindInvalid, "x"); err == nil {
		t.Error("ParseValue should fail on invalid kind")
	}
}
