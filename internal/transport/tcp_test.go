package transport

import (
	"sync"
	"testing"
	"time"

	"repro/internal/stream"
)

type sink struct {
	mu   sync.Mutex
	msgs []Msg
	from []string
}

func (s *sink) handler(from string, m Msg) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.msgs = append(s.msgs, m)
	s.from = append(s.from, from)
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func (s *sink) waitFor(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for s.count() < n {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d messages (have %d)", n, s.count())
		}
		time.Sleep(time.Millisecond)
	}
}

func pair(t *testing.T) (*TCP, *TCP, *sink, *sink) {
	t.Helper()
	sa, sb := &sink{}, &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	peer, err := a.Dial(b.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if peer != "nodeB" {
		t.Fatalf("handshake returned %q", peer)
	}
	return a, b, sa, sb
}

func TestTCPSendBothDirections(t *testing.T) {
	a, b, sa, sb := pair(t)
	m := Msg{Stream: "s1", Kind: KindData, BaseSeq: 9, Tuples: []stream.Tuple{
		{Seq: 9, Vals: []stream.Value{stream.Int(1)}},
	}}
	if err := a.Send("nodeB", m); err != nil {
		t.Fatal(err)
	}
	sb.waitFor(t, 1)
	if sb.msgs[0].BaseSeq != 9 || sb.from[0] != "nodeA" {
		t.Errorf("delivery = %+v from %q", sb.msgs[0], sb.from[0])
	}
	// Reverse direction over the same accepted connection.
	if err := b.Send("nodeA", Msg{Stream: "back", Kind: KindControl}); err != nil {
		t.Fatal(err)
	}
	sa.waitFor(t, 1)
	if sa.msgs[0].Stream != "back" {
		t.Errorf("reverse delivery = %+v", sa.msgs[0])
	}
}

func TestTCPOrderWithinStream(t *testing.T) {
	a, _, _, sb := pair(t)
	const n = 200
	for i := 0; i < n; i++ {
		if err := a.Send("nodeB", Msg{Stream: "s", BaseSeq: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	sb.waitFor(t, n)
	sb.mu.Lock()
	defer sb.mu.Unlock()
	for i, m := range sb.msgs {
		if m.BaseSeq != uint64(i) {
			t.Fatalf("reordered at %d: seq %d", i, m.BaseSeq)
		}
	}
}

func TestTCPSendToUnknownPeer(t *testing.T) {
	a, _, _, _ := pair(t)
	if err := a.Send("stranger", Msg{}); err == nil {
		t.Error("send to unknown peer should fail")
	}
}

func TestTCPSetWeight(t *testing.T) {
	a, _, _, _ := pair(t)
	if err := a.SetWeight("nodeB", "s", 4); err != nil {
		t.Error(err)
	}
	if err := a.SetWeight("ghost", "s", 4); err == nil {
		t.Error("SetWeight to unknown peer should fail")
	}
	if err := a.SetWeight("nodeB", "s", 0); err == nil {
		t.Error("zero weight should fail")
	}
}

func TestTCPPeersAndClose(t *testing.T) {
	a, b, _, sb := pair(t)
	if got := a.Peers(); len(got) != 1 || got[0] != "nodeB" {
		t.Errorf("peers = %v", got)
	}
	if err := a.Send("nodeB", Msg{Stream: "x"}); err != nil {
		t.Fatal(err)
	}
	sb.waitFor(t, 1)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("nodeB", Msg{}); err == nil {
		t.Error("send after close should fail")
	}
	// Peer b should survive a's departure and close cleanly.
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTCPManyStreamsOneConnection(t *testing.T) {
	a, _, _, sb := pair(t)
	const streams = 32
	const per = 10
	for s := 0; s < streams; s++ {
		name := string(rune('a' + s%26))
		for i := 0; i < per; i++ {
			if err := a.Send("nodeB", Msg{Stream: name, BaseSeq: uint64(i)}); err != nil {
				t.Fatal(err)
			}
		}
	}
	sb.waitFor(t, streams*per)
	if got := a.Peers(); len(got) != 1 {
		t.Errorf("all streams must share one connection; peers = %v", got)
	}
}
