package transport

import (
	"fmt"
	"net"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/events"
	"repro/internal/stream"
)

// leakGuard fails the test if transport goroutines outlive their
// transports. Registered before the transports' own cleanups so it runs
// after them (t.Cleanup is LIFO) — this is the CI guard that keeps the
// Close-hang class of bug from regressing.
func leakGuard(t *testing.T) {
	t.Helper()
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(2 * time.Second)
		for {
			if runtime.NumGoroutine() <= before {
				return
			}
			if time.Now().After(deadline) {
				buf := make([]byte, 1<<20)
				n := runtime.Stack(buf, true)
				t.Errorf("goroutine leak: %d before, %d after\n%s",
					before, runtime.NumGoroutine(), buf[:n])
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	})
}

func dataMsg(s string, vals ...int64) Msg {
	tups := make([]stream.Tuple, 0, len(vals))
	for _, v := range vals {
		tups = append(tups, stream.NewTuple(stream.Int(v)))
	}
	return Msg{Stream: s, Kind: KindData, Tuples: tups}
}

// TestTCPCloseNeverHangsOnHalfOpenConn is the acceptance regression for
// the untracked half-open connection bug: a client that connects and
// never sends hello must not keep Close waiting in wg.Wait.
func TestTCPCloseNeverHangsOnHalfOpenConn(t *testing.T) {
	leakGuard(t)
	s := &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", s.handler,
		LinkConfig{HandshakeTimeout: 30 * time.Second}) // deadline alone must not be the savior
	if err != nil {
		t.Fatal(err)
	}
	nc, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	time.Sleep(50 * time.Millisecond) // let acceptLoop park in readHello

	done := make(chan struct{})
	go func() {
		a.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(1 * time.Second):
		t.Fatal("Close hung on a half-open connection")
	}
}

// TestTCPInboundHandshakeDeadline: even without Close, a peer that never
// says hello is torn down by the hello deadline rather than parked
// forever.
func TestTCPInboundHandshakeDeadline(t *testing.T) {
	leakGuard(t)
	s := &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", s.handler,
		LinkConfig{HandshakeTimeout: 80 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })

	nc, err := net.Dial("tcp", a.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	// The server must hang up on us once the deadline passes.
	nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server kept a silent connection past the handshake deadline")
	} else if strings.Contains(err.Error(), "timeout") {
		t.Fatalf("server never closed the silent connection: %v", err)
	}
}

// TestTCPSimultaneousDialTieBreak: when both nodes dial each other at
// once, both ends must keep the same connection (the one dialed by the
// lexically smaller id) — the old behavior could cross-close, leaving
// each side holding a socket its peer had abandoned.
func TestTCPSimultaneousDialTieBreak(t *testing.T) {
	leakGuard(t)
	for round := 0; round < 5; round++ {
		sa, sb := &sink{}, &sink{}
		a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler)
		if err != nil {
			t.Fatal(err)
		}
		b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler)
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); a.Dial(b.Addr()) }()
		go func() { defer wg.Done(); b.Dial(a.Addr()) }()
		wg.Wait()
		// Let any loser connection finish dying before sending.
		time.Sleep(20 * time.Millisecond)

		// Both directions must deliver on whatever survived.
		if err := a.Send("nodeB", dataMsg("s", int64(round))); err != nil {
			t.Fatalf("round %d: a->b send: %v", round, err)
		}
		if err := b.Send("nodeA", dataMsg("s", int64(round))); err != nil {
			t.Fatalf("round %d: b->a send: %v", round, err)
		}
		sb.waitFor(t, 1)
		sa.waitFor(t, 1)

		a.Close()
		b.Close()
	}
}

// deadEndAccepter handshakes as `id` and then never reads again, so the
// dialer's queue backs up behind a full socket.
func deadEndAccepter(t *testing.T, id string) (addr string, stop func()) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			if _, err := readHello(nc); err != nil {
				nc.Close()
				continue
			}
			if err := writeHello(nc, id); err != nil {
				nc.Close()
				continue
			}
			wg.Add(1)
			go func(nc net.Conn) {
				defer wg.Done()
				<-done // hold the conn open, never read
				nc.Close()
			}(nc)
		}
	}()
	return ln.Addr().String(), func() {
		close(done)
		ln.Close()
		wg.Wait()
	}
}

// TestTCPDeadConnQueueNotSilentlyLost is the regression for the WFQ
// discard bug: messages still queued when a connection dies must be
// accounted — requeued to a supervised link, or counted in the per-peer
// drop counter — never silently discarded.
func TestTCPDeadConnQueueNotSilentlyLost(t *testing.T) {
	leakGuard(t)
	s := &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", s.handler,
		LinkConfig{WriteTimeout: 150 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	addr, stop := deadEndAccepter(t, "wedge")
	t.Cleanup(stop)

	if _, err := a.Dial(addr); err != nil {
		t.Fatal(err)
	}
	// Large payloads overwhelm the socket buffer fast; the write deadline
	// then kills the conn with messages still queued.
	big := stream.String(strings.Repeat("x", 256<<10))
	sent := 0
	for i := 0; i < 64; i++ {
		if err := a.Send("wedge", Msg{Stream: "s", Kind: KindData,
			Tuples: []stream.Tuple{stream.NewTuple(big)}}); err != nil {
			break
		}
		sent++
	}
	deadline := time.Now().Add(5 * time.Second)
	for a.Dropped("wedge") == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("sent %d messages into a wedged conn; none surfaced in the drop counter", sent)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestTCPLinkRequeuesDeadConnBacklog: with a supervised link, the dead
// connection's backlog lands back in the reconnect buffer (requeued, not
// dropped) and flows once the peer comes back.
func TestTCPLinkRequeuesDeadConnBacklog(t *testing.T) {
	leakGuard(t)
	sa, sb := &sink{}, &sink{}
	cfg := LinkConfig{
		WriteTimeout: 150 * time.Millisecond,
		BackoffMin:   10 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	if err := a.AddPeer("nodeB", b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)

	// Queue a burst and kill the conn before the write loop drains it:
	// enqueue under a stopped clock isn't possible, so just enqueue many
	// and kill immediately — some messages will still be queued.
	for i := 0; i < 500; i++ {
		if err := a.Send("nodeB", dataMsg("s", int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i == 50 {
			a.KillConn("nodeB")
		}
	}
	// Everything eventually arrives (transport-level redelivery; exact-once
	// is the HA layer's job — here messages survive, possibly duplicated
	// never, since requeue only covers undelivered ones).
	sb.waitFor(t, 450) // at minimum the post-kill buffered ones arrive
	info := linkInfo(t, a, "nodeB")
	if info.Requeued == 0 && info.Buffered == 0 && sb.count() < 500 {
		t.Errorf("conn killed mid-burst: no requeue recorded and only %d/500 delivered", sb.count())
	}
}

func waitState(t *testing.T, tr *TCP, peer string, want LinkState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, ok := tr.LinkState(peer); ok && st == want {
			return
		}
		if time.Now().After(deadline) {
			st, _ := tr.LinkState(peer)
			t.Fatalf("link to %s stuck in %v, want %v", peer, st, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func linkInfo(t *testing.T, tr *TCP, peer string) LinkInfo {
	t.Helper()
	for _, in := range tr.LinkInfos() {
		if in.Peer == peer {
			return in
		}
	}
	t.Fatalf("no link info for %s", peer)
	return LinkInfo{}
}

// TestTCPChurnUnderFire is the satellite churn test: kill the connection
// repeatedly while tuples flow; the supervised link must reconnect every
// time, delivery must resume, and Close must return promptly.
func TestTCPChurnUnderFire(t *testing.T) {
	leakGuard(t)
	sa, sb := &sink{}, &sink{}
	cfg := LinkConfig{
		HandshakeTimeout: time.Second,
		WriteTimeout:     time.Second,
		PingPeriod:       20 * time.Millisecond,
		BackoffMin:       5 * time.Millisecond, BackoffMax: 40 * time.Millisecond,
		BufferLimit: 4096,
	}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.AddPeer("nodeB", b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)

	const total = 2000
	for i := 0; i < total; i++ {
		if err := a.Send("nodeB", dataMsg("churn", int64(i))); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
		if i%250 == 100 {
			a.KillConn("nodeB")
		}
		if i%97 == 0 {
			time.Sleep(time.Millisecond)
		}
	}
	// The final marker must get through on a re-established link.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if err := a.Send("nodeB", dataMsg("marker", -1)); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("marker send never succeeded")
		}
		time.Sleep(5 * time.Millisecond)
	}
	markerSeen := func() bool {
		sb.mu.Lock()
		defer sb.mu.Unlock()
		for _, m := range sb.msgs {
			if m.Stream == "marker" {
				return true
			}
		}
		return false
	}
	for !markerSeen() {
		if time.Now().After(deadline) {
			t.Fatalf("marker never delivered; got %d msgs", sb.count())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if info := linkInfo(t, a, "nodeB"); info.Reconnects == 0 {
		t.Errorf("churn ran with 8 kills but link recorded 0 reconnects: %+v", info)
	}

	closed := make(chan struct{})
	go func() { a.Close(); b.Close(); close(closed) }()
	select {
	case <-closed:
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not return within 2s after churn")
	}
}

// TestTCPReconnectAfterPeerRestart: the supervisor must survive the peer
// process dying entirely and coming back on the same address.
func TestTCPReconnectAfterPeerRestart(t *testing.T) {
	leakGuard(t)
	sa, sb := &sink{}, &sink{}
	cfg := LinkConfig{
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	if err := a.AddPeer("nodeB", addr); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)
	b.Close()
	waitState(t, a, "nodeB", LinkDegraded)

	// Messages sent while down buffer on the link.
	for i := 0; i < 10; i++ {
		if err := a.Send("nodeB", dataMsg("s", int64(i))); err != nil {
			t.Fatalf("degraded send %d: %v", i, err)
		}
	}

	b2, err := ListenTCP("nodeB", addr, sb.handler)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { b2.Close() })
	waitState(t, a, "nodeB", LinkEstablished)
	sb.waitFor(t, 10) // the buffered burst flushes on attach
}

// TestLinkBufferOverflowSurfacesDrops: the reconnect buffer is bounded;
// beyond the limit Send fails and the drop counter moves.
func TestLinkBufferOverflowSurfacesDrops(t *testing.T) {
	leakGuard(t)
	s := &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", s.handler,
		LinkConfig{BufferLimit: 4, BackoffMin: 10 * time.Millisecond,
			BackoffMax: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	// Point the link at an address nothing listens on.
	dead := deadAddr(t)
	if err := a.AddPeer("ghost", dead); err != nil {
		t.Fatal(err)
	}
	var firstErr error
	for i := 0; i < 10; i++ {
		if err := a.Send("ghost", dataMsg("s", int64(i))); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if firstErr == nil {
		t.Fatal("11th..nth sends into a 4-slot buffer all succeeded")
	}
	if got := a.Dropped("ghost"); got != 6 {
		t.Errorf("Dropped(ghost) = %d, want 6", got)
	}
	if info := linkInfo(t, a, "ghost"); info.Buffered != 4 {
		t.Errorf("Buffered = %d, want 4", info.Buffered)
	}
}

// deadAddr reserves an address with no listener behind it.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestLinkMaxDialAttemptsGoesDown: a bounded dial budget ends in
// LinkDown and sends fail fast from then on.
func TestLinkMaxDialAttemptsGoesDown(t *testing.T) {
	leakGuard(t)
	s := &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", s.handler,
		LinkConfig{BackoffMin: time.Millisecond, BackoffMax: 2 * time.Millisecond,
			MaxDialAttempts: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	if err := a.AddPeer("ghost", deadAddr(t)); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "ghost", LinkDown)
	if err := a.Send("ghost", dataMsg("s", 1)); err == nil {
		t.Fatal("send on a down link should fail")
	}
	if info := linkInfo(t, a, "ghost"); info.Dials < 3 {
		t.Errorf("Dials = %d, want >= 3", info.Dials)
	}
}

// TestTCPBlackholeDetectedByReadIdle: with pings on, a connection whose
// traffic silently stops (no FIN — emulated by a relay that stops
// forwarding) is declared dead by the read-idle timer and the link
// degrades instead of wedging.
func TestTCPBlackholeDetectedByReadIdle(t *testing.T) {
	leakGuard(t)
	sa, sb := &sink{}, &sink{}
	cfg := LinkConfig{
		HandshakeTimeout: 500 * time.Millisecond,
		PingPeriod:       15 * time.Millisecond, // read-idle defaults to 60ms
		BackoffMin:       10 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	relay := newBlackholeRelay(t, b.Addr())
	if err := a.AddPeer("nodeB", relay.addr()); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)
	relay.setBlackhole(true)
	waitState(t, a, "nodeB", LinkDegraded)
	relay.setBlackhole(false)
	waitState(t, a, "nodeB", LinkEstablished)
}

// blackholeRelay is a minimal in-test TCP relay whose forwarding can be
// paused — the transport-level twin of chaos.TCPProxy.
type blackholeRelay struct {
	ln     net.Listener
	mu     sync.Mutex
	black  bool
	donech chan struct{}
}

func newBlackholeRelay(t *testing.T, target string) *blackholeRelay {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	r := &blackholeRelay{ln: ln, donech: make(chan struct{})}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			cli, err := ln.Accept()
			if err != nil {
				return
			}
			srv, err := net.Dial("tcp", target)
			if err != nil {
				cli.Close()
				continue
			}
			wg.Add(2)
			go func() { defer wg.Done(); r.pipe(cli, srv) }()
			go func() { defer wg.Done(); r.pipe(srv, cli) }()
		}
	}()
	t.Cleanup(func() {
		close(r.donech)
		ln.Close()
		wg.Wait()
	})
	return r
}

func (r *blackholeRelay) addr() string { return r.ln.Addr().String() }

func (r *blackholeRelay) setBlackhole(on bool) {
	r.mu.Lock()
	r.black = on
	r.mu.Unlock()
}

func (r *blackholeRelay) blackholed() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.black
}

// pipe forwards src→dst in whole read chunks, pausing (not dropping)
// while blackholed so framing is never corrupted.
func (r *blackholeRelay) pipe(src, dst net.Conn) {
	defer src.Close()
	defer dst.Close()
	buf := make([]byte, 32<<10)
	for {
		select {
		case <-r.donech:
			return
		default:
		}
		if r.blackholed() {
			time.Sleep(5 * time.Millisecond)
			continue
		}
		src.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}

// TestLinkInfosCoverStates sanity-checks the telemetry snapshot shape.
func TestLinkInfosCoverStates(t *testing.T) {
	leakGuard(t)
	sa, sb := &sink{}, &sink{}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })
	if err := a.AddPeer("nodeB", b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)
	if err := a.Send("nodeB", dataMsg("s", 1)); err != nil {
		t.Fatal(err)
	}
	sb.waitFor(t, 1)

	infos := a.LinkInfos()
	if len(infos) != 1 {
		t.Fatalf("LinkInfos = %+v, want 1 entry", infos)
	}
	in := infos[0]
	if in.Peer != "nodeB" || !in.Supervised || in.State != "established" {
		t.Errorf("LinkInfo = %+v", in)
	}
	if in.MsgsSent == 0 {
		t.Errorf("MsgsSent not surfaced: %+v", in)
	}
	// The peer's view: an unsupervised inbound conn still shows up.
	binfos := b.LinkInfos()
	if len(binfos) != 1 || binfos[0].Supervised {
		t.Errorf("b.LinkInfos = %+v, want one unsupervised entry", binfos)
	}
	for _, st := range []LinkState{LinkConnecting, LinkEstablished, LinkDegraded, LinkDown} {
		if st.String() == fmt.Sprintf("state(%d)", int32(st)) {
			t.Errorf("state %d has no name", int32(st))
		}
	}
}

// TestTCPAsymmetricPingNoFlap pins the ping-pong fix: a node whose peer
// pings slowly (or never) must not read-idle-flap a healthy link — the
// peer's pong to our own ping is what keeps the read side warm.
func TestTCPAsymmetricPingNoFlap(t *testing.T) {
	leakGuard(t)
	sa, sb := &sink{}, &sink{}
	fast := LinkConfig{
		HandshakeTimeout: 500 * time.Millisecond,
		PingPeriod:       15 * time.Millisecond, // read-idle 60ms
		BackoffMin:       10 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	quiet := LinkConfig{HandshakeTimeout: 500 * time.Millisecond} // no pings at all
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler, fast)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler, quiet)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b.Close() })

	if err := a.AddPeer("nodeB", b.Addr()); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)

	// Ten read-idle windows of silence: without pongs from the quiet
	// peer this link flaps degraded⇄established the whole time.
	time.Sleep(600 * time.Millisecond)
	if st, _ := a.LinkState("nodeB"); st != LinkEstablished {
		t.Fatalf("idle link state = %v, want established", st)
	}
	if info := linkInfo(t, a, "nodeB"); info.Reconnects != 0 {
		t.Fatalf("idle link reconnected %d times", info.Reconnects)
	}
}

// TestLinkStateTransitionsJournal: every supervised link transition
// lands in an attached event journal, independent of callback hooks —
// connect, degrade on peer death, re-establish on reconnect.
func TestLinkStateTransitionsJournal(t *testing.T) {
	leakGuard(t)
	j := events.NewJournal("nodeA", 64)
	sa, sb := &sink{}, &sink{}
	cfg := LinkConfig{
		BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
	}
	a, err := ListenTCP("nodeA", "127.0.0.1:0", sa.handler, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a.Close() })
	a.SetJournal(j)
	b, err := ListenTCP("nodeB", "127.0.0.1:0", sb.handler)
	if err != nil {
		t.Fatal(err)
	}
	addr := b.Addr()
	if err := a.AddPeer("nodeB", addr); err != nil {
		t.Fatal(err)
	}
	waitState(t, a, "nodeB", LinkEstablished)
	b.Close()
	waitState(t, a, "nodeB", LinkDegraded)
	b2, err := ListenTCP("nodeB", addr, sb.handler)
	if err != nil {
		t.Fatalf("rebind %s: %v", addr, err)
	}
	t.Cleanup(func() { b2.Close() })
	waitState(t, a, "nodeB", LinkEstablished)

	want := []string{
		LinkEstablished.String(), // connecting -> established
		LinkDegraded.String(),    // peer died
		LinkEstablished.String(), // reconnect landed
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		evs := j.Tail(16)
		var got []string
		for _, ev := range evs {
			if ev.Kind != events.KindLinkState || ev.Subject != "nodeB" {
				t.Fatalf("unexpected event %+v", ev)
			}
			if ev.Node != "nodeA" || ev.Time == 0 {
				t.Fatalf("event missing node/time: %+v", ev)
			}
			got = append(got, ev.Detail)
		}
		if len(got) >= len(want) {
			for i, w := range want {
				if got[i] != w {
					t.Fatalf("transition %d = %q, want %q (all: %v)", i, got[i], w, got)
				}
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("journal has %v, want %v", got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
