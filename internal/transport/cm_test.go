package transport

import (
	"testing"

	"repro/internal/netsim"
	"repro/internal/stream"
)

func cmPair(t *testing.T, bw float64, delay int64, loss float64, cfg CMConfig) (*netsim.Sim, *CM, *int) {
	t.Helper()
	sim := netsim.New(1)
	sim.AddNode("a", nil)
	sim.AddNode("b", nil)
	if err := sim.Connect("a", "b", bw, delay, loss); err != nil {
		t.Fatal(err)
	}
	got := 0
	cm, err := NewCM(sim, "a", "b", cfg, func(Msg) { got++ })
	if err != nil {
		t.Fatal(err)
	}
	return sim, cm, &got
}

func cmMsg(s string) Msg {
	return Msg{Stream: s, Kind: KindData,
		Tuples: []stream.Tuple{stream.NewTuple(stream.Int(1), stream.Int(2))}}
}

func TestCMDeliversOnCleanLink(t *testing.T) {
	sim, cm, got := cmPair(t, 0, 100_000, 0, CMConfig{Timeout: 10e6})
	const n = 500
	for i := 0; i < n; i++ {
		if err := cm.Send(cmMsg("s")); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run(0)
	if *got != n || cm.Delivered != n || cm.Acked != n {
		t.Fatalf("delivered %d of %d (%s)", *got, n, cm)
	}
	if cm.Timeouts != 0 {
		t.Errorf("clean link should not time out: %s", cm)
	}
	// Slow start then additive increase must have opened the window.
	if cm.Cwnd() <= 1 {
		t.Errorf("window never opened: %s", cm)
	}
}

func TestCMWindowLimitsInFlight(t *testing.T) {
	// Huge delay: nothing is acked while we enqueue, so exactly
	// InitialWnd messages reach the wire.
	sim, cm, _ := cmPair(t, 0, 1e9, 0, CMConfig{Timeout: 10e9, InitialWnd: 4})
	for i := 0; i < 100; i++ {
		cm.Send(cmMsg("s"))
	}
	if cm.Sent != 4 {
		t.Fatalf("sent %d, want the initial window of 4", cm.Sent)
	}
	if cm.Queued() != 96 {
		t.Fatalf("queued %d", cm.Queued())
	}
	sim.Run(0)
}

func TestCMLossCollapsesWindow(t *testing.T) {
	sim, cm, got := cmPair(t, 0, 100_000, 0.3, CMConfig{Timeout: 5e6})
	const n = 2000
	for i := 0; i < n; i++ {
		cm.Send(cmMsg("s"))
	}
	sim.Run(0)
	if cm.Timeouts == 0 {
		t.Fatal("30% loss must trigger timeouts")
	}
	// No retransmission: delivered = sent - lost, never more.
	if int64(*got) != cm.Delivered || cm.Delivered >= cm.Sent {
		t.Fatalf("accounting wrong: %s", cm)
	}
	// Everything queued was eventually offered to the wire.
	if cm.Sent != n {
		t.Fatalf("sent %d of %d", cm.Sent, n)
	}
}

func TestCMPacesToWindowTimesRTT(t *testing.T) {
	// 1ms propagation each way: the channel is RTT-bound, so steady
	// throughput approaches MaxWnd messages per round trip. The drain
	// time must land near n*RTT/MaxWnd (plus the slow-start ramp) —
	// evidence the window, not the enqueue loop, paces the sender.
	const maxWnd = 64.0
	sim, cm, got := cmPair(t, 1e6, 1e6, 0, CMConfig{Timeout: 400e6, MaxWnd: maxWnd})
	const n = 3000
	for i := 0; i < n; i++ {
		cm.Send(cmMsg("s"))
	}
	sim.Run(0)
	if *got != n {
		t.Fatalf("delivered %d of %d (%s)", *got, n, cm)
	}
	elapsed := float64(sim.Now()) / 1e9
	rtt := 0.002
	ideal := float64(n) / maxWnd * rtt
	if elapsed < ideal*0.8 || elapsed > ideal*8 {
		t.Errorf("drained %d msgs in %.3fs; RTT-bound ideal %.3fs", n, elapsed, ideal)
	}
	if cm.Cwnd() < maxWnd/2 {
		t.Errorf("window never opened: %s", cm)
	}
}

func TestCMStreamsShareByWeight(t *testing.T) {
	sim, cm, _ := cmPair(t, 0, 1e6, 0, CMConfig{Timeout: 100e6, InitialWnd: 1, MaxWnd: 8})
	if err := cm.SetWeight("gold", 3); err != nil {
		t.Fatal(err)
	}
	cm.SetWeight("bronze", 1)
	deliveredBy := map[string]int{}
	cm.recv = func(m Msg) { deliveredBy[m.Stream]++ }
	for i := 0; i < 400; i++ {
		cm.Send(cmMsg("gold"))
		cm.Send(cmMsg("bronze"))
	}
	// Run only part of the drain and compare shares among the backlog.
	sim.Run(30e6)
	g, b := deliveredBy["gold"], deliveredBy["bronze"]
	if g+b < 20 {
		t.Fatalf("too few deliveries to judge (%d)", g+b)
	}
	ratio := float64(g) / float64(b+1)
	if ratio < 2 || ratio > 4.5 {
		t.Errorf("weighted share off: gold %d bronze %d (ratio %.1f, want ~3)", g, b, ratio)
	}
	sim.Run(0)
}

func TestCMConfigDefaults(t *testing.T) {
	sim := netsim.New(1)
	sim.AddNode("a", nil)
	sim.AddNode("b", nil)
	sim.Connect("a", "b", 0, 1, 0)
	cm, err := NewCM(sim, "a", "b", CMConfig{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if cm.cfg.Timeout <= 0 || cm.cfg.MaxWnd <= 0 {
		t.Error("defaults not applied")
	}
	// nil recv must not panic.
	cm.Send(cmMsg("s"))
	sim.Run(0)
	if _, err := NewCM(sim, "ghost", "b", CMConfig{}, nil); err == nil {
		t.Error("unknown src should fail")
	}
}
