package transport

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func sampleMsg() Msg {
	return Msg{
		Stream:  "quotes",
		Kind:    KindData,
		BaseSeq: 12345,
		Tuples: []stream.Tuple{
			{Seq: 1, TS: 100, Vals: []stream.Value{
				stream.Int(-42), stream.Float(2.5), stream.String("IBM"),
				stream.Bool(true), stream.Null(),
			}},
			{Seq: 2, TS: 200, Vals: []stream.Value{stream.Int(7)}},
		},
		Ctrl: []byte{0xde, 0xad},
	}
}

func TestCodecRoundTrip(t *testing.T) {
	m := sampleMsg()
	buf := Encode(nil, m)
	got, used, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Errorf("used %d of %d bytes", used, len(buf))
	}
	if got.Stream != m.Stream || got.Kind != m.Kind || got.BaseSeq != m.BaseSeq {
		t.Errorf("header mismatch: %+v", got)
	}
	if string(got.Ctrl) != string(m.Ctrl) {
		t.Errorf("ctrl mismatch")
	}
	if len(got.Tuples) != 2 {
		t.Fatalf("tuples = %d", len(got.Tuples))
	}
	for i := range m.Tuples {
		if !got.Tuples[i].EqualValues(m.Tuples[i]) ||
			got.Tuples[i].Seq != m.Tuples[i].Seq || got.Tuples[i].TS != m.Tuples[i].TS {
			t.Errorf("tuple %d mismatch: %v vs %v", i, got.Tuples[i], m.Tuples[i])
		}
	}
}

func TestCodecEmptyMsg(t *testing.T) {
	m := Msg{Stream: "s", Kind: KindHeartbeat}
	got, _, err := Decode(Encode(nil, m))
	if err != nil || got.Stream != "s" || len(got.Tuples) != 0 || got.Ctrl != nil {
		t.Errorf("empty msg round trip: %+v, %v", got, err)
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(seq uint64, ts int64, i int64, fl float64, s string, b bool) bool {
		if math.IsNaN(fl) {
			return true
		}
		m := Msg{Stream: s, Kind: KindData, BaseSeq: seq, Tuples: []stream.Tuple{
			{Seq: seq, TS: ts, Vals: []stream.Value{
				stream.Int(i), stream.Float(fl), stream.String(s), stream.Bool(b),
			}},
		}}
		got, used, err := Decode(Encode(nil, m))
		if err != nil || used != len(Encode(nil, m)) {
			return false
		}
		return got.Tuples[0].EqualValues(m.Tuples[0]) && got.Stream == s
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDecodeTruncated(t *testing.T) {
	full := Encode(nil, sampleMsg())
	for cut := 0; cut < len(full); cut++ {
		if _, _, err := Decode(full[:cut]); err == nil {
			t.Fatalf("Decode of %d/%d bytes should fail", cut, len(full))
		}
	}
}

func TestWFQProportionalSharing(t *testing.T) {
	// Streams with weights 1, 2, 4 all backlogged: drained bytes should
	// approach a 1:2:4 ratio over any long prefix.
	w := NewWFQ()
	if err := w.SetWeight("a", 1); err != nil {
		t.Fatal(err)
	}
	w.SetWeight("b", 2)
	w.SetWeight("c", 4)
	const per = 300
	for i := 0; i < per; i++ {
		for _, s := range []string{"a", "b", "c"} {
			w.Enqueue(s, 100, Msg{Stream: s})
		}
	}
	got := map[string]int{}
	// Drain the first third of the backlog and look at the byte shares.
	for i := 0; i < per; i++ {
		m, size, ok := w.Next()
		if !ok {
			t.Fatal("queue exhausted early")
		}
		got[m.Stream] += size
	}
	total := got["a"] + got["b"] + got["c"]
	wantShare := map[string]float64{"a": 1.0 / 7, "b": 2.0 / 7, "c": 4.0 / 7}
	for s, want := range wantShare {
		share := float64(got[s]) / float64(total)
		if math.Abs(share-want) > 0.05 {
			t.Errorf("stream %s share = %.3f, want %.3f", s, share, want)
		}
	}
}

func TestWFQIdleStreamDoesNotAccumulateCredit(t *testing.T) {
	w := NewWFQ()
	w.SetWeight("idle", 100)
	w.SetWeight("busy", 1)
	for i := 0; i < 100; i++ {
		w.Enqueue("busy", 10, Msg{Stream: "busy"})
	}
	for i := 0; i < 50; i++ {
		w.Next()
	}
	// The idle stream wakes up: it should get served promptly but not
	// monopolize with "saved up" credit from its idle period.
	w.Enqueue("idle", 10, Msg{Stream: "idle"})
	m, _, _ := w.Next()
	if m.Stream != "idle" {
		t.Errorf("awakened heavy stream should be served next, got %q", m.Stream)
	}
	m, _, _ = w.Next()
	if m.Stream != "busy" {
		t.Error("after its one message the idle stream must yield")
	}
}

func TestWFQPerStreamFIFO(t *testing.T) {
	w := NewWFQ()
	for i := 0; i < 10; i++ {
		w.Enqueue("s", 10, Msg{Stream: "s", BaseSeq: uint64(i)})
	}
	for i := 0; i < 10; i++ {
		m, _, ok := w.Next()
		if !ok || m.BaseSeq != uint64(i) {
			t.Fatalf("stream order broken at %d: %+v", i, m)
		}
	}
	if _, _, ok := w.Next(); ok {
		t.Error("empty queue should report !ok")
	}
}

func TestWFQValidation(t *testing.T) {
	w := NewWFQ()
	if err := w.SetWeight("s", 0); err == nil {
		t.Error("zero weight should fail")
	}
	if err := w.SetWeight("s", -1); err == nil {
		t.Error("negative weight should fail")
	}
	w.Enqueue("s", 0, Msg{}) // size repaired to 1
	if w.Len() != 1 {
		t.Error("Len wrong")
	}
}

func TestFIFOOrder(t *testing.T) {
	f := NewFIFO()
	f.Enqueue("a", 5, Msg{BaseSeq: 1})
	f.Enqueue("b", 5, Msg{BaseSeq: 2})
	m1, _, _ := f.Next()
	m2, _, _ := f.Next()
	if m1.BaseSeq != 1 || m2.BaseSeq != 2 {
		t.Error("FIFO must preserve arrival order")
	}
	if _, _, ok := f.Next(); ok || f.Len() != 0 {
		t.Error("FIFO empty state wrong")
	}
}
