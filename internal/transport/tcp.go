package transport

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
)

// helloStream is the reserved logical stream used for the connection
// handshake (peer identity exchange).
const helloStream = "\x00hello"

// maxFrame bounds a single frame to keep a malformed peer from forcing
// huge allocations.
const maxFrame = 16 << 20

// Handler receives messages delivered by the TCP transport.
type Handler func(from string, m Msg)

// TCP multiplexes all logical message streams to each peer onto a single
// TCP connection with a WFQ scheduler — the design §4.3 argues for over
// one-connection-per-stream (prohibitive connection counts, adverse
// interaction in the network, no weighted sharing).
type TCP struct {
	id      string
	handler Handler
	ln      net.Listener

	mu     sync.Mutex
	conns  map[string]*Conn
	closed bool
	wg     sync.WaitGroup
}

// Conn is one multiplexed connection to a peer.
type Conn struct {
	peer string
	nc   net.Conn
	t    *TCP

	mu     sync.Mutex
	cond   *sync.Cond
	sched  *WFQ
	closed bool

	BytesSent int64
	MsgsSent  int64
}

// ListenTCP starts a transport listening on addr (e.g. "127.0.0.1:0").
// The returned transport accepts inbound connections and can Dial
// outbound ones; all deliveries go to handler.
func ListenTCP(id, addr string, handler Handler) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	t := &TCP{id: id, handler: handler, ln: ln, conns: map[string]*Conn{}}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// ID returns the transport's node identity.
func (t *TCP) ID() string { return t.id }

// Addr returns the listening address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			// Inbound handshake: peer speaks first, then we answer.
			peer, err := readHello(nc)
			if err != nil {
				nc.Close()
				return
			}
			if err := writeHello(nc, t.id); err != nil {
				nc.Close()
				return
			}
			t.startConn(peer, nc)
		}()
	}
}

// Dial connects to a peer transport and returns its node id.
func (t *TCP) Dial(addr string) (string, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	if err := writeHello(nc, t.id); err != nil {
		nc.Close()
		return "", err
	}
	peer, err := readHello(nc)
	if err != nil {
		nc.Close()
		return "", err
	}
	t.startConn(peer, nc)
	return peer, nil
}

func (t *TCP) startConn(peer string, nc net.Conn) {
	c := &Conn{peer: peer, nc: nc, t: t, sched: NewWFQ()}
	c.cond = sync.NewCond(&c.mu)
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		nc.Close()
		return
	}
	if old, ok := t.conns[peer]; ok {
		old.close()
	}
	t.conns[peer] = c
	t.mu.Unlock()
	t.wg.Add(2)
	go func() {
		defer t.wg.Done()
		c.writeLoop()
	}()
	go func() {
		defer t.wg.Done()
		c.readLoop()
	}()
}

// Send enqueues a message to a peer; the per-connection WFQ decides when
// it gets the wire.
func (t *TCP) Send(peer string, m Msg) error {
	t.mu.Lock()
	c, ok := t.conns[peer]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no connection to %q", peer)
	}
	return c.send(m)
}

// SetWeight sets the WFQ weight of one logical stream to a peer —
// prescribed by QoS specifications or contractual obligations (§4.3).
func (t *TCP) SetWeight(peer, stream string, weight float64) error {
	t.mu.Lock()
	c, ok := t.conns[peer]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no connection to %q", peer)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sched.SetWeight(stream, weight)
}

// Peers lists connected peer ids.
func (t *TCP) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.conns))
	for p := range t.conns {
		out = append(out, p)
	}
	return out
}

// Close shuts the listener and every connection down and waits for the
// transport's goroutines to exit.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*Conn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.close()
	}
	t.wg.Wait()
	return nil
}

func (c *Conn) send(m Msg) error {
	size := EncodedSize(m)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("transport: connection to %q closed", c.peer)
	}
	if err := c.sched.Enqueue(m.Stream, size, m); err != nil {
		return err
	}
	c.cond.Signal()
	return nil
}

func (c *Conn) writeLoop() {
	var buf []byte
	for {
		c.mu.Lock()
		for c.sched.Len() == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		m, _, _ := c.sched.Next()
		c.mu.Unlock()

		buf = buf[:0]
		buf = binary.BigEndian.AppendUint32(buf, 0) // length placeholder
		buf = Encode(buf, m)
		binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
		if _, err := c.nc.Write(buf); err != nil {
			c.close()
			return
		}
		c.mu.Lock()
		c.BytesSent += int64(len(buf))
		c.MsgsSent++
		c.mu.Unlock()
	}
}

func (c *Conn) readLoop() {
	for {
		m, err := readFrame(c.nc)
		if err != nil {
			c.close()
			return
		}
		if c.t.handler != nil {
			c.t.handler(c.peer, m)
		}
	}
}

func (c *Conn) close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	c.nc.Close()
	c.t.mu.Lock()
	if c.t.conns[c.peer] == c {
		delete(c.t.conns, c.peer)
	}
	c.t.mu.Unlock()
}

func readFrame(r io.Reader) (Msg, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Msg{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return Msg{}, fmt.Errorf("transport: bad frame length %d", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return Msg{}, err
	}
	m, _, err := Decode(body)
	return m, err
}

func writeHello(nc net.Conn, id string) error {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = Encode(buf, Msg{Stream: helloStream, Kind: KindControl, Ctrl: []byte(id)})
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	_, err := nc.Write(buf)
	return err
}

func readHello(nc net.Conn) (string, error) {
	m, err := readFrame(nc)
	if err != nil {
		return "", err
	}
	if m.Stream != helloStream || len(m.Ctrl) == 0 {
		return "", fmt.Errorf("transport: bad handshake")
	}
	return string(m.Ctrl), nil
}
