package transport

import (
	"context"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/events"
)

// helloStream is the reserved logical stream used for the connection
// handshake (peer identity exchange).
const helloStream = "\x00hello"

// pingStream is the reserved logical stream for keepalive frames; they
// refresh the peer's read-idle timer and are never delivered upward.
const pingStream = "\x00ping"

// pongCtrl marks a keepalive reply; requests carry no Ctrl. Only
// requests are answered, so two peers never ping-pong forever.
var pongCtrl = []byte{1}

// maxFrame bounds a single frame to keep a malformed peer from forcing
// huge allocations.
const maxFrame = 16 << 20

// Handler receives messages delivered by the TCP transport.
type Handler func(from string, m Msg)

// TCP multiplexes all logical message streams to each peer onto a single
// TCP connection with a WFQ scheduler — the design §4.3 argues for over
// one-connection-per-stream (prohibitive connection counts, adverse
// interaction in the network, no weighted sharing). Supervised links
// (AddPeer) add the resilience layer on top: deadlines on every
// handshake, read, and write; reconnect with exponential backoff; and
// bounded buffering across the gaps.
type TCP struct {
	id      string
	handler Handler
	ln      net.Listener
	cfg     LinkConfig

	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	conns   map[string]*Conn
	links   map[string]*Link
	pending map[net.Conn]struct{} // accepted/dialed, hello not yet done
	dropped map[string]int64      // per-peer messages lost with no link to requeue to
	closed  bool
	wg      sync.WaitGroup

	onLinkState   func(peer string, from, to LinkState)
	onEstablished func(peer string, reconnected bool)

	// journal receives a KindLinkState event for every supervised link
	// transition, independent of the callback hooks. Atomic so the hot
	// paths read it without taking t.mu; nil disables.
	journal atomic.Pointer[events.Journal]
}

// Conn is one multiplexed connection to a peer.
type Conn struct {
	peer     string
	nc       net.Conn
	t        *TCP
	outbound bool // we dialed it (tie-break input)
	donec    chan struct{}

	lastWrite atomic.Int64 // unixnano of last frame write (keepalive idle check)

	mu     sync.Mutex
	cond   *sync.Cond
	sched  *WFQ
	closed bool

	BytesSent int64
	MsgsSent  int64
}

// ListenTCP starts a transport listening on addr (e.g. "127.0.0.1:0").
// The returned transport accepts inbound connections and can Dial
// outbound ones; all deliveries go to handler. An optional LinkConfig
// tunes deadlines and the per-peer supervisors (see AddPeer); omitted,
// conservative defaults apply.
func ListenTCP(id, addr string, handler Handler, cfg ...LinkConfig) (*TCP, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: %w", err)
	}
	var c LinkConfig
	if len(cfg) > 0 {
		c = cfg[0]
	}
	ctx, cancel := context.WithCancel(context.Background())
	t := &TCP{
		id: id, handler: handler, ln: ln, cfg: c.withDefaults(),
		ctx: ctx, cancel: cancel,
		conns:   map[string]*Conn{},
		links:   map[string]*Link{},
		pending: map[net.Conn]struct{}{},
		dropped: map[string]int64{},
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// ID returns the transport's node identity.
func (t *TCP) ID() string { return t.id }

// Addr returns the listening address.
func (t *TCP) Addr() string { return t.ln.Addr().String() }

func (t *TCP) callbacks() (func(string, LinkState, LinkState), func(string, bool)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.onLinkState, t.onEstablished
}

// trackPending registers a pre-handshake connection so Close can tear it
// down; it reports false when the transport is already closed.
func (t *TCP) trackPending(nc net.Conn) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed {
		return false
	}
	t.pending[nc] = struct{}{}
	return true
}

func (t *TCP) untrackPending(nc net.Conn) {
	t.mu.Lock()
	delete(t.pending, nc)
	t.mu.Unlock()
}

func (t *TCP) acceptLoop() {
	defer t.wg.Done()
	for {
		nc, err := t.ln.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func(nc net.Conn) {
			defer t.wg.Done()
			// Inbound handshake: peer speaks first, then we answer. The
			// deadline plus pending tracking is what keeps a peer that
			// connects and never says hello from leaking this goroutine
			// and hanging Close in wg.Wait.
			if !t.trackPending(nc) {
				nc.Close()
				return
			}
			nc.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
			peer, err := readHello(nc)
			if err == nil {
				err = writeHello(nc, t.id)
			}
			if err != nil {
				t.untrackPending(nc)
				nc.Close()
				return
			}
			nc.SetDeadline(time.Time{})
			t.untrackPending(nc)
			t.startConn(peer, nc, false)
		}(nc)
	}
}

// Dial connects to a peer transport once and returns its node id. For a
// connection that should survive breakage, use AddPeer instead.
func (t *TCP) Dial(addr string) (string, error) {
	return t.dialPeer(addr)
}

// dialPeer performs one deadline-bounded connect + hello exchange and
// installs the resulting connection. Both Dial and link supervisors come
// through here.
func (t *TCP) dialPeer(addr string) (string, error) {
	d := net.Dialer{Timeout: t.cfg.HandshakeTimeout}
	nc, err := d.DialContext(t.ctx, "tcp", addr)
	if err != nil {
		return "", fmt.Errorf("transport: %w", err)
	}
	if !t.trackPending(nc) {
		nc.Close()
		return "", fmt.Errorf("transport: closed")
	}
	nc.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	if err := writeHello(nc, t.id); err != nil {
		t.untrackPending(nc)
		nc.Close()
		return "", err
	}
	peer, err := readHello(nc)
	if err != nil {
		t.untrackPending(nc)
		nc.Close()
		return "", err
	}
	nc.SetDeadline(time.Time{})
	t.untrackPending(nc)
	t.startConn(peer, nc, true)
	return peer, nil
}

// startConn installs a handshaken connection, resolving the
// simultaneous-dial race deterministically: when both nodes dial each
// other at once, both ends keep the connection dialed by the lexically
// smaller node id, so neither side is left holding a socket its peer has
// abandoned. Duplicates in the same direction (peer restarted and
// redialed) are replaced newest-wins, with the loser's queued messages
// drained onto the survivor.
func (t *TCP) startConn(peer string, nc net.Conn, outbound bool) {
	c := &Conn{peer: peer, nc: nc, t: t, outbound: outbound, sched: NewWFQ(),
		donec: make(chan struct{})}
	c.cond = sync.NewCond(&c.mu)
	c.lastWrite.Store(time.Now().UnixNano())

	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		nc.Close()
		return
	}
	var orphans []Msg
	if old, ok := t.conns[peer]; ok && !old.isClosed() {
		preferOutbound := t.id < peer
		newPreferred := outbound == preferOutbound
		oldPreferred := old.outbound == preferOutbound
		if !newPreferred && oldPreferred {
			// The existing connection is the tie-break winner on both
			// ends; drop the newcomer.
			t.mu.Unlock()
			nc.Close()
			return
		}
		orphans, _ = old.shutdown()
	}
	t.conns[peer] = c
	l := t.links[peer]
	stateCB, estCB := t.onLinkState, t.onEstablished
	var notifies []func()
	if l != nil {
		notifies = append(notifies, l.attach(c, stateCB, estCB))
		if len(orphans) > 0 {
			// The superseded connection's backlog rides the replacement.
			notifies = append(notifies, l.detach(nil, orphans, stateCB))
		}
	} else if n := len(orphans); n > 0 {
		t.dropped[peer] += int64(n)
	}
	loops := 2
	if t.cfg.PingPeriod > 0 {
		loops = 3
	}
	t.wg.Add(loops)
	t.mu.Unlock()

	go func() {
		defer t.wg.Done()
		c.writeLoop()
	}()
	go func() {
		defer t.wg.Done()
		c.readLoop()
	}()
	if t.cfg.PingPeriod > 0 {
		go func() {
			defer t.wg.Done()
			c.pingLoop(t.cfg.PingPeriod)
		}()
	}
	for _, fn := range notifies {
		fn()
	}
}

// connDied reconciles the transport's view after a connection shuts
// down: the map entry is removed, the undelivered backlog is requeued to
// the peer's link (or counted dropped when there is none), and the
// link's supervisor is kicked awake to redial.
func (t *TCP) connDied(c *Conn, orphans []Msg) {
	t.mu.Lock()
	if t.conns[c.peer] == c {
		delete(t.conns, c.peer)
	}
	l := t.links[c.peer]
	var notify func()
	if l != nil {
		notify = l.detach(c, orphans, t.onLinkState)
		l.kickNow()
	} else if n := len(orphans); n > 0 {
		t.dropped[c.peer] += int64(n)
	}
	t.mu.Unlock()
	if notify != nil {
		notify()
	}
}

// Send enqueues a message to a peer; the per-connection WFQ decides when
// it gets the wire. For supervised peers (AddPeer) the message is
// buffered across reconnects instead of failing while the link is
// degraded.
func (t *TCP) Send(peer string, m Msg) error {
	t.mu.Lock()
	l := t.links[peer]
	c := t.conns[peer]
	t.mu.Unlock()
	if l != nil {
		return l.send(m)
	}
	if c == nil {
		return fmt.Errorf("transport: no connection to %q", peer)
	}
	return c.send(m)
}

// SetWeight sets the WFQ weight of one logical stream to a peer —
// prescribed by QoS specifications or contractual obligations (§4.3).
func (t *TCP) SetWeight(peer, stream string, weight float64) error {
	t.mu.Lock()
	c, ok := t.conns[peer]
	t.mu.Unlock()
	if !ok {
		return fmt.Errorf("transport: no connection to %q", peer)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sched.SetWeight(stream, weight)
}

// Peers lists connected peer ids.
func (t *TCP) Peers() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.conns))
	for p := range t.conns {
		out = append(out, p)
	}
	return out
}

// Close shuts the listener, every connection (handshaken or not), and
// every link supervisor down, then waits for the transport's goroutines
// to exit. Handshake deadlines and the cancellable dial context bound the
// wait.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	conns := make([]*Conn, 0, len(t.conns))
	for _, c := range t.conns {
		conns = append(conns, c)
	}
	links := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	pending := make([]net.Conn, 0, len(t.pending))
	for nc := range t.pending {
		pending = append(pending, nc)
	}
	t.mu.Unlock()

	t.cancel()
	t.ln.Close()
	for _, l := range links {
		l.shutdownLink()
	}
	for _, nc := range pending {
		nc.Close()
	}
	for _, c := range conns {
		c.close()
	}
	t.wg.Wait()
	return nil
}

func (c *Conn) send(m Msg) error {
	size := EncodedSize(m)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("transport: connection to %q closed", c.peer)
	}
	if err := c.sched.Enqueue(m.Stream, size, m); err != nil {
		return err
	}
	c.cond.Signal()
	return nil
}

func (c *Conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// shutdown latches the connection closed exactly once, draining the
// scheduler's undelivered backlog so it can be requeued instead of lost
// (the WFQ-discard bug). first is true for the caller that performed the
// shutdown; only that caller owns the orphans.
func (c *Conn) shutdown() (orphans []Msg, first bool) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, false
	}
	c.closed = true
	for c.sched.Len() > 0 {
		m, _, ok := c.sched.Next()
		if !ok {
			break
		}
		if m.Stream != pingStream {
			orphans = append(orphans, m)
		}
	}
	c.cond.Broadcast()
	c.mu.Unlock()
	close(c.donec)
	c.nc.Close()
	return orphans, true
}

// close is the failure path (read/write error, chaos kill): shut down
// and let the transport requeue whatever was still queued.
func (c *Conn) close() {
	orphans, first := c.shutdown()
	if !first {
		return
	}
	c.t.connDied(c, orphans)
}

func (c *Conn) writeLoop() {
	var buf []byte
	wt := c.t.cfg.WriteTimeout
	for {
		c.mu.Lock()
		for c.sched.Len() == 0 && !c.closed {
			c.cond.Wait()
		}
		if c.closed {
			c.mu.Unlock()
			return
		}
		m, _, _ := c.sched.Next()
		c.mu.Unlock()

		buf = buf[:0]
		buf = binary.BigEndian.AppendUint32(buf, 0) // length placeholder
		buf = Encode(buf, m)
		binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
		if wt > 0 {
			c.nc.SetWriteDeadline(time.Now().Add(wt))
		}
		if _, err := c.nc.Write(buf); err != nil {
			// The dequeued message is lost with the conn; everything still
			// queued is drained back by shutdown.
			c.close()
			return
		}
		c.lastWrite.Store(time.Now().UnixNano())
		c.mu.Lock()
		c.BytesSent += int64(len(buf))
		c.MsgsSent++
		c.mu.Unlock()
	}
}

func (c *Conn) readLoop() {
	idle := c.t.cfg.ReadIdleTimeout
	// One frame buffer per connection, reused across frames: Decode
	// copies everything out of the body, so nothing the handler retains
	// can alias it.
	var frame []byte
	for {
		if idle > 0 {
			c.nc.SetReadDeadline(time.Now().Add(idle))
		}
		m, err := readFrame(c.nc, &frame)
		if err != nil {
			c.close()
			return
		}
		if m.Stream == pingStream || m.Stream == helloStream {
			// A ping request (empty Ctrl) is answered with a pong so the
			// sender's read-idle timer sees traffic even when this side
			// pings on a slower period (or not at all) — otherwise two
			// peers with asymmetric ping configs flap a healthy idle link.
			// Pongs are never answered, so no storm.
			if m.Stream == pingStream && len(m.Ctrl) == 0 {
				c.send(Msg{Stream: pingStream, Kind: KindControl, Ctrl: pongCtrl})
			}
			continue // keepalive / stray handshake frames stay internal
		}
		if c.t.handler != nil {
			c.t.handler(c.peer, m)
		}
	}
}

// pingLoop keeps a write-idle connection warm so the peer's read-idle
// timer only fires when the path is actually dead (blackhole detection).
func (c *Conn) pingLoop(period time.Duration) {
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-c.donec:
			return
		case <-tick.C:
			if time.Since(time.Unix(0, c.lastWrite.Load())) < period {
				continue
			}
			if c.send(Msg{Stream: pingStream, Kind: KindControl}) != nil {
				return
			}
		}
	}
}

// readFrame reads one length-prefixed frame, growing *scratch as needed
// and reusing it across calls; the decoded Msg never aliases the scratch.
func readFrame(r io.Reader, scratch *[]byte) (Msg, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return Msg{}, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n == 0 || n > maxFrame {
		return Msg{}, fmt.Errorf("transport: bad frame length %d", n)
	}
	body := *scratch
	if uint32(cap(body)) < n {
		body = make([]byte, n)
		*scratch = body
	} else {
		body = body[:n]
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return Msg{}, err
	}
	m, _, err := Decode(body)
	return m, err
}

func writeHello(nc net.Conn, id string) error {
	var buf []byte
	buf = binary.BigEndian.AppendUint32(buf, 0)
	buf = Encode(buf, Msg{Stream: helloStream, Kind: KindControl, Ctrl: []byte(id)})
	binary.BigEndian.PutUint32(buf, uint32(len(buf)-4))
	_, err := nc.Write(buf)
	return err
}

func readHello(nc net.Conn) (string, error) {
	var scratch []byte
	m, err := readFrame(nc, &scratch)
	if err != nil {
		return "", err
	}
	if m.Stream != helloStream || len(m.Ctrl) == 0 {
		return "", fmt.Errorf("transport: bad handshake")
	}
	return string(m.Ctrl), nil
}
