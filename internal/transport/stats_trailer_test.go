package transport

import (
	"bytes"
	"encoding/hex"
	"reflect"
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
)

// Golden encodings captured before the stats trailer existed. Messages
// without digests must keep producing exactly these bytes: the digest
// trailer is announced by a kind-byte flag, so its absence leaves the
// wire format untouched.
const (
	goldenPlainHex  = "00027331070002000002015402400c000000000000000003030568656c6c6f040100"
	goldenTracedHex = "80027472030001000001010201004dc801880ee8079003c801"
	goldenCtrlHex   = "020262630004010203ff00"
)

func goldenMsgs() []Msg {
	return []Msg{
		{
			Stream: "s1", Kind: KindData, BaseSeq: 7,
			Tuples: []stream.Tuple{
				{Vals: []stream.Value{stream.Int(42), stream.Float(3.5)}},
				{Vals: []stream.Value{stream.String("hello"), stream.Bool(true), stream.Null()}},
			},
		},
		{
			Stream: "tr", Kind: KindData, BaseSeq: 3,
			Tuples: []stream.Tuple{
				{Vals: []stream.Value{stream.Int(1)},
					Span: &trace.Span{ID: 77, Birth: 100, Cursor: 900, Queue: 500, Proc: 200, Net: 100}},
			},
		},
		{Stream: "bc", Kind: KindBackChannel, Ctrl: []byte{1, 2, 3, 0xFF}},
	}
}

// TestDigestFreeMessagesByteIdentical: the acceptance criterion that the
// stats plane is invisible to traffic not carrying it.
func TestDigestFreeMessagesByteIdentical(t *testing.T) {
	goldens := []string{goldenPlainHex, goldenTracedHex, goldenCtrlHex}
	for i, m := range goldenMsgs() {
		want, err := hex.DecodeString(goldens[i])
		if err != nil {
			t.Fatal(err)
		}
		got := Encode(nil, m)
		if !bytes.Equal(got, want) {
			t.Errorf("msg %d: encoding changed:\n got %x\nwant %x", i, got, want)
		}
		// And the golden bytes still decode to the same message.
		dec, n, err := Decode(want)
		if err != nil || n != len(want) {
			t.Fatalf("msg %d: golden decode: n=%d err=%v", i, n, err)
		}
		if dec.Stream != m.Stream || dec.Kind != m.Kind || len(dec.Digests) != 0 {
			t.Errorf("msg %d: golden decoded to %+v", i, dec)
		}
	}
}

func testDigests() []stats.Digest {
	return []stats.Digest{
		{Node: "alpha", Seq: 9, At: 5e9, Util: 0.75, Queued: 40,
			Boxes: []stats.BoxLoad{{Box: "f1", Load: 0.5}, {Box: "agg", Load: 0.25}}},
		{Node: "beta", Seq: 3, At: 4e9, Util: 0.1, Queued: 2},
	}
}

// TestStatsTrailerRoundTrip: digests ride any message kind and survive
// encode/decode exactly, alone or alongside a trace trailer.
func TestStatsTrailerRoundTrip(t *testing.T) {
	base := goldenMsgs()
	for i, m := range base {
		m.Digests = testDigests()
		buf := Encode(nil, m)
		dec, n, err := Decode(buf)
		if err != nil {
			t.Fatalf("msg %d: %v", i, err)
		}
		if n != len(buf) {
			t.Fatalf("msg %d: consumed %d of %d", i, n, len(buf))
		}
		if !reflect.DeepEqual(dec.Digests, m.Digests) {
			t.Errorf("msg %d: digests changed:\n got %+v\nwant %+v", i, dec.Digests, m.Digests)
		}
		if dec.Kind != m.Kind {
			t.Errorf("msg %d: kind %v != %v (flag bits leaked)", i, dec.Kind, m.Kind)
		}
		if len(m.Tuples) > 0 && len(dec.Tuples) != len(m.Tuples) {
			t.Errorf("msg %d: tuples %d != %d", i, len(dec.Tuples), len(m.Tuples))
		}
	}
}

// TestStatsTrailerAfterTraceTrailer pins the trailer order: tuples, then
// trace, then stats — the traced golden message plus digests must decode
// both trailers.
func TestStatsTrailerAfterTraceTrailer(t *testing.T) {
	m := goldenMsgs()[1]
	m.Digests = testDigests()
	buf := Encode(nil, m)
	if buf[0]&kindTraced == 0 || buf[0]&kindStats == 0 {
		t.Fatalf("kind byte %02x should carry both flags", buf[0])
	}
	dec, _, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tuples[0].Span == nil || dec.Tuples[0].Span.ID != 77 {
		t.Errorf("trace trailer lost: %+v", dec.Tuples[0].Span)
	}
	if len(dec.Digests) != 2 || dec.Digests[0].Node != "alpha" {
		t.Errorf("stats trailer lost: %+v", dec.Digests)
	}
}

// TestStatsTrailerTruncated: a stats-flagged message whose trailer is cut
// short must error, never panic.
func TestStatsTrailerTruncated(t *testing.T) {
	m := Msg{Stream: "s", Kind: KindData, Digests: testDigests()}
	buf := Encode(nil, m)
	for i := len(buf) - 1; i > len(buf)-20 && i > 0; i-- {
		if _, _, err := Decode(buf[:i]); err == nil {
			t.Fatalf("prefix of %d bytes decoded without error", i)
		}
	}
}

// TestEncodedSizeIncludesDigests: netsim models message bytes via
// EncodedSize, so digests must count toward link utilization.
func TestEncodedSizeIncludesDigests(t *testing.T) {
	m := Msg{Stream: "s", Kind: KindHeartbeat}
	plain := EncodedSize(m)
	m.Digests = testDigests()
	withStats := EncodedSize(m)
	if withStats <= plain {
		t.Errorf("EncodedSize with digests %d <= without %d", withStats, plain)
	}
}
