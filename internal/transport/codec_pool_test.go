package transport

import (
	"reflect"
	"testing"

	"repro/internal/stream"
)

// The pooled-codec contract: DecodeInto reuses the caller's Msg backing
// storage (tuple slice, Vals arrays, ctrl buffer) and the steady state
// decodes numeric frames without allocating; Decode stays the compatible
// copy-everything wrapper. The wire format itself is pinned byte-for-byte
// by the golden-hex tests in stats_trailer_test.go.

func numericMsg(tuples int) Msg {
	m := Msg{Stream: "quotes", Kind: KindData, BaseSeq: 1}
	for i := 0; i < tuples; i++ {
		m.Tuples = append(m.Tuples, stream.Tuple{
			Seq: uint64(i + 1), TS: int64(100 + i),
			Vals: []stream.Value{
				stream.Int(int64(i)), stream.Float(float64(i) * 1.5), stream.Int(42)},
		})
	}
	return m
}

// TestDecodeIntoMatchesDecode: both decoders must produce identical
// messages from the same frame, for data, traced, and ctrl shapes.
func TestDecodeIntoMatchesDecode(t *testing.T) {
	for i, m := range append(goldenMsgs(), numericMsg(64)) {
		buf := Encode(nil, m)
		want, n1, err := Decode(buf)
		if err != nil {
			t.Fatalf("msg %d: Decode: %v", i, err)
		}
		var got Msg
		n2, err := DecodeInto(&got, buf)
		if err != nil {
			t.Fatalf("msg %d: DecodeInto: %v", i, err)
		}
		if n1 != n2 {
			t.Fatalf("msg %d: consumed %d vs %d bytes", i, n1, n2)
		}
		if !reflect.DeepEqual(normalizeMsg(want), normalizeMsg(got)) {
			t.Fatalf("msg %d: decoders diverged:\n%+v\nvs\n%+v", i, want, got)
		}
	}
}

// normalizeMsg maps empty-but-allocated slices to nil so reuse-friendly
// [:0] slices compare equal to freshly-decoded nil ones.
func normalizeMsg(m Msg) Msg {
	if len(m.Tuples) == 0 {
		m.Tuples = nil
	}
	if len(m.Ctrl) == 0 {
		m.Ctrl = nil
	}
	if len(m.Digests) == 0 {
		m.Digests = nil
	}
	return m
}

// TestDecodeIntoReusesBacking: decoding into a warm Msg must keep the
// tuple slice and Vals backing arrays instead of reallocating them.
func TestDecodeIntoReusesBacking(t *testing.T) {
	buf := Encode(nil, numericMsg(16))
	var m Msg
	if _, err := DecodeInto(&m, buf); err != nil {
		t.Fatal(err)
	}
	tup0 := &m.Tuples[0]
	vals0 := &tup0.Vals[0]
	if _, err := DecodeInto(&m, buf); err != nil {
		t.Fatal(err)
	}
	if &m.Tuples[0] != tup0 {
		t.Error("tuple slice reallocated on warm decode")
	}
	if &m.Tuples[0].Vals[0] != vals0 {
		t.Error("Vals backing reallocated on warm decode")
	}
}

// TestDecodeIntoZeroAlloc pins the pooled hot path: a warm numeric frame
// decodes with zero allocations per op (string values would allocate —
// Go strings are immutable — which is why the claim is scoped to numeric
// payloads, the common case for stream tuples).
func TestDecodeIntoZeroAlloc(t *testing.T) {
	buf := Encode(nil, numericMsg(64))
	var m Msg
	if _, err := DecodeInto(&m, buf); err != nil {
		t.Fatal(err)
	}
	if avg := testing.AllocsPerRun(500, func() {
		if _, err := DecodeInto(&m, buf); err != nil {
			t.Fatal(err)
		}
	}); avg != 0 {
		t.Fatalf("warm DecodeInto allocates %.2f per 64-tuple frame, want 0", avg)
	}
}

// TestEncodeZeroAllocWarmBuffer: re-encoding into a retained buffer must
// not allocate either — together with DecodeInto this makes the
// per-frame transport round trip allocation-free.
func TestEncodeZeroAllocWarmBuffer(t *testing.T) {
	m := numericMsg(64)
	buf := Encode(nil, m)
	if avg := testing.AllocsPerRun(500, func() { buf = Encode(buf[:0], m) }); avg != 0 {
		t.Fatalf("warm Encode allocates %.2f per 64-tuple frame, want 0", avg)
	}
}
