package transport

import (
	"bytes"
	"testing"

	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
)

// fuzzSeeds is the seed corpus: wire forms of every message kind and
// value type, plus hand-built corruptions targeting the length fields
// (the historical crash class: a uvarint length that wraps negative when
// converted to int, or a tuple/value count far beyond the buffer).
func fuzzSeeds() [][]byte {
	msgs := []Msg{
		{},
		{Stream: "s1", Kind: KindData, BaseSeq: 7, Tuples: []stream.Tuple{
			stream.NewTuple(stream.Int(42), stream.Float(3.5)),
			stream.NewTuple(stream.String("hello"), stream.Bool(true), stream.Null()),
		}},
		{Stream: "bc", Kind: KindBackChannel, Ctrl: []byte{1, 2, 3, 0xFF}},
		{Stream: "hb", Kind: KindHeartbeat},
		{Stream: "ctl", Kind: KindControl, BaseSeq: 1 << 62, Ctrl: bytes.Repeat([]byte{9}, 100)},
		{Stream: "neg", Kind: KindFlow, Tuples: []stream.Tuple{
			{Seq: 5, TS: -1000, Vals: []stream.Value{stream.Int(-9e15)}},
		}},
	}
	// Traced messages: spans ride in a trailer announced by the kind
	// byte's high bit. One fully-traced batch and one mixed batch.
	traced1 := stream.NewTuple(stream.Int(1))
	traced1.Span = &trace.Span{ID: 77, Birth: 100, Cursor: 900, Queue: 500, Proc: 200, Net: 100}
	traced2 := stream.NewTuple(stream.Float(2.5), stream.String("t"))
	traced2.Span = &trace.Span{ID: 1 << 50, Birth: -5, Cursor: 0, Proc: 5}
	msgs = append(msgs,
		Msg{Stream: "tr", Kind: KindData, BaseSeq: 3, Tuples: []stream.Tuple{traced1, traced2}},
		Msg{Stream: "mix", Kind: KindData, Tuples: []stream.Tuple{stream.NewTuple(stream.Bool(true)), traced1}},
	)
	// Stats-digest trailer: alone on a heartbeat, and stacked after a
	// trace trailer on a data batch.
	msgs = append(msgs,
		Msg{Stream: "hb", Kind: KindHeartbeat, Digests: []stats.Digest{
			{Node: "a", Seq: 2, At: 1e9, Util: 0.5, Queued: 7,
				Boxes: []stats.BoxLoad{{Box: "f", Load: 0.25}}},
		}},
		Msg{Stream: "both", Kind: KindData, Tuples: []stream.Tuple{traced1},
			Digests: []stats.Digest{{Node: "b", Seq: 1}}},
	)
	var out [][]byte
	for _, m := range msgs {
		out = append(out, Encode(nil, m))
	}
	out = append(out,
		// uvarint MaxUint64 as the stream-name length
		append([]byte{0}, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01),
		// plausible header, then a huge tuple count
		[]byte{0, 1, 'x', 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01},
		// tuple with huge arity
		[]byte{0, 0, 0, 0, 1, 1, 2, 0xFF, 0xFF, 0xFF, 0x0F},
		// truncated float value
		[]byte{0, 0, 0, 0, 1, 1, 2, 1, byte(stream.KindFloat), 1, 2},
		// trace bit set but no trailer bytes follow the batch
		[]byte{kindTraced, 0, 0, 0, 0},
		// trace trailer whose entry indexes a tuple beyond the batch
		[]byte{kindTraced, 0, 0, 0, 0, 1, 9, 1, 0, 0, 0, 0, 0},
		// stats bit set but no digest trailer follows
		[]byte{kindStats, 0, 0, 0, 0},
		// stats trailer with an oversized digest count
		[]byte{kindStats, 0, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F},
	)
	return out
}

// FuzzDecode feeds arbitrary bytes to Decode: it must never panic, must
// report a consumed length within the buffer, and anything it accepts
// must survive an encode/decode round trip unchanged.
func FuzzDecode(f *testing.F) {
	for _, s := range fuzzSeeds() {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, n, err := Decode(data)
		if err != nil {
			return
		}
		if n <= 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := Encode(nil, m)
		m2, n2, err := Decode(enc)
		if err != nil {
			t.Fatalf("re-decode of re-encoded message failed: %v", err)
		}
		if n2 != len(enc) {
			t.Fatalf("re-decode consumed %d of %d bytes", n2, len(enc))
		}
		// Compare via the canonical encoding: reflect.DeepEqual would
		// reject NaN == NaN, but bit-identical wire forms are the real
		// fixed-point contract.
		if enc2 := Encode(nil, m2); !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed the message:\n%x\n%x", enc, enc2)
		}
	})
}

// FuzzDecodeTuple drives the inner tuple decoder directly, reaching value
// parsing without a valid message header in the way.
func FuzzDecodeTuple(f *testing.F) {
	tuples := []stream.Tuple{
		{},
		stream.NewTuple(stream.Int(1), stream.Float(2), stream.String("x"), stream.Bool(false), stream.Null()),
		{Seq: 1 << 40, TS: -1},
	}
	for _, tp := range tuples {
		f.Add(encodeTuple(nil, tp))
	}
	f.Add([]byte{1, 2, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		tp, n, err := decodeTuple(data)
		if err != nil {
			return
		}
		if n < 0 || n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		enc := encodeTuple(nil, tp)
		tp2, _, err := decodeTuple(enc)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if enc2 := encodeTuple(nil, tp2); !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip changed the tuple:\n%x\n%x", enc, enc2)
		}
	})
}
