package transport

import (
	"fmt"

	"repro/internal/netsim"
)

// CM is the §4.3 future-work path made concrete: "There are some message
// streaming applications where the in-order reliable transport abstraction
// of TCP is not needed, and some message loss is tolerable. We plan to
// investigate if a UDP-based multiplexing protocol is also required in
// addition to TCP. Doing this would require a congestion control protocol
// to be implemented [12]." ([12] is the Congestion Manager, RFC 3124.)
//
// CM multiplexes logical streams (via the same WFQ scheduler the TCP path
// uses) onto an unreliable simulated link under AIMD congestion control:
// at most cwnd messages are in flight; each delivery is acknowledged; an
// acknowledgement grows the window (slow start below ssthresh, additive
// increase above); a timeout halves ssthresh and collapses the window.
// Lost messages are NOT retransmitted — loss is tolerable by assumption;
// the control loop only paces the sender to the link's capacity.
type CM struct {
	sim  *netsim.Sim
	src  string
	dst  string
	cfg  CMConfig
	wfq  *WFQ
	recv func(Msg)

	cwnd     float64
	ssthresh float64
	inFlight map[uint64]bool
	nextSeq  uint64

	// Counters for experiments.
	Sent      int64
	Delivered int64
	Acked     int64
	Timeouts  int64
}

// CMConfig tunes the controller.
type CMConfig struct {
	// Timeout is how long an unacknowledged message signals congestion
	// (ns; should exceed the path round trip).
	Timeout int64
	// InitialWnd and MaxWnd bound the congestion window in messages.
	InitialWnd float64
	MaxWnd     float64
	// InitialSSThresh is the slow-start threshold (messages).
	InitialSSThresh float64
}

// cmData and cmAck are the wire payloads.
type cmData struct {
	Seq uint64
	M   Msg
}

type cmAck struct{ Seq uint64 }

// NewCM builds a congestion-managed channel from src to dst and installs
// the delivery/ack handlers on both simulated nodes (the test-harness
// wiring; a composed system would multiplex the handlers). recv receives
// the messages that survive the link.
func NewCM(sim *netsim.Sim, src, dst string, cfg CMConfig, recv func(Msg)) (*CM, error) {
	if cfg.Timeout <= 0 {
		cfg.Timeout = 50e6
	}
	if cfg.InitialWnd <= 0 {
		cfg.InitialWnd = 1
	}
	if cfg.MaxWnd <= 0 {
		cfg.MaxWnd = 1 << 16
	}
	if cfg.InitialSSThresh <= 0 {
		cfg.InitialSSThresh = 64
	}
	c := &CM{
		sim:      sim,
		src:      src,
		dst:      dst,
		cfg:      cfg,
		wfq:      NewWFQ(),
		recv:     recv,
		cwnd:     cfg.InitialWnd,
		ssthresh: cfg.InitialSSThresh,
		inFlight: map[uint64]bool{},
	}
	if err := sim.SetHandler(dst, c.onData); err != nil {
		return nil, err
	}
	if err := sim.SetHandler(src, c.onAck); err != nil {
		return nil, err
	}
	return c, nil
}

// SetWeight declares a logical stream's share of the channel.
func (c *CM) SetWeight(stream string, w float64) error { return c.wfq.SetWeight(stream, w) }

// Send enqueues a message; the window decides when it reaches the wire.
func (c *CM) Send(m Msg) error {
	if err := c.wfq.Enqueue(m.Stream, EncodedSize(m), m); err != nil {
		return err
	}
	c.pump()
	return nil
}

// Cwnd returns the current congestion window (messages).
func (c *CM) Cwnd() float64 { return c.cwnd }

// Queued returns messages waiting for window space.
func (c *CM) Queued() int { return c.wfq.Len() }

// pump transmits while the window allows.
func (c *CM) pump() {
	for float64(len(c.inFlight)) < c.cwnd {
		m, size, ok := c.wfq.Next()
		if !ok {
			return
		}
		c.nextSeq++
		seq := c.nextSeq
		c.inFlight[seq] = true
		c.Sent++
		c.sim.Send(c.src, c.dst, size, cmData{Seq: seq, M: m})
		c.sim.Schedule(c.cfg.Timeout, func() { c.onTimeout(seq) })
	}
}

func (c *CM) onData(_ string, payload any, _ int) {
	d, ok := payload.(cmData)
	if !ok {
		return
	}
	c.Delivered++
	if c.recv != nil {
		c.recv(d.M)
	}
	c.sim.Send(c.dst, c.src, 16, cmAck{Seq: d.Seq})
}

func (c *CM) onAck(_ string, payload any, _ int) {
	a, ok := payload.(cmAck)
	if !ok {
		return
	}
	if !c.inFlight[a.Seq] {
		return // already timed out
	}
	delete(c.inFlight, a.Seq)
	c.Acked++
	if c.cwnd < c.ssthresh {
		c.cwnd++ // slow start
	} else {
		c.cwnd += 1 / c.cwnd // additive increase (congestion avoidance)
	}
	if c.cwnd > c.cfg.MaxWnd {
		c.cwnd = c.cfg.MaxWnd
	}
	c.pump()
}

// onTimeout treats a still-unacknowledged message as a congestion signal:
// multiplicative decrease. The message itself is abandoned (loss is
// tolerable; there is no retransmission).
func (c *CM) onTimeout(seq uint64) {
	if !c.inFlight[seq] {
		return // was acknowledged in time
	}
	delete(c.inFlight, seq)
	c.Timeouts++
	c.ssthresh = c.cwnd / 2
	if c.ssthresh < 1 {
		c.ssthresh = 1
	}
	c.cwnd = 1
	c.pump()
}

// String summarizes the channel state for diagnostics.
func (c *CM) String() string {
	return fmt.Sprintf("cm %s->%s cwnd=%.1f inflight=%d sent=%d delivered=%d timeouts=%d",
		c.src, c.dst, c.cwnd, len(c.inFlight), c.Sent, c.Delivered, c.Timeouts)
}
