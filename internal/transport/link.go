package transport

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/events"
)

// LinkState is the supervised peer-link state machine. A configured peer
// (AddPeer) moves connecting → established on the first successful
// handshake, established → degraded when the connection dies, degraded →
// established when the redial lands, and → down only when the transport
// closes or the dial budget is exhausted. The overlay of §4.3 assumes
// long-lived multiplexed connections; this layer is what makes that
// assumption true on a network that breaks them.
type LinkState int32

const (
	// LinkConnecting means the first handshake has not completed yet.
	LinkConnecting LinkState = iota
	// LinkEstablished means a live multiplexed connection is attached.
	LinkEstablished
	// LinkDegraded means an established connection was lost: outbound
	// messages buffer while the supervisor redials with backoff.
	LinkDegraded
	// LinkDown means the link is permanently closed (transport shutdown
	// or MaxDialAttempts exhausted); sends fail immediately.
	LinkDown
)

// String names the state for logs and telemetry.
func (s LinkState) String() string {
	switch s {
	case LinkConnecting:
		return "connecting"
	case LinkEstablished:
		return "established"
	case LinkDegraded:
		return "degraded"
	case LinkDown:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int32(s))
}

// LinkConfig tunes the transport's deadlines and the per-peer supervisor.
// The zero value selects conservative defaults; ping-based dead-link
// detection is off unless PingPeriod is set.
type LinkConfig struct {
	// HandshakeTimeout bounds the hello exchange in both directions: an
	// accepted connection that never says hello is torn down after this
	// long, and an outbound dial (TCP connect + hello round trip) gives
	// up after it. Default 3s.
	HandshakeTimeout time.Duration
	// WriteTimeout bounds a single frame write; a peer that stops
	// draining its socket degrades the link instead of wedging the write
	// loop forever. Default 10s.
	WriteTimeout time.Duration
	// PingPeriod, when positive, sends a tiny keepalive frame on every
	// connection that has been write-idle for the period, so a silent
	// (blackholed) link is detected by the peer's read-idle timer.
	// Default 0 (off).
	PingPeriod time.Duration
	// ReadIdleTimeout, when positive, closes a connection that delivers
	// no frame for the duration. Only enable it when the peers ping
	// (both sides of a supervised overlay normally do); it defaults to
	// 4×PingPeriod when pings are on and stays off otherwise.
	ReadIdleTimeout time.Duration
	// BackoffMin/BackoffMax bound the supervisor's exponential redial
	// backoff; each sleep is jittered to ±50% so a restarted hub is not
	// hit by every peer in the same instant. Defaults 25ms / 2s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// MaxDialAttempts caps consecutive failed dials before the link goes
	// down. 0 (the default) retries forever.
	MaxDialAttempts int
	// BufferLimit bounds the messages a link buffers while no connection
	// is attached; beyond it Send fails and the drop is counted. Default
	// 1024.
	BufferLimit int
}

func (c LinkConfig) withDefaults() LinkConfig {
	if c.HandshakeTimeout <= 0 {
		c.HandshakeTimeout = 3 * time.Second
	}
	if c.WriteTimeout <= 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.BackoffMin <= 0 {
		c.BackoffMin = 25 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 2 * time.Second
	}
	if c.BufferLimit <= 0 {
		c.BufferLimit = 1024
	}
	if c.PingPeriod > 0 && c.ReadIdleTimeout <= 0 {
		c.ReadIdleTimeout = 4 * c.PingPeriod
	}
	return c
}

// LinkInfo is one peer link's observable state, served by the telemetry
// /links endpoint and rendered by dspstat.
type LinkInfo struct {
	Peer       string `json:"peer"`
	Addr       string `json:"addr,omitempty"`
	State      string `json:"state"`
	Supervised bool   `json:"supervised"`
	Dials      int64  `json:"dials"`
	Reconnects int64  `json:"reconnects"`
	Buffered   int    `json:"buffered"`
	Requeued   int64  `json:"requeued"`
	Dropped    int64  `json:"dropped"`
	MsgsSent   int64  `json:"msgs_sent"`
	BytesSent  int64  `json:"bytes_sent"`
}

// Link supervises the transport's relationship with one configured peer:
// it owns the redial loop, the reconnect buffer, and the state machine.
// Locking order across the transport is t.mu → l.mu → c.mu; no method
// here ever takes them in another order.
type Link struct {
	t    *TCP
	peer string

	mu            sync.Mutex
	addr          string
	state         LinkState
	conn          *Conn
	buf           []Msg
	everConnected bool
	supervising   bool
	closed        bool

	dials      int64
	reconnects int64
	requeued   int64
	dropped    int64

	kick chan struct{}
}

// AddPeer registers addr as the supervised home of peer: the transport
// dials it with exponential backoff and jitter, re-dials whenever the
// connection dies, and buffers a bounded number of outbound messages
// across the gaps. Calling AddPeer again for the same peer just updates
// the address. The hello exchange still decides identity — a connection
// accepted from the peer satisfies the link exactly like a dialed one.
func (t *TCP) AddPeer(peer, addr string) error {
	if peer == t.id {
		return fmt.Errorf("transport: cannot peer with self %q", peer)
	}
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return fmt.Errorf("transport: closed")
	}
	if l, ok := t.links[peer]; ok {
		l.mu.Lock()
		l.addr = addr
		l.mu.Unlock()
		t.mu.Unlock()
		return nil
	}
	l := &Link{t: t, peer: peer, addr: addr, kick: make(chan struct{}, 1)}
	if c, ok := t.conns[peer]; ok && !c.isClosed() {
		l.conn = c
		l.state = LinkEstablished
		l.everConnected = true
	}
	t.links[peer] = l
	l.ensureSupervisorLocked()
	t.mu.Unlock()
	return nil
}

// LinkInfos snapshots every peer relationship: supervised links plus bare
// (Dial-created) connections, sorted by peer id.
func (t *TCP) LinkInfos() []LinkInfo {
	t.mu.Lock()
	links := make([]*Link, 0, len(t.links))
	for _, l := range t.links {
		links = append(links, l)
	}
	bare := make([]*Conn, 0)
	for p, c := range t.conns {
		if _, ok := t.links[p]; !ok {
			bare = append(bare, c)
		}
	}
	dropped := make(map[string]int64, len(t.dropped))
	for p, n := range t.dropped {
		dropped[p] = n
	}
	t.mu.Unlock()

	out := make([]LinkInfo, 0, len(links)+len(bare))
	for _, l := range links {
		out = append(out, l.info(dropped[l.peer]))
	}
	for _, c := range bare {
		c.mu.Lock()
		out = append(out, LinkInfo{
			Peer: c.peer, State: LinkEstablished.String(),
			Dropped: dropped[c.peer], MsgsSent: c.MsgsSent, BytesSent: c.BytesSent,
		})
		c.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Peer < out[j].Peer })
	return out
}

// LinkState reports the supervised link state for peer; ok is false when
// the peer has no supervised link.
func (t *TCP) LinkState(peer string) (LinkState, bool) {
	t.mu.Lock()
	l, ok := t.links[peer]
	t.mu.Unlock()
	if !ok {
		return LinkDown, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.state, true
}

// Dropped returns how many outbound messages to peer were lost for good:
// drained from a dead unsupervised connection, or rejected by a full
// reconnect buffer.
func (t *TCP) Dropped(peer string) int64 {
	t.mu.Lock()
	n := t.dropped[peer]
	l := t.links[peer]
	t.mu.Unlock()
	if l != nil {
		l.mu.Lock()
		n += l.dropped
		l.mu.Unlock()
	}
	return n
}

// SetOnLinkState installs a callback fired on every supervised link state
// transition. The callback runs outside the transport's locks; under
// heavy churn transitions may be reported slightly out of order.
func (t *TCP) SetOnLinkState(fn func(peer string, from, to LinkState)) {
	t.mu.Lock()
	t.onLinkState = fn
	t.mu.Unlock()
}

// SetJournal directs a structured event into the given journal on every
// supervised link state transition (KindLinkState: Subject is the peer,
// Detail the new state, V1 the numeric prior state). Unlike the
// SetOnLinkState hook this is pure recording — no scheduling, no
// locks held — so the control plane's flight recorder sees link churn
// even when nothing subscribes to it. A nil journal disables.
func (t *TCP) SetJournal(j *events.Journal) { t.journal.Store(j) }

// journalLink records one link transition; callers have already
// established from != to.
func (t *TCP) journalLink(peer string, from, to LinkState) {
	if j := t.journal.Load(); j != nil {
		j.Append(events.Event{
			Time: time.Now().UnixNano(), Kind: events.KindLinkState,
			Subject: peer, Detail: to.String(), V1: float64(from),
		})
	}
}

// SetOnEstablished installs a callback fired after a connection to peer
// attaches and the reconnect buffer has been flushed onto it; reconnected
// is true when the link had been established before. The HA layer hooks
// this to replay unacknowledged output (ha.LinkSender.Resync).
func (t *TCP) SetOnEstablished(fn func(peer string, reconnected bool)) {
	t.mu.Lock()
	t.onEstablished = fn
	t.mu.Unlock()
}

// KillConn closes the current connection to peer without touching its
// supervised link — the chaos harness's conn-kill injector. The link (if
// any) degrades and reconnects; an unsupervised connection just dies. It
// reports whether a connection existed.
func (t *TCP) KillConn(peer string) bool {
	t.mu.Lock()
	c := t.conns[peer]
	t.mu.Unlock()
	if c == nil {
		return false
	}
	c.close()
	return true
}

// info renders the link's LinkInfo; extraDropped is the transport-level
// per-peer drop count accumulated outside the link.
func (l *Link) info(extraDropped int64) LinkInfo {
	l.mu.Lock()
	in := LinkInfo{
		Peer: l.peer, Addr: l.addr, State: l.state.String(), Supervised: true,
		Dials: l.dials, Reconnects: l.reconnects, Buffered: len(l.buf),
		Requeued: l.requeued, Dropped: l.dropped + extraDropped,
	}
	c := l.conn
	l.mu.Unlock()
	if c != nil {
		c.mu.Lock()
		in.MsgsSent, in.BytesSent = c.MsgsSent, c.BytesSent
		c.mu.Unlock()
	}
	return in
}

// send routes one message through the link: onto the live connection when
// one is attached, into the bounded reconnect buffer otherwise.
func (l *Link) send(m Msg) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("transport: link to %q is down", l.peer)
	}
	if l.conn != nil {
		if err := l.conn.send(m); err == nil {
			return nil
		}
		// The connection died between lookup and enqueue; fall through to
		// the buffer — detach will requeue whatever it had queued.
	}
	if len(l.buf) >= l.t.cfg.BufferLimit {
		l.dropped++
		return fmt.Errorf("transport: link to %q: reconnect buffer full (%d messages)",
			l.peer, len(l.buf))
	}
	l.buf = append(l.buf, m)
	return nil
}

// attach hands a fresh connection to the link and flushes the reconnect
// buffer onto it, in order, ahead of new sends. Caller holds t.mu and
// passes the callbacks it read under that lock; the returned notify
// fires them and must be called after all locks are released.
func (l *Link) attach(c *Conn, stateCB func(string, LinkState, LinkState), estCB func(string, bool)) (notify func()) {
	l.mu.Lock()
	from := l.state
	l.conn = c
	l.state = LinkEstablished
	reconnected := l.everConnected
	l.everConnected = true
	if reconnected {
		l.reconnects++
	}
	buffered := l.buf
	l.buf = nil
	for i, m := range buffered {
		if err := c.send(m); err != nil {
			// Died mid-flush: keep the rest buffered for the next attach.
			l.buf = append(l.buf, buffered[i:]...)
			break
		}
	}
	l.mu.Unlock()

	peer := l.peer
	return func() {
		if from != LinkEstablished {
			l.t.journalLink(peer, from, LinkEstablished)
		}
		if stateCB != nil && from != LinkEstablished {
			stateCB(peer, from, LinkEstablished)
		}
		if estCB != nil {
			estCB(peer, reconnected)
		}
	}
}

// detach reacts to a connection death: the conn's undelivered scheduler
// backlog is requeued (to the replacement connection when a tie-break
// already installed one, else to the front of the reconnect buffer,
// oldest first) and the state degrades. Caller holds t.mu and passes the
// state callback it read under that lock.
func (l *Link) detach(c *Conn, orphans []Msg, stateCB func(string, LinkState, LinkState)) (notify func()) {
	l.mu.Lock()
	from := l.state
	if l.conn == c {
		l.conn = nil
		if l.state == LinkEstablished {
			l.state = LinkDegraded
		}
	}
	if l.conn != nil {
		// A replacement connection is already attached (simultaneous-dial
		// replacement): move the backlog straight onto it.
		for _, m := range orphans {
			if l.conn.send(m) != nil {
				l.dropped++
			} else {
				l.requeued++
			}
		}
	} else if len(orphans) > 0 {
		room := l.t.cfg.BufferLimit - len(l.buf)
		if room < 0 {
			room = 0
		}
		kept := orphans
		if len(kept) > room {
			l.dropped += int64(len(kept) - room)
			kept = kept[:room]
		}
		l.requeued += int64(len(kept))
		l.buf = append(append([]Msg(nil), kept...), l.buf...)
	}
	to := l.state
	l.mu.Unlock()

	peer := l.peer
	return func() {
		if from != to {
			l.t.journalLink(peer, from, to)
		}
		if stateCB != nil && from != to {
			stateCB(peer, from, to)
		}
	}
}

// ensureSupervisorLocked spawns the redial supervisor if none is running.
// Caller holds t.mu (the closed check and wg.Add must be atomic with
// respect to Close).
func (l *Link) ensureSupervisorLocked() {
	if l.t.closed {
		return
	}
	l.mu.Lock()
	start := !l.supervising && !l.closed
	if start {
		l.supervising = true
	}
	l.mu.Unlock()
	if start {
		l.t.wg.Add(1)
		go l.supervise()
	}
}

// kickNow wakes the supervisor without blocking.
func (l *Link) kickNow() {
	select {
	case l.kick <- struct{}{}:
	default:
	}
}

// shutdownLink marks the link permanently down (transport Close).
func (l *Link) shutdownLink() {
	l.setState(LinkDown, true)
	l.kickNow()
}

// setState transitions the state machine and fires the callback; close
// additionally latches the link shut and discards the buffer.
func (l *Link) setState(to LinkState, close bool) {
	l.mu.Lock()
	from := l.state
	if close {
		l.closed = true
		l.dropped += int64(len(l.buf))
		l.buf = nil
	}
	if from == to {
		l.mu.Unlock()
		return
	}
	l.state = to
	l.mu.Unlock()
	l.t.journalLink(l.peer, from, to)
	if cb, _ := l.t.callbacks(); cb != nil {
		cb(l.peer, from, to)
	}
}

// supervise is the link's redial loop: while no connection is attached it
// dials with exponential backoff and ±50% jitter; while one is attached
// it sleeps until kicked by the connection's death.
func (l *Link) supervise() {
	defer func() {
		l.mu.Lock()
		l.supervising = false
		l.mu.Unlock()
		l.t.wg.Done()
	}()
	cfg := l.t.cfg
	backoff := cfg.BackoffMin
	attempts := 0
	for {
		select {
		case <-l.t.ctx.Done():
			l.setState(LinkDown, true)
			return
		default:
		}
		l.mu.Lock()
		if l.closed {
			l.mu.Unlock()
			return
		}
		if l.conn != nil {
			l.mu.Unlock()
			backoff, attempts = cfg.BackoffMin, 0
			select {
			case <-l.kick:
			case <-l.t.ctx.Done():
			}
			continue
		}
		if l.state == LinkEstablished {
			// Raced a detach that hasn't transitioned yet; normalize.
			l.state = LinkDegraded
		}
		addr := l.addr
		l.dials++
		l.mu.Unlock()

		peer, err := l.t.dialPeer(addr)
		if err == nil && peer == l.peer {
			backoff, attempts = cfg.BackoffMin, 0
			continue // startConn attached the new connection
		}
		if err == nil {
			// A different node answered; the connection was installed under
			// its real identity, but this link is still unsatisfied.
			err = fmt.Errorf("transport: peer at %s identified as %q, want %q",
				addr, peer, l.peer)
		}
		_ = err
		attempts++
		if cfg.MaxDialAttempts > 0 && attempts >= cfg.MaxDialAttempts {
			l.setState(LinkDown, true)
			return
		}
		select {
		case <-time.After(jitter(backoff)):
		case <-l.kick:
		case <-l.t.ctx.Done():
		}
		backoff *= 2
		if backoff > cfg.BackoffMax {
			backoff = cfg.BackoffMax
		}
	}
}

// jitter spreads d to [0.5d, 1.5d) so reconnect storms decorrelate.
func jitter(d time.Duration) time.Duration {
	if d <= 0 {
		return d
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}
