package transport

import (
	"bytes"
	"testing"

	"repro/internal/stream"
	"repro/internal/trace"
)

func tracedMsg() Msg {
	t1 := stream.NewTuple(stream.Int(1), stream.String("a"))
	t1.Span = &trace.Span{ID: 0xDEAD01, Birth: 1000, Cursor: 4200, Queue: 2000, Proc: 700, Net: 500}
	t2 := stream.NewTuple(stream.Int(2)) // untraced, between two traced ones
	t3 := stream.NewTuple(stream.Float(2.5))
	t3.Span = &trace.Span{ID: 0xDEAD03, Birth: -50, Cursor: 10, Queue: 60}
	return Msg{Stream: "quotes", Kind: KindData, BaseSeq: 7,
		Tuples: []stream.Tuple{t1, t2, t3}}
}

// TestCodecTraceRoundTrip: span summaries survive Encode/Decode, attached
// to the right tuples, with untraced neighbors left untouched.
func TestCodecTraceRoundTrip(t *testing.T) {
	m := tracedMsg()
	buf := Encode(nil, m)
	got, used, err := Decode(buf)
	if err != nil {
		t.Fatal(err)
	}
	if used != len(buf) {
		t.Fatalf("used %d of %d bytes", used, len(buf))
	}
	if got.Kind != KindData {
		t.Errorf("kind = %d, want KindData (trace bit must be masked)", got.Kind)
	}
	if got.Tuples[1].Span != nil {
		t.Error("untraced tuple grew a span")
	}
	for _, i := range []int{0, 2} {
		want, have := m.Tuples[i].Span, got.Tuples[i].Span
		if have == nil {
			t.Fatalf("tuple %d lost its span", i)
		}
		if have.ID != want.ID || have.Birth != want.Birth || have.Cursor != want.Cursor ||
			have.Queue != want.Queue || have.Proc != want.Proc || have.Net != want.Net {
			t.Errorf("tuple %d span = %+v, want %+v", i, have, want)
		}
	}
}

// TestCodecUntracedUnchanged: without spans the wire form is byte-for-byte
// the original format — untraced old-format messages still decode and new
// untraced encodes stay readable by anything that knew the old format.
func TestCodecUntracedUnchanged(t *testing.T) {
	m := sampleMsg()
	buf := Encode(nil, m)
	if buf[0]&kindTraced != 0 {
		t.Error("untraced message has trace bit set")
	}
	// Hand-build the old-format encoding (the pre-trailer encoder) and
	// check the new decoder accepts it unchanged.
	var old []byte
	old = append(old, byte(m.Kind))
	old = appendUv(old, uint64(len(m.Stream)))
	old = append(old, m.Stream...)
	old = appendUv(old, m.BaseSeq)
	old = appendUv(old, uint64(len(m.Ctrl)))
	old = append(old, m.Ctrl...)
	old = appendUv(old, uint64(len(m.Tuples)))
	for _, tp := range m.Tuples {
		old = encodeTuple(old, tp)
	}
	if !bytes.Equal(old, buf) {
		t.Fatalf("untraced encoding diverged from the old format:\n%x\n%x", old, buf)
	}
	got, used, err := Decode(old)
	if err != nil || used != len(old) {
		t.Fatalf("old-format decode: used=%d err=%v", used, err)
	}
	if got.Stream != m.Stream || len(got.Tuples) != len(m.Tuples) {
		t.Errorf("old-format decode mismatch: %+v", got)
	}
}

func appendUv(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// TestCodecTraceTrailerCorruption: hostile trailers must error, never
// panic or attach spans out of range.
func TestCodecTraceTrailerCorruption(t *testing.T) {
	good := Encode(nil, tracedMsg())
	cases := map[string][]byte{
		"truncated trailer": good[:len(good)-3],
		"trace bit, no trailer": func() []byte {
			m := sampleMsg()
			b := Encode(nil, m)
			b[0] |= kindTraced
			return b
		}(),
	}
	for name, data := range cases {
		if _, _, err := Decode(data); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
	// Out-of-range tuple index in the trailer.
	m := Msg{Stream: "s", Kind: KindData, Tuples: []stream.Tuple{stream.NewTuple(stream.Int(1))}}
	m.Tuples[0].Span = &trace.Span{ID: 1}
	b := Encode(nil, m)
	// The index uvarint is the first trailer byte after the count; bump it.
	b[len(b)-7] = 5 // index 5 of 1
	if _, _, err := Decode(b); err == nil {
		t.Error("out-of-range trace index accepted")
	}
}

// TestEncodedSizeIncludesTrailer keeps the netsim byte modeling honest.
func TestEncodedSizeIncludesTrailer(t *testing.T) {
	m := tracedMsg()
	withSpans := EncodedSize(m)
	for i := range m.Tuples {
		m.Tuples[i].Span = nil
	}
	if without := EncodedSize(m); withSpans <= without {
		t.Errorf("EncodedSize traced=%d untraced=%d, trailer not counted", withSpans, without)
	}
}
