package transport

import "fmt"

// Scheduler decides which queued message uses the shared connection next —
// "a message scheduler that determines which message stream gets to use
// the connection at any time" (§4.3).
type Scheduler interface {
	// Enqueue admits a message of the given wire size on a logical stream.
	Enqueue(stream string, size int, m Msg) error
	// Next removes and returns the next message to transmit.
	Next() (m Msg, size int, ok bool)
	// Len returns the number of queued messages.
	Len() int
}

// WFQ is a weighted fair queueing scheduler using virtual finish times:
// each stream s has weight w(s), and a message of size L arriving when the
// stream's previous message finishes at F gets finish time
// max(V, F) + L/w(s), where V is the scheduler's virtual time. Draining in
// finish-time order shares bandwidth among backlogged streams in
// proportion to their weights — the "weighted connection sharing policy
// based on QoS or contract specification" of §4.3.
type WFQ struct {
	streams map[string]*wfqStream
	vtime   float64
	queued  int
}

type wfqStream struct {
	weight     float64
	lastFinish float64
	q          []wfqItem
}

type wfqItem struct {
	finish float64
	size   int
	m      Msg
}

// NewWFQ returns an empty weighted fair queue.
func NewWFQ() *WFQ { return &WFQ{streams: map[string]*wfqStream{}} }

// SetWeight declares a stream's weight (must be positive). Streams enqueue
// with weight 1 unless declared.
func (w *WFQ) SetWeight(stream string, weight float64) error {
	if weight <= 0 {
		return fmt.Errorf("transport: weight must be positive, got %g", weight)
	}
	s := w.stream(stream)
	s.weight = weight
	return nil
}

func (w *WFQ) stream(name string) *wfqStream {
	s, ok := w.streams[name]
	if !ok {
		s = &wfqStream{weight: 1}
		w.streams[name] = s
	}
	return s
}

// Enqueue implements Scheduler.
func (w *WFQ) Enqueue(stream string, size int, m Msg) error {
	if size <= 0 {
		size = 1
	}
	s := w.stream(stream)
	start := w.vtime
	if s.lastFinish > start {
		start = s.lastFinish
	}
	finish := start + float64(size)/s.weight
	s.lastFinish = finish
	s.q = append(s.q, wfqItem{finish: finish, size: size, m: m})
	w.queued++
	return nil
}

// Next implements Scheduler: it returns the queued message with the
// smallest virtual finish time.
func (w *WFQ) Next() (Msg, int, bool) {
	var best *wfqStream
	bestFinish := 0.0
	for _, s := range w.streams {
		if len(s.q) == 0 {
			continue
		}
		if best == nil || s.q[0].finish < bestFinish {
			best = s
			bestFinish = s.q[0].finish
		}
	}
	if best == nil {
		return Msg{}, 0, false
	}
	it := best.q[0]
	best.q = best.q[1:]
	w.queued--
	w.vtime = it.finish
	return it.m, it.size, true
}

// Len implements Scheduler.
func (w *WFQ) Len() int { return w.queued }

// FIFO is the baseline scheduler: strict arrival order, no weights — the
// behaviour of a single shared connection with no message scheduling.
type FIFO struct {
	q []wfqItem
}

// NewFIFO returns an empty FIFO scheduler.
func NewFIFO() *FIFO { return &FIFO{} }

// Enqueue implements Scheduler.
func (f *FIFO) Enqueue(_ string, size int, m Msg) error {
	if size <= 0 {
		size = 1
	}
	f.q = append(f.q, wfqItem{size: size, m: m})
	return nil
}

// Next implements Scheduler.
func (f *FIFO) Next() (Msg, int, bool) {
	if len(f.q) == 0 {
		return Msg{}, 0, false
	}
	it := f.q[0]
	f.q = f.q[1:]
	return it.m, it.size, true
}

// Len implements Scheduler.
func (f *FIFO) Len() int { return len(f.q) }
