package trace

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestSpanSumIdentity: the core accounting contract — components sum to
// exactly End-Birth because every mark charges the cursor gap to one
// component.
func TestSpanSumIdentity(t *testing.T) {
	tr := NewTracer("n1", 1, nil)
	s := tr.Sample(1000)
	if s == nil {
		t.Fatal("sample-every-1 tracer returned nil span")
	}
	s.Mark(KindQueue, "b1", 1500)  // 500 queue
	s.Mark(KindProc, "b1", 1700)   // 200 proc
	s.Mark(KindNet, "link1", 2700) // 1000 net
	s.Mark(KindQueue, "b2", 2750)  // 50 queue
	tr.Complete(s, "out", 3000)    // 250 residual proc

	q, p, n := s.Components()
	if q != 550 || p != 450 || n != 1000 {
		t.Errorf("components = %d/%d/%d, want 550/450/1000", q, p, n)
	}
	if got := q + p + n; got != s.Total() {
		t.Errorf("sum %d != total %d", got, s.Total())
	}
	if s.Total() != 2000 || !s.Done() {
		t.Errorf("total=%d done=%v", s.Total(), s.Done())
	}
	// Marks after Finish are ignored.
	s.Mark(KindProc, "late", 9999)
	if s.Proc != 450 {
		t.Error("mark after Finish mutated the span")
	}
}

func TestSpanZeroSegmentsRecordNoStages(t *testing.T) {
	s := &Span{ID: 1, Birth: 100, Cursor: 100}
	s.Mark(KindQueue, "b", 100) // zero-length
	s.Mark(KindProc, "b", 150)
	if len(s.Stages) != 1 {
		t.Fatalf("stages = %d, want 1 (zero segments skipped)", len(s.Stages))
	}
	if s.Stages[0].Kind != KindProc || s.Stages[0].Dur != 50 {
		t.Errorf("stage = %+v", s.Stages[0])
	}
}

func TestSpanStageCap(t *testing.T) {
	s := &Span{Birth: 0}
	for i := int64(1); i <= maxStages+50; i++ {
		s.Mark(KindQueue, "b", i)
	}
	if len(s.Stages) != maxStages {
		t.Errorf("stages = %d, want capped at %d", len(s.Stages), maxStages)
	}
	if s.Queue != maxStages+50 {
		t.Errorf("totals stopped accumulating at the cap: %d", s.Queue)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := NewTracer("n1", 4, nil)
	sampled := 0
	for i := 0; i < 100; i++ {
		if tr.Sample(int64(i)) != nil {
			sampled++
		}
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 with every=4, want 25", sampled)
	}
	// IDs are unique and carry the node salt.
	a, b := NewTracer("x", 1, nil).Sample(0), NewTracer("y", 1, nil).Sample(0)
	if a.ID == b.ID {
		t.Error("IDs from distinct nodes collide")
	}
}

func TestNilTracerAndNilSpanAreSafe(t *testing.T) {
	var tr *Tracer
	if tr.Sample(0) != nil {
		t.Error("nil tracer sampled")
	}
	tr.Complete(&Span{}, "out", 1)
	tr.Annotate("x", 1)
	if tr.Node() != "" || tr.Recorder() != nil {
		t.Error("nil tracer accessors")
	}
	var s *Span
	s.Mark(KindQueue, "b", 1)
	s.Finish("out", 2)
	if s.Done() {
		t.Error("nil span done")
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r := NewRecorder(16)
	for i := 0; i < 40; i++ {
		r.Add(Event{Start: int64(i)})
	}
	evs := r.Events()
	if len(evs) != 16 || r.Len() != 16 {
		t.Fatalf("len = %d/%d, want 16", len(evs), r.Len())
	}
	if r.Total() != 40 {
		t.Errorf("total = %d, want 40", r.Total())
	}
	for i, ev := range evs {
		if ev.Start != int64(24+i) {
			t.Fatalf("event %d start = %d, want %d (oldest-first)", i, ev.Start, 24+i)
		}
	}
}

func TestCompleteFeedsRecorder(t *testing.T) {
	rec := NewRecorder(64)
	tr := NewTracer("n1", 1, rec)
	s := tr.Sample(0)
	s.Mark(KindQueue, "b1", 10)
	tr.Complete(s, "out", 30)
	evs := rec.Events()
	if len(evs) != 3 { // queue stage, residual proc stage, deliver summary
		t.Fatalf("recorder events = %d, want 3: %+v", len(evs), evs)
	}
	last := evs[len(evs)-1]
	if last.Kind != KindDeliver || last.Dur != 30 || last.TraceID != s.ID {
		t.Errorf("deliver summary = %+v", last)
	}
	// A second Complete must not double-record.
	tr.Complete(s, "out", 99)
	if rec.Total() != 3 {
		t.Error("double Complete re-recorded the span")
	}
}

func TestMergeSortsAcrossRecorders(t *testing.T) {
	a, b := NewRecorder(16), NewRecorder(16)
	a.Add(Event{Start: 5, Node: "a"})
	b.Add(Event{Start: 3, Node: "b"})
	a.Add(Event{Start: 9, Node: "a"})
	got := Merge(a, b, nil)
	if len(got) != 3 || got[0].Start != 3 || got[2].Start != 9 {
		t.Errorf("merge = %+v", got)
	}
}

func TestChromeTraceValidJSON(t *testing.T) {
	rec := NewRecorder(64)
	tr := NewTracer("node-a", 1, rec)
	s := tr.Sample(0)
	s.Mark(KindQueue, "b1", 1000)
	s.Mark(KindNet, "link", 3000)
	tr.Complete(s, "out", 4000)
	tr.Annotate("crash n2", 3500)

	raw := ChromeTrace(rec.Events())
	var arr []map[string]any
	if err := json.Unmarshal(raw, &arr); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v\n%s", err, raw)
	}
	var phX, phI, phM int
	for _, ev := range arr {
		switch ev["ph"] {
		case "X":
			phX++
			if ev["dur"] == nil {
				t.Errorf("complete event without dur: %v", ev)
			}
		case "i":
			phI++
		case "M":
			phM++
		}
	}
	if phX != 4 || phI != 1 || phM < 2 {
		t.Errorf("event mix X=%d i=%d M=%d from %s", phX, phI, phM, raw)
	}
}

func TestFormatEvents(t *testing.T) {
	out := FormatEvents([]Event{{Node: "n1", Name: "b1", Kind: KindQueue, Start: 10, Dur: 5}})
	if !strings.Contains(out, "queue") || !strings.Contains(out, "b1") {
		t.Errorf("format: %q", out)
	}
}
