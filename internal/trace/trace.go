// Package trace is the causal tracing substrate the load-management loop
// of §7.1 needs: before a node can decide to slide or split boxes it must
// know *where* output latency comes from — queue wait, box processing, or
// network transfer. A Span rides on each sampled tuple from ingest to
// delivery and decomposes its end-to-end latency into those three
// components with an accounting identity that holds by construction:
// every mark advances a cursor and charges the elapsed segment to exactly
// one component, so Queue + Proc + Net always equals delivery time minus
// birth time, on any clock (virtual or wall) whose reads are monotonic
// along the tuple's path.
//
// The package is a leaf: it imports nothing from the repository, so the
// stream, transport, engine, and core layers can all depend on it.
package trace

import (
	"fmt"
	"hash/fnv"
	"strings"
	"sync/atomic"
)

// Kind classifies a latency segment or recorder event.
type Kind uint8

const (
	// KindQueue is time spent waiting in a box input queue.
	KindQueue Kind = iota
	// KindProc is box processing time.
	KindProc
	// KindNet is network transfer: serialization, flight time, and any
	// admission delay before the receiving engine saw the tuple.
	KindNet
	// KindDeliver is the whole-span summary emitted when a traced tuple
	// reaches an application output.
	KindDeliver
	// KindMark is an instantaneous annotation: a fault, an oracle
	// violation, a drop — anything worth a line in the flight recorder.
	KindMark
)

// String names the kind for dumps and Chrome trace categories.
func (k Kind) String() string {
	switch k {
	case KindQueue:
		return "queue"
	case KindProc:
		return "proc"
	case KindNet:
		return "net"
	case KindDeliver:
		return "deliver"
	case KindMark:
		return "mark"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// maxStages bounds the per-span detail so a pathological cycle cannot
// grow a span without bound; totals keep accumulating past the cap.
const maxStages = 128

// Stage is one attributed segment of a span's journey.
type Stage struct {
	Kind  Kind
	Name  string // box id, link label, or output name
	Start int64  // ns, in the clock domain the segment was measured in
	Dur   int64  // ns
	// Worker identifies which engine worker executed the segment (1-based;
	// 0 means the serial path). Stage detail is node-local and never
	// crosses the wire, so this field does not affect the codec.
	Worker int
	// Replica is the 1-based ordinal of the key-partition replica that
	// executed the segment when the box was split (0 = an unsplit box),
	// so a Chrome trace can show which shard a tuple's key landed on.
	Replica int
}

// Span is the per-tuple trace context. It is created by a Tracer at
// ingest (or reconstructed by the transport codec on receive), shared by
// pointer as the tuple moves through queues and boxes, and finalized when
// the tuple reaches an application output. Spans are not safe for
// concurrent mutation; the engine is single-threaded and cross-process
// hops serialize the span into the wire format, so no two goroutines
// ever mark the same span.
type Span struct {
	ID    uint64
	Birth int64 // ns, the tuple's TS when tracing began
	// Cursor is the end of the last attributed segment. The next mark
	// charges [Cursor, now] to its component.
	Cursor int64
	// Queue, Proc, and Net are the accumulated components in ns.
	Queue, Proc, Net int64
	// End is the delivery time; zero until Finish.
	End int64
	// Stages is the bounded per-segment detail (summaries survive even
	// when it caps out).
	Stages []Stage

	done bool
}

// Mark charges the segment from the span's cursor to now against the
// given component and advances the cursor. Zero-length segments update
// the cursor but record no stage.
func (s *Span) Mark(kind Kind, name string, now int64) {
	s.MarkWorker(kind, name, 0, now)
}

// MarkWorker is Mark with worker attribution: the parallel engine stamps
// each segment with the 1-based id of the worker that executed it, so a
// Chrome trace can lane spans by worker and contention is visible.
func (s *Span) MarkWorker(kind Kind, name string, worker int, now int64) {
	s.MarkReplica(kind, name, worker, 0, now)
}

// MarkReplica is MarkWorker with key-partition attribution: segments
// executed by a split box's replica carry the replica's 1-based ordinal,
// so traces distinguish which shard served a tuple.
func (s *Span) MarkReplica(kind Kind, name string, worker, replica int, now int64) {
	if s == nil || s.done {
		return
	}
	d := now - s.Cursor
	switch kind {
	case KindQueue:
		s.Queue += d
	case KindProc:
		s.Proc += d
	case KindNet:
		s.Net += d
	default:
		return
	}
	if d != 0 && len(s.Stages) < maxStages {
		s.Stages = append(s.Stages, Stage{Kind: kind, Name: name, Start: s.Cursor, Dur: d, Worker: worker, Replica: replica})
	}
	s.Cursor = now
}

// Finish closes the span at an application output, charging any residual
// segment since the last mark to processing (the final box's emit path).
func (s *Span) Finish(output string, now int64) {
	if s == nil || s.done {
		return
	}
	s.Mark(KindProc, output, now)
	s.End = now
	s.done = true
}

// Done reports whether the span has been finished.
func (s *Span) Done() bool { return s != nil && s.done }

// Total returns the end-to-end latency of a finished span.
func (s *Span) Total() int64 { return s.End - s.Birth }

// Components returns the queue/proc/net decomposition. For a finished
// span, q+p+n == Total() exactly.
func (s *Span) Components() (q, p, n int64) { return s.Queue, s.Proc, s.Net }

// Tracer decides which tuples get spans and allocates their identities.
// A nil *Tracer is the disabled state: every call is safe and does
// nothing, so call sites pay only a nil check when tracing is off.
type Tracer struct {
	node  string
	every uint64
	n     atomic.Uint64
	ids   atomic.Uint64
	salt  uint64
	rec   *Recorder
}

// NewTracer returns a tracer for one node that samples every'th ingested
// tuple (1 traces everything; 0 is treated as 1) and records completed
// spans and annotations into rec (which may be nil).
func NewTracer(node string, every int, rec *Recorder) *Tracer {
	if every < 1 {
		every = 1
	}
	h := fnv.New64a()
	h.Write([]byte(node))
	return &Tracer{
		node:  node,
		every: uint64(every),
		salt:  h.Sum64() << 40, // node-distinct high bits keep IDs unique across processes
		rec:   rec,
	}
}

// Node returns the tracer's node identity.
func (t *Tracer) Node() string {
	if t == nil {
		return ""
	}
	return t.node
}

// Recorder returns the tracer's flight recorder (nil when absent).
func (t *Tracer) Recorder() *Recorder {
	if t == nil {
		return nil
	}
	return t.rec
}

// Sample returns a fresh span for a tuple born at birth, or nil when the
// tuple is not sampled.
func (t *Tracer) Sample(birth int64) *Span {
	if t == nil {
		return nil
	}
	if t.n.Add(1)%t.every != 0 {
		return nil
	}
	return &Span{
		ID:     t.salt | (t.ids.Add(1) & (1<<40 - 1)),
		Birth:  birth,
		Cursor: birth,
	}
}

// Complete finalizes a span delivered to the named output at now and
// writes its stages plus a summary event into the flight recorder.
func (t *Tracer) Complete(s *Span, output string, now int64) {
	if t == nil || s == nil || s.done {
		return
	}
	s.Finish(output, now)
	if t.rec == nil {
		return
	}
	for _, st := range s.Stages {
		t.rec.Add(Event{TraceID: s.ID, Node: t.node, Name: st.Name, Kind: st.Kind,
			Start: st.Start, Dur: st.Dur, Worker: st.Worker, Replica: st.Replica})
	}
	t.rec.Add(Event{TraceID: s.ID, Node: t.node, Name: output, Kind: KindDeliver,
		Start: s.Birth, Dur: s.End - s.Birth})
}

// Annotate drops an instantaneous mark (fault, violation, drop) into the
// flight recorder, outside any span.
func (t *Tracer) Annotate(name string, now int64) {
	if t == nil || t.rec == nil {
		return
	}
	t.rec.Add(Event{Node: t.node, Name: name, Kind: KindMark, Start: now})
}

// AnnotateID is Annotate carrying an explicit id in the mark's TraceID
// slot. The event journal's correlation ids use the same node-salted
// scheme as span ids, so a control-plane decision (journal event) and
// its trace mark (split installed, fault injected) share one id and a
// post-mortem can join the two timelines.
func (t *Tracer) AnnotateID(id uint64, name string, now int64) {
	if t == nil || t.rec == nil {
		return
	}
	t.rec.Add(Event{TraceID: id, Node: t.node, Name: name, Kind: KindMark, Start: now})
}

// FormatEvents renders events one per line for violation dumps and logs.
func FormatEvents(events []Event) string {
	var b strings.Builder
	for _, ev := range events {
		fmt.Fprintf(&b, "%12d %-8s %-10s %-24s dur=%-10d trace=%d\n",
			ev.Start, ev.Node, ev.Kind, ev.Name, ev.Dur, ev.TraceID)
	}
	return b.String()
}
