package trace

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event format (the JSON array flavor): each complete
// segment becomes a ph:"X" event, each instantaneous annotation a ph:"i"
// event, and metadata events name the processes so Perfetto / chrome
// about://tracing shows one row group per node with one thread lane per
// box, link, or output. Timestamps are microseconds (float), which the
// format requires.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant-event scope
	Args map[string]any `json:"args,omitempty"`
}

// ChromeTrace renders events as a Chrome trace-event JSON array, viewable
// in Perfetto (ui.perfetto.dev) or chrome://tracing.
func ChromeTrace(events []Event) []byte {
	type lane struct{ node, name string }
	pids := map[string]int{}
	tids := map[lane]int{}
	var out []chromeEvent

	pidOf := func(node string) int {
		if id, ok := pids[node]; ok {
			return id
		}
		id := len(pids) + 1
		pids[node] = id
		return id
	}
	tidOf := func(node, name string) int {
		l := lane{node, name}
		if id, ok := tids[l]; ok {
			return id
		}
		id := len(tids) + 1
		tids[l] = id
		return id
	}

	for _, ev := range events {
		ce := chromeEvent{
			Name: ev.Name,
			Cat:  ev.Kind.String(),
			TS:   float64(ev.Start) / 1e3,
			PID:  pidOf(ev.Node),
			TID:  tidOf(ev.Node, ev.Name),
		}
		if ev.TraceID != 0 {
			ce.Args = map[string]any{"trace": ev.TraceID}
		}
		if ev.Worker != 0 {
			if ce.Args == nil {
				ce.Args = map[string]any{}
			}
			ce.Args["worker"] = ev.Worker
		}
		if ev.Replica != 0 {
			if ce.Args == nil {
				ce.Args = map[string]any{}
			}
			ce.Args["replica"] = ev.Replica
		}
		if ev.Kind == KindMark {
			ce.Ph, ce.S = "i", "p"
		} else {
			ce.Ph = "X"
			ce.Dur = float64(ev.Dur) / 1e3
		}
		out = append(out, ce)
	}

	// Metadata: stable process and thread names.
	nodes := make([]string, 0, len(pids))
	for n := range pids {
		nodes = append(nodes, n)
	}
	sort.Strings(nodes)
	for _, n := range nodes {
		out = append(out, chromeEvent{
			Name: "process_name", Ph: "M", PID: pids[n],
			Args: map[string]any{"name": n},
		})
	}
	lanes := make([]lane, 0, len(tids))
	for l := range tids {
		lanes = append(lanes, l)
	}
	sort.Slice(lanes, func(i, j int) bool {
		if lanes[i].node != lanes[j].node {
			return lanes[i].node < lanes[j].node
		}
		return lanes[i].name < lanes[j].name
	})
	for _, l := range lanes {
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", PID: pids[l.node], TID: tids[l],
			Args: map[string]any{"name": l.name},
		})
	}

	b, err := json.Marshal(out)
	if err != nil {
		return []byte("[]") // unreachable: all fields are marshalable
	}
	return b
}

// WriteChrome writes the Chrome trace-event JSON for events to w.
func WriteChrome(w io.Writer, events []Event) error {
	_, err := w.Write(ChromeTrace(events))
	return err
}
