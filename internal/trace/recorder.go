package trace

import (
	"sort"
	"sync"
)

// Event is one flight-recorder entry: an attributed latency segment, a
// delivery summary, or an instantaneous annotation.
type Event struct {
	TraceID uint64 `json:"trace,omitempty"`
	Node    string `json:"node"`
	Name    string `json:"name"`
	Kind    Kind   `json:"kind"`
	Start   int64  `json:"start"`            // ns
	Dur     int64  `json:"dur"`              // ns, 0 for instantaneous marks
	Worker  int    `json:"worker,omitempty"`  // engine worker id, 0 = serial path
	Replica int    `json:"replica,omitempty"` // key-partition replica ordinal, 0 = unsplit
}

// Recorder is a fixed-size flight-recorder ring: the last N events, cheap
// to append to (one short critical section, no allocation after
// construction), always available for a post-mortem dump. It deliberately
// sits outside any simulated failure domain — a crashed SimNode keeps its
// recorder, exactly like a black box surviving the airframe.
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever added
}

// NewRecorder returns a ring holding the most recent n events (minimum 16).
func NewRecorder(n int) *Recorder {
	if n < 16 {
		n = 16
	}
	return &Recorder{buf: make([]Event, n)}
}

// Add appends one event, overwriting the oldest when full.
func (r *Recorder) Add(ev Event) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = ev
	r.next++
	r.mu.Unlock()
}

// Len returns how many events are currently retained.
func (r *Recorder) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.next < uint64(len(r.buf)) {
		return int(r.next)
	}
	return len(r.buf)
}

// Total returns how many events were ever added (including overwritten).
func (r *Recorder) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.next
}

// Events returns the retained events oldest-first.
func (r *Recorder) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := uint64(len(r.buf))
	if r.next < n {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		out = append(out, r.buf[(r.next+i)%n])
	}
	return out
}

// Merge combines the retained events of several recorders into one
// time-sorted slice — the cluster-wide view a post-mortem wants.
func Merge(recs ...*Recorder) []Event {
	var out []Event
	for _, r := range recs {
		if r != nil {
			out = append(out, r.Events()...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}
