package netsim

import "testing"

// TestCrashWithInFlightDeliveries: messages already serialized onto the
// link when the destination crashes are discarded at arrival, counted, and
// never reach the handler; messages sent after the crash are also lost.
func TestCrashWithInFlightDeliveries(t *testing.T) {
	s, r := twoNodes(t, 0, 1000, 0)
	s.Send("a", "b", 10, "in-flight")
	s.Schedule(500, func() { s.Crash("b") })
	s.Schedule(600, func() { s.Send("a", "b", 10, "after-crash") })
	s.Run(0)
	if len(r.msgs) != 0 {
		t.Fatalf("crashed node received %v", r.msgs)
	}
	delivered, droppedDown := s.NodeStats("b")
	if delivered != 0 || droppedDown != 2 {
		t.Errorf("stats delivered=%d droppedDown=%d, want 0/2", delivered, droppedDown)
	}
}

// TestPartitionOfDownNode: cutting a link whose endpoint is already
// crashed must be safe, persist across restart, and drop sends until
// healed.
func TestPartitionOfDownNode(t *testing.T) {
	s, r := twoNodes(t, 0, 1000, 0)
	s.Crash("b")
	s.Partition("a", "b", true) // partition of an already-down node
	s.Restart("b")
	s.Send("a", "b", 10, "while-cut")
	s.Run(0)
	if len(r.msgs) != 0 {
		t.Fatalf("cut link delivered %v", r.msgs)
	}
	l, _ := s.LinkStats("a", "b")
	if l.Dropped != 1 {
		t.Errorf("cut link dropped = %d, want 1", l.Dropped)
	}
	s.Partition("a", "b", false)
	s.Send("a", "b", 10, "after-heal")
	s.Run(0)
	if len(r.msgs) != 1 || r.msgs[0] != "after-heal" {
		t.Errorf("after heal got %v", r.msgs)
	}
}

// TestRestartRacesScheduledDelivery: a message in flight when the node
// crashes is delivered if the restart lands before the arrival, and
// dropped if the restart lands after — decided deterministically by the
// event order, never by wall-clock races.
func TestRestartRacesScheduledDelivery(t *testing.T) {
	// Restart before arrival: delivered.
	s1, r1 := twoNodes(t, 0, 1000, 0)
	s1.Send("a", "b", 10, "m")
	s1.Schedule(100, func() { s1.Crash("b") })
	s1.Schedule(900, func() { s1.Restart("b") })
	s1.Run(0)
	if len(r1.msgs) != 1 {
		t.Fatalf("restart-before-arrival: got %v, want delivery", r1.msgs)
	}

	// Restart after arrival: dropped.
	s2, r2 := twoNodes(t, 0, 1000, 0)
	s2.Send("a", "b", 10, "m")
	s2.Schedule(100, func() { s2.Crash("b") })
	s2.Schedule(1100, func() { s2.Restart("b") })
	s2.Run(0)
	if len(r2.msgs) != 0 {
		t.Fatalf("restart-after-arrival: got %v, want drop", r2.msgs)
	}

	// Restart and arrival at the same timestamp: the event scheduled
	// first (the send's arrival) runs first — deterministic seq tie-break.
	s3, r3 := twoNodes(t, 0, 1000, 0)
	s3.Send("a", "b", 10, "m")
	s3.Schedule(0, func() { s3.Crash("b") })
	s3.Schedule(1000, func() { s3.Restart("b") })
	s3.Run(0)
	if len(r3.msgs) != 0 {
		t.Fatalf("same-instant tie must resolve by schedule order, got %v", r3.msgs)
	}
}

// TestZeroBandwidthLink: BytesPerSec = 0 means infinite bandwidth — no
// serialization delay, only propagation delay, so arbitrarily large
// messages cross in exactly one delay.
func TestZeroBandwidthLink(t *testing.T) {
	s, r := twoNodes(t, 0, 5000, 0)
	s.Send("a", "b", 1<<30, "huge")
	s.Run(0)
	if len(r.msgs) != 1 || r.times[0] != 5000 {
		t.Errorf("zero-bandwidth link: %d msgs at %v, want 1 at 5000", len(r.msgs), r.times)
	}
}

// TestSetLossRuntime: flipping a link lossy mid-run drops messages;
// restoring loss to 0 stops the dropping.
func TestSetLossRuntime(t *testing.T) {
	s, r := twoNodes(t, 0, 10, 0)
	s.SetLoss("a", "b", 1.0) // always drop
	for i := 0; i < 20; i++ {
		s.Send("a", "b", 1, "lossy")
	}
	s.Run(0)
	if len(r.msgs) != 0 {
		t.Fatalf("loss=1 delivered %d", len(r.msgs))
	}
	s.SetLoss("a", "b", 0)
	for i := 0; i < 20; i++ {
		s.Send("a", "b", 1, "clean")
	}
	s.Run(0)
	if len(r.msgs) != 20 {
		t.Errorf("loss=0 delivered %d, want 20", len(r.msgs))
	}
}

// TestFaultHooksAndCutAll: observers see each fault exactly once with the
// right classification, and CutAll isolates a node from every peer.
func TestFaultHooksAndCutAll(t *testing.T) {
	s := New(1)
	var got []FaultEvent
	for _, id := range []string{"x", "y", "z"} {
		s.AddNode(id, func(string, any, int) {})
	}
	s.Connect("x", "y", 0, 10, 0)
	s.Connect("x", "z", 0, 10, 0)
	s.OnFault(func(ev FaultEvent) { got = append(got, ev) })

	s.Crash("x")
	s.Crash("x") // idempotent: no second event
	s.Restart("x")
	s.CutAll("x", true)
	if err := s.Send("x", "y", 1, "m"); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	ly, _ := s.LinkStats("x", "y")
	if ly.Dropped != 1 {
		t.Error("CutAll should cut x->y")
	}
	s.CutAll("x", false)
	s.SetLoss("x", "y", 0.5)

	kinds := map[FaultKind]int{}
	for _, ev := range got {
		kinds[ev.Kind]++
	}
	if kinds[FaultCrash] != 1 || kinds[FaultRestart] != 1 {
		t.Errorf("crash/restart events = %d/%d, want 1/1", kinds[FaultCrash], kinds[FaultRestart])
	}
	if kinds[FaultPartition] != 2 || kinds[FaultHeal] != 2 {
		t.Errorf("partition/heal events = %d/%d, want 2/2 (two peers)", kinds[FaultPartition], kinds[FaultHeal])
	}
	if kinds[FaultLoss] != 1 {
		t.Errorf("loss events = %d, want 1", kinds[FaultLoss])
	}
}
