package netsim

import (
	"testing"
)

type recorder struct {
	msgs  []any
	times []int64
	froms []string
}

func (r *recorder) handler(s *Sim) Handler {
	return func(from string, payload any, _ int) {
		r.msgs = append(r.msgs, payload)
		r.times = append(r.times, s.Now())
		r.froms = append(r.froms, from)
	}
}

func twoNodes(t *testing.T, bw float64, delay int64, loss float64) (*Sim, *recorder) {
	t.Helper()
	s := New(1)
	r := &recorder{}
	if _, err := s.AddNode("a", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := s.AddNode("b", r.handler(s)); err != nil {
		t.Fatal(err)
	}
	if err := s.Connect("a", "b", bw, delay, loss); err != nil {
		t.Fatal(err)
	}
	return s, r
}

func TestDeliveryWithDelay(t *testing.T) {
	s, r := twoNodes(t, 0, 500, 0)
	if err := s.Send("a", "b", 100, "hello"); err != nil {
		t.Fatal(err)
	}
	s.Run(0)
	if len(r.msgs) != 1 || r.msgs[0] != "hello" || r.froms[0] != "a" {
		t.Fatalf("delivery wrong: %+v", r)
	}
	if r.times[0] != 500 {
		t.Errorf("arrival at %d, want 500 (infinite bandwidth)", r.times[0])
	}
}

func TestBandwidthSerialization(t *testing.T) {
	// 1000 bytes/sec, two 500-byte messages: first occupies the link for
	// 0.5s, the second queues behind it and arrives at 1.0s (+delay 0).
	s, r := twoNodes(t, 1000, 0, 0)
	s.Send("a", "b", 500, 1)
	s.Send("a", "b", 500, 2)
	s.Run(0)
	if len(r.times) != 2 {
		t.Fatalf("deliveries = %d", len(r.times))
	}
	if r.times[0] != 5e8 || r.times[1] != 1e9 {
		t.Errorf("times = %v, want [5e8 1e9]", r.times)
	}
	l, _ := s.LinkStats("a", "b")
	if l.BytesSent != 1000 || l.MsgsSent != 2 {
		t.Errorf("link stats = %+v", l)
	}
}

func TestOrderingIsFIFOPerLink(t *testing.T) {
	s, r := twoNodes(t, 1e6, 100, 0)
	for i := 0; i < 20; i++ {
		s.Send("a", "b", 10, i)
	}
	s.Run(0)
	for i, m := range r.msgs {
		if m.(int) != i {
			t.Fatalf("reordered: msg %d = %v", i, m)
		}
	}
}

func TestLoss(t *testing.T) {
	s, r := twoNodes(t, 0, 0, 0.5)
	for i := 0; i < 1000; i++ {
		s.Send("a", "b", 1, i)
	}
	s.Run(0)
	got := len(r.msgs)
	if got < 350 || got > 650 {
		t.Errorf("with 50%% loss, delivered %d of 1000", got)
	}
	l, _ := s.LinkStats("a", "b")
	if l.Dropped+l.MsgsSent != 1000 {
		t.Errorf("accounting: dropped %d + sent %d != 1000", l.Dropped, l.MsgsSent)
	}
}

func TestCrashDropsDeliveries(t *testing.T) {
	s, r := twoNodes(t, 0, 100, 0)
	s.Send("a", "b", 1, "before")
	s.Run(0)
	s.Crash("b")
	if !s.Down("b") {
		t.Fatal("b should be down")
	}
	s.Send("a", "b", 1, "while down")
	s.Run(0)
	s.Restart("b")
	s.Send("a", "b", 1, "after")
	s.Run(0)
	if len(r.msgs) != 2 || r.msgs[1] != "after" {
		t.Errorf("msgs = %v", r.msgs)
	}
}

func TestCrashLosesInFlight(t *testing.T) {
	// A message already in flight is lost if the destination is down at
	// its arrival time.
	s, r := twoNodes(t, 0, 1000, 0)
	s.Send("a", "b", 1, "in flight")
	s.Schedule(500, func() { s.Crash("b") })
	s.Run(0)
	if len(r.msgs) != 0 {
		t.Error("in-flight message should be lost on crash")
	}
}

func TestPartition(t *testing.T) {
	s, r := twoNodes(t, 0, 0, 0)
	s.Partition("a", "b", true)
	s.Send("a", "b", 1, "cut")
	s.Run(0)
	if len(r.msgs) != 0 {
		t.Fatal("partitioned link should drop")
	}
	s.Partition("a", "b", false)
	s.Send("a", "b", 1, "healed")
	s.Run(0)
	if len(r.msgs) != 1 {
		t.Fatal("healed link should deliver")
	}
}

func TestScheduleOrderingDeterministic(t *testing.T) {
	s := New(1)
	var order []int
	// Same timestamp: insertion order must win, repeatably.
	s.Schedule(100, func() { order = append(order, 1) })
	s.Schedule(100, func() { order = append(order, 2) })
	s.Schedule(50, func() { order = append(order, 0) })
	s.Run(0)
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Errorf("order = %v", order)
	}
	if s.Now() != 100 {
		t.Errorf("clock = %d", s.Now())
	}
}

func TestRunUntilBound(t *testing.T) {
	s := New(1)
	ran := 0
	s.Schedule(100, func() { ran++ })
	s.Schedule(900, func() { ran++ })
	s.Run(500)
	if ran != 1 || s.Now() != 500 {
		t.Errorf("ran=%d now=%d", ran, s.Now())
	}
	if s.Pending() != 1 {
		t.Errorf("pending = %d", s.Pending())
	}
	s.Run(0)
	if ran != 2 {
		t.Error("second event should run")
	}
}

func TestErrors(t *testing.T) {
	s := New(1)
	s.AddNode("a", nil)
	if _, err := s.AddNode("a", nil); err == nil {
		t.Error("duplicate node should fail")
	}
	if err := s.Connect("a", "ghost", 0, 0, 0); err == nil {
		t.Error("connect to unknown node should fail")
	}
	if err := s.Connect("ghost", "a", 0, 0, 0); err == nil {
		t.Error("connect from unknown node should fail")
	}
	if err := s.Send("a", "ghost", 1, nil); err == nil {
		t.Error("send without link should fail")
	}
	if err := s.SetHandler("ghost", nil); err == nil {
		t.Error("SetHandler on unknown node should fail")
	}
	if err := s.SetHandler("a", func(string, any, int) {}); err != nil {
		t.Error(err)
	}
}
