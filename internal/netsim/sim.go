// Package netsim is a discrete-event simulator of the overlay network that
// Aurora* and Medusa are layered on (§4): named nodes joined by duplex
// links with finite bandwidth, propagation delay, and optional loss. It
// substitutes for the paper's Internet substrate — the algorithms under
// study (load sharing, HA truncation, transport multiplexing) depend only
// on message ordering, capacity, and delay, all of which the simulator
// models explicitly and deterministically.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Event is a scheduled callback.
type event struct {
	at  int64
	seq uint64 // tie-break for determinism
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Handler receives a message delivered to a node.
type Handler func(from string, payload any, size int)

// Node is one simulated host.
type Node struct {
	ID      string
	handler Handler
	down    bool

	// Delivered counts messages handed to the handler; DroppedDown counts
	// messages that arrived while the node was down and were discarded.
	Delivered   int64
	DroppedDown int64
}

// FaultKind classifies an injected fault for observers.
type FaultKind int

const (
	// FaultCrash marks a node down.
	FaultCrash FaultKind = iota
	// FaultRestart brings a node back up.
	FaultRestart
	// FaultPartition cuts both directions of a link.
	FaultPartition
	// FaultHeal restores both directions of a link.
	FaultHeal
	// FaultLoss changes a directed link's drop probability.
	FaultLoss
)

// FaultEvent describes one injected fault: the kind, the node (A) or link
// endpoints (A, B), the new loss rate for FaultLoss, and the virtual time
// at which it was injected.
type FaultEvent struct {
	Kind FaultKind
	A, B string
	Loss float64
	At   int64
}

// Link is one direction of a connection between two nodes.
type Link struct {
	// BytesPerSec is the serialization bandwidth (0 = infinite).
	BytesPerSec float64
	// Delay is the propagation delay in ns.
	Delay int64
	// Loss is the independent drop probability in [0, 1).
	Loss float64

	nextFree  int64
	BytesSent int64
	MsgsSent  int64
	Dropped   int64
	cut       bool
}

type linkKey struct{ from, to string }

// Sim is the simulator: a virtual clock, an event queue, nodes, and links.
type Sim struct {
	now    int64
	seq    uint64
	events eventHeap
	nodes  map[string]*Node
	links  map[linkKey]*Link
	rng    *rand.Rand
	hooks  []func(FaultEvent)
	sends  []func(SendEvent)
}

// New returns an empty simulation with a deterministic RNG.
func New(seed int64) *Sim {
	return &Sim{
		nodes: map[string]*Node{},
		links: map[linkKey]*Link{},
		rng:   rand.New(rand.NewSource(seed)),
	}
}

// Now returns the current virtual time in ns.
func (s *Sim) Now() int64 { return s.now }

// AddNode registers a node with its message handler.
func (s *Sim) AddNode(id string, h Handler) (*Node, error) {
	if _, dup := s.nodes[id]; dup {
		return nil, fmt.Errorf("netsim: duplicate node %q", id)
	}
	n := &Node{ID: id, handler: h}
	s.nodes[id] = n
	return n, nil
}

// SetHandler replaces a node's message handler (used when higher layers
// attach after topology construction).
func (s *Sim) SetHandler(id string, h Handler) error {
	n, ok := s.nodes[id]
	if !ok {
		return fmt.Errorf("netsim: unknown node %q", id)
	}
	n.handler = h
	return nil
}

// Connect creates a duplex link between a and b with the given properties
// in each direction. Connecting the same pair again replaces the links.
func (s *Sim) Connect(a, b string, bytesPerSec float64, delay int64, loss float64) error {
	if _, ok := s.nodes[a]; !ok {
		return fmt.Errorf("netsim: unknown node %q", a)
	}
	if _, ok := s.nodes[b]; !ok {
		return fmt.Errorf("netsim: unknown node %q", b)
	}
	s.links[linkKey{a, b}] = &Link{BytesPerSec: bytesPerSec, Delay: delay, Loss: loss}
	s.links[linkKey{b, a}] = &Link{BytesPerSec: bytesPerSec, Delay: delay, Loss: loss}
	return nil
}

// Neighbors returns the sorted ids of the nodes id has an outgoing link
// to — the peers a gossip round can reach directly.
func (s *Sim) Neighbors(id string) []string {
	var out []string
	for k := range s.links {
		if k.from == id {
			out = append(out, k.to)
		}
	}
	sort.Strings(out)
	return out
}

// LinkStats returns the directed link from a to b for inspection.
func (s *Sim) LinkStats(a, b string) (*Link, bool) {
	l, ok := s.links[linkKey{a, b}]
	return l, ok
}

// NodeStats returns a node's delivery counters.
func (s *Sim) NodeStats(id string) (delivered, droppedDown int64) {
	if n, ok := s.nodes[id]; ok {
		return n.Delivered, n.DroppedDown
	}
	return 0, 0
}

// OnFault registers an observer invoked synchronously for every injected
// fault (Crash, Restart, Partition, SetLoss). Layers above use it to model
// the state consequences of a fault — e.g. a crashed server losing its
// volatile queues — at the exact virtual instant the fault lands.
func (s *Sim) OnFault(fn func(FaultEvent)) {
	s.hooks = append(s.hooks, fn)
}

func (s *Sim) emit(ev FaultEvent) {
	ev.At = s.now
	for _, fn := range s.hooks {
		fn(ev)
	}
}

// SendEvent describes one message admitted to a link: who sent it, when
// it entered the link, and when it will arrive (serialization plus
// propagation). Dropped, cut, and lost messages are not reported.
type SendEvent struct {
	From, To string
	Size     int
	Payload  any
	SentAt   int64 // virtual time the send was issued
	ArriveAt int64 // virtual time the delivery event will fire
}

// OnSend registers an observer invoked synchronously for every message a
// link accepts. The tracing layer uses it to attribute per-link transit
// time without the transport knowing anything about tracing.
func (s *Sim) OnSend(fn func(SendEvent)) {
	s.sends = append(s.sends, fn)
}

// SetLoss changes the drop probability of the directed link from a to b at
// run time (a lossy-link fault). It is a no-op on unknown links.
func (s *Sim) SetLoss(a, b string, loss float64) {
	if l, ok := s.links[linkKey{a, b}]; ok {
		l.Loss = loss
		s.emit(FaultEvent{Kind: FaultLoss, A: a, B: b, Loss: loss})
	}
}

// CutAll cuts (or restores) every link touching the node — a full
// isolation partition. Faults are emitted per affected peer pair once.
func (s *Sim) CutAll(id string, cut bool) {
	seen := map[string]bool{}
	for k, l := range s.links {
		if k.from != id && k.to != id {
			continue
		}
		l.cut = cut
		peer := k.from
		if peer == id {
			peer = k.to
		}
		if !seen[peer] {
			seen[peer] = true
			kind := FaultPartition
			if !cut {
				kind = FaultHeal
			}
			s.emit(FaultEvent{Kind: kind, A: id, B: peer})
		}
	}
}

// Schedule queues fn to run after delay ns of virtual time.
func (s *Sim) Schedule(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now + delay, seq: s.seq, fn: fn})
}

// Send transmits a payload of size bytes from one node to another. The
// message occupies the link for size/bandwidth (serialization: concurrent
// messages queue behind each other, which is how a congested link slows
// everyone down), then arrives after the propagation delay — unless the
// link drops it, the link is cut, or the destination is down at delivery.
func (s *Sim) Send(from, to string, size int, payload any) error {
	l, ok := s.links[linkKey{from, to}]
	if !ok {
		return fmt.Errorf("netsim: no link %s -> %s", from, to)
	}
	if l.cut {
		l.Dropped++
		return nil
	}
	if l.Loss > 0 && s.rng.Float64() < l.Loss {
		l.Dropped++
		return nil
	}
	start := s.now
	if l.nextFree > start {
		start = l.nextFree
	}
	var txTime int64
	if l.BytesPerSec > 0 {
		txTime = int64(float64(size) / l.BytesPerSec * 1e9)
	}
	l.nextFree = start + txTime
	l.BytesSent += int64(size)
	l.MsgsSent++
	arrive := l.nextFree + l.Delay
	for _, fn := range s.sends {
		fn(SendEvent{From: from, To: to, Size: size, Payload: payload,
			SentAt: s.now, ArriveAt: arrive})
	}
	s.seq++
	heap.Push(&s.events, &event{at: arrive, seq: s.seq, fn: func() {
		dst := s.nodes[to]
		if dst == nil || dst.handler == nil {
			return
		}
		if dst.down {
			dst.DroppedDown++
			return
		}
		dst.Delivered++
		dst.handler(from, payload, size)
	}})
	return nil
}

// Crash marks a node down, modeling a fail-stop server failure (§6.3).
// Mid-flight semantics are deterministic and evaluated at delivery time:
// a message already in flight toward the node is discarded (and counted in
// DroppedDown) if it arrives while the node is down, but is delivered
// normally if the node restarts before it arrives — exactly as a packet
// reaching a rebooted host would be. New sends toward the node are lost
// the same way. Registered OnFault hooks run synchronously, so the layer
// above can discard the node's volatile state at the crash instant.
func (s *Sim) Crash(id string) {
	if s.setDown(id, true) {
		s.emit(FaultEvent{Kind: FaultCrash, A: id})
	}
}

// Restart brings a crashed node back (with whatever state the layer above
// kept for it — the OnFault crash hook decides what survived).
func (s *Sim) Restart(id string) {
	if s.setDown(id, false) {
		s.emit(FaultEvent{Kind: FaultRestart, A: id})
	}
}

// Down reports whether a node is crashed.
func (s *Sim) Down(id string) bool {
	n, ok := s.nodes[id]
	return ok && n.down
}

// setDown flips a node's liveness, reporting whether the state changed.
func (s *Sim) setDown(id string, down bool) bool {
	n, ok := s.nodes[id]
	if !ok || n.down == down {
		return false
	}
	n.down = down
	return true
}

// Partition cuts or restores both directions between a and b, modeling a
// network partition (communication failure, §6). Partitioning a pair with
// a crashed endpoint is legal: link state and node state are independent,
// so the cut simply persists across the crash and restart.
func (s *Sim) Partition(a, b string, cut bool) {
	changed := false
	if l, ok := s.links[linkKey{a, b}]; ok {
		changed = changed || l.cut != cut
		l.cut = cut
	}
	if l, ok := s.links[linkKey{b, a}]; ok {
		changed = changed || l.cut != cut
		l.cut = cut
	}
	if changed {
		kind := FaultPartition
		if !cut {
			kind = FaultHeal
		}
		s.emit(FaultEvent{Kind: kind, A: a, B: b})
	}
}

// Step executes the next scheduled event; it reports false when the event
// queue is empty.
func (s *Sim) Step() bool {
	if s.events.Len() == 0 {
		return false
	}
	e := heap.Pop(&s.events).(*event)
	if e.at > s.now {
		s.now = e.at
	}
	e.fn()
	return true
}

// Run executes events until the queue is empty or the virtual clock would
// pass until (0 means run to exhaustion). It returns the number of events
// executed.
func (s *Sim) Run(until int64) int {
	n := 0
	for s.events.Len() > 0 {
		if until > 0 && s.events[0].at > until {
			s.now = until
			return n
		}
		s.Step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return s.events.Len() }
