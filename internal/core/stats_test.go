package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/engine"
	"repro/internal/netsim"
	"repro/internal/stream"
)

// TestClusterLoadMapConvergence injects a hotspot (f2 on n2 is 200x more
// expensive than its neighbors) and checks the gossiped statistics plane:
// within a bounded number of gossip rounds every node's LoadMap covers
// the whole cluster, and all nodes converge on the same per-node load
// ranking with the hotspot on top.
func TestClusterLoadMapConvergence(t *testing.T) {
	sim, c := testCluster(t, Config{
		DefaultBoxCost: 1_000,
		BoxCosts:       map[string]int64{"f2": 200_000},
		StatsPeriod:    10e6,
		// Small trains keep one step (train * f2's 200us) well under the
		// stats period, so busy time accrues smoothly across windows.
		NewScheduler: func() engine.Scheduler { return engine.NewTrainScheduler(8) },
	})
	s := newSink()
	c.OnOutput(s.fn)
	drive(sim, c, 2000, 10_000)

	// Bounded convergence: the overlay is fully connected, so one flood
	// after the first publish reaches everyone. Three stats periods give
	// publish + flood + delivery with room to spare.
	sim.Run(3 * 10e6)
	for _, nid := range c.Nodes() {
		if got := c.LoadMap(nid).Len(); got != len(c.Nodes()) {
			t.Fatalf("node %s load map covers %d nodes after 3 gossip rounds, want %d",
				nid, got, len(c.Nodes()))
		}
	}

	// Let the windows fill while n2 grinds its 400ms backlog, then compare
	// every node's view of the cluster.
	sim.Run(250e6)
	want := c.LoadMap("n1").Ranking()
	for _, nid := range c.Nodes() {
		if got := c.LoadMap(nid).Ranking(); !reflect.DeepEqual(got, want) {
			t.Fatalf("node %s ranking %v diverges from n1's %v\nn1 map:\n%smap at %s:\n%s",
				nid, got, want, c.LoadMap("n1"), nid, c.LoadMap(nid))
		}
	}
	if want[0] != "n2" {
		t.Fatalf("ranking %v should put the hotspot n2 first\n%s", want, c.LoadMap("n1"))
	}

	// The hotspot's digest — read from another node's map — must carry a
	// saturated windowed utilization and attribute the load to f2.
	d, ok := c.LoadMap("n3").Get("n2")
	if !ok {
		t.Fatal("n3's map has no digest for n2")
	}
	if d.Util < 0.9 {
		t.Errorf("n2 windowed util = %.3f, want near saturation", d.Util)
	}
	foundF2 := false
	for _, b := range d.Boxes {
		if b.Box == "f2" {
			foundF2 = true
			if b.Load < 0.5 {
				t.Errorf("f2 load share = %.3f, want > 0.5", b.Load)
			}
		}
	}
	if !foundF2 {
		t.Errorf("n2's digest %+v should attribute load to box f2", d)
	}
	if n1d, ok := c.LoadMap("n3").Get("n1"); ok && n1d.Util >= d.Util {
		t.Errorf("n1 util %.3f should stay below hotspot util %.3f", n1d.Util, d.Util)
	}
}

// flapCluster builds the burst-flap fixture: a 6-box chain all on n1 with
// n2 as an idle spare, load sharing armed, and the stats plane sampling at
// the share period. The windowed flag is the only difference between the
// two flap tests.
func flapCluster(t *testing.T, windowed bool) (*netsim.Sim, *Cluster) {
	t.Helper()
	sim := netsim.New(1)
	var ids []string
	var specs []string
	for i := 0; i < 6; i++ {
		ids = append(ids, fmt.Sprintf("f%d", i))
		specs = append(specs, "B < 1000")
	}
	full := newChainBuilder(t, ids, specs).MustBuild()
	assign := map[string]string{}
	for _, id := range ids {
		assign[id] = "n1"
	}
	pol := defaultSharePolicy()
	c, err := NewCluster(sim, full, assign, nil, Config{
		DefaultBoxCost: 40_000, // 6 boxes * 40us = 240us per tuple
		LoadSharing:    &pol,
		SharePeriod:    20e6,
		Nodes:          []string{"n1", "n2"},
		StatsPeriod:    20e6,
		WindowedLoad:   windowed,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Connect("n1", "n2", 0, 50_000, 0); err != nil {
		t.Fatal(err)
	}
	c.Start()
	return sim, c
}

// burst schedules n tuples starting at `at`, gap ns apart — a single load
// spike rather than drive()'s sustained offered load.
func burst(sim *netsim.Sim, c *Cluster, at int64, n int, gap int64) {
	for i := 0; i < n; i++ {
		id := int64(i)
		sim.Schedule(at+int64(i)*gap, func() {
			c.Ingest("in", stream.NewTuple(stream.Int(id), stream.Int(id%60)))
		})
	}
}

// TestClusterBurstFlapsInstantaneous is the control: under point-in-time
// utilization a single one-period burst saturates the reading and the
// daemon moves boxes — the flap §5.2 warns about.
func TestClusterBurstFlapsInstantaneous(t *testing.T) {
	sim, c := flapCluster(t, false)
	// Idle warmup through five share periods, then one burst: 80 tuples *
	// 240us = 19.2ms of work inside the 100..120ms period (util ~0.95).
	burst(sim, c, 101e6, 80, 10_000)
	sim.Run(400e6)
	if c.Moves() == 0 {
		t.Fatal("instantaneous load reading should flap on a one-period burst")
	}
}

// TestClusterWindowedStatsAbsorbBurst is the §5.2 stability fix: the same
// burst diluted across the windowed average (one hot window out of K=4)
// stays far below the high watermark, so no boxes move.
func TestClusterWindowedStatsAbsorbBurst(t *testing.T) {
	sim, c := flapCluster(t, true)
	burst(sim, c, 101e6, 80, 10_000)
	sim.Run(400e6)
	if got := c.Moves(); got != 0 {
		t.Fatalf("windowed load made %d moves on a one-period burst, want 0", got)
	}
}
