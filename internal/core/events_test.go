package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/events"
	"repro/internal/netsim"
)

// TestClusterJournalsFaultAndFailover: a crash leaves a KindFault event
// in the crashed node's journal (the journal is a black box — it
// survives the crash that wiped the engines), and the adopter journals
// the failover replay. Cluster.Events() merges both into one time-sorted
// history.
func TestClusterJournalsFaultAndFailover(t *testing.T) {
	sim, c := testCluster(t, Config{
		K:               1,
		DefaultBoxCost:  5_000,
		FlowPeriod:      2e6,
		HeartbeatPeriod: 1e6,
		DetectTimeout:   3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 2000
	const gap = 20_000
	drive(sim, c, n, gap)
	crashAt := int64(n/2) * gap
	sim.Schedule(crashAt, func() { sim.Crash("n2") })
	sim.Run(2e9)

	j2 := c.Journal("n2")
	if j2 == nil {
		t.Fatal("journal for n2 missing")
	}
	var faulted bool
	for _, ev := range j2.Tail(j2.Len()) {
		if ev.Kind == events.KindFault && ev.Subject == "crash n2" {
			faulted = true
			if ev.Time != crashAt {
				t.Errorf("fault time = %d, want %d", ev.Time, crashAt)
			}
		}
	}
	if !faulted {
		t.Fatalf("crash not journaled on n2: %s", events.Format(j2.Tail(10)))
	}

	recs := c.Recoveries()
	if len(recs) != 1 {
		t.Fatalf("recoveries = %+v", recs)
	}
	adopterJ := c.Journal(recs[0].Adopter)
	var replayEv *events.Event
	for _, ev := range adopterJ.Tail(adopterJ.Len()) {
		if ev.Kind == events.KindHAReplay {
			e := ev
			replayEv = &e
		}
	}
	if replayEv == nil {
		t.Fatalf("failover not journaled on adopter %s: %s",
			recs[0].Adopter, events.Format(adopterJ.Tail(10)))
	}
	if replayEv.Subject != "n2" || replayEv.Detail != "failover" {
		t.Errorf("replay event = %+v", replayEv)
	}
	if int(replayEv.V1) != recs[0].Replayed {
		t.Errorf("replayed in event = %v, recovery says %d", replayEv.V1, recs[0].Replayed)
	}

	merged := c.Events()
	if len(merged) < 2 {
		t.Fatalf("merged cluster events = %d, want >= 2", len(merged))
	}
	for i := 1; i < len(merged); i++ {
		if merged[i].Time < merged[i-1].Time {
			t.Fatal("merged events not time-sorted")
		}
	}
	if c.Journal("ghost") != nil {
		t.Error("unknown node should have nil journal")
	}
}

// TestClusterJournalsOffload: a successful load-share move lands a
// KindOffload event on the offloading node, naming the receiving peer
// and the boxes that moved.
func TestClusterJournalsOffload(t *testing.T) {
	sim := netsim.New(1)
	var ids []string
	var specs []string
	for i := 0; i < 6; i++ {
		ids = append(ids, fmt.Sprintf("f%d", i))
		specs = append(specs, "B < 1000")
	}
	b := newChainBuilder(t, ids, specs)
	full := b.MustBuild()
	assign := map[string]string{}
	for _, id := range ids {
		assign[id] = "n1"
	}
	pol := defaultSharePolicy()
	c, err := NewCluster(sim, full, assign, nil, Config{
		DefaultBoxCost: 40_000,
		LoadSharing:    &pol,
		SharePeriod:    20e6,
		Nodes:          []string{"n1", "n2"},
		EventBuf:       64,
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Connect("n1", "n2", 0, 50_000, 0)
	c.Start()
	s := newSink()
	c.OnOutput(s.fn)
	drive(sim, c, 3000, 100_000)
	sim.Run(5e9)
	if c.Moves() == 0 {
		t.Fatal("overload should trigger at least one load-sharing move")
	}
	j := c.Journal("n1")
	var off *events.Event
	for _, ev := range j.Tail(j.Len()) {
		if ev.Kind == events.KindOffload {
			e := ev
			off = &e
			break
		}
	}
	if off == nil {
		t.Fatalf("offload not journaled: %s", events.Format(j.Tail(10)))
	}
	if off.Subject != "n2" {
		t.Errorf("offload target = %q, want n2", off.Subject)
	}
	if off.Detail == "" {
		t.Error("offload event should name the moved boxes")
	}
	for _, box := range strings.Split(off.Detail, ",") {
		if c.Assignment()[box] == "" {
			t.Errorf("offload names unknown box %q", box)
		}
	}
	if off.V1 <= 0 {
		t.Errorf("offload WorkMoved = %v, want > 0", off.V1)
	}
}
