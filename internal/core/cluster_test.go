package core

import (
	"fmt"
	"testing"

	"repro/internal/netsim"
	"repro/internal/stream"
)

// testCluster builds a 3-node chain over a fully connected overlay.
func testCluster(t *testing.T, cfg Config) (*netsim.Sim, *Cluster) {
	t.Helper()
	sim := netsim.New(1)
	full := chain3(t)
	assign := map[string]string{"f1": "n1", "f2": "n2", "f3": "n3"}
	c, err := NewCluster(sim, full, assign, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]string{{"n1", "n2"}, {"n2", "n3"}, {"n1", "n3"}} {
		if err := sim.Connect(pair[0], pair[1], 0, 100_000, 0); err != nil {
			t.Fatal(err)
		}
	}
	c.Start()
	return sim, c
}

// sink collects output tuples keyed by their A field (a unique id in
// these tests), counting duplicates.
type sink struct {
	seen map[int64]int
	last int64
}

func newSink() *sink { return &sink{seen: map[int64]int{}} }

func (s *sink) fn(_ string, t stream.Tuple, at int64) {
	s.seen[t.Field(0).AsInt()]++
	s.last = at
}

func (s *sink) loss(n int64) (missing, dups int) {
	for i := int64(0); i < n; i++ {
		switch c := s.seen[i]; {
		case c == 0:
			missing++
		case c > 1:
			dups += c - 1
		}
	}
	return
}

// drive schedules n tuples (A = unique id, B = i%60) at the given gap.
func drive(sim *netsim.Sim, c *Cluster, n int, gap int64) {
	for i := 0; i < n; i++ {
		id := int64(i)
		sim.Schedule(int64(i)*gap, func() {
			c.Ingest("in", stream.NewTuple(stream.Int(id), stream.Int(id%60)))
		})
	}
}

func TestClusterEndToEnd(t *testing.T) {
	sim, c := testCluster(t, Config{DefaultBoxCost: 1000})
	s := newSink()
	c.OnOutput(s.fn)
	drive(sim, c, 500, 10_000)
	sim.Run(0)
	// B = id%60; the chain keeps B < 80, 90, 100 -> everything passes.
	missing, dups := s.loss(500)
	if missing != 0 || dups != 0 {
		t.Fatalf("missing=%d dups=%d", missing, dups)
	}
	if s.last == 0 {
		t.Error("outputs should carry delivery times")
	}
	// Tuples crossed two links.
	l, _ := sim.LinkStats("n1", "n2")
	if l.MsgsSent == 0 || l.BytesSent == 0 {
		t.Error("link n1->n2 unused")
	}
}

func TestClusterFiltersDrop(t *testing.T) {
	sim, c := testCluster(t, Config{DefaultBoxCost: 100})
	s := newSink()
	c.OnOutput(s.fn)
	// B spans 0..119: only B<80 survive all three filters.
	for i := 0; i < 240; i++ {
		id := int64(i)
		sim.Schedule(int64(i)*10_000, func() {
			c.Ingest("in", stream.NewTuple(stream.Int(id), stream.Int(id%120)))
		})
	}
	sim.Run(0)
	want := 0
	for i := 0; i < 240; i++ {
		if i%120 < 80 {
			want++
		}
	}
	if len(s.seen) != want {
		t.Errorf("delivered %d ids, want %d", len(s.seen), want)
	}
}

func TestClusterUnknownInput(t *testing.T) {
	_, c := testCluster(t, Config{})
	if err := c.Ingest("nope", stream.NewTuple(stream.Int(1), stream.Int(1))); err == nil {
		t.Error("unknown input should fail")
	}
}

func TestClusterKSafetyCrashMiddle(t *testing.T) {
	sim, c := testCluster(t, Config{
		K:               1,
		DefaultBoxCost:  5_000,
		FlowPeriod:      2e6,
		HeartbeatPeriod: 1e6,
		DetectTimeout:   3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 2000
	const gap = 20_000
	drive(sim, c, n, gap)
	// Crash n2 mid-stream.
	crashAt := int64(n/2) * gap
	sim.Schedule(crashAt, func() { sim.Crash("n2") })
	sim.Run(2e9) // horizon: the HA ticks reschedule forever

	missing, dups := s.loss(n)
	if missing != 0 {
		t.Fatalf("k=1 lost %d tuples (dups=%d)", missing, dups)
	}
	recs := c.Recoveries()
	if len(recs) != 1 || recs[0].Failed != "n2" {
		t.Fatalf("recoveries = %+v", recs)
	}
	if recs[0].Adopter != "n1" {
		t.Errorf("adopter = %s, want upstream n1", recs[0].Adopter)
	}
	if recs[0].DetectedAt < crashAt {
		t.Error("detection before crash?")
	}
	if recs[0].DetectedAt > crashAt+20e6 {
		t.Errorf("detection took %.1fms", float64(recs[0].DetectedAt-crashAt)/1e6)
	}
	t.Logf("k=1 crash: detected after %.2fms, replayed %d, duplicates %d",
		float64(recs[0].DetectedAt-crashAt)/1e6, recs[0].Replayed, dups)
}

func TestClusterKSafetyCrashLastNode(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 1000
	drive(sim, c, n, 20_000)
	sim.Schedule(int64(n/2)*20_000, func() { sim.Crash("n3") })
	sim.Run(2e9)
	missing, _ := s.loss(n)
	if missing != 0 {
		t.Fatalf("crash of output node lost %d tuples", missing)
	}
	recs := c.Recoveries()
	if len(recs) != 1 || recs[0].Adopter != "n2" {
		t.Fatalf("recoveries = %+v", recs)
	}
}

func TestClusterK2DoubleFailure(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 2, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 1500
	const gap = 20_000
	drive(sim, c, n, gap)
	// n2 and n3 fail simultaneously: with k=2, n1 has retained
	// everything n2's unacknowledged output depended on.
	sim.Schedule(int64(n/2)*gap, func() {
		sim.Crash("n2")
		sim.Crash("n3")
	})
	sim.Run(2e9)
	missing, dups := s.loss(n)
	if missing != 0 {
		t.Fatalf("k=2 double failure lost %d tuples", missing)
	}
	if len(c.Recoveries()) != 2 {
		t.Fatalf("recoveries = %+v", c.Recoveries())
	}
	t.Logf("k=2 double crash: duplicates %d", dups)
}

func TestClusterTruncationBoundsLogs(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 1_000,
		FlowPeriod: 1e6, HeartbeatPeriod: 1e6, DetectTimeout: 5e6,
	})
	c.OnOutput(func(string, stream.Tuple, int64) {})
	const n = 5000
	drive(sim, c, n, 10_000)
	maxLog := 0
	// Sample the log size periodically while the run progresses.
	for i := int64(1); i <= 10; i++ {
		sim.Schedule(i*n/10*10_000, func() {
			if l := c.LogTuples("n1"); l > maxLog {
				maxLog = l
			}
		})
	}
	sim.Run(1e9)
	// Without truncation n1 would retain all 5000; flow messages every
	// 1ms (~100 tuples) must keep it well below that.
	if maxLog == 0 || maxLog > n/4 {
		t.Errorf("max log tuples = %d; truncation not bounding the queue", maxLog)
	}
	t.Logf("peak retained log: %d of %d tuples", maxLog, n)
}

func TestClusterWithoutHANoLogs(t *testing.T) {
	sim, c := testCluster(t, Config{K: 0, DefaultBoxCost: 1000})
	c.OnOutput(func(string, stream.Tuple, int64) {})
	drive(sim, c, 200, 10_000)
	sim.Run(0)
	if c.LogTuples("n1")+c.LogTuples("n2") != 0 {
		t.Error("K=0 must not retain output logs")
	}
}

func TestClusterRedeployMovesBox(t *testing.T) {
	sim, c := testCluster(t, Config{DefaultBoxCost: 1000})
	s := newSink()
	c.OnOutput(s.fn)
	drive(sim, c, 200, 10_000)
	sim.Run(0)
	if missing, _ := s.loss(200); missing != 0 {
		t.Fatalf("pre-move missing %d", missing)
	}
	// Slide f2 onto n1 (upstream slide) while quiesced.
	if err := c.Redeploy(map[string]string{"f1": "n1", "f2": "n1", "f3": "n3"}); err != nil {
		t.Fatal(err)
	}
	if c.Assignment()["f2"] != "n1" || c.Moves() != 1 {
		t.Error("assignment not updated")
	}
	// Traffic keeps flowing end to end after the move.
	before := len(s.seen)
	for i := 200; i < 400; i++ {
		id := int64(i)
		sim.Schedule(int64(i-200)*10_000, func() {
			c.Ingest("in", stream.NewTuple(stream.Int(id), stream.Int(id%60)))
		})
	}
	sim.Run(0)
	if missing, _ := s.loss(400); missing != 0 {
		t.Fatalf("post-move missing %d (before move had %d ids)", missing, before)
	}
	// n2 no longer participates: the n2->n3 link stays quiet for new
	// traffic while n1->n3 now carries it.
	l13, _ := sim.LinkStats("n1", "n3")
	if l13.MsgsSent == 0 {
		t.Error("n1->n3 should carry traffic after the slide")
	}
}

func TestClusterEntryForwarding(t *testing.T) {
	// Input enters at an edge node with no boxes; all processing at core.
	sim := netsim.New(1)
	full := chain3(t)
	assign := map[string]string{"f1": "core", "f2": "core", "f3": "core"}
	c, err := NewCluster(sim, full, assign, map[string]string{"in": "edge"}, Config{DefaultBoxCost: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Connect("edge", "core", 1e9, 50_000, 0); err != nil {
		t.Fatal(err)
	}
	c.Start()
	s := newSink()
	c.OnOutput(s.fn)
	drive(sim, c, 300, 10_000)
	sim.Run(0)
	if missing, _ := s.loss(300); missing != 0 {
		t.Fatalf("missing %d", missing)
	}
	l, _ := sim.LinkStats("edge", "core")
	if l.MsgsSent == 0 {
		t.Error("edge->core link should carry the forwarded input")
	}
}

func TestClusterLoadSharing(t *testing.T) {
	// A 6-box chain all on n1; n2 idle. The daemons must move work over.
	sim := netsim.New(1)
	var ids []string
	var specs []string
	for i := 0; i < 6; i++ {
		ids = append(ids, fmt.Sprintf("f%d", i))
		specs = append(specs, "B < 1000")
	}
	b := newChainBuilder(t, ids, specs)
	full := b.MustBuild()
	assign := map[string]string{}
	for _, id := range ids {
		assign[id] = "n1"
	}
	pol := defaultSharePolicy()
	c, err := NewCluster(sim, full, assign, nil, Config{
		DefaultBoxCost: 40_000, // 6 boxes * 40us = 240us per tuple >> 100us gap
		LoadSharing:    &pol,
		SharePeriod:    20e6,
		Nodes:          []string{"n1", "n2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.Connect("n1", "n2", 0, 50_000, 0)
	c.Start()
	s := newSink()
	c.OnOutput(s.fn)
	const n = 3000
	drive(sim, c, n, 100_000)
	sim.Run(5e9)
	if c.Moves() == 0 {
		t.Fatal("overload should trigger at least one load-sharing move")
	}
	onN2 := 0
	for _, node := range c.Assignment() {
		if node == "n2" {
			onN2++
		}
	}
	if onN2 == 0 {
		t.Error("no boxes ended up on n2")
	}
	if c.BusyNs("n2") == 0 {
		t.Error("n2 never did any work")
	}
	t.Logf("moves=%d boxes on n2=%d busy n1=%.1fms n2=%.1fms",
		c.Moves(), onN2, float64(c.BusyNs("n1"))/1e6, float64(c.BusyNs("n2"))/1e6)
}

func TestClusterCatalogTracksPieces(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
	})
	cat := c.Catalog()
	if _, ok := cat.Query("chain"); !ok {
		t.Fatal("query not registered in the catalog")
	}
	info, ok := cat.Stream("in")
	if !ok || info.Locations[0] != "n1" {
		t.Fatalf("input stream location = %+v", info)
	}
	pieces := cat.Pieces("chain")
	if len(pieces) != 3 {
		t.Fatalf("pieces = %+v", pieces)
	}
	// After a failover the catalog reflects the adoption.
	s := newSink()
	c.OnOutput(s.fn)
	drive(sim, c, 500, 20_000)
	sim.Schedule(250*20_000, func() { sim.Crash("n2") })
	sim.Run(1e9)
	pieces = cat.Pieces("chain")
	nodes := map[string]int{}
	for _, p := range pieces {
		nodes[p.Node] += len(p.Boxes)
	}
	if nodes["n2"] != 0 || nodes["n1"] != 2 {
		t.Errorf("catalog after failover: %+v", pieces)
	}
}

func TestClusterPullTruncation(t *testing.T) {
	// The §6.2 alternate technique: upstream queries the downstream's
	// sequence array. Same safety (crash -> zero loss) and the logs stay
	// bounded, without any push-style flow messages.
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
		PullTruncation: true,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 2000
	const gap = 20_000
	drive(sim, c, n, gap)
	maxLog := 0
	for i := int64(1); i <= 10; i++ {
		sim.Schedule(i*n/10*gap, func() {
			if l := c.LogTuples("n1"); l > maxLog {
				maxLog = l
			}
		})
	}
	sim.Schedule(int64(n/2)*gap, func() { sim.Crash("n2") })
	sim.Run(2e9)
	missing, _ := s.loss(n)
	if missing != 0 {
		t.Fatalf("pull-truncation mode lost %d tuples", missing)
	}
	if len(c.Recoveries()) != 1 {
		t.Fatalf("recoveries = %+v", c.Recoveries())
	}
	if maxLog == 0 || maxLog > n/2 {
		t.Errorf("pull truncation not bounding logs: peak %d", maxLog)
	}
}
