package core

import (
	"testing"

	"repro/internal/loadmgr"
	"repro/internal/op"
	"repro/internal/query"
)

// newChainBuilder assembles a linear filter chain bound to input "in" and
// output "out".
func newChainBuilder(t *testing.T, ids []string, preds []string) *query.Builder {
	t.Helper()
	specs := make([]op.Spec, len(ids))
	for i := range ids {
		specs[i] = filterSpec(preds[i])
	}
	return query.NewBuilder("chainN").
		Chain(ids, specs).
		BindInput("in", abSchema, ids[0], 0).
		BindOutput("out", ids[len(ids)-1], 0, nil)
}

// defaultSharePolicy is the watermark policy the load-sharing tests use.
func defaultSharePolicy() loadmgr.Policy {
	return loadmgr.Policy{HighWater: 0.8, LowWater: 0.5, Headroom: 0.5, CooldownPeriods: 2}
}
