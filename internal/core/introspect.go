package core

import (
	"fmt"
	"sort"

	"repro/internal/stream"
)

// Introspection accessors for invariant checking. The chaos harness
// (internal/chaos) drives randomized fault schedules against a Cluster and
// uses these to verify, after every schedule, that the §6 HA machinery
// held: no loss within the k-safety budget, at-most-once delivery past
// recovery boundaries, convergence of the catalog/assignment/routing
// views, and truncation safety of the output logs.

// Resent returns how many tuples the gap-repair path retransmitted from
// retained output logs (lossy links, short partitions).
func (c *Cluster) Resent() uint64 { return c.resent }

// EntryDrops returns how many tuples were offered to Ingest while their
// entry node was down — losses attributable to the data source, outside
// the k-safety boundary.
func (c *Cluster) EntryDrops() uint64 { return c.entryDrops }

// Dropped returns how many tuples arrived at a node with no hosting
// engine to consume them (stale routes during failover windows).
func (c *Cluster) Dropped(node string) uint64 { return c.nodes[node].dropped }

// DedupDuplicates sums the duplicate deliveries suppressed across every
// node and incoming link — replay and retransmission overlap that the
// at-most-once filter absorbed.
func (c *Cluster) DedupDuplicates() uint64 {
	var total uint64
	for _, nid := range c.nodeIDs {
		for _, d := range c.nodes[nid].dedup {
			total += d.Duplicates()
		}
	}
	return total
}

// DedupHoles sums the outstanding loss holes across every incoming link.
// Nonzero after the system settles means a dropped tuple was never
// retransmitted.
func (c *Cluster) DedupHoles() int {
	total := 0
	for _, nid := range c.nodeIDs {
		for _, d := range c.nodes[nid].dedup {
			total += d.Holes()
		}
	}
	return total
}

// QueuedTotal sums the tuples waiting across all alive nodes' engines.
func (c *Cluster) QueuedTotal() int {
	total := 0
	for _, nid := range c.nodeIDs {
		if c.sim.Down(nid) {
			continue
		}
		total += c.nodes[nid].queued()
	}
	return total
}

// SetTruncationAudit installs a hook receiving every tuple any output log
// discards, with the owning node and label. Install it before ingesting:
// logs are created lazily and only logs created after the call are
// audited. The truncation-safety oracle asserts the audited tuples'
// effects all reached the application output.
func (c *Cluster) SetTruncationAudit(fn func(node, label string, dropped []stream.Tuple)) {
	c.truncAudit = fn
	for _, nid := range c.nodeIDs {
		n := c.nodes[nid]
		for label, l := range n.logs {
			nid, lb := n.id, label
			l.SetOnTruncate(func(ts []stream.Tuple) { c.truncAudit(nid, lb, ts) })
		}
	}
}

// InvariantCheck verifies the cluster's structural consistency — the
// convergence oracle's machine-checkable half. It must hold whenever no
// failure is pending recovery:
//
//   - every assigned box is hosted by exactly one node, that node is up,
//     and the box-to-node assignment agrees with the hosting;
//   - the shared catalog's piece locations agree with the hosting;
//   - every cross-link label routes between up nodes and its destination
//     hosts an engine consuming it;
//   - no duplicate filter has admitted a sequence its upstream's log
//     never stamped (stale-incarnation state leaking across a failover).
func (c *Cluster) InvariantCheck() error {
	// Box hosting vs assignment.
	boxHost := map[string]string{}
	for _, nid := range c.nodeIDs {
		n := c.nodes[nid]
		for _, owner := range n.order {
			for _, b := range n.hosts[owner].piece.Boxes() {
				if prev, dup := boxHost[b]; dup {
					return fmt.Errorf("box %s hosted on both %s and %s", b, prev, nid)
				}
				boxHost[b] = nid
			}
		}
	}
	boxes := make([]string, 0, len(c.assign))
	for b := range c.assign {
		boxes = append(boxes, b)
	}
	sort.Strings(boxes)
	for _, b := range boxes {
		host, ok := boxHost[b]
		if !ok {
			return fmt.Errorf("box %s assigned to %s but hosted nowhere", b, c.assign[b])
		}
		if host != c.assign[b] {
			return fmt.Errorf("box %s hosted on %s but assigned to %s", b, host, c.assign[b])
		}
		if c.sim.Down(host) {
			return fmt.Errorf("box %s hosted on down node %s", b, host)
		}
		delete(boxHost, b)
	}
	for b, host := range boxHost {
		return fmt.Errorf("box %s hosted on %s but absent from the assignment", b, host)
	}

	// Catalog agreement.
	catBoxes := map[string]string{}
	for _, p := range c.cat.Pieces(c.full.Name()) {
		for _, b := range p.Boxes {
			catBoxes[b] = p.Node
		}
	}
	for _, b := range boxes {
		if catBoxes[b] != c.assign[b] {
			return fmt.Errorf("catalog places box %s on %q, assignment on %q",
				b, catBoxes[b], c.assign[b])
		}
	}

	// Label routing.
	labels := make([]string, 0, len(c.labelDest))
	for label := range c.labelDest {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		dest := c.labelDest[label]
		if c.sim.Down(dest) {
			return fmt.Errorf("label %s routes to down node %s", label, dest)
		}
		if c.nodes[dest].hostForInput(label) == nil {
			return fmt.Errorf("label %s routes to %s, which hosts no consumer", label, dest)
		}
		if src, ok := c.labelSrc[label]; ok && c.sim.Down(src) {
			return fmt.Errorf("label %s sourced at down node %s", label, src)
		}
	}

	// Per-link sequence sanity.
	for _, label := range labels {
		src, ok := c.labelSrc[label]
		if !ok {
			continue
		}
		dest := c.labelDest[label]
		l, haveLog := c.nodes[src].logs[label]
		d, haveDedup := c.nodes[dest].dedup[label]
		if !haveDedup {
			continue
		}
		if !haveLog {
			if d.Last() > 0 {
				return fmt.Errorf("label %s: receiver admitted seq %d but sender %s has no log",
					label, d.Last(), src)
			}
			continue
		}
		if d.Last() > l.NextSeq()-1 {
			return fmt.Errorf("label %s: receiver admitted seq %d beyond sender's last stamped %d",
				label, d.Last(), l.NextSeq()-1)
		}
	}
	return nil
}
