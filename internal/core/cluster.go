package core

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/catalog"
	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/ha"
	"repro/internal/loadmgr"
	"repro/internal/netsim"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Config tunes a Cluster.
type Config struct {
	// K is the k-safety level of §6.2: the failure of any K servers must
	// not lose messages. 0 disables the HA protocol entirely (no output
	// logs, no dedup, no heartbeats).
	K int
	// FlowPeriod is the interval between flow-message/truncation ticks
	// (default 50ms of virtual time).
	FlowPeriod int64
	// HeartbeatPeriod is the §6.3 heartbeat interval (default 10ms).
	HeartbeatPeriod int64
	// DetectTimeout is the silence after which a downstream neighbor is
	// declared failed (default 3 heartbeat periods).
	DetectTimeout int64
	// DefaultBoxCost and BoxCosts model per-tuple processing cost in ns.
	DefaultBoxCost int64
	BoxCosts       map[string]int64
	// MemoryBudget is each node's storage-manager budget.
	MemoryBudget int
	// NewScheduler builds each engine's scheduler (nil = train scheduler).
	NewScheduler func() engine.Scheduler
	// LoadSharing enables the §5 decentralized load-share daemons with
	// the given policy; SharePeriod is their decision interval.
	LoadSharing *loadmgr.Policy
	SharePeriod int64
	// Nodes adds servers beyond those appearing in the initial
	// assignment — idle capacity the load-share daemons can recruit.
	Nodes []string
	// PullTruncation selects the §6.2 alternate technique: instead of
	// flow messages pushing checkpoints downstream-to-upstream, each
	// server keeps an array of earliest dependent sequence numbers and
	// its upstream neighbors query it periodically, truncating at their
	// convenience.
	PullTruncation bool
	// TraceSample enables causal tracing: every TraceSample'th ingested
	// tuple carries a span decomposing its latency into queue, processing,
	// and network components. 0 disables tracing.
	TraceSample int
	// TraceBuf is the per-node flight-recorder capacity in events
	// (default 4096 when tracing is on).
	TraceBuf int
	// EventBuf is each node's structured event-journal capacity (control
	// decisions: splits, offloads, shed transitions, faults, HA replays).
	// Default 256; the journal is always on — it only hears from control
	// decisions, so its cost is a few writes per decision, not per tuple.
	EventBuf int
	// StatsPeriod enables the statistics plane (§7.1): every StatsPeriod
	// ns each node samples its engines into a windowed store, publishes a
	// load digest, and gossips its map to its overlay neighbors — digests
	// also piggyback on every tuple batch and heartbeat. 0 disables.
	StatsPeriod int64
	// StatsWindow is the windowed store's window width in ns (default
	// StatsPeriod: one sample per window).
	StatsWindow int64
	// StatsWindows is the per-series window ring size (default 8).
	StatsWindows int
	// WindowedK is how many complete windows published digests average
	// over (default StatsWindows/2).
	WindowedK int
	// WindowedLoad makes the load-share daemons decide from the gossiped
	// windowed LoadMap instead of instantaneous utilization — the §5.2
	// stability fix the flap tests pin down. Requires StatsPeriod > 0.
	WindowedLoad bool
	// SLO enables each node's latency-SLO plane: per-output latency
	// sketches recorded at delivery and gossiped in digests, tail
	// attribution over traced spans, and the QoS-headroom forecaster that
	// journals a warning before an output's p99 crosses its latency
	// cliff. Requires StatsPeriod > 0 for cluster-wide convergence (each
	// engine otherwise keeps a private store).
	SLO *engine.SLOConfig
}

func (cfg *Config) fillDefaults() {
	if cfg.FlowPeriod <= 0 {
		cfg.FlowPeriod = 50e6
	}
	if cfg.HeartbeatPeriod <= 0 {
		cfg.HeartbeatPeriod = 10e6
	}
	if cfg.DetectTimeout <= 0 {
		cfg.DetectTimeout = 3 * cfg.HeartbeatPeriod
	}
	if cfg.SharePeriod <= 0 {
		cfg.SharePeriod = 100e6
	}
	if cfg.TraceBuf <= 0 {
		cfg.TraceBuf = 4096
	}
	if cfg.EventBuf <= 0 {
		cfg.EventBuf = 256
	}
	if cfg.StatsPeriod > 0 {
		if cfg.StatsWindow <= 0 {
			cfg.StatsWindow = cfg.StatsPeriod
		}
		if cfg.StatsWindows <= 0 {
			cfg.StatsWindows = 8
		}
	}
}

// Recovery records one failover (§6.3) for the experiment reports.
type Recovery struct {
	Failed     string
	Adopter    string
	DetectedAt int64
	Replayed   int
}

// AppSink receives application output tuples with their delivery time.
type AppSink func(name string, t stream.Tuple, at int64)

// Cluster is Aurora* (§3.1): single-node Aurora servers in one
// administrative domain cooperating to run a query network, built over a
// netsim overlay. Boxes can be placed on arbitrary nodes, repartitioned at
// run time, backed up by their upstream neighbors, and shed between
// pairwise neighbors by the load-share daemons.
type Cluster struct {
	sim     *netsim.Sim
	cfg     Config
	full    *query.Network
	assign  map[string]string
	entryAt map[string]string

	nodes      map[string]*SimNode
	nodeIDs    []string
	labelDest  map[string]string
	labelSrc   map[string]string
	inputEntry map[string]string
	inputOwner map[string]string

	// cat is the intra-participant catalog (§4.1): every node of the
	// domain shares it; it records the query, the content and location
	// of each running piece, and the input streams' entry locations.
	cat *catalog.Intra

	appSink    AppSink
	recovered  map[string]bool
	recoveries []Recovery
	started    bool

	resent     uint64 // tuples retransmitted by gap repair
	entryDrops uint64 // tuples offered while their entry node was down
	truncAudit func(node, label string, dropped []stream.Tuple)

	// load daemon state
	lastBusy map[string]int64
	lastAt   map[string]int64
	lastProc map[string]map[string]int64 // node -> box -> processed count
	cooldown map[string]int
	moves    int
}

// NewCluster partitions the network over the assignment and instantiates
// one SimNode per node (plus pure-forwarding entry nodes). The caller
// connects the overlay links on sim afterwards and then calls Start.
func NewCluster(sim *netsim.Sim, full *query.Network, assign, entryAt map[string]string, cfg Config) (*Cluster, error) {
	cfg.fillDefaults()
	part, err := PartitionNetwork(full, assign, entryAt)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		sim:        sim,
		cfg:        cfg,
		full:       full,
		cat:        catalog.NewIntra("domain"),
		assign:     cloneMap(assign),
		entryAt:    cloneMap(entryAt),
		nodes:      map[string]*SimNode{},
		labelDest:  map[string]string{},
		labelSrc:   map[string]string{},
		inputEntry: map[string]string{},
		inputOwner: map[string]string{},
		recovered:  map[string]bool{},
		lastBusy:   map[string]int64{},
		lastAt:     map[string]int64{},
		lastProc:   map[string]map[string]int64{},
		cooldown:   map[string]int{},
	}
	nodeSet := map[string]bool{}
	for _, nid := range assign {
		nodeSet[nid] = true
	}
	for _, in := range part.Inputs {
		nodeSet[in.Entry] = true
	}
	for _, nid := range cfg.Nodes {
		nodeSet[nid] = true
	}
	for nid := range nodeSet {
		n := newSimNode(c, nid)
		c.nodes[nid] = n
		c.nodeIDs = append(c.nodeIDs, nid)
		nn := n
		if _, err := sim.AddNode(nid, func(from string, payload any, size int) {
			nn.onMessage(from, payload, size)
		}); err != nil {
			return nil, err
		}
	}
	sort.Strings(c.nodeIDs)
	// A crash destroys volatile state the instant it happens: engines,
	// output logs, dedup filters, and detector state are gone, so a later
	// restart cannot resurrect pre-crash memory. The flight recorder is
	// NOT volatile state — it models an external observer (a black box),
	// so fault annotations land in it and survive the crash.
	sim.OnFault(func(ev netsim.FaultEvent) {
		c.annotateFault(ev)
		if n, ok := c.nodes[ev.A]; ok {
			switch ev.Kind {
			case netsim.FaultCrash:
				n.loseVolatileState()
			case netsim.FaultRestart:
				c.handleRestart(ev.A)
			}
		}
	})
	if cfg.TraceSample > 0 {
		// Per-link transit events: every accepted tuple batch leaves a net
		// segment in the sender's flight recorder, so a post-mortem can see
		// traffic that never arrived (crashed or partitioned receivers).
		sim.OnSend(func(ev netsim.SendEvent) {
			tb, ok := ev.Payload.(tupleBatch)
			if !ok {
				return
			}
			n := c.nodes[ev.From]
			if n == nil || n.rec == nil {
				return
			}
			for _, t := range tb.Tuples {
				if t.Span != nil {
					n.rec.Add(trace.Event{TraceID: t.Span.ID, Node: ev.From,
						Name: ev.From + ">" + ev.To, Kind: trace.KindNet,
						Start: ev.SentAt, Dur: ev.ArriveAt - ev.SentAt})
				}
			}
		})
	}
	if err := c.install(part); err != nil {
		return nil, err
	}
	// Populate the catalog: the query, the input streams with their
	// entry locations, and the running pieces.
	if err := c.cat.RegisterQuery(full); err != nil {
		return nil, err
	}
	for _, in := range part.Inputs {
		if err := c.cat.RegisterStream(in.Name, in.Schema, in.Entry); err != nil {
			return nil, err
		}
	}
	c.refreshCatalogPieces()
	return c, nil
}

// annotateFault drops an instantaneous mark into the flight recorder of
// every node the fault touches.
func (c *Cluster) annotateFault(ev netsim.FaultEvent) {
	var name string
	switch ev.Kind {
	case netsim.FaultCrash:
		name = "crash " + ev.A
	case netsim.FaultRestart:
		name = "restart " + ev.A
	case netsim.FaultPartition:
		name = "partition " + ev.A + "|" + ev.B
	case netsim.FaultHeal:
		name = "heal " + ev.A + "|" + ev.B
	case netsim.FaultLoss:
		name = fmt.Sprintf("loss %.2f %s>%s", ev.Loss, ev.A, ev.B)
	}
	for _, id := range []string{ev.A, ev.B} {
		if n, ok := c.nodes[id]; ok {
			n.tracer.Annotate(name, c.sim.Now())
			n.journal.Append(events.Event{
				Time: c.sim.Now(), Kind: events.KindFault, Subject: name,
			})
		}
	}
}

// FlightRecorder returns a node's flight recorder (nil when tracing is
// off or the node is unknown).
func (c *Cluster) FlightRecorder(node string) *trace.Recorder {
	if n, ok := c.nodes[node]; ok {
		return n.rec
	}
	return nil
}

// TraceEvents merges every node's flight recorder into one time-sorted
// cluster-wide event stream.
func (c *Cluster) TraceEvents() []trace.Event {
	recs := make([]*trace.Recorder, 0, len(c.nodeIDs))
	for _, nid := range c.nodeIDs {
		recs = append(recs, c.nodes[nid].rec)
	}
	return trace.Merge(recs...)
}

// Journal returns a node's structured event journal (nil for unknown
// nodes).
func (c *Cluster) Journal(node string) *events.Journal {
	if n, ok := c.nodes[node]; ok {
		return n.journal
	}
	return nil
}

// Events merges every node's event journal into one time-sorted
// cluster-wide control-plane history.
func (c *Cluster) Events() []events.Event {
	js := make([]*events.Journal, 0, len(c.nodeIDs))
	for _, nid := range c.nodeIDs {
		js = append(js, c.nodes[nid].journal)
	}
	return events.Merge(js...)
}

// refreshCatalogPieces records the content and location of each running
// piece in the shared catalog (§4.1).
func (c *Cluster) refreshCatalogPieces() {
	var pieces []catalog.QueryPiece
	for _, nid := range c.nodeIDs {
		for _, h := range c.nodes[nid].hosts {
			pieces = append(pieces, catalog.QueryPiece{
				Query: c.full.Name(),
				Boxes: h.piece.Boxes(),
				Node:  nid,
			})
		}
	}
	sort.Slice(pieces, func(i, j int) bool { return pieces[i].Node < pieces[j].Node })
	c.cat.SetPieces(c.full.Name(), pieces)
}

// Catalog exposes the domain's intra-participant catalog.
func (c *Cluster) Catalog() *catalog.Intra { return c.cat }

// install (re)wires pieces and routes from a partition. Routing state is
// filled in before the hosts are built: addHost consults the entry
// locations to tell locally-entering inputs from forwarded ones.
func (c *Cluster) install(part *Partition) error {
	for _, l := range part.Links {
		c.labelSrc[l.Label] = l.From
		c.labelDest[l.Label] = l.To
	}
	for _, in := range part.Inputs {
		c.inputEntry[in.Name] = in.Entry
		c.inputOwner[in.Name] = in.Owner
		if in.Entry != in.Owner {
			c.labelSrc[in.Name] = in.Entry
			c.labelDest[in.Name] = in.Owner
		}
	}
	for node, piece := range part.Pieces {
		if err := c.nodes[node].addHost(node, piece); err != nil {
			return err
		}
	}
	return nil
}

func cloneMap(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func (c *Cluster) newScheduler() engine.Scheduler {
	if c.cfg.NewScheduler != nil {
		return c.cfg.NewScheduler()
	}
	return engine.NewTrainScheduler(engine.DefaultMaxTrain)
}

// OnOutput installs the application sink for all outputs.
func (c *Cluster) OnOutput(sink AppSink) { c.appSink = sink }

func (c *Cluster) deliverApp(name string, t stream.Tuple, at int64) {
	if c.appSink != nil {
		c.appSink(name, t, at)
	}
}

// Start arms the periodic HA and load-sharing machinery. Call after the
// overlay links are connected.
func (c *Cluster) Start() {
	if c.started {
		return
	}
	c.started = true
	if c.cfg.K > 0 {
		for _, nid := range c.nodeIDs {
			n := c.nodes[nid]
			for _, down := range c.downstreamsOf(nid) {
				n.det.Watch(down, c.sim.Now())
			}
			if c.cfg.PullTruncation {
				c.tick(c.cfg.FlowPeriod, n.pullTick)
			} else {
				c.tick(c.cfg.FlowPeriod, n.flowTick)
			}
			c.tick(c.cfg.HeartbeatPeriod, n.heartbeatTick)
			c.tick(c.cfg.HeartbeatPeriod, n.checkTick)
		}
	}
	if c.cfg.StatsPeriod > 0 {
		for _, nid := range c.nodeIDs {
			c.tick(c.cfg.StatsPeriod, c.nodes[nid].statsTick)
		}
	}
	if c.cfg.LoadSharing != nil {
		c.tick(c.cfg.SharePeriod, c.shareTick)
	}
}

// tick schedules fn every period ns of virtual time, forever.
func (c *Cluster) tick(period int64, fn func()) {
	var loop func()
	loop = func() {
		fn()
		c.sim.Schedule(period, loop)
	}
	c.sim.Schedule(period, loop)
}

// upstreamsOf lists the alive nodes currently sending to nid.
func (c *Cluster) upstreamsOf(nid string) []string {
	set := map[string]bool{}
	for label, dest := range c.labelDest {
		if dest == nid {
			if src := c.labelSrc[label]; src != nid && !c.sim.Down(src) {
				set[src] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// downstreamsOf lists the nodes nid currently sends to.
func (c *Cluster) downstreamsOf(nid string) []string {
	set := map[string]bool{}
	for label, src := range c.labelSrc {
		if src == nid {
			if dest := c.labelDest[label]; dest != nid {
				set[dest] = true
			}
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Ingest offers one tuple to a named application input. Tuples arrive at
// the input's entry node; if the consuming box lives elsewhere they are
// forwarded over the overlay (with HA logging when K > 0).
func (c *Cluster) Ingest(input string, t stream.Tuple) error {
	entry, ok := c.inputEntry[input]
	if !ok {
		return fmt.Errorf("core: unknown input %q", input)
	}
	if c.sim.Down(entry) {
		// The data source is talking to a dead server: the tuple never
		// enters the system. Counted so loss accounting can attribute it
		// to the source rather than to the HA protocol (the source itself
		// is the k-safety boundary).
		c.entryDrops++
		return nil
	}
	if t.TS == 0 {
		t.TS = c.sim.Now()
	}
	owner := c.inputOwner[input]
	if entry == owner {
		c.nodes[entry].ingestLocal(input, t)
		return nil
	}
	en := c.nodes[entry]
	if t.Span == nil {
		// The trace must start where the tuple enters the system: the
		// entry-to-owner forwarding hop is part of its latency.
		t.Span = en.tracer.Sample(t.TS)
	}
	if c.cfg.K > 0 {
		t = en.log(input).Append(t)
	}
	size := transport.EncodedSize(transport.Msg{Stream: input, Tuples: []stream.Tuple{t}})
	return c.sim.Send(entry, owner, size, tupleBatch{Label: input, Tuples: []stream.Tuple{t}})
}

// handleRestart re-integrates a node that comes back up as a fresh
// incarnation. If its pieces were already adopted elsewhere (a crash
// longer than the detection timeout) no labels reference it and it rejoins
// as an idle spare. If the crash was shorter than detection, the labels
// still route through it and its neighbors must realign:
//
//   - receivers of labels it sends reset their duplicate filters and
//     dependency history — the node's logs restarted at sequence 1;
//   - for labels it receives, its fresh duplicate filter is seeded at the
//     surviving sender's truncation point, so the already-safe prefix is
//     not mistaken for loss holes; the sender's gap repair then
//     retransmits the retained suffix, which regenerates the lost state
//     (dependency chaining guarantees the truncated prefix's effects
//     already live beyond this node).
func (c *Cluster) handleRestart(id string) {
	rn := c.nodes[id]
	for label, src := range c.labelSrc {
		dest := c.labelDest[label]
		if src == id && dest != id {
			dn := c.nodes[dest]
			dn.dedupFor(label).Reset()
			if h := dn.hostForInput(label); h != nil {
				h.dep.ResetLink(label)
			}
		}
		if dest == id && src != id && !c.sim.Down(src) {
			if l, ok := c.nodes[src].logs[label]; ok {
				base := l.NextSeq() - 1
				if ts := l.Replay(); len(ts) > 0 {
					base = ts[0].Seq - 1
				}
				rn.dedupFor(label).Seed(base)
			}
		}
	}
	// Resume watching downstream neighbors (the detector restarted empty).
	for _, down := range c.downstreamsOf(id) {
		rn.det.Watch(down, c.sim.Now())
	}
}

// recover is the §6.3 failover: the backup (an upstream neighbor of the
// failed server) adopts the failed server's pieces as additional hosted
// engines, the overlay routes are rewritten, and every upstream's retained
// output log is replayed to the adopter — "the back-up server itself
// immediately starts processing the tuples in its output log, emulating
// the processing of the failed server". Piece definitions come from the
// intra-participant catalog, which every node of the domain shares (§4.1);
// this implementation reads them from the cluster's partition state.
func (c *Cluster) recover(failed, detector string) {
	if c.recovered[failed] || failed == detector {
		return
	}
	c.recovered[failed] = true
	rec := Recovery{Failed: failed, DetectedAt: c.sim.Now()}

	adopter := detector
	if ups := c.upstreamsOf(failed); len(ups) > 0 {
		adopter = ups[0]
	}
	rec.Adopter = adopter
	an := c.nodes[adopter]
	fn := c.nodes[failed]

	// Adopt the failed node's hosted pieces (fresh engines; lost state is
	// regenerated by replay), and move their boxes in the assignment so
	// later redeployments and the catalog agree on where they run.
	for owner, h := range fn.hosts {
		if err := an.addHost(owner, h.piece); err != nil {
			// Already hosted (double-failure edge); skip.
			continue
		}
		for _, b := range h.piece.Boxes() {
			c.assign[b] = adopter
		}
	}
	fn.hosts = map[string]*engineHost{}
	fn.order = nil

	// Rewrite routes, remembering which labels pointed at the failed node.
	var affected []string
	for label, dest := range c.labelDest {
		if dest == failed {
			c.labelDest[label] = adopter
			affected = append(affected, label)
		}
	}
	sort.Strings(affected)
	for label, src := range c.labelSrc {
		if src == failed {
			c.labelSrc[label] = adopter
			// The new sender incarnation restarts its link sequence
			// space; receivers must accept it — and must also forget the
			// dead incarnation's dependency history: a stale safe point
			// from the old sequence space would truncate the new
			// producer's fresh log below tuples a further failure could
			// still need.
			if dest := c.labelDest[label]; dest != adopter {
				dn := c.nodes[dest]
				dn.dedupFor(label).Reset()
				if h := dn.hostForInput(label); h != nil {
					h.dep.ResetLink(label)
				}
			}
		}
	}
	for input, owner := range c.inputOwner {
		if owner == failed {
			c.inputOwner[input] = adopter
		}
	}
	for _, n := range c.nodes {
		n.det.Unwatch(failed)
	}
	// The adopter now watches the downstreams it inherited.
	for _, down := range c.downstreamsOf(adopter) {
		an.det.Watch(down, c.sim.Now())
	}

	// Replay every alive upstream's retained output toward the adopted
	// labels. The adopter's own logs short-circuit locally.
	for _, uid := range c.nodeIDs {
		if c.sim.Down(uid) {
			continue
		}
		un := c.nodes[uid]
		for _, label := range affected {
			log, ok := un.logs[label]
			if !ok {
				continue
			}
			tuples := log.Replay()
			// Seed the adopter's fresh duplicate filter at the log's
			// truncation point: the truncated prefix is already safe
			// downstream and will never be sent again, so it must not
			// register as loss holes when the suffix arrives.
			base := log.NextSeq() - 1
			if len(tuples) > 0 {
				base = tuples[0].Seq - 1
			}
			an.dedupFor(label).Seed(base)
			if len(tuples) == 0 {
				continue
			}
			rec.Replayed += len(tuples)
			batch := tupleBatch{Label: label, Tuples: tuples}
			if uid == adopter {
				an.ingressLink(label, tuples)
				continue
			}
			size := transport.EncodedSize(transport.Msg{Stream: label, Tuples: tuples})
			c.sim.Send(uid, adopter, size, batch)
		}
	}
	an.pump()
	// The adopter journals the failover: subject is the node it adopted,
	// V1 the tuples replayed into the fresh engines.
	an.journal.Append(events.Event{
		Time: c.sim.Now(), Kind: events.KindHAReplay,
		Subject: failed, Detail: "failover", V1: float64(rec.Replayed),
	})
	c.recoveries = append(c.recoveries, rec)
	c.refreshCatalogPieces()
}

// Recoveries reports the failovers that have happened.
func (c *Cluster) Recoveries() []Recovery {
	return append([]Recovery(nil), c.recoveries...)
}

// Nodes returns the node ids.
func (c *Cluster) Nodes() []string { return append([]string(nil), c.nodeIDs...) }

// Assignment returns the current box-to-node assignment.
func (c *Cluster) Assignment() map[string]string { return cloneMap(c.assign) }

// Queued returns the tuples waiting at a node.
func (c *Cluster) Queued(node string) int { return c.nodes[node].queued() }

// BusyNs returns a node's accumulated processing time.
func (c *Cluster) BusyNs(node string) int64 { return c.nodes[node].busyNs }

// LogBytes returns the total retained output-log footprint at a node —
// the quantity flow-message truncation keeps bounded (§6.2).
func (c *Cluster) LogBytes(node string) int {
	total := 0
	for _, l := range c.nodes[node].logs {
		total += l.Bytes()
	}
	return total
}

// LogTuples returns the total retained output-log tuples at a node.
func (c *Cluster) LogTuples(node string) int {
	total := 0
	for _, l := range c.nodes[node].logs {
		total += l.Len()
	}
	return total
}

// Moves returns how many load-sharing redeployments have happened.
func (c *Cluster) Moves() int { return c.moves }

// Redeploy drains every node and re-partitions the network under a new
// assignment — the drain-and-stabilize transformation protocol of §5.1.
// Callers should quiesce ingestion and run the simulator to idle first so
// no tuples are in flight; HA bookkeeping restarts clean afterwards.
func (c *Cluster) Redeploy(newAssign map[string]string) error {
	part, err := PartitionNetwork(c.full, newAssign, c.entryAt)
	if err != nil {
		return err
	}
	for _, nid := range c.nodeIDs {
		if c.sim.Down(nid) {
			continue
		}
		c.nodes[nid].drainHosts()
	}
	// Reset pieces, routing, and HA state (the drain left nothing that
	// the logs or dedup filters still need).
	c.labelDest = map[string]string{}
	c.labelSrc = map[string]string{}
	for _, nid := range c.nodeIDs {
		n := c.nodes[nid]
		n.hosts = map[string]*engineHost{}
		n.order = nil
		n.logs = map[string]*ha.OutputLog{}
		n.dedup = map[string]*ha.Dedup{}
		n.recvSeen = map[string]uint64{}
	}
	c.assign = cloneMap(newAssign)
	if err := c.install(part); err != nil {
		return err
	}
	c.moves++
	c.refreshCatalogPieces()
	return nil
}

// shareTick runs one round of the decentralized load-share daemons (§5.1):
// every node measures its utilization and per-box work, overloaded nodes
// plan pairwise offloads against their neighbors' advertised load, and the
// chosen boxes move via Redeploy. Advertisements are modeled as directly
// readable state; a real deployment piggybacks them on heartbeats.
func (c *Cluster) shareTick() {
	pol := *c.cfg.LoadSharing
	if c.cfg.WindowedLoad && c.cfg.StatsPeriod > 0 {
		c.shareTickWindowed(pol)
		return
	}
	now := c.sim.Now()
	utils := map[string]float64{}
	for _, nid := range c.nodeIDs {
		if c.sim.Down(nid) {
			continue
		}
		n := c.nodes[nid]
		utils[nid] = n.utilizationSince(c.lastBusy[nid], c.lastAt[nid])
		c.lastBusy[nid] = n.busyNs
		c.lastAt[nid] = now
	}
	for _, nid := range c.nodeIDs {
		if c.sim.Down(nid) {
			continue
		}
		if c.cooldown[nid] > 0 {
			c.cooldown[nid]--
			continue
		}
		boxes := c.boxLoads(nid, utils[nid])
		var peers []loadmgr.PeerLoad
		for _, pid := range c.nodeIDs {
			if pid == nid || c.sim.Down(pid) {
				continue
			}
			free := 1e18
			if l, ok := c.sim.LinkStats(nid, pid); ok && l.BytesPerSec > 0 {
				free = l.BytesPerSec
			} else if !ok {
				continue // no link, not a neighbor
			}
			peers = append(peers, loadmgr.PeerLoad{
				Node: pid, Utilization: utils[pid], FreeBandwidth: free,
			})
		}
		d := loadmgr.PlanOffload(utils[nid], boxes, peers, pol)
		if d == nil {
			continue
		}
		newAssign := cloneMap(c.assign)
		for _, b := range d.Boxes {
			newAssign[b] = d.To
		}
		if err := c.Redeploy(newAssign); err == nil {
			c.journalOffload(nid, d)
			c.cooldown[nid] = pol.CooldownPeriods
			c.cooldown[d.To] = pol.CooldownPeriods
		}
		return // at most one move per tick, for stability
	}
}

// journalOffload records a successful load-share move on the offloading
// node's journal: subject is the receiving peer, detail the moved boxes,
// V1 the utilization expected to shift.
func (c *Cluster) journalOffload(nid string, d *loadmgr.Decision) {
	c.nodes[nid].journal.Append(events.Event{
		Time: c.sim.Now(), Kind: events.KindOffload,
		Subject: d.To, Detail: strings.Join(d.Boxes, ","), V1: d.WorkMoved,
	})
}

// shareTickWindowed is the stats-plane variant of the load-share round:
// each node decides from its own gossiped LoadMap — windowed utilization
// and windowed per-box load shares — rather than instantaneous local
// measurements. A one-period burst that saturates the instantaneous
// reading is diluted to 1/K in the windowed view, so it cannot flap
// boxes across the cluster (§5.2).
func (c *Cluster) shareTickWindowed(pol loadmgr.Policy) {
	for _, nid := range c.nodeIDs {
		if c.sim.Down(nid) {
			continue
		}
		if c.cooldown[nid] > 0 {
			c.cooldown[nid]--
			continue
		}
		n := c.nodes[nid]
		if n.plane == nil {
			continue
		}
		d := loadmgr.OffloadFromMap(nid, n.plane.Map(),
			func(box string) bool { return c.assign[box] == nid },
			func(peer string) (float64, bool) {
				if c.sim.Down(peer) {
					return 0, false
				}
				l, ok := c.sim.LinkStats(nid, peer)
				if !ok {
					return 0, false // no link, not a neighbor
				}
				if l.BytesPerSec > 0 {
					return l.BytesPerSec, true
				}
				return 1e18, true
			}, pol)
		if d == nil {
			continue
		}
		newAssign := cloneMap(c.assign)
		for _, b := range d.Boxes {
			newAssign[b] = d.To
		}
		if err := c.Redeploy(newAssign); err == nil {
			c.journalOffload(nid, d)
			c.cooldown[nid] = pol.CooldownPeriods
			c.cooldown[d.To] = pol.CooldownPeriods
		}
		return // at most one move per tick, for stability
	}
}

// Plane returns a node's statistics plane — its windowed store and load
// map — or nil when the plane is off or the node is unknown.
func (c *Cluster) Plane(node string) *stats.Plane {
	if n, ok := c.nodes[node]; ok {
		return n.plane
	}
	return nil
}

// LoadMap returns a node's gossiped cluster view (nil when the stats
// plane is off).
func (c *Cluster) LoadMap(node string) *stats.LoadMap {
	if p := c.Plane(node); p != nil {
		return p.Map()
	}
	return nil
}

// boxLoads estimates each local box's share of the node's utilization
// from the engine's monitored statistics.
func (c *Cluster) boxLoads(nid string, util float64) []loadmgr.BoxLoad {
	n := c.nodes[nid]
	prev, ok := c.lastProc[nid]
	if !ok {
		prev = map[string]int64{}
		c.lastProc[nid] = prev
	}
	type bw struct {
		id   string
		work float64
	}
	var raw []bw
	var total float64
	for _, h := range n.hosts {
		for _, st := range h.eng.AllStats() {
			delta := st.Processed - prev[st.ID]
			prev[st.ID] = st.Processed
			w := st.Cost * float64(delta)
			raw = append(raw, bw{id: st.ID, work: w})
			total += w
		}
	}
	if total == 0 {
		return nil
	}
	out := make([]loadmgr.BoxLoad, 0, len(raw))
	for _, r := range raw {
		out = append(out, loadmgr.BoxLoad{
			Box:  r.id,
			Work: util * r.work / total,
		})
	}
	return out
}
