// Package core assembles the substrates into the distributed stream
// processors the paper describes: Cluster is Aurora* (§3.1) — multiple
// single-node Aurora servers in one administrative domain cooperating to
// run a query network over a simulated overlay, with decentralized
// pairwise load sharing (§5) and k-safe upstream-backup high availability
// (§6). Federation adds the Medusa (§3.2) layer on top: participants,
// contracts, and remote definition across cluster boundaries.
package core

import (
	"fmt"
	"sort"

	"repro/internal/query"
	"repro/internal/stream"
)

// xlinkPrefix names the synthetic streams created where an arc crosses a
// node boundary. It is short because it precedes every message's stream
// label on the wire.
const xlinkPrefix = "\x00x"

// CrossLink is one arc of the full query network that crosses a node
// boundary after partitioning: the source node's piece gets an output
// binding and the destination node's piece an input binding, both named
// Label.
type CrossLink struct {
	Label   string
	From    string // node id
	FromBox query.Port
	To      string // node id
	ToBox   query.Port
	Schema  *stream.Schema
}

// InputRoute records where an application input stream enters the system
// (its entry node) and which node consumes it. When they differ, the entry
// node forwards tuples over the overlay — the situation box sliding
// optimizes (Fig 4).
type InputRoute struct {
	Name   string
	Entry  string // node where events arrive from the data source
	Owner  string // node running the box(es) bound to the input
	Schema *stream.Schema
}

// OutputRoute records which node produces an application output.
type OutputRoute struct {
	Name  string
	Owner string
}

// Partition is the decomposition of one query network across nodes.
type Partition struct {
	Pieces  map[string]*query.Network
	Links   []CrossLink
	Inputs  []InputRoute
	Outputs []OutputRoute
}

// PartitionNetwork cuts a validated query network into per-node pieces
// according to the box assignment. Arcs whose endpoints live on different
// nodes become cross links; input streams are annotated with their entry
// node (entryAt may leave inputs unset, defaulting each input's entry to
// the node owning its first destination box).
func PartitionNetwork(full *query.Network, assign map[string]string, entryAt map[string]string) (*Partition, error) {
	for _, id := range full.Boxes() {
		if assign[id] == "" {
			return nil, fmt.Errorf("core: box %q has no node assignment", id)
		}
	}
	nodes := map[string]bool{}
	for _, n := range assign {
		nodes[n] = true
	}
	builders := map[string]*query.Builder{}
	builderFor := func(node string) *query.Builder {
		b, ok := builders[node]
		if !ok {
			b = query.NewBuilder(full.Name() + "@" + node)
			builders[node] = b
		}
		return b
	}

	// Boxes.
	for _, id := range full.Boxes() {
		builderFor(assign[id]).AddBox(id, full.Box(id).Spec.Clone())
	}

	p := &Partition{Pieces: map[string]*query.Network{}}

	// Arcs: local arcs stay; crossing arcs become xlink bindings. Labels
	// are deliberately short (they ride every message on the wire); the
	// CrossLink record carries the human-readable endpoints.
	for i, a := range full.Arcs() {
		fromNode, toNode := assign[a.From.Box], assign[a.To.Box]
		if fromNode == toNode {
			builderFor(fromNode).ConnectPorts(a.From, a.To, a.ConnectionPoint)
			continue
		}
		label := fmt.Sprintf("%s%d", xlinkPrefix, i)
		schema := full.OutputSchema(a.From)
		builderFor(fromNode).BindOutput(label, a.From.Box, a.From.Port, nil)
		builderFor(toNode).BindInput(label, schema, a.To.Box, a.To.Port)
		p.Links = append(p.Links, CrossLink{
			Label: label, From: fromNode, FromBox: a.From,
			To: toNode, ToBox: a.To, Schema: schema,
		})
	}

	// Application inputs: bind at the owning node; record the entry node.
	for name, in := range full.Inputs() {
		owners := map[string]bool{}
		for _, d := range in.Dests {
			owners[assign[d.Box]] = true
			builderFor(assign[d.Box]).BindInput(name, in.Schema, d.Box, d.Port)
		}
		if len(owners) > 1 {
			return nil, fmt.Errorf("core: input %q fans out to boxes on different nodes; split it upstream instead", name)
		}
		owner := assign[in.Dests[0].Box]
		entry := entryAt[name]
		if entry == "" {
			entry = owner
		}
		p.Inputs = append(p.Inputs, InputRoute{
			Name: name, Entry: entry, Owner: owner, Schema: in.Schema,
		})
	}

	// Application outputs stay on the producing node.
	for name, o := range full.Outputs() {
		builderFor(assign[o.Src.Box]).BindOutput(name, o.Src.Box, o.Src.Port, o.QoS)
		p.Outputs = append(p.Outputs, OutputRoute{Name: name, Owner: assign[o.Src.Box]})
	}

	for node, b := range builders {
		piece, err := b.Build()
		if err != nil {
			return nil, fmt.Errorf("core: piece for node %q invalid: %w", node, err)
		}
		p.Pieces[node] = piece
	}
	sort.Slice(p.Links, func(i, j int) bool { return p.Links[i].Label < p.Links[j].Label })
	sort.Slice(p.Inputs, func(i, j int) bool { return p.Inputs[i].Name < p.Inputs[j].Name })
	sort.Slice(p.Outputs, func(i, j int) bool { return p.Outputs[i].Name < p.Outputs[j].Name })
	return p, nil
}
