package core

import (
	"fmt"
	"sort"

	"repro/internal/engine"
	"repro/internal/events"
	"repro/internal/ha"
	"repro/internal/query"
	"repro/internal/stats"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/transport"
)

// Message payloads exchanged over the netsim overlay.

// tupleBatch carries tuples for one cross-link label. Tuple Seq fields
// hold per-link sequence numbers (§6.2). Digests is the stats-plane
// piggyback: the sender's load-map snapshot rides along for free, the
// netsim analogue of the transport codec's stats trailer.
type tupleBatch struct {
	Label   string
	Tuples  []stream.Tuple
	Digests []stats.Digest
}

// backChannel carries truncation checkpoints upstream: for each label the
// receiver consumes from the sender, the link seq below which the sender
// may truncate its output queue (§6.2). Recv additionally reports the
// highest link seq below which the receiver has a complete prefix; the
// upstream compares it against its output log and retransmits anything
// beyond — gap repair for lossy or briefly partitioned links, with the
// upstream-backup queue doubling as the retransmission buffer.
type backChannel struct {
	SafeSeqs map[string]uint64
	Recv     map[string]uint64
}

// heartbeat is the §6.3 liveness signal a server sends to its upstream
// neighbors, also carrying the stats-plane piggyback so idle paths keep
// gossiping load.
type heartbeat struct {
	Digests []stats.Digest
}

// statsGossip floods load digests to overlay neighbors on the stats
// tick, covering node pairs no data or heartbeat traffic connects.
type statsGossip struct {
	Digests []stats.Digest
}

// flowQuery implements the §6.2 alternate truncation technique: an
// upstream server queries the downstream's array of earliest dependent
// sequence numbers at its own convenience; the downstream answers with a
// backChannel.
type flowQuery struct{}

// engineHost is one query-network piece running on a node: its own piece
// under normal operation, plus adopted pieces of failed downstream
// neighbors after a recovery (§6.3). Multiple hosts share the node's CPU
// (one shared virtual clock), the in-process realization of §6.4's
// virtual machines.
type engineHost struct {
	owner string // the node the piece was originally assigned to
	piece *query.Network
	eng   *engine.Engine
	dep   *ha.DepTracker
}

// SimNode is one Aurora server in a Cluster: an engine (or several, after
// adoptions) paced by the simulator, plus the HA bookkeeping of §6.
type SimNode struct {
	c  *Cluster
	id string

	clock *engine.VirtualClock
	hosts map[string]*engineHost
	order []string // host ids in adoption order, for round-robin stepping
	rr    int
	busy  bool

	localSeq uint64
	logs     map[string]*ha.OutputLog // outgoing label -> retained output
	dedup    map[string]*ha.Dedup     // incoming label -> duplicate filter
	det      *ha.Detector

	outbox  []outboxEntry
	busyNs  int64 // accumulated processing time, for utilization
	dropped uint64

	// recvSeen holds, per outgoing label, the receiver's complete-prefix
	// seq from its previous back channel. A resend is triggered only when
	// the reported value is stuck across two consecutive reports while the
	// log holds newer tuples: one flow period exceeds the link round trip,
	// so a stuck prefix means loss, not tuples still in flight.
	recvSeen map[string]uint64

	// rec and tracer are the node's flight recorder and span sampler; nil
	// when tracing is off. They sit outside the simulated failure domain:
	// a crash wipes the engines but the black box keeps its events.
	rec    *trace.Recorder
	tracer *trace.Tracer

	// journal is the node's structured control-plane event journal. Like
	// the flight recorder it models an external observer, so a simulated
	// crash does not erase the events leading up to it.
	journal *events.Journal

	// plane is the node's statistics plane (nil when off). Like the
	// flight recorder it models an external observer, so its windowed
	// history and digest sequence survive a simulated crash — a restarted
	// node must not republish under an already-seen sequence number.
	plane        *stats.Plane
	statLastBusy int64
	statLastAt   int64
}

type outboxEntry struct {
	label string
	t     stream.Tuple
}

func newSimNode(c *Cluster, id string) *SimNode {
	n := &SimNode{
		c:        c,
		id:       id,
		clock:    engine.NewVirtualClock(0),
		hosts:    map[string]*engineHost{},
		logs:     map[string]*ha.OutputLog{},
		dedup:    map[string]*ha.Dedup{},
		det:      ha.NewDetector(c.cfg.DetectTimeout),
		recvSeen: map[string]uint64{},
	}
	n.journal = events.NewJournal(id, c.cfg.EventBuf)
	if c.cfg.TraceSample > 0 {
		n.rec = trace.NewRecorder(c.cfg.TraceBuf)
		n.tracer = trace.NewTracer(id, c.cfg.TraceSample, n.rec)
	}
	if c.cfg.StatsPeriod > 0 {
		n.plane = stats.NewPlane(id, c.cfg.StatsWindow, c.cfg.StatsWindows, c.cfg.WindowedK)
	}
	return n
}

// loseVolatileState models what a crash destroys: engine state, output
// logs, dedup filters, dependency trackers, pending outbox, and detector
// state all vanish; only the piece definitions survive (they live in the
// shared catalog, §4.1, and recovery reads them from here). The Cluster
// invokes it from the simulator's fault hook the instant a node crashes,
// so a later restart resumes from genuinely empty state rather than
// resurrecting pre-crash memory.
func (n *SimNode) loseVolatileState() {
	for owner, h := range n.hosts {
		eng, err := n.newEngine(h.piece)
		if err != nil {
			continue // piece built once already; cannot fail again
		}
		nh := &engineHost{owner: owner, piece: h.piece, eng: eng, dep: ha.NewDepTracker()}
		eng.OnOutput(func(name string, t stream.Tuple) { n.onEngineOutput(nh, name, t) })
		n.hosts[owner] = nh
	}
	n.outbox = n.outbox[:0]
	n.logs = map[string]*ha.OutputLog{}
	n.dedup = map[string]*ha.Dedup{}
	n.recvSeen = map[string]uint64{}
	n.localSeq = 0
	// A fresh detector: the restarted node must not act on stale
	// last-seen times and declare still-alive neighbors failed.
	n.det = ha.NewDetector(n.c.cfg.DetectTimeout)
}

// newEngine builds the engine for a hosted piece: the node's shared
// clock and tracer, with cross-link outputs marked as relays so traced
// spans finalize only at true application outputs.
func (n *SimNode) newEngine(piece *query.Network) (*engine.Engine, error) {
	ecfg := engine.Config{
		Clock:          n.clock,
		Scheduler:      n.c.newScheduler(),
		MemoryBudget:   n.c.cfg.MemoryBudget,
		DefaultBoxCost: n.c.cfg.DefaultBoxCost,
		BoxCosts:       n.c.cfg.BoxCosts,
		Tracer:         n.tracer,
		Journal:        n.journal,
	}
	if n.plane != nil {
		// Hosted engines share the node's windowed store; per-box series
		// names keep their samples apart. The stats tick also samples
		// explicitly, so the per-step cadence is just a low-cost floor.
		ecfg.Stats = n.plane.Store()
		ecfg.StatsEvery = 64
	}
	ecfg.SLO = n.c.cfg.SLO
	eng, err := engine.New(piece, ecfg)
	if err != nil {
		return nil, err
	}
	appOuts := n.c.full.Outputs()
	for name := range piece.Outputs() {
		if _, app := appOuts[name]; !app {
			eng.SetRelayOutput(name)
		}
	}
	// Inputs that arrive from another node — cross-links, or application
	// inputs whose entry node forwards here — are mid-path: the sampling
	// decision was made where the tuple entered the system.
	appIns := n.c.full.Inputs()
	for name := range piece.Inputs() {
		_, app := appIns[name]
		if !app || (n.c.inputEntry[name] != "" && n.c.inputEntry[name] != n.id) {
			eng.SetRelayInput(name)
		}
	}
	return eng, nil
}

// addHost instantiates a piece's engine on this node.
func (n *SimNode) addHost(owner string, piece *query.Network) error {
	if _, dup := n.hosts[owner]; dup {
		return fmt.Errorf("core: node %s already hosts piece of %s", n.id, owner)
	}
	eng, err := n.newEngine(piece)
	if err != nil {
		return err
	}
	h := &engineHost{owner: owner, piece: piece, eng: eng, dep: ha.NewDepTracker()}
	eng.OnOutput(func(name string, t stream.Tuple) { n.onEngineOutput(h, name, t) })
	n.hosts[owner] = h
	n.order = append(n.order, owner)
	sort.Strings(n.order)
	return nil
}

func (n *SimNode) removeHost(owner string) {
	delete(n.hosts, owner)
	kept := n.order[:0]
	for _, o := range n.order {
		if o != owner {
			kept = append(kept, o)
		}
	}
	n.order = kept
}

// onEngineOutput routes a tuple a hosted engine delivered to one of its
// output bindings: cross-link labels go to the outbox toward the owning
// node of the consuming piece; application outputs go to the cluster's
// sink.
func (n *SimNode) onEngineOutput(h *engineHost, name string, t stream.Tuple) {
	if dest, ok := n.c.labelDest[name]; ok {
		if dest == n.id {
			// The consumer was adopted onto this very node: short-circuit
			// through the local ingress path (still deduplicated).
			if n.c.cfg.K > 0 {
				t = n.log(name).Append(t)
			}
			n.ingressLink(name, []stream.Tuple{t})
			return
		}
		n.outbox = append(n.outbox, outboxEntry{label: name, t: t})
		return
	}
	// Application output. The delivery is stamped with the node's modeled
	// clock, which runs ahead of simulator time inside a train (per-tuple
	// virtual pacing): the sink then sees the same instant the engine's
	// monitor and the span's final Proc mark recorded.
	at := n.clock.Now()
	if s := n.c.sim.Now(); s > at {
		at = s
	}
	n.c.deliverApp(name, t, at)
}

func (n *SimNode) log(label string) *ha.OutputLog {
	l, ok := n.logs[label]
	if !ok {
		l = ha.NewOutputLog()
		if n.c.truncAudit != nil {
			nid, lb := n.id, label
			l.SetOnTruncate(func(ts []stream.Tuple) { n.c.truncAudit(nid, lb, ts) })
		}
		n.logs[label] = l
	}
	return l
}

func (n *SimNode) dedupFor(label string) *ha.Dedup {
	d, ok := n.dedup[label]
	if !ok {
		d = &ha.Dedup{}
		n.dedup[label] = d
	}
	return d
}

// onMessage is the netsim delivery handler.
func (n *SimNode) onMessage(from string, payload any, _ int) {
	switch m := payload.(type) {
	case tupleBatch:
		n.mergeDigests(m.Digests)
		n.ingressLink(m.Label, m.Tuples)
	case statsGossip:
		n.mergeDigests(m.Digests)
	case backChannel:
		for label, safe := range m.SafeSeqs {
			if l, ok := n.logs[label]; ok {
				l.Truncate(safe)
			}
		}
		n.gapRepair(from, m.Recv)
	case heartbeat:
		n.mergeDigests(m.Digests)
		n.det.Heartbeat(from, n.c.sim.Now())
	case flowQuery:
		// Answer the querying upstream with the safe sequence numbers
		// for the labels it feeds us.
		if n.c.sim.Down(n.id) {
			return
		}
		if bc, ok := n.safeSeqs()[from]; ok && (len(bc.SafeSeqs) > 0 || len(bc.Recv) > 0) {
			n.c.sim.Send(n.id, from, 64, bc)
		}
	}
}

// gapRepair retransmits log suffixes a downstream reports missing. recv
// maps each label to the downstream's complete-prefix seq; when it is
// stuck across two consecutive reports while the log has stamped newer
// sequences, the gap is loss (not flight time) and the retained suffix
// beyond the prefix is resent. Duplicates from the overlap are suppressed
// by the receiver's Dedup.
func (n *SimNode) gapRepair(from string, recv map[string]uint64) {
	labels := make([]string, 0, len(recv))
	for label := range recv {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		r := recv[label]
		if l, ok := n.logs[label]; ok {
			// Record the downstream's complete prefix as "received there":
			// for k = 1, effects recorded at one downstream server release
			// this node's own dependency on the corresponding inputs.
			l.SetReceived(r)
		}
		prev, seen := n.recvSeen[label]
		n.recvSeen[label] = r
		if !seen || prev != r {
			continue // first report, or still advancing: give flight time
		}
		l, ok := n.logs[label]
		if !ok || l.NextSeq()-1 <= r {
			continue // nothing beyond the receiver's prefix
		}
		// Only resend while the label still routes to the reporter — a
		// failover may have moved the consumer since the report was sent.
		if n.c.labelSrc[label] != n.id || n.c.labelDest[label] != from {
			continue
		}
		tuples := l.ReplayFrom(r)
		if len(tuples) == 0 {
			continue // the missing range was truncated as safe elsewhere
		}
		n.c.resent += uint64(len(tuples))
		batch := tupleBatch{Label: label, Tuples: tuples}
		size := transport.EncodedSize(transport.Msg{Stream: label, Tuples: tuples})
		n.c.sim.Send(n.id, from, size, batch)
	}
}

// pullTick queries every downstream neighbor's sequence array (§6.2
// alternate technique): "the upstream server can truncate at its
// convenience, and not just when it receives a back channel message".
// Self-links are acked inline via safeSeqs (the computed remote entries
// are discarded — remote upstreams query us for theirs).
func (n *SimNode) pullTick() {
	if n.c.sim.Down(n.id) {
		return
	}
	n.safeSeqs()
	for _, down := range n.c.downstreamsOf(n.id) {
		n.c.sim.Send(n.id, down, 16, flowQuery{})
	}
}

// ingressLink admits tuples arriving on a cross-link label: duplicate
// suppression by link seq, re-sequencing into the node-local space, and
// ingestion into the hosting engine.
func (n *SimNode) ingressLink(label string, tuples []stream.Tuple) {
	host := n.hostForInput(label)
	if host == nil {
		n.dropped += uint64(len(tuples))
		return
	}
	// Admitted tuples charge everything since the sender's last mark —
	// outbox wait, serialization, propagation — to the network component.
	arrive := n.c.sim.Now()
	if n.c.cfg.K == 0 {
		for _, t := range tuples {
			n.localSeq++
			t.Seq = n.localSeq
			t.Span.Mark(trace.KindNet, label, arrive)
			host.eng.Ingest(label, t)
		}
		n.pump()
		return
	}
	d := n.dedupFor(label)
	for _, t := range tuples {
		linkSeq := t.Seq
		if !d.Admit(linkSeq) {
			continue
		}
		n.localSeq++
		t.Seq = n.localSeq
		host.dep.NoteIngress(label, linkSeq, n.localSeq)
		t.Span.Mark(trace.KindNet, label, arrive)
		host.eng.Ingest(label, t)
	}
	n.pump()
}

// ingestLocal ingests an application input arriving at its owner node
// directly from a data source (no upstream server to back it up; the
// source itself is the k-safety boundary).
func (n *SimNode) ingestLocal(input string, t stream.Tuple) bool {
	host := n.hostForInput(input)
	if host == nil {
		n.dropped++
		return false
	}
	n.localSeq++
	t.Seq = n.localSeq
	ok := host.eng.Ingest(input, t)
	n.pump()
	return ok
}

// hostForInput finds the hosted engine with the given input binding.
func (n *SimNode) hostForInput(input string) *engineHost {
	for _, owner := range n.order {
		h := n.hosts[owner]
		if _, ok := h.piece.Inputs()[input]; ok {
			return h
		}
	}
	return nil
}

// pump schedules the work loop if it is not already running.
func (n *SimNode) pump() {
	if n.busy {
		return
	}
	n.busy = true
	n.c.sim.Schedule(0, n.work)
}

// work executes one scheduler step of one hosted engine, charges its cost
// to the node's CPU clock, and schedules both the resulting sends and the
// next step at the completion time. This paces each server's processing
// in simulator time, so queueing, overload, and latency emerge from the
// event order.
func (n *SimNode) work() {
	if n.c.sim.Down(n.id) {
		n.busy = false
		return
	}
	n.clock.AdvanceTo(n.c.sim.Now())
	before := n.clock.Now()
	stepped := false
	for i := 0; i < len(n.order); i++ {
		h := n.hosts[n.order[(n.rr+i)%len(n.order)]]
		if h.eng.Step() {
			n.rr = (n.rr + i + 1) % len(n.order)
			stepped = true
			break
		}
	}
	if !stepped {
		n.busy = false
		n.flushOutbox(0)
		return
	}
	cost := n.clock.Now() - before
	n.busyNs += cost
	n.flushOutbox(cost)
	n.c.sim.Schedule(cost, n.work)
}

// flushOutbox groups pending output tuples by label, stamps them against
// the per-link output logs, and transmits them after delay ns (the
// completion time of the step that produced them).
func (n *SimNode) flushOutbox(delay int64) {
	if len(n.outbox) == 0 {
		return
	}
	byLabel := map[string][]stream.Tuple{}
	var labels []string
	for _, e := range n.outbox {
		if _, seen := byLabel[e.label]; !seen {
			labels = append(labels, e.label)
		}
		t := e.t
		if n.c.cfg.K > 0 {
			t = n.log(e.label).Append(t)
		}
		byLabel[e.label] = append(byLabel[e.label], t)
	}
	n.outbox = n.outbox[:0]
	sort.Strings(labels)
	digests := n.gossipDigests()
	for _, label := range labels {
		batch := tupleBatch{Label: label, Tuples: byLabel[label], Digests: digests}
		size := transport.EncodedSize(transport.Msg{Stream: label, Tuples: batch.Tuples, Digests: digests})
		l, src := label, n.id
		n.c.sim.Schedule(delay, func() {
			if n.c.sim.Down(src) {
				return // the node died before the send completed
			}
			// The destination is re-read at send time: a failover may
			// have rerouted the label while this batch waited.
			n.c.sim.Send(src, n.c.labelDest[l], size, batch)
		})
	}
}

// dependency computes the node's earliest local dependency across every
// hosted engine, the outbox, and (for k >= 2) the unacknowledged output
// logs.
func (n *SimNode) dependency() (uint64, bool) {
	var min uint64
	found := false
	note := func(seq uint64, ok bool) {
		if ok && (!found || seq < min) {
			min, found = seq, true
		}
	}
	for _, h := range n.hosts {
		note(h.eng.EarliestDependency())
	}
	for _, e := range n.outbox {
		note(e.t.Seq, true)
	}
	// Unacknowledged own output counts toward the dependency for every
	// K >= 1: acking an input upstream while its results exist only in
	// this node's volatile output log would let the upstream truncate
	// tuples a single crash here can still lose (the output log and any
	// in-flight batch vanish with the node).
	//
	// The depth of the chain is the k knob (§6.2): at k = 1, an input is
	// safe once its effects are recorded at one downstream server — the
	// back channel's complete-prefix report marks the received prefix, and
	// only the unreceived suffix still holds the input hostage. At k >= 2
	// the full retained log counts, chaining the low-water mark hop by hop
	// so the effects survive deeper concurrent failures.
	if n.c.cfg.K >= 1 {
		for label, l := range n.logs {
			if n.c.labelSrc[label] == n.id && n.c.labelDest[label] == n.id {
				// Self-link (producer and consumer co-located after an
				// adoption): the log's contents die with this node, so
				// retaining them protects nothing — and counting them
				// here would deadlock truncation, since the self-ack
				// would wait on its own low-water mark.
				continue
			}
			if n.c.cfg.K == 1 {
				note(l.EarliestOriginUnreceived())
			} else {
				note(l.EarliestOrigin())
			}
		}
	}
	return min, found
}

// safeSeqs computes this node's per-link truncation points and directly
// truncates the logs of self-links — labels this node both produces and
// consumes after an adoption. The remaining entries are grouped by
// upstream node for the back channel, together with each incoming label's
// complete-prefix seq (the gap-repair signal).
func (n *SimNode) safeSeqs() map[string]backChannel {
	dep, has := n.dependency()
	perUpstream := map[string]backChannel{}
	get := func(src string) backChannel {
		bc, ok := perUpstream[src]
		if !ok {
			bc = backChannel{SafeSeqs: map[string]uint64{}, Recv: map[string]uint64{}}
			perUpstream[src] = bc
		}
		return bc
	}
	for _, h := range n.hosts {
		for label, safe := range h.dep.SafeSeqs(dep, has) {
			src, ok := n.c.labelSrc[label]
			if !ok {
				continue
			}
			// Never declare safe beyond the complete prefix: a loss hole
			// below the high-water mark was never ingressed, and the
			// upstream must keep holding it for retransmission.
			if d, have := n.dedup[label]; have {
				if cr := d.ContiguousRecv() + 1; safe > cr {
					safe = cr
				}
			}
			if src == n.id {
				if l, ok := n.logs[label]; ok {
					l.Truncate(safe)
				}
				continue
			}
			get(src).SafeSeqs[label] = safe
		}
	}
	// Report the complete prefix for every remote incoming label — even
	// ones with no new safe point, and even before the first arrival (a
	// fully lost head shows up as a prefix stuck at zero), so the
	// upstream's gap repair has a signal to compare against.
	for label, dest := range n.c.labelDest {
		if dest != n.id {
			continue
		}
		if src := n.c.labelSrc[label]; src != n.id {
			get(src).Recv[label] = n.dedupFor(label).ContiguousRecv()
		}
	}
	return perUpstream
}

// flowTick runs the §6.2 truncation protocol: compute the dependency
// low-water mark, translate it to per-upstream-link safe sequence numbers,
// and send back-channel messages to the upstream neighbors.
func (n *SimNode) flowTick() {
	if n.c.sim.Down(n.id) {
		return
	}
	for up, bc := range n.safeSeqs() {
		if len(bc.SafeSeqs) == 0 && len(bc.Recv) == 0 {
			continue
		}
		n.c.sim.Send(n.id, up, 64, bc)
	}
}

// heartbeatTick sends heartbeats to upstream neighbors (§6.3). A crashed
// server is silent — that silence is exactly what the upstream detects.
func (n *SimNode) heartbeatTick() {
	if n.c.sim.Down(n.id) {
		return
	}
	hb := heartbeat{Digests: n.gossipDigests()}
	size := 16 + len(stats.AppendDigests(nil, hb.Digests))
	for _, up := range n.c.upstreamsOf(n.id) {
		n.c.sim.Send(n.id, up, size, hb)
	}
}

// mergeDigests folds gossiped digests into the node's load map. Digests
// arrive on every transport path (batches, heartbeats, gossip floods);
// the keep-max-Seq merge makes duplicate delivery harmless.
func (n *SimNode) mergeDigests(ds []stats.Digest) {
	if n.plane == nil || len(ds) == 0 {
		return
	}
	n.plane.Merge(ds)
}

// gossipDigests returns the node's current load-map snapshot for
// piggybacking on an outgoing message (nil when the stats plane is off).
func (n *SimNode) gossipDigests() []stats.Digest {
	if n.plane == nil {
		return nil
	}
	return n.plane.Gossip()
}

// statsTick is the statistics-plane heartbeat: sample every local source
// into the windowed store, fold the finished windows into a fresh digest,
// and flood the merged map to overlay neighbors. Flooding covers node
// pairs that no data or heartbeat traffic happens to connect, so the
// cluster converges on one load map without any coordinator.
func (n *SimNode) statsTick() {
	if n.plane == nil || n.c.sim.Down(n.id) {
		return
	}
	now := n.c.sim.Now()
	st := n.plane.Store()
	st.Observe(stats.SeriesNodeUtil, stats.KindGauge, now,
		n.utilizationSince(n.statLastBusy, n.statLastAt))
	n.statLastBusy = n.busyNs
	n.statLastAt = now
	st.Observe(stats.SeriesNodeQueued, stats.KindGauge, now, float64(n.queued()))
	// Node pressure is the worst engine's windowed reading — latched
	// all-time Pressure would report one long-past burst forever.
	pressure := 0.0
	for _, owner := range n.order {
		host := n.hosts[owner]
		host.eng.SampleStats(now)
		if p := host.eng.Storage().PressureWindow(); p > pressure {
			pressure = p
		}
		host.eng.Storage().ResetPressureWindow()
	}
	st.Observe(stats.SeriesNodePressure, stats.KindGauge, now, pressure)
	neighbors := n.c.sim.Neighbors(n.id)
	for _, p := range neighbors {
		if l, ok := n.c.sim.LinkStats(n.id, p); ok {
			st.Observe(stats.SeriesLink(n.id, p), stats.KindCounter, now, float64(l.BytesSent))
		}
	}
	n.plane.Publish(now)
	ds := n.plane.Gossip()
	size := len(stats.AppendDigests(nil, ds))
	for _, p := range neighbors {
		if n.c.sim.Down(p) {
			continue
		}
		n.c.sim.Send(n.id, p, size, statsGossip{Digests: ds})
	}
}

// checkTick looks for downstream failures and triggers recovery.
func (n *SimNode) checkTick() {
	if n.c.sim.Down(n.id) {
		return
	}
	for _, failed := range n.det.Check(n.c.sim.Now()) {
		n.c.recover(failed, n.id)
	}
}

// Utilization returns the busy fraction of the node's CPU since the last
// call (the load-share daemon's local load measure).
func (n *SimNode) utilizationSince(lastBusyNs, lastAt int64) float64 {
	elapsed := n.c.sim.Now() - lastAt
	if elapsed <= 0 {
		return 0
	}
	u := float64(n.busyNs-lastBusyNs) / float64(elapsed)
	if u > 1 {
		u = 1
	}
	return u
}

// queued returns the tuples waiting across hosted engines.
func (n *SimNode) queued() int {
	total := 0
	for _, h := range n.hosts {
		total += h.eng.QueuedTuples()
	}
	return total
}

// drainHosts flushes every hosted engine (the §5.1 stabilization step).
func (n *SimNode) drainHosts() {
	for _, h := range n.hosts {
		h.eng.Drain()
	}
	n.flushOutbox(0)
}

// pieceOf returns the hosted piece for an owner.
func (n *SimNode) pieceOf(owner string) (*query.Network, bool) {
	h, ok := n.hosts[owner]
	if !ok {
		return nil, false
	}
	return h.piece, true
}
