package core

import (
	"encoding/json"
	"testing"

	"repro/internal/stream"
	"repro/internal/trace"
)

// traceSink captures delivered tuples' spans together with the cluster
// delivery time the sink was handed.
type traceSink struct {
	spans []*trace.Span
	ats   []int64
	total int
}

func (s *traceSink) fn(_ string, t stream.Tuple, at int64) {
	s.total++
	if t.Span != nil {
		s.spans = append(s.spans, t.Span)
		s.ats = append(s.ats, at)
	}
}

// TestClusterTraceDecomposition is the netsim half of the acceptance
// criterion: on a 3-node chain with real link delays, every traced
// tuple's queue+proc+net components sum exactly to its end-to-end
// latency as the cluster observed it, and the network component covers
// at least the two propagation delays it crossed.
func TestClusterTraceDecomposition(t *testing.T) {
	sim, c := testCluster(t, Config{DefaultBoxCost: 1000, TraceSample: 1})
	s := &traceSink{}
	c.OnOutput(s.fn)
	// Offered faster than the 1000ns/tuple service rate, so a real
	// backlog builds and queue wait is visible in the decomposition.
	drive(sim, c, 200, 500)
	sim.Run(0)
	if s.total != 200 || len(s.spans) != 200 {
		t.Fatalf("delivered %d tuples, %d traced; want 200/200 at sample=1", s.total, len(s.spans))
	}
	var sumQ int64
	for i, sp := range s.spans {
		if !sp.Done() {
			t.Fatalf("span %d not finalized: %+v", i, sp)
		}
		q, p, n := sp.Components()
		if q+p+n != sp.Total() {
			t.Fatalf("span %d: %d+%d+%d != total %d", i, q, p, n, sp.Total())
		}
		// Delivery happened inside engine processing; the cluster sink
		// observes sim time at or after the span's end.
		if end := sp.Birth + sp.Total(); end > s.ats[i] {
			t.Fatalf("span %d ends at %d, after the sink saw it at %d", i, end, s.ats[i])
		}
		// Two inter-node links at 100µs propagation each.
		if n < 200_000 {
			t.Errorf("span %d network component %d < two link delays", i, n)
		}
		sumQ += q
	}
	if sumQ == 0 {
		t.Error("overloaded chain shows no queue wait at all")
	}
	// The trace decomposition and the QoS monitor agree exactly: the
	// output engine's latency histogram saw the same values the spans sum
	// to, because deliver hands both the same timestamp.
	var sum int64
	for _, sp := range s.spans {
		sum += sp.Total()
	}
	lat := c.nodes["n3"].hosts["n3"].eng.Metrics().Histogram("output.out.latency_ns").Snapshot()
	if lat.Count != 200 {
		t.Fatalf("monitor observed %d deliveries, want 200", lat.Count)
	}
	if mean := float64(sum) / 200; lat.Mean != mean {
		t.Errorf("monitor mean %f != trace mean %f", lat.Mean, mean)
	}
	// Every node's flight recorder saw traffic, and the merged view is
	// time-sorted and Chrome-exportable.
	for _, nid := range c.Nodes() {
		if rec := c.FlightRecorder(nid); rec == nil || rec.Total() == 0 {
			t.Errorf("node %s flight recorder empty", nid)
		}
	}
	evs := c.TraceEvents()
	for i := 1; i < len(evs); i++ {
		if evs[i].Start < evs[i-1].Start {
			t.Fatal("merged trace events not time-sorted")
		}
	}
	var arr []map[string]any
	if err := json.Unmarshal(trace.ChromeTrace(evs), &arr); err != nil {
		t.Fatalf("chrome export: %v", err)
	}
	// The per-link net segments recorded by the OnSend hook are present.
	foundLink := false
	for _, ev := range evs {
		if ev.Kind == trace.KindNet && ev.Name == "n1>n2" {
			foundLink = true
			break
		}
	}
	if !foundLink {
		t.Error("no n1>n2 link transit events in the merged trace")
	}
}

// TestClusterTraceSampling: sample 1-in-4 traces a quarter of the stream;
// untraced tuples pay no span allocation anywhere along the path.
func TestClusterTraceSampling(t *testing.T) {
	sim, c := testCluster(t, Config{DefaultBoxCost: 1000, TraceSample: 4})
	s := &traceSink{}
	c.OnOutput(s.fn)
	drive(sim, c, 200, 10_000)
	sim.Run(0)
	if s.total != 200 {
		t.Fatalf("delivered %d, want 200", s.total)
	}
	if len(s.spans) != 50 {
		t.Errorf("traced %d of 200 at sample=4, want 50", len(s.spans))
	}
}

// TestClusterTraceSurvivesCrash: the flight recorder is a black box — a
// crash wipes the node's engines and logs but its recorder keeps the
// pre-crash events plus the fault annotation, and spans traced across
// the failover still decompose exactly.
func TestClusterTraceSurvivesCrash(t *testing.T) {
	sim, c := testCluster(t, Config{K: 1, DefaultBoxCost: 1000, TraceSample: 1})
	s := &traceSink{}
	c.OnOutput(s.fn)
	drive(sim, c, 300, 50_000)
	sim.Schedule(5_000_000, func() { sim.Crash("n2") })
	sim.Run(2e9) // horizon: the HA ticks reschedule forever
	rec := c.FlightRecorder("n2")
	if rec == nil || rec.Total() == 0 {
		t.Fatal("crashed node's flight recorder is empty")
	}
	foundCrash := false
	for _, ev := range rec.Events() {
		if ev.Kind == trace.KindMark && ev.Name == "crash n2" {
			foundCrash = true
			break
		}
	}
	if !foundCrash {
		t.Error("crash annotation missing from n2's flight recorder")
	}
	if len(s.spans) == 0 {
		t.Fatal("no traced deliveries after failover")
	}
	for i, sp := range s.spans {
		q, p, n := sp.Components()
		if q+p+n != sp.Total() {
			t.Fatalf("post-failover span %d: %d+%d+%d != %d", i, q, p, n, sp.Total())
		}
	}
}
