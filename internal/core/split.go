package core

import (
	"fmt"

	"repro/internal/sketch"
)

// ForceSplit key-shards a box hosted on a node into n replica copies via
// the engine's runtime partition machinery (§5.1 box splitting promoted
// to an execution strategy). The split is engine-local volatile state: a
// crash wipes it with the rest of the engine, and the rebuilt engine
// comes back unsplit — which is exactly why the chaos harness can kill a
// node mid-split and still demand the k-safety oracles hold.
func (c *Cluster) ForceSplit(node, box string, n int) error {
	h, err := c.hostOf(node, box)
	if err != nil {
		return err
	}
	return h.eng.SplitBox(box, n)
}

// ForceUnsplit folds a ForceSplit box back into its unsplit form,
// draining replica and merge state through the normal output path first.
// It errors if the box is not currently split — e.g. a crash already
// dissolved the split along with the engine.
func (c *Cluster) ForceUnsplit(node, box string) error {
	h, err := c.hostOf(node, box)
	if err != nil {
		return err
	}
	return h.eng.UnsplitBox(box)
}

// SplitActive reports whether a box on a node currently runs as an
// active replica partition.
func (c *Cluster) SplitActive(node, box string) bool {
	h, err := c.hostOf(node, box)
	if err != nil {
		return false
	}
	st, ok := h.eng.BoxSplit(box)
	return ok && st.Active
}

// SetBoxCost overrides the modeled per-tuple cost of a box hosted on the
// named node — the experiment knob that injects a runtime slowdown (the
// E20 scenario raises one box's cost mid-run and watches the SLO plane
// attribute the resulting tail).
func (c *Cluster) SetBoxCost(node, box string, costNs int64) error {
	h, err := c.hostOf(node, box)
	if err != nil {
		return err
	}
	if !h.eng.SetBoxCost(box, costNs) {
		return fmt.Errorf("core: box %q not in %q's engine", box, node)
	}
	return nil
}

// LatencySketch returns a copy of the named output's cumulative
// delivered-latency sketch from the node that hosts it, nil when no live
// node's SLO plane has recorded it.
func (c *Cluster) LatencySketch(output string) *sketch.Sketch {
	for _, id := range c.nodeIDs {
		sn := c.nodes[id]
		if c.sim.Down(id) {
			continue
		}
		for _, h := range sn.hosts {
			if sk, ok := h.eng.LatencySketch(output); ok && sk.Count() > 0 {
				return sk
			}
		}
	}
	return nil
}

// hostOf locates the engine host on a live node whose piece contains the
// box. Adopted pieces count: after a failover the adopter can split the
// adopted box too.
func (c *Cluster) hostOf(node, box string) (*engineHost, error) {
	sn, ok := c.nodes[node]
	if !ok {
		return nil, fmt.Errorf("core: unknown node %q", node)
	}
	if c.sim.Down(node) {
		return nil, fmt.Errorf("core: node %q is down", node)
	}
	for _, h := range sn.hosts {
		for _, id := range h.piece.Boxes() {
			if id == box {
				return h, nil
			}
		}
	}
	return nil, fmt.Errorf("core: box %q not hosted on %q", box, node)
}
