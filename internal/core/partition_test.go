package core

import (
	"strings"
	"testing"

	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
)

var abSchema = stream.MustSchema("ab",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

func filterSpec(pred string) op.Spec {
	return op.Spec{Kind: "filter", Params: map[string]string{"predicate": pred}}
}

// chain3 builds in -> f1 -> f2 -> f3 -> out.
func chain3(t *testing.T) *query.Network {
	t.Helper()
	return query.NewBuilder("chain").
		Chain([]string{"f1", "f2", "f3"},
			[]op.Spec{filterSpec("B < 100"), filterSpec("B < 90"), filterSpec("B < 80")}).
		BindInput("in", abSchema, "f1", 0).
		BindOutput("out", "f3", 0, nil).
		MustBuild()
}

func TestPartitionChain(t *testing.T) {
	full := chain3(t)
	assign := map[string]string{"f1": "n1", "f2": "n2", "f3": "n3"}
	p, err := PartitionNetwork(full, assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pieces) != 3 {
		t.Fatalf("pieces = %d", len(p.Pieces))
	}
	if len(p.Links) != 2 {
		t.Fatalf("links = %+v", p.Links)
	}
	// Each piece holds exactly its box; the cross links chain n1->n2->n3.
	for node, box := range map[string]string{"n1": "f1", "n2": "f2", "n3": "f3"} {
		piece := p.Pieces[node]
		if piece.NumBoxes() != 1 || piece.Box(box) == nil {
			t.Errorf("piece at %s: %s", node, piece)
		}
	}
	if p.Links[0].From != "n1" || p.Links[0].To != "n2" ||
		p.Links[1].From != "n2" || p.Links[1].To != "n3" {
		t.Errorf("link endpoints: %+v", p.Links)
	}
	for _, l := range p.Links {
		if !strings.HasPrefix(l.Label, xlinkPrefix) {
			t.Errorf("label %q missing prefix", l.Label)
		}
		if !l.Schema.Compatible(abSchema) {
			t.Errorf("link schema %s", l.Schema)
		}
	}
	// Input enters and is owned at n1 by default; output at n3.
	if p.Inputs[0].Entry != "n1" || p.Inputs[0].Owner != "n1" {
		t.Errorf("input route %+v", p.Inputs[0])
	}
	if p.Outputs[0].Owner != "n3" {
		t.Errorf("output route %+v", p.Outputs[0])
	}
}

func TestPartitionColocated(t *testing.T) {
	full := chain3(t)
	assign := map[string]string{"f1": "n1", "f2": "n1", "f3": "n1"}
	p, err := PartitionNetwork(full, assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Pieces) != 1 || len(p.Links) != 0 {
		t.Fatalf("single-node partition wrong: %d pieces %d links", len(p.Pieces), len(p.Links))
	}
	if p.Pieces["n1"].NumBoxes() != 3 || len(p.Pieces["n1"].Arcs()) != 2 {
		t.Error("piece should keep internal arcs")
	}
}

func TestPartitionEntryNode(t *testing.T) {
	full := chain3(t)
	assign := map[string]string{"f1": "n2", "f2": "n2", "f3": "n2"}
	p, err := PartitionNetwork(full, assign, map[string]string{"in": "edge"})
	if err != nil {
		t.Fatal(err)
	}
	if p.Inputs[0].Entry != "edge" || p.Inputs[0].Owner != "n2" {
		t.Errorf("entry routing %+v", p.Inputs[0])
	}
}

func TestPartitionErrors(t *testing.T) {
	full := chain3(t)
	// Missing assignment.
	if _, err := PartitionNetwork(full, map[string]string{"f1": "n1"}, nil); err == nil {
		t.Error("missing assignment should fail")
	}
	// Input fanning out across nodes.
	fan := query.NewBuilder("fan").
		AddBox("a", filterSpec("true")).
		AddBox("b", filterSpec("true")).
		BindInput("in", abSchema, "a", 0).
		BindInput("in", abSchema, "b", 0).
		BindOutput("oa", "a", 0, nil).
		BindOutput("ob", "b", 0, nil).
		MustBuild()
	if _, err := PartitionNetwork(fan, map[string]string{"a": "n1", "b": "n2"}, nil); err == nil {
		t.Error("cross-node input fan-out should fail")
	}
	// Same-node fan-out is fine.
	if _, err := PartitionNetwork(fan, map[string]string{"a": "n1", "b": "n1"}, nil); err != nil {
		t.Errorf("same-node fan-out: %v", err)
	}
}

func TestPartitionBranchedDAG(t *testing.T) {
	// dual-output filter feeding two downstream filters on different
	// nodes, merged by a union on a third.
	full := query.NewBuilder("dag").
		AddBox("router", op.Spec{Kind: "filter", Params: map[string]string{
			"predicate": "B < 50", "falseport": "true"}}).
		AddBox("l", filterSpec("true")).
		AddBox("r", filterSpec("true")).
		AddBox("u", op.Spec{Kind: "union", Params: map[string]string{"inputs": "2"}}).
		ConnectPorts(query.Port{Box: "router", Port: 0}, query.Port{Box: "l"}, false).
		ConnectPorts(query.Port{Box: "router", Port: 1}, query.Port{Box: "r"}, false).
		ConnectPorts(query.Port{Box: "l"}, query.Port{Box: "u", Port: 0}, false).
		ConnectPorts(query.Port{Box: "r"}, query.Port{Box: "u", Port: 1}, false).
		BindInput("in", abSchema, "router", 0).
		BindOutput("out", "u", 0, nil).
		MustBuild()
	assign := map[string]string{"router": "n1", "l": "n1", "r": "n2", "u": "n3"}
	p, err := PartitionNetwork(full, assign, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Crossing arcs: router->r, l->u, r->u.
	if len(p.Links) != 3 {
		t.Fatalf("links = %d, want 3", len(p.Links))
	}
}
