package core

import (
	"testing"

	"repro/internal/stream"
)

// TestClusterLossyLinkGapRepair: a lossy data link drops tuple batches;
// the back channel's complete-prefix report drives retransmission from the
// retained output log (the upstream-backup queue doubling as the
// retransmission buffer), so once the link heals nothing is missing and
// no duplicate reaches the application.
func TestClusterLossyLinkGapRepair(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 6e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 400
	const gap = 20_000
	drive(sim, c, n, gap)
	// Forward data direction only: heartbeats and back channels travel
	// n2->n1 on the reverse link and keep flowing, so no spurious failure
	// detection — this is loss, not partition.
	sim.Schedule(1e6, func() { sim.SetLoss("n1", "n2", 0.5) })
	sim.Schedule(12e6, func() { sim.SetLoss("n1", "n2", 0) })
	sim.Run(1e9)

	missing, dups := s.loss(n)
	if missing != 0 {
		t.Fatalf("lossy link lost %d tuples despite gap repair (dups=%d)", missing, dups)
	}
	if dups != 0 {
		t.Errorf("duplicates reached the sink: %d", dups)
	}
	if c.Resent() == 0 {
		t.Error("no retransmissions recorded; the loss must have triggered gap repair")
	}
	if h := c.DedupHoles(); h != 0 {
		t.Errorf("outstanding loss holes after settle: %d", h)
	}
	if len(c.Recoveries()) != 0 {
		t.Errorf("loss must not trigger failover: %+v", c.Recoveries())
	}
	if err := c.InvariantCheck(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	t.Logf("resent=%d suppressed dups=%d", c.Resent(), c.DedupDuplicates())
}

// TestClusterSequentialCrashesK1: two non-overlapping single failures,
// each within the k=1 budget. The second crash exercises the
// stale-incarnation path: n3's dependency history for the link from n2
// must be reset when n1 adopts n2's piece, or n3's old safe points would
// truncate n1's fresh log below tuples the second failover still needs.
func TestClusterSequentialCrashesK1(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 3000
	const gap = 20_000
	drive(sim, c, n, gap)
	sim.Schedule(15e6, func() { sim.Crash("n2") })
	sim.Schedule(45e6, func() { sim.Crash("n3") })
	sim.Run(2e9)

	missing, dups := s.loss(n)
	if missing != 0 {
		t.Fatalf("sequential k=1 crashes lost %d tuples (dups=%d)", missing, dups)
	}
	recs := c.Recoveries()
	if len(recs) != 2 || recs[0].Failed != "n2" || recs[1].Failed != "n3" {
		t.Fatalf("recoveries = %+v", recs)
	}
	// Every box ended up on the sole survivor, and all views agree.
	for _, b := range []string{"f1", "f2", "f3"} {
		if got := c.Assignment()[b]; got != "n1" {
			t.Errorf("box %s assigned to %s after both failovers, want n1", b, got)
		}
	}
	if err := c.InvariantCheck(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	t.Logf("replayed %d+%d, suppressed dups %d", recs[0].Replayed, recs[1].Replayed, c.DedupDuplicates())
}

// TestClusterConcurrentAdjacentCrashesK2: two adjacent servers die at the
// same instant. At k=2 the full retained log counts toward each node's
// dependency, so the entry's queue covers everything not yet at the sink;
// recovery cascades (the adopter of the first victim starts watching the
// second and adopts it too) and replay regenerates both pieces' state.
func TestClusterConcurrentAdjacentCrashesK2(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 2, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 2000
	const gap = 20_000
	drive(sim, c, n, gap)
	sim.Schedule(15e6, func() { sim.Crash("n2"); sim.Crash("n3") })
	sim.Run(2e9)
	missing, dups := s.loss(n)
	if missing != 0 {
		t.Fatalf("k=2 concurrent adjacent crashes lost %d tuples (dups=%d)", missing, dups)
	}
	recs := c.Recoveries()
	if len(recs) != 2 {
		t.Fatalf("recoveries = %+v", recs)
	}
	if err := c.InvariantCheck(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	t.Logf("dups=%d recoveries=%+v", dups, recs)
}

// TestClusterShortCrashRestart: a crash shorter than the detection timeout
// destroys the node's volatile state but triggers no failover. The restart
// realigns sequence spaces (receivers reset, fresh filters seeded) and gap
// repair replays the retained suffixes, so nothing is lost; duplicates may
// occur at the recovery boundary but only as suppressible link duplicates
// or re-derived outputs, never missing data.
func TestClusterShortCrashRestart(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 6e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const n = 2000
	const gap = 20_000
	drive(sim, c, n, gap)
	sim.Schedule(15e6, func() { sim.Crash("n2") })
	sim.Schedule(17e6, func() { sim.Restart("n2") }) // well under DetectTimeout
	sim.Run(2e9)

	missing, dups := s.loss(n)
	if missing != 0 {
		t.Fatalf("short crash lost %d tuples (dups=%d)", missing, dups)
	}
	if len(c.Recoveries()) != 0 {
		t.Fatalf("restart before detection must not fail over: %+v", c.Recoveries())
	}
	if err := c.InvariantCheck(); err != nil {
		t.Errorf("invariant: %v", err)
	}
	t.Logf("sink dups=%d resent=%d suppressed=%d", dups, c.Resent(), c.DedupDuplicates())
}

// TestClusterEntryDownDrops: tuples offered while their entry node is down
// never enter the system — the data source is the k-safety boundary — and
// are counted as entry drops, not protocol loss. After the restart the
// entry resumes as a fresh incarnation and traffic flows end to end.
func TestClusterEntryDownDrops(t *testing.T) {
	sim, c := testCluster(t, Config{
		K: 1, DefaultBoxCost: 5_000,
		FlowPeriod: 2e6, HeartbeatPeriod: 1e6, DetectTimeout: 3e6,
	})
	s := newSink()
	c.OnOutput(s.fn)
	const gap = 20_000
	drive(sim, c, 100, gap) // ids 0..99 while healthy
	sim.Run(50e6)           // quiesce

	sim.Crash("n1")
	for i := 100; i < 150; i++ { // ids 100..149 against a dead entry
		if err := c.Ingest("in", stream.NewTuple(stream.Int(int64(i)), stream.Int(int64(i)%60))); err != nil {
			t.Fatal(err)
		}
	}
	if c.EntryDrops() != 50 {
		t.Fatalf("EntryDrops = %d, want 50", c.EntryDrops())
	}
	sim.Restart("n1")
	for i := 150; i < 250; i++ { // ids 150..249 after the restart
		id := int64(i)
		sim.Schedule(int64(i-150)*gap, func() {
			c.Ingest("in", stream.NewTuple(stream.Int(id), stream.Int(id%60)))
		})
	}
	sim.Run(2e9)

	missing, dups := s.loss(250)
	if missing != 50 {
		t.Errorf("missing = %d, want exactly the 50 entry drops", missing)
	}
	for i := int64(100); i < 150; i++ {
		if s.seen[i] != 0 {
			t.Fatalf("id %d was offered to a dead entry yet delivered", i)
		}
	}
	if dups != 0 {
		t.Errorf("duplicates reached the sink: %d", dups)
	}
	if err := c.InvariantCheck(); err != nil {
		t.Errorf("invariant: %v", err)
	}
}
