package qos

import "fmt"

// Spec is the full QoS specification attached to one application output: a
// latency-based graph (the primary driver for most resource control, per
// §7.1), a loss-tolerance graph over the fraction of tuples delivered, and
// an optional value-based graph over an output attribute. Nil graphs mean
// "indifferent".
type Spec struct {
	// Latency maps output latency (in the engine's time units) to utility.
	Latency *Graph
	// Loss maps the delivered fraction of tuples in [0, 1] to utility; it
	// tells the load shedder how much imprecision the application accepts
	// (a precise answer is "the wrong standard", §7.1).
	Loss *Graph
	// Value maps the value of a designated output attribute to utility,
	// letting the shedder prefer dropping low-value tuples.
	Value *Graph
	// ValueField names the output attribute the Value graph reads.
	ValueField string
}

// DefaultLatency builds the canonical latency graph: full utility up to
// good, linearly decaying to zero at deadline.
func DefaultLatency(good, deadline float64) *Graph {
	if good >= deadline {
		good = deadline * 0.5
	}
	return MustGraph(Point{X: 0, U: 1}, Point{X: good, U: 1}, Point{X: deadline, U: 0})
}

// DefaultLoss builds the canonical loss graph: utility 1 at full delivery,
// linear down to zero utility when less than floor of the tuples arrive.
func DefaultLoss(floor float64) *Graph {
	if floor <= 0 || floor >= 1 {
		return MustGraph(Point{X: 0, U: 0}, Point{X: 1, U: 1})
	}
	return MustGraph(Point{X: 0, U: 0}, Point{X: floor, U: 0}, Point{X: 1, U: 1})
}

// Utility combines the spec's graphs over a measured latency and delivered
// fraction into one utility value (product composition: each dimension
// scales the others, so zero utility in any dimension zeroes the whole).
func (s *Spec) Utility(latency, delivered float64) float64 {
	u := 1.0
	if s.Latency != nil {
		u *= s.Latency.Utility(latency)
	}
	if s.Loss != nil {
		u *= s.Loss.Utility(delivered)
	}
	return u
}

// Validate checks graph sanity (latency graphs should not reward lateness).
func (s *Spec) Validate() error {
	if s.Latency != nil && !s.Latency.NonIncreasing() {
		return fmt.Errorf("qos: latency graph must be non-increasing, got %s", s.Latency)
	}
	if s.Value != nil && s.ValueField == "" {
		return fmt.Errorf("qos: value graph requires ValueField")
	}
	return nil
}

// Shift returns the spec with its latency graph shifted by d time units
// (the §7.1 inference step); loss and value graphs pass through unchanged,
// since dropped tuples and values are characteristics that survive
// downstream processing unmodified.
func (s *Spec) Shift(d float64) *Spec {
	out := *s
	if s.Latency != nil {
		out.Latency = s.Latency.Shift(d)
	}
	return &out
}
