package qos

import (
	"math"
	"testing"
	"testing/quick"
)

func TestGraphValidation(t *testing.T) {
	if _, err := NewGraph(); err == nil {
		t.Error("empty graph should fail")
	}
	if _, err := NewGraph(Point{0, 1}, Point{0, 0}); err == nil {
		t.Error("non-ascending X should fail")
	}
	if _, err := NewGraph(Point{0, 1.5}); err == nil {
		t.Error("utility > 1 should fail")
	}
	if _, err := NewGraph(Point{0, -0.1}); err == nil {
		t.Error("utility < 0 should fail")
	}
}

func TestGraphUtilityInterpolation(t *testing.T) {
	g := MustGraph(Point{0, 1}, Point{10, 1}, Point{20, 0})
	cases := []struct{ x, want float64 }{
		{-5, 1}, // clamp left
		{0, 1},
		{5, 1},
		{10, 1},
		{15, 0.5}, // midpoint of decay
		{20, 0},
		{100, 0}, // clamp right
	}
	for _, c := range cases {
		if got := g.Utility(c.x); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Utility(%g) = %g, want %g", c.x, got, c.want)
		}
	}
}

func TestGraphShiftIsInference(t *testing.T) {
	// Qi(t) = Qo(t + TB): shifting by TB then evaluating at t equals
	// evaluating the original at t + TB.
	g := MustGraph(Point{0, 1}, Point{10, 0.5}, Point{20, 0})
	f := func(tRaw, dRaw uint8) bool {
		tt := float64(tRaw) / 8
		d := float64(dRaw) / 8
		return math.Abs(g.Shift(d).Utility(tt)-g.Utility(tt+d)) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGraphCriticalX(t *testing.T) {
	g := MustGraph(Point{0, 1}, Point{10, 1}, Point{20, 0})
	// Utility >= 1.0 holds up to x=10.
	if got := g.CriticalX(1.0); math.Abs(got-10) > 1e-9 {
		t.Errorf("CriticalX(1.0) = %g, want 10", got)
	}
	// Utility >= 0.5 holds up to x=15.
	if got := g.CriticalX(0.5); math.Abs(got-15) > 1e-9 {
		t.Errorf("CriticalX(0.5) = %g, want 15", got)
	}
}

func TestGraphNonIncreasing(t *testing.T) {
	if !MustGraph(Point{0, 1}, Point{10, 0}).NonIncreasing() {
		t.Error("decreasing graph misclassified")
	}
	if MustGraph(Point{0, 0}, Point{10, 1}).NonIncreasing() {
		t.Error("increasing graph misclassified")
	}
}

func TestSpecUtilityComposition(t *testing.T) {
	s := &Spec{
		Latency: DefaultLatency(10, 20),
		Loss:    DefaultLoss(0.5),
	}
	// Perfect latency, perfect delivery.
	if got := s.Utility(5, 1.0); got != 1.0 {
		t.Errorf("Utility(5, 1) = %g", got)
	}
	// Zero in one dimension zeroes the product.
	if got := s.Utility(25, 1.0); got != 0 {
		t.Errorf("Utility(25, 1) = %g, want 0", got)
	}
	if got := s.Utility(5, 0.2); got != 0 {
		t.Errorf("Utility(5, 0.2) = %g, want 0 (below loss floor)", got)
	}
	// Mid-range composes multiplicatively.
	got := s.Utility(15, 0.75)
	want := 0.5 * 0.5
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Utility(15, .75) = %g, want %g", got, want)
	}
	// Nil graphs are indifferent.
	empty := &Spec{}
	if empty.Utility(1e9, 0) != 1 {
		t.Error("empty spec should be indifferent")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := &Spec{Latency: MustGraph(Point{0, 0}, Point{10, 1})}
	if bad.Validate() == nil {
		t.Error("increasing latency graph should be invalid")
	}
	bad2 := &Spec{Value: MustGraph(Point{0, 1})}
	if bad2.Validate() == nil {
		t.Error("value graph without field should be invalid")
	}
	ok := &Spec{Latency: DefaultLatency(1, 2)}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestDefaultGraphShapes(t *testing.T) {
	l := DefaultLatency(10, 20)
	if !l.NonIncreasing() {
		t.Error("DefaultLatency must be non-increasing")
	}
	// Degenerate good >= deadline is repaired.
	l2 := DefaultLatency(30, 20)
	if !l2.NonIncreasing() || l2.Utility(0) != 1 {
		t.Error("DefaultLatency should repair good >= deadline")
	}
	loss := DefaultLoss(0.5)
	if loss.Utility(1) != 1 || loss.Utility(0.25) != 0 {
		t.Error("DefaultLoss shape wrong")
	}
	if DefaultLoss(-1).Utility(0.5) != 0.5 {
		t.Error("DefaultLoss with bad floor should be linear")
	}
}

func TestInferChain(t *testing.T) {
	// The Fig 9 scenario: output at S3; boxes at S3, S2, S1 cost 5, 3, 2.
	out := &Spec{Latency: MustGraph(Point{0, 1}, Point{20, 0})}
	boxes := []BoxCost{
		{ID: "s3", Time: 5},
		{ID: "s2", Time: 3},
		{ID: "s1", Time: 2},
	}
	specs, err := InferChain(out, boxes)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("got %d specs", len(specs))
	}
	// At S3's input the deadline shrinks from 20 to 15; at S1's to 10.
	if got := specs[0].Latency.Utility(15); math.Abs(got) > 1e-12 {
		t.Errorf("after s3, Utility(15) = %g, want 0", got)
	}
	if got := specs[2].Latency.Utility(10); math.Abs(got) > 1e-12 {
		t.Errorf("after s1..s3, Utility(10) = %g, want 0", got)
	}
	// Composition identity: spec at the deepest arc evaluated at t equals
	// the output spec at t + total cost.
	total := 10.0
	for _, x := range []float64{0, 3, 7, 9.9} {
		if math.Abs(specs[2].Latency.Utility(x)-out.Latency.Utility(x+total)) > 1e-12 {
			t.Errorf("inference composition broken at %g", x)
		}
	}
}

func TestInferChainErrors(t *testing.T) {
	if _, err := InferChain(nil, nil); err == nil {
		t.Error("nil spec should fail")
	}
	out := &Spec{Latency: DefaultLatency(1, 2)}
	if _, err := InferChain(out, []BoxCost{{ID: "x", Time: -1}}); err == nil {
		t.Error("negative cost should fail")
	}
	bad := &Spec{Latency: MustGraph(Point{0, 0}, Point{1, 1})}
	if _, err := InferChain(bad, nil); err == nil {
		t.Error("invalid output spec should fail")
	}
}

func TestInferredLatencyBudget(t *testing.T) {
	out := &Spec{Latency: MustGraph(Point{0, 1}, Point{20, 0})}
	budgets, err := InferredLatencyBudget(out, []BoxCost{{ID: "a", Time: 5}, {ID: "b", Time: 5}}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Output keeps >= 0.5 utility up to latency 10; minus 5 per box.
	if math.Abs(budgets[0]-5) > 1e-9 || math.Abs(budgets[1]-0) > 1e-9 {
		t.Errorf("budgets = %v, want [5 0]", budgets)
	}
	// A spec with no latency graph yields zero budgets.
	budgets, err = InferredLatencyBudget(&Spec{}, []BoxCost{{ID: "a", Time: 1}}, 0.5)
	if err != nil || budgets[0] != 0 {
		t.Errorf("nil-latency budgets = %v, %v", budgets, err)
	}
}
