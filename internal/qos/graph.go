// Package qos implements Aurora's Quality-of-Service model (§7.1): every
// application attaches to its query a QoS specification — a function from
// some characteristic of the output stream (latency, fraction of tuples
// delivered, tuple values) to a utility in [0, 1]. All resource allocation
// decisions (scheduling, load shedding) are driven by these specifications,
// and the operational goal of the system is to maximize perceived aggregate
// QoS delivered to client applications.
//
// The package also implements QoS inference for the outputs of internal
// nodes of a distributed Aurora* deployment: given the QoS at the final
// output and per-box processing costs, the specification at a box's input
// is Qi(t) = Qo(t + TB), pushed upstream through the network (Fig 9).
package qos

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Point is one vertex of a piecewise-linear utility graph.
type Point struct {
	X float64 // the characteristic: latency, delivered fraction, value
	U float64 // utility in [0, 1]
}

// Graph is a piecewise-linear utility function. X coordinates are strictly
// ascending; evaluation clamps outside the covered range.
type Graph struct {
	pts []Point
}

// NewGraph builds a graph from vertices. At least one point is required,
// X must be strictly ascending, and utilities must lie in [0, 1].
func NewGraph(pts ...Point) (*Graph, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("qos: graph needs at least one point")
	}
	for i, p := range pts {
		if p.U < 0 || p.U > 1 {
			return nil, fmt.Errorf("qos: utility %g out of [0,1] at point %d", p.U, i)
		}
		if i > 0 && pts[i-1].X >= p.X {
			return nil, fmt.Errorf("qos: X must be strictly ascending (point %d)", i)
		}
	}
	return &Graph{pts: append([]Point(nil), pts...)}, nil
}

// MustGraph is NewGraph that panics on error.
func MustGraph(pts ...Point) *Graph {
	g, err := NewGraph(pts...)
	if err != nil {
		panic(err)
	}
	return g
}

// Utility evaluates the graph at x with linear interpolation, clamping to
// the first/last vertex outside the range.
func (g *Graph) Utility(x float64) float64 {
	pts := g.pts
	if x <= pts[0].X {
		return pts[0].U
	}
	n := len(pts)
	if x >= pts[n-1].X {
		return pts[n-1].U
	}
	i := sort.Search(n, func(i int) bool { return pts[i].X >= x })
	a, b := pts[i-1], pts[i]
	frac := (x - a.X) / (b.X - a.X)
	return a.U + frac*(b.U-a.U)
}

// Shift returns the graph translated so that Shift(d).Utility(x) equals
// g.Utility(x + d). This is exactly the inference step of §7.1: with Qo
// the QoS at a box's output and TB the box's average processing time
// (including queueing), the input-side specification is Qi(t) = Qo(t+TB),
// i.e. Qo shifted left by TB.
func (g *Graph) Shift(d float64) *Graph {
	pts := make([]Point, len(g.pts))
	for i, p := range g.pts {
		pts[i] = Point{X: p.X - d, U: p.U}
	}
	return &Graph{pts: pts}
}

// Points returns a copy of the graph's vertices.
func (g *Graph) Points() []Point { return append([]Point(nil), g.pts...) }

// MaxUtility returns the maximum utility over the graph.
func (g *Graph) MaxUtility() float64 {
	best := 0.0
	for _, p := range g.pts {
		if p.U > best {
			best = p.U
		}
	}
	return best
}

// CriticalX returns the largest x whose utility is still at least frac of
// the graph's maximum. For a decreasing latency graph this is the latest
// acceptable delivery latency; the scheduler uses it to prioritize and the
// shedder to decide when drops are preferable to lateness.
func (g *Graph) CriticalX(frac float64) float64 {
	target := frac * g.MaxUtility()
	// Walk segments left to right recording the last x meeting the target.
	last := math.Inf(-1)
	meets := func(p Point) bool { return p.U >= target-1e-12 }
	for i, p := range g.pts {
		if meets(p) {
			last = p.X
			continue
		}
		if i > 0 && g.pts[i-1].U != p.U {
			a := g.pts[i-1]
			if a.U >= target && p.U < target {
				// Interpolate the crossing inside the segment.
				frac := (a.U - target) / (a.U - p.U)
				x := a.X + frac*(p.X-a.X)
				if x > last {
					last = x
				}
			}
		}
	}
	if math.IsInf(last, -1) {
		return g.pts[0].X
	}
	return last
}

// NonIncreasing reports whether utility never rises as x grows — the shape
// of every latency graph (later is never better).
func (g *Graph) NonIncreasing() bool {
	for i := 1; i < len(g.pts); i++ {
		if g.pts[i].U > g.pts[i-1].U+1e-12 {
			return false
		}
	}
	return true
}

// String renders the graph as (x:u, x:u, ...).
func (g *Graph) String() string {
	var b strings.Builder
	b.WriteByte('(')
	for i, p := range g.pts {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%g:%g", p.X, p.U)
	}
	b.WriteByte(')')
	return b.String()
}
