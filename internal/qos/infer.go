package qos

import "fmt"

// BoxCost carries the operational statistics the inference of §7.1 needs
// for one box: the average time TB for a tuple arriving at the box's input
// to be processed completely (implicitly including queueing time), and the
// box's selectivity. Both are assumed to be monitored and maintained in an
// approximate fashion over the running network.
type BoxCost struct {
	// ID identifies the box within its query network.
	ID string
	// Time is TB in the engine's time units.
	Time float64
	// Selectivity is output tuples per input tuple (informational; the
	// latency inference itself needs only Time).
	Selectivity float64
}

// InferChain pushes an output QoS specification upstream through a chain
// of boxes, outermost (closest to the output) first. It returns one
// inferred Spec per arc: element 0 is the spec at the input of the box
// nearest the output, element i the spec at the input of the i'th box
// walking upstream. This implements the estimated latency graph
// computation of §7.1: Qi(t) = Qo(t + TB) applied across an arbitrary
// number of Aurora boxes.
func InferChain(out *Spec, boxes []BoxCost) ([]*Spec, error) {
	if out == nil {
		return nil, fmt.Errorf("qos: nil output spec")
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	specs := make([]*Spec, len(boxes))
	cur := out
	for i, b := range boxes {
		if b.Time < 0 {
			return nil, fmt.Errorf("qos: box %s has negative cost", b.ID)
		}
		cur = cur.Shift(b.Time)
		specs[i] = cur
	}
	return specs, nil
}

// InferredLatencyBudget returns, for each arc of the chain, the largest
// latency that still preserves frac of the output's maximum utility. Local
// resource managers at internal nodes use this budget to make scheduling
// and shedding decisions without global coordination (the stated goal of
// pushing QoS inside the network, §7.1).
func InferredLatencyBudget(out *Spec, boxes []BoxCost, frac float64) ([]float64, error) {
	specs, err := InferChain(out, boxes)
	if err != nil {
		return nil, err
	}
	budgets := make([]float64, len(specs))
	for i, s := range specs {
		if s.Latency == nil {
			budgets[i] = 0
			continue
		}
		budgets[i] = s.Latency.CriticalX(frac)
	}
	return budgets, nil
}
