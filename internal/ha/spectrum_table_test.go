package ha

import (
	"fmt"
	"testing"
)

// TestSpectrumTable walks the §6.4 recovery spectrum end to end with
// table-driven configurations: from the amnesia-like end (huge FlowPeriod,
// K=1 — cheapest at run time, most redone work on recovery) through
// k-safe upstream backup to per-box virtual machines (most runtime
// messages, least redone work). Each case pins the exact model outputs so
// regressions in the cost formulas are caught, not just the shape.
func TestSpectrumTable(t *testing.T) {
	cases := []struct {
		name     string
		s        Spectrum
		k        int
		wantMsgs int64
		wantRedo int64
		wantTime int64
	}{
		{
			// FlowPeriod == N: checkpoints effectively never happen inside
			// the interval — the amnesia end of the spectrum. One flow
			// message total, and recovery redoes the entire interval
			// through the whole chain.
			name: "amnesia-like (FlowPeriod=N, K=1)",
			s:    Spectrum{Boxes: 4, N: 1000, FlowPeriod: 1000, BoxCost: 10},
			k:    1, wantMsgs: 1, wantRedo: 4000, wantTime: 40000,
		},
		{
			// Classic upstream backup: frequent flow messages, no internal
			// VM boundaries.
			name: "upstream backup (K=1)",
			s:    Spectrum{Boxes: 4, N: 1000, FlowPeriod: 100, BoxCost: 10},
			k:    1, wantMsgs: 10, wantRedo: 400, wantTime: 4000,
		},
		{
			// Two VMs: one internal boundary replicates every tuple; each
			// VM redoes half the backlog through half the chain.
			name: "two VMs (K=2)",
			s:    Spectrum{Boxes: 4, N: 1000, FlowPeriod: 100, BoxCost: 10},
			k:    2, wantMsgs: 1010, wantRedo: 200, wantTime: 2000,
		},
		{
			// Process-pair-like: a boundary at every box. Redo shrinks to
			// the per-box backlog, runtime messages dominate.
			name: "per-box VMs (K=Boxes)",
			s:    Spectrum{Boxes: 4, N: 1000, FlowPeriod: 100, BoxCost: 10},
			k:    4, wantMsgs: 3010, wantRedo: 100, wantTime: 1000,
		},
		{
			// Non-divisible shapes round conservatively (ceil on both the
			// per-VM backlog and the segment length).
			name: "ragged split (Boxes=5, K=3)",
			s:    Spectrum{Boxes: 5, N: 900, FlowPeriod: 90, BoxCost: 7},
			k:    3, wantMsgs: 1810, wantRedo: 150, wantTime: 1050,
		},
		{
			// K above Boxes clamps to Boxes.
			name: "clamped K",
			s:    Spectrum{Boxes: 3, N: 300, FlowPeriod: 30, BoxCost: 1},
			k:    99, wantMsgs: 610, wantRedo: 30, wantTime: 30,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := c.s.At(c.k)
			if err != nil {
				t.Fatal(err)
			}
			if p.RuntimeMessages != c.wantMsgs {
				t.Errorf("RuntimeMessages = %d, want %d", p.RuntimeMessages, c.wantMsgs)
			}
			if p.RedoneBoxExecs != c.wantRedo {
				t.Errorf("RedoneBoxExecs = %d, want %d", p.RedoneBoxExecs, c.wantRedo)
			}
			if p.RecoveryTime != c.wantTime {
				t.Errorf("RecoveryTime = %d, want %d", p.RecoveryTime, c.wantTime)
			}
		})
	}
}

// TestSpectrumTradeoffAcrossShapes sweeps several chain shapes and checks
// the §6.4 tradeoff holds everywhere: runtime messages strictly grow with
// K while redone work never grows, and the process-pair baseline always
// costs at least as many runtime messages as any K while redoing no more
// than the per-box configuration.
func TestSpectrumTradeoffAcrossShapes(t *testing.T) {
	shapes := []Spectrum{
		{Boxes: 2, N: 1000, FlowPeriod: 10, BoxCost: 3},
		{Boxes: 8, N: 5000, FlowPeriod: 250, BoxCost: 11},
		{Boxes: 16, N: 20000, FlowPeriod: 1024, BoxCost: 200},
		{Boxes: 7, N: 999, FlowPeriod: 13, BoxCost: 1},
	}
	for _, s := range shapes {
		t.Run(fmt.Sprintf("boxes=%d", s.Boxes), func(t *testing.T) {
			var prev *Point
			for k := 1; k <= s.Boxes; k++ {
				p, err := s.At(k)
				if err != nil {
					t.Fatal(err)
				}
				if prev != nil {
					if p.RuntimeMessages <= prev.RuntimeMessages {
						t.Errorf("K=%d msgs %d not > K=%d msgs %d",
							k, p.RuntimeMessages, k-1, prev.RuntimeMessages)
					}
					if p.RedoneBoxExecs > prev.RedoneBoxExecs {
						t.Errorf("K=%d redo %d grew from K=%d redo %d",
							k, p.RedoneBoxExecs, k-1, prev.RedoneBoxExecs)
					}
				}
				prev = &p
			}
			pp, err := s.ProcessPair()
			if err != nil {
				t.Fatal(err)
			}
			perBox, _ := s.At(s.Boxes)
			if pp.RuntimeMessages < perBox.RuntimeMessages {
				t.Errorf("process-pair msgs %d below per-box VMs %d",
					pp.RuntimeMessages, perBox.RuntimeMessages)
			}
			if pp.RedoneBoxExecs > perBox.RedoneBoxExecs {
				t.Errorf("process-pair redo %d above per-box VMs %d",
					pp.RedoneBoxExecs, perBox.RedoneBoxExecs)
			}
		})
	}
}
