package ha

import (
	"testing"
	"testing/quick"

	"repro/internal/stream"
)

func tup(v int64) stream.Tuple { return stream.NewTuple(stream.Int(v)) }

func TestOutputLogStampsLinkSeqs(t *testing.T) {
	l := NewOutputLog()
	for i := int64(1); i <= 5; i++ {
		sent := l.Append(tup(i))
		if sent.Seq != uint64(i) {
			t.Fatalf("link seq = %d, want %d", sent.Seq, i)
		}
	}
	if l.Sent() != 5 || l.Len() != 5 || l.NextSeq() != 6 {
		t.Errorf("log state: sent=%d len=%d next=%d", l.Sent(), l.Len(), l.NextSeq())
	}
}

func TestOutputLogTruncateAndReplay(t *testing.T) {
	l := NewOutputLog()
	for i := int64(1); i <= 10; i++ {
		l.Append(tup(i))
	}
	if n := l.Truncate(6); n != 5 {
		t.Fatalf("Truncate removed %d, want 5", n)
	}
	replay := l.Replay()
	if len(replay) != 5 || replay[0].Seq != 6 || replay[4].Seq != 10 {
		t.Fatalf("replay = %v", stream.FormatTuples(replay))
	}
	// Regressing the checkpoint must not resurrect anything.
	if n := l.Truncate(3); n != 0 {
		t.Errorf("regressed truncate removed %d", n)
	}
	if l.Bytes() == 0 {
		t.Error("bytes accounting missing")
	}
}

// TestOutputLogNeverDropsUnacked is the core safety property: any tuple
// not covered by a checkpoint must still be in the replay set.
func TestOutputLogNeverDropsUnacked(t *testing.T) {
	f := func(acks []uint8) bool {
		l := NewOutputLog()
		const n = 50
		for i := int64(1); i <= n; i++ {
			l.Append(tup(i))
		}
		var high uint64
		for _, a := range acks {
			safe := uint64(a)%n + 1
			l.Truncate(safe)
			if safe > high {
				high = safe
			}
		}
		replay := l.Replay()
		// Every seq >= high must be present, in order.
		want := high
		if want < 1 {
			want = 1
		}
		for i, tp := range replay {
			if tp.Seq != want+uint64(i) {
				return false
			}
		}
		return len(replay) == int(n-want+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDedup(t *testing.T) {
	var d Dedup
	if !d.Admit(1) || !d.Admit(2) || !d.Admit(3) {
		t.Fatal("fresh seqs must be admitted")
	}
	if d.Admit(2) || d.Admit(3) {
		t.Fatal("replayed seqs must be suppressed")
	}
	if d.Duplicates() != 2 || d.Last() != 3 {
		t.Errorf("dups=%d last=%d", d.Duplicates(), d.Last())
	}
	d.Reset()
	if !d.Admit(1) {
		t.Error("after Reset a new incarnation's seqs are admitted")
	}
}

func TestDepTrackerSafeSeqs(t *testing.T) {
	d := NewDepTracker()
	// Upstream "u1" link seqs 10,11,12 admitted as local 100,101,102;
	// upstream "u2" link seq 7 admitted as local 103.
	d.NoteIngress("u1", 10, 100)
	d.NoteIngress("u1", 11, 101)
	d.NoteIngress("u1", 12, 102)
	d.NoteIngress("u2", 7, 103)
	// State depends on local 102: u1 may truncate below link 12
	// (11 + 1); u2 gained nothing yet (its only ingress is above the
	// dependency... local 103 > 102, so no safe point advance).
	safe := d.SafeSeqs(102, true)
	if safe["u1"] != 12 {
		t.Errorf("u1 safe = %d, want 12", safe["u1"])
	}
	if safe["u2"] != 7 {
		t.Errorf("u2 safe = %d, want 7 (nothing newly safe)", safe["u2"])
	}
	// No state at all: everything ingressed is safe.
	d.NoteIngress("u1", 13, 104)
	safe = d.SafeSeqs(0, false)
	if safe["u1"] != 14 || safe["u2"] != 8 {
		t.Errorf("stateless safe = %v", safe)
	}
	if got := d.Links(); len(got) != 2 || got[0] != "u1" {
		t.Errorf("links = %v", got)
	}
	if d.String() == "" {
		t.Error("String empty")
	}
}

func TestDepTrackerMonotoneConservative(t *testing.T) {
	// Property: the safe seq never exceeds the link seq of the first
	// ingress whose local seq >= the dependency.
	f := func(depRaw uint8) bool {
		d := NewDepTracker()
		for i := uint64(1); i <= 30; i++ {
			d.NoteIngress("u", i, i*2) // local = 2*link
		}
		dep := uint64(depRaw)%60 + 1
		safe := d.SafeSeqs(dep, true)["u"]
		// Tuple with local seq >= dep must not be truncated: its link
		// seq is ceil(dep/2); safe must be <= that.
		firstNeeded := (dep + 1) / 2
		return safe <= firstNeeded+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDetectorLifecycle(t *testing.T) {
	d := NewDetector(100)
	d.Watch("s2", 0)
	if failed := d.Check(50); len(failed) != 0 {
		t.Errorf("premature failure: %v", failed)
	}
	d.Heartbeat("s2", 80)
	if failed := d.Check(150); len(failed) != 0 {
		t.Errorf("heartbeat ignored: %v", failed)
	}
	failed := d.Check(181)
	if len(failed) != 1 || failed[0] != "s2" || !d.Failed("s2") {
		t.Errorf("failure not detected: %v", failed)
	}
	// Reported once per episode.
	if again := d.Check(300); len(again) != 0 {
		t.Errorf("failure re-reported: %v", again)
	}
	// Revival on new heartbeat.
	d.Heartbeat("s2", 400)
	if d.Failed("s2") {
		t.Error("heartbeat should revive the peer")
	}
	d.Unwatch("s2")
	if failed := d.Check(1e9); len(failed) != 0 {
		t.Error("unwatched peer still reported")
	}
	// Heartbeats from unwatched peers are ignored.
	d.Heartbeat("stranger", 1)
	if failed := d.Check(1e9); len(failed) != 0 {
		t.Error("stranger adopted")
	}
}

func TestDetectorDefaultTimeout(t *testing.T) {
	d := NewDetector(0)
	d.Watch("x", 0)
	if got := d.Check(5e8); len(got) != 0 {
		t.Error("default timeout should be 1s")
	}
	if got := d.Check(2e9); len(got) != 1 {
		t.Error("default timeout should eventually fire")
	}
}

func TestSpectrumEndpoints(t *testing.T) {
	s := Spectrum{Boxes: 8, N: 100000, FlowPeriod: 1000, BoxCost: 1000}
	k1, err := s.At(1)
	if err != nil {
		t.Fatal(err)
	}
	// Pure upstream backup: only flow messages at run time.
	if k1.RuntimeMessages != 100 {
		t.Errorf("K=1 messages = %d, want 100 flow messages", k1.RuntimeMessages)
	}
	if k1.RedoneBoxExecs != 8000 {
		t.Errorf("K=1 redo = %d, want FlowPeriod*Boxes = 8000", k1.RedoneBoxExecs)
	}
	perBox, _ := s.At(8)
	pp, _ := s.ProcessPair()
	if perBox.RuntimeMessages <= k1.RuntimeMessages {
		t.Error("per-box VMs must cost more runtime messages than K=1")
	}
	if perBox.RedoneBoxExecs >= k1.RedoneBoxExecs {
		t.Error("per-box VMs must redo less than K=1")
	}
	// The paper: per-box K is "very similar to the process-pair
	// approach" — same order of runtime messages, tiny redo.
	ratio := float64(pp.RuntimeMessages) / float64(perBox.RuntimeMessages)
	if ratio < 0.5 || ratio > 2.5 {
		t.Errorf("per-box vs process-pair runtime messages ratio = %.2f", ratio)
	}
	// And process-pair is overwhelmingly more expensive than upstream
	// backup at run time.
	if pp.RuntimeMessages < 100*k1.RuntimeMessages {
		t.Errorf("process-pair %d should dwarf upstream backup %d",
			pp.RuntimeMessages, k1.RuntimeMessages)
	}
}

func TestSpectrumMonotone(t *testing.T) {
	s := Spectrum{Boxes: 16, N: 10000, FlowPeriod: 512, BoxCost: 500}
	pts, err := s.Sweep([]int{1, 2, 4, 8, 16})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].RuntimeMessages <= pts[i-1].RuntimeMessages {
			t.Errorf("runtime messages must grow with K: %+v", pts)
		}
		if pts[i].RedoneBoxExecs > pts[i-1].RedoneBoxExecs {
			t.Errorf("redo must not grow with K: %+v", pts)
		}
	}
	if pts[0].RecoveryTime != pts[0].RedoneBoxExecs*500 {
		t.Error("recovery time should be redo * BoxCost")
	}
}

func TestSpectrumValidationAndClamping(t *testing.T) {
	if _, err := (Spectrum{}).At(1); err == nil {
		t.Error("invalid spectrum should fail")
	}
	if _, err := (Spectrum{}).ProcessPair(); err == nil {
		t.Error("invalid process-pair should fail")
	}
	s := Spectrum{Boxes: 4, N: 100, FlowPeriod: 10, BoxCost: 1}
	lo, _ := s.At(-5)
	if lo.K != 1 {
		t.Error("K clamped to 1")
	}
	hi, _ := s.At(100)
	if hi.K != 4 {
		t.Error("K clamped to Boxes")
	}
	if _, err := s.Sweep([]int{1, 2}); err != nil {
		t.Error(err)
	}
}
