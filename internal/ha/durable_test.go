package ha

import (
	"testing"

	"repro/internal/events"
	"repro/internal/storage"
	"repro/internal/stream"
)

func dtup(seq uint64, v int64) stream.Tuple {
	t := stream.NewTuple(stream.Int(v))
	t.Seq = seq
	return t
}

// durableSender builds a LinkSender writing through to a segment log in
// dir, transmitting into got.
func durableSender(t *testing.T, dir string, got *[]uint64) (*LinkSender, *storage.Log) {
	t.Helper()
	l, err := storage.OpenLog(dir, storage.LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	s := NewLinkSender(func(ts []stream.Tuple) error {
		for _, tp := range ts {
			*got = append(*got, tp.Seq)
		}
		return nil
	})
	s.AttachDurable(storage.NewOutputSink(l))
	return s, l
}

// TestDurableSenderKillRestart is the sender-crash recovery unit: kill
// the process state after Send returns, rebuild from disk, resync, and
// the receiver-visible stream has no loss; replay overlap is suppressed
// by dedup exactly as a reconnect's would be.
func TestDurableSenderKillRestart(t *testing.T) {
	dir := t.TempDir()
	var wire []uint64
	s, l := durableSender(t, dir, &wire)
	for i := 1; i <= 10; i++ {
		s.Send(dtup(uint64(i*100), int64(i)))
	}
	// Receiver acknowledged the first 4; the log truncates below 5.
	s.Ack(4)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// "Crash": s and l are dropped. Restart from the same directory.
	l2, err := storage.OpenLog(dir, storage.LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	sink := storage.NewOutputSink(l2)
	origins, tuples, err := sink.RecoveredEntries()
	if err != nil {
		t.Fatal(err)
	}
	entries := make([]LogEntry, len(tuples))
	for i := range tuples {
		entries[i] = LogEntry{Origin: origins[i], Tuple: tuples[i]}
	}
	// Conservative disk truncation may retain acked entries, but never
	// fewer than the 6 unacked ones, and origins must survive intact.
	if len(entries) < 6 {
		t.Fatalf("recovered %d entries, want >= 6 unacked", len(entries))
	}
	var delivered []uint64
	dedup := &Dedup{}
	s2 := RecoverLinkSender(entries, func(ts []stream.Tuple) error {
		for _, tp := range ts {
			if dedup.Admit(tp.Seq) {
				delivered = append(delivered, tp.Seq)
			}
		}
		return nil
	})
	s2.AttachDurable(sink)
	// The live receiver had admitted link seqs 1..10 already; its dedup
	// must suppress the whole resync overlap.
	for i := uint64(1); i <= 10; i++ {
		dedup.Admit(i)
	}
	s2.Resync()
	if len(delivered) != 0 {
		t.Errorf("resync delivered %v past a live receiver's dedup, want none", delivered)
	}
	// Link sequencing resumes above the old space: a fresh Send must not
	// collide with a recovered stamp.
	s2.Send(dtup(9999, 11))
	if got := s2.Log().NextSeq(); got != 12 {
		t.Errorf("NextSeq = %d after recovery+send, want 12 (resume after old space)", got)
	}
	// The send closure runs the receiver dedup: the fresh stamp must have
	// been admitted (no collision with the recovered sequence space).
	if len(delivered) != 1 || delivered[0] != 11 {
		t.Errorf("delivered after new send = %v, want [11]", delivered)
	}
	// Origins survive the round-trip for dependency chaining.
	if o, ok := s2.Log().EarliestOrigin(); !ok || o > 500 {
		t.Errorf("EarliestOrigin = %d, %v; want an origin from the unacked suffix", o, ok)
	}
}

// TestDurableSenderSendIsCommitPoint: every tuple whose Send returned is
// on disk — killing at any point between sends loses nothing.
func TestDurableSenderSendIsCommitPoint(t *testing.T) {
	dir := t.TempDir()
	var wire []uint64
	for n := 1; n <= 5; n++ {
		s, l := durableSender(t, dir, &wire)
		_ = s
		origins, tuples, err := storage.NewOutputSink(l).RecoveredEntries()
		if err != nil {
			t.Fatal(err)
		}
		_ = origins
		// Everything sent in earlier incarnations is recovered.
		if len(tuples) != (n-1)*(n)/2 {
			t.Fatalf("incarnation %d recovered %d entries, want %d", n, len(tuples), (n-1)*n/2)
		}
		for i := 0; i < n; i++ {
			s.Send(dtup(uint64(n*1000+i), int64(i)))
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResyncCorrStamp: a correlation id set before Resync lands on the
// journaled replay event and is consumed.
func TestResyncCorrStamp(t *testing.T) {
	j := events.NewJournal("n1", 64)
	s := NewLinkSender(func([]stream.Tuple) error { return nil })
	s.Name, s.Journal = "n2/mid", j
	s.Send(dtup(1, 1))
	corr := j.NewCorr()
	s.SetCorr(corr)
	s.Resync()
	s.Resync() // second resync: corr must not leak
	evs := j.Tail(10)
	if len(evs) != 2 {
		t.Fatalf("journaled %d events, want 2", len(evs))
	}
	if evs[0].Corr != corr {
		t.Errorf("first resync corr = %x, want %x", evs[0].Corr, corr)
	}
	if evs[1].Corr != 0 {
		t.Errorf("second resync corr = %x, want 0 (consumed)", evs[1].Corr)
	}
}
