package ha

import "fmt"

// Spectrum models the recovery-time versus run-time-overhead tradeoff of
// §6.4. A physical server runs a chain of Boxes operators and processes N
// tuples; flow-message checkpoints truncate the upstream backup every
// FlowPeriod tuples. On top of the server, K virtual machines are
// established; the queue at each virtual-machine boundary is replicated to
// a physical backup at a cost of one message per entry, and each VM can
// resume from its replicated queue, supporting finer-granularity restart.
//
// The two ends of the spectrum are the paper's:
//   - K = 1 is pure upstream backup — a minimum of extra messages, but
//     recovery must redo everything since the last inter-server
//     checkpoint through the whole chain;
//   - K = Boxes is one virtual machine per box — a message each time a
//     box processes a message, "very similar to the process-pair
//     approach", with only in-transit processing lost.
type Spectrum struct {
	// Boxes is the number of operators on the server (chain length).
	Boxes int
	// N is the number of tuples processed in the measured interval.
	N int
	// FlowPeriod is the checkpoint (flow message / truncation) period in
	// tuples: how much unacknowledged history accumulates between
	// truncations.
	FlowPeriod int
	// BoxCost is the per-box per-tuple processing cost in ns, used to
	// convert redone box executions into recovery time.
	BoxCost int64
}

// Point is one configuration's modeled costs.
type Point struct {
	K int
	// RuntimeMessages is the count of extra backup messages during
	// normal processing: one per tuple per internal VM boundary, plus
	// one flow message per FlowPeriod.
	RuntimeMessages int64
	// RedoneBoxExecs is the expected number of box executions repeated
	// during recovery from a crash at an arbitrary instant: each VM
	// redoes its unacknowledged backlog (FlowPeriod spread over the K
	// boundaries) through its segment of Boxes/K operators.
	RedoneBoxExecs int64
	// RecoveryTime is RedoneBoxExecs converted to time.
	RecoveryTime int64
}

// At evaluates the model for a given number of virtual machines, clamping
// K into [1, Boxes].
func (s Spectrum) At(k int) (Point, error) {
	if s.Boxes < 1 || s.N < 1 || s.FlowPeriod < 1 {
		return Point{}, fmt.Errorf("ha: spectrum needs Boxes, N, FlowPeriod >= 1")
	}
	if k < 1 {
		k = 1
	}
	if k > s.Boxes {
		k = s.Boxes
	}
	boundaries := int64(k - 1)
	msgs := int64(s.N)*boundaries + int64(s.N/s.FlowPeriod)
	// Per-VM backlog between truncations: FlowPeriod tuples spread over
	// the k VMs, each re-run through its own Boxes/k segment. The expected
	// total is sum_i backlog_i * segLen_i = FlowPeriod * Boxes / k
	// (rounded up), strictly decreasing in k — the monotone end of the
	// §6.4 tradeoff.
	redone := (int64(s.FlowPeriod)*int64(s.Boxes) + int64(k) - 1) / int64(k)
	return Point{
		K:               k,
		RuntimeMessages: msgs,
		RedoneBoxExecs:  redone,
		RecoveryTime:    redone * s.BoxCost,
	}, nil
}

// ProcessPair models the generic process-pair approach of §6.4 as the
// comparison baseline: a checkpoint message every time a box processes a
// message ("overwhelmingly more expensive" at run time), with only the
// box calculations in process at the instant of failure redone.
func (s Spectrum) ProcessPair() (Point, error) {
	if s.Boxes < 1 || s.N < 1 {
		return Point{}, fmt.Errorf("ha: spectrum needs Boxes, N >= 1")
	}
	return Point{
		K:               s.Boxes,
		RuntimeMessages: int64(s.N) * int64(s.Boxes),
		RedoneBoxExecs:  int64(s.Boxes), // one in-process tuple re-run
		RecoveryTime:    int64(s.Boxes) * s.BoxCost,
	}, nil
}

// Sweep evaluates the model over a list of K values.
func (s Spectrum) Sweep(ks []int) ([]Point, error) {
	out := make([]Point, 0, len(ks))
	for _, k := range ks {
		p, err := s.At(k)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	return out, nil
}
