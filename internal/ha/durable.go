package ha

import (
	"repro/internal/stream"
)

// This file makes the upstream-backup output queue survive the upstream
// process itself. §6 retains the output log in volatile memory: that
// covers downstream failures (the backup replays), but a crash of the
// sending node loses the retained suffix and with it every tuple the
// downstream had not yet recorded. A DurableSink writes the log through
// to stable storage (internal/storage's segment files) so a restarted
// sender can rebuild its output queue and resume the resync protocol as
// if the link had merely dropped.

// DurableSink is the stable-storage half of an output log. Append is
// called under the log's lock before the tuple is considered sent: when
// it returns, the entry must be on disk (the segment log fsyncs per
// append), making Send's return the durability commit point. The tuple's
// Seq field carries the link sequence; origin is the tuple's original
// node-local sequence, both of which recovery must return intact.
// TruncateBefore mirrors back-channel truncation; it may retain more
// than asked (whole-segment granularity) — recovery tolerates the
// excess, the receiver's dedup suppresses it.
type DurableSink interface {
	Append(origin uint64, t stream.Tuple) error
	TruncateBefore(seq uint64) error
}

// SetDurable attaches a stable-storage sink: every subsequent Append is
// written through before it is reported sent, and every Truncate is
// forwarded. Attach before the link goes live. Sink errors do not block
// the stream — the in-memory protocol continues — but they are counted,
// because a log that silently stopped persisting is worse than one that
// never did.
func (l *OutputLog) SetDurable(d DurableSink) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.durable = d
}

// DurableErrors returns how many sink writes have failed.
func (l *OutputLog) DurableErrors() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableErrs
}

// LogEntry is one recovered output-log record: the stamped tuple (Seq is
// the link sequence) and its origin sequence.
type LogEntry struct {
	Origin uint64
	Tuple  stream.Tuple
}

// NewOutputLogFrom rebuilds an output log from recovered entries, in
// link-sequence order (disk replay order). Link sequencing resumes after
// the highest recovered stamp, so the new incarnation extends the old
// sequence space instead of colliding with it. The recovered entries may
// include tuples the receiver already acknowledged (disk truncation is
// whole-segment conservative); the resync replays them and the
// receiver's dedup drops them.
func NewOutputLogFrom(entries []LogEntry) *OutputLog {
	l := NewOutputLog()
	for _, e := range entries {
		l.q.Push(e.Tuple)
		l.origins = append(l.origins, e.Origin)
		if e.Tuple.Seq >= l.nextSeq {
			l.nextSeq = e.Tuple.Seq + 1
		}
	}
	l.sent = uint64(len(entries))
	return l
}

// RecoverLinkSender rebuilds a sender from its durable log's recovered
// entries. The caller wires the same DurableSink back with
// AttachDurable, then lets the transport's on-established callback run
// Resync: the retained suffix replays through the normal reconnect path
// and the restarted node has lost nothing.
func RecoverLinkSender(entries []LogEntry, send func([]stream.Tuple) error) *LinkSender {
	return &LinkSender{log: NewOutputLogFrom(entries), send: send}
}

// AttachDurable wires a stable-storage sink through to the sender's
// output log (see OutputLog.SetDurable).
func (s *LinkSender) AttachDurable(d DurableSink) { s.log.SetDurable(d) }

// SetCorr stamps the next Resync's journal event with a correlation id,
// chaining the replay to the recovery (or fault) that caused it. The id
// is consumed by the next Resync and then cleared.
func (s *LinkSender) SetCorr(corr uint64) {
	s.corrMu.Lock()
	s.corr = corr
	s.corrMu.Unlock()
}

// takeCorr returns and clears the pending correlation id.
func (s *LinkSender) takeCorr() uint64 {
	s.corrMu.Lock()
	c := s.corr
	s.corr = 0
	s.corrMu.Unlock()
	return c
}
