package ha

import (
	"sync"
	"testing"

	"repro/internal/events"
	"repro/internal/stream"
)

// lossyWire simulates a link that can drop sends; delivered batches land
// in a receiver.
type lossyWire struct {
	mu      sync.Mutex
	drop    bool
	batches [][]stream.Tuple
}

func (w *lossyWire) send(batch []stream.Tuple) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.drop {
		return nil // silently lost on the wire — sender can't tell
	}
	cp := append([]stream.Tuple(nil), batch...)
	w.batches = append(w.batches, cp)
	return nil
}

func (w *lossyWire) setDrop(on bool) {
	w.mu.Lock()
	w.drop = on
	w.mu.Unlock()
}

func (w *lossyWire) drain() [][]stream.Tuple {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := w.batches
	w.batches = nil
	return out
}

func tuple(v int64) stream.Tuple { return stream.NewTuple(stream.Int(v)) }

// TestLinkSenderReceiverNoLossNoDupAcrossDrop: drop a window of sends,
// Resync, and verify the receiver saw every payload exactly once.
func TestLinkSenderReceiverNoLossNoDupAcrossDrop(t *testing.T) {
	wire := &lossyWire{}
	s := NewLinkSender(wire.send)

	var got []int64
	var acked []uint64
	r := NewLinkReceiver(
		func(t stream.Tuple) { got = append(got, t.Field(0).AsInt()) },
		func(recv uint64) { acked = append(acked, recv) },
		4)

	deliver := func() {
		for _, b := range wire.drain() {
			r.OnBatch(b)
		}
	}

	for i := 0; i < 10; i++ {
		s.Send(tuple(int64(i)))
	}
	deliver()
	for _, recv := range acked {
		s.Ack(recv)
	}
	acked = nil
	if s.Outstanding() >= 10 {
		t.Fatalf("acks did not truncate: outstanding = %d", s.Outstanding())
	}

	// A window of losses, then reconnect + resync.
	wire.setDrop(true)
	for i := 10; i < 20; i++ {
		s.Send(tuple(int64(i)))
	}
	wire.setDrop(false)
	s.Resync()
	deliver()
	r.AckNow()
	for _, recv := range acked {
		s.Ack(recv)
	}

	if s.Outstanding() != 0 {
		t.Errorf("outstanding after full ack = %d", s.Outstanding())
	}
	seen := map[int64]int{}
	for _, v := range got {
		seen[v]++
	}
	for i := int64(0); i < 20; i++ {
		if seen[i] != 1 {
			t.Errorf("payload %d delivered %d times", i, seen[i])
		}
	}
	if r.Holes() != 0 {
		t.Errorf("holes = %d", r.Holes())
	}
}

// TestLinkResyncOverlapSuppressed: a resync that re-sends tuples the
// receiver already admitted must be absorbed by dedup.
func TestLinkResyncOverlapSuppressed(t *testing.T) {
	wire := &lossyWire{}
	s := NewLinkSender(wire.send)
	var got []int64
	r := NewLinkReceiver(
		func(t stream.Tuple) { got = append(got, t.Field(0).AsInt()) },
		nil, 1)

	for i := 0; i < 5; i++ {
		s.Send(tuple(int64(i)))
	}
	for _, b := range wire.drain() {
		r.OnBatch(b)
	}
	// No acks reached the sender: a reconnect resyncs everything.
	if n := s.Resync(); n != 5 {
		t.Errorf("Resync returned outstanding %d, want 5", n)
	}
	for _, b := range wire.drain() {
		r.OnBatch(b)
	}
	if len(got) != 5 {
		t.Errorf("delivered %d tuples, want 5 (dups escaped dedup)", len(got))
	}
	if r.Suppressed() != 5 {
		t.Errorf("Suppressed = %d, want 5", r.Suppressed())
	}
	if s.Replayed() != 5 {
		t.Errorf("Replayed = %d, want 5", s.Replayed())
	}
}

// TestLinkAckCodec round-trips the back-channel payload and rejects junk.
func TestLinkAckCodec(t *testing.T) {
	for _, recv := range []uint64{0, 1, 127, 128, 1 << 40} {
		got, ok := ParseLinkAck(AppendLinkAck(nil, recv))
		if !ok || got != recv {
			t.Errorf("round-trip %d: got %d ok=%v", recv, got, ok)
		}
	}
	for _, bad := range [][]byte{nil, {}, {0x6C}, {0x00, 0x01}, {0x6C, 0x80}, AppendLinkAck([]byte{0x6C}, 7)[:1]} {
		if _, ok := ParseLinkAck(bad); ok {
			t.Errorf("ParseLinkAck(%v) accepted junk", bad)
		}
	}
	if !IsLinkBatch(LinkBatchCtrl()) {
		t.Error("LinkBatchCtrl not recognized")
	}
	if IsLinkBatch(nil) || IsLinkBatch([]byte{0x00}) || IsLinkBatch(AppendLinkAck(nil, 1)) {
		t.Error("IsLinkBatch accepted junk")
	}
}

// TestLinkAckEveryCadence: acks fire on the cadence plus AckNow.
func TestLinkAckEveryCadence(t *testing.T) {
	wire := &lossyWire{}
	s := NewLinkSender(wire.send)
	var acks []uint64
	r := NewLinkReceiver(func(stream.Tuple) {}, func(recv uint64) { acks = append(acks, recv) }, 3)
	for i := 0; i < 7; i++ {
		s.Send(tuple(int64(i)))
	}
	for _, b := range wire.drain() {
		r.OnBatch(b) // one tuple per batch: cadence counts admissions
	}
	if len(acks) != 2 {
		t.Errorf("acks after 7 singleton batches at cadence 3 = %v, want 2", acks)
	}
	r.AckNow()
	if len(acks) != 3 || acks[len(acks)-1] != 7 {
		t.Errorf("AckNow: acks = %v, want final complete prefix 7", acks)
	}
}

// TestResyncJournalsReplaySummary: a Resync with a journal attached
// records how much it replayed and how much remains retained.
func TestResyncJournalsReplaySummary(t *testing.T) {
	wire := &lossyWire{}
	s := NewLinkSender(wire.send)
	s.Name = "nodeB/out"
	s.Journal = events.NewJournal("nodeA", 16)
	wire.setDrop(true)
	for i := 0; i < 5; i++ {
		s.Send(tuple(int64(i)))
	}
	wire.setDrop(false)
	s.Resync()
	evs := s.Journal.Tail(4)
	if len(evs) != 1 {
		t.Fatalf("journal = %s; want one ha-replay event", events.Format(evs))
	}
	ev := evs[0]
	if ev.Kind != events.KindHAReplay || ev.Subject != "nodeB/out" {
		t.Fatalf("event = %+v", ev)
	}
	if ev.V1 != 5 {
		t.Errorf("replayed = %v; want 5", ev.V1)
	}
	if ev.V2 != 5 {
		t.Errorf("remaining = %v; want 5 (nothing acked yet)", ev.V2)
	}
}
