// Package ha implements the high-availability design of §6: k-safe
// upstream backup. Each server acts as backup for its downstream servers
// by holding processed tuples in its output queues until their effects are
// safely recorded elsewhere; flow messages propagate dependency
// checkpoints downstream and back-channel messages truncate the queues;
// heartbeats detect failures; and on failure the backup replays its output
// log, emulating the failed server. A process-pair checkpointing model and
// a K-virtual-machine granularity knob reproduce the recovery-time versus
// run-time-overhead spectrum of §6.4.
package ha

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stream"
)

// OutputLog is one server's output queue toward one downstream server:
// every tuple sent is retained (with its per-link sequence number, §6.2)
// until a back-channel checkpoint says all downstream effects are safe.
// On failure, the retained suffix is replayed.
type OutputLog struct {
	mu      sync.Mutex
	q       *stream.Queue
	origins []uint64 // origin (node-local) seq of each retained tuple
	oHead   int
	nextSeq uint64
	acked   uint64 // highest link seq known safe (exclusive truncation point)
	sent    uint64
}

// NewOutputLog returns an empty log; link sequence numbers start at 1.
func NewOutputLog() *OutputLog {
	return &OutputLog{q: stream.NewQueue(64), nextSeq: 1}
}

// Append records a tuple about to be sent, stamping it with the link's
// next sequence number, and returns the stamped tuple (the Seq field in
// the sent copy is the link sequence — the receiving server regenerates
// per-tuple numbers from the base, §6.2). The tuple's original Seq is
// retained as its origin, which EarliestOrigin exposes for k >= 2 safety:
// an upstream server must keep tuples until their effects clear servers
// two hops down, so this server's unacknowledged output counts toward its
// own dependency low-water mark.
func (l *OutputLog) Append(t stream.Tuple) stream.Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	origin := t.Seq
	t.Seq = l.nextSeq
	l.nextSeq++
	l.sent++
	l.q.Push(t)
	l.origins = append(l.origins, origin)
	return t
}

// EarliestOrigin returns the smallest origin sequence among retained
// (unacknowledged) tuples; ok is false when the log is empty.
func (l *OutputLog) EarliestOrigin() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	live := l.origins[l.oHead:]
	if len(live) == 0 {
		return 0, false
	}
	min := live[0]
	for _, o := range live[1:] {
		if o < min {
			min = o
		}
	}
	return min, true
}

// Truncate discards retained tuples with link seq strictly below safeSeq
// (the back-channel checkpoint of §6.2), returning how many were freed.
func (l *OutputLog) Truncate(safeSeq uint64) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if safeSeq > l.acked {
		l.acked = safeSeq
	}
	n := l.q.TruncateBefore(safeSeq)
	l.oHead += n
	if l.oHead > 4096 && l.oHead*2 > len(l.origins) {
		l.origins = append([]uint64(nil), l.origins[l.oHead:]...)
		l.oHead = 0
	}
	return n
}

// Replay returns the retained suffix in order — everything whose
// downstream effects are not yet known safe. The recovery procedure
// (§6.3) processes exactly these tuples.
func (l *OutputLog) Replay() []stream.Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Snapshot()
}

// Len returns the number of retained tuples.
func (l *OutputLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Len()
}

// Bytes returns the retained footprint.
func (l *OutputLog) Bytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Bytes()
}

// Sent returns the total tuples ever appended.
func (l *OutputLog) Sent() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent
}

// NextSeq returns the next link sequence number to be assigned.
func (l *OutputLog) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Dedup suppresses duplicate deliveries on one incoming link: replay after
// a failover re-sends retained tuples, and the receiver must accept each
// link sequence number at most once. k-safety guarantees no loss; Dedup
// keeps the duplicates from inflating downstream state.
type Dedup struct {
	mu   sync.Mutex
	last uint64
	dups uint64
}

// Admit reports whether the tuple with the given link seq is new; false
// means it is a duplicate (or reordered below the high-water mark) and
// must be discarded.
func (d *Dedup) Admit(linkSeq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if linkSeq <= d.last {
		d.dups++
		return false
	}
	d.last = linkSeq
	return true
}

// Last returns the highest admitted link sequence.
func (d *Dedup) Last() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// Duplicates returns how many deliveries were suppressed.
func (d *Dedup) Duplicates() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// Reset clears the high-water mark. A receiver calls it when a new
// upstream incarnation takes over the link after recovery (new link,
// fresh sequence space).
func (d *Dedup) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last = 0
}

// DepTracker translates a node's internal dependency low-water mark back
// into per-upstream-link sequence numbers for the back channel. Tuples are
// re-sequenced into a node-local space at ingress; because both spaces are
// monotone, retaining a ring of (localSeq, linkSeq) ingress pairs lets the
// node answer: "given that my state depends on nothing below local
// sequence L, which link sequence may upstream U truncate below?"
type DepTracker struct {
	mu       sync.Mutex
	links    map[string][]seqPair // upstream link -> ingress pairs (ascending)
	lastSafe map[string]uint64    // last safe point computed per link
}

type seqPair struct {
	local uint64
	link  uint64
}

// NewDepTracker returns an empty tracker.
func NewDepTracker() *DepTracker {
	return &DepTracker{links: map[string][]seqPair{}, lastSafe: map[string]uint64{}}
}

// NoteIngress records that the tuple with upstream link sequence linkSeq
// was admitted as local sequence localSeq on the named link.
func (d *DepTracker) NoteIngress(link string, linkSeq, localSeq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.links[link] = append(d.links[link], seqPair{local: localSeq, link: linkSeq})
}

// SafeSeqs returns, for every upstream link, the link sequence below which
// the upstream may truncate, given that the node's state depends on
// nothing below localDep (hasDep false means the node holds no state: all
// ingressed tuples are safe). The returned values are conservative: a
// link's safe point is the link seq of the latest ingress with local seq
// at or below localDep.
func (d *DepTracker) SafeSeqs(localDep uint64, hasDep bool) map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]uint64, len(d.links))
	for link, pairs := range d.links {
		if len(pairs) == 0 {
			// Nothing new since the last computation: repeat the last
			// answer so late or repeated queries (the §6.2 pull variant)
			// still learn the truncation point.
			if s, ok := d.lastSafe[link]; ok {
				out[link] = s
			}
			continue
		}
		if !hasDep {
			// Nothing retained: everything ingressed so far is safe.
			last := pairs[len(pairs)-1]
			out[link] = last.link + 1
			d.links[link] = pairs[:0]
			d.lastSafe[link] = out[link]
			continue
		}
		// Find the last pair with local < localDep: its link seq + 1 is
		// safe (everything strictly below the dependency).
		i := sort.Search(len(pairs), func(i int) bool { return pairs[i].local >= localDep })
		if i == 0 {
			out[link] = pairs[0].link // nothing safe yet beyond prior acks
		} else {
			out[link] = pairs[i-1].link + 1
			// Drop pairs below the dependency; they will never be needed.
			d.links[link] = append(d.links[link][:0], pairs[i-1:]...)
		}
		if prev, ok := d.lastSafe[link]; !ok || out[link] > prev {
			d.lastSafe[link] = out[link]
		}
	}
	return out
}

// Links returns the tracked upstream link names, sorted.
func (d *DepTracker) Links() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.links))
	for l := range d.links {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders tracker occupancy for diagnostics.
func (d *DepTracker) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for _, p := range d.links {
		total += len(p)
	}
	return fmt.Sprintf("deptracker{links: %d, pairs: %d}", len(d.links), total)
}
