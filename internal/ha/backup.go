// Package ha implements the high-availability design of §6: k-safe
// upstream backup. Each server acts as backup for its downstream servers
// by holding processed tuples in its output queues until their effects are
// safely recorded elsewhere; flow messages propagate dependency
// checkpoints downstream and back-channel messages truncate the queues;
// heartbeats detect failures; and on failure the backup replays its output
// log, emulating the failed server. A process-pair checkpointing model and
// a K-virtual-machine granularity knob reproduce the recovery-time versus
// run-time-overhead spectrum of §6.4.
package ha

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/stream"
)

// OutputLog is one server's output queue toward one downstream server:
// every tuple sent is retained (with its per-link sequence number, §6.2)
// until a back-channel checkpoint says all downstream effects are safe.
// On failure, the retained suffix is replayed.
type OutputLog struct {
	mu         sync.Mutex
	q          *stream.Queue
	origins    []uint64 // origin (node-local) seq of each retained tuple
	oHead      int
	nextSeq    uint64
	acked      uint64 // highest link seq known safe (exclusive truncation point)
	received   uint64 // highest link seq the downstream confirmed received
	sent       uint64
	onTruncate func([]stream.Tuple)
	// durable, when set, receives a write-through copy of every append
	// before it is reported sent, and mirrors truncation (see durable.go).
	durable     DurableSink
	durableErrs uint64
}

// NewOutputLog returns an empty log; link sequence numbers start at 1.
func NewOutputLog() *OutputLog {
	return &OutputLog{q: stream.NewQueue(64), nextSeq: 1}
}

// Append records a tuple about to be sent, stamping it with the link's
// next sequence number, and returns the stamped tuple (the Seq field in
// the sent copy is the link sequence — the receiving server regenerates
// per-tuple numbers from the base, §6.2). The tuple's original Seq is
// retained as its origin, which EarliestOrigin exposes for dependency
// chaining: an upstream server must keep tuples until their effects are
// safe beyond this server's volatile state, so this server's
// unacknowledged output counts toward its own dependency low-water mark.
func (l *OutputLog) Append(t stream.Tuple) stream.Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	origin := t.Seq
	t.Seq = l.nextSeq
	l.nextSeq++
	l.sent++
	l.q.Push(t)
	l.origins = append(l.origins, origin)
	if l.durable != nil {
		// Disk first, then the caller may transmit: when Append returns,
		// the entry is on stable storage and a crash replays it.
		if err := l.durable.Append(origin, t); err != nil {
			l.durableErrs++
		}
	}
	return t
}

// EarliestOrigin returns the smallest origin sequence among retained
// (unacknowledged) tuples; ok is false when the log is empty.
func (l *OutputLog) EarliestOrigin() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	live := l.origins[l.oHead:]
	if len(live) == 0 {
		return 0, false
	}
	min := live[0]
	for _, o := range live[1:] {
		if o < min {
			min = o
		}
	}
	return min, true
}

// SetReceived records the downstream's complete-prefix acknowledgement
// (Dedup.ContiguousRecv carried on the back channel): every retained tuple
// with link seq at or below it has been received — recorded at one server
// downstream — though not necessarily processed or made safe further on.
func (l *OutputLog) SetReceived(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.received {
		l.received = seq
	}
}

// Received returns the highest link seq the downstream has confirmed
// received (SetReceived's high-water mark). The reconnect path replays
// everything the log retains above it.
func (l *OutputLog) Received() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.received
}

// EarliestOriginUnreceived returns the smallest origin sequence among
// retained tuples the downstream has NOT confirmed receiving; ok is false
// when every retained tuple is known received. This is the k=1 dependency
// rule of §6.2: a server may acknowledge its input once the effects are
// recorded at one downstream server — received there — whereas k>=2 keeps
// the full retained log in the dependency (EarliestOrigin) so effects
// survive deeper concurrent failures.
func (l *OutputLog) EarliestOriginUnreceived() (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	all := l.q.Snapshot()
	live := l.origins[l.oHead:]
	var min uint64
	found := false
	for i, t := range all {
		if t.Seq <= l.received {
			continue
		}
		if o := live[i]; !found || o < min {
			min, found = o, true
		}
	}
	return min, found
}

// SetOnTruncate installs an audit hook receiving every tuple the log
// discards, in truncation order. The truncation-safety oracle of the
// chaos harness uses it to assert that no discarded tuple was still
// depended on by a downstream server (a dependency-boundary assertion):
// with at most k concurrent failures, every truncated tuple's effects
// must eventually reach the application output.
func (l *OutputLog) SetOnTruncate(fn func([]stream.Tuple)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.onTruncate = fn
}

// Truncate discards retained tuples with link seq strictly below safeSeq
// (the back-channel checkpoint of §6.2), returning how many were freed.
func (l *OutputLog) Truncate(safeSeq uint64) int {
	l.mu.Lock()
	if safeSeq > l.acked {
		l.acked = safeSeq
	}
	var audit []stream.Tuple
	fn := l.onTruncate
	if fn != nil {
		for _, t := range l.q.Snapshot() {
			if t.Seq < safeSeq {
				audit = append(audit, t)
			}
		}
	}
	n := l.q.TruncateBefore(safeSeq)
	if l.durable != nil {
		if err := l.durable.TruncateBefore(safeSeq); err != nil {
			l.durableErrs++
		}
	}
	l.oHead += n
	if l.oHead > 4096 && l.oHead*2 > len(l.origins) {
		l.origins = append([]uint64(nil), l.origins[l.oHead:]...)
		l.oHead = 0
	}
	l.mu.Unlock()
	// The audit hook runs outside the lock so it may inspect the log.
	if fn != nil && len(audit) > 0 {
		fn(audit)
	}
	return n
}

// Replay returns the retained suffix in order — everything whose
// downstream effects are not yet known safe. The recovery procedure
// (§6.3) processes exactly these tuples.
func (l *OutputLog) Replay() []stream.Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Snapshot()
}

// ReplayFrom returns the retained tuples with link seq strictly above
// after, in order. The gap-repair path uses it: when a back channel
// reports the downstream's highest received sequence, everything the log
// still holds beyond that point was dropped by a lossy or partitioned
// link and can be retransmitted — the upstream-backup queue doubling as
// the retransmission buffer.
func (l *OutputLog) ReplayFrom(after uint64) []stream.Tuple {
	l.mu.Lock()
	defer l.mu.Unlock()
	all := l.q.Snapshot()
	i := sort.Search(len(all), func(i int) bool { return all[i].Seq > after })
	if i == len(all) {
		return nil
	}
	return all[i:]
}

// Len returns the number of retained tuples.
func (l *OutputLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Len()
}

// Bytes returns the retained footprint.
func (l *OutputLog) Bytes() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.q.Bytes()
}

// Sent returns the total tuples ever appended.
func (l *OutputLog) Sent() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sent
}

// NextSeq returns the next link sequence number to be assigned.
func (l *OutputLog) NextSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextSeq
}

// Dedup suppresses duplicate deliveries on one incoming link: replay after
// a failover re-sends retained tuples, and the receiver must accept each
// link sequence number at most once. k-safety guarantees no loss; Dedup
// keeps the duplicates from inflating downstream state.
//
// A lossy or briefly partitioned link can also drop messages, in which
// case later sequence numbers arrive above a gap. Dedup admits them (the
// operators above tolerate disorder) but records each skipped number as a
// hole, so that (a) the retransmitted tuple is admitted exactly once when
// it finally arrives, and (b) ContiguousRecv tells the upstream how far
// the prefix is complete — the gap-repair signal carried on the back
// channel.
type Dedup struct {
	mu    sync.Mutex
	last  uint64
	dups  uint64
	holes map[uint64]bool
}

// Admit reports whether the tuple with the given link seq is new; false
// means it is a duplicate and must be discarded. A seq above the
// high-water mark opens holes for every skipped number; a seq at or below
// the mark is admitted only if it fills a hole.
func (d *Dedup) Admit(linkSeq uint64) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	if linkSeq > d.last {
		if linkSeq > d.last+1 {
			if d.holes == nil {
				d.holes = map[uint64]bool{}
			}
			for h := d.last + 1; h < linkSeq; h++ {
				d.holes[h] = true
			}
		}
		d.last = linkSeq
		return true
	}
	if d.holes[linkSeq] {
		delete(d.holes, linkSeq)
		return true
	}
	d.dups++
	return false
}

// Last returns the highest admitted link sequence.
func (d *Dedup) Last() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.last
}

// ContiguousRecv returns the highest link sequence below which every
// number has been admitted — the complete prefix. Equal to Last when no
// holes are outstanding.
func (d *Dedup) ContiguousRecv() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.holes) == 0 {
		return d.last
	}
	min := uint64(0)
	for h := range d.holes {
		if min == 0 || h < min {
			min = h
		}
	}
	return min - 1
}

// Holes returns how many skipped sequence numbers are still outstanding.
func (d *Dedup) Holes() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.holes)
}

// Duplicates returns how many deliveries were suppressed.
func (d *Dedup) Duplicates() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dups
}

// Seed raises the high-water mark without opening holes. A receiver that
// takes over a link mid-sequence-space (an adopter being replayed the
// retained suffix after a failover) calls it with the upstream log's
// truncation point: the prefix below it is already safe downstream and
// will never be sent again, so it must not be mistaken for loss holes.
func (d *Dedup) Seed(seq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if seq > d.last && len(d.holes) == 0 {
		d.last = seq
	}
}

// Reset clears the high-water mark and any outstanding holes. A receiver
// calls it when a new upstream incarnation takes over the link after
// recovery (new link, fresh sequence space).
func (d *Dedup) Reset() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last = 0
	d.holes = nil
}

// DepTracker translates a node's internal dependency low-water mark back
// into per-upstream-link sequence numbers for the back channel. Tuples are
// re-sequenced into a node-local space at ingress; because both spaces are
// monotone, retaining a ring of (localSeq, linkSeq) ingress pairs lets the
// node answer: "given that my state depends on nothing below local
// sequence L, which link sequence may upstream U truncate below?"
type DepTracker struct {
	mu       sync.Mutex
	links    map[string][]seqPair // upstream link -> ingress pairs (ascending)
	lastSafe map[string]uint64    // last safe point computed per link
}

type seqPair struct {
	local uint64
	link  uint64
}

// NewDepTracker returns an empty tracker.
func NewDepTracker() *DepTracker {
	return &DepTracker{links: map[string][]seqPair{}, lastSafe: map[string]uint64{}}
}

// NoteIngress records that the tuple with upstream link sequence linkSeq
// was admitted as local sequence localSeq on the named link.
func (d *DepTracker) NoteIngress(link string, linkSeq, localSeq uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.links[link] = append(d.links[link], seqPair{local: localSeq, link: linkSeq})
}

// SafeSeqs returns, for every upstream link, the link sequence below which
// the upstream may truncate, given that the node's state depends on
// nothing below localDep (hasDep false means the node holds no state: all
// ingressed tuples are safe). The safe point is the smallest link sequence
// among still-needed ingresses — pairs are ascending in local seq (admit
// order) but NOT necessarily in link seq, because a retransmitted tuple
// that fills a loss hole is admitted late with a high local seq; taking a
// minimum keeps the answer conservative under that reordering.
func (d *DepTracker) SafeSeqs(localDep uint64, hasDep bool) map[string]uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make(map[string]uint64, len(d.links))
	for link, pairs := range d.links {
		if len(pairs) == 0 {
			// Nothing new since the last computation: repeat the last
			// answer so late or repeated queries (the §6.2 pull variant)
			// still learn the truncation point.
			if s, ok := d.lastSafe[link]; ok {
				out[link] = s
			}
			continue
		}
		var safe uint64
		if !hasDep {
			// Nothing retained: everything ingressed so far is safe.
			max := pairs[0].link
			for _, p := range pairs[1:] {
				if p.link > max {
					max = p.link
				}
			}
			safe = max + 1
			d.links[link] = pairs[:0]
		} else {
			minNeeded, maxLink := uint64(0), uint64(0)
			kept := pairs[:0]
			for _, p := range pairs {
				if p.link > maxLink {
					maxLink = p.link
				}
				if p.local >= localDep {
					if minNeeded == 0 || p.link < minNeeded {
						minNeeded = p.link
					}
					kept = append(kept, p)
				}
			}
			if minNeeded != 0 {
				safe = minNeeded
			} else {
				safe = maxLink + 1
			}
			d.links[link] = kept
		}
		if prev, ok := d.lastSafe[link]; ok && prev > safe {
			safe = prev // never regress a previously reported safe point
		}
		d.lastSafe[link] = safe
		out[link] = safe
	}
	return out
}

// ResetLink forgets everything tracked for one upstream link: its ingress
// pairs and its last safe point. A receiver calls it (together with
// Dedup.Reset) when a new upstream incarnation takes over the link after a
// recovery — the old incarnation's link sequence space is dead, and a
// stale safe point from it would truncate the new producer's log below
// tuples a failure could still need (the dependency-boundary hazard the
// chaos harness's truncation oracle checks for).
func (d *DepTracker) ResetLink(link string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.links, link)
	delete(d.lastSafe, link)
}

// Links returns the tracked upstream link names, sorted.
func (d *DepTracker) Links() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]string, 0, len(d.links))
	for l := range d.links {
		out = append(out, l)
	}
	sort.Strings(out)
	return out
}

// String renders tracker occupancy for diagnostics.
func (d *DepTracker) String() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	total := 0
	for _, p := range d.links {
		total += len(p)
	}
	return fmt.Sprintf("deptracker{links: %d, pairs: %d}", len(d.links), total)
}
