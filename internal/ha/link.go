package ha

import (
	"encoding/binary"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/stream"
)

// This file glues the upstream-backup machinery (§6) to a real, breakable
// transport link. The netsim path exercises OutputLog/Dedup through the
// cluster's flow protocol; LinkSender and LinkReceiver give the TCP path
// the same guarantee with a far smaller protocol: every tuple is stamped
// with a link sequence and retained until the receiver acknowledges a
// complete prefix, the receiver admits each sequence at most once, and a
// reconnect replays the retained unacknowledged suffix. No loss, no
// duplicates, across any number of connection deaths.

// LinkSender drives one HA-protected outbound tuple stream: Send stamps
// and retains via an OutputLog, Ack truncates on the receiver's complete
// prefix, and Resync retransmits the unacknowledged retained suffix —
// the reconnect half of the guarantee, hooked to the transport's
// on-established callback.
type LinkSender struct {
	// Name labels this sender's stream in journal events, and Journal
	// receives a KindHAReplay summary per Resync. Both optional; set them
	// before the link goes live (they are read without s.mu).
	Name    string
	Journal *events.Journal

	mu       sync.Mutex
	log      *OutputLog
	send     func([]stream.Tuple) error
	replayed int64

	// corr is the pending correlation id for the next Resync's journal
	// event (SetCorr/takeCorr in durable.go), under its own lock so the
	// recovery path can stamp it without contending with Send.
	corrMu sync.Mutex
	corr   uint64
}

// NewLinkSender wraps an output log around send, which transmits one
// batch of already-stamped tuples (its error is advisory: a failed send
// leaves the tuples retained, so a later Resync retransmits them).
func NewLinkSender(send func([]stream.Tuple) error) *LinkSender {
	return &LinkSender{log: NewOutputLog(), send: send}
}

// Send stamps the tuple with the link's next sequence, retains it, and
// transmits it. Transmission failure is not an error for the caller —
// the tuple is safe in the log and will be replayed.
func (s *LinkSender) Send(t stream.Tuple) {
	s.mu.Lock()
	defer s.mu.Unlock()
	stamped := s.log.Append(t)
	_ = s.send([]stream.Tuple{stamped})
}

// Ack records the receiver's complete-prefix acknowledgement: everything
// at or below recv is received downstream, so the log truncates below
// recv+1. (This treats the receiver as the terminal consumer; a deeper
// pipeline would hold truncation until its own downstream effects are
// safe, as the netsim cluster protocol does.)
func (s *LinkSender) Ack(recv uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.log.SetReceived(recv)
	s.log.Truncate(recv + 1)
}

// Resync retransmits every retained tuple above the receiver's last
// acknowledged prefix, in chunks, and returns how many were replayed.
// Call it when the link re-establishes; duplicates from acks in flight
// are suppressed by the receiver's Dedup.
func (s *LinkSender) Resync() int {
	s.mu.Lock()
	pend := s.log.ReplayFrom(s.log.Received())
	const chunk = 128
	replayed := 0
	for len(pend) > 0 {
		n := min(chunk, len(pend))
		if err := s.send(pend[:n]); err != nil {
			break // link died again; the next re-establish retries
		}
		replayed += n
		pend = pend[n:]
	}
	s.replayed += int64(replayed)
	remaining := s.log.Len()
	s.mu.Unlock()
	if s.Journal != nil {
		// V1 = tuples replayed this resync, V2 = still retained unacked.
		// Corr chains the replay to the recovery or fault that caused it.
		s.Journal.Append(events.Event{
			Time: time.Now().UnixNano(), Kind: events.KindHAReplay,
			Subject: s.Name, Corr: s.takeCorr(),
			V1: float64(replayed), V2: float64(remaining),
		})
	}
	return remaining
}

// Outstanding returns how many tuples are retained awaiting ack.
func (s *LinkSender) Outstanding() int { return s.log.Len() }

// Replayed returns how many tuples Resync has retransmitted in total.
func (s *LinkSender) Replayed() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.replayed
}

// Log exposes the underlying output log (telemetry, tests).
func (s *LinkSender) Log() *OutputLog { return s.log }

// LinkReceiver is the downstream half: it dedups by link sequence,
// delivers fresh tuples, and acknowledges the complete received prefix
// every ackEvery admissions (plus on demand via AckNow).
type LinkReceiver struct {
	dedup    Dedup
	deliver  func(stream.Tuple)
	ack      func(recv uint64)
	ackEvery int

	mu       sync.Mutex
	sinceAck int
}

// NewLinkReceiver delivers admitted tuples to deliver and reports the
// complete prefix through ack every ackEvery admissions (≤0 means every
// admission). ack may be nil for a receiver acknowledged out of band.
func NewLinkReceiver(deliver func(stream.Tuple), ack func(recv uint64), ackEvery int) *LinkReceiver {
	if ackEvery <= 0 {
		ackEvery = 1
	}
	return &LinkReceiver{deliver: deliver, ack: ack, ackEvery: ackEvery}
}

// OnBatch admits each tuple's link sequence at most once, delivering the
// fresh ones in order. Duplicates (reconnect replay overlap) are dropped.
func (r *LinkReceiver) OnBatch(tuples []stream.Tuple) {
	admitted := 0
	for _, t := range tuples {
		if r.dedup.Admit(t.Seq) {
			r.deliver(t)
			admitted++
		}
	}
	if admitted == 0 || r.ack == nil {
		return
	}
	r.mu.Lock()
	r.sinceAck += admitted
	due := r.sinceAck >= r.ackEvery
	if due {
		r.sinceAck = 0
	}
	r.mu.Unlock()
	if due {
		r.ack(r.dedup.ContiguousRecv())
	}
}

// AckNow sends the current complete prefix regardless of the cadence —
// call it periodically (or on quiesce) so the sender's log drains even
// when the tail of the stream doesn't land on an ackEvery boundary.
func (r *LinkReceiver) AckNow() {
	if r.ack == nil {
		return
	}
	r.mu.Lock()
	r.sinceAck = 0
	r.mu.Unlock()
	r.ack(r.dedup.ContiguousRecv())
}

// Suppressed returns how many duplicate deliveries were dropped.
func (r *LinkReceiver) Suppressed() uint64 { return r.dedup.Duplicates() }

// Holes returns how many link sequences are still missing below the
// high-water mark.
func (r *LinkReceiver) Holes() int { return r.dedup.Holes() }

// Last returns the highest admitted link sequence.
func (r *LinkReceiver) Last() uint64 { return r.dedup.Last() }

// ContiguousRecv returns the complete received prefix — the value a
// node checkpoint records for this inbound link.
func (r *LinkReceiver) ContiguousRecv() uint64 { return r.dedup.ContiguousRecv() }

// SeedDedup raises the dedup high-water mark without opening holes. A
// restarted node calls it with its checkpointed ContiguousRecv before
// any traffic: the prefix below it was already delivered (and acked) by
// the previous incarnation, so a resync replaying it must be suppressed,
// not re-ingested.
func (r *LinkReceiver) SeedDedup(seq uint64) { r.dedup.Seed(seq) }

// Wire tagging: the HA-framed TCP path marks its data batches so a node
// can serve both legacy (untagged, delivered inline) and HA-framed
// traffic on the same streams, and carries acks as a back-channel
// control payload.

// linkTagByte marks a transport control payload as belonging to the
// HA-framed link protocol.
const linkTagByte = 0x6C // 'l'

// LinkBatchCtrl returns the control payload that tags a data message as
// an HA-framed batch (tuple Seqs are link sequences; dedup applies).
func LinkBatchCtrl() []byte { return []byte{linkTagByte} }

// IsLinkBatch reports whether a data message's control payload carries
// the HA-framed tag.
func IsLinkBatch(ctrl []byte) bool {
	return len(ctrl) == 1 && ctrl[0] == linkTagByte
}

// AppendLinkAck encodes a complete-prefix acknowledgement for the back
// channel, appending to dst.
func AppendLinkAck(dst []byte, recv uint64) []byte {
	dst = append(dst, linkTagByte)
	return binary.AppendUvarint(dst, recv)
}

// ParseLinkAck decodes an acknowledgement produced by AppendLinkAck; ok
// is false for payloads that are not link acks.
func ParseLinkAck(ctrl []byte) (recv uint64, ok bool) {
	if len(ctrl) < 2 || ctrl[0] != linkTagByte {
		return 0, false
	}
	recv, n := binary.Uvarint(ctrl[1:])
	if n <= 0 || n != len(ctrl)-1 {
		return 0, false
	}
	return recv, true
}
