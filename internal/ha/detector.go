package ha

import (
	"sort"
	"sync"
)

// Detector implements the failure detection of §6.3: each server sends
// periodic heartbeat messages to its upstream neighbors; if a server does
// not hear from a downstream neighbor for some predetermined period, it
// considers the neighbor failed and initiates recovery.
type Detector struct {
	mu      sync.Mutex
	timeout int64
	last    map[string]int64
	failed  map[string]bool
}

// NewDetector returns a detector declaring a peer failed after timeout ns
// of heartbeat silence.
func NewDetector(timeout int64) *Detector {
	if timeout <= 0 {
		timeout = 1e9
	}
	return &Detector{
		timeout: timeout,
		last:    map[string]int64{},
		failed:  map[string]bool{},
	}
}

// Watch starts monitoring a peer, treating now as its first heartbeat.
func (d *Detector) Watch(peer string, now int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.last[peer] = now
	delete(d.failed, peer)
}

// Heartbeat records a heartbeat from a peer. Heartbeats from a peer
// previously declared failed revive it (it was a false positive or the
// peer restarted).
func (d *Detector) Heartbeat(peer string, now int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, watched := d.last[peer]; !watched {
		return
	}
	d.last[peer] = now
	delete(d.failed, peer)
}

// Check returns peers newly considered failed at time now, sorted. A peer
// is reported once per failure episode.
func (d *Detector) Check(now int64) []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for peer, last := range d.last {
		if d.failed[peer] {
			continue
		}
		if now-last > d.timeout {
			d.failed[peer] = true
			out = append(out, peer)
		}
	}
	sort.Strings(out)
	return out
}

// Failed reports whether a peer is currently considered failed.
func (d *Detector) Failed(peer string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed[peer]
}

// Unwatch stops monitoring a peer.
func (d *Detector) Unwatch(peer string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.last, peer)
	delete(d.failed, peer)
}
