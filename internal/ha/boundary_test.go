package ha

import (
	"testing"

	"repro/internal/stream"
)

func TestOutputLogReplayFrom(t *testing.T) {
	l := NewOutputLog()
	for i := int64(1); i <= 10; i++ {
		l.Append(tup(i))
	}
	l.Truncate(4) // retained: seqs 4..10
	cases := []struct {
		after     uint64
		wantFirst uint64
		wantN     int
	}{
		{0, 4, 7},  // everything retained
		{3, 4, 7},  // boundary just below the retained head
		{4, 5, 6},  // mid
		{9, 10, 1}, // only the tail
		{10, 0, 0}, // receiver has everything
		{99, 0, 0}, // stale report beyond the log: nothing to resend
	}
	for _, c := range cases {
		got := l.ReplayFrom(c.after)
		if len(got) != c.wantN {
			t.Errorf("ReplayFrom(%d) len = %d, want %d", c.after, len(got), c.wantN)
			continue
		}
		if c.wantN > 0 && got[0].Seq != c.wantFirst {
			t.Errorf("ReplayFrom(%d) first seq = %d, want %d", c.after, got[0].Seq, c.wantFirst)
		}
	}
}

func TestOutputLogTruncateAudit(t *testing.T) {
	l := NewOutputLog()
	var seen []uint64
	l.SetOnTruncate(func(dropped []stream.Tuple) {
		for _, tp := range dropped {
			seen = append(seen, tp.Seq)
		}
		// The hook runs outside the lock: the log is inspectable.
		_ = l.Len()
	})
	for i := int64(1); i <= 6; i++ {
		l.Append(tup(i))
	}
	l.Truncate(3)
	l.Truncate(3) // no-op: nothing newly below the checkpoint
	l.Truncate(5)
	want := []uint64{1, 2, 3, 4}
	if len(seen) != len(want) {
		t.Fatalf("audited seqs = %v, want %v", seen, want)
	}
	for i, s := range want {
		if seen[i] != s {
			t.Fatalf("audited seqs = %v, want %v", seen, want)
		}
	}
}

// TestDedupHoles: a sequence gap (lossy link) opens holes; the
// retransmitted tuple is admitted exactly once, and ContiguousRecv only
// advances past the gap once it is filled — the back-channel gap-repair
// signal.
func TestDedupHoles(t *testing.T) {
	var d Dedup
	for _, s := range []uint64{1, 2} {
		if !d.Admit(s) {
			t.Fatalf("seq %d rejected", s)
		}
	}
	// 3 and 4 are lost; 5 and 6 arrive above the gap.
	if !d.Admit(5) || !d.Admit(6) {
		t.Fatal("seqs above a gap must be admitted")
	}
	if got := d.ContiguousRecv(); got != 2 {
		t.Errorf("ContiguousRecv = %d, want 2 (holes at 3,4)", got)
	}
	if d.Holes() != 2 {
		t.Errorf("Holes = %d, want 2", d.Holes())
	}
	// Retransmission fills hole 3; 5 is a genuine duplicate.
	if !d.Admit(3) {
		t.Error("retransmitted hole seq 3 rejected")
	}
	if d.Admit(5) {
		t.Error("duplicate seq 5 admitted")
	}
	if got := d.ContiguousRecv(); got != 3 {
		t.Errorf("ContiguousRecv = %d, want 3 (hole at 4 remains)", got)
	}
	if !d.Admit(4) {
		t.Error("retransmitted hole seq 4 rejected")
	}
	if got := d.ContiguousRecv(); got != 6 {
		t.Errorf("ContiguousRecv = %d, want 6 after all holes filled", got)
	}
	if d.Admit(4) {
		t.Error("second retransmission of 4 admitted twice")
	}
	if d.Duplicates() != 2 {
		t.Errorf("Duplicates = %d, want 2", d.Duplicates())
	}
	d.Reset()
	if d.Last() != 0 || d.Holes() != 0 {
		t.Error("Reset must clear high-water mark and holes")
	}
}

// TestDepTrackerOutOfOrderIngress: a hole-filling tuple is admitted late
// (high local seq, low link seq). The safe point must stay below its link
// seq while the node still depends on it — the "min still-needed" rule —
// even though the pair list is no longer monotone in link seq.
func TestDepTrackerOutOfOrderIngress(t *testing.T) {
	d := NewDepTracker()
	d.NoteIngress("u", 4, 100)
	d.NoteIngress("u", 6, 101) // 5 was lost, admitted above the gap
	d.NoteIngress("u", 5, 102) // retransmission fills the hole late
	// Everything from local 101 up is still needed: link 5 (local 102) is
	// among them, so upstream may truncate only below min(6,5) = 5.
	safe := d.SafeSeqs(101, true)
	if safe["u"] != 5 {
		t.Errorf("safe = %d, want 5 (link 5 still needed)", safe["u"])
	}
	// Once the dependency clears everything, all of it is safe.
	safe = d.SafeSeqs(103, true)
	if safe["u"] != 7 {
		t.Errorf("safe = %d, want 7", safe["u"])
	}
}

func TestDepTrackerResetLink(t *testing.T) {
	d := NewDepTracker()
	d.NoteIngress("u1", 10, 100)
	d.NoteIngress("u2", 20, 101)
	// Establish a safe point for u1 so lastSafe is populated.
	safe := d.SafeSeqs(101, true)
	if safe["u1"] != 11 {
		t.Fatalf("u1 safe = %d, want 11", safe["u1"])
	}
	d.ResetLink("u1")
	// After the reset the dead incarnation's safe point must not be
	// repeated: a stale checkpoint would truncate the new producer's log.
	safe = d.SafeSeqs(101, true)
	if _, ok := safe["u1"]; ok {
		t.Errorf("reset link still reports a safe seq: %v", safe)
	}
	if got := d.Links(); len(got) != 1 || got[0] != "u2" {
		t.Errorf("links after reset = %v", got)
	}
	// The new incarnation starts a fresh pair history from scratch.
	d.NoteIngress("u1", 1, 102)
	safe = d.SafeSeqs(103, true)
	if safe["u1"] != 2 {
		t.Errorf("new incarnation safe = %d, want 2", safe["u1"])
	}
}
