// Package chaos is a seed-reproducible fault-injection harness for the §6
// high-availability machinery. It drives randomized fault schedules — node
// crashes and restarts, link partitions and heals, lossy links, load
// bursts, forced box split/unsplit transitions — against a core.Cluster
// running over netsim, and after every
// schedule machine-verifies four oracles:
//
//  1. no loss: with at most k concurrent failures, every ingested tuple
//     reaches the application output;
//  2. at-most-once: the duplicate filters admit nothing twice past a
//     recovery boundary — tuples ingested after the system settles are
//     delivered exactly once, and schedules with no crash produce no
//     duplicates at all;
//  3. convergence: once every fault heals, queues drain, loss holes
//     close, and the catalog, assignment, and routing views agree;
//  4. truncation safety: the output logs never discard a tuple whose
//     effects have not reached the application output.
//
// Everything is derandomized from a single int64 seed: the same seed
// yields the same schedule, the same simulated event order, and the same
// verdict, so any failure replays exactly. Shrink reduces a failing
// schedule to a locally minimal reproducer and Repro prints it as
// runnable Go.
package chaos

import (
	"fmt"
	"sort"
	"strings"
)

// EventKind enumerates the fault types a Schedule can inject.
type EventKind string

const (
	// Crash takes Node down at At, destroying all volatile state. If
	// Dur > 0 the node restarts at At+Dur (empty, a fresh incarnation);
	// Dur == 0 means it stays down forever.
	Crash EventKind = "crash"
	// Partition cuts every message between A and B, in both directions,
	// during [At, At+Dur).
	Partition EventKind = "partition"
	// Lossy drops each message from A to B with probability Loss during
	// [At, At+Dur). The harness only generates the forward data
	// direction: heartbeats and back channels travel the reverse link
	// and keep flowing, so loss exercises gap repair, not detection.
	Lossy EventKind = "lossy"
	// Burst multiplies the arrival rate by Mult during [At, At+Dur).
	Burst EventKind = "burst"
	// Split forces the box hosted on Node into Mult key-sharded replicas
	// at At (§5.1 box splitting as a runtime execution strategy); if
	// Dur > 0 the box folds back at At+Dur, otherwise it stays split.
	// A split is engine-volatile: a crash dissolves it with the rest of
	// the engine state, so Split destroys nothing, silences nothing, and
	// never counts against the k budget — but a node killed mid-split
	// must still satisfy every oracle, which is the point of injecting it.
	Split EventKind = "split"
)

// Event is one typed fault at a simulator timestamp. Events are
// self-contained — the matching restart or heal is folded into Dur — so a
// shrinker can remove any one of them independently.
type Event struct {
	Kind EventKind
	At   int64 // simulated ns
	Dur  int64 // duration; see the per-kind semantics above
	Node string // Crash target
	A, B string // Partition / Lossy endpoints (A upstream of B for Lossy)
	Loss float64
	Mult int
}

// Schedule is a complete chaos scenario: the topology knobs plus the
// fault events to inject. The harness builds a chain query b0 -> b1 ->
// ... -> bW over nodes src, n1, ..., nW (one box each, full-mesh
// overlay); src hosts the entry box and is never faulted — the data
// source is the k-safety boundary (§6.2), so faults there are drops at
// the source, not protocol loss.
type Schedule struct {
	Seed    int64
	Workers int // faultable workers n1..nW downstream of src
	K       int // k-safety level of the cluster under test
	Events  []Event
}

// Nodes returns the topology's node names: src first, then the workers.
func (s Schedule) Nodes() []string {
	out := []string{"src"}
	for i := 1; i <= s.Workers; i++ {
		out = append(out, fmt.Sprintf("n%d", i))
	}
	return out
}

// Validate rejects schedules outside the harness's envelope.
func (s Schedule) Validate() error {
	if s.Workers < 1 || s.Workers > 8 {
		return fmt.Errorf("chaos: workers = %d, want 1..8", s.Workers)
	}
	if s.K < 1 || s.K > s.Workers {
		return fmt.Errorf("chaos: k = %d, want 1..workers", s.K)
	}
	valid := map[string]bool{}
	for _, n := range s.Nodes() {
		valid[n] = true
	}
	for i, e := range s.Events {
		if e.At < 0 || e.Dur < 0 {
			return fmt.Errorf("chaos: event %d: negative time", i)
		}
		switch e.Kind {
		case Crash:
			if !valid[e.Node] {
				return fmt.Errorf("chaos: event %d: unknown node %q", i, e.Node)
			}
			if e.Node == "src" {
				return fmt.Errorf("chaos: event %d: src is the k-safety boundary and cannot crash", i)
			}
		case Partition, Lossy:
			if !valid[e.A] || !valid[e.B] || e.A == e.B {
				return fmt.Errorf("chaos: event %d: bad endpoints %q-%q", i, e.A, e.B)
			}
			if e.Dur == 0 {
				return fmt.Errorf("chaos: event %d: %s needs Dur > 0", i, e.Kind)
			}
			if e.Kind == Lossy && (e.Loss <= 0 || e.Loss >= 1) {
				return fmt.Errorf("chaos: event %d: loss = %v, want (0,1)", i, e.Loss)
			}
		case Burst:
			if e.Mult < 2 || e.Dur == 0 {
				return fmt.Errorf("chaos: event %d: burst needs Mult >= 2 and Dur > 0", i)
			}
		case Split:
			if !valid[e.Node] {
				return fmt.Errorf("chaos: event %d: unknown node %q", i, e.Node)
			}
			if e.Node == "src" {
				return fmt.Errorf("chaos: event %d: src hosts the entry box and cannot split", i)
			}
			if e.Mult < 2 {
				return fmt.Errorf("chaos: event %d: split needs Mult >= 2 replicas", i)
			}
		default:
			return fmt.Errorf("chaos: event %d: unknown kind %q", i, e.Kind)
		}
	}
	return nil
}

// failureInterval returns the window during which a crash event counts as
// an outstanding failure for the k budget: from the crash until the
// system has re-converged — restart (or detection, for a permanent
// crash) plus the recovery grace covering failover, replay, and gap
// repair across the chain.
func failureInterval(e Event) (start, end int64) {
	down := e.Dur
	if down == 0 {
		down = DetectTimeout // permanent: failover takes over at detection
	}
	return e.At, e.At + down + RecoveryGrace
}

// MaxConcurrentFailures returns the largest number of crash events whose
// failure intervals overlap — the schedule's k budget. Partitions, loss,
// bursts, and splits destroy no state and do not count.
func (s Schedule) MaxConcurrentFailures() int {
	type edge struct {
		at    int64
		delta int
	}
	var edges []edge
	for _, e := range s.Events {
		if e.Kind != Crash {
			continue
		}
		start, end := failureInterval(e)
		edges = append(edges, edge{start, +1}, edge{end, -1})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].at != edges[j].at {
			return edges[i].at < edges[j].at
		}
		return edges[i].delta < edges[j].delta // end before start on ties
	})
	cur, max := 0, 0
	for _, e := range edges {
		cur += e.delta
		if cur > max {
			max = cur
		}
	}
	return max
}

// Repro renders the schedule as a runnable Go literal, for pasting a
// shrunk failing case straight into a regression test.
func (s Schedule) Repro() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos.Run(chaos.Schedule{\n")
	fmt.Fprintf(&b, "\tSeed: %d, Workers: %d, K: %d,\n", s.Seed, s.Workers, s.K)
	if len(s.Events) > 0 {
		fmt.Fprintf(&b, "\tEvents: []chaos.Event{\n")
		for _, e := range s.Events {
			fmt.Fprintf(&b, "\t\t{Kind: chaos.%s, At: %d", kindIdent(e.Kind), e.At)
			if e.Dur != 0 {
				fmt.Fprintf(&b, ", Dur: %d", e.Dur)
			}
			if e.Node != "" {
				fmt.Fprintf(&b, ", Node: %q", e.Node)
			}
			if e.A != "" {
				fmt.Fprintf(&b, ", A: %q, B: %q", e.A, e.B)
			}
			if e.Loss != 0 {
				fmt.Fprintf(&b, ", Loss: %v", e.Loss)
			}
			if e.Mult != 0 {
				fmt.Fprintf(&b, ", Mult: %d", e.Mult)
			}
			fmt.Fprintf(&b, "},\n")
		}
		fmt.Fprintf(&b, "\t},\n")
	}
	fmt.Fprintf(&b, "})")
	return b.String()
}

func kindIdent(k EventKind) string {
	switch k {
	case Crash:
		return "Crash"
	case Partition:
		return "Partition"
	case Lossy:
		return "Lossy"
	case Burst:
		return "Burst"
	case Split:
		return "Split"
	}
	return string(k)
}
