package chaos

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/events"
	"repro/internal/netsim"
	"repro/internal/op"
	"repro/internal/query"
	"repro/internal/stream"
	"repro/internal/trace"
	"repro/internal/wgen"
)

// Harness timing constants (simulated ns). The envelope is tuned so that
// the generated faults are unambiguous: short crashes and partitions end
// well before the detection timeout (masked faults, repaired by gap
// repair), long crashes end well after it (failover), and the settle
// grace after the last fault covers detection, cascaded recovery, replay,
// and multi-hop gap repair.
const (
	FlowPeriod      = 2e6
	HeartbeatPeriod = 1e6
	DetectTimeout   = 6e6
	LinkDelay       = 100_000
	BoxCost         = 5_000

	// BaseRate is the baseline arrival rate in tuples per simulated
	// second (one tuple per 100µs).
	BaseRate = 10_000

	// RecoveryGrace extends a crash's failure interval past its restart
	// or detection: until failover, replay, and gap repair complete, a
	// second failure still counts as concurrent for the k budget.
	RecoveryGrace = 20e6

	// SettleGrace separates the end of the last failure interval from
	// the tail batch the at-most-once oracle measures.
	SettleGrace = 40e6

	// DrainTime runs past the last tail arrival before the oracles read
	// the final state.
	DrainTime = 200e6

	// TraceSample is the causal-tracing sample rate during chaos runs:
	// every 16th tuple carries a span, enough density that any violation
	// window contains traced traffic without distorting the run.
	TraceSample = 16

	// dumpTail bounds the human-readable flight-recorder dump to the most
	// recent events; the Chrome trace keeps everything retained.
	dumpTail = 256

	tailCount = 50
)

// Result is the outcome of one schedule run, with everything the oracles
// measured. Violations is empty when every applicable oracle held.
type Result struct {
	Schedule       Schedule
	MaxConcurrent  int  // crash-budget actually used
	BudgetExceeded bool // more concurrent failures than k: loss is allowed

	Ingested    int // tuples offered at the entry (src is never down)
	Delivered   int // distinct ids at the application output
	Missing     int
	MissingIDs  []int64 // first few missing ids, for diagnostics
	Dups        int     // duplicate deliveries across the whole run
	TailDups    int     // duplicates among the post-settle tail batch
	TailMissing int

	Crashes     int
	Recoveries  int
	Splits      int // forced box splits that actually took effect
	Unsplits    int // forced un-splits that actually took effect
	Resent      uint64 // gap-repair retransmissions
	Suppressed  uint64 // duplicates absorbed by the link filters
	TruncLeaked int    // truncated tuples whose id never reached the sink

	Violations []string

	// FlightDump is the merged flight-recorder tail, rendered one event
	// per line. ChromeTrace is the full retained event set as Chrome
	// trace-event JSON (load it in Perfetto / chrome://tracing).
	// EventDump is the merged control-plane event-journal tail (faults,
	// failover replays, offloads) — the decision history alongside the
	// data-path trace. All are populated when any oracle is violated or
	// the run lost tuples — the cases a post-mortem wants — and empty on
	// clean runs.
	FlightDump  string
	ChromeTrace []byte
	EventDump   string
}

// Failed reports whether any oracle was violated.
func (r *Result) Failed() bool { return len(r.Violations) > 0 }

func (r *Result) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// Run executes one schedule against a fresh cluster and verifies the four
// oracles. The same schedule always produces the same Result: the
// simulator's randomness derives from Schedule.Seed and arrivals are
// generated deterministically.
func Run(s Schedule) *Result {
	r := &Result{Schedule: s, MaxConcurrent: s.MaxConcurrentFailures()}
	r.BudgetExceeded = r.MaxConcurrent > s.K
	if err := s.Validate(); err != nil {
		r.violate("invalid schedule: %v", err)
		return r
	}

	sim := netsim.New(s.Seed)
	nodes := s.Nodes()
	full, assign := buildChain(s.Workers)
	c, err := core.NewCluster(sim, full, assign, nil, core.Config{
		K:               s.K,
		DefaultBoxCost:  BoxCost,
		FlowPeriod:      FlowPeriod,
		HeartbeatPeriod: HeartbeatPeriod,
		DetectTimeout:   DetectTimeout,
		TraceSample:     TraceSample,
	})
	if err != nil {
		r.violate("cluster build: %v", err)
		return r
	}
	for i := 0; i < len(nodes); i++ {
		for j := i + 1; j < len(nodes); j++ {
			if err := sim.Connect(nodes[i], nodes[j], 0, LinkDelay, 0); err != nil {
				r.violate("connect: %v", err)
				return r
			}
		}
	}

	// Sink: count deliveries per id (field A is a unique id). The
	// simulator is single-threaded, so no locking is needed.
	seen := map[int64]int{}
	c.OnOutput(func(_ string, t stream.Tuple, _ int64) {
		seen[t.Field(0).AsInt()]++
	})

	// Truncation audit: record the id of every tuple any output log
	// discards; the truncation-safety oracle checks them against the
	// sink afterwards. Installed before ingest so every lazily created
	// log is hooked.
	truncated := map[int64]bool{}
	c.SetTruncationAudit(func(_, _ string, dropped []stream.Tuple) {
		for _, t := range dropped {
			truncated[t.Field(0).AsInt()] = true
		}
	})
	c.Start()

	// Fault injection.
	var lastFaultEnd int64
	for _, e := range s.Events {
		e := e
		switch e.Kind {
		case Crash:
			r.Crashes++
			sim.Schedule(e.At, func() { sim.Crash(e.Node) })
			if e.Dur > 0 {
				sim.Schedule(e.At+e.Dur, func() { sim.Restart(e.Node) })
			}
			_, end := failureInterval(e)
			if end > lastFaultEnd {
				lastFaultEnd = end
			}
		case Partition:
			sim.Schedule(e.At, func() { sim.Partition(e.A, e.B, true) })
			sim.Schedule(e.At+e.Dur, func() { sim.Partition(e.A, e.B, false) })
		case Lossy:
			sim.Schedule(e.At, func() { sim.SetLoss(e.A, e.B, e.Loss) })
			sim.Schedule(e.At+e.Dur, func() { sim.SetLoss(e.A, e.B, 0) })
		case Burst:
			// handled by the arrival generator below
		case Split:
			// Forced transitions are best-effort: a crash may have taken
			// the node down (the split dissolves with the engine's
			// volatile state) or a failover may have moved the box, and
			// either way the oracles must still hold — that interaction
			// is exactly what this event kind exists to exercise.
			box := chainBoxOf(e.Node)
			sim.Schedule(e.At, func() {
				if c.ForceSplit(e.Node, box, e.Mult) == nil {
					r.Splits++
				}
			})
			if e.Dur > 0 {
				sim.Schedule(e.At+e.Dur, func() {
					if c.ForceUnsplit(e.Node, box) == nil {
						r.Unsplits++
					}
				})
			}
		}
		if e.Kind != Crash && e.At+e.Dur > lastFaultEnd {
			lastFaultEnd = e.At + e.Dur
		}
	}

	// Baseline load covers every fault window, modulated by the burst
	// events; the wgen arrival process supplies the base inter-arrival
	// gap.
	loadEnd := lastFaultEnd + 10e6
	if loadEnd < 60e6 {
		loadEnd = 60e6
	}
	arrivals := wgen.NewConstantArrival(BaseRate)
	ingest := func(at int64, id int64) {
		sim.Schedule(at, func() {
			c.Ingest("in", stream.NewTuple(stream.Int(id), stream.Int(id%60)))
		})
	}
	id := int64(0)
	for at := int64(0); at < loadEnd; {
		ingest(at, id)
		id++
		gap := arrivals.Gap()
		if m := burstMult(s.Events, at); m > 1 {
			gap /= m
		}
		at += gap
	}

	// Post-settle tail: the at-most-once oracle's probe. Every fault has
	// healed (or been recovered) by now, so these must flow end to end
	// exactly once regardless of what the schedule did earlier.
	settleStart := loadEnd + SettleGrace
	if fe := lastFaultEnd + SettleGrace; fe > settleStart {
		settleStart = fe
	}
	tailGap := arrivals.Gap()
	tailIDs := map[int64]bool{}
	for i := 0; i < tailCount; i++ {
		ingest(settleStart+int64(i)*tailGap, id)
		tailIDs[id] = true
		id++
	}
	r.Ingested = int(id)

	sim.Run(settleStart + int64(tailCount)*tailGap + DrainTime)

	// ---- Oracles ----
	for want := int64(0); want < id; want++ {
		switch n := seen[want]; {
		case n == 0:
			r.Missing++
			if len(r.MissingIDs) < 16 {
				r.MissingIDs = append(r.MissingIDs, want)
			}
			if tailIDs[want] {
				r.TailMissing++
			}
		case n > 1:
			r.Dups += n - 1
			if tailIDs[want] {
				r.TailDups += n - 1
			}
		}
	}
	r.Delivered = len(seen)
	r.Resent = c.Resent()
	r.Suppressed = c.DedupDuplicates()
	r.Recoveries = len(c.Recoveries())
	for tid := range truncated {
		if seen[tid] == 0 {
			r.TruncLeaked++
		}
	}

	// Oracle 1 — no loss within the k budget.
	if !r.BudgetExceeded && r.Missing > 0 {
		r.violate("no-loss: %d of %d tuples missing (first %v) with %d <= k=%d concurrent failures",
			r.Missing, r.Ingested, r.MissingIDs, r.MaxConcurrent, s.K)
	}
	// Oracle 2 — at-most-once. Crashes may legitimately duplicate
	// deliveries at the recovery boundary (outputs re-derived in a new
	// sequence space), but the post-settle tail must arrive exactly
	// once, and a crash-free schedule must produce no duplicates at all.
	if r.TailDups > 0 {
		r.violate("at-most-once: %d duplicate deliveries among the post-settle tail", r.TailDups)
	}
	if r.Crashes == 0 && r.Dups > 0 {
		r.violate("at-most-once: %d duplicates without any crash event", r.Dups)
	}
	// Oracle 3 — convergence after heal: the tail drains end to end,
	// queues empty, loss holes closed, views agree.
	if r.TailMissing > 0 {
		r.violate("convergence: %d post-settle tail tuples never delivered", r.TailMissing)
	}
	if q := c.QueuedTotal(); q != 0 {
		r.violate("convergence: %d tuples still queued after drain", q)
	}
	if !r.BudgetExceeded {
		if h := c.DedupHoles(); h != 0 {
			r.violate("convergence: %d loss holes never repaired", h)
		}
	}
	if err := c.InvariantCheck(); err != nil {
		r.violate("convergence: %v", err)
	}
	// Oracle 4 — truncation safety: every tuple an output log discarded
	// must have had its effects reach the sink (within budget).
	if !r.BudgetExceeded && r.TruncLeaked > 0 {
		r.violate("truncation: %d truncated tuples never reached the output", r.TruncLeaked)
	}

	// Post-mortem artifacts: whenever an oracle fired or tuples were lost
	// (budget-exceeding loss included — that is exactly the negative
	// control a human wants to inspect), dump the merged flight recorders.
	if r.Failed() || r.Missing > 0 {
		evs := c.TraceEvents()
		tail := evs
		if len(tail) > dumpTail {
			tail = tail[len(tail)-dumpTail:]
		}
		r.FlightDump = trace.FormatEvents(tail)
		r.ChromeTrace = trace.ChromeTrace(evs)
		jevs := c.Events()
		if len(jevs) > dumpTail {
			jevs = jevs[len(jevs)-dumpTail:]
		}
		r.EventDump = events.Format(jevs)
	}
	return r
}

// buildChain constructs the chain query b0 -> ... -> bW of pass-all
// filters (B is always < 1000) and its one-box-per-node assignment.
func buildChain(workers int) (*query.Network, map[string]string) {
	names := make([]string, workers+1)
	specs := make([]op.Spec, workers+1)
	for i := range names {
		names[i] = fmt.Sprintf("b%d", i)
		specs[i] = op.Spec{Kind: "filter", Params: map[string]string{"predicate": "B < 1000"}}
	}
	net := query.NewBuilder("chaos").
		Chain(names, specs).
		BindInput("in", chaosSchema, "b0", 0).
		BindOutput("out", names[workers], 0, nil).
		MustBuild()
	assign := map[string]string{names[0]: "src"}
	for i := 1; i <= workers; i++ {
		assign[names[i]] = fmt.Sprintf("n%d", i)
	}
	return net, assign
}

// chainBoxOf maps a worker node to the chain box it hosts: buildChain
// assigns b_i to n_i (and b0 to src).
func chainBoxOf(node string) string {
	if node == "src" {
		return "b0"
	}
	return "b" + strings.TrimPrefix(node, "n")
}

var chaosSchema = stream.MustSchema("ab",
	stream.Field{Name: "A", Kind: stream.KindInt},
	stream.Field{Name: "B", Kind: stream.KindInt},
)

// burstMult returns the arrival-rate multiplier active at time t.
func burstMult(events []Event, t int64) int64 {
	m := int64(1)
	for _, e := range events {
		if e.Kind == Burst && t >= e.At && t < e.At+e.Dur && int64(e.Mult) > m {
			m = int64(e.Mult)
		}
	}
	return m
}
