package chaos

import (
	"fmt"
	"math/rand"
)

// Generation envelope (simulated ns). Faults land inside the baseline
// load window; short crashes and partitions stay far enough under the
// detection timeout that no failover triggers (the restart-plus-heartbeat
// gap never exceeds DetectTimeout), and long crashes stay far enough over
// it that detection is certain.
const (
	genFaultStart = 5e6
	genFaultEnd   = 100e6

	genShortMin = 1e6 // short crash / partition duration
	genShortMax = 4e6

	genLongMin = 20e6 // restart delay of a long (detected) crash
	genLongMax = 40e6

	// genSilenceGap separates any two events that can silence a node's
	// heartbeats (crashes, partitions). Back-to-back silence windows
	// would merge: a 4e6 partition ending just as another begins looks
	// to the upstream like 8e6+ of silence and triggers failover of a
	// live node — a network partition misread as a crash, outside the
	// fail-stop model §6.3 assumes. Concurrent crash+crash is exempt
	// (fail-stop holds; only the k budget governs it).
	genSilenceGap = DetectTimeout + 2*HeartbeatPeriod
)

// Generate derandomizes a schedule from a single seed: topology size,
// k-safety level, and 1–4 fault events drawn from the envelope. Crash
// events are pruned so the schedule never exceeds the k budget — within
// the envelope, every generated schedule must satisfy all four oracles;
// budget-exceeding schedules are built explicitly (see the negative
// control in the tests), never generated.
func Generate(seed int64) Schedule {
	r := rand.New(rand.NewSource(seed))
	s := Schedule{
		Seed:    seed,
		Workers: 2 + r.Intn(2), // 2 or 3
		K:       1 + r.Intn(2), // 1 or 2
	}
	nodes := s.Nodes()
	crashed := map[string]bool{}
	want := 1 + r.Intn(4)
	for tries := 0; len(s.Events) < want && tries < want*8; tries++ {
		var e Event
		at := genFaultStart + r.Int63n(genFaultEnd-genFaultStart)
		switch roll := r.Intn(12); {
		case roll < 2: // short crash: restart before detection
			e = Event{Kind: Crash, At: at,
				Dur:  genShortMin + r.Int63n(genShortMax-genShortMin),
				Node: workerPick(r, s.Workers)}
		case roll < 4: // long crash: detected failover, maybe permanent
			e = Event{Kind: Crash, At: at, Node: workerPick(r, s.Workers)}
			if r.Intn(2) == 0 {
				e.Dur = genLongMin + r.Int63n(genLongMax-genLongMin)
			}
		case roll < 6: // short partition: masked, repaired by gap repair
			a, b := pairPick(r, nodes)
			e = Event{Kind: Partition, At: at,
				Dur: genShortMin + r.Int63n(genShortMax-genShortMin),
				A:   a, B: b}
		case roll < 8: // lossy forward link
			a, b := pairPick(r, nodes)
			e = Event{Kind: Lossy, At: at,
				Dur:  5e6 + r.Int63n(25e6),
				A:    a, B: b,
				Loss: 0.2 + 0.4*r.Float64()}
		case roll < 10: // load burst
			e = Event{Kind: Burst, At: at,
				Dur:  5e6 + r.Int63n(15e6),
				Mult: 2 + r.Intn(3)}
		default: // runtime box split: key-shard a worker's box, maybe forever
			e = Event{Kind: Split, At: at,
				Node: workerPick(r, s.Workers),
				Mult: 2 + r.Intn(3)}
			if r.Intn(3) > 0 {
				e.Dur = 5e6 + r.Int63n(25e6)
			}
		}
		switch e.Kind {
		case Crash:
			if crashed[e.Node] {
				continue // one crash per node keeps incarnations simple
			}
			cand := append(append([]Event(nil), s.Events...), e)
			if (Schedule{Workers: s.Workers, K: s.K, Events: cand}).MaxConcurrentFailures() > s.K {
				continue // over the k budget: regenerate
			}
			if !silenceSeparated(e, s.Events, Partition) {
				continue
			}
			crashed[e.Node] = true
		case Partition:
			if !silenceSeparated(e, s.Events, Partition, Crash) {
				continue
			}
		}
		s.Events = append(s.Events, e)
	}
	return s
}

// silenceWindow returns the conservative interval during which an event
// can suppress heartbeats or keep the system re-converging.
func silenceWindow(e Event) (int64, int64) {
	if e.Kind == Crash {
		return failureInterval(e)
	}
	return e.At, e.At + e.Dur
}

// silenceSeparated reports whether e's silence window keeps at least
// genSilenceGap of clearance from every existing event of the listed
// kinds.
func silenceSeparated(e Event, events []Event, kinds ...EventKind) bool {
	s1, e1 := silenceWindow(e)
	for _, o := range events {
		match := false
		for _, k := range kinds {
			if o.Kind == k {
				match = true
			}
		}
		if !match {
			continue
		}
		s2, e2 := silenceWindow(o)
		if s1 < e2+genSilenceGap && s2 < e1+genSilenceGap {
			return false
		}
	}
	return true
}

// workerPick returns a faultable worker node (never src).
func workerPick(r *rand.Rand, workers int) string {
	return fmt.Sprintf("n%d", 1+r.Intn(workers))
}

// pairPick returns a forward-ordered node pair (a upstream of b in the
// chain): data flows a -> b, so loss there never starves heartbeats or
// back channels, which travel b -> a.
func pairPick(r *rand.Rand, nodes []string) (string, string) {
	i := r.Intn(len(nodes) - 1)
	j := i + 1 + r.Intn(len(nodes)-1-i)
	return nodes[i], nodes[j]
}
