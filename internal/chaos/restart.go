package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/events"
	"repro/internal/ha"
	"repro/internal/storage"
	"repro/internal/stream"
	"repro/internal/transport"
)

// RestartSchedule is a seed-reproducible process-restart fault schedule:
// while tuples flow from a durable sender node to a live consumer through
// a TCPProxy, the harness kills the sender process state — transport,
// output log, everything in memory — at seed-chosen points and restarts
// it from its data directory. The oracles check the durability contract:
// every tuple whose Send returned survives the crash (rebuilt from
// segment files and replayed through the normal resync path), the live
// consumer's dedup suppresses the replay overlap, and the run converges
// with no loss and no duplicates.
type RestartSchedule struct {
	Seed     int64
	Tuples   int           // tuples offered at the sender (default 800)
	Restarts int           // kill+restart-from-disk cycles (default 3)
	Kills    int           // plain connection kills mixed in (default 0)
	Gap      time.Duration // inter-tuple gap (default 250µs)
	Dir      string        // sender data directory (required; the disk that survives)
	Journal  *events.Journal
}

func (s RestartSchedule) withDefaults() RestartSchedule {
	if s.Tuples <= 1 {
		s.Tuples = 800
	}
	if s.Restarts < 0 {
		s.Restarts = 0
	}
	if s.Gap <= 0 {
		s.Gap = 250 * time.Microsecond
	}
	return s
}

// RestartResult is one RunRestart outcome plus its oracle verdicts.
type RestartResult struct {
	Schedule RestartSchedule

	Delivered   int    // distinct payloads at the consumer
	Missing     int    // payloads never delivered (durability oracle)
	Dups        int    // payloads delivered more than once (at-most-once oracle)
	Restarts    int    // restart cycles actually executed
	Kills       int    // plain connection kills injected
	Recovered   int    // log entries rebuilt from disk across all restarts
	Replayed    int64  // tuples retransmitted by resync (all incarnations)
	Suppressed  uint64 // duplicate deliveries absorbed by the consumer's dedup
	Outstanding int    // sender log tuples still unacknowledged after drain
	Holes       int    // receiver sequence holes after drain
	CloseTime   time.Duration

	Violations []string
}

// Failed reports whether any oracle was violated.
func (r *RestartResult) Failed() bool { return len(r.Violations) > 0 }

func (r *RestartResult) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// senderNode is one incarnation of the durable sender process: its
// transport, its recovered-or-fresh link sender, and the storage manager
// holding its output log. Killing it closes all three; the data dir is
// what survives.
type senderNode struct {
	tr  *transport.TCP
	mgr *storage.Manager

	// mu guards sender against the transport's handler goroutines: acks
	// can arrive the moment the listener is up, before the sender exists.
	mu     sync.Mutex
	sender *ha.LinkSender
}

func (n *senderNode) getSender() *ha.LinkSender {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.sender
}

// startSender boots one sender incarnation from dir: open the data
// directory, rebuild the output log from whatever segments survive,
// attach the durable sink, and dial the consumer through the proxy.
// recovered reports how many log entries came back from disk.
func startSender(dir, proxyAddr string, cfg transport.LinkConfig, j *events.Journal) (*senderNode, int, error) {
	mgr, err := storage.Open(dir)
	if err != nil {
		return nil, 0, err
	}
	olog, err := mgr.OutputLog("dn/data")
	if err != nil {
		mgr.Close()
		return nil, 0, err
	}
	sink := storage.NewOutputSink(olog)
	origins, tuples, err := sink.RecoveredEntries()
	if err != nil {
		mgr.Close()
		return nil, 0, err
	}
	entries := make([]ha.LogEntry, len(tuples))
	for i := range tuples {
		entries[i] = ha.LogEntry{Origin: origins[i], Tuple: tuples[i]}
	}

	n := &senderNode{mgr: mgr}
	tr, err := transport.ListenTCP("up", "127.0.0.1:0",
		func(from string, m transport.Msg) {
			if m.Kind == transport.KindBackChannel {
				if recv, ok := ha.ParseLinkAck(m.Ctrl); ok {
					if s := n.getSender(); s != nil {
						s.Ack(recv)
					}
				}
			}
		}, cfg)
	if err != nil {
		mgr.Close()
		return nil, 0, err
	}
	n.tr = tr
	sender := ha.RecoverLinkSender(entries, func(batch []stream.Tuple) error {
		return tr.Send("dn", transport.Msg{Stream: "data",
			Kind: transport.KindData, Tuples: batch, Ctrl: ha.LinkBatchCtrl()})
	})
	sender.Name, sender.Journal = "dn/data", j
	sender.AttachDurable(sink)
	n.mu.Lock()
	n.sender = sender
	n.mu.Unlock()

	if len(entries) > 0 && j != nil {
		corr := j.NewCorr()
		j.Append(events.Event{
			Time: time.Now().UnixNano(), Kind: events.KindRecovery,
			Subject: "up", Detail: "output log from disk", Corr: corr,
			V1: float64(len(entries)),
		})
		sender.SetCorr(corr)
	}
	// Resync on every establish, not just reconnects: a restarted
	// incarnation's first connection is brand new to the transport, but
	// the retained suffix on disk still needs replaying.
	tr.SetOnEstablished(func(peer string, reconnected bool) {
		if s := n.getSender(); s != nil {
			s.Resync()
		}
	})
	if err := tr.AddPeer("dn", proxyAddr); err != nil {
		tr.Close()
		mgr.Close()
		return nil, 0, err
	}
	return n, len(entries), nil
}

// kill simulates the process dying: transport torn down, every in-memory
// structure dropped. Closing the manager also closes (and syncs) the
// segment log, but by contract every Send that returned was already
// fsynced — the close is a courtesy, not the durability point.
func (n *senderNode) kill() {
	n.tr.Close()
	n.mgr.Close()
}

// RunRestart executes one process-restart fault schedule and verifies
// the durability oracles. The consumer node stays alive throughout (its
// in-memory dedup is the incarnation-spanning duplicate filter, exactly
// the role a live downstream plays for a recovering upstream in §6.3).
func RunRestart(s RestartSchedule) *RestartResult {
	s = s.withDefaults()
	r := &RestartResult{Schedule: s}
	if s.Dir == "" {
		r.violate("schedule: Dir is required (the disk that survives the crash)")
		return r
	}
	rng := rand.New(rand.NewSource(s.Seed))

	var cmu sync.Mutex
	counts := make(map[int64]int, s.Tuples)

	cfg := transport.LinkConfig{
		HandshakeTimeout: 250 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		PingPeriod:       15 * time.Millisecond,
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       80 * time.Millisecond,
		BufferLimit:      s.Tuples + 64,
	}

	// Consumer: alive for the whole run, acking back to whichever sender
	// incarnation is currently connected.
	var dn *transport.TCP
	recvr := ha.NewLinkReceiver(
		func(t stream.Tuple) {
			cmu.Lock()
			counts[t.Field(0).AsInt()]++
			cmu.Unlock()
		},
		func(recv uint64) {
			_ = dn.Send("up", transport.Msg{Stream: "ack",
				Kind: transport.KindBackChannel, Ctrl: ha.AppendLinkAck(nil, recv)})
		}, 16)
	dn, err := transport.ListenTCP("dn", "127.0.0.1:0",
		func(from string, m transport.Msg) {
			if m.Kind == transport.KindData && ha.IsLinkBatch(m.Ctrl) {
				recvr.OnBatch(m.Tuples)
			}
		}, cfg)
	if err != nil {
		r.violate("listen dn: %v", err)
		return r
	}
	defer dn.Close()

	proxy, err := NewTCPProxy(dn.Addr())
	if err != nil {
		r.violate("proxy: %v", err)
		return r
	}
	defer proxy.Close()

	node, recovered, err := startSender(s.Dir, proxy.Addr(), cfg, s.Journal)
	if err != nil {
		r.violate("start sender: %v", err)
		return r
	}
	if recovered != 0 {
		r.violate("fresh data dir recovered %d entries, want 0", recovered)
	}

	// Seed-chosen fault placement.
	restartAt := map[int]bool{}
	for i := 0; i < s.Restarts; i++ {
		restartAt[1+rng.Intn(s.Tuples-1)] = true
	}
	killAt := map[int]bool{}
	for i := 0; i < s.Kills; i++ {
		killAt[1+rng.Intn(s.Tuples-1)] = true
	}

	for i := 0; i < s.Tuples; i++ {
		// Send's return is the commit point: the tuple is fsynced in the
		// sender's segment log before the offered set counts it.
		node.sender.Send(stream.NewTuple(stream.Int(int64(i))))
		if restartAt[i] {
			node.kill()
			var rec int
			node, rec, err = startSender(s.Dir, proxy.Addr(), cfg, s.Journal)
			if err != nil {
				r.violate("restart %d: %v", r.Restarts+1, err)
				return r
			}
			r.Restarts++
			r.Recovered += rec
		}
		if killAt[i] {
			proxy.KillConns()
			r.Kills++
		}
		time.Sleep(s.Gap)
	}

	// Drain: ack and resync until the sender's log is empty and every
	// payload has landed, or the budget lapses.
	deadline := time.Now().Add(15 * time.Second)
	prevOut := -1
	for time.Now().Before(deadline) {
		recvr.AckNow()
		out := node.sender.Outstanding()
		if out > 0 && out == prevOut {
			node.sender.Resync()
		}
		prevOut = out
		cmu.Lock()
		got := len(counts)
		cmu.Unlock()
		if got == s.Tuples && out == 0 && recvr.Holes() == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Verdicts.
	cmu.Lock()
	for i := 0; i < s.Tuples; i++ {
		switch n := counts[int64(i)]; {
		case n == 0:
			r.Missing++
		case n > 1:
			r.Dups++
		}
	}
	r.Delivered = len(counts)
	cmu.Unlock()
	r.Replayed = node.sender.Replayed() // final incarnation only; earlier ones died
	r.Suppressed = recvr.Suppressed()
	r.Outstanding = node.sender.Outstanding()
	r.Holes = recvr.Holes()

	start := time.Now()
	node.kill()
	dn.Close()
	proxy.Close()
	r.CloseTime = time.Since(start)

	if r.Missing > 0 {
		r.violate("durability: %d of %d committed tuples missing at the consumer after %d restarts",
			r.Missing, s.Tuples, r.Restarts)
	}
	if r.Dups > 0 {
		r.violate("at-most-once: %d payloads delivered more than once", r.Dups)
	}
	if r.Outstanding > 0 {
		r.violate("convergence: %d tuples still unacknowledged in the sender log", r.Outstanding)
	}
	if r.Holes > 0 {
		r.violate("convergence: %d receiver sequence holes never repaired", r.Holes)
	}
	if r.Restarts > 0 && r.Recovered == 0 {
		r.violate("recovery: %d restarts recovered 0 log entries — the durable path was never exercised", r.Restarts)
	}
	if r.CloseTime > 2*time.Second {
		r.violate("shutdown: Close took %v under churn", r.CloseTime)
	}
	return r
}

// String renders a one-line summary.
func (r *RestartResult) String() string {
	return fmt.Sprintf(
		"seed=%d tuples=%d delivered=%d missing=%d dups=%d restarts=%d recovered=%d kills=%d replayed=%d suppressed=%d close=%v violations=%d",
		r.Schedule.Seed, r.Schedule.Tuples, r.Delivered, r.Missing, r.Dups,
		r.Restarts, r.Recovered, r.Kills, r.Replayed, r.Suppressed,
		r.CloseTime, len(r.Violations))
}
