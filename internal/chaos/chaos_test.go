package chaos

import (
	"encoding/json"
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// TestChaos runs 240 randomized schedules, one per seed, and requires
// every applicable oracle to hold. On failure it shrinks the schedule to
// a locally minimal reproducer and prints it as runnable Go.
func TestChaos(t *testing.T) {
	const seeds = 240
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := Generate(seed)
			if err := s.Validate(); err != nil {
				t.Fatalf("generator produced an invalid schedule: %v", err)
			}
			if mc := s.MaxConcurrentFailures(); mc > s.K {
				t.Fatalf("generator exceeded the k budget: %d > %d", mc, s.K)
			}
			r := Run(s)
			if r.Failed() {
				min := Shrink(s, func(c Schedule) bool { return Run(c).Failed() })
				t.Fatalf("oracle violations: %v\nevents: %+v\nminimal repro:\n%s",
					r.Violations, s.Events, min.Repro())
			}
		})
	}
}

// negativeControl is a deliberate k+1 schedule: the n2-n3 partition backs
// intermediate results up into n2's output log while n1 keeps acking
// (their effects are received one server down, which is all k=1
// requires), so the entry truncates its own copies; then n1 and n2 die
// together — two concurrent failures against k=1 — taking both remaining
// copies with them. The partition must outlast the truncation pipeline
// (two flow-tick hops, ~2 x FlowPeriod plus slack) or nothing is both
// truncated upstream and trapped behind the cut; the crashes land just
// before n2 would have declared n3 silent.
var negativeControl = Schedule{
	Seed: 1, Workers: 3, K: 1,
	Events: []Event{
		{Kind: Partition, At: 20e6, Dur: 6e6, A: "n2", B: "n3"},
		{Kind: Crash, At: 25_500_000, Node: "n1"},
		{Kind: Crash, At: 25_500_000, Node: "n2"},
	},
}

// TestChaosNegativeControl verifies the harness actually detects loss:
// the k+1 schedule must exceed the budget, lose tuples, and still
// re-converge (the tail flows exactly once through the recovered system).
func TestChaosNegativeControl(t *testing.T) {
	r := Run(negativeControl)
	if !r.BudgetExceeded || r.MaxConcurrent != 2 {
		t.Fatalf("budget classification: max concurrent = %d, exceeded = %v",
			r.MaxConcurrent, r.BudgetExceeded)
	}
	if r.Missing == 0 {
		t.Fatalf("k+1 concurrent failures lost nothing — the harness cannot detect loss\n%+v", r)
	}
	if r.TailMissing != 0 || r.TailDups != 0 {
		t.Errorf("system did not re-converge: tail missing=%d dups=%d", r.TailMissing, r.TailDups)
	}
	if r.Failed() {
		t.Errorf("budget-exceeding loss must be classified, not reported as a violation: %v",
			r.Violations)
	}
	t.Logf("lost %d of %d (first %v), recoveries=%d", r.Missing, r.Ingested, r.MissingIDs, r.Recoveries)
}

// TestChaosFlightRecorderDump: a run that loses tuples (the k+1 negative
// control) must come back with a post-mortem: a readable flight-recorder
// dump containing the fault annotations, and a Chrome trace-event JSON
// artifact that parses. A clean run carries neither.
func TestChaosFlightRecorderDump(t *testing.T) {
	r := Run(negativeControl)
	if r.Missing == 0 {
		t.Fatal("negative control lost nothing; dump cannot be exercised")
	}
	if r.FlightDump == "" {
		t.Fatal("lossy run produced no flight-recorder dump")
	}
	// The event-journal tail rides alongside: the control-plane decisions
	// (faults injected, failover replays) in one readable dump.
	if r.EventDump == "" {
		t.Fatal("lossy run produced no event-journal dump")
	}
	if !strings.Contains(r.EventDump, "fault") {
		t.Errorf("event dump missing fault events:\n%s", r.EventDump)
	}
	if !strings.Contains(r.EventDump, "ha-replay") {
		t.Errorf("event dump missing failover replay events:\n%s", r.EventDump)
	}
	var arr []map[string]any
	if err := json.Unmarshal(r.ChromeTrace, &arr); err != nil {
		t.Fatalf("chrome trace artifact is not valid JSON: %v", err)
	}
	if len(arr) == 0 {
		t.Fatal("chrome trace artifact is empty")
	}
	// The full artifact includes the fault annotations (the dump is only
	// the most recent tail, which a long drain may scroll past).
	js := string(r.ChromeTrace)
	for _, want := range []string{"crash n1", "crash n2", "partition n2|n3"} {
		if !strings.Contains(js, want) {
			t.Errorf("chrome trace missing fault annotation %q", want)
		}
	}
	clean := Run(Generate(3))
	if clean.Failed() || clean.Missing > 0 {
		t.Fatalf("control schedule unexpectedly lossy: %+v", clean.Violations)
	}
	if clean.FlightDump != "" || clean.ChromeTrace != nil || clean.EventDump != "" {
		t.Error("clean run should not carry post-mortem artifacts")
	}
}

// TestChaosReplayDeterministic: the same schedule must produce the exact
// same verdict and counters on every run — the property that makes a
// printed seed a complete bug report.
func TestChaosReplayDeterministic(t *testing.T) {
	for _, seed := range []int64{3, 17, 101} {
		s := Generate(seed)
		a, b := Run(s), Run(s)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: two runs disagree:\n%+v\n%+v", seed, a, b)
		}
	}
	a, b := Run(negativeControl), Run(negativeControl)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("negative control replays differently:\n%+v\n%+v", a, b)
	}
}

// TestChaosShrink pads the failing negative control with irrelevant
// faults and checks the shrinker strips them back out, leaving a minimal
// reproducer of at most 5 events that still loses data deterministically.
func TestChaosShrink(t *testing.T) {
	padded := negativeControl
	padded.Events = append([]Event{
		{Kind: Burst, At: 10e6, Dur: 5e6, Mult: 3},
		{Kind: Lossy, At: 40e6, Dur: 10e6, A: "src", B: "n1", Loss: 0.3},
		{Kind: Partition, At: 60e6, Dur: 3e6, A: "n1", B: "n3"},
		{Kind: Burst, At: 70e6, Dur: 5e6, Mult: 2},
	}, padded.Events...)
	lost := func(s Schedule) bool { return Run(s).Missing > 0 }
	if !lost(padded) {
		t.Fatal("padded negative control no longer loses")
	}
	min := Shrink(padded, lost)
	if len(min.Events) > 5 {
		t.Fatalf("shrunk to %d events, want <= 5:\n%s", len(min.Events), min.Repro())
	}
	for _, e := range min.Events {
		if e.Kind == Burst {
			t.Errorf("irrelevant burst survived shrinking: %+v", e)
		}
	}
	// The minimal schedule still fails for the same reason, twice.
	a, b := Run(min), Run(min)
	if a.Missing == 0 || b.Missing == 0 || a.Missing != b.Missing {
		t.Fatalf("minimal repro not deterministic: %d vs %d missing", a.Missing, b.Missing)
	}
	t.Logf("minimal repro (%d events, %d lost):\n%s", len(min.Events), a.Missing, min.Repro())
}

// TestChaosGeneratorEnvelope: generated schedules stay inside the
// documented envelope across a wide seed range.
func TestChaosGeneratorEnvelope(t *testing.T) {
	for seed := int64(1); seed <= 2000; seed++ {
		s := Generate(seed)
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if mc := s.MaxConcurrentFailures(); mc > s.K {
			t.Fatalf("seed %d: %d concurrent crashes > k=%d", seed, mc, s.K)
		}
		if len(s.Events) == 0 {
			t.Fatalf("seed %d: empty schedule", seed)
		}
		if !reflect.DeepEqual(s, Generate(seed)) {
			t.Fatalf("seed %d: generation not deterministic", seed)
		}
	}
}
