package chaos

import (
	"testing"

	"repro/internal/events"
)

// runRestartCase executes one schedule against a temp data dir and fails
// the test on any oracle violation.
func runRestartCase(t *testing.T, s RestartSchedule) *RestartResult {
	t.Helper()
	s.Dir = t.TempDir()
	r := RunRestart(s)
	if r.Failed() {
		t.Fatalf("oracle violations for %s:\n  %v", r, r.Violations)
	}
	return r
}

// TestRestartEquivalence is the kill/restart equivalence check (run under
// -race in CI): a schedule with sender restarts must converge to exactly
// the delivery set of the fault-free schedule — every committed payload
// once, none twice — with the replayed suffix rebuilt from segment files.
func TestRestartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos runs take seconds")
	}
	const tuples = 400

	clean := runRestartCase(t, RestartSchedule{Seed: 7, Tuples: tuples, Restarts: 0})
	if clean.Restarts != 0 || clean.Recovered != 0 {
		t.Fatalf("fault-free run restarted: %s", clean)
	}

	faulty := runRestartCase(t, RestartSchedule{Seed: 7, Tuples: tuples, Restarts: 3, Kills: 1})
	if faulty.Restarts == 0 {
		t.Fatalf("schedule executed no restarts: %s", faulty)
	}
	if faulty.Recovered == 0 {
		t.Fatalf("restarts recovered nothing from disk: %s", faulty)
	}
	// Equivalence: the consumer-visible payload set is identical — all
	// tuples delivered exactly once in both runs (Missing/Dups already
	// oracle-checked; this pins the set size explicitly).
	if clean.Delivered != tuples || faulty.Delivered != tuples {
		t.Fatalf("delivery sets differ: clean=%d faulty=%d want %d",
			clean.Delivered, faulty.Delivered, tuples)
	}
	t.Logf("clean:  %s", clean)
	t.Logf("faulty: %s", faulty)
}

// TestRestartJournalsRecovery: a restart with surviving log entries
// journals a KindRecovery event whose correlation id chains to the
// subsequent resync replay event.
func TestRestartJournalsRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("tcp chaos runs take seconds")
	}
	j := events.NewJournal("up", 256)
	r := runRestartCase(t, RestartSchedule{Seed: 3, Tuples: 300, Restarts: 2, Journal: j})
	if r.Recovered == 0 {
		t.Fatalf("no entries recovered: %s", r)
	}
	var recov, chained int
	corrs := map[uint64]bool{}
	for _, e := range j.Tail(256) {
		if e.Kind == events.KindRecovery {
			recov++
			if e.Corr != 0 {
				corrs[e.Corr] = true
			}
		}
	}
	for _, e := range j.Tail(256) {
		if e.Kind == events.KindHAReplay && corrs[e.Corr] {
			chained++
		}
	}
	if recov == 0 {
		t.Fatal("no KindRecovery events journaled")
	}
	if chained == 0 {
		t.Fatal("no replay event chained to a recovery correlation id")
	}
}

// TestRestartRequiresDir: the schedule must name the surviving disk.
func TestRestartRequiresDir(t *testing.T) {
	r := RunRestart(RestartSchedule{Seed: 1})
	if !r.Failed() {
		t.Fatal("empty Dir accepted")
	}
}
