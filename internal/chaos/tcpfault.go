package chaos

import (
	"fmt"
	"net"
	"sync"
	"time"
)

// TCPProxy is the chaos harness's fault injector for real TCP links: a
// relay in front of a target listener that can kill the connections
// running through it, blackhole them (stop forwarding without closing,
// the silent-partition case TCP itself never reports), or stall new
// connections before they reach the backend (handshake stall). The
// transport under test dials the proxy instead of the target, so every
// failure mode arrives exactly the way a real network would deliver it —
// through the socket.
type TCPProxy struct {
	ln     net.Listener
	target string

	mu    sync.Mutex
	conns map[net.Conn]struct{}
	black bool
	stall time.Duration

	done      chan struct{}
	closeOnce sync.Once
	wg        sync.WaitGroup
}

// NewTCPProxy starts a relay on a fresh loopback port in front of target.
func NewTCPProxy(target string) (*TCPProxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("chaos: proxy listen: %w", err)
	}
	p := &TCPProxy{ln: ln, target: target,
		conns: map[net.Conn]struct{}{}, done: make(chan struct{})}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address the transport under test should dial.
func (p *TCPProxy) Addr() string { return p.ln.Addr().String() }

// KillConns abruptly closes every connection currently relayed — the
// conn-kill injector — and returns how many pairs died.
func (p *TCPProxy) KillConns() int {
	p.mu.Lock()
	victims := make([]net.Conn, 0, len(p.conns))
	for nc := range p.conns {
		victims = append(victims, nc)
	}
	p.mu.Unlock()
	for _, nc := range victims {
		nc.Close()
	}
	return len(victims) / 2
}

// SetBlackhole pauses (true) or resumes (false) forwarding in both
// directions. Paused bytes are not dropped — they back up in the kernel,
// exactly like a silent partition — so framing is never corrupted when
// the hole lifts; detection is the peers' job (ping + read-idle).
func (p *TCPProxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.black = on
	p.mu.Unlock()
}

// SetStall makes every NEW connection wait d before the proxy dials the
// backend, so the dialer's handshake deadline is what gives up first.
// Zero disables the stall.
func (p *TCPProxy) SetStall(d time.Duration) {
	p.mu.Lock()
	p.stall = d
	p.mu.Unlock()
}

// Close stops the relay and tears down every connection. Idempotent.
func (p *TCPProxy) Close() {
	p.closeOnce.Do(func() {
		close(p.done)
		p.ln.Close()
		p.KillConns()
		p.wg.Wait()
	})
}

func (p *TCPProxy) flags() (black bool, stall time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.black, p.stall
}

// track registers a relay socket; false means the proxy is closing.
func (p *TCPProxy) track(nc net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.done:
		return false
	default:
	}
	p.conns[nc] = struct{}{}
	return true
}

func (p *TCPProxy) untrack(nc net.Conn) {
	p.mu.Lock()
	delete(p.conns, nc)
	p.mu.Unlock()
}

func (p *TCPProxy) acceptLoop() {
	defer p.wg.Done()
	for {
		cli, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.wg.Add(1)
		go func(cli net.Conn) {
			defer p.wg.Done()
			if _, stall := p.flags(); stall > 0 {
				// Handshake stall: hold the accepted conn without touching
				// the backend until the stall lapses or the proxy closes.
				select {
				case <-time.After(stall):
				case <-p.done:
					cli.Close()
					return
				}
			}
			srv, err := net.Dial("tcp", p.target)
			if err != nil {
				cli.Close()
				return
			}
			if !p.track(cli) || !p.track(srv) {
				cli.Close()
				srv.Close()
				return
			}
			p.wg.Add(2)
			go func() { defer p.wg.Done(); p.pipe(cli, srv) }()
			go func() { defer p.wg.Done(); p.pipe(srv, cli) }()
		}(cli)
	}
}

// pipe forwards src→dst in whole read chunks, pausing while blackholed.
// Short poll deadlines keep it responsive to flag flips and Close.
func (p *TCPProxy) pipe(src, dst net.Conn) {
	defer func() {
		p.untrack(src)
		p.untrack(dst)
		src.Close()
		dst.Close()
	}()
	buf := make([]byte, 32<<10)
	for {
		select {
		case <-p.done:
			return
		default:
		}
		if black, _ := p.flags(); black {
			time.Sleep(2 * time.Millisecond)
			continue
		}
		src.SetReadDeadline(time.Now().Add(10 * time.Millisecond))
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				continue
			}
			return
		}
	}
}
