package chaos

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/ha"
	"repro/internal/stream"
	"repro/internal/transport"
)

// TCPSchedule is a seed-reproducible fault schedule for the real-TCP
// path: while Tuples flow from a sender node to a consumer node through
// a TCPProxy, the harness kills the connection, blackholes it, and
// stalls handshakes at seed-chosen points. The k-safety oracles then
// check the same contract chaos proves on netsim — no loss, no
// duplicates at the consumer, full convergence — now provided by the
// supervised link layer plus ha.LinkSender/LinkReceiver replay.
type TCPSchedule struct {
	Seed       int64
	Tuples     int           // tuples offered at the sender (default 1200)
	Kills      int           // connection kills spread over the run (default 4)
	Blackholes int           // silent-partition windows (default 1)
	Stalls     int           // handshake-stall windows (default 1)
	Gap        time.Duration // inter-tuple gap (default 250µs)
}

func (s TCPSchedule) withDefaults() TCPSchedule {
	if s.Tuples <= 1 {
		s.Tuples = 1200
	}
	if s.Kills < 0 {
		s.Kills = 0
	}
	if s.Gap <= 0 {
		s.Gap = 250 * time.Microsecond
	}
	return s
}

// TCPResult is one RunTCP outcome plus its oracle verdicts.
type TCPResult struct {
	Schedule TCPSchedule

	Delivered   int    // distinct payloads at the consumer
	Missing     int    // payloads never delivered (no-loss oracle)
	Dups        int    // payloads delivered more than once (at-most-once oracle)
	Kills       int    // faults actually injected
	Blackholes  int
	Stalls      int
	Reconnects  int64  // link re-establishments observed
	Replayed    int64  // tuples retransmitted by Resync
	Suppressed  uint64 // duplicate deliveries absorbed by the receiver's dedup
	Outstanding int    // sender log tuples still unacknowledged after drain
	Holes       int    // receiver sequence holes after drain
	CloseTime   time.Duration

	Violations []string
}

// Failed reports whether any oracle was violated.
func (r *TCPResult) Failed() bool { return len(r.Violations) > 0 }

func (r *TCPResult) violate(format string, args ...any) {
	r.Violations = append(r.Violations, fmt.Sprintf(format, args...))
}

// RunTCP executes one TCP fault schedule against a real sender/consumer
// transport pair joined through a TCPProxy, and verifies the oracles.
// Unlike the netsim harness this runs on wall-clock sockets, so timings
// vary run to run; the fault placement is what the seed reproduces.
func RunTCP(s TCPSchedule) *TCPResult {
	s = s.withDefaults()
	r := &TCPResult{Schedule: s}
	rng := rand.New(rand.NewSource(s.Seed))

	// Consumer state: payload i → delivery count. The oracles are defined
	// at the consumer, after the receiver's dedup — the end-to-end view.
	var cmu sync.Mutex
	counts := make(map[int64]int, s.Tuples)

	cfg := transport.LinkConfig{
		HandshakeTimeout: 250 * time.Millisecond,
		WriteTimeout:     500 * time.Millisecond,
		PingPeriod:       15 * time.Millisecond, // read-idle 60ms: beats blackhole windows
		BackoffMin:       5 * time.Millisecond,
		BackoffMax:       80 * time.Millisecond,
		BufferLimit:      s.Tuples + 64,
	}

	var sender *ha.LinkSender
	up, err := transport.ListenTCP("up", "127.0.0.1:0",
		func(from string, m transport.Msg) {
			if m.Kind == transport.KindBackChannel {
				if recv, ok := ha.ParseLinkAck(m.Ctrl); ok && sender != nil {
					sender.Ack(recv)
				}
			}
		}, cfg)
	if err != nil {
		r.violate("listen up: %v", err)
		return r
	}
	defer up.Close()

	var dn *transport.TCP
	recvr := ha.NewLinkReceiver(
		func(t stream.Tuple) {
			cmu.Lock()
			counts[t.Field(0).AsInt()]++
			cmu.Unlock()
		},
		func(recv uint64) {
			// Ack rides the same (breakable) conn back; losses are repaired
			// by the periodic AckNow below.
			_ = dn.Send("up", transport.Msg{Stream: "ack",
				Kind: transport.KindBackChannel, Ctrl: ha.AppendLinkAck(nil, recv)})
		}, 16)
	dn, err = transport.ListenTCP("dn", "127.0.0.1:0",
		func(from string, m transport.Msg) {
			if m.Kind == transport.KindData && ha.IsLinkBatch(m.Ctrl) {
				recvr.OnBatch(m.Tuples)
			}
		}, cfg)
	if err != nil {
		r.violate("listen dn: %v", err)
		return r
	}
	defer dn.Close()

	proxy, err := NewTCPProxy(dn.Addr())
	if err != nil {
		r.violate("proxy: %v", err)
		return r
	}
	defer proxy.Close()

	sender = ha.NewLinkSender(func(batch []stream.Tuple) error {
		return up.Send("dn", transport.Msg{Stream: "data",
			Kind: transport.KindData, Tuples: batch, Ctrl: ha.LinkBatchCtrl()})
	})
	up.SetOnEstablished(func(peer string, reconnected bool) {
		if reconnected {
			// Replay the unacknowledged suffix — the reconnect half of the
			// no-loss guarantee. Duplicates die in the receiver's dedup.
			sender.Resync()
		}
	})
	if err := up.AddPeer("dn", proxy.Addr()); err != nil {
		r.violate("add peer: %v", err)
		return r
	}

	// Seed-chosen fault placement: tuple indices at which each fault
	// fires. Blackhole and stall windows are bounded so the run always
	// makes progress again.
	killAt := map[int]int{}
	for i := 0; i < s.Kills; i++ {
		killAt[1+rng.Intn(s.Tuples-1)]++
	}
	blackAt := map[int]time.Duration{}
	for i := 0; i < s.Blackholes; i++ {
		blackAt[1+rng.Intn(s.Tuples-1)] = time.Duration(80+rng.Intn(80)) * time.Millisecond
	}
	stallAt := map[int]time.Duration{}
	for i := 0; i < s.Stalls; i++ {
		stallAt[1+rng.Intn(s.Tuples-1)] = time.Duration(100+rng.Intn(150)) * time.Millisecond
	}

	for i := 0; i < s.Tuples; i++ {
		sender.Send(stream.NewTuple(stream.Int(int64(i))))
		if n := killAt[i]; n > 0 {
			for j := 0; j < n; j++ {
				if rng.Intn(2) == 0 {
					proxy.KillConns()
				} else {
					up.KillConn("dn")
				}
				r.Kills++
			}
		}
		if w, ok := blackAt[i]; ok {
			proxy.SetBlackhole(true)
			time.AfterFunc(w, func() { proxy.SetBlackhole(false) })
			r.Blackholes++
		}
		if w, ok := stallAt[i]; ok {
			proxy.SetStall(w)
			time.AfterFunc(w, func() { proxy.SetStall(0) })
			r.Stalls++
		}
		time.Sleep(s.Gap)
	}

	// Drain: keep acking and resyncing until the sender's log is empty
	// and every payload has landed, or the drain budget lapses.
	deadline := time.Now().Add(15 * time.Second)
	prevOut := -1
	for time.Now().Before(deadline) {
		recvr.AckNow()
		out := sender.Outstanding()
		if out > 0 && out == prevOut {
			// No ack progress across a full round trip: whatever is left
			// was lost on the wire, not in flight — replay it.
			sender.Resync()
		}
		prevOut = out
		cmu.Lock()
		got := len(counts)
		cmu.Unlock()
		if got == s.Tuples && out == 0 && recvr.Holes() == 0 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Verdicts.
	cmu.Lock()
	for i := 0; i < s.Tuples; i++ {
		switch n := counts[int64(i)]; {
		case n == 0:
			r.Missing++
		case n > 1:
			r.Dups++
		}
	}
	r.Delivered = len(counts)
	cmu.Unlock()
	r.Replayed = sender.Replayed()
	r.Suppressed = recvr.Suppressed()
	r.Outstanding = sender.Outstanding()
	r.Holes = recvr.Holes()
	if info, ok := linkReconnects(up, "dn"); ok {
		r.Reconnects = info
	}

	start := time.Now()
	up.Close()
	dn.Close()
	proxy.Close()
	r.CloseTime = time.Since(start)

	if r.Missing > 0 {
		r.violate("no-loss: %d of %d tuples missing at the consumer after %d kills",
			r.Missing, s.Tuples, r.Kills)
	}
	if r.Dups > 0 {
		r.violate("at-most-once: %d payloads delivered more than once", r.Dups)
	}
	if r.Outstanding > 0 {
		r.violate("convergence: %d tuples still unacknowledged in the sender log", r.Outstanding)
	}
	if r.Holes > 0 {
		r.violate("convergence: %d receiver sequence holes never repaired", r.Holes)
	}
	if r.CloseTime > 2*time.Second {
		r.violate("shutdown: Close took %v under churn", r.CloseTime)
	}
	return r
}

func linkReconnects(t *transport.TCP, peer string) (int64, bool) {
	for _, in := range t.LinkInfos() {
		if in.Peer == peer {
			return in.Reconnects, true
		}
	}
	return 0, false
}

// String renders a one-line summary, mirroring Result's diagnostics.
func (r *TCPResult) String() string {
	return fmt.Sprintf(
		"seed=%d tuples=%d delivered=%d missing=%d dups=%d kills=%d black=%d stalls=%d reconnects=%d replayed=%d suppressed=%d close=%v violations=%d",
		r.Schedule.Seed, r.Schedule.Tuples, r.Delivered, r.Missing, r.Dups,
		r.Kills, r.Blackholes, r.Stalls, r.Reconnects, r.Replayed,
		r.Suppressed, r.CloseTime, len(r.Violations))
}
