package chaos

// Shrink reduces a failing schedule to a 1-minimal reproducer: it
// repeatedly removes single events while the schedule still fails, until
// no single removal preserves the failure. Events are self-contained
// (restarts and heals are folded into Dur), so any subset of them is a
// valid schedule and the verdict of the pruned schedule is still
// deterministic — the printed Repro of the result replays exactly.
//
// failing must be a pure predicate of the schedule (typically
// func(s Schedule) bool { return Run(s).Failed() }, or a sharper check
// pinned to the original violation). If the input does not fail, it is
// returned unchanged.
func Shrink(s Schedule, failing func(Schedule) bool) Schedule {
	if !failing(s) {
		return s
	}
	for {
		removed := false
		for i := 0; i < len(s.Events); i++ {
			cand := s
			cand.Events = make([]Event, 0, len(s.Events)-1)
			cand.Events = append(cand.Events, s.Events[:i]...)
			cand.Events = append(cand.Events, s.Events[i+1:]...)
			if failing(cand) {
				s = cand
				removed = true
				break
			}
		}
		if !removed {
			return s
		}
	}
}
