package chaos

import (
	"fmt"
	"testing"
)

// TestKillMidSplitKSafety is the deterministic regression: a worker's box
// is force-split into replicas, the node is crashed while the split is
// active (its state — replicas, merge queues, in-flight shard trains —
// vanishes with the engine), and every oracle must still hold: upstream
// backup replays the window, the rebuilt engine comes back unsplit, and
// no tuple is lost or duplicated past the recovery boundary.
func TestKillMidSplitKSafety(t *testing.T) {
	cases := []struct {
		name  string
		crash Event
	}{
		// Permanent crash: detection fires, the upstream neighbor adopts
		// the piece and replays from its output log.
		{"failover", Event{Kind: Crash, At: 30e6, Node: "n2"}},
		// Short crash: the node restarts before detection; gap repair
		// refills the hole. The restarted engine is unsplit, so the
		// scheduled un-split finds nothing and is ignored.
		{"masked-restart", Event{Kind: Crash, At: 30e6, Dur: 3e6, Node: "n2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := Schedule{
				Seed: 7, Workers: 3, K: 1,
				Events: []Event{
					{Kind: Split, At: 10e6, Dur: 60e6, Node: "n2", Mult: 3},
					tc.crash,
				},
			}
			if err := s.Validate(); err != nil {
				t.Fatal(err)
			}
			r := Run(s)
			if r.Splits != 1 {
				t.Fatalf("split never took effect (splits=%d); the crash tested nothing", r.Splits)
			}
			if r.Unsplits != 0 {
				t.Errorf("un-split succeeded after the crash dissolved the split (unsplits=%d)", r.Unsplits)
			}
			if r.Failed() {
				t.Fatalf("kill-mid-split violated oracles: %v\nflight dump:\n%s",
					r.Violations, r.FlightDump)
			}
			if r.Missing != 0 {
				t.Errorf("lost %d tuples within the k budget", r.Missing)
			}
		})
	}
}

// TestSplitSurvivesFullCycle pins the fault-free split lifecycle through
// the cluster path: split mid-load, fold back mid-load, every tuple
// delivered exactly once.
func TestSplitSurvivesFullCycle(t *testing.T) {
	s := Schedule{
		Seed: 11, Workers: 2, K: 1,
		Events: []Event{
			{Kind: Split, At: 10e6, Dur: 30e6, Node: "n1", Mult: 2},
			{Kind: Burst, At: 15e6, Dur: 10e6, Mult: 3},
		},
	}
	r := Run(s)
	if r.Splits != 1 || r.Unsplits != 1 {
		t.Fatalf("split lifecycle incomplete: splits=%d unsplits=%d", r.Splits, r.Unsplits)
	}
	if r.Failed() {
		t.Fatalf("fault-free split cycle violated oracles: %v", r.Violations)
	}
	if r.Missing != 0 || r.Dups != 0 {
		t.Errorf("split cycle lost %d / duplicated %d tuples", r.Missing, r.Dups)
	}
}

// TestSplitChaosSweep runs a focused seed sweep where every schedule
// carries a split alongside one generated fault, covering the
// split x {crash, partition, lossy, burst} product across seeds. Failures
// shrink to a minimal reproducer exactly like the main chaos sweep.
func TestSplitChaosSweep(t *testing.T) {
	const seeds = 60
	for seed := int64(1); seed <= seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			t.Parallel()
			s := Generate(seed)
			// Overlay a split on the first worker spanning most of the
			// generated fault window, folding back near its end — so
			// whatever the generator drew lands while a split is live.
			split := Event{Kind: Split, At: genFaultStart / 2, Dur: genFaultEnd,
				Node: "n1", Mult: 2 + int(seed%3)}
			s.Events = append([]Event{split}, s.Events...)
			if err := s.Validate(); err != nil {
				t.Fatalf("schedule invalid with split: %v", err)
			}
			r := Run(s)
			if r.Failed() {
				min := Shrink(s, func(c Schedule) bool { return Run(c).Failed() })
				t.Fatalf("oracle violations: %v\nevents: %+v\nminimal repro:\n%s",
					r.Violations, s.Events, min.Repro())
			}
		})
	}
}
