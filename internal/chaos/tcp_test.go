package chaos

import (
	"testing"
	"time"
)

// TestRunTCPKillsMidStream is the acceptance chaos run: randomized
// connection kills mid-stream must end with zero loss and zero
// duplicates at the consumer — the k-safety contract now holding on the
// real-TCP path.
func TestRunTCPKillsMidStream(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		r := RunTCP(TCPSchedule{Seed: seed, Tuples: 600, Kills: 4,
			Gap: 200 * time.Microsecond})
		if r.Failed() {
			t.Errorf("seed %d: %v\n%s", seed, r.Violations, r)
		}
		if r.Kills == 0 {
			t.Errorf("seed %d: schedule injected no kills", seed)
		}
		if r.Delivered != 600 {
			t.Errorf("seed %d: delivered %d of 600", seed, r.Delivered)
		}
	}
}

// TestRunTCPAllFaultKinds drives kills, a blackhole window, and a
// handshake stall in one run; the guarantee must hold through all three.
func TestRunTCPAllFaultKinds(t *testing.T) {
	if testing.Short() {
		t.Skip("wall-clock chaos run")
	}
	r := RunTCP(TCPSchedule{Seed: 99, Tuples: 800, Kills: 3,
		Blackholes: 1, Stalls: 1, Gap: 300 * time.Microsecond})
	if r.Failed() {
		t.Fatalf("violations: %v\n%s", r.Violations, r)
	}
	if r.Blackholes == 0 || r.Stalls == 0 {
		t.Errorf("faults not injected: %s", r)
	}
}

// TestRunTCPCleanRunReplaysNothing: with no faults the run must converge
// with no resyncs and no suppressed duplicates.
func TestRunTCPCleanRunReplaysNothing(t *testing.T) {
	r := RunTCP(TCPSchedule{Seed: 5, Tuples: 300, Kills: 0, Gap: 50 * time.Microsecond})
	if r.Failed() {
		t.Fatalf("violations: %v\n%s", r.Violations, r)
	}
	if r.Suppressed != 0 || r.Missing != 0 || r.Dups != 0 {
		t.Errorf("clean run not clean: %s", r)
	}
}
