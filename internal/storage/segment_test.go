package storage

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/stream"
	"repro/internal/transport"
)

func dataMsg(seq uint64, payload int64) transport.Msg {
	t := stream.NewTuple(stream.Int(payload))
	t.Seq = seq
	return transport.Msg{Stream: "s", Kind: transport.KindData, BaseSeq: seq, Tuples: []stream.Tuple{t}}
}

func replaySeqs(t *testing.T, l *Log) []uint64 {
	t.Helper()
	var seqs []uint64
	if err := l.ReplayTuples(func(tp stream.Tuple, _ uint64) bool {
		seqs = append(seqs, tp.Seq)
		return true
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs
}

func TestLogAppendReplayRoundTrip(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 20; i++ {
		if err := l.Append(dataMsg(i, int64(i)*10)); err != nil {
			t.Fatal(err)
		}
	}
	seqs := replaySeqs(t, l)
	if len(seqs) != 20 {
		t.Fatalf("replayed %d tuples, want 20", len(seqs))
	}
	for i, s := range seqs {
		if s != uint64(i+1) {
			t.Fatalf("seq[%d] = %d, want %d (order must be append order)", i, s, i+1)
		}
	}
	if got := l.Tuples(); got != 20 {
		t.Errorf("Tuples() = %d, want 20", got)
	}
	if l.Torn() {
		t.Error("fresh log reports torn tail")
	}
}

func TestLogRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 50; i++ {
		if err := l.Append(dataMsg(i, 7)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Segments() < 3 {
		t.Fatalf("Segments() = %d, want rotation to have produced several", l.Segments())
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: everything indexed from disk, appends continue in a fresh file.
	l2, err := OpenLog(dir, LogConfig{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if got := l2.Tuples(); got != 50 {
		t.Fatalf("reopened Tuples() = %d, want 50", got)
	}
	if err := l2.Append(dataMsg(51, 7)); err != nil {
		t.Fatal(err)
	}
	seqs := replaySeqs(t, l2)
	if len(seqs) != 51 || seqs[50] != 51 {
		t.Fatalf("after reopen+append got %d tuples (last %d), want 51 ending in 51", len(seqs), seqs[len(seqs)-1])
	}
}

// tailSegment returns the path of the newest non-empty segment file.
func tailSegment(t *testing.T, dir string) string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := ""
	for _, e := range entries {
		if _, ok := segmentIndex(e.Name()); ok {
			last = filepath.Join(dir, e.Name())
		}
	}
	if last == "" {
		t.Fatal("no segment files")
	}
	return last
}

// TestLogTornAndCorruptTails is the recovery table: each case damages the
// tail segment a different way, and reopening must keep every intact frame,
// drop the damaged tail, and keep accepting appends.
func TestLogTornAndCorruptTails(t *testing.T) {
	cases := []struct {
		name     string
		damage   func(t *testing.T, path string)
		wantTorn bool
	}{
		{"truncated-mid-payload", func(t *testing.T, path string) {
			chop(t, path, 3) // leaves a frame header + partial payload
		}, true},
		{"truncated-mid-header", func(t *testing.T, path string) {
			info, err := os.Stat(path)
			if err != nil {
				t.Fatal(err)
			}
			chopTo(t, path, info.Size()-frameSize(t, path)+4) // 4 bytes of last header
		}, true},
		{"corrupt-crc", func(t *testing.T, path string) {
			flipLastPayloadByte(t, path)
		}, true},
		{"huge-length-field", func(t *testing.T, path string) {
			appendRaw(t, path, binary.LittleEndian.AppendUint32(nil, maxFramePayload+1))
		}, true},
		{"trailing-garbage-header", func(t *testing.T, path string) {
			appendRaw(t, path, []byte{0xde, 0xad})
		}, true},
		{"undamaged", func(t *testing.T, path string) {}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			l, err := OpenLog(dir, LogConfig{})
			if err != nil {
				t.Fatal(err)
			}
			for i := uint64(1); i <= 5; i++ {
				if err := l.Append(dataMsg(i, int64(i))); err != nil {
					t.Fatal(err)
				}
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, tailSegment(t, dir))

			l2, err := OpenLog(dir, LogConfig{})
			if err != nil {
				t.Fatalf("reopen after %s: %v", tc.name, err)
			}
			defer l2.Close()
			if l2.Torn() != tc.wantTorn {
				t.Errorf("Torn() = %v, want %v", l2.Torn(), tc.wantTorn)
			}
			seqs := replaySeqs(t, l2)
			wantIntact := 5
			if tc.wantTorn && tc.name != "huge-length-field" && tc.name != "trailing-garbage-header" {
				wantIntact = 4 // the last frame itself was damaged
			}
			if len(seqs) != wantIntact {
				t.Fatalf("replayed %d tuples, want %d intact", len(seqs), wantIntact)
			}
			for i, s := range seqs {
				if s != uint64(i+1) {
					t.Fatalf("seq[%d] = %d after recovery", i, s)
				}
			}
			// The log must still accept appends after a damaged reopen.
			if err := l2.Append(dataMsg(100, 1)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if got := replaySeqs(t, l2); got[len(got)-1] != 100 {
				t.Fatalf("post-recovery append not replayed, got %v", got)
			}
		})
	}
}

// frameSize reads the last frame's full size from the segment at path.
func frameSize(t *testing.T, path string) int64 {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	pos, last := 0, 0
	for pos+frameHeaderSize <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		if pos+frameHeaderSize+n > len(data) {
			break
		}
		last = frameHeaderSize + n
		pos += last
	}
	return int64(last)
}

func chop(t *testing.T, path string, n int64) {
	t.Helper()
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	chopTo(t, path, info.Size()-n)
}

func chopTo(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func flipLastPayloadByte(t *testing.T, path string) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func appendRaw(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

// TestLogIntactCRCBadPayloadIsError: a frame whose CRC matches but whose
// payload fails the codec is a writer bug, not a crash artifact — Open
// must refuse rather than silently drop state.
func TestLogIntactCRCBadPayloadIsError(t *testing.T) {
	dir := t.TempDir()
	payload := []byte{0xFF, 0xFF, 0xFF, 0xFF} // not a valid transport message
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	frame = binary.LittleEndian.AppendUint32(frame, crc32.ChecksumIEEE(payload))
	frame = append(frame, payload...)
	if err := os.WriteFile(filepath.Join(dir, "seg-0000000000000001.log"), frame, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(dir, LogConfig{}); err == nil {
		t.Fatal("OpenLog accepted a CRC-intact frame with an undecodable payload")
	}
}

func TestLogTruncateBeforeUnlinksWholeSegments(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 40; i++ {
		if err := l.Append(dataMsg(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Segments()
	freed, err := l.TruncateBefore(30)
	if err != nil {
		t.Fatal(err)
	}
	if freed == 0 {
		t.Fatal("TruncateBefore(30) freed nothing despite several sealed segments below it")
	}
	if l.Segments() >= before {
		t.Errorf("segments %d -> %d, want fewer", before, l.Segments())
	}
	seqs := replaySeqs(t, l)
	// Conservative: every seq >= 30 must survive; some < 30 may remain in
	// the straddling/active segments.
	seen := map[uint64]bool{}
	for _, s := range seqs {
		seen[s] = true
	}
	for s := uint64(30); s <= 40; s++ {
		if !seen[s] {
			t.Fatalf("seq %d lost by TruncateBefore(30)", s)
		}
	}
	if l.Evicted() != uint64(freed) {
		t.Errorf("Evicted() = %d, want %d", l.Evicted(), freed)
	}
}

func TestLogEvictOldestHonorsBudget(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SegmentBytes: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	for i := uint64(1); i <= 60; i++ {
		if err := l.Append(dataMsg(i, 3)); err != nil {
			t.Fatal(err)
		}
	}
	total := l.Bytes()
	budget := total / 2
	tuples, bytes := l.EvictOldest(budget)
	if tuples == 0 || bytes == 0 {
		t.Fatalf("EvictOldest(%d) evicted nothing from a %d-byte log", budget, total)
	}
	if l.Bytes() > budget {
		t.Errorf("Bytes() = %d after eviction, budget %d", l.Bytes(), budget)
	}
	// Oldest-first: the newest tuples must all survive.
	seqs := replaySeqs(t, l)
	if len(seqs) == 0 || seqs[len(seqs)-1] != 60 {
		t.Fatalf("newest tuple lost; replay tail = %v", seqs)
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("eviction left a gap: %d then %d", seqs[i-1], seqs[i])
		}
	}
}

func TestDecodeSegmentTable(t *testing.T) {
	valid := func(n int) []byte {
		var buf []byte
		for i := 1; i <= n; i++ {
			payload := transport.Encode(nil, dataMsg(uint64(i), int64(i)))
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
			buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
			buf = append(buf, payload...)
		}
		return buf
	}
	cases := []struct {
		name     string
		data     []byte
		wantMsgs int
		wantTorn bool
	}{
		{"empty", nil, 0, false},
		{"three-intact", valid(3), 3, false},
		{"torn-header", valid(2)[:len(valid(2))-int(frameSizeOf(valid(2)))+2], 1, true},
		{"torn-payload", valid(2)[:len(valid(2))-1], 1, true},
		{"short-garbage", []byte{1, 2, 3}, 0, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			msgs, torn, err := DecodeSegment(tc.data)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) != tc.wantMsgs || torn != tc.wantTorn {
				t.Errorf("got %d msgs torn=%v, want %d msgs torn=%v", len(msgs), torn, tc.wantMsgs, tc.wantTorn)
			}
		})
	}
}

// frameSizeOf returns the size of the last frame in an in-memory image.
func frameSizeOf(data []byte) int64 {
	pos, last := 0, 0
	for pos+frameHeaderSize <= len(data) {
		n := int(binary.LittleEndian.Uint32(data[pos : pos+4]))
		if pos+frameHeaderSize+n > len(data) {
			break
		}
		last = frameHeaderSize + n
		pos += last
	}
	return int64(last)
}

func TestLogForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("not a segment"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := OpenLog(dir, LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if err := l.Append(dataMsg(1, 1)); err != nil {
		t.Fatal(err)
	}
	if got := len(replaySeqs(t, l)); got != 1 {
		t.Fatalf("replayed %d, want 1", got)
	}
}

func TestLogOriginSeqInBaseSeq(t *testing.T) {
	// The output log stores the origin sequence in BaseSeq with the link
	// sequence in the tuple — both must round-trip.
	l, err := OpenLog(t.TempDir(), LogConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	tp := stream.NewTuple(stream.Int(42))
	tp.Seq = 9 // link seq
	if err := l.Append(transport.Msg{Kind: transport.KindData, BaseSeq: 1234, Tuples: []stream.Tuple{tp}}); err != nil {
		t.Fatal(err)
	}
	var gotBase, gotSeq uint64
	l.ReplayTuples(func(t stream.Tuple, base uint64) bool {
		gotBase, gotSeq = base, t.Seq
		return true
	})
	if gotBase != 1234 || gotSeq != 9 {
		t.Fatalf("round-trip base=%d seq=%d, want 1234/9", gotBase, gotSeq)
	}
}

func BenchmarkLogAppend(b *testing.B) {
	l, err := OpenLog(b.TempDir(), LogConfig{SyncEvery: 1 << 30}) // no fsync in the timed loop
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	m := dataMsg(1, 77)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.BaseSeq = uint64(i)
		m.Tuples[0].Seq = uint64(i)
		if err := l.Append(m); err != nil {
			b.Fatal(err)
		}
	}
}

func TestManagerKeysRoundTrip(t *testing.T) {
	m, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	keys := []string{"n2/mid", "box:1", "plain"}
	for _, k := range keys {
		if _, err := m.OutputLog(k); err != nil {
			t.Fatal(err)
		}
	}
	got, err := m.OutputLogKeys()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(keys) {
		t.Fatalf("OutputLogKeys = %v, want %d keys", got, len(keys))
	}
	seen := map[string]bool{}
	for _, k := range got {
		seen[k] = true
	}
	for _, k := range keys {
		if !seen[k] {
			t.Errorf("key %q did not round-trip through the filesystem (got %v)", k, got)
		}
	}
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "checkpoint.json")

	if _, ok, err := LoadCheckpoint(path); err != nil || ok {
		t.Fatalf("missing checkpoint: ok=%v err=%v, want cold start", ok, err)
	}
	cp := NodeCheckpoint{SavedAt: 12345, DedupRecv: map[string]uint64{"n1/mid": 400}, PlaneSeq: 17}
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, ok, err := LoadCheckpoint(path)
	if err != nil || !ok {
		t.Fatalf("load: ok=%v err=%v", ok, err)
	}
	if got.DedupRecv["n1/mid"] != 400 || got.PlaneSeq != 17 || got.SavedAt != 12345 {
		t.Fatalf("round-trip mismatch: %+v", got)
	}

	// Corrupt one payload byte: the CRC must reject it and recovery starts cold.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(checkpointMagic)+2] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := LoadCheckpoint(path); err != nil || ok {
		t.Fatalf("corrupt checkpoint: ok=%v err=%v, want clean cold start", ok, err)
	}
}

func TestCPSpillEnforcesDiskBudget(t *testing.T) {
	l, err := OpenLog(t.TempDir(), LogConfig{SegmentBytes: 64, SyncEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	sp := NewCPSpill(l, 256)
	var dropped int
	for i := uint64(1); i <= 100; i++ {
		tp := stream.NewTuple(stream.Int(int64(i)))
		tp.Seq = i
		dropped += sp.Append(tp)
	}
	if sp.Bytes() > 256+64 { // budget plus at most one active segment
		t.Errorf("spill footprint %d well above budget", sp.Bytes())
	}
	if dropped == 0 {
		t.Error("100 tuples into a 256-byte budget dropped nothing")
	}
	got := sp.Replay()
	if len(got) == 0 || got[len(got)-1].Seq != 100 {
		t.Fatalf("newest spilled tuple missing; got %d tuples", len(got))
	}
	if len(got)+dropped != 100 {
		t.Errorf("retained %d + dropped %d != 100", len(got), dropped)
	}
}

func TestHistorySpillIntegration(t *testing.T) {
	dir := t.TempDir()
	l, err := OpenLog(dir, LogConfig{SyncEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	h := stream.NewHistory(1) // tiny memory budget: everything but the newest evicts
	h.SetSpill(NewCPSpill(l, 0))
	var memDelta int
	for i := uint64(1); i <= 30; i++ {
		tp := stream.NewTuple(stream.Int(int64(i)))
		tp.Seq = i
		d, dropped := h.Add(tp)
		memDelta += d
		if dropped != 0 {
			t.Fatalf("tuple %d permanently dropped despite an unbounded spill", i)
		}
	}
	if h.Evicted() != 0 {
		t.Errorf("Evicted() = %d with spill absorbing everything", h.Evicted())
	}
	if memDelta != h.Bytes() {
		t.Errorf("sum of Add deltas %d != in-memory Bytes %d", memDelta, h.Bytes())
	}
	replay := h.Replay()
	if len(replay) != 30 {
		t.Fatalf("Replay() = %d tuples, want 30 (disk prefix + memory window)", len(replay))
	}
	for i, tp := range replay {
		if tp.Seq != uint64(i+1) {
			t.Fatalf("replay[%d].Seq = %d, want %d (oldest-first ordering)", i, tp.Seq, i+1)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart: a fresh history over the reopened log sees the spilled prefix.
	l2, err := OpenLog(dir, LogConfig{SyncEvery: 1 << 30})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	h2 := stream.NewHistory(1 << 20)
	h2.SetSpill(NewCPSpill(l2, 0))
	recovered := h2.Replay()
	if len(recovered) != 29 { // the newest tuple lived only in memory
		t.Fatalf("recovered %d spilled tuples, want 29", len(recovered))
	}
	if recovered[0].Seq != 1 || recovered[28].Seq != 29 {
		t.Fatalf("recovered range [%d..%d], want [1..29]", recovered[0].Seq, recovered[28].Seq)
	}
}
