package storage

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Checkpoint files are small, whole-state snapshots written atomically
// (temp file + rename) with a CRC trailer, so a crash mid-write leaves
// either the previous checkpoint or a detectably-torn temp file — never a
// half state. They carry the state that is cheap to snapshot and
// expensive to lose: each inbound link's dedup complete-prefix
// (ContiguousRecv), and the stats plane's digest sequence number (a
// restarted node whose gossip seq regressed would have its fresh digests
// discarded by every peer's keep-max-seq merge).

// NodeCheckpoint is one node's periodically-saved recovery state.
type NodeCheckpoint struct {
	// SavedAt is the wall-clock time of the save, unix nanoseconds.
	SavedAt int64 `json:"saved_at"`
	// DedupRecv maps an inbound link key ("peer/stream") to the highest
	// link sequence below which every number was admitted — the
	// ContiguousRecv the node had acknowledged upstream. Seeding a fresh
	// Dedup with it keeps a resync replay from re-delivering the prefix.
	DedupRecv map[string]uint64 `json:"dedup_recv,omitempty"`
	// PlaneSeq is the stats plane's last published digest sequence.
	PlaneSeq uint64 `json:"plane_seq,omitempty"`
}

// checkpointMagic versions the checkpoint framing.
var checkpointMagic = []byte("dspck1\n")

// SaveCheckpoint writes cp to path atomically: payload JSON, CRC-32
// trailer, temp file in the same directory, fsync, rename.
func SaveCheckpoint(path string, cp NodeCheckpoint) error {
	payload, err := json.Marshal(cp)
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	buf := append([]byte(nil), checkpointMagic...)
	buf = append(buf, payload...)
	buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".ck-*")
	if err != nil {
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(buf); err == nil {
		err = tmp.Sync()
	} else {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("storage: checkpoint: %w", err)
	}
	return nil
}

// LoadCheckpoint reads a checkpoint; ok=false (with no error) when the
// file does not exist or is torn/corrupt — recovery then starts cold,
// which is always safe (it only means more duplicate suppression work).
func LoadCheckpoint(path string) (cp NodeCheckpoint, ok bool, err error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return cp, false, nil
	}
	if err != nil {
		return cp, false, fmt.Errorf("storage: checkpoint: %w", err)
	}
	if len(data) < len(checkpointMagic)+4 ||
		string(data[:len(checkpointMagic)]) != string(checkpointMagic) {
		return cp, false, nil
	}
	payload := data[len(checkpointMagic) : len(data)-4]
	sum := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(payload) != sum {
		return cp, false, nil
	}
	if err := json.Unmarshal(payload, &cp); err != nil {
		return cp, false, nil
	}
	return cp, true, nil
}
