package storage

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"sync"
)

// Manager owns one node's data directory:
//
//	<dir>/outlog/<escaped route key>/seg-*.log   durable HA output logs
//	<dir>/cp/<escaped port key>/seg-*.log        connection-point spill
//	<dir>/checkpoint.json                        dedup + stats-plane state
//
// Route and port keys are URL-path-escaped into directory names, so keys
// like "n2/mid" or "box:1" round-trip losslessly through the filesystem.
type Manager struct {
	dir string

	mu   sync.Mutex
	logs map[string]*Log // open logs by subpath
}

// Open creates (if needed) and opens a node data directory.
func Open(dir string) (*Manager, error) {
	if dir == "" {
		return nil, fmt.Errorf("storage: empty data dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	return &Manager{dir: dir, logs: map[string]*Log{}}, nil
}

// Dir returns the data directory root.
func (m *Manager) Dir() string { return m.dir }

// OutputLog opens (or returns the already-open) durable log for one
// outbound route key ("peer/stream"). Output logs sync on every append:
// Send's return is the durability commit point.
func (m *Manager) OutputLog(key string) (*Log, error) {
	return m.open(filepath.Join("outlog", url.PathEscape(key)), LogConfig{})
}

// CPLog opens the spill log for one connection point key ("box:port").
// Spill writes are already past the memory budget — bulk, not commit
// points — so they sync in batches rather than per append.
func (m *Manager) CPLog(key string) (*Log, error) {
	return m.open(filepath.Join("cp", url.PathEscape(key)), LogConfig{SyncEvery: 256})
}

func (m *Manager) open(sub string, cfg LogConfig) (*Log, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if l, ok := m.logs[sub]; ok {
		return l, nil
	}
	l, err := OpenLog(filepath.Join(m.dir, sub), cfg)
	if err != nil {
		return nil, err
	}
	m.logs[sub] = l
	return l, nil
}

// OutputLogKeys lists the route keys with existing on-disk output logs —
// the recovery enumeration a restarted node walks to rebuild its senders
// before any traffic arrives.
func (m *Manager) OutputLogKeys() ([]string, error) {
	return m.listKeys("outlog")
}

// CPLogKeys lists the connection-point keys with existing spill logs.
func (m *Manager) CPLogKeys() ([]string, error) {
	return m.listKeys("cp")
}

func (m *Manager) listKeys(sub string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(m.dir, sub))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: %w", err)
	}
	var keys []string
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		key, err := url.PathUnescape(e.Name())
		if err != nil {
			continue // foreign directory; not ours to interpret
		}
		keys = append(keys, key)
	}
	return keys, nil
}

// CheckpointPath returns the node checkpoint file path.
func (m *Manager) CheckpointPath() string {
	return filepath.Join(m.dir, "checkpoint.json")
}

// SaveCheckpoint writes the node checkpoint atomically.
func (m *Manager) SaveCheckpoint(cp NodeCheckpoint) error {
	return SaveCheckpoint(m.CheckpointPath(), cp)
}

// LoadCheckpoint reads the node checkpoint; ok=false means none (or a
// torn one) — start cold.
func (m *Manager) LoadCheckpoint() (NodeCheckpoint, bool, error) {
	return LoadCheckpoint(m.CheckpointPath())
}

// Close closes every open log.
func (m *Manager) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for _, l := range m.logs {
		if err := l.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.logs = map[string]*Log{}
	return first
}
