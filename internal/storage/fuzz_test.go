package storage

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"repro/internal/stream"
	"repro/internal/transport"
)

// fuzzSeedImage builds a valid two-frame segment image for the corpus.
func fuzzSeedImage() []byte {
	var buf []byte
	for i := 1; i <= 2; i++ {
		t1 := stream.NewTuple(stream.Int(int64(i)), stream.String("x"))
		t1.Seq = uint64(i)
		payload := transport.Encode(nil, transport.Msg{
			Stream: "s1", Kind: transport.KindData, BaseSeq: uint64(i),
			Tuples: []stream.Tuple{t1},
		})
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(payload)))
		buf = binary.LittleEndian.AppendUint32(buf, crc32.ChecksumIEEE(payload))
		buf = append(buf, payload...)
	}
	return buf
}

// FuzzDecodeSegment throws arbitrary bytes at the segment reader. The
// invariants: it never panics, never errors on anything that fails the CRC
// (that is a torn tail, by definition recoverable), and every frame it does
// return re-encodes through the codec (the payload really was intact).
func FuzzDecodeSegment(f *testing.F) {
	seed := fuzzSeedImage()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                       // torn payload
	f.Add(seed[:frameHeaderSize-2])                 // torn header
	f.Add([]byte{})                                 // empty segment
	f.Add(bytes.Repeat([]byte{0xFF}, 64))           // huge length fields
	f.Add(binary.LittleEndian.AppendUint32(nil, 0)) // header-only, zero length
	corrupt := append([]byte(nil), seed...)
	corrupt[len(corrupt)-1] ^= 0xA5
	f.Add(corrupt) // CRC mismatch on the last frame

	f.Fuzz(func(t *testing.T, data []byte) {
		msgs, torn, err := DecodeSegment(data)
		if err != nil {
			// Only an intact-CRC-but-undecodable payload may error, and the
			// fuzzer finding one means it forged a CRC collision over a bad
			// payload — astronomically unlikely but legal; just stop here.
			return
		}
		if len(data) > 0 && len(msgs) == 0 && !torn {
			t.Fatalf("%d bytes yielded no frames yet no torn tail", len(data))
		}
		for _, m := range msgs {
			// Each returned frame must survive a codec round-trip.
			enc := transport.Encode(nil, m)
			if _, _, err := transport.Decode(enc); err != nil {
				t.Fatalf("returned frame does not re-encode: %v", err)
			}
		}
	})
}
